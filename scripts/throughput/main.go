// Command throughput orchestrates the kvserve/kvbench dispatch-mode
// matrix and merges the per-run kvbench artifacts into one
// BENCH_throughput.json. It execs prebuilt kvserve and kvbench
// binaries over a Unix socket, sweeping pipeline depth and shard count
// for the worker runtime and pinning the headline comparison: worker
// vs mutex dispatch at 8 shards, depth 16.
//
// Usage (from the repo root):
//
//	go build -o /tmp/kvserve ./cmd/kvserve
//	go build -o /tmp/kvbench ./cmd/kvbench
//	go run ./scripts/throughput -kvserve /tmp/kvserve -kvbench /tmp/kvbench \
//	    -json results/BENCH_throughput.json -check 1.25
//
// The headline speedup is contention-bound: the worker runtime wins by
// replacing a mutex contended by every connection goroutine with one
// owning goroutine per shard, so the gap scales with hardware threads.
// On a single-CPU host both modes are serialized behind the simulated
// engine (the dominant real CPU cost) and measure ~1.0x; the artifact
// records "cpus" so a diff between baselines is interpreted in context.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"
)

// depthPoint mirrors the fields this tool consumes from kvbench's
// depthResult JSON; unknown fields are carried through via Raw.
type depthPoint struct {
	Depth     int     `json:"depth"`
	Conns     int     `json:"conns"`
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type benchArtifact struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
	Sweep  []depthPoint   `json:"sweep"`
}

// runSpec is one kvserve configuration to benchmark.
type runSpec struct {
	Dispatch string `json:"dispatch"`
	Shards   int    `json:"shards"`
	sweep    string
}

type runResult struct {
	runSpec
	Sweep []depthPoint `json:"sweep"`
}

type headline struct {
	Shards int `json:"shards"`
	Depth  int `json:"depth"`
	// Per-mode ops/sec per interleaved round, plus the best of each:
	// alternating mutex/worker rounds share the machine's noise regime,
	// and best-of damps scheduler jitter on small hosts.
	MutexRounds     []float64 `json:"mutex_rounds"`
	WorkerRounds    []float64 `json:"worker_rounds"`
	MutexOpsPerSec  float64   `json:"mutex_ops_per_sec"`
	WorkerOpsPerSec float64   `json:"worker_ops_per_sec"`
	WorkerSpeedup   float64   `json:"worker_speedup"`
}

type matrixArtifact struct {
	Name     string         `json:"name"`
	Kind     string         `json:"kind"`
	Params   map[string]any `json:"params"`
	Runs     []runResult    `json:"runs"`
	Headline headline       `json:"headline"`
}

func main() {
	var (
		kvserve = flag.String("kvserve", "", "path to a built kvserve binary (required)")
		kvbench = flag.String("kvbench", "", "path to a built kvbench binary (required)")
		out     = flag.String("json", "results/BENCH_throughput.json", "merged artifact path")
		ops     = flag.Int("ops", 60_000, "operations per depth point")
		conns   = flag.Int("conns", 16, "concurrent benchmark connections")
		keys    = flag.Int("keys", 10_000, "key-space size (server preloads it)")
		vsize   = flag.Int("vsize", 64, "value size")
		rounds  = flag.Int("rounds", 3, "interleaved mutex/worker rounds for the headline comparison")
		check   = flag.Float64("check", 0, "fail unless worker/mutex speedup at the headline point is >= this (0 = report only)")
	)
	flag.Parse()
	if *kvserve == "" || *kvbench == "" {
		fmt.Fprintln(os.Stderr, "throughput: -kvserve and -kvbench are required")
		os.Exit(2)
	}

	tmp, err := os.MkdirTemp("", "throughput-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	// Depth sweeps on the worker runtime (the seeded bench trajectory).
	var runs []runResult
	for _, spec := range []runSpec{
		{Dispatch: "worker", Shards: 1, sweep: "1,4,16"},
		{Dispatch: "worker", Shards: 4, sweep: "1,4,16"},
	} {
		fmt.Printf("== %s dispatch, %d shard(s), depths %s ==\n", spec.Dispatch, spec.Shards, spec.sweep)
		sweep, err := benchOne(tmp, *kvserve, *kvbench, spec, *ops, *conns, *keys, *vsize)
		if err != nil {
			fatal(fmt.Errorf("%s/shards=%d: %w", spec.Dispatch, spec.Shards, err))
		}
		runs = append(runs, runResult{runSpec: spec, Sweep: sweep})
	}

	// Headline: mutex vs worker at 8 shards, depth 16, interleaved so
	// both modes sample the same noise regime.
	hl := headline{Shards: 8, Depth: 16}
	best := map[string][]depthPoint{}
	for r := 0; r < *rounds; r++ {
		for _, mode := range []string{"mutex", "worker"} {
			spec := runSpec{Dispatch: mode, Shards: hl.Shards, sweep: fmt.Sprint(hl.Depth)}
			fmt.Printf("== headline round %d/%d: %s dispatch, %d shards, depth %d ==\n",
				r+1, *rounds, mode, hl.Shards, hl.Depth)
			sweep, err := benchOne(tmp, *kvserve, *kvbench, spec, *ops, *conns, *keys, *vsize)
			if err != nil {
				fatal(fmt.Errorf("%s/shards=%d: %w", mode, hl.Shards, err))
			}
			rate := sweep[len(sweep)-1].OpsPerSec
			switch mode {
			case "mutex":
				hl.MutexRounds = append(hl.MutexRounds, rate)
				if rate > hl.MutexOpsPerSec {
					hl.MutexOpsPerSec, best[mode] = rate, sweep
				}
			case "worker":
				hl.WorkerRounds = append(hl.WorkerRounds, rate)
				if rate > hl.WorkerOpsPerSec {
					hl.WorkerOpsPerSec, best[mode] = rate, sweep
				}
			}
		}
	}
	for _, mode := range []string{"mutex", "worker"} {
		runs = append(runs, runResult{
			runSpec: runSpec{Dispatch: mode, Shards: hl.Shards},
			Sweep:   best[mode],
		})
	}
	if hl.MutexOpsPerSec > 0 {
		hl.WorkerSpeedup = hl.WorkerOpsPerSec / hl.MutexOpsPerSec
	}

	art := matrixArtifact{
		Name: "throughput",
		Kind: "kvbench-matrix",
		Params: map[string]any{
			"ops": *ops, "conns": *conns, "keys": *keys, "vsize": *vsize,
			"transport": "unix", "get_ratio": 0.9, "seed": 42,
			"rounds": *rounds, "cpus": runtime.NumCPU(),
		},
		Runs:     runs,
		Headline: hl,
	}
	if err := writeJSON(*out, art); err != nil {
		fatal(err)
	}
	fmt.Printf("headline (shards=%d depth=%d): mutex %.0f ops/sec, worker %.0f ops/sec, speedup %.2fx\n",
		hl.Shards, hl.Depth, hl.MutexOpsPerSec, hl.WorkerOpsPerSec, hl.WorkerSpeedup)
	fmt.Printf("wrote %s\n", *out)
	if *check > 0 && hl.WorkerSpeedup < *check {
		fmt.Fprintf(os.Stderr, "throughput: worker speedup %.2fx below the %.2fx floor\n", hl.WorkerSpeedup, *check)
		os.Exit(1)
	}
}

// benchOne boots kvserve for one spec, drives kvbench against it, and
// returns the parsed sweep.
func benchOne(tmp, kvserve, kvbench string, spec runSpec, ops, conns, keys, vsize int) ([]depthPoint, error) {
	sock := filepath.Join(tmp, fmt.Sprintf("kv-%s-%d.sock", spec.Dispatch, spec.Shards))
	srv := exec.Command(kvserve,
		"-sock", sock,
		"-shards", fmt.Sprint(spec.Shards),
		"-dispatch", spec.Dispatch,
		"-preload", "-keys", fmt.Sprint(keys), "-vsize", fmt.Sprint(vsize),
	)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("start kvserve: %w", err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			<-done
		}
	}()
	if err := waitSocket(sock, 15*time.Second); err != nil {
		return nil, err
	}

	art := filepath.Join(tmp, fmt.Sprintf("sweep-%s-%d.json", spec.Dispatch, spec.Shards))
	bench := exec.Command(kvbench,
		"-sock", sock,
		"-sweep", spec.sweep,
		"-ops", fmt.Sprint(ops),
		"-conns", fmt.Sprint(conns),
		"-keys", fmt.Sprint(keys),
		"-vsize", fmt.Sprint(vsize),
		"-json", art,
	)
	bench.Stdout = os.Stdout
	bench.Stderr = os.Stderr
	if err := bench.Run(); err != nil {
		return nil, fmt.Errorf("kvbench: %w", err)
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		return nil, err
	}
	var parsed benchArtifact
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("parse %s: %w", art, err)
	}
	for _, p := range parsed.Sweep {
		if p.Errors > 0 {
			return nil, fmt.Errorf("depth %d reported %d errors", p.Depth, p.Errors)
		}
	}
	return parsed.Sweep, nil
}

func waitSocket(path string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("unix", path); err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("kvserve socket %s not ready after %s", path, limit)
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "throughput:", err)
	os.Exit(1)
}
