// Command throughput orchestrates the kvserve/kvbench matrix and
// merges the per-run kvbench artifacts into one BENCH_throughput.json.
// It execs prebuilt kvserve and kvbench binaries over a Unix socket,
// sweeping three axes:
//
//   - cores:  the server's GOMAXPROCS (set via env), so one artifact
//     captures how both dispatch modes and both networking front-ends
//     scale with available parallelism
//   - shards: the engine shard count (worker dispatch owns one
//     goroutine per shard)
//   - depth:  the client pipeline depth
//
// plus the networking front-end (-netloop event loop vs the default
// goroutine-per-connection) as an A/B leg, and it pins two headline
// comparisons at the top configuration: worker vs mutex dispatch, and
// netloop vs goroutine front-end (both interleaved round-robin so the
// legs share the machine's noise regime).
//
// Usage (from the repo root):
//
//	go build -o /tmp/kvserve ./cmd/kvserve
//	go build -o /tmp/kvbench ./cmd/kvbench
//	go run ./scripts/throughput -kvserve /tmp/kvserve -kvbench /tmp/kvbench \
//	    -json results/BENCH_throughput.json -check 1.5
//
// The headline speedup is contention-bound: the worker runtime wins by
// replacing a mutex contended by every connection goroutine with one
// owning goroutine per shard, so the gap scales with hardware threads.
// On a single-CPU host both modes are serialized behind the simulated
// engine (the dominant real CPU cost) and measure ~1.0x — so -check is
// enforced only when the host has more than one CPU, and the artifact
// embeds the host fingerprint (internal/hostmeta) so a 1-CPU container
// capture is never misread as a multi-core regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"addrkv/internal/hostmeta"
	"addrkv/internal/telemetry"
)

// depthPoint mirrors the fields this tool consumes from kvbench's
// depthResult JSON, percentiles included — the merged artifact carries
// p50/p99/p999 for every matrix cell, not just ops/sec.
type depthPoint struct {
	Depth       int                 `json:"depth"`
	Conns       int                 `json:"conns"`
	Ops         uint64              `json:"ops"`
	Errors      uint64              `json:"errors"`
	OpsPerSec   float64             `json:"ops_per_sec"`
	RoundtripUS telemetry.Quantiles `json:"roundtrip_us"`
	LatencyUS   telemetry.Quantiles `json:"latency_us"`
}

type benchArtifact struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
	Sweep  []depthPoint   `json:"sweep"`
}

// runSpec is one kvserve configuration to benchmark: a cell of the
// cores x shards x front-end matrix (depth sweeps inside the cell).
type runSpec struct {
	Dispatch string `json:"dispatch"`
	Frontend string `json:"frontend"` // "goroutine" or "netloop"
	Cores    int    `json:"cores"`    // server GOMAXPROCS
	Shards   int    `json:"shards"`
	sweep    string
}

type runResult struct {
	runSpec
	Sweep []depthPoint `json:"sweep"`
}

// headline is an interleaved A/B at one configuration: per-leg ops/sec
// per round plus the best of each (best-of damps scheduler jitter on
// small hosts; alternating rounds cancel warmth drift).
type headline struct {
	Shards int `json:"shards"`
	Depth  int `json:"depth"`
	Cores  int `json:"cores"`
	// A = the baseline leg, B = the candidate leg.
	ARounds    []float64 `json:"a_rounds"`
	BRounds    []float64 `json:"b_rounds"`
	AOpsPerSec float64   `json:"a_ops_per_sec"`
	BOpsPerSec float64   `json:"b_ops_per_sec"`
	Speedup    float64   `json:"speedup"` // B / A
}

type matrixArtifact struct {
	Name   string         `json:"name"`
	Kind   string         `json:"kind"`
	Host   hostmeta.Meta  `json:"host"`
	Params map[string]any `json:"params"`
	Runs   []runResult    `json:"runs"`
	// WorkerHeadline: A = mutex dispatch, B = worker dispatch
	// (goroutine front-end, top core count).
	WorkerHeadline headline `json:"worker_headline"`
	// NetloopHeadline: A = goroutine front-end, B = netloop front-end
	// (worker dispatch, top core count).
	NetloopHeadline headline `json:"netloop_headline"`
}

func main() {
	var (
		kvserve  = flag.String("kvserve", "", "path to a built kvserve binary (required)")
		kvbench  = flag.String("kvbench", "", "path to a built kvbench binary (required)")
		out      = flag.String("json", "results/BENCH_throughput.json", "merged artifact path")
		ops      = flag.Int("ops", 60_000, "operations per depth point")
		conns    = flag.Int("conns", 16, "concurrent benchmark connections")
		keys     = flag.Int("keys", 10_000, "key-space size (server preloads it)")
		vsize    = flag.Int("vsize", 64, "value size")
		rounds   = flag.Int("rounds", 3, "interleaved rounds per headline comparison")
		coresArg = flag.String("cores", "", "comma-separated server GOMAXPROCS values (default: 1 and NumCPU, deduped)")
		check    = flag.Float64("check", 0, "fail unless worker/mutex speedup at the headline point is >= this; only enforced on hosts with >1 CPU (0 = report only)")
	)
	flag.Parse()
	if *kvserve == "" || *kvbench == "" {
		fmt.Fprintln(os.Stderr, "throughput: -kvserve and -kvbench are required")
		os.Exit(2)
	}
	cores, err := parseCores(*coresArg)
	if err != nil {
		fatal(err)
	}
	topCores := cores[len(cores)-1]

	tmp, err := os.MkdirTemp("", "throughput-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	bench := func(spec runSpec) []depthPoint {
		sweep, err := benchOne(tmp, *kvserve, *kvbench, spec, *ops, *conns, *keys, *vsize)
		if err != nil {
			fatal(fmt.Errorf("%s/%s/cores=%d/shards=%d: %w",
				spec.Dispatch, spec.Frontend, spec.Cores, spec.Shards, err))
		}
		return sweep
	}

	// The matrix: cores x shards x front-end, each cell a depth sweep on
	// the worker runtime (the seeded bench trajectory).
	var runs []runResult
	for _, c := range cores {
		for _, shards := range []int{1, 4} {
			for _, fe := range []string{"goroutine", "netloop"} {
				spec := runSpec{Dispatch: "worker", Frontend: fe, Cores: c, Shards: shards, sweep: "1,4,16"}
				fmt.Printf("== worker dispatch, %s front-end, %d core(s), %d shard(s), depths %s ==\n",
					fe, c, shards, spec.sweep)
				runs = append(runs, runResult{runSpec: spec, Sweep: bench(spec)})
			}
		}
	}

	// Headlines at the top core count, interleaved so both legs of each
	// comparison sample the same noise regime.
	interleave := func(name string, a, b runSpec) (headline, []runResult) {
		hl := headline{Shards: a.Shards, Depth: 16, Cores: a.Cores}
		var bestA, bestB []depthPoint
		for r := 0; r < *rounds; r++ {
			legs := [2]runSpec{a, b}
			if r%2 == 1 {
				legs[0], legs[1] = b, a
			}
			for _, spec := range legs {
				fmt.Printf("== %s headline round %d/%d: %s dispatch, %s front-end ==\n",
					name, r+1, *rounds, spec.Dispatch, spec.Frontend)
				sweep := bench(spec)
				rate := sweep[len(sweep)-1].OpsPerSec
				if spec == a {
					hl.ARounds = append(hl.ARounds, rate)
					if rate > hl.AOpsPerSec {
						hl.AOpsPerSec, bestA = rate, sweep
					}
				} else {
					hl.BRounds = append(hl.BRounds, rate)
					if rate > hl.BOpsPerSec {
						hl.BOpsPerSec, bestB = rate, sweep
					}
				}
			}
		}
		if hl.AOpsPerSec > 0 {
			hl.Speedup = hl.BOpsPerSec / hl.AOpsPerSec
		}
		return hl, []runResult{{runSpec: a, Sweep: bestA}, {runSpec: b, Sweep: bestB}}
	}

	depth16 := fmt.Sprint(16)
	workerHL, workerRuns := interleave("worker-vs-mutex",
		runSpec{Dispatch: "mutex", Frontend: "goroutine", Cores: topCores, Shards: 8, sweep: depth16},
		runSpec{Dispatch: "worker", Frontend: "goroutine", Cores: topCores, Shards: 8, sweep: depth16})
	netloopHL, netloopRuns := interleave("netloop-vs-goroutine",
		runSpec{Dispatch: "worker", Frontend: "goroutine", Cores: topCores, Shards: 8, sweep: depth16},
		runSpec{Dispatch: "worker", Frontend: "netloop", Cores: topCores, Shards: 8, sweep: depth16})
	runs = append(runs, workerRuns...)
	runs = append(runs, netloopRuns...)

	art := matrixArtifact{
		Name: "throughput",
		Kind: "kvbench-matrix",
		Host: hostmeta.Collect(),
		Params: map[string]any{
			"ops": *ops, "conns": *conns, "keys": *keys, "vsize": *vsize,
			"transport": "unix", "get_ratio": 0.9, "seed": 42,
			"rounds": *rounds, "cores": cores, "cpus": runtime.NumCPU(),
		},
		Runs:            runs,
		WorkerHeadline:  workerHL,
		NetloopHeadline: netloopHL,
	}
	if err := writeJSON(*out, art); err != nil {
		fatal(err)
	}
	fmt.Printf("worker headline  (cores=%d shards=%d depth=%d): mutex %.0f ops/sec, worker %.0f ops/sec, speedup %.2fx\n",
		workerHL.Cores, workerHL.Shards, workerHL.Depth, workerHL.AOpsPerSec, workerHL.BOpsPerSec, workerHL.Speedup)
	fmt.Printf("netloop headline (cores=%d shards=%d depth=%d): goroutine %.0f ops/sec, netloop %.0f ops/sec, speedup %.2fx\n",
		netloopHL.Cores, netloopHL.Shards, netloopHL.Depth, netloopHL.AOpsPerSec, netloopHL.BOpsPerSec, netloopHL.Speedup)
	fmt.Printf("wrote %s\n", *out)
	if *check > 0 {
		if runtime.NumCPU() <= 1 {
			fmt.Printf("single-CPU host: %.2fx worker-speedup floor not enforced (both modes serialize behind the engine; the artifact's host stamp records this)\n", *check)
		} else if workerHL.Speedup < *check {
			fmt.Fprintf(os.Stderr, "throughput: worker speedup %.2fx below the %.2fx floor\n", workerHL.Speedup, *check)
			os.Exit(1)
		}
	}
}

// parseCores parses -cores; the default sweeps 1 and every hardware
// thread (deduped, ascending), so the artifact shows the scaling trend
// whenever the host can express one.
func parseCores(s string) ([]int, error) {
	if s == "" {
		if n := runtime.NumCPU(); n > 1 {
			return []int{1, n}, nil
		}
		return []int{1}, nil
	}
	var cores []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -cores value %q", part)
		}
		cores = append(cores, c)
	}
	return cores, nil
}

// benchOne boots kvserve for one spec (GOMAXPROCS via env, -netloop
// for the event-loop front-end), drives kvbench against it, and
// returns the parsed sweep.
func benchOne(tmp, kvserve, kvbench string, spec runSpec, ops, conns, keys, vsize int) ([]depthPoint, error) {
	sock := filepath.Join(tmp, fmt.Sprintf("kv-%s-%s-%d-%d.sock", spec.Dispatch, spec.Frontend, spec.Cores, spec.Shards))
	args := []string{
		"-sock", sock,
		"-shards", fmt.Sprint(spec.Shards),
		"-dispatch", spec.Dispatch,
		"-preload", "-keys", fmt.Sprint(keys), "-vsize", fmt.Sprint(vsize),
	}
	if spec.Frontend == "netloop" {
		args = append(args, "-netloop")
	}
	srv := exec.Command(kvserve, args...)
	srv.Env = append(os.Environ(), "GOMAXPROCS="+strconv.Itoa(spec.Cores))
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("start kvserve: %w", err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			<-done
		}
	}()
	if err := waitSocket(sock, 15*time.Second); err != nil {
		return nil, err
	}

	art := filepath.Join(tmp, fmt.Sprintf("sweep-%s-%s-%d-%d.json", spec.Dispatch, spec.Frontend, spec.Cores, spec.Shards))
	bench := exec.Command(kvbench,
		"-sock", sock,
		"-sweep", spec.sweep,
		"-ops", fmt.Sprint(ops),
		"-conns", fmt.Sprint(conns),
		"-keys", fmt.Sprint(keys),
		"-vsize", fmt.Sprint(vsize),
		"-json", art,
	)
	bench.Stdout = os.Stdout
	bench.Stderr = os.Stderr
	if err := bench.Run(); err != nil {
		return nil, fmt.Errorf("kvbench: %w", err)
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		return nil, err
	}
	var parsed benchArtifact
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("parse %s: %w", art, err)
	}
	for _, p := range parsed.Sweep {
		if p.Errors > 0 {
			return nil, fmt.Errorf("depth %d reported %d errors", p.Depth, p.Errors)
		}
	}
	return parsed.Sweep, nil
}

func waitSocket(path string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("unix", path); err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("kvserve socket %s not ready after %s", path, limit)
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "throughput:", err)
	os.Exit(1)
}
