// Command health orchestrates the fleet-observability experiment and
// writes BENCH_health.json:
//
//  1. boots a 3-node heartbeat-enabled cluster (each node with a
//     metrics listener) and waits until every node's CLUSTER HEALTH
//     row reports ok/up on a survivor's aggregated view;
//  2. measures heartbeat + digest-collection overhead with interleaved
//     A/B legs: kvbench -cluster throughput with CLUSTER HEARTBEAT OFF
//     vs ON (a scraper hammering /cluster/metrics during the ON legs),
//     paired per round, overhead = 1 - median(on/off) — the same
//     paired-median method kvbench -trace-overhead uses;
//  3. kills one node (SIGKILL, no goodbye) and times how long a
//     survivor takes to flip it to state:down in CLUSTER HEALTH. The
//     deadline is down_after x interval plus one bus RTT; the script
//     asserts detection within that bound plus a scheduling margin,
//     verifies the dead node's digest-derived series disappeared from
//     /cluster/metrics while its liveness series report down, and
//     saves the survivor's /cluster/snapshot.json.
//
// Usage (from the repo root):
//
//	go build -o /tmp/kvserve ./cmd/kvserve
//	go build -o /tmp/kvbench ./cmd/kvbench
//	go run ./scripts/health -kvserve /tmp/kvserve -kvbench /tmp/kvbench \
//	    -json results/BENCH_health.json -snapshot results/cluster_snapshot.json
//
// A missed detection deadline, surviving dead-node series, or an
// overhead above -max-overhead exits 1, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"addrkv/internal/resp"
)

type overheadResult struct {
	Rounds       int     `json:"rounds"`
	OpsPerSecOff float64 `json:"ops_per_sec_off"` // median of the off legs
	OpsPerSecOn  float64 `json:"ops_per_sec_on"`  // median of the on legs
	// OverheadFrac is 1 - median(on/off) over interleaved round pairs;
	// negative means the heartbeat-on leg measured faster (noise).
	OverheadFrac float64 `json:"overhead_frac"`
	MaxAllowed   float64 `json:"max_allowed"`
}

type downDetection struct {
	KilledNode     int     `json:"killed_node"`
	IntervalMS     float64 `json:"interval_ms"`
	DownAfter      uint64  `json:"down_after"`
	DeadlineMS     float64 `json:"deadline_ms"` // down_after x interval + RTT margin
	DetectedMS     float64 `json:"detected_ms"` // kill -> state:down on the survivor
	SeriesDropped  bool    `json:"series_dropped"`
	StateDegraded  bool    `json:"state_degraded"`
	SurvivorsUp    int     `json:"survivors_up"`
	SnapshotSaved  string  `json:"snapshot_saved"`
	HealthLineDown string  `json:"health_line_down"`
}

type healthReport struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"`
	Params    map[string]any `json:"params"`
	Overhead  overheadResult `json:"overhead"`
	Detection downDetection  `json:"detection"`
}

func main() {
	var (
		kvserve  = flag.String("kvserve", "", "path to a built kvserve binary (required)")
		kvbench  = flag.String("kvbench", "", "path to a built kvbench binary (required)")
		out      = flag.String("json", "results/BENCH_health.json", "artifact path")
		snapOut  = flag.String("snapshot", "results/cluster_snapshot.json", "where to save the survivor's /cluster/snapshot.json")
		hbMS     = flag.Int("hb-ms", 250, "heartbeat interval (ms)")
		ops      = flag.Int("ops", 20_000, "operations per overhead leg")
		conns    = flag.Int("conns", 4, "kvbench connections")
		depth    = flag.Int("depth", 16, "kvbench pipeline depth")
		keys     = flag.Int("keys", 10_000, "kvbench key-space size")
		rounds   = flag.Int("rounds", 5, "interleaved off/on overhead round pairs")
		maxOver  = flag.Float64("max-overhead", 0.02, "fail if heartbeat overhead exceeds this fraction")
		marginMS = flag.Int("margin-ms", 1500, "scheduling+RTT margin added to the detection deadline")
	)
	flag.Parse()
	if *kvserve == "" || *kvbench == "" {
		fmt.Fprintln(os.Stderr, "health: -kvserve and -kvbench are required")
		os.Exit(2)
	}
	tmp, err := os.MkdirTemp("", "health-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	cl := boot(*kvserve, 3, *hbMS)
	defer cl.stop()

	// Phase 1: the fleet converges — a survivor's aggregated view shows
	// every node ok and answering digest collection.
	waitHealthy(cl, 3, 20*time.Second)
	fmt.Printf("fleet healthy: 3 nodes ok on %s\n", cl.addrs[0])

	report := healthReport{
		Name: "health",
		Kind: "fleet-observability",
		Params: map[string]any{
			"nodes": 3, "hb_ms": *hbMS, "ops": *ops, "conns": *conns,
			"depth": *depth, "keys": *keys, "rounds": *rounds, "cpus": runtime.NumCPU(),
		},
	}

	// Phase 2: interleaved overhead legs.
	report.Overhead = measureOverhead(cl, *kvbench, tmp, *ops, *conns, *depth, *keys, *rounds, *maxOver)
	fmt.Printf("heartbeat overhead: off %.0f ops/s, on %.0f ops/s, frac %+.4f (max %.2f)\n",
		report.Overhead.OpsPerSecOff, report.Overhead.OpsPerSecOn,
		report.Overhead.OverheadFrac, *maxOver)

	// Phase 3: kill node 2 and time the survivor's verdict.
	report.Detection = detectDown(cl, *snapOut, *hbMS, *marginMS)
	fmt.Printf("node %d killed: down in %.0fms (deadline %.0fms), series dropped %v, cluster degraded %v\n",
		report.Detection.KilledNode, report.Detection.DetectedMS, report.Detection.DeadlineMS,
		report.Detection.SeriesDropped, report.Detection.StateDegraded)

	if err := writeJSON(*out, report); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	fail := false
	if report.Detection.DetectedMS > report.Detection.DeadlineMS {
		fmt.Fprintf(os.Stderr, "health: down detection %.0fms exceeded deadline %.0fms\n",
			report.Detection.DetectedMS, report.Detection.DeadlineMS)
		fail = true
	}
	if !report.Detection.SeriesDropped || !report.Detection.StateDegraded {
		fmt.Fprintln(os.Stderr, "health: dead-node series or degraded state check failed")
		fail = true
	}
	if report.Overhead.OverheadFrac > *maxOver {
		fmt.Fprintf(os.Stderr, "health: heartbeat overhead %.4f exceeds %.4f\n",
			report.Overhead.OverheadFrac, *maxOver)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// procCluster is one booted kvserve fleet with per-node metrics ports.
type procCluster struct {
	addrs   []string
	metrics []string
	procs   []*exec.Cmd
}

func boot(kvserve string, n, hbMS int) *procCluster {
	addrs := make([]string, n)
	buses := make([]string, n)
	metrics := make([]string, n)
	var spec []string
	for i := 0; i < n; i++ {
		addrs[i], buses[i], metrics[i] = reservePort(), reservePort(), reservePort()
		spec = append(spec, addrs[i]+"@"+buses[i])
	}
	cl := &procCluster{addrs: addrs, metrics: metrics}
	for i := 0; i < n; i++ {
		srv := exec.Command(kvserve,
			"-addr", addrs[i],
			"-metrics-addr", metrics[i],
			"-cluster-nodes", strings.Join(spec, ","),
			"-cluster-self", fmt.Sprint(i),
			"-heartbeat-interval", fmt.Sprintf("%dms", hbMS),
			"-shards", "2",
		)
		srv.Stderr = os.Stderr
		if err := srv.Start(); err != nil {
			cl.stop()
			fatal(fmt.Errorf("start node %d: %w", i, err))
		}
		cl.procs = append(cl.procs, srv)
	}
	for _, a := range addrs {
		if err := waitTCP(a, 15*time.Second); err != nil {
			cl.stop()
			fatal(err)
		}
	}
	return cl
}

func (cl *procCluster) stop() {
	for _, p := range cl.procs {
		if p != nil && p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range cl.procs {
		if p == nil || p.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(p *exec.Cmd) { p.Wait(); close(done) }(p)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			p.Process.Kill()
			<-done
		}
	}
}

// cmd runs one RESP command on a fresh short-lived connection.
func cmd(addr string, args ...string) (any, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	if err := w.WriteCommand(ba...); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return resp.NewReader(conn).ReadReply()
}

// clusterHealth fetches and splits a node's CLUSTER HEALTH lines.
func clusterHealth(addr string) ([]string, error) {
	v, err := cmd(addr, "CLUSTER", "HEALTH")
	if err != nil {
		return nil, err
	}
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("CLUSTER HEALTH reply %T (%v)", v, v)
	}
	return strings.Split(strings.TrimRight(string(b), "\r\n"), "\r\n"), nil
}

// waitHealthy blocks until node 0's aggregated view shows n rows all
// state:ok up:1.
func waitHealthy(cl *procCluster, n int, limit time.Duration) {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		lines, err := clusterHealth(cl.addrs[0])
		if err == nil && len(lines) == n {
			ok := 0
			for _, ln := range lines {
				if strings.Contains(ln, "state:ok") && strings.Contains(ln, "up:1") {
					ok++
				}
			}
			if ok == n {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatal(fmt.Errorf("fleet did not converge to %d healthy nodes within %s", n, limit))
}

// benchLeg runs one kvbench -cluster leg and returns its ops/sec.
func benchLeg(kvbench, addr, art string, ops, conns, depth, keys int) float64 {
	bench := exec.Command(kvbench,
		"-addr", addr, "-cluster",
		"-sweep", fmt.Sprint(depth),
		"-ops", fmt.Sprint(ops), "-conns", fmt.Sprint(conns),
		"-keys", fmt.Sprint(keys),
		"-json", art,
	)
	bench.Stdout = io.Discard
	bench.Stderr = os.Stderr
	if err := bench.Run(); err != nil {
		fatal(fmt.Errorf("kvbench leg: %w", err))
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		fatal(err)
	}
	var parsed struct {
		Sweep []struct {
			OpsPerSec float64 `json:"ops_per_sec"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		fatal(err)
	}
	if len(parsed.Sweep) != 1 {
		fatal(fmt.Errorf("kvbench artifact has %d sweep points, want 1", len(parsed.Sweep)))
	}
	return parsed.Sweep[0].OpsPerSec
}

// setHeartbeats toggles the loops on every node.
func setHeartbeats(cl *procCluster, on bool) {
	arg := "OFF"
	if on {
		arg = "ON"
	}
	for _, a := range cl.addrs {
		if v, err := cmd(a, "CLUSTER", "HEARTBEAT", arg); err != nil || v != "OK" {
			fatal(fmt.Errorf("CLUSTER HEARTBEAT %s on %s: %v %v", arg, a, v, err))
		}
	}
}

// measureOverhead interleaves heartbeat-off and heartbeat-on kvbench
// legs. During the on legs a scraper loops over /cluster/metrics so
// the measured cost includes digest collection fan-outs, not just the
// background beat.
func measureOverhead(cl *procCluster, kvbench, tmp string, ops, conns, depth, keys, rounds int, maxOver float64) overheadResult {
	var offs, ons, ratios []float64
	for r := 0; r < rounds; r++ {
		setHeartbeats(cl, false)
		off := benchLeg(kvbench, cl.addrs[0], filepath.Join(tmp, fmt.Sprintf("off-%d.json", r)), ops, conns, depth, keys)

		setHeartbeats(cl, true)
		stop := make(chan struct{})
		scraped := make(chan struct{})
		go func() {
			defer close(scraped)
			c := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Get("http://" + cl.metrics[0] + "/cluster/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
		on := benchLeg(kvbench, cl.addrs[0], filepath.Join(tmp, fmt.Sprintf("on-%d.json", r)), ops, conns, depth, keys)
		close(stop)
		<-scraped

		offs, ons = append(offs, off), append(ons, on)
		ratios = append(ratios, on/off)
		fmt.Printf("round %d: off %.0f ops/s, on %.0f ops/s (ratio %.4f)\n", r+1, off, on, on/off)
	}
	setHeartbeats(cl, true)
	return overheadResult{
		Rounds:       rounds,
		OpsPerSecOff: median(offs),
		OpsPerSecOn:  median(ons),
		OverheadFrac: 1 - median(ratios),
		MaxAllowed:   maxOver,
	}
}

// detectDown SIGKILLs node 2 and times the survivor's state:down
// verdict, then verifies the metric-series drop and saves the
// survivor's snapshot.
func detectDown(cl *procCluster, snapOut string, hbMS, marginMS int) downDetection {
	const victim = 2
	det := downDetection{KilledNode: victim, IntervalMS: float64(hbMS)}

	// down_after from the survivor's own config (CLUSTER HEARTBEAT
	// STATUS), so the deadline tracks the server defaults.
	v, err := cmd(cl.addrs[0], "CLUSTER", "HEARTBEAT", "STATUS")
	if err != nil {
		fatal(err)
	}
	det.DownAfter = infoField(string(v.([]byte)), "heartbeat_down_after")
	if det.DownAfter == 0 {
		fatal(fmt.Errorf("survivor reports heartbeat_down_after:0"))
	}
	det.DeadlineMS = float64(det.DownAfter)*float64(hbMS) + float64(marginMS)

	killed := time.Now()
	cl.procs[victim].Process.Kill()

	for {
		lines, err := clusterHealth(cl.addrs[0])
		if err == nil {
			for _, ln := range lines {
				if strings.HasPrefix(ln, fmt.Sprintf("node:%d ", victim)) && strings.Contains(ln, "state:down") {
					det.HealthLineDown = ln
				}
			}
		}
		if det.HealthLineDown != "" {
			det.DetectedMS = float64(time.Since(killed)) / 1e6
			break
		}
		if time.Since(killed) > 30*time.Second {
			fatal(fmt.Errorf("node %d never went down on the survivor's view", victim))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The dead node's digest series must be gone; liveness series says
	// down; survivors still serve theirs.
	body := httpGet("http://" + cl.metrics[0] + "/cluster/metrics")
	det.SeriesDropped = !strings.Contains(body, fmt.Sprintf("addrkv_fleet_ops{node=\"%d\"}", victim)) &&
		strings.Contains(body, fmt.Sprintf("addrkv_fleet_up{node=\"%d\"} 0", victim)) &&
		strings.Contains(body, `addrkv_fleet_ops{node="1"}`)
	for _, ln := range strings.Split(body, "\n") {
		if strings.HasPrefix(ln, `addrkv_fleet_up{node="`) && strings.HasSuffix(ln, " 1") {
			det.SurvivorsUp++
		}
	}

	info, err := cmd(cl.addrs[0], "CLUSTER", "INFO")
	if err != nil {
		fatal(err)
	}
	det.StateDegraded = strings.Contains(string(info.([]byte)), "cluster_state:degraded")

	snap := httpGet("http://" + cl.metrics[0] + "/cluster/snapshot.json")
	if err := os.MkdirAll(filepath.Dir(snapOut), 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(snapOut, []byte(snap), 0o644); err != nil {
		fatal(err)
	}
	det.SnapshotSaved = snapOut
	return det
}

func httpGet(url string) string {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	return string(b)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// infoField extracts one numeric "key:value" field (0 if absent).
func infoField(payload, key string) uint64 {
	for _, line := range strings.Split(payload, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if v, ok := strings.CutPrefix(line, key+":"); ok {
			var n uint64
			if _, err := fmt.Sscanf(strings.TrimSpace(v), "%d", &n); err == nil {
				return n
			}
		}
	}
	return 0
}

func reservePort() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitTCP(addr string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("tcp", addr); err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("kvserve %s not ready after %s", addr, limit)
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "health:", err)
	os.Exit(1)
}
