// Command ycsb orchestrates the YCSB core-mix matrix: it execs
// prebuilt kvserve and kvbench binaries over a Unix socket, runs the
// standard mixes A–F plus the hot-key flood, and merges the per-run
// kvbench artifacts (plus server-side INFO counters) into one
// BENCH_ycsb.json.
//
// Usage (from the repo root):
//
//	go build -o /tmp/kvserve ./cmd/kvserve
//	go build -o /tmp/kvbench ./cmd/kvbench
//	go run ./scripts/ycsb -kvserve /tmp/kvserve -kvbench /tmp/kvbench \
//	    -json results/BENCH_ycsb.json
//
// Every mix runs against a fresh server on the btree index (workload E
// issues RANGE scans, which need ordered iteration). Workload A is run
// twice — once plain, once with -ttl so every update arms a deadline —
// to exercise the lazy + active expiry paths under realistic traffic.
// The headline is the flood comparison: the same hot-key stream is
// replayed against the STLT's SipHash and xxh3 fast-path hashes in
// interleaved rounds, pinning the hash-quality sensitivity of the
// fast-path hit rate under skew.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// depthPoint mirrors the fields this tool consumes from kvbench's
// depthResult JSON.
type depthPoint struct {
	Depth     int     `json:"depth"`
	Conns     int     `json:"conns"`
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type benchArtifact struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
	Sweep  []depthPoint   `json:"sweep"`
}

// serverStats is the slice of kvserve's INFO output the artifact
// keeps per run (stats are RESETSTATS'd after preload, so they cover
// only benchmark traffic).
type serverStats struct {
	Ops             uint64  `json:"ops"`
	CyclesPerOp     float64 `json:"cycles_per_op"`
	FastPathHitRate float64 `json:"fast_path_hit_rate"`
	TableMissRate   float64 `json:"table_miss_rate"`
	Scans           uint64  `json:"scans"`
	ExpiredKeys     uint64  `json:"expired_keys"`
	EvictedKeys     uint64  `json:"evicted_keys"`
	ExpiresArmed    uint64  `json:"expires_armed"`
}

// mixRun is one workload × server-config benchmark.
type mixRun struct {
	Workload  string      `json:"workload"`
	TTLMillis int64       `json:"ttl_ms,omitempty"`
	FastHash  string      `json:"fast_hash,omitempty"`
	OpsPerSec float64     `json:"ops_per_sec"`
	Ops       uint64      `json:"ops"`
	Server    serverStats `json:"server"`
}

// floodLeg aggregates the interleaved flood rounds for one hash.
type floodLeg struct {
	Hash        string    `json:"hash"`
	Rounds      []float64 `json:"rounds_ops_per_sec"`
	OpsPerSec   float64   `json:"ops_per_sec"`
	HitRate     float64   `json:"fast_path_hit_rate"`
	CyclesPerOp float64   `json:"cycles_per_op"`
}

type headline struct {
	SipHash floodLeg `json:"siphash"`
	Xxh3    floodLeg `json:"xxh3"`
	// Xxh3HitRateDelta is xxh3's fast-path hit rate minus SipHash's on
	// the identical flood stream; the paper's hash choice matters only
	// if this stays ~0 while xxh3 computes cheaper.
	Xxh3HitRateDelta float64 `json:"xxh3_hit_rate_delta"`
}

type matrixArtifact struct {
	Name     string         `json:"name"`
	Kind     string         `json:"kind"`
	Params   map[string]any `json:"params"`
	Runs     []mixRun       `json:"runs"`
	Headline headline       `json:"headline"`
}

func main() {
	var (
		kvserve = flag.String("kvserve", "", "path to a built kvserve binary (required)")
		kvbench = flag.String("kvbench", "", "path to a built kvbench binary (required)")
		out     = flag.String("json", "results/BENCH_ycsb.json", "merged artifact path")
		ops     = flag.Int("ops", 40_000, "operations per workload run")
		conns   = flag.Int("conns", 8, "concurrent benchmark connections")
		depth   = flag.Int("depth", 16, "pipeline depth per connection")
		keys    = flag.Int("keys", 10_000, "key-space size (server preloads it)")
		vsize   = flag.Int("vsize", 64, "value size")
		rounds  = flag.Int("rounds", 2, "interleaved SipHash/xxh3 rounds for the flood headline")
	)
	flag.Parse()
	if *kvserve == "" || *kvbench == "" {
		fmt.Fprintln(os.Stderr, "ycsb: -kvserve and -kvbench are required")
		os.Exit(2)
	}

	tmp, err := os.MkdirTemp("", "ycsb-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	cfg := benchCfg{tmp: tmp, kvserve: *kvserve, kvbench: *kvbench,
		ops: *ops, conns: *conns, depth: *depth, keys: *keys, vsize: *vsize}

	// The A–F sweep, plus workload A with TTLs to drive the expiry
	// machinery (lazy checks on the read half, active sweep on idle).
	var runs []mixRun
	for _, spec := range []mixRun{
		{Workload: "A"},
		{Workload: "A", TTLMillis: 200},
		{Workload: "B"},
		{Workload: "C"},
		{Workload: "D"},
		{Workload: "E"},
		{Workload: "F"},
	} {
		label := spec.Workload
		if spec.TTLMillis > 0 {
			label += fmt.Sprintf("+ttl=%dms", spec.TTLMillis)
		}
		fmt.Printf("== workload %s ==\n", label)
		run, err := cfg.benchOne(spec)
		if err != nil {
			fatal(fmt.Errorf("workload %s: %w", label, err))
		}
		runs = append(runs, run)
	}

	// Headline: SipHash vs xxh3 on the flood, interleaved so both
	// hashes sample the same noise regime. Hit rates are deterministic
	// given the trace; ops/sec takes the best round.
	legs := map[string]*floodLeg{
		"sipHash": {Hash: "sipHash"},
		"xxh3":    {Hash: "xxh3"},
	}
	for r := 0; r < *rounds; r++ {
		for _, hash := range []string{"sipHash", "xxh3"} {
			fmt.Printf("== flood round %d/%d: fast-hash %s ==\n", r+1, *rounds, hash)
			run, err := cfg.benchOne(mixRun{Workload: "flood", FastHash: hash})
			if err != nil {
				fatal(fmt.Errorf("flood/%s: %w", hash, err))
			}
			leg := legs[hash]
			leg.Rounds = append(leg.Rounds, run.OpsPerSec)
			if run.OpsPerSec > leg.OpsPerSec {
				leg.OpsPerSec = run.OpsPerSec
			}
			leg.HitRate = run.Server.FastPathHitRate
			leg.CyclesPerOp = run.Server.CyclesPerOp
			if r == *rounds-1 {
				runs = append(runs, run)
			}
		}
	}
	hl := headline{SipHash: *legs["sipHash"], Xxh3: *legs["xxh3"]}
	hl.Xxh3HitRateDelta = hl.Xxh3.HitRate - hl.SipHash.HitRate

	art := matrixArtifact{
		Name: "ycsb",
		Kind: "kvbench-ycsb",
		Params: map[string]any{
			"ops": *ops, "conns": *conns, "depth": *depth,
			"keys": *keys, "vsize": *vsize,
			"index": "btree", "dispatch": "worker",
			"transport": "unix", "seed": 42,
			"rounds": *rounds, "cpus": runtime.NumCPU(),
		},
		Runs:     runs,
		Headline: hl,
	}
	if err := writeJSON(*out, art); err != nil {
		fatal(err)
	}
	fmt.Printf("flood headline: sipHash %.0f ops/sec (hit %.4f), xxh3 %.0f ops/sec (hit %.4f), hit-rate delta %+.4f\n",
		hl.SipHash.OpsPerSec, hl.SipHash.HitRate,
		hl.Xxh3.OpsPerSec, hl.Xxh3.HitRate, hl.Xxh3HitRateDelta)
	fmt.Printf("wrote %s\n", *out)
}

type benchCfg struct {
	tmp, kvserve, kvbench          string
	ops, conns, depth, keys, vsize int
}

// benchOne boots a fresh kvserve for one spec, resets its stats after
// preload, drives kvbench against it, and folds the bench artifact
// plus the server's INFO counters into a mixRun.
func (c benchCfg) benchOne(spec mixRun) (mixRun, error) {
	tag := spec.Workload
	if spec.FastHash != "" {
		tag += "-" + spec.FastHash
	}
	if spec.TTLMillis > 0 {
		tag += "-ttl"
	}
	sock := filepath.Join(c.tmp, "kv-"+tag+".sock")
	args := []string{
		"-sock", sock,
		"-index", "btree",
		"-dispatch", "worker",
		"-shards", "4",
		"-preload", "-keys", strconv.Itoa(c.keys), "-vsize", strconv.Itoa(c.vsize),
	}
	if spec.FastHash != "" {
		args = append(args, "-fast-hash", spec.FastHash)
	}
	srv := exec.Command(c.kvserve, args...)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return mixRun{}, fmt.Errorf("start kvserve: %w", err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			<-done
		}
	}()
	if err := waitSocket(sock, 15*time.Second); err != nil {
		return mixRun{}, err
	}
	// Clear preload traffic from the simulated counters so INFO
	// reflects only the benchmark stream.
	if _, err := command(sock, "RESETSTATS"); err != nil {
		return mixRun{}, fmt.Errorf("resetstats: %w", err)
	}

	art := filepath.Join(c.tmp, "run-"+tag+".json")
	bargs := []string{
		"-sock", sock,
		"-workload", spec.Workload,
		"-ops", strconv.Itoa(c.ops),
		"-conns", strconv.Itoa(c.conns),
		"-depth", strconv.Itoa(c.depth),
		"-keys", strconv.Itoa(c.keys),
		"-vsize", strconv.Itoa(c.vsize),
		"-json", art,
	}
	if spec.TTLMillis > 0 {
		bargs = append(bargs, "-ttl", fmt.Sprintf("%dms", spec.TTLMillis))
	}
	bench := exec.Command(c.kvbench, bargs...)
	bench.Stdout = os.Stdout
	bench.Stderr = os.Stderr
	if err := bench.Run(); err != nil {
		return mixRun{}, fmt.Errorf("kvbench: %w", err)
	}

	stats, err := scrapeInfo(sock)
	if err != nil {
		return mixRun{}, err
	}

	raw, err := os.ReadFile(art)
	if err != nil {
		return mixRun{}, err
	}
	var parsed benchArtifact
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return mixRun{}, fmt.Errorf("parse %s: %w", art, err)
	}
	if len(parsed.Sweep) == 0 {
		return mixRun{}, fmt.Errorf("%s: empty sweep", art)
	}
	p := parsed.Sweep[len(parsed.Sweep)-1]
	if p.Errors > 0 {
		return mixRun{}, fmt.Errorf("workload %s reported %d errors", spec.Workload, p.Errors)
	}
	spec.OpsPerSec = p.OpsPerSec
	spec.Ops = p.Ops
	spec.Server = stats
	return spec, nil
}

// command sends one RESP command and returns the raw reply line or
// bulk payload.
func command(sock string, name string) (string, error) {
	conn, err := net.Dial("unix", sock)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "*1\r\n$%d\r\n%s\r\n", len(name), name)
	r := bufio.NewReader(conn)
	head, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	head = strings.TrimRight(head, "\r\n")
	switch {
	case strings.HasPrefix(head, "+"):
		return head[1:], nil
	case strings.HasPrefix(head, "-"):
		return "", fmt.Errorf("%s: %s", name, head[1:])
	case strings.HasPrefix(head, "$"):
		n, err := strconv.Atoi(head[1:])
		if err != nil || n < 0 {
			return "", fmt.Errorf("%s: bad bulk header %q", name, head)
		}
		buf := make([]byte, n+2)
		if _, err := readFull(r, buf); err != nil {
			return "", err
		}
		return string(buf[:n]), nil
	default:
		return "", fmt.Errorf("%s: unexpected reply %q", name, head)
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// scrapeInfo pulls the per-run counters out of kvserve's INFO reply.
func scrapeInfo(sock string) (serverStats, error) {
	text, err := command(sock, "INFO")
	if err != nil {
		return serverStats{}, err
	}
	var s serverStats
	for _, line := range strings.Split(text, "\r\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch k {
		case "ops":
			s.Ops, _ = strconv.ParseUint(v, 10, 64)
		case "cycles_per_op":
			s.CyclesPerOp, _ = strconv.ParseFloat(v, 64)
		case "fast_path_hit_rate":
			s.FastPathHitRate, _ = strconv.ParseFloat(v, 64)
		case "table_miss_rate":
			s.TableMissRate, _ = strconv.ParseFloat(v, 64)
		case "scans":
			s.Scans, _ = strconv.ParseUint(v, 10, 64)
		case "expired_keys":
			s.ExpiredKeys, _ = strconv.ParseUint(v, 10, 64)
		case "evicted_keys":
			s.EvictedKeys, _ = strconv.ParseUint(v, 10, 64)
		case "expires_armed":
			s.ExpiresArmed, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	return s, nil
}

func waitSocket(path string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("unix", path); err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("kvserve socket %s not ready after %s", path, limit)
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ycsb:", err)
	os.Exit(1)
}
