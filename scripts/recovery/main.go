// Command recovery measures the durability subsystem's recovery time
// across a log-size × snapshot-age matrix and writes the artifact
// consumed by CI as results/BENCH_recovery.json.
//
// Each cell runs a deterministic write stream against a WAL-attached
// cluster, optionally compacting at some point of the stream (the
// "snapshot age" — how much of the stream still sits in the log tail
// after the last snapshot), shuts down cleanly, then times a cold
// recovery: wal.OpenShard plus shard.Cluster.ApplyRecovery per shard.
// The point the matrix makes is the one snapshots exist for: recovery
// time tracks the bytes left in the tail, not the total history — a
// fresh snapshot turns an 80k-op history into a bulk load plus a
// near-empty tail.
//
// Every cell also re-runs recovery into a second cluster and requires
// both recoveries to agree with the live engine's final key count —
// a determinism/completeness gate, exit 1 on violation.
//
// Usage (from the repo root):
//
//	go run ./scripts/recovery -json results/BENCH_recovery.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"addrkv/internal/kv"
	"addrkv/internal/shard"
	"addrkv/internal/wal"
)

// cell is one matrix point's result.
type cell struct {
	Ops         int     `json:"ops"`
	SnapAge     float64 `json:"snapshot_age_frac"` // fraction of ops after the last snapshot (1 = never snapshotted)
	SnapBytes   int64   `json:"snap_bytes"`
	TailBytes   int64   `json:"tail_bytes"`
	Records     int     `json:"records_replayed"`
	Loads       int     `json:"loads"`
	Sets        int     `json:"sets"`
	Dels        int     `json:"dels"`
	Keys        int     `json:"keys"`
	RecoveryMS  float64 `json:"recovery_ms"`
	MBPerSecond float64 `json:"replay_mb_per_sec"`
}

type artifact struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
	Matrix []cell         `json:"matrix"`
}

func main() {
	var (
		jsonOut = flag.String("json", "results/BENCH_recovery.json", "artifact path")
		shards  = flag.Int("shards", 4, "cluster shard count")
		vsize   = flag.Int("vsize", 64, "value size")
	)
	flag.Parse()

	opsSizes := []int{5_000, 20_000, 80_000}
	// 1.0 = never snapshotted (whole history in the tail); 0.5 = half
	// the stream after the snapshot; 0.05 = freshly compacted.
	snapAges := []float64{1.0, 0.5, 0.05}

	art := artifact{
		Name: "recovery",
		Params: map[string]any{
			"shards":     *shards,
			"value_size": *vsize,
			"keys":       5000,
			"cpus":       runtime.NumCPU(),
			"go":         runtime.Version(),
		},
	}
	for _, ops := range opsSizes {
		for _, age := range snapAges {
			c, err := runCell(ops, age, *shards, *vsize)
			if err != nil {
				log.Fatalf("recovery: ops=%d age=%.2f: %v", ops, age, err)
			}
			art.Matrix = append(art.Matrix, c)
			fmt.Printf("ops=%-6d snap_age=%.2f  snap=%-8d tail=%-8d records=%-6d recovery=%.1fms (%.0f MB/s)\n",
				c.Ops, c.SnapAge, c.SnapBytes, c.TailBytes, c.Records, c.RecoveryMS, c.MBPerSecond)
		}
	}

	if err := os.MkdirAll(filepath.Dir(*jsonOut), 0o755); err != nil {
		log.Fatal(err)
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d cells)\n", *jsonOut, len(art.Matrix))
}

func engineCfg() kv.Config {
	return kv.Config{Keys: 5000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
}

// runCell executes one matrix point.
func runCell(ops int, snapAge float64, shards, vsize int) (cell, error) {
	dir, err := os.MkdirTemp("", "addrkv-recovery-*")
	if err != nil {
		return cell{}, err
	}
	defer os.RemoveAll(dir)

	live, err := shard.New(shard.Config{Shards: shards, Engine: engineCfg()})
	if err != nil {
		return cell{}, err
	}
	logs := make([]*wal.Log, shards)
	for i := 0; i < shards; i++ {
		l, _, err := wal.OpenShard(dir, i, wal.FsyncNo)
		if err != nil {
			return cell{}, err
		}
		logs[i] = l
	}
	if err := live.AttachWAL(logs); err != nil {
		return cell{}, err
	}

	value := make([]byte, vsize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	snapAt := ops - int(snapAge*float64(ops))
	key := make([]byte, 0, 32)
	for i := 0; i < ops; i++ {
		if i == snapAt && snapAt > 0 {
			if err := live.SnapshotAll(); err != nil {
				return cell{}, err
			}
		}
		key = fmt.Appendf(key[:0], "bench-key-%d", i%4000)
		if i%19 == 7 {
			live.Delete(key)
		} else {
			live.Set(key, value)
		}
	}
	if err := live.CloseWAL(); err != nil {
		return cell{}, err
	}

	var snapBytes, tailBytes int64
	for i := 0; i < shards; i++ {
		rec, err := wal.ReadShard(dir, i)
		if err != nil {
			return cell{}, err
		}
		if st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d.snap.%d", i, rec.Gen))); err == nil {
			snapBytes += st.Size()
		}
		if st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d.aof.%d", i, rec.Gen))); err == nil {
			tailBytes += st.Size()
		}
	}

	recoverOnce := func() (*shard.Cluster, shard.RecoveryApplyStats, time.Duration, error) {
		c, err := shard.New(shard.Config{Shards: shards, Engine: engineCfg()})
		if err != nil {
			return nil, shard.RecoveryApplyStats{}, 0, err
		}
		var agg shard.RecoveryApplyStats
		start := time.Now()
		for i := 0; i < shards; i++ {
			l, rec, err := wal.OpenShard(dir, i, wal.FsyncNo)
			if err != nil {
				return nil, agg, 0, err
			}
			st, err := c.ApplyRecovery(i, rec)
			l.Close()
			if err != nil {
				return nil, agg, 0, err
			}
			agg = agg.Add(st)
		}
		return c, agg, time.Since(start), nil
	}

	recovered, agg, dt, err := recoverOnce()
	if err != nil {
		return cell{}, err
	}
	again, _, _, err := recoverOnce()
	if err != nil {
		return cell{}, err
	}
	if recovered.Len() != live.Len() || again.Len() != live.Len() {
		return cell{}, fmt.Errorf("recovery gate failed: live %d keys, recoveries %d/%d",
			live.Len(), recovered.Len(), again.Len())
	}

	ms := float64(dt.Nanoseconds()) / 1e6
	mb := float64(snapBytes+tailBytes) / (1 << 20)
	c := cell{
		Ops:        ops,
		SnapAge:    snapAge,
		SnapBytes:  snapBytes,
		TailBytes:  tailBytes,
		Records:    agg.Ops(),
		Loads:      agg.Loads,
		Sets:       agg.Sets,
		Dels:       agg.Dels,
		Keys:       recovered.Len(),
		RecoveryMS: ms,
	}
	if ms > 0 {
		c.MBPerSecond = mb / (ms / 1e3)
	}
	return c, nil
}
