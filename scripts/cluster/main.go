// Command cluster orchestrates multi-node kvserve clusters on
// loopback and merges three experiments into one BENCH_cluster.json:
//
//  1. a throughput/latency sweep over nodes × conns × pipeline depth,
//     driven by kvbench -cluster (slot-routed, redirect-following);
//  2. a live slot migration under concurrent read/write traffic, with
//     a zero-lost / zero-stale / zero-duplicated key audit — every
//     acked write must be readable at the new owner byte-for-byte,
//     and the old owner must answer MOVED for every migrated key;
//  3. the STLT warm-up cliff: the same migration with -cluster-rewarm
//     on vs off, sampling the destination's windowed fast-path hit
//     rate after the ownership flip. With rewarm on the destination's
//     STLT is warmed while records install (the paper's insertSTLT
//     applied at migration time), so the first window already hits;
//     with it off the first window pays the cliff and later windows
//     recover as demand GETs refill the table.
//
// Usage (from the repo root):
//
//	go build -o /tmp/kvserve ./cmd/kvserve
//	go build -o /tmp/kvbench ./cmd/kvbench
//	go run ./scripts/cluster -kvserve /tmp/kvserve -kvbench /tmp/kvbench \
//	    -json results/BENCH_cluster.json
//
// The audit failing (any lost, stale, or duplicated key) exits 1, so
// CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"addrkv/internal/cluster"
	"addrkv/internal/resp"
)

// depthPoint mirrors the kvbench depthResult fields this tool keeps.
type depthPoint struct {
	Depth     int     `json:"depth"`
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	OpsPerSec float64 `json:"ops_per_sec"`
	LatencyUS struct {
		P50  uint64 `json:"p50"`
		P99  uint64 `json:"p99"`
		P999 uint64 `json:"p999"`
	} `json:"latency_us"`
	Moved    uint64 `json:"moved,omitempty"`
	Ask      uint64 `json:"ask,omitempty"`
	TryAgain uint64 `json:"tryagain,omitempty"`
}

type benchArtifact struct {
	Sweep []depthPoint `json:"sweep"`
}

// sweepResult is one cell of the nodes × conns matrix.
type sweepResult struct {
	Nodes int          `json:"nodes"`
	Conns int          `json:"conns"`
	Sweep []depthPoint `json:"sweep"`
}

// migrationAudit records the under-load migration and its key audit.
type migrationAudit struct {
	Slot         int    `json:"slot"`
	Keys         int    `json:"keys"`
	AckedWrites  uint64 `json:"acked_writes"`
	MigrationUS  uint64 `json:"migration_us"`
	MigratedKeys uint64 `json:"migrated_keys"`
	Lost         int    `json:"lost"`
	Stale        int    `json:"stale"`
	Duplicated   int    `json:"duplicated"`
	MovedSeen    uint64 `json:"moved_seen"`
	AskSeen      uint64 `json:"ask_seen"`
	TryAgainSeen uint64 `json:"tryagain_seen"`
}

// rewarmWindow is one post-migration sampling window at the
// destination: GETs issued and the fast-path hits they scored.
type rewarmWindow struct {
	Window   int     `json:"window"`
	Gets     uint64  `json:"gets"`
	FastHits uint64  `json:"fast_hits"`
	HitRate  float64 `json:"hit_rate"`
}

type rewarmResult struct {
	Rewarm      bool           `json:"rewarm"`
	Rewarmed    uint64         `json:"stlt_rows_rewarmed"`
	MigrationUS uint64         `json:"migration_us"`
	Timeline    []rewarmWindow `json:"timeline"`
}

type clusterReport struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"`
	Params    map[string]any `json:"params"`
	Sweeps    []sweepResult  `json:"sweeps"`
	Migration migrationAudit `json:"migration"`
	Rewarm    []rewarmResult `json:"rewarm"`
}

func main() {
	var (
		kvserve  = flag.String("kvserve", "", "path to a built kvserve binary (required)")
		kvbench  = flag.String("kvbench", "", "path to a built kvbench binary (required)")
		out      = flag.String("json", "results/BENCH_cluster.json", "merged artifact path")
		ops      = flag.Int("ops", 40_000, "operations per sweep depth point")
		keys     = flag.Int("keys", 10_000, "key-space size for the sweep workload")
		vsize    = flag.Int("vsize", 64, "value size")
		depths   = flag.String("depths", "1,8,32", "pipeline depths swept per cell")
		nodesArg = flag.String("nodes", "1,3", "cluster sizes swept")
		connsArg = flag.String("conns", "2,8", "connection counts swept")
		migKeys  = flag.Int("mig-keys", 200, "keys in the migrated slot")
		windows  = flag.Int("windows", 6, "post-migration hit-rate sampling windows")
		winGets  = flag.Int("window-gets", 400, "GETs per sampling window")
	)
	flag.Parse()
	if *kvserve == "" || *kvbench == "" {
		fmt.Fprintln(os.Stderr, "cluster: -kvserve and -kvbench are required")
		os.Exit(2)
	}
	tmp, err := os.MkdirTemp("", "cluster-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	report := clusterReport{
		Name: "cluster",
		Kind: "kvbench-cluster-matrix",
		Params: map[string]any{
			"ops": *ops, "keys": *keys, "vsize": *vsize, "depths": *depths,
			"mig_keys": *migKeys, "windows": *windows, "window_gets": *winGets,
			"cpus": runtime.NumCPU(),
		},
	}

	for _, n := range parseInts(*nodesArg) {
		cl := boot(*kvserve, n, true)
		for _, conns := range parseInts(*connsArg) {
			fmt.Printf("== sweep: %d node(s), %d conn(s), depths %s ==\n", n, conns, *depths)
			art := filepath.Join(tmp, fmt.Sprintf("sweep-%d-%d.json", n, conns))
			bench := exec.Command(*kvbench,
				"-addr", cl.addrs[0], "-cluster",
				"-sweep", *depths,
				"-ops", fmt.Sprint(*ops), "-conns", fmt.Sprint(conns),
				"-keys", fmt.Sprint(*keys), "-vsize", fmt.Sprint(*vsize),
				"-json", art,
			)
			bench.Stdout = os.Stdout
			bench.Stderr = os.Stderr
			if err := bench.Run(); err != nil {
				cl.stop()
				fatal(fmt.Errorf("kvbench nodes=%d conns=%d: %w", n, conns, err))
			}
			raw, err := os.ReadFile(art)
			if err != nil {
				cl.stop()
				fatal(err)
			}
			var parsed benchArtifact
			if err := json.Unmarshal(raw, &parsed); err != nil {
				cl.stop()
				fatal(err)
			}
			for _, p := range parsed.Sweep {
				if p.Errors > 0 {
					cl.stop()
					fatal(fmt.Errorf("nodes=%d conns=%d depth=%d: %d error replies", n, conns, p.Depth, p.Errors))
				}
			}
			report.Sweeps = append(report.Sweeps, sweepResult{Nodes: n, Conns: conns, Sweep: parsed.Sweep})
		}
		cl.stop()
	}

	report.Migration = migrationUnderLoad(*kvserve, *migKeys)
	for _, rewarm := range []bool{true, false} {
		report.Rewarm = append(report.Rewarm, rewarmCliff(*kvserve, rewarm, *migKeys, *windows, *winGets))
	}

	if err := writeJSON(*out, report); err != nil {
		fatal(err)
	}
	m := report.Migration
	fmt.Printf("migration audit: %d keys, %d acked writes, %d lost, %d stale, %d duplicated (%d moved, %d ask seen)\n",
		m.Keys, m.AckedWrites, m.Lost, m.Stale, m.Duplicated, m.MovedSeen, m.AskSeen)
	for _, r := range report.Rewarm {
		first, last := r.Timeline[0], r.Timeline[len(r.Timeline)-1]
		fmt.Printf("rewarm=%v: %d rows warmed at install, window-1 hit rate %.3f, window-%d %.3f\n",
			r.Rewarm, r.Rewarmed, first.HitRate, last.Window, last.HitRate)
	}
	fmt.Printf("wrote %s\n", *out)
	if m.Lost+m.Stale+m.Duplicated > 0 {
		fmt.Fprintln(os.Stderr, "cluster: migration audit failed")
		os.Exit(1)
	}
}

// procCluster is one booted N-node kvserve cluster.
type procCluster struct {
	addrs []string
	procs []*exec.Cmd
}

// boot starts n kvserve cluster nodes on reserved loopback ports and
// waits until every client listener answers.
func boot(kvserve string, n int, rewarm bool) *procCluster {
	addrs := make([]string, n)
	buses := make([]string, n)
	var spec []string
	for i := 0; i < n; i++ {
		addrs[i], buses[i] = reservePort(), reservePort()
		spec = append(spec, addrs[i]+"@"+buses[i])
	}
	cl := &procCluster{addrs: addrs}
	for i := 0; i < n; i++ {
		srv := exec.Command(kvserve,
			"-addr", addrs[i],
			"-cluster-nodes", strings.Join(spec, ","),
			"-cluster-self", fmt.Sprint(i),
			fmt.Sprintf("-cluster-rewarm=%v", rewarm),
			"-shards", "2",
		)
		srv.Stderr = os.Stderr
		if err := srv.Start(); err != nil {
			cl.stop()
			fatal(fmt.Errorf("start node %d: %w", i, err))
		}
		cl.procs = append(cl.procs, srv)
	}
	for _, a := range addrs {
		if err := waitTCP(a, 15*time.Second); err != nil {
			cl.stop()
			fatal(err)
		}
	}
	return cl
}

func (cl *procCluster) stop() {
	for _, p := range cl.procs {
		if p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range cl.procs {
		if p.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(p *exec.Cmd) { p.Wait(); close(done) }(p)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			p.Process.Kill()
			<-done
		}
	}
}

// rclient is a minimal redirect-following cluster client: one
// persistent connection per node, commands issued one at a time.
type rclient struct {
	conns                map[string]*nodeConn
	moved, ask, tryagain uint64
}

type nodeConn struct {
	c net.Conn
	r *resp.Reader
	w *resp.Writer
}

func newClient() *rclient { return &rclient{conns: map[string]*nodeConn{}} }

func (rc *rclient) close() {
	for _, nc := range rc.conns {
		nc.c.Close()
	}
}

func (rc *rclient) conn(addr string) (*nodeConn, error) {
	if nc, ok := rc.conns[addr]; ok {
		return nc, nil
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	nc := &nodeConn{c: c, r: resp.NewReader(c), w: resp.NewWriter(c)}
	rc.conns[addr] = nc
	return nc, nil
}

// cmd runs one command against one node and returns the decoded reply.
func (rc *rclient) cmd(addr string, args ...string) (any, error) {
	nc, err := rc.conn(addr)
	if err != nil {
		return nil, err
	}
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	if err := nc.w.WriteCommand(ba...); err != nil {
		return nil, err
	}
	if err := nc.w.Flush(); err != nil {
		return nil, err
	}
	return nc.r.ReadReply()
}

// do runs one command starting at addr and follows MOVED/ASK/TRYAGAIN
// until it lands, like a real cluster client.
func (rc *rclient) do(addr string, args ...string) (any, error) {
	for attempt := 0; attempt < 32; attempt++ {
		v, err := rc.cmd(addr, args...)
		if err != nil {
			return nil, err
		}
		e, isErr := v.(error)
		if !isErr {
			return v, nil
		}
		f := strings.Fields(e.Error())
		switch {
		case len(f) == 3 && f[0] == "MOVED":
			rc.moved++
			addr = f[2]
		case len(f) == 3 && f[0] == "ASK":
			rc.ask++
			// ASKING arms the next command on that connection; the two
			// sequential roundtrips below stay on one conn.
			if _, err := rc.cmd(f[2], "ASKING"); err != nil {
				return nil, err
			}
			if v, err = rc.cmd(f[2], args...); err != nil {
				return nil, err
			}
			if _, stillErr := v.(error); !stillErr {
				return v, nil
			}
		case len(f) > 0 && f[0] == "TRYAGAIN":
			rc.tryagain++
			time.Sleep(time.Millisecond)
		default:
			return v, nil // a genuine error reply
		}
	}
	return nil, fmt.Errorf("redirects did not settle for %v", args)
}

// slotKeys generates count distinct keys hashing to slot.
func slotKeys(slot uint16, count int) []string {
	var out []string
	for i := 0; len(out) < count; i++ {
		k := fmt.Sprintf("hot:%d", i)
		if cluster.SlotOf([]byte(k)) == slot {
			out = append(out, k)
		}
	}
	return out
}

// migrationUnderLoad boots a 2-node cluster, keeps a writer hammering
// one slot while that slot migrates, and audits every acked write.
func migrationUnderLoad(kvserve string, nkeys int) migrationAudit {
	const slot = 42 // owned by node 0 under the even split
	cl := boot(kvserve, 2, true)
	defer cl.stop()
	keys := slotKeys(slot, nkeys)

	// Seed every key so the audit's "lost" check covers the full set.
	seedc := newClient()
	for i, k := range keys {
		if v, err := seedc.do(cl.addrs[0], "SET", k, fmt.Sprintf("seed-%d", i)); err != nil || v != "OK" {
			fatal(fmt.Errorf("seed %s: %v %v", k, v, err))
		}
	}
	seedc.close()

	// Writer: rounds of SET over the slot's keys with round-stamped
	// values, each acked before the next; acked[] is therefore exactly
	// the last value the server confirmed for every key.
	acked := make(map[string]string, nkeys)
	for i, k := range keys {
		acked[k] = fmt.Sprintf("seed-%d", i)
	}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes uint64
	wc := newClient()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			for i, k := range keys {
				select {
				case <-stop:
					return
				default:
				}
				val := fmt.Sprintf("r%d-%d", round, i)
				v, err := wc.do(cl.addrs[0], "SET", k, val)
				if err != nil {
					fatal(fmt.Errorf("writer: %w", err))
				}
				if v == "OK" {
					mu.Lock()
					acked[k] = val
					writes++
					mu.Unlock()
				}
			}
		}
	}()

	time.Sleep(150 * time.Millisecond) // migrate mid-traffic
	migc := newClient()
	rep, err := migc.cmd(cl.addrs[0], "CLUSTER", "MIGRATE", fmt.Sprint(slot), "1")
	if err != nil {
		fatal(fmt.Errorf("CLUSTER MIGRATE: %w", err))
	}
	if s, ok := rep.(string); !ok || !strings.HasPrefix(s, "OK slot=42") {
		fatal(fmt.Errorf("CLUSTER MIGRATE reply: %v", rep))
	}
	time.Sleep(150 * time.Millisecond) // keep writing against the new owner
	close(stop)
	wg.Wait()

	// Audit: every acked value must be served (by redirect) exactly as
	// written, and the old owner must redirect — a value served from
	// node 0 after commit would be a duplicate/stale copy.
	audit := migrationAudit{
		Slot: slot, Keys: nkeys, AckedWrites: writes,
		MovedSeen: wc.moved, AskSeen: wc.ask, TryAgainSeen: wc.tryagain,
	}
	ac := newClient()
	for _, k := range keys {
		v, err := ac.do(cl.addrs[0], "GET", k)
		if err != nil {
			fatal(err)
		}
		b, ok := v.([]byte)
		if !ok || b == nil {
			audit.Lost++
			continue
		}
		if string(b) != acked[k] {
			audit.Stale++
		}
		direct, err := ac.cmd(cl.addrs[0], "GET", k)
		if err != nil {
			fatal(err)
		}
		if _, isErr := direct.(error); !isErr {
			audit.Duplicated++
		}
	}
	info := fetchInfo(ac, cl.addrs[0])
	audit.MigrationUS = infoField(info, "cluster_last_migration_us")
	audit.MigratedKeys = infoField(info, "cluster_migrated_keys")
	wc.close()
	migc.close()
	ac.close()
	return audit
}

// rewarmCliff migrates a warm slot and samples the destination's
// windowed fast-path hit rate, with STLT re-warm on or off.
func rewarmCliff(kvserve string, rewarm bool, nkeys, windows, winGets int) rewarmResult {
	const slot = 42
	cl := boot(kvserve, 2, rewarm)
	defer cl.stop()
	keys := slotKeys(slot, nkeys)
	c := newClient()
	defer c.close()
	for i, k := range keys {
		if v, err := c.do(cl.addrs[0], "SET", k, fmt.Sprintf("w-%d", i)); err != nil || v != "OK" {
			fatal(fmt.Errorf("seed %s: %v %v", k, v, err))
		}
	}
	// Warm the SOURCE fast path so the migration moves a hot slot.
	for _, k := range keys {
		if _, err := c.do(cl.addrs[0], "GET", k); err != nil {
			fatal(err)
		}
	}
	if _, err := c.cmd(cl.addrs[0], "CLUSTER", "MIGRATE", fmt.Sprint(slot), "1"); err != nil {
		fatal(fmt.Errorf("CLUSTER MIGRATE: %w", err))
	}

	res := rewarmResult{Rewarm: rewarm}
	info := fetchInfo(c, cl.addrs[1])
	res.Rewarmed = infoField(info, "cluster_import_rewarmed")
	res.MigrationUS = infoField(fetchInfo(c, cl.addrs[0]), "cluster_last_migration_us")
	// Timeline: windows of GETs against the new owner; the per-window
	// hit-rate delta exposes (or rules out) the warm-up cliff.
	prevGets := infoField(info, "cluster_gets_total")
	prevHits := infoField(info, "cluster_fast_hits_total")
	for w := 0; w < windows; w++ {
		for g := 0; g < winGets; g++ {
			k := keys[g%len(keys)]
			if _, err := c.do(cl.addrs[1], "GET", k); err != nil {
				fatal(err)
			}
		}
		info := fetchInfo(c, cl.addrs[1])
		gets := infoField(info, "cluster_gets_total")
		hits := infoField(info, "cluster_fast_hits_total")
		win := rewarmWindow{Window: w + 1, Gets: gets - prevGets, FastHits: hits - prevHits}
		if win.Gets > 0 {
			win.HitRate = float64(win.FastHits) / float64(win.Gets)
		}
		res.Timeline = append(res.Timeline, win)
		prevGets, prevHits = gets, hits
	}
	return res
}

// fetchInfo pulls one INFO payload.
func fetchInfo(rc *rclient, addr string) string {
	v, err := rc.cmd(addr, "INFO")
	if err != nil {
		fatal(err)
	}
	b, ok := v.([]byte)
	if !ok {
		fatal(fmt.Errorf("INFO reply %T", v))
	}
	return string(b)
}

// infoField extracts one numeric "key:value" INFO field (0 if absent).
func infoField(payload, key string) uint64 {
	for _, line := range strings.Split(payload, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if v, ok := strings.CutPrefix(line, key+":"); ok {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err == nil {
				return n
			}
		}
	}
	return 0
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad list entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

// reservePort grabs a free loopback port and releases it for the node
// to re-bind (benign race on a loopback test host).
func reservePort() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitTCP(addr string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("tcp", addr); err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("kvserve %s not ready after %s", addr, limit)
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
