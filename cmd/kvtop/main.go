// Command kvtop is a terminal fleet monitor for cluster-mode kvserve.
// It polls one node's /cluster/snapshot.json (the aggregated fleet
// view that node collects over the bus) and renders a per-node table:
// liveness state, heartbeat age, slot counts, key counts, op rates,
// fast-path hit rate, queue depth, and latency quantiles, plus the
// migration progress block when a migration is running.
//
//	kvtop -url http://127.0.0.1:9090            # live, refreshes every second
//	kvtop -url http://127.0.0.1:9090 -once      # one frame, no screen clear
//	kvtop -url http://127.0.0.1:9090 -interval 250ms
//
// The -url flag takes the node's -metrics-addr base URL; kvtop appends
// /cluster/snapshot.json. Any node works — each aggregates the whole
// fleet — but a partition is easiest to see by watching a survivor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

// The /cluster/snapshot.json schema, mirrored from kvserve. Only the
// fields the table renders are listed; unknown fields are ignored so
// the two binaries can skew across versions.
type snapshot struct {
	Name       string         `json:"name"`
	SourceNode int            `json:"source_node"`
	MapVersion uint64         `json:"map_version"`
	State      string         `json:"cluster_state"`
	Heartbeat  heartbeatInfo  `json:"heartbeat"`
	Nodes      []nodeRow      `json:"nodes"`
	Migration  *migrationInfo `json:"migration"`
}

type heartbeatInfo struct {
	Enabled    bool    `json:"enabled"`
	On         bool    `json:"on"`
	IntervalMS float64 `json:"interval_ms"`
	DownAfter  int     `json:"down_after"`
}

type nodeRow struct {
	Node   int         `json:"node"`
	Addr   string      `json:"addr"`
	State  string      `json:"state"`
	Up     bool        `json:"up"`
	AgeMS  float64     `json:"age_ms"`
	Beats  uint64      `json:"beats"`
	Digest *digestInfo `json:"digest"`
}

type digestInfo struct {
	SlotsOwned     uint32  `json:"slots_owned"`
	SlotsMigrating uint32  `json:"slots_migrating"`
	SlotsImporting uint32  `json:"slots_importing"`
	Ops            uint64  `json:"ops"`
	Keys           uint64  `json:"keys"`
	UsedBytes      uint64  `json:"used_bytes"`
	HitRate        float64 `json:"hit_rate"`
	QueueDepth     uint64  `json:"queue_depth"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	LatP50US       float64 `json:"lat_p50_us"`
	LatP99US       float64 `json:"lat_p99_us"`
}

type migrationInfo struct {
	Slot           uint16 `json:"slot"`
	Dest           int    `json:"dest"`
	Active         bool   `json:"active"`
	Failed         bool   `json:"failed"`
	KeysTotal      int    `json:"keys_total"`
	KeysShipped    int    `json:"keys_shipped"`
	BatchesTotal   int    `json:"batches_total"`
	BatchesShipped int    `json:"batches_shipped"`
	Bytes          int    `json:"bytes"`
	ElapsedUS      int64  `json:"elapsed_us"`
	EtaUS          int64  `json:"eta_us"`
}

// fetch pulls and decodes one snapshot.
func fetch(c *http.Client, url string) (*snapshot, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var s snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// render writes one frame: a fleet header, the per-node table, and the
// migration progress line when one is running.
func render(w io.Writer, s *snapshot) {
	hb := "off"
	if s.Heartbeat.Enabled {
		hb = fmt.Sprintf("%.0fms x%d", s.Heartbeat.IntervalMS, s.Heartbeat.DownAfter)
		if !s.Heartbeat.On {
			hb += " (paused)"
		}
	}
	fmt.Fprintf(w, "%s  state=%s  map=v%d  heartbeat=%s  source=node%d\n\n",
		s.Name, s.State, s.MapVersion, hb, s.SourceNode)

	fmt.Fprintf(w, "%-4s %-16s %-7s %-3s %8s %7s %6s %5s %9s %9s %6s %6s %9s %9s\n",
		"NODE", "ADDR", "STATE", "UP", "AGE", "BEATS", "SLOTS", "MIG", "KEYS", "OPS/S", "HIT%", "QDEPTH", "P50us", "P99us")
	for _, n := range s.Nodes {
		up := "no"
		if n.Up {
			up = "yes"
		}
		age := time.Duration(n.AgeMS * float64(time.Millisecond)).Round(time.Millisecond)
		if n.Digest == nil {
			fmt.Fprintf(w, "%-4d %-16s %-7s %-3s %8s %7d %6s %5s %9s %9s %6s %6s %9s %9s\n",
				n.Node, n.Addr, n.State, up, age, n.Beats, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		d := n.Digest
		mig := fmt.Sprintf("%d/%d", d.SlotsMigrating, d.SlotsImporting)
		fmt.Fprintf(w, "%-4d %-16s %-7s %-3s %8s %7d %6d %5s %9d %9.0f %6.1f %6d %9.1f %9.1f\n",
			n.Node, n.Addr, n.State, up, age, n.Beats, d.SlotsOwned, mig,
			d.Keys, d.OpsPerSec, 100*d.HitRate, d.QueueDepth, d.LatP50US, d.LatP99US)
	}

	if m := s.Migration; m != nil {
		status := "done"
		if m.Active {
			status = "active"
		}
		if m.Failed {
			status = "FAILED"
		}
		pct := 100.0
		if m.KeysTotal > 0 {
			pct = 100 * float64(m.KeysShipped) / float64(m.KeysTotal)
		}
		fmt.Fprintf(w, "\nmigration slot %d -> node %d: %s  %d/%d keys (%.0f%%)  %d/%d batches  %d bytes  elapsed %v  eta %v\n",
			m.Slot, m.Dest, status, m.KeysShipped, m.KeysTotal, pct,
			m.BatchesShipped, m.BatchesTotal, m.Bytes,
			(time.Duration(m.ElapsedUS) * time.Microsecond).Round(time.Millisecond),
			(time.Duration(m.EtaUS) * time.Microsecond).Round(time.Millisecond))
	}
}

func main() {
	var (
		url      = flag.String("url", "", "kvserve -metrics-addr base URL, e.g. http://127.0.0.1:9090")
		interval = flag.Duration("interval", time.Second, "poll period")
		once     = flag.Bool("once", false, "render one frame and exit")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "kvtop: -url is required")
		os.Exit(2)
	}
	target := strings.TrimRight(*url, "/") + "/cluster/snapshot.json"
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		s, err := fetch(client, target)
		if err != nil {
			log.Fatalf("kvtop: %v", err)
		}
		render(os.Stdout, s)
		return
	}
	for {
		s, err := fetch(client, target)
		fmt.Print("\x1b[2J\x1b[H") // clear + home, one frame per screen
		if err != nil {
			fmt.Printf("kvtop: %v (retrying every %v)\n", err, *interval)
		} else {
			render(os.Stdout, s)
		}
		time.Sleep(*interval)
	}
}
