package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sampleSnapshot is a canned /cluster/snapshot.json payload: a healthy
// node with a digest, a dead node without one, and a finished
// migration — the three rendering shapes kvtop distinguishes.
const sampleSnapshot = `{
  "name": "kvserve-cluster",
  "source_node": 0,
  "map_version": 3,
  "cluster_state": "degraded",
  "heartbeat": {"enabled": true, "on": true, "interval_ms": 500, "down_after": 4, "sent": 120, "failures": 2},
  "nodes": [
    {"node": 0, "addr": "127.0.0.1:6380", "bus": "127.0.0.1:7380", "state": "ok", "up": true,
     "age_ms": 0, "beats": 60,
     "digest": {"map_version": 3, "slots_owned": 8192, "slots_migrating": 1, "slots_importing": 0,
                "ops": 5000, "keys": 1234, "used_bytes": 99000, "hit_rate": 0.875,
                "queue_depth": 3, "ops_per_sec": 2500, "lat_p50_us": 11.5, "lat_p99_us": 90.25}},
    {"node": 1, "addr": "127.0.0.1:6381", "bus": "127.0.0.1:7381", "state": "down", "up": false,
     "age_ms": 4200, "beats": 31}
  ],
  "migration": {"slot": 42, "dest": 1, "active": false, "failed": false,
                "keys_total": 40, "keys_shipped": 40, "batches_total": 5, "batches_shipped": 5,
                "bytes": 4096, "elapsed_us": 1500, "eta_us": 0}
}`

// TestFetchAndRender drives the full path — HTTP fetch, JSON decode,
// table render — against a stub server and pins the table content.
func TestFetchAndRender(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/snapshot.json" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(sampleSnapshot))
	}))
	defer srv.Close()

	s, err := fetch(srv.Client(), srv.URL+"/cluster/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, s)
	out := b.String()

	for _, want := range []string{
		"state=degraded", "map=v3", "heartbeat=500ms x4", "source=node0",
		"NODE", "STATE", "OPS/S", // table header
		"127.0.0.1:6380", "8192", "1234", "2500", "87.5", // node 0 digest row
		"down", "127.0.0.1:6381", // node 1 liveness row
		"migration slot 42 -> node 1: done", "40/40 keys (100%)", "5/5 batches",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered frame missing %q:\n%s", want, out)
		}
	}
	// The dead node renders placeholders, never stale digest numbers.
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "127.0.0.1:6381") && !strings.Contains(ln, " - ") {
			t.Fatalf("dead node row has no placeholder fields: %s", ln)
		}
	}
}

// TestFetchErrors: non-200 responses and unreachable servers surface
// as errors, not empty frames.
func TestFetchErrors(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	if _, err := fetch(srv.Client(), srv.URL+"/cluster/snapshot.json"); err == nil {
		t.Fatal("404 did not error")
	}
	srv.Close()
	if _, err := fetch(http.DefaultClient, srv.URL+"/cluster/snapshot.json"); err == nil {
		t.Fatal("dead server did not error")
	}
}
