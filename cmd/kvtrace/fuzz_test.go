package main

import (
	"testing"

	"addrkv/internal/trace"
)

// FuzzParseBundle hammers the dump parser with mutated inputs: it must
// never panic, and anything it accepts must survive a re-marshal
// round trip (the parser is the trust boundary between dumped files on
// disk and every kvtrace subcommand).
func FuzzParseBundle(f *testing.F) {
	// Seed with a realistic bundle...
	tr := trace.NewTracer(2, 8, 1)
	for i := 0; i < 4; i++ {
		op := tr.Begin("get", []byte("seed-key"))
		op.SetBase(100)
		op.Event(trace.EvEngineOp, 100, 0, 0, 0)
		op.Event(trace.EvSTLTProbe, 112, 3, 1, 0)
		op.Event(trace.EvPageWalk, 190, 4, 60, 0)
		op.End(200)
		tr.Finish(op, i%2, true, false)
	}
	seed, err := tr.Snapshot("fuzz", "seed").Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// ...and with shapes that walk the validation paths.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"kind":"trace-bundle","name":"x","ops":[]}`))
	f.Add([]byte(`{"version":1,"kind":"trace-bundle","name":"x","ops":[{"op":"get","events":[{"kind":"stb.hit"}]}]}`))
	f.Add([]byte(`{"version":99,"kind":"trace-bundle"}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := trace.ParseBundle(data)
		if err != nil {
			return
		}
		out, err := b.Marshal()
		if err != nil {
			t.Fatalf("accepted bundle failed to marshal: %v", err)
		}
		if _, err := trace.ParseBundle(out); err != nil {
			t.Fatalf("round trip rejected: %v\noriginal: %q", err, data)
		}
	})
}
