// Command kvtrace inspects flight-recorder dump bundles written by
// kvserve (TRACE DUMP, anomaly auto-dumps, the final dump on
// shutdown): the per-op event timelines the span tracer recorded, with
// modeled-cycle and wall-clock deltas per pipeline stage.
//
// Subcommands:
//
//	kvtrace summary bundle.json...   per-op-name cycle stats and the
//	                                 critical-path breakdown (which
//	                                 pipeline stage the cycles went to)
//	kvtrace events bundle.json...    per-event-kind totals: count,
//	                                 attributed cycles, mean cost
//	kvtrace flows bundle.json...     hit/miss flow table: ops grouped
//	                                 by their event signature, in the
//	                                 style of the paper's Figure 13
//	                                 hit/miss handling flows
//	kvtrace ops bundle.json...       one line per retained op, oldest
//	                                 first, with its full timeline
//	kvtrace chrome -o out.json in... convert to Chrome trace_event JSON
//	                                 (load into Perfetto / about:tracing)
//	kvtrace check [-min-...] in...   CI gate: assert the bundle parses
//	                                 and its whole-run event totals meet
//	                                 the given minima
//
// Multiple bundles merge into one view (ops re-sorted by start time),
// so a directory of auto-dumps reads as a single recording.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"addrkv/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kvtrace:", err)
		os.Exit(1)
	}
}

const usage = `usage: kvtrace <summary|events|flows|ops|chrome|check> [flags] bundle.json...`

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return errors.New(usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		b, err := loadBundles(rest)
		if err != nil {
			return err
		}
		return summary(out, b)
	case "events":
		b, err := loadBundles(rest)
		if err != nil {
			return err
		}
		return events(out, b)
	case "flows":
		b, err := loadBundles(rest)
		if err != nil {
			return err
		}
		return flows(out, b)
	case "ops":
		b, err := loadBundles(rest)
		if err != nil {
			return err
		}
		return opsDump(out, b)
	case "chrome":
		return chrome(out, rest)
	case "check":
		return check(out, rest)
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

// loadBundles parses every path and merges the results.
func loadBundles(paths []string) (*trace.Bundle, error) {
	if len(paths) == 0 {
		return nil, errors.New("no bundle files given\n" + usage)
	}
	var merged *trace.Bundle
	for _, p := range paths {
		b, err := trace.ParseBundleFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if merged == nil {
			merged = b
		} else {
			merged.Merge(b)
		}
	}
	return merged, nil
}

// deltas walks one op's timeline attributing cycle costs: each event's
// cost is its stamp minus the previous event's (an event marks the END
// of its pipeline stage). f receives the event and its cycle delta.
func deltas(op *trace.Op, f func(e trace.Event, dCycles uint64)) {
	prev := uint64(0)
	for _, e := range op.Events {
		d := uint64(0)
		if e.Cycles > prev {
			d = e.Cycles - prev
			prev = e.Cycles
		}
		f(e, d)
	}
}

// kindAgg accumulates per-event-kind count and attributed cycles.
type kindAgg struct {
	count  uint64
	cycles uint64
}

// summary prints per-op-name cycle statistics plus the critical-path
// breakdown: where the mean op's cycles went, stage by stage.
func summary(out io.Writer, b *trace.Bundle) error {
	fmt.Fprintf(out, "bundle: %s (%s), %d shards, sample 1/%d, %d ops traced, %d retained, %d anomalies\n\n",
		b.Name, b.Reason, b.Shards, max(b.SampleEvery, 1), b.Traced, len(b.Ops), len(b.Anomalies))

	type opStats struct {
		cycles []uint64
		wallNS int64
		kinds  map[trace.EventKind]*kindAgg
	}
	byName := map[string]*opStats{}
	for _, op := range b.Ops {
		st := byName[op.Name]
		if st == nil {
			st = &opStats{kinds: map[trace.EventKind]*kindAgg{}}
			byName[op.Name] = st
		}
		st.cycles = append(st.cycles, op.Cycles)
		st.wallNS += op.WallNS
		deltas(op, func(e trace.Event, d uint64) {
			ka := st.kinds[e.Kind]
			if ka == nil {
				ka = &kindAgg{}
				st.kinds[e.Kind] = ka
			}
			ka.count++
			ka.cycles += d
		})
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tops\tcycles/op\tp50\tp99\tmax\twall us/op")
	for _, n := range names {
		st := byName[n]
		q := quantiles(st.cycles)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\t%.1f\n",
			n, len(st.cycles), q.mean, q.p50, q.p99, q.max,
			float64(st.wallNS)/float64(len(st.cycles))/1e3)
	}
	tw.Flush()

	// Critical path: the mean attributed cycle cost per stage, largest
	// first — the Figure 1 "where does one op's time go" breakdown.
	for _, n := range names {
		st := byName[n]
		fmt.Fprintf(out, "\ncritical path: %s (%d ops)\n", n, len(st.cycles))
		type row struct {
			kind trace.EventKind
			agg  *kindAgg
		}
		rows := make([]row, 0, len(st.kinds))
		var total uint64
		for k, a := range st.kinds {
			rows = append(rows, row{k, a})
			total += a.cycles
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].agg.cycles != rows[j].agg.cycles {
				return rows[i].agg.cycles > rows[j].agg.cycles
			}
			return rows[i].kind < rows[j].kind
		})
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  stage\tevents\tcycles\tcycles/op\tshare")
		for _, r := range rows {
			share := 0.0
			if total > 0 {
				share = 100 * float64(r.agg.cycles) / float64(total)
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%.1f\t%.1f%%\n",
				r.kind, r.agg.count, r.agg.cycles,
				float64(r.agg.cycles)/float64(len(st.cycles)), share)
		}
		tw.Flush()
	}
	return nil
}

// events prints the per-event-kind breakdown across every retained op.
func events(out io.Writer, b *trace.Bundle) error {
	var aggs [trace.NumEventKinds]kindAgg
	for _, op := range b.Ops {
		deltas(op, func(e trace.Event, d uint64) {
			aggs[e.Kind].count++
			aggs[e.Kind].cycles += d
		})
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "event\tretained\twhole-run\tcycles\tmean cycles")
	for k := 0; k < trace.NumEventKinds; k++ {
		name := trace.EventKind(k).String()
		whole := b.EventCounts[name]
		a := aggs[k]
		if a.count == 0 && whole == 0 {
			continue
		}
		mean := 0.0
		if a.count > 0 {
			mean = float64(a.cycles) / float64(a.count)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\n", name, a.count, whole, a.cycles, mean)
	}
	return tw.Flush()
}

// flowSignature collapses an op's timeline into the path it took
// through the addressing pipeline, with consecutive repeats counted
// (e.g. "dispatch shard.lock engine.op stlt.loadva stlt.probe
// walk.level*4 page.walk ... reply.flush").
func flowSignature(op *trace.Op) string {
	var parts []string
	run := 0
	var last trace.EventKind
	flush := func() {
		if run == 0 {
			return
		}
		if run > 1 {
			parts = append(parts, fmt.Sprintf("%s*%d", last, run))
		} else {
			parts = append(parts, last.String())
		}
	}
	for _, e := range op.Events {
		if run > 0 && e.Kind == last {
			run++
			continue
		}
		flush()
		last, run = e.Kind, 1
	}
	flush()
	return strings.Join(parts, " → ")
}

// flows groups retained ops by flow signature — the trace-level
// equivalent of the paper's Figure 13 hit/miss handling flows — and
// prints each flow's frequency and cycle cost.
func flows(out io.Writer, b *trace.Bundle) error {
	type flowAgg struct {
		name   string
		cycles []uint64
	}
	byFlow := map[string]*flowAgg{}
	for _, op := range b.Ops {
		sig := op.Name + ": " + flowSignature(op)
		fa := byFlow[sig]
		if fa == nil {
			fa = &flowAgg{name: sig}
			byFlow[sig] = fa
		}
		fa.cycles = append(fa.cycles, op.Cycles)
	}
	rows := make([]*flowAgg, 0, len(byFlow))
	for _, fa := range byFlow {
		rows = append(rows, fa)
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].cycles) != len(rows[j].cycles) {
			return len(rows[i].cycles) > len(rows[j].cycles)
		}
		return rows[i].name < rows[j].name
	})
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ops\tshare\tcycles/op\tflow")
	total := len(b.Ops)
	for _, fa := range rows {
		q := quantiles(fa.cycles)
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f\t%s\n",
			len(fa.cycles), 100*float64(len(fa.cycles))/float64(max(total, 1)), q.mean, fa.name)
	}
	return tw.Flush()
}

// opsDump prints every retained op with its timeline.
func opsDump(out io.Writer, b *trace.Bundle) error {
	for _, op := range b.Ops {
		flags := ""
		if op.FastHit {
			flags += " fast-hit"
		}
		if op.Missed {
			flags += " key-miss"
		}
		if len(op.Anomalies) > 0 {
			flags += " anomalies=" + strings.Join(op.Anomalies, ",")
		}
		fmt.Fprintf(out, "op %d shard %d conn %d %s %q: %d cycles, %d ns%s\n",
			op.ID, op.Shard, op.Conn, op.Name, op.Key, op.Cycles, op.WallNS, flags)
		deltas(op, func(e trace.Event, d uint64) {
			fmt.Fprintf(out, "  +%6d (Δ%5d)  %-12s a=%d b=%d c=%d\n",
				e.Cycles, d, e.Kind, e.A, e.B, e.C)
		})
	}
	return nil
}

// chrome converts bundles to Chrome trace_event JSON for Perfetto.
func chrome(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundles(fs.Args())
	if err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteChromeTrace(w, b)
}

// check is the CI gate: the bundles must parse, and the whole-run
// event totals must meet the minima.
func check(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	minOps := fs.Uint64("min-ops", 1, "minimum ops traced over the run")
	minWalks := fs.Uint64("min-page-walks", 0, "minimum page.walk events over the run")
	minSTBHits := fs.Uint64("min-stb-hits", 0, "minimum stb.hit events over the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundles(fs.Args())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bundle ok: %d ops traced, %d retained, events %v\n",
		b.Traced, len(b.Ops), b.EventCounts)
	var fails []string
	checkMin := func(what string, got, want uint64) {
		if got < want {
			fails = append(fails, fmt.Sprintf("%s = %d, want >= %d", what, got, want))
		}
	}
	checkMin("traced ops", b.Traced, *minOps)
	checkMin("page.walk events", b.EventCounts["page.walk"], *minWalks)
	checkMin("stb.hit events", b.EventCounts["stb.hit"], *minSTBHits)
	if len(fails) > 0 {
		return errors.New("check failed: " + strings.Join(fails, "; "))
	}
	fmt.Fprintln(out, "check passed")
	return nil
}

// qstats are simple order statistics over cycle samples.
type qstats struct {
	mean          float64
	p50, p99, max uint64
}

func quantiles(v []uint64) qstats {
	if len(v) == 0 {
		return qstats{}
	}
	s := append([]uint64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum uint64
	for _, x := range s {
		sum += x
	}
	at := func(q float64) uint64 { return s[min(int(q*float64(len(s))), len(s)-1)] }
	return qstats{
		mean: float64(sum) / float64(len(s)),
		p50:  at(0.50),
		p99:  at(0.99),
		max:  s[len(s)-1],
	}
}
