package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/trace"
	"addrkv/internal/ycsb"
)

// writeTestBundle runs a real 100%-sampled engine workload and dumps
// the resulting flight-recorder bundle, so the CLI tests exercise the
// same artifact shape kvserve produces.
func writeTestBundle(t *testing.T) string {
	t.Helper()
	e, err := kv.New(kv.Config{Keys: 2000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(1, 256, 1)
	e.SetTracer(tr, 0)
	e.Load(2000, 64)

	g := ycsb.NewGenerator(ycsb.Config{Keys: 2000, ValueSize: 64, Dist: ycsb.Zipf, Seed: 5, SetFraction: 0.2})
	var buf [ycsb.KeyLen]byte
	for i := 0; i < 4000; i++ {
		op := g.Next()
		key := ycsb.KeyNameInto(buf[:], op.KeyID)
		if op.Type == ycsb.Set {
			e.Set(key, ycsb.Value(op.KeyID, 1, 64))
		} else {
			e.Get(key)
		}
	}

	dir := t.TempDir()
	d := trace.NewDumper(dir, "unit")
	path, err := d.Dump(tr, "test")
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("kvtrace %v: %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestSummaryEventsFlowsOps(t *testing.T) {
	path := writeTestBundle(t)

	out := runOut(t, "summary", path)
	for _, want := range []string{"cycles/op", "critical path: get", "critical path: set", "stlt.probe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}

	out = runOut(t, "events", path)
	for _, want := range []string{"engine.op", "stlt.loadva", "index.walk", "mean cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("events output missing %q:\n%s", want, out)
		}
	}

	out = runOut(t, "flows", path)
	if !strings.Contains(out, "→") || !strings.Contains(out, "get: ") {
		t.Fatalf("flows output missing flow signatures:\n%s", out)
	}
	// A cold STLT run has both a hit flow and a walk flow.
	if !strings.Contains(out, "stlt.probe") {
		t.Fatalf("flows output missing probe stage:\n%s", out)
	}

	out = runOut(t, "ops", path)
	if !strings.Contains(out, "op ") || !strings.Contains(out, "Δ") {
		t.Fatalf("ops output missing timelines:\n%s", out)
	}
}

func TestChromeSubcommand(t *testing.T) {
	path := writeTestBundle(t)
	outPath := filepath.Join(t.TempDir(), "chrome.json")
	runOut(t, "chrome", "-o", outPath, path)
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var ct trace.ChromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chrome output not valid trace JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome output has no events")
	}
}

func TestCheckSubcommand(t *testing.T) {
	path := writeTestBundle(t)
	out := runOut(t, "check", "-min-ops", "4000", "-min-page-walks", "1", path)
	if !strings.Contains(out, "check passed") {
		t.Fatalf("check did not pass:\n%s", out)
	}

	var buf bytes.Buffer
	err := run([]string{"check", "-min-stb-hits", "99999999", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "stb.hit") {
		t.Fatalf("impossible minimum accepted (err %v)", err)
	}
}

func TestMergedBundles(t *testing.T) {
	p1, p2 := writeTestBundle(t), writeTestBundle(t)
	out := runOut(t, "check", "-min-ops", "8000", p1, p2)
	if !strings.Contains(out, "check passed") {
		t.Fatalf("merged minimum not met:\n%s", out)
	}
}

func TestBadInput(t *testing.T) {
	if err := run([]string{"summary", "/nonexistent.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"kind":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"summary", bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
	if err := run([]string{"frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no args accepted")
	}
}
