package main

import (
	"strings"
	"testing"
)

// sampleInfo is a 2-shard kvserve INFO payload as the server emits it
// (CRLF lines, section comments, telemetry fields).
const sampleInfo = "# addrkv simulated statistics (since RESETSTATS)\r\n" +
	"shards:2\r\n" +
	"server_ops:100\r\n" +
	"ops:100\r\n" +
	"cycles:22800\r\n" +
	"max_shard_cycles:12000\r\n" +
	"cycles_per_op:228.0\r\n" +
	"modeled_ops_per_kcycle:8.333\r\n" +
	"tlb_misses_per_op:0.020\r\n" +
	"page_walks_per_op:0.020\r\n" +
	"llc_misses_per_op:0.580\r\n" +
	"fast_path_hit_rate:0.8660\r\n" +
	"table_miss_rate:0.1338\r\n" +
	"# latency (real wall clock, since RESETSTATS)\r\n" +
	"latency_samples:100\r\n" +
	"latency_mean_us:1.8\r\n" +
	"latency_p50_us:1.5\r\n" +
	"latency_p90_us:2.2\r\n" +
	"latency_p99_us:6.1\r\n" +
	"latency_p999_us:9.0\r\n" +
	"latency_max_us:9.0\r\n" +
	"op_cycles_p50:91\r\n" +
	"op_cycles_p99:1663\r\n" +
	"op_cycles_max:2943\r\n" +
	"slowlog_len:7\r\n" +
	"monitor_clients:0\r\n" +
	"# persistence\r\n" +
	"aof_enabled:1\r\n" +
	"aof_fsync:everysec\r\n" +
	"aof_size_bytes:4096\r\n" +
	"aof_appends:64\r\n" +
	"aof_fsyncs:3\r\n" +
	"aof_fsync_mean_us:212.0\r\n" +
	"aof_rewrites:1\r\n" +
	"bgsaves_ok:1\r\n" +
	"bgsaves_err:0\r\n" +
	"last_save_unix:1700000000\r\n" +
	"recovered_records:55\r\n" +
	"recovered_torn_bytes:0\r\n" +
	"# shard 0\r\n" +
	"shard0_ops:60\r\n" +
	"shard0_keys:55\r\n" +
	"shard0_cycles:13000\r\n" +
	"shard0_cycles_per_op:216.7\r\n" +
	"shard0_fast_hits:40\r\n" +
	"shard0_fast_hit_rate:0.9000\r\n" +
	"shard0_cycles_p99:1500\r\n" +
	"# shard 1\r\n" +
	"shard1_ops:40\r\n" +
	"shard1_keys:45\r\n" +
	"shard1_cycles:9800\r\n" +
	"shard1_cycles_per_op:245.0\r\n" +
	"shard1_fast_hits:30\r\n" +
	"shard1_fast_hit_rate:0.8200\r\n" +
	"shard1_cycles_p99:1800\r\n"

func TestPrettyInfo(t *testing.T) {
	out := prettyInfo(sampleInfo)
	for _, want := range []string{
		"cycles/op 228.0",
		"fast-path hit rate 86.6%",
		"table miss rate 13.4%",
		"p50 1.5", "p99 6.1", "p99.9 9.0",
		"modeled op cycles: p50 91  p99 1663  max 2943",
		"slowlog 7 entries",
		"aof on (fsync everysec): 4096 bytes, 64 appends, 3 fsyncs (mean 212.0 µs), 1 rewrites",
		"bgsaves ok 1 / err 0, last save unix 1700000000; recovered 55 record(s), 0 torn byte(s)",
		"90.0%", // shard 0 hit rate as a percentage
		"82.0%", // shard 1 hit rate
		"1500", "1800",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pretty INFO missing %q:\n%s", want, out)
		}
	}
	// Shard rows come out in index order.
	if strings.Index(out, "90.0%") > strings.Index(out, "82.0%") {
		t.Errorf("shard rows out of order:\n%s", out)
	}
}

// TestPrettyInfoPassThrough: non-INFO payloads (no ops field) are
// returned unchanged rather than mangled.
func TestPrettyInfoPassThrough(t *testing.T) {
	for _, payload := range []string{"", "hello world", "# just a comment\r\n"} {
		if got := prettyInfo(payload); got != payload {
			t.Errorf("prettyInfo(%q) = %q, want pass-through", payload, got)
		}
	}
}

// TestPrettyInfoTolerant: a payload missing the telemetry sections
// (older server, or stats just reset) still renders the engine block
// without panicking.
func TestPrettyInfoTolerant(t *testing.T) {
	minimal := "shards:1\r\nserver_ops:0\r\nops:0\r\ncycles:0\r\ncycles_per_op:0.0\r\n"
	out := prettyInfo(minimal)
	if !strings.Contains(out, "engine (since RESETSTATS)") {
		t.Fatalf("minimal INFO not rendered:\n%s", out)
	}
	if strings.Contains(out, "latency (real wall clock") {
		t.Fatalf("latency section rendered without data:\n%s", out)
	}
}

// clusterInfoLines is the "# cluster" section a cluster-mode server
// appends to INFO.
const clusterInfoLines = "# cluster\r\n" +
	"cluster_enabled:1\r\n" +
	"cluster_node_index:0\r\n" +
	"cluster_known_nodes:3\r\n" +
	"cluster_addr:127.0.0.1:7000\r\n" +
	"cluster_map_version:4\r\n" +
	"cluster_slots_owned:5462\r\n" +
	"cluster_slots_migrating:1\r\n" +
	"cluster_slots_importing:0\r\n" +
	"cluster_moved_total:12\r\n" +
	"cluster_ask_total:3\r\n" +
	"cluster_asking_total:3\r\n" +
	"cluster_tryagain_total:1\r\n" +
	"cluster_migrations_completed:2\r\n" +
	"cluster_migrations_failed:0\r\n" +
	"cluster_migrated_keys:81\r\n" +
	"cluster_migrated_bytes:9200\r\n" +
	"cluster_import_records:40\r\n" +
	"cluster_import_rewarmed:40\r\n" +
	"cluster_last_migration_slot:42\r\n" +
	"cluster_last_migration_us:1730\r\n"

func TestPrettyInfoCluster(t *testing.T) {
	out := prettyInfo(sampleInfo + clusterInfoLines)
	for _, want := range []string{
		"node 0 of 3 (127.0.0.1:7000), slot map v4",
		"slots: 5462 owned, 1 migrating out, 0 importing",
		"redirects: 12 moved, 3 ask (3 asking), 1 tryagain",
		"migrations: 2 done / 0 failed, 81 keys 9200 bytes out; imported 40 record(s), 40 STLT rewarm(s)",
		"last migration: slot 42 in 1730 µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pretty cluster INFO missing %q:\n%s", want, out)
		}
	}
	// Standalone payloads get no cluster block.
	if strings.Contains(prettyInfo(sampleInfo), "cluster\n") {
		t.Error("standalone INFO rendered a cluster block")
	}
}

func TestRedirectHint(t *testing.T) {
	if got := redirectHint("MOVED 123 10.0.0.2:7001"); !strings.Contains(got, "slot 123 lives on 10.0.0.2:7001") {
		t.Errorf("MOVED hint = %q", got)
	}
	if got := redirectHint("ASK 99 10.0.0.3:7002"); !strings.Contains(got, "retry on 10.0.0.3:7002 after ASKING") {
		t.Errorf("ASK hint = %q", got)
	}
	for _, msg := range []string{"ERR unknown command 'frob'", "TRYAGAIN slot is migrating, retry", "MOVED 1"} {
		if got := redirectHint(msg); got != "" {
			t.Errorf("redirectHint(%q) = %q, want empty", msg, got)
		}
	}
}
