// Pretty-printing of the kvserve INFO payload: the server emits flat
// "key:value" lines (Redis INFO style); kvcli regroups them into a
// readable summary — engine counters, wall-clock latency percentiles,
// modeled cycle percentiles, and a per-shard table. Use -raw for the
// unprocessed payload (scripts).
package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// redirectHint decodes a cluster redirect error ("MOVED 123 host:port",
// "ASK 123 host:port") into a human-readable hint for the error line;
// empty for every other error.
func redirectHint(msg string) string {
	fields := strings.Fields(msg)
	if len(fields) != 3 {
		return ""
	}
	switch fields[0] {
	case "MOVED":
		return fmt.Sprintf("-> slot %s lives on %s; reconnect there", fields[1], fields[2])
	case "ASK":
		return fmt.Sprintf("-> slot %s is migrating; retry on %s after ASKING", fields[1], fields[2])
	}
	return ""
}

// infoFields holds one parsed INFO payload: flat keys plus the
// per-shard "shardN_*" keys split out by shard index.
type infoFields struct {
	flat   map[string]string
	shards map[int]map[string]string
}

// parseInfo splits an INFO payload into fields. Unknown lines are
// ignored, so the parser keeps working as the server grows sections.
func parseInfo(payload string) infoFields {
	f := infoFields{flat: map[string]string{}, shards: map[int]map[string]string{}}
	for _, line := range strings.Split(payload, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if rest, found := strings.CutPrefix(k, "shard"); found {
			if i := strings.IndexByte(rest, '_'); i > 0 {
				if n, err := strconv.Atoi(rest[:i]); err == nil {
					if f.shards[n] == nil {
						f.shards[n] = map[string]string{}
					}
					f.shards[n][rest[i+1:]] = v
					continue
				}
			}
		}
		f.flat[k] = v
	}
	return f
}

func (f infoFields) get(k string) string { return f.flat[k] }

// pct renders a 0..1 ratio field as a percentage.
func (f infoFields) pct(k string) string {
	v, err := strconv.ParseFloat(f.flat[k], 64)
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// prettyInfo renders the INFO payload as grouped sections. Payloads
// that don't look like kvserve INFO (no ops field) pass through
// unchanged.
func prettyInfo(payload string) string {
	f := parseInfo(payload)
	if _, ok := f.flat["ops"]; !ok {
		return payload
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine (since RESETSTATS)\n")
	fmt.Fprintf(&b, "  shards %s, server ops %s, engine ops %s, keys stored: see shards\n",
		f.get("shards"), f.get("server_ops"), f.get("ops"))
	fmt.Fprintf(&b, "  cycles/op %s  (total %s cycles, wall-clock bound %s)\n",
		f.get("cycles_per_op"), f.get("cycles"), f.get("max_shard_cycles"))
	fmt.Fprintf(&b, "  fast-path hit rate %s   table miss rate %s\n",
		f.pct("fast_path_hit_rate"), f.pct("table_miss_rate"))
	fmt.Fprintf(&b, "  per op: %s TLB misses, %s page walks, %s LLC misses\n",
		f.get("tlb_misses_per_op"), f.get("page_walks_per_op"), f.get("llc_misses_per_op"))

	if f.get("latency_samples") != "" {
		fmt.Fprintf(&b, "latency (real wall clock, µs)\n")
		fmt.Fprintf(&b, "  samples %s, mean %s\n", f.get("latency_samples"), f.get("latency_mean_us"))
		fmt.Fprintf(&b, "  p50 %-8s p90 %-8s p99 %-8s p99.9 %-8s max %s\n",
			f.get("latency_p50_us"), f.get("latency_p90_us"),
			f.get("latency_p99_us"), f.get("latency_p999_us"), f.get("latency_max_us"))
	}
	if f.get("op_cycles_p50") != "" {
		fmt.Fprintf(&b, "modeled op cycles: p50 %s  p99 %s  max %s\n",
			f.get("op_cycles_p50"), f.get("op_cycles_p99"), f.get("op_cycles_max"))
	}
	if f.get("slowlog_len") != "" {
		fmt.Fprintf(&b, "slowlog %s entries, %s monitor client(s)\n",
			f.get("slowlog_len"), f.get("monitor_clients"))
	}
	if f.get("aof_enabled") == "1" {
		mean := f.get("aof_fsync_mean_us")
		if mean == "" {
			mean = "-"
		}
		fmt.Fprintf(&b, "persistence\n")
		fmt.Fprintf(&b, "  aof on (fsync %s): %s bytes, %s appends, %s fsyncs (mean %s µs), %s rewrites\n",
			f.get("aof_fsync"), f.get("aof_size_bytes"), f.get("aof_appends"),
			f.get("aof_fsyncs"), mean, f.get("aof_rewrites"))
		fmt.Fprintf(&b, "  bgsaves ok %s / err %s, last save unix %s; recovered %s record(s), %s torn byte(s)\n",
			f.get("bgsaves_ok"), f.get("bgsaves_err"), f.get("last_save_unix"),
			f.get("recovered_records"), f.get("recovered_torn_bytes"))
	}

	if f.get("cluster_enabled") == "1" {
		fmt.Fprintf(&b, "cluster\n")
		fmt.Fprintf(&b, "  node %s of %s (%s), slot map v%s\n",
			f.get("cluster_node_index"), f.get("cluster_known_nodes"),
			f.get("cluster_addr"), f.get("cluster_map_version"))
		fmt.Fprintf(&b, "  slots: %s owned, %s migrating out, %s importing\n",
			f.get("cluster_slots_owned"), f.get("cluster_slots_migrating"),
			f.get("cluster_slots_importing"))
		fmt.Fprintf(&b, "  redirects: %s moved, %s ask (%s asking), %s tryagain\n",
			f.get("cluster_moved_total"), f.get("cluster_ask_total"),
			f.get("cluster_asking_total"), f.get("cluster_tryagain_total"))
		fmt.Fprintf(&b, "  migrations: %s done / %s failed, %s keys %s bytes out; imported %s record(s), %s STLT rewarm(s)\n",
			f.get("cluster_migrations_completed"), f.get("cluster_migrations_failed"),
			f.get("cluster_migrated_keys"), f.get("cluster_migrated_bytes"),
			f.get("cluster_import_records"), f.get("cluster_import_rewarmed"))
		if us := f.get("cluster_last_migration_us"); us != "" && us != "0" {
			fmt.Fprintf(&b, "  last migration: slot %s in %s µs\n",
				f.get("cluster_last_migration_slot"), us)
		}
	}

	if len(f.shards) > 0 {
		ids := make([]int, 0, len(f.shards))
		for i := range f.shards {
			ids = append(ids, i)
		}
		sort.Ints(ids)
		fmt.Fprintf(&b, "shards\n")
		fmt.Fprintf(&b, "  %-5s %-10s %-10s %-9s %-9s %s\n",
			"shard", "ops", "keys", "cyc/op", "fastHit", "p99 cyc")
		for _, i := range ids {
			sh := f.shards[i]
			hit := "-"
			if r, err := strconv.ParseFloat(sh["fast_hit_rate"], 64); err == nil {
				hit = fmt.Sprintf("%.1f%%", 100*r)
			}
			p99 := sh["cycles_p99"]
			if p99 == "" {
				p99 = "-"
			}
			fmt.Fprintf(&b, "  %-5d %-10s %-10s %-9s %-9s %s\n",
				i, sh["ops"], sh["keys"], sh["cycles_per_op"], hit, p99)
		}
	}
	return b.String()
}
