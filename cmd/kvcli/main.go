// Command kvcli is a client and micro-loadgen for kvserve. It speaks
// RESP over TCP or a Unix socket, supports one-shot commands, YCSB
// workload replay with pipelining (the paper's Figure 1 setup), and
// reads back the server's simulated statistics.
//
//	kvcli -sock /tmp/addrkv.sock PING
//	kvcli -sock /tmp/addrkv.sock SET foo bar
//	kvcli -sock /tmp/addrkv.sock -load -keys 100000 -vsize 64
//	kvcli -sock /tmp/addrkv.sock -bench -keys 100000 -ops 200000 -dist zipf -pipeline 64
//	kvcli -sock /tmp/addrkv.sock INFO
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"addrkv/internal/resp"
	"addrkv/internal/ycsb"
)

func main() {
	var (
		sock     = flag.String("sock", "", "Unix socket path")
		addr     = flag.String("addr", "", "TCP address")
		load     = flag.Bool("load", false, "load -keys YCSB records")
		bench    = flag.Bool("bench", false, "run a YCSB GET/SET benchmark")
		keys     = flag.Int("keys", 100_000, "key-space size for -load/-bench")
		ops      = flag.Int("ops", 100_000, "operations for -bench")
		vsize    = flag.Int("vsize", 64, "value size")
		dist     = flag.String("dist", "zipf", "zipf|latest|uniform")
		pipeline = flag.Int("pipeline", 64, "pipelined requests in flight")
		seed     = flag.Uint64("seed", 42, "workload seed")
		raw      = flag.Bool("raw", false, "print INFO payloads unprocessed instead of pretty-printed")
	)
	flag.Parse()

	if (*sock == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "kvcli: exactly one of -sock or -addr is required")
		os.Exit(2)
	}
	network, target := "unix", *sock
	if *addr != "" {
		network, target = "tcp", *addr
	}
	conn, err := net.Dial(network, target)
	if err != nil {
		log.Fatalf("kvcli: %v", err)
	}
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)

	switch {
	case *load:
		doLoad(r, w, *keys, *vsize, *pipeline)
	case *bench:
		doBench(r, w, *keys, *ops, *vsize, *dist, *pipeline, *seed, *raw)
	default:
		args := flag.Args()
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "kvcli: no command; try PING, INFO, GET <k>, SET <k> <v>")
			os.Exit(2)
		}
		byteArgs := make([][]byte, len(args))
		for i, a := range args {
			byteArgs[i] = []byte(a)
		}
		must(w.WriteCommand(byteArgs...))
		must(w.Flush())
		reply, err := r.ReadReply()
		must(err)
		if b, ok := reply.([]byte); ok && !*raw && strings.EqualFold(args[0], "INFO") {
			fmt.Print(prettyInfo(string(b)))
			return
		}
		printReply(reply)
	}
}

func must(err error) {
	if err != nil {
		log.Fatalf("kvcli: %v", err)
	}
}

func printReply(v any) {
	switch x := v.(type) {
	case nil:
		fmt.Println("(nil)")
	case []byte:
		fmt.Println(string(x))
	case []any:
		for i, e := range x {
			fmt.Printf("%d) ", i+1)
			printReply(e)
		}
	case error:
		if hint := redirectHint(x.Error()); hint != "" {
			fmt.Println("(error)", x, hint)
		} else {
			fmt.Println("(error)", x)
		}
	default:
		fmt.Println(x)
	}
}

// doLoad SETs keys 0..n-1 with pipelining.
func doLoad(r *resp.Reader, w *resp.Writer, n, vsize, pipe int) {
	start := time.Now()
	inFlight := 0
	drain := func() {
		for ; inFlight > 0; inFlight-- {
			if _, err := r.ReadReply(); err != nil {
				log.Fatalf("kvcli: load reply: %v", err)
			}
		}
	}
	for id := 0; id < n; id++ {
		must(w.WriteCommand([]byte("SET"), ycsb.KeyName(uint64(id)), ycsb.Value(uint64(id), 0, vsize)))
		inFlight++
		if inFlight >= pipe {
			must(w.Flush())
			drain()
		}
	}
	must(w.Flush())
	drain()
	fmt.Printf("loaded %d keys in %v\n", n, time.Since(start).Round(time.Millisecond))
}

// doBench resets server stats, replays a YCSB stream, then prints both
// wall-clock throughput and the server's simulated statistics.
func doBench(r *resp.Reader, w *resp.Writer, keys, ops, vsize int, dist string, pipe int, seed uint64, raw bool) {
	d, err := ycsb.ParseDistribution(dist)
	must(err)
	must(w.WriteCommand([]byte("RESETSTATS")))
	must(w.Flush())
	_, err = r.ReadReply()
	must(err)

	cfg := ycsb.Config{Keys: keys, ValueSize: vsize, Dist: d, Seed: seed}.WithPaperSetFraction()
	g := ycsb.NewGenerator(cfg)

	start := time.Now()
	inFlight := 0
	drain := func() {
		for ; inFlight > 0; inFlight-- {
			if _, err := r.ReadReply(); err != nil {
				log.Fatalf("kvcli: bench reply: %v", err)
			}
		}
	}
	for i := 0; i < ops; i++ {
		op := g.Next()
		k := ycsb.KeyName(op.KeyID)
		if op.Type == ycsb.Set {
			must(w.WriteCommand([]byte("SET"), k, ycsb.Value(op.KeyID, 1, vsize)))
		} else {
			must(w.WriteCommand([]byte("GET"), k))
		}
		inFlight++
		if inFlight >= pipe {
			must(w.Flush())
			drain()
		}
	}
	must(w.Flush())
	drain()
	wall := time.Since(start)
	fmt.Printf("%d ops in %v (%.0f op/s wall-clock)\n",
		ops, wall.Round(time.Millisecond), float64(ops)/wall.Seconds())

	must(w.WriteCommand([]byte("INFO")))
	must(w.Flush())
	info, err := r.ReadReply()
	must(err)
	fmt.Println("--- simulated statistics ---")
	if b, ok := info.([]byte); ok && !raw {
		fmt.Print(prettyInfo(string(b)))
		return
	}
	printReply(info)
}
