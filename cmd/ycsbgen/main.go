// Command ycsbgen emits a YCSB-style operation trace as text, one
// operation per line ("GET <key>" / "SET <key> <valueSize>" /
// "SCAN <key> <len>" / "RMW <key> <valueSize>"), suitable for replay
// against any key-value store or for inspecting the distributions used
// throughout the evaluation.
//
// With -workload the trace follows one of the standard YCSB core
// mixes A–F (or the hot-key "flood"); without it, the paper's original
// GET/SET shape over -dist applies.
//
//	ycsbgen -keys 1000000 -ops 10000000 -dist zipf > trace.txt
//	ycsbgen -workload E -ops 100000 > scans.txt
//	ycsbgen -dist latest -ops 1000 -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"addrkv/internal/ycsb"
)

func main() {
	var (
		keys     = flag.Int("keys", 100_000, "distinct keys")
		ops      = flag.Int("ops", 1_000_000, "operations to emit")
		dist     = flag.String("dist", "zipf", "zipf|latest|uniform")
		workload = flag.String("workload", "", "YCSB core mix A..F or 'flood' (overrides -dist)")
		vsize    = flag.Int("vsize", 64, "value size recorded for SETs")
		seed     = flag.Uint64("seed", 42, "generator seed")
		stats    = flag.Bool("stats", false, "print distribution statistics instead of the trace")
	)
	flag.Parse()

	var next func() ycsb.Op
	if *workload != "" {
		mix, err := ycsb.MixByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsbgen:", err)
			os.Exit(2)
		}
		g := ycsb.NewMixGenerator(mix, *keys, *seed)
		next = g.Next
	} else {
		d, err := ycsb.ParseDistribution(*dist)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsbgen:", err)
			os.Exit(2)
		}
		cfg := ycsb.Config{Keys: *keys, ValueSize: *vsize, Dist: d, Seed: *seed}.WithPaperSetFraction()
		g := ycsb.NewGenerator(cfg)
		if *stats {
			printStats(g, *ops)
			return
		}
		next = g.Next
	}
	if *stats {
		printMixStats(next, *ops)
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	for i := 0; i < *ops; i++ {
		op := next()
		switch op.Type {
		case ycsb.Set, ycsb.Insert:
			fmt.Fprintf(w, "SET %s %d\n", ycsb.KeyName(op.KeyID), *vsize)
		case ycsb.Scan:
			fmt.Fprintf(w, "SCAN %s %d\n", ycsb.KeyName(op.KeyID), op.ScanLen)
		case ycsb.RMW:
			fmt.Fprintf(w, "RMW %s %d\n", ycsb.KeyName(op.KeyID), *vsize)
		default:
			fmt.Fprintf(w, "GET %s\n", ycsb.KeyName(op.KeyID))
		}
	}
}

// printMixStats summarizes a mixed-op stream: verb mix plus the key
// frequency skew (top-N share of traffic).
func printMixStats(next func() ycsb.Op, ops int) {
	counts := map[uint64]int{}
	verbs := map[ycsb.OpType]int{}
	for i := 0; i < ops; i++ {
		op := next()
		verbs[op.Type]++
		counts[op.KeyID]++
	}
	fmt.Printf("ops: %d\ndistinct keys touched: %d\n", ops, len(counts))
	for _, v := range []struct {
		t ycsb.OpType
		n string
	}{{ycsb.Get, "GET"}, {ycsb.Set, "SET"}, {ycsb.Insert, "INSERT"}, {ycsb.Scan, "SCAN"}, {ycsb.RMW, "RMW"}} {
		if verbs[v.t] > 0 {
			fmt.Printf("%s fraction: %.4f\n", v.n, float64(verbs[v.t])/float64(ops))
		}
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	cum := 0
	marks := map[int]bool{1: true, 10: true, 100: true, 1000: true, 10000: true}
	for rank, c := range freqs {
		cum += c
		if marks[rank+1] {
			fmt.Printf("top %6d keys: %5.2f%% of traffic\n",
				rank+1, 100*float64(cum)/float64(ops))
		}
	}
}

func printStats(g *ycsb.Generator, ops int) {
	counts := map[uint64]int{}
	sets := 0
	for i := 0; i < ops; i++ {
		op := g.Next()
		if op.Type == ycsb.Set {
			sets++
		}
		counts[op.KeyID]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))

	fmt.Printf("ops: %d\ndistinct keys touched: %d\nSET fraction: %.4f\n",
		ops, len(counts), float64(sets)/float64(ops))
	cum := 0
	marks := map[int]bool{1: true, 10: true, 100: true, 1000: true, 10000: true}
	for rank, c := range freqs {
		cum += c
		if marks[rank+1] {
			fmt.Printf("top %6d keys: %5.2f%% of traffic\n",
				rank+1, 100*float64(cum)/float64(ops))
		}
	}
}
