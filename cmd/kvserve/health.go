// Fleet observability for cluster mode: bus heartbeats, per-peer
// liveness, and cluster-wide metric aggregation.
//
// Every -heartbeat-interval, one goroutine per peer sends a Heartbeat
// frame over a DEDICATED bus peer (separate from the migration peers,
// so a heartbeat never queues behind a long migration batch call on
// the per-peer mutex and goes falsely suspect). The frame carries this
// node's telemetry digest (internal/health.Digest); the receiver
// stamps the sender alive and replies with an ack, which stamps the
// receiver alive on our side — liveness evidence flows both ways on
// every exchange. Down-detection is receiver-side (absence of beats),
// so a dead peer is declared down within DownAfter·Interval without
// any dial ever having to time out on the deadline path.
//
// The digest is built exclusively from read-only surfaces — Report(),
// RuntimeStats(), the latency histogram snapshot — the same paths a
// /metrics scrape uses, so a heartbeat-on run stays bit-for-bit
// identical to a heartbeat-off run (pinned by the differential tests
// in cluster_health_test.go). Health state lives under the tracker's
// own mutex; no shard lock is ever taken to publish or read it.
//
// Aggregation: /cluster/metrics and /cluster/snapshot.json (and the
// CLUSTER HEALTH command) fan a DigestGet out to every non-down peer
// concurrently and merge the digests into one fleet view, Prometheus
// series labeled node="i". A node that is down or does not answer
// contributes up=0 and no digest-derived series — a scraper watches
// series disappear, not go stale.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"addrkv/internal/cluster"
	"addrkv/internal/health"
	"addrkv/internal/telemetry"
)

// defaultHeartbeatEvery is the -heartbeat-interval default: frequent
// enough that the default down deadline (4 missed intervals) detects a
// dead node in ~2s, infrequent enough to stay invisible in overhead
// measurements.
const defaultHeartbeatEvery = 500 * time.Millisecond

// buildDigest snapshots this node's serving telemetry into a digest.
// Read-only: the engine is never written, no shard worker is disturbed,
// and no modeled cycles are charged.
func (s *server) buildDigest() *health.Digest {
	cl := s.clus
	s.statsMu.RLock()
	rep := s.sys.Report()
	s.statsMu.RUnlock()
	ws := s.sys.Cluster().RuntimeStats()
	lat := telemetry.QuantilesOf(s.tele.latencySnapshot())
	d := &health.Digest{
		Node:           cl.node.Self(),
		MapVersion:     cl.node.Version(),
		SlotsOwned:     uint32(cl.node.OwnedSlots()),
		SlotsMigrating: uint32(len(cl.node.MigratingSlots())),
		SlotsImporting: uint32(len(cl.node.ImportingSlots())),
		Ops:            rep.Ops,
		UsedBytes:      uint64(s.sys.UsedBytes()),
		LatP50US:       float64(lat.P50) / 1e3,
		LatP99US:       float64(lat.P99) / 1e3,
		Shards:         make([]health.ShardDigest, len(rep.PerShard)),
	}
	for i, st := range rep.PerShard {
		sd := health.ShardDigest{
			Ops:      st.Ops,
			Gets:     st.Gets,
			FastHits: st.FastHits,
			Keys:     uint64(s.sys.Cluster().ShardLen(i)),
		}
		if i < len(ws) {
			sd.QueueDepth = uint32(ws[i].Depth)
		}
		d.Gets += sd.Gets
		d.FastHits += sd.FastHits
		d.Keys += sd.Keys
		d.Shards[i] = sd
	}
	// Ops/s over the window since the last digest build — the sender
	// computes its own rate so the aggregator needs no scrape history.
	now := time.Now()
	cl.rateMu.Lock()
	if !cl.lastAt.IsZero() && now.After(cl.lastAt) && rep.Ops >= cl.lastOps {
		d.OpsPerSec = float64(rep.Ops-cl.lastOps) / now.Sub(cl.lastAt).Seconds()
	}
	cl.lastOps, cl.lastAt = rep.Ops, now
	cl.rateMu.Unlock()
	return d
}

// clusterDigest returns this node's current digest and its encoding,
// cached for half a heartbeat interval so concurrent heartbeat loops
// and DigestGet replies share one build instead of re-snapshotting the
// report per peer.
func (s *server) clusterDigest() (*health.Digest, []byte) {
	cl := s.clus
	ttl := cl.hbEvery / 2
	if ttl <= 0 {
		ttl = 100 * time.Millisecond
	}
	cl.digMu.Lock()
	defer cl.digMu.Unlock()
	if cl.digCur != nil && time.Since(cl.digAt) < ttl {
		return cl.digCur, cl.digEnc
	}
	d := s.buildDigest()
	cl.digCur = d
	cl.digEnc = d.Encode(nil)
	cl.digAt = time.Now()
	// Keep the tracker's own-row digest fresh too, so a snapshot taken
	// without a fan-out still shows this node's numbers.
	cl.health.Alive(cl.node.Self(), d)
	return cl.digCur, cl.digEnc
}

// startHeartbeats launches one heartbeat loop per peer. No-op when the
// interval is zero (heartbeats disabled).
func (s *server) startHeartbeats() {
	cl := s.clus
	if cl.hbEvery <= 0 {
		return
	}
	cl.hbOn.Store(true)
	cl.hbStop = make(chan struct{})
	for i, p := range cl.hbPeers {
		if p == nil {
			continue
		}
		cl.hbWG.Add(1)
		go s.heartbeatLoop(i, p)
	}
}

// heartbeatLoop sends this node's digest to one peer every interval.
// A successful exchange is liveness evidence for the peer (its ack
// proves it served the call); a failure only bumps the failure counter
// — the peer goes suspect/down on the receiver-side deadline, never on
// one lost call.
func (s *server) heartbeatLoop(peer int, p *cluster.Peer) {
	cl := s.clus
	defer cl.hbWG.Done()
	t := time.NewTicker(cl.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !cl.hbOn.Load() {
				continue
			}
			_, enc := s.clusterDigest()
			if _, err := p.Call(cluster.MsgHeartbeat, enc); err != nil {
				cl.hbFails.Add(1)
				continue
			}
			cl.hbSent.Add(1)
			cl.health.Alive(peer, nil)
		case <-cl.hbStop:
			return
		}
	}
}

// stopHeartbeats stops the loops and waits for in-flight sends.
// Idempotent: a node killed explicitly by a test is closed again by
// its cleanup hook.
func (cl *clusterState) stopHeartbeats() {
	if cl.hbStop != nil {
		close(cl.hbStop)
		cl.hbWG.Wait()
		cl.hbStop = nil
	}
}

// fleetNode is one node's slice of an aggregated fleet view: the local
// tracker's liveness verdict plus (for reachable nodes) a fresh digest.
type fleetNode struct {
	Node   int
	Info   cluster.NodeInfo
	State  health.State
	Age    time.Duration
	Beats  uint64
	Up     bool           // digest fetched (self always; down peers never dialed)
	Digest *health.Digest // nil when !Up
}

// collectFleet fans a DigestGet out to every peer the tracker does not
// already consider down (dialing a declared-dead node would stall the
// aggregation behind connect timeouts for no information) and merges
// the replies with this node's own digest. Peers are queried
// concurrently; the wall clock cost is one bus round trip, not N.
func (s *server) collectFleet() []fleetNode {
	cl := s.clus
	snap := cl.health.Snapshot()
	m := cl.node.Map()
	out := make([]fleetNode, len(snap))
	var wg sync.WaitGroup
	for i, nh := range snap {
		out[i] = fleetNode{Node: i, Info: m.Nodes[i], State: nh.State, Age: nh.Age, Beats: nh.Beats}
		switch {
		case i == cl.node.Self():
			d, _ := s.clusterDigest()
			out[i].Up, out[i].Digest = true, d
		case nh.State == health.StateDown || cl.hbPeers[i] == nil:
			// up=0, no digest series.
		default:
			wg.Add(1)
			go func(i int, p *cluster.Peer) {
				defer wg.Done()
				// CallCopy: the reply payload aliases the peer's reused
				// read buffer, and the heartbeat loop shares this peer —
				// the copy must happen under the peer's lock.
				rep, err := p.CallCopy(cluster.MsgDigestGet, nil)
				if err != nil || rep.Type != cluster.MsgDigest {
					return
				}
				d, err := health.DecodeDigest(rep.Payload)
				if err != nil {
					return
				}
				cl.health.Alive(i, d)
				out[i].Up, out[i].Digest = true, d
			}(i, cl.hbPeers[i])
		}
	}
	wg.Wait()
	return out
}

// clusterStateName is the CLUSTER INFO cluster_state value: degraded
// once any slot-owning node is suspect or down, ok otherwise.
func (s *server) clusterStateName() string {
	if s.clus.health.Degraded(s.clus.node.Map().Owners()) {
		return "degraded"
	}
	return "ok"
}

// clusterHealthText renders CLUSTER HEALTH: one parse-friendly line
// per node, field:value separated by spaces, nodes in index order.
func (s *server) clusterHealthText() string {
	var b strings.Builder
	for _, fn := range s.collectFleet() {
		fmt.Fprintf(&b, "node:%d addr:%s bus:%s state:%s age_ms:%.0f beats:%d up:%d",
			fn.Node, fn.Info.Addr, fn.Info.Bus, fn.State, float64(fn.Age)/1e6, fn.Beats, b2i(fn.Up))
		if d := fn.Digest; d != nil {
			fmt.Fprintf(&b, " map_version:%d slots_owned:%d slots_migrating:%d slots_importing:%d"+
				" ops:%d keys:%d used_bytes:%d hit_rate:%.4f queue_depth:%d"+
				" ops_per_sec:%.1f lat_p50_us:%.1f lat_p99_us:%.1f",
				d.MapVersion, d.SlotsOwned, d.SlotsMigrating, d.SlotsImporting,
				d.Ops, d.Keys, d.UsedBytes, d.HitRate(), d.QueueDepth(),
				d.OpsPerSec, d.LatP50US, d.LatP99US)
		}
		b.WriteString("\r\n")
	}
	return b.String()
}

// heartbeatStatusText renders CLUSTER HEARTBEAT STATUS.
func (s *server) heartbeatStatusText() string {
	cl := s.clus
	var b strings.Builder
	fmt.Fprintf(&b, "heartbeat_enabled:%d\r\n", b2i(cl.hbEvery > 0))
	fmt.Fprintf(&b, "heartbeat_on:%d\r\n", b2i(cl.hbOn.Load()))
	fmt.Fprintf(&b, "heartbeat_interval_ms:%.0f\r\n", float64(cl.hbEvery)/1e6)
	fmt.Fprintf(&b, "heartbeat_down_after:%d\r\n", cl.health.DownAfter())
	fmt.Fprintf(&b, "heartbeats_sent:%d\r\n", cl.hbSent.Load())
	fmt.Fprintf(&b, "heartbeat_failures:%d\r\n", cl.hbFails.Load())
	return b.String()
}

// migrateStatusText renders CLUSTER MIGRATE STATUS from the node's
// progress tracker. ok is false when no migration has ever run here.
func (s *server) migrateStatusText() (string, bool) {
	mp, ok := s.clus.node.Progress()
	if !ok {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "migration_slot:%d\r\n", mp.Slot)
	fmt.Fprintf(&b, "migration_dest:%d\r\n", mp.Dest)
	fmt.Fprintf(&b, "migration_active:%d\r\n", b2i(mp.Active))
	fmt.Fprintf(&b, "migration_resumed:%d\r\n", b2i(mp.Resumed))
	fmt.Fprintf(&b, "migration_failed:%d\r\n", b2i(mp.Failed))
	fmt.Fprintf(&b, "migration_keys_total:%d\r\n", mp.KeysTotal)
	fmt.Fprintf(&b, "migration_keys_shipped:%d\r\n", mp.KeysShipped)
	fmt.Fprintf(&b, "migration_keys_remaining:%d\r\n", mp.KeysTotal-mp.KeysShipped)
	fmt.Fprintf(&b, "migration_batches_total:%d\r\n", mp.BatchesTotal)
	fmt.Fprintf(&b, "migration_batches_shipped:%d\r\n", mp.BatchesShipped)
	fmt.Fprintf(&b, "migration_bytes:%d\r\n", mp.Bytes)
	fmt.Fprintf(&b, "migration_elapsed_us:%d\r\n", mp.Elapsed.Microseconds())
	fmt.Fprintf(&b, "migration_eta_us:%d\r\n", mp.ETA.Microseconds())
	return b.String(), true
}

// promFleet writes the aggregated fleet view as Prometheus text. Every
// node contributes its liveness series (up, state, age, beats); only
// reachable nodes contribute digest-derived series — a dead node's
// series disappear from the scrape instead of freezing at stale values.
func promFleet(w *strings.Builder, fleet []fleetNode) {
	metric := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	series := func(name string, node int, v float64) {
		fmt.Fprintf(w, "%s{node=\"%d\"} %g\n", name, node, v)
	}
	metric("addrkv_fleet_up", "1 when the node answered digest collection (self included).")
	for _, fn := range fleet {
		series("addrkv_fleet_up", fn.Node, float64(b2i(fn.Up)))
	}
	metric("addrkv_fleet_state", "Node liveness: 0 ok, 1 suspect, 2 down.")
	for _, fn := range fleet {
		series("addrkv_fleet_state", fn.Node, float64(fn.State))
	}
	metric("addrkv_fleet_age_seconds", "Time since the node was last heard from (0 for self).")
	for _, fn := range fleet {
		series("addrkv_fleet_age_seconds", fn.Node, fn.Age.Seconds())
	}
	metric("addrkv_fleet_beats_total", "Heartbeats/acks observed from the node.")
	for _, fn := range fleet {
		series("addrkv_fleet_beats_total", fn.Node, float64(fn.Beats))
	}
	digestGauge := func(name, help string, f func(*health.Digest) float64) {
		metric(name, help)
		for _, fn := range fleet {
			if fn.Digest != nil {
				series(name, fn.Node, f(fn.Digest))
			}
		}
	}
	digestGauge("addrkv_fleet_map_version", "Slot map epoch installed at the node.",
		func(d *health.Digest) float64 { return float64(d.MapVersion) })
	digestGauge("addrkv_fleet_slots_owned", "Hash slots owned by the node.",
		func(d *health.Digest) float64 { return float64(d.SlotsOwned) })
	digestGauge("addrkv_fleet_slots_migrating", "Slots currently leaving the node.",
		func(d *health.Digest) float64 { return float64(d.SlotsMigrating) })
	digestGauge("addrkv_fleet_slots_importing", "Slots currently arriving at the node.",
		func(d *health.Digest) float64 { return float64(d.SlotsImporting) })
	digestGauge("addrkv_fleet_ops", "Engine ops since the node's RESETSTATS.",
		func(d *health.Digest) float64 { return float64(d.Ops) })
	digestGauge("addrkv_fleet_keys", "Keys resident at the node.",
		func(d *health.Digest) float64 { return float64(d.Keys) })
	digestGauge("addrkv_fleet_used_bytes", "Record bytes tracked by the node's eviction policy.",
		func(d *health.Digest) float64 { return float64(d.UsedBytes) })
	digestGauge("addrkv_fleet_hit_rate", "Node-wide STLT/SLB fast-path hit rate.",
		(*health.Digest).HitRate)
	digestGauge("addrkv_fleet_queue_depth", "Worker ring depth summed over the node's shards.",
		func(d *health.Digest) float64 { return float64(d.QueueDepth()) })
	digestGauge("addrkv_fleet_ops_per_sec", "Node-reported op rate over its heartbeat window.",
		func(d *health.Digest) float64 { return d.OpsPerSec })
	digestGauge("addrkv_fleet_latency_p50_us", "Node-reported wall-clock command latency p50.",
		func(d *health.Digest) float64 { return d.LatP50US })
	digestGauge("addrkv_fleet_latency_p99_us", "Node-reported wall-clock command latency p99.",
		func(d *health.Digest) float64 { return d.LatP99US })
	shardSeries := func(name string, node, shard int, v float64) {
		fmt.Fprintf(w, "%s{node=\"%d\",shard=\"%d\"} %g\n", name, node, shard, v)
	}
	metric("addrkv_fleet_shard_hit_rate", "Per-shard fast-path hit rate, by node.")
	for _, fn := range fleet {
		if fn.Digest == nil {
			continue
		}
		for si, sd := range fn.Digest.Shards {
			shardSeries("addrkv_fleet_shard_hit_rate", fn.Node, si, sd.HitRate())
		}
	}
	metric("addrkv_fleet_shard_queue_depth", "Per-shard worker ring depth, by node.")
	for _, fn := range fleet {
		if fn.Digest == nil {
			continue
		}
		for si, sd := range fn.Digest.Shards {
			shardSeries("addrkv_fleet_shard_queue_depth", fn.Node, si, float64(sd.QueueDepth))
		}
	}
}

// clusterMetricsHandler serves /cluster/metrics: the fleet view as
// Prometheus text, every series labeled by node index.
func (s *server) clusterMetricsHandler(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	promFleet(&b, s.collectFleet())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// The /cluster/snapshot.json schema. Field order and node ordering are
// fixed, so two snapshots of the same fleet state are byte-comparable;
// kvtop and scripts/health consume this form.
type clusterSnapshot struct {
	Name       string                 `json:"name"`
	SourceNode int                    `json:"source_node"`
	MapVersion uint64                 `json:"map_version"`
	State      string                 `json:"cluster_state"`
	Heartbeat  heartbeatSnapshot      `json:"heartbeat"`
	Nodes      []fleetNodeSnapshot    `json:"nodes"`
	Migration  *migrationSnapshotJSON `json:"migration,omitempty"`
}

type heartbeatSnapshot struct {
	Enabled    bool    `json:"enabled"`
	On         bool    `json:"on"`
	IntervalMS float64 `json:"interval_ms"`
	DownAfter  int     `json:"down_after"`
	Sent       uint64  `json:"sent"`
	Failures   uint64  `json:"failures"`
}

type fleetNodeSnapshot struct {
	Node   int             `json:"node"`
	Addr   string          `json:"addr"`
	Bus    string          `json:"bus"`
	State  string          `json:"state"`
	Up     bool            `json:"up"`
	AgeMS  float64         `json:"age_ms"`
	Beats  uint64          `json:"beats"`
	Digest *digestSnapshot `json:"digest,omitempty"`
}

type digestSnapshot struct {
	MapVersion     uint64            `json:"map_version"`
	SlotsOwned     uint32            `json:"slots_owned"`
	SlotsMigrating uint32            `json:"slots_migrating"`
	SlotsImporting uint32            `json:"slots_importing"`
	Ops            uint64            `json:"ops"`
	Keys           uint64            `json:"keys"`
	UsedBytes      uint64            `json:"used_bytes"`
	HitRate        float64           `json:"hit_rate"`
	QueueDepth     uint64            `json:"queue_depth"`
	OpsPerSec      float64           `json:"ops_per_sec"`
	LatP50US       float64           `json:"lat_p50_us"`
	LatP99US       float64           `json:"lat_p99_us"`
	Shards         []shardDigestJSON `json:"shards,omitempty"`
}

type shardDigestJSON struct {
	Ops        uint64  `json:"ops"`
	Keys       uint64  `json:"keys"`
	HitRate    float64 `json:"hit_rate"`
	QueueDepth uint32  `json:"queue_depth"`
}

type migrationSnapshotJSON struct {
	Slot           uint16 `json:"slot"`
	Dest           int    `json:"dest"`
	Active         bool   `json:"active"`
	Resumed        bool   `json:"resumed"`
	Failed         bool   `json:"failed"`
	KeysTotal      int    `json:"keys_total"`
	KeysShipped    int    `json:"keys_shipped"`
	BatchesTotal   int    `json:"batches_total"`
	BatchesShipped int    `json:"batches_shipped"`
	Bytes          int    `json:"bytes"`
	ElapsedUS      int64  `json:"elapsed_us"`
	EtaUS          int64  `json:"eta_us"`
}

// clusterSnapshotPayload builds the /cluster/snapshot.json value.
func (s *server) clusterSnapshotPayload() *clusterSnapshot {
	cl := s.clus
	snap := &clusterSnapshot{
		Name:       "kvserve-cluster",
		SourceNode: cl.node.Self(),
		MapVersion: cl.node.Version(),
		State:      s.clusterStateName(),
		Heartbeat: heartbeatSnapshot{
			Enabled:    cl.hbEvery > 0,
			On:         cl.hbOn.Load(),
			IntervalMS: float64(cl.hbEvery) / 1e6,
			DownAfter:  cl.health.DownAfter(),
			Sent:       cl.hbSent.Load(),
			Failures:   cl.hbFails.Load(),
		},
	}
	for _, fn := range s.collectFleet() {
		ns := fleetNodeSnapshot{
			Node:  fn.Node,
			Addr:  fn.Info.Addr,
			Bus:   fn.Info.Bus,
			State: fn.State.String(),
			Up:    fn.Up,
			AgeMS: float64(fn.Age) / 1e6,
			Beats: fn.Beats,
		}
		if d := fn.Digest; d != nil {
			ds := &digestSnapshot{
				MapVersion:     d.MapVersion,
				SlotsOwned:     d.SlotsOwned,
				SlotsMigrating: d.SlotsMigrating,
				SlotsImporting: d.SlotsImporting,
				Ops:            d.Ops,
				Keys:           d.Keys,
				UsedBytes:      d.UsedBytes,
				HitRate:        d.HitRate(),
				QueueDepth:     d.QueueDepth(),
				OpsPerSec:      d.OpsPerSec,
				LatP50US:       d.LatP50US,
				LatP99US:       d.LatP99US,
			}
			for _, sd := range d.Shards {
				ds.Shards = append(ds.Shards, shardDigestJSON{
					Ops: sd.Ops, Keys: sd.Keys, HitRate: sd.HitRate(), QueueDepth: sd.QueueDepth,
				})
			}
			ns.Digest = ds
		}
		snap.Nodes = append(snap.Nodes, ns)
	}
	if mp, ok := cl.node.Progress(); ok {
		snap.Migration = &migrationSnapshotJSON{
			Slot:           mp.Slot,
			Dest:           mp.Dest,
			Active:         mp.Active,
			Resumed:        mp.Resumed,
			Failed:         mp.Failed,
			KeysTotal:      mp.KeysTotal,
			KeysShipped:    mp.KeysShipped,
			BatchesTotal:   mp.BatchesTotal,
			BatchesShipped: mp.BatchesShipped,
			Bytes:          mp.Bytes,
			ElapsedUS:      mp.Elapsed.Microseconds(),
			EtaUS:          mp.ETA.Microseconds(),
		}
	}
	return snap
}

// clusterSnapshotHandler serves /cluster/snapshot.json.
func (s *server) clusterSnapshotHandler(w http.ResponseWriter, _ *http.Request) {
	b, err := json.MarshalIndent(s.clusterSnapshotPayload(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(b, '\n'))
}
