package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
)

// newWorkerServer builds a test server with the per-shard worker
// runtime up, and tears it down (drain first: no producers while the
// rings empty out) when the test ends.
func newWorkerServer(t *testing.T, shards int) *server {
	t.Helper()
	s := newTestServerShards(t, shards)
	if err := s.startWorkers(0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.closing.Store(true)
		s.nudgeConns()
		s.drain()
		s.stopWorkers()
	})
	return s
}

// renderReply turns a decoded RESP reply into a comparable string.
func renderReply(v any) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case []byte:
		return "$" + string(x)
	case error:
		return "-" + x.Error()
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = renderReply(e)
		}
		return "*[" + strings.Join(parts, ",") + "]"
	default:
		return fmt.Sprintf("%T:%v", v, v)
	}
}

// runScript drives one served connection through cmds (flushing every
// flushEvery commands, so several pipeline bursts run) and returns the
// rendered reply transcript.
func runScript(t *testing.T, s *server, cmds [][]string, flushEvery int) []string {
	t.Helper()
	r, w, _ := pipeClient(t, s)
	replies := make([]string, 0, len(cmds))
	read := func(n int) {
		for i := 0; i < n; i++ {
			v, err := r.ReadReply()
			if err != nil {
				t.Fatalf("reply %d: %v", len(replies), err)
			}
			replies = append(replies, renderReply(v))
		}
	}
	pendingReads := 0
	for _, c := range cmds {
		args := make([][]byte, len(c))
		for i, a := range c {
			args[i] = []byte(a)
		}
		if err := w.WriteCommand(args...); err != nil {
			t.Fatal(err)
		}
		pendingReads++
		if pendingReads >= flushEvery {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			read(pendingReads)
			pendingReads = 0
		}
	}
	if pendingReads > 0 {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		read(pendingReads)
	}
	return replies
}

// TestServerWorkerMatchesMutex is the server-level determinism pin for
// the worker runtime: the same single-connection command stream must
// produce byte-identical replies AND bit-for-bit identical modeled
// statistics under -dispatch worker and -dispatch mutex. Single-key
// async ops, multi-key barriers, admin commands, errors, and misses
// are all interleaved.
func TestServerWorkerMatchesMutex(t *testing.T) {
	var script [][]string
	for i := 0; i < 24; i++ {
		script = append(script, []string{"SET", fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)})
	}
	for i := 0; i < 24; i++ {
		script = append(script, []string{"GET", fmt.Sprintf("key-%d", i)})
		if i%5 == 0 {
			script = append(script, []string{"PING"}) // sync barrier mid-burst
		}
		if i%7 == 0 {
			script = append(script, []string{"EXISTS", fmt.Sprintf("key-%d", i)})
		}
	}
	script = append(script,
		[]string{"MSET", "ma", "1", "mb", "2"}, // batch path barrier
		[]string{"MGET", "ma", "mb", "absent"},
		[]string{"GET", "absent"},
		[]string{"DEL", "key-3"},
		[]string{"GET", "key-3"},
		[]string{"DEL", "ma", "mb"}, // multi-key DEL: batch path
		[]string{"GET"},             // arity error: sync error reply, in order
		[]string{"EXISTS", "key-4"},
		[]string{"DBSIZE"},
		[]string{"SET", "key-3", "back"},
		[]string{"GET", "key-3"},
	)

	for _, shards := range []int{1, 2} {
		worker := newWorkerServer(t, shards)
		mutex := newTestServerShards(t, shards)
		wr := runScript(t, worker, script, 9)
		mr := runScript(t, mutex, script, 9)
		if len(wr) != len(mr) {
			t.Fatalf("shards=%d: %d worker replies vs %d mutex", shards, len(wr), len(mr))
		}
		for i := range wr {
			if wr[i] != mr[i] {
				t.Fatalf("shards=%d reply %d (%v): worker %q vs mutex %q",
					shards, i, script[i], wr[i], mr[i])
			}
		}
		wrep, mrep := worker.sys.Report(), mutex.sys.Report()
		if wrep.Ops != mrep.Ops || wrep.Cycles != mrep.Cycles {
			t.Fatalf("shards=%d stats diverged: ops %d/%d cycles %d/%d",
				shards, wrep.Ops, mrep.Ops, wrep.Cycles, mrep.Cycles)
		}
		for i := range wrep.PerShard {
			if wrep.PerShard[i] != mrep.PerShard[i] {
				t.Fatalf("shard %d diverged:\nworker: %+v\nmutex:  %+v",
					i, wrep.PerShard[i], mrep.PerShard[i])
			}
		}
		if worker.opsSinceMark.Load() != mutex.opsSinceMark.Load() {
			t.Fatalf("server_ops diverged: %d vs %d",
				worker.opsSinceMark.Load(), mutex.opsSinceMark.Load())
		}
	}
}

// TestServerWorkerCrossConnections hammers one worker server from
// several connections: every op must complete exactly once through the
// shard rings (drained_ops exact), and per-connection reply order must
// hold under cross-connection batching.
func TestServerWorkerCrossConnections(t *testing.T) {
	const (
		conns   = 4
		opsEach = 250
	)
	s := newWorkerServer(t, 2)
	errCh := make(chan error, conns)
	for c := 0; c < conns; c++ {
		r, w, _ := pipeClient(t, s)
		go func(c int, r *resp.Reader, w *resp.Writer) {
			for i := 0; i < opsEach; i++ {
				key := []byte(fmt.Sprintf("k-%d-%d", c, i))
				val := []byte(fmt.Sprintf("v-%d-%d", c, i))
				w.WriteCommand([]byte("SET"), key, val)
				w.WriteCommand([]byte("GET"), key)
				if err := w.Flush(); err != nil {
					errCh <- err
					return
				}
				if v, err := r.ReadReply(); err != nil || v != "OK" {
					errCh <- fmt.Errorf("conn %d SET %d: %v, %v", c, i, v, err)
					return
				}
				v, err := r.ReadReply()
				if err != nil || !bytes.Equal(v.([]byte), val) {
					errCh <- fmt.Errorf("conn %d GET %d: %v, %v", c, i, v, err)
					return
				}
			}
			errCh <- nil
		}(c, r, w)
	}
	for c := 0; c < conns; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	total := uint64(conns * opsEach * 2)
	if got := s.opsSinceMark.Load(); got != total {
		t.Fatalf("server_ops = %d, want %d", got, total)
	}
	if rep := s.sys.Report(); rep.Ops != total {
		t.Fatalf("engine ops = %d, want %d", rep.Ops, total)
	}
	var drained, drains uint64
	for _, st := range s.sys.Cluster().RuntimeStats() {
		drained += st.DrainedOps
		drains += st.Drains
	}
	if drained != total {
		t.Fatalf("worker drained_ops = %d, want %d", drained, total)
	}
	if drains == 0 || drains > drained {
		t.Fatalf("drains = %d for %d drained ops", drains, drained)
	}
}

// TestServerRuntimeInfoAndMetrics: INFO gains a "# runtime" section
// and /metrics exposes the queue-depth and drain telemetry.
func TestServerRuntimeInfoAndMetrics(t *testing.T) {
	s := newWorkerServer(t, 2)
	runScript(t, s, [][]string{
		{"SET", "a", "1"}, {"GET", "a"}, {"EXISTS", "a"}, {"DEL", "a"},
	}, 4)

	info := string(call(t, s, "INFO").([]byte))
	for _, want := range []string{
		"# runtime", "dispatch:worker", "queue_cap:", "queue_depth:",
		"worker_drains:", "worker_drained_ops:4", "drain_mean:", "drain_max:",
		"queue_full_spins:",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}

	srv, addr, err := startMetricsServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`addrkv_queue_depth{shard="0"}`,
		`addrkv_queue_depth{shard="1"}`,
		"addrkv_worker_drains_total ",
		"addrkv_worker_drained_ops_total 4",
		"addrkv_queue_full_spins_total ",
		"addrkv_drain_size_count ", // one sample per drain burst
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// A mutex-mode server reports its dispatch mode and no worker
	// counters (the runtime is down).
	m := newTestServer(t)
	info = string(call(t, m, "INFO").([]byte))
	if !strings.Contains(info, "dispatch:mutex") {
		t.Fatalf("mutex INFO missing dispatch mode:\n%s", info)
	}
	if strings.Contains(info, "worker_drains:") {
		t.Fatalf("mutex INFO has worker counters:\n%s", info)
	}
}

// TestServerHotPathZeroAlloc pins the end-to-end budget: a served
// SET+GET pipeline round trip over a warm connection allocates nothing
// anywhere in the process — parser (arena reuse), router (request
// slab), worker (GetInto reply buffer), writer (scratch formatting),
// and telemetry (gated slowlog, atomic histograms).
//
// Allocation budget table (steady state, per round trip of 2 commands):
//
//	resp.Reader.ReadPipelineReuse   0 allocs
//	asyncKind + enqueue + Wait      0 allocs
//	Engine.GetInto / Engine.Set     0 allocs
//	resp.Writer replies + Flush     0 allocs
//	observeCmd (under slowlog floor) 0 allocs
//	TOTAL                           0 allocs
func TestServerHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel handoffs")
	}
	s := newWorkerServer(t, 1)
	// Raise the slowlog floor so nanosecond-scale ops never qualify and
	// the entry construction (which allocates) is skipped.
	for i := 0; i < defaultSlowlogCap; i++ {
		s.tele.slowlog.Note(telemetry.SlowlogEntry{Duration: time.Hour})
	}

	client, srv := net.Pipe()
	if !s.track(srv) {
		t.Fatal("track refused connection")
	}
	go s.serve(srv)
	t.Cleanup(func() { client.Close() })

	val := bytes.Repeat([]byte("v"), 64)
	var reqBuf, repBuf bytes.Buffer
	cw := resp.NewWriter(&reqBuf)
	cw.WriteCommand([]byte("SET"), []byte("hotkey"), val)
	cw.WriteCommand([]byte("GET"), []byte("hotkey"))
	cw.Flush()
	ew := resp.NewWriter(&repBuf)
	ew.WriteSimple("OK")
	ew.WriteBulk(val)
	ew.Flush()
	req, wantRep := reqBuf.Bytes(), repBuf.Bytes()

	reply := make([]byte, len(wantRep))
	roundTrip := func() {
		if _, err := client.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(client, reply); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // warm the arena, slab, and reply buffers
		roundTrip()
	}
	if !bytes.Equal(reply, wantRep) {
		t.Fatalf("reply = %q, want %q", reply, wantRep)
	}
	if n := testing.AllocsPerRun(200, roundTrip); n != 0 {
		t.Errorf("SET+GET round trip: %.2f allocs, budget 0", n)
	}
}
