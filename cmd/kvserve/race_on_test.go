//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on channel and pipe handoffs, so the
// zero-allocation budget tests skip themselves under -race.
const raceEnabled = true
