// Worker-runtime dispatch for kvserve (-dispatch worker, the default):
// connection goroutines classify single-key commands, enqueue them on
// their home shard's request ring, and write replies when the shard's
// owning worker completes them. Commands that cannot run asynchronously
// (multi-key batches, INFO, admin) act as ordering barriers: every
// pending reply is flushed first, so each connection's replies always
// arrive in command order.
//
// The steady-state path is allocation-free: each connection reuses a
// slab of shard.Req slots (their Val buffers double as pooled reply
// buffers for GET), the pending window is a reused slice, and the
// telemetry path formats nothing unless the slowlog would record it.
package main

import (
	"time"

	"addrkv"
	"addrkv/internal/resp"
	"addrkv/internal/shard"
	"addrkv/internal/trace"
)

// pending is one enqueued async command awaiting completion: the
// request slot, the canonical command name (a constant, so observing
// it allocates nothing), the raw args (valid until the next pipeline
// read — consumed before that), and the span/start for telemetry.
type pending struct {
	req   *shard.Req
	cmd   string
	args  [][]byte
	start time.Time
	sp    *trace.Op
}

// asciiLowerEq reports whether b equals the lowercase ASCII string s,
// ignoring letter case in b, without allocating. s must be lowercase.
func asciiLowerEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i]|0x20 != s[i] {
			return false
		}
	}
	return true
}

// asyncKind classifies a command for worker dispatch: single-key
// GET/SET/EXISTS/DEL with correct arity run asynchronously on the
// shard worker; everything else (including wrong-arity forms, which
// must produce their error reply in order) goes through the
// synchronous dispatch path.
func asyncKind(args [][]byte) (shard.OpKind, string, bool) {
	c := args[0]
	switch len(c) {
	case 3:
		switch {
		case asciiLowerEq(c, "get") && len(args) == 2:
			return shard.OpGet, "get", true
		case asciiLowerEq(c, "set") && len(args) == 3:
			return shard.OpSet, "set", true
		case asciiLowerEq(c, "del") && len(args) == 2:
			return shard.OpDelete, "del", true
		}
	case 6:
		if asciiLowerEq(c, "exists") && len(args) == 2 {
			return shard.OpExists, "exists", true
		}
	}
	return 0, "", false
}

// nextReq hands out the connection's next request slot, reusing the
// slab (pointer slice: addresses stay stable as it grows, and each
// slot's Val buffer stays warm across uses).
func (cs *connState) nextReq() *shard.Req {
	if cs.used < len(cs.reqs) {
		r := cs.reqs[cs.used]
		cs.used++
		return r
	}
	r := shard.NewReq()
	cs.reqs = append(cs.reqs, r)
	cs.used++
	return r
}

// enqueueAsync routes one classified single-key command to its shard
// worker and appends it to the connection's pending window. The key
// and value slices alias the reader's arena; the engine copies them
// into simulated memory before the pending window is flushed, which
// happens before the arena's next reuse.
func (s *server) enqueueAsync(cs *connState, kind shard.OpKind, cmd string, args [][]byte) {
	start := time.Now()
	req := cs.nextReq()
	req.Kind = kind
	req.Key = args[1]
	req.Value = nil
	if kind == shard.OpSet {
		req.Value = args[2]
	}
	var sp *trace.Op
	if every := s.tracer.Sample(); every != 0 {
		cs.ops++
		if cs.ops%every == 0 {
			sp = s.tracer.BeginSampled(cmd, args[1])
			sp.Conn = cs.id
			if cs.netloop {
				sp.EventRel(trace.EvNetRead, 0, int64(cs.reader), 0, 0)
			}
			sp.EventRel(trace.EvDispatch, 0, 0, 0, 0)
		}
	}
	req.Out = addrkv.OpOutcome{Shard: -1, Trace: sp}
	if s.clus != nil {
		req.Out.Bypass = s.clusterConsumeAsking(cs, args)
	}
	s.opsSinceMark.Add(1)
	s.sys.Cluster().Enqueue(req)
	cs.pend = append(cs.pend, pending{req: req, cmd: cmd, args: args, start: start, sp: sp})
}

// flushPending waits for every pending request in submission order,
// writes its reply, and records its telemetry. On a write error the
// remaining requests are still awaited (their slots must not be reused
// while a worker may complete them) and observed; the first error is
// returned. The write-buffer cap triggers early flushes exactly like
// the synchronous path.
func (s *server) flushPending(w *resp.Writer, cs *connState) error {
	if len(cs.pend) == 0 {
		return nil
	}
	var werr error
	for i := range cs.pend {
		p := &cs.pend[i]
		r := p.req
		r.Wait()
		if p.sp != nil {
			p.sp.EventRel(trace.EvReplyFlush, p.sp.Cycles, 0, 0, 0)
			s.tracer.Finish(p.sp, r.Out.Shard, r.Out.FastHit, r.Out.Missed)
		}
		if werr == nil {
			switch {
			case r.Out.Denied:
				// Cluster mode: the shard gate refused the op (slot not
				// served here as of execution time) — the reply is the
				// redirect, resolved against the current slot view.
				werr = w.WriteError(s.clusterRedirectMsg(r.Key))
			case r.Kind == shard.OpGet:
				if r.OK {
					werr = w.WriteBulk(r.Val)
				} else {
					werr = w.WriteBulk(nil)
				}
			case r.Kind == shard.OpSet:
				werr = w.WriteSimple("OK")
			case r.Kind == shard.OpDelete, r.Kind == shard.OpExists:
				if r.OK {
					werr = w.WriteInt(1)
				} else {
					werr = w.WriteInt(0)
				}
			}
			if werr == nil && w.Buffered() >= s.net.writeBufCap {
				s.tele.earlyFlush.Inc()
				werr = w.Flush()
			}
		}
		s.tele.observeCmd(p.cmd, p.args, &r.Out, nil, time.Since(p.start), r.Out.Denied)
		if s.tele.feed.Active() {
			s.tele.feed.Publish(monitorLine(p.args, r.Out.Shard))
		}
	}
	cs.pend = cs.pend[:0]
	cs.used = 0
	return werr
}

// startWorkers brings up the per-shard worker runtime and wires its
// drain-size observations into the metrics registry.
func (s *server) startWorkers(queueCap int) error {
	c := s.sys.Cluster()
	c.SetDrainObserver(func(_, burst int) {
		s.tele.drainSize.Observe(uint64(burst))
	})
	if err := c.StartWorkers(queueCap); err != nil {
		return err
	}
	s.workers = true
	s.queueCap = queueCap
	if s.queueCap <= 0 {
		s.queueCap = shard.DefaultQueueCap
	}
	return nil
}

// stopWorkers tears the runtime down; callers must have drained every
// connection first (no producers while the rings empty out).
func (s *server) stopWorkers() {
	if s.workers {
		s.sys.Cluster().StopWorkers()
	}
}

// runtimeInfo renders the INFO "# runtime" section: dispatch mode,
// ring sizing, and the aggregate worker counters when running.
func (s *server) runtimeInfo(add func(format string, args ...any)) {
	add("# runtime\r\n")
	mode := "mutex"
	if s.workers {
		mode = "worker"
	}
	add("dispatch:%s\r\n", mode)
	add("queue_cap:%d\r\n", s.queueCap)
	ws := s.sys.Cluster().RuntimeStats()
	if ws == nil {
		return
	}
	var depth int
	var drains, dops, spins, maxBurst uint64
	for _, st := range ws {
		depth += st.Depth
		drains += st.Drains
		dops += st.DrainedOps
		spins += st.FullSpins
		if st.MaxBurst > maxBurst {
			maxBurst = st.MaxBurst
		}
	}
	add("queue_depth:%d\r\n", depth)
	add("worker_drains:%d\r\n", drains)
	add("worker_drained_ops:%d\r\n", dops)
	mean := 0.0
	if drains > 0 {
		mean = float64(dops) / float64(drains)
	}
	add("drain_mean:%.2f\r\n", mean)
	add("drain_max:%d\r\n", maxBurst)
	add("queue_full_spins:%d\r\n", spins)
}
