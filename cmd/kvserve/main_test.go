package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"addrkv"
	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
)

func newTestServerShards(t *testing.T, shards int) *server {
	t.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Shards:     shards,
		Index:      addrkv.IndexChainHash,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sys, defaultSlowlogCap)
}

func newTestServer(t *testing.T) *server { return newTestServerShards(t, 1) }

// call dispatches a command and returns the decoded reply.
func call(t *testing.T, s *server, args ...string) any {
	t.Helper()
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	s.dispatch(w, ba, &connState{id: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := resp.NewReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerBasicCommands(t *testing.T) {
	s := newTestServer(t)

	if got := call(t, s, "PING"); got != "PONG" {
		t.Fatalf("PING = %v", got)
	}
	if got := call(t, s, "SET", "alpha", "one"); got != "OK" {
		t.Fatalf("SET = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); string(got.([]byte)) != "one" {
		t.Fatalf("GET = %v", got)
	}
	if got := call(t, s, "EXISTS", "alpha"); got.(int64) != 1 {
		t.Fatalf("EXISTS = %v", got)
	}
	if got := call(t, s, "GET", "missing"); got != nil {
		t.Fatalf("GET missing = %v", got)
	}
	if got := call(t, s, "DBSIZE"); got.(int64) != 1 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := call(t, s, "DEL", "alpha", "missing"); got.(int64) != 1 {
		t.Fatalf("DEL = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); got != nil {
		t.Fatal("deleted key visible")
	}
}

func TestServerInfoAndReset(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "cycles_per_op") {
		t.Fatalf("INFO missing stats:\n%s", info)
	}
	if !strings.Contains(info, "shards:1") || !strings.Contains(info, "# shard 0") {
		t.Fatalf("INFO missing shard sections:\n%s", info)
	}
	if got := call(t, s, "RESETSTATS"); got != "OK" {
		t.Fatalf("RESETSTATS = %v", got)
	}
	info = string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "\r\nops:0\r\n") {
		t.Fatalf("stats not reset:\n%s", info)
	}
}

// TestServerExistsCounted: EXISTS must count toward server_ops like
// GET/SET, and must be cheaper than a GET of the same key (it skips
// the value read and the value-copy reply).
func TestServerExistsCounted(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", strings.Repeat("v", 256))
	call(t, s, "RESETSTATS")
	call(t, s, "EXISTS", "k")
	call(t, s, "EXISTS", "nope")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "server_ops:2") {
		t.Fatalf("EXISTS not counted in server_ops:\n%s", info)
	}
	if !strings.Contains(info, "\r\nops:2\r\n") {
		t.Fatalf("EXISTS not counted as engine ops:\n%s", info)
	}

	existsRep := s.sys.Report()
	call(t, s, "RESETSTATS")
	call(t, s, "GET", "k")
	call(t, s, "GET", "nope")
	getRep := s.sys.Report()
	if existsRep.Cycles >= getRep.Cycles {
		t.Fatalf("EXISTS (%d cycles) not cheaper than GET (%d cycles)",
			existsRep.Cycles, getRep.Cycles)
	}
}

func TestServerFlushall(t *testing.T) {
	s := newTestServerShards(t, 2)
	call(t, s, "SET", "a", "1")
	call(t, s, "SET", "b", "2")
	if got := call(t, s, "DBSIZE"); got.(int64) != 2 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := call(t, s, "FLUSHALL"); got != "OK" {
		t.Fatalf("FLUSHALL = %v", got)
	}
	if got := call(t, s, "DBSIZE"); got.(int64) != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %v", got)
	}
	if got := call(t, s, "GET", "a"); got != nil {
		t.Fatalf("flushed key visible: %v", got)
	}
	// Server stays usable.
	if got := call(t, s, "SET", "c", "3"); got != "OK" {
		t.Fatalf("SET after FLUSHALL = %v", got)
	}
	if got := call(t, s, "GET", "c"); string(got.([]byte)) != "3" {
		t.Fatalf("GET after FLUSHALL = %v", got)
	}
}

func TestServerErrors(t *testing.T) {
	s := newTestServer(t)
	if _, ok := call(t, s, "GET").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "SET", "k").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "EXISTS").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "WHATEVER").(error); !ok {
		t.Fatal("unknown command not reported")
	}
}

func TestServerQuit(t *testing.T) {
	s := newTestServer(t)
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	if quit, _ := s.dispatch(w, [][]byte{[]byte("QUIT")}, &connState{id: 1}); !quit {
		t.Fatal("QUIT did not request close")
	}
	if quit, _ := s.dispatch(w, [][]byte{[]byte("PING")}, &connState{id: 1}); quit {
		t.Fatal("PING requested close")
	}
}

// TestServerInfoLatencySections: after a few commands, INFO reports
// wall-clock latency percentiles, modeled cycle percentiles, and the
// per-shard telemetry lines.
func TestServerInfoLatencySections(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	call(t, s, "GET", "k")
	info := string(call(t, s, "INFO").([]byte))
	for _, want := range []string{
		"latency_samples:", "latency_p50_us:", "latency_p99_us:", "latency_p999_us:",
		"op_cycles_p50:", "op_cycles_p99:",
		"slowlog_len:", "monitor_clients:0",
		"shard0_fast_hit_rate:", "shard0_cycles_p99:",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	// Commands above were dispatched, so samples and cycles are nonzero.
	if strings.Contains(info, "latency_samples:0\r\n") {
		t.Fatalf("no latency samples recorded:\n%s", info)
	}
	if strings.Contains(info, "op_cycles_p50:0\r\n") {
		t.Fatalf("no op cycle samples recorded:\n%s", info)
	}
}

// TestServerSlowlog: SLOWLOG LEN/GET/RESET over a handful of commands.
// Every dispatched command qualifies while the log is below capacity,
// and GET entries carry the shard/cycles/detail breakdown.
func TestServerSlowlog(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	call(t, s, "GET", "missing")

	if n := call(t, s, "SLOWLOG", "LEN").(int64); n < 3 {
		t.Fatalf("SLOWLOG LEN = %d, want >= 3", n)
	}
	entries := call(t, s, "SLOWLOG", "GET", "2").([]any)
	if len(entries) != 2 {
		t.Fatalf("SLOWLOG GET 2 returned %d entries", len(entries))
	}
	e := entries[0].([]any)
	if len(e) != 7 {
		t.Fatalf("slowlog entry has %d fields, want 7: %v", len(e), e)
	}
	args := e[3].([]any)
	if len(args) == 0 {
		t.Fatalf("slowlog entry has empty args: %v", e)
	}
	// At least one recorded entry must be a key command with its home
	// shard and a nonzero modeled cycle cost attached.
	var sawKeyCmd bool
	for _, raw := range call(t, s, "SLOWLOG", "GET", "0").([]any) {
		e := raw.([]any)
		cmd := strings.ToUpper(string(e[3].([]any)[0].([]byte)))
		shard, cycles := e[4].(int64), e[5].(int64)
		detail := string(e[6].([]byte))
		if cmd == "GET" || cmd == "SET" {
			sawKeyCmd = true
			if shard != 0 {
				t.Fatalf("%s entry shard = %d, want 0 (1-shard server)", cmd, shard)
			}
			if cycles <= 0 {
				t.Fatalf("%s entry cycles = %d, want > 0", cmd, cycles)
			}
			if !strings.Contains(detail, "tlb_misses=") {
				t.Fatalf("%s entry detail missing breakdown: %q", cmd, detail)
			}
		}
	}
	if !sawKeyCmd {
		t.Fatal("no GET/SET entry in slowlog")
	}

	if got := call(t, s, "SLOWLOG", "RESET"); got != "OK" {
		t.Fatalf("SLOWLOG RESET = %v", got)
	}
	// The RESET itself may re-enter the (now empty) log afterwards.
	if n := call(t, s, "SLOWLOG", "LEN").(int64); n > 1 {
		t.Fatalf("SLOWLOG LEN after RESET = %d", n)
	}
	if _, ok := call(t, s, "SLOWLOG", "NOPE").(error); !ok {
		t.Fatal("unknown SLOWLOG subcommand not rejected")
	}
	if _, ok := call(t, s, "SLOWLOG").(error); !ok {
		t.Fatal("bare SLOWLOG not rejected")
	}
}

// TestServerMonitorFeed: MONITOR replies +OK and flags the connection;
// subsequent commands are published to the feed with their home shard.
func TestServerMonitorFeed(t *testing.T) {
	s := newTestServer(t)
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	quit, monitor := s.dispatch(w, [][]byte{[]byte("MONITOR")}, &connState{id: 1})
	if quit || !monitor {
		t.Fatalf("MONITOR: quit=%v monitor=%v", quit, monitor)
	}
	id, ch := s.tele.feed.Subscribe(16)
	defer s.tele.feed.Unsubscribe(id)

	call(t, s, "SET", "k", "v")
	select {
	case line := <-ch:
		if !strings.Contains(line, `"SET"`) || !strings.Contains(line, "[shard 0]") {
			t.Fatalf("monitor line = %q", line)
		}
	default:
		t.Fatal("SET not published to monitor feed")
	}
	call(t, s, "PING")
	select {
	case line := <-ch:
		if !strings.Contains(line, `"PING"`) || !strings.Contains(line, "[shard -1]") {
			t.Fatalf("monitor line = %q", line)
		}
	default:
		t.Fatal("PING not published to monitor feed")
	}
}

// TestServerMetricsEndpoint: a live /metrics scrape exposes per-shard
// op counters, hit-rate gauges, and the latency histograms.
func TestServerMetricsEndpoint(t *testing.T) {
	s := newTestServerShards(t, 2)
	srv, addr, err := startMetricsServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%d", i)
		call(t, s, "SET", k, "v")
		call(t, s, "GET", k)
	}

	res, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`addrkv_commands_total{cmd="get"} 32`,
		`addrkv_commands_total{cmd="set"} 32`,
		`addrkv_shard_ops_total{shard="0"}`,
		`addrkv_shard_ops_total{shard="1"}`,
		"addrkv_fast_path_hit_rate ",
		"addrkv_cycles_per_op ",
		`addrkv_shard_fast_hit_rate{shard="0"}`,
		`addrkv_command_latency_seconds_bucket{cmd="all",le=`,
		`addrkv_op_cycles_count{shard="0"}`,
		"addrkv_slowlog_len ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	res, err = http.Get("http://" + addr.String() + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot.json invalid: %v\n%s", err, body)
	}
	if snap.Kind != "server" || len(snap.Runs) != 1 || snap.Runs[0].Ops != 64 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Latency["wall_ns"].Count != 64 || snap.Latency["op_cycles"].Count != 64 {
		t.Fatalf("snapshot latency = %+v", snap.Latency)
	}
}

// TestServerResetStatsAtomic: INFO racing RESETSTATS must never see a
// half-reset mix — engine ops zeroed while server_ops still counts, or
// vice versa. With the reset under statsMu, both counters move
// together. The producer is gated so each INFO samples at an op
// boundary: any gap bigger than the reset window itself means a torn
// reset, not in-flight skew.
func TestServerResetStatsAtomic(t *testing.T) {
	s := newTestServer(t)
	stop := make(chan struct{})
	var gate sync.Mutex // held around each SET so INFO samples between ops
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		w := resp.NewWriter(&buf)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gate.Lock()
			s.dispatch(w, [][]byte{[]byte("SET"), []byte("k"), []byte("v")}, &connState{id: 1})
			gate.Unlock()
			buf.Reset()
		}
	}()
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		w := resp.NewWriter(&buf)
		for i := 0; i < 50; i++ {
			s.dispatch(w, [][]byte{[]byte("RESETSTATS")}, &connState{id: 1})
			buf.Reset()
		}
	}()

	parse := func(info, field string) int64 {
		i := strings.Index(info, "\r\n"+field+":")
		if i < 0 {
			t.Fatalf("INFO missing %s:\n%s", field, info)
		}
		rest := info[i+len(field)+3:]
		v, err := strconv.ParseInt(rest[:strings.Index(rest, "\r")], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for i := 0; i < 200; i++ {
		gate.Lock()
		info := string(call(t, s, "INFO").([]byte))
		gate.Unlock()
		serverOps, engineOps := parse(info, "server_ops"), parse(info, "ops")
		// With the producer paused at an op boundary and INFO's statsMu
		// read lock excluding the reset, the counters must agree — a
		// torn reset would show a gap of hundreds.
		if diff := serverOps - engineOps; diff > 1 || diff < -1 {
			t.Fatalf("torn reset visible: server_ops=%d engine ops=%d", serverOps, engineOps)
		}
	}
	close(stop)
	wg.Wait()
}

// TestServerConcurrentDispatch hammers dispatch from many goroutines
// on a 4-shard server (run under -race in CI) and checks that the
// aggregate op counts come out exact: per-shard locking must lose no
// updates, and concurrent INFO/DBSIZE snapshots must not crash.
func TestServerConcurrentDispatch(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 400
	)
	s := newTestServerShards(t, 4)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf bytes.Buffer
			w := resp.NewWriter(&buf)
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i)
				s.dispatch(w, [][]byte{[]byte("SET"), []byte(key), []byte("v")}, &connState{id: 1})
				s.dispatch(w, [][]byte{[]byte("GET"), []byte(key)}, &connState{id: 1})
				s.dispatch(w, [][]byte{[]byte("EXISTS"), []byte(key)}, &connState{id: 1})
				if i%64 == 0 {
					s.dispatch(w, [][]byte{[]byte("INFO")}, &connState{id: 1})
					s.dispatch(w, [][]byte{[]byte("DBSIZE")}, &connState{id: 1})
				}
				buf.Reset()
			}
		}(g)
	}
	wg.Wait()

	if got, want := s.opsSinceMark.Load(), uint64(3*goroutines*opsEach); got != want {
		t.Fatalf("server_ops = %d, want %d", got, want)
	}
	rep := s.sys.Report()
	if got, want := rep.Ops, uint64(3*goroutines*opsEach); got != want {
		t.Fatalf("aggregate engine ops = %d, want %d", got, want)
	}
	if got, want := s.sys.Len(), goroutines*opsEach; got != want {
		t.Fatalf("DBSIZE = %d, want %d", got, want)
	}
	var perShard uint64
	for _, st := range rep.PerShard {
		perShard += st.Ops
	}
	if perShard != rep.Ops {
		t.Fatalf("per-shard ops sum %d != aggregate %d", perShard, rep.Ops)
	}
}

// TestServerMultiKeyCommands: MGET/MSET/DEL/ECHO semantics on a
// 2-shard server — positional MGET replies with null bulks for absent
// keys, MSET pairing, DEL counting, and arity errors.
func TestServerMultiKeyCommands(t *testing.T) {
	s := newTestServerShards(t, 2)

	if got := call(t, s, "MSET", "a", "1", "b", "2", "c", "3"); got != "OK" {
		t.Fatalf("MSET = %v", got)
	}
	arr := call(t, s, "MGET", "a", "missing", "c", "b").([]any)
	if len(arr) != 4 {
		t.Fatalf("MGET returned %d values", len(arr))
	}
	if string(arr[0].([]byte)) != "1" || arr[1] != nil ||
		string(arr[2].([]byte)) != "3" || string(arr[3].([]byte)) != "2" {
		t.Fatalf("MGET = %v", arr)
	}
	if got := call(t, s, "DEL", "a", "b", "nope").(int64); got != 2 {
		t.Fatalf("DEL = %v", got)
	}
	arr = call(t, s, "MGET", "a", "c").([]any)
	if arr[0] != nil || string(arr[1].([]byte)) != "3" {
		t.Fatalf("MGET after DEL = %v", arr)
	}
	if got := call(t, s, "ECHO", "hello"); string(got.([]byte)) != "hello" {
		t.Fatalf("ECHO = %v", got)
	}
	for _, bad := range [][]string{
		{"MGET"}, {"MSET"}, {"MSET", "k"}, {"MSET", "k", "v", "odd"}, {"ECHO"}, {"ECHO", "a", "b"},
	} {
		if _, ok := call(t, s, bad...).(error); !ok {
			t.Fatalf("%v not rejected", bad)
		}
	}

	// Multi-key ops count per key in server_ops and engine ops.
	cmds0, keys0 := s.tele.batchCmds.Load(), s.tele.batchKeys.Load()
	call(t, s, "RESETSTATS")
	call(t, s, "MSET", "x", "1", "y", "2")
	call(t, s, "MGET", "x", "y", "z")
	call(t, s, "DEL", "x", "y")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "server_ops:7") {
		t.Fatalf("multi-key ops not counted per key:\n%s", info)
	}
	if !strings.Contains(info, "\r\nops:7\r\n") {
		t.Fatalf("engine ops != 7:\n%s", info)
	}
	// The batch counters are monotonic (Prometheus rate() material),
	// so assert their deltas over the three commands above.
	if d := s.tele.batchCmds.Load() - cmds0; d != 3 {
		t.Fatalf("batch_commands delta = %d, want 3", d)
	}
	if d := s.tele.batchKeys.Load() - keys0; d != 7 {
		t.Fatalf("batched_keys delta = %d, want 7", d)
	}
	if !strings.Contains(info, "# networking") || !strings.Contains(info, "batch_commands:") {
		t.Fatalf("INFO missing networking section:\n%s", info)
	}
}

// TestServerBatchedMatchesSequentialServer: the same traffic sent as
// multi-key commands and as single-key commands must leave two
// servers' engines bit-for-bit identical — the server-level face of
// the batch determinism contract.
func TestServerBatchedMatchesSequentialServer(t *testing.T) {
	batched := newTestServerShards(t, 2)
	single := newTestServerShards(t, 2)

	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	msetArgs := []string{"MSET"}
	for _, k := range keys {
		msetArgs = append(msetArgs, k, "val-"+k)
	}
	call(t, batched, msetArgs...)
	for _, k := range keys {
		call(t, single, "SET", k, "val-"+k)
	}
	mgetArgs := append([]string{"MGET"}, keys...)
	gotArr := call(t, batched, mgetArgs...).([]any)
	for i, k := range keys {
		want := call(t, single, "GET", k)
		if string(gotArr[i].([]byte)) != string(want.([]byte)) {
			t.Fatalf("MGET[%d] = %q, GET = %q", i, gotArr[i], want)
		}
	}
	if nb, ns := call(t, batched, append([]string{"DEL"}, keys[:10]...)...).(int64), int64(0); true {
		for _, k := range keys[:10] {
			ns += call(t, single, "DEL", k).(int64)
		}
		if nb != ns {
			t.Fatalf("DEL batched = %d, sequential = %d", nb, ns)
		}
	}

	br, sr := batched.sys.Report(), single.sys.Report()
	if br.Ops != sr.Ops || br.Cycles != sr.Cycles {
		t.Fatalf("batched server diverged: ops %d/%d cycles %d/%d",
			br.Ops, sr.Ops, br.Cycles, sr.Cycles)
	}
	for i := range br.PerShard {
		if br.PerShard[i] != sr.PerShard[i] {
			t.Fatalf("shard %d diverged:\nbatched: %+v\nsingle:  %+v",
				i, br.PerShard[i], sr.PerShard[i])
		}
	}
}

// pipeClient connects a client RESP reader/writer to a served
// in-memory connection.
func pipeClient(t *testing.T, s *server) (*resp.Reader, *resp.Writer, net.Conn) {
	t.Helper()
	client, srv := net.Pipe()
	if !s.track(srv) {
		srv.Close()
		t.Fatal("track refused connection")
	}
	go s.serve(srv)
	t.Cleanup(func() { client.Close() })
	return resp.NewReader(client), resp.NewWriter(client), client
}

// TestServePipelinedConnection: a burst of pipelined commands over one
// connection gets every reply in order, and INFO records the drain.
func TestServePipelinedConnection(t *testing.T) {
	s := newTestServer(t)
	r, w, _ := pipeClient(t, s)

	const n = 50
	for i := 0; i < n; i++ {
		w.WriteCommand([]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i := 0; i < n; i++ {
		w.WriteCommand([]byte("GET"), []byte(fmt.Sprintf("k%d", i)))
	}
	w.WriteCommand([]byte("PING"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, err := r.ReadReply(); err != nil || v != "OK" {
			t.Fatalf("SET %d reply = %v, %v", i, v, err)
		}
	}
	for i := 0; i < n; i++ {
		if v, err := r.ReadReply(); err != nil || string(v.([]byte)) != "v" {
			t.Fatalf("GET %d reply = %v, %v", i, v, err)
		}
	}
	if v, err := r.ReadReply(); err != nil || v != "PONG" {
		t.Fatalf("PING reply = %v, %v", v, err)
	}

	if got := s.tele.pipeCmds.Load(); got != 2*n+1 {
		t.Fatalf("pipelined_commands = %d, want %d", got, 2*n+1)
	}
	// The whole burst was written before the server read any of it, so
	// it must have been drained in far fewer batches than commands.
	if batches := s.tele.pipeBatches.Load(); batches == 0 || batches > uint64(n) {
		t.Fatalf("pipeline_batches = %d for %d commands", batches, 2*n+1)
	}
}

// TestServePipelineDepthCap: -pipeline bounds how many commands one
// drain may pick up.
func TestServePipelineDepthCap(t *testing.T) {
	s := newTestServer(t)
	s.net.maxPipeline = 4
	r, w, _ := pipeClient(t, s)
	const n = 10
	for i := 0; i < n; i++ {
		w.WriteCommand([]byte("PING"))
	}
	w.Flush()
	for i := 0; i < n; i++ {
		if v, err := r.ReadReply(); err != nil || v != "PONG" {
			t.Fatalf("reply %d = %v, %v", i, v, err)
		}
	}
	if max := s.tele.pipeDepth.Quantile(1.0); max > 4 {
		t.Fatalf("drained %d commands in one batch despite cap 4", max)
	}
}

// TestServeWriteBufEarlyFlush: replies larger than the write-buffer
// cap force early flushes instead of buffering the whole pipeline.
func TestServeWriteBufEarlyFlush(t *testing.T) {
	s := newTestServer(t)
	s.net.writeBufCap = 64
	r, w, _ := pipeClient(t, s)
	big := strings.Repeat("x", 200)
	w.WriteCommand([]byte("SET"), []byte("big"), []byte(big))
	for i := 0; i < 8; i++ {
		w.WriteCommand([]byte("GET"), []byte("big"))
	}
	w.Flush()
	if v, err := r.ReadReply(); err != nil || v != "OK" {
		t.Fatalf("SET reply = %v, %v", v, err)
	}
	for i := 0; i < 8; i++ {
		if v, err := r.ReadReply(); err != nil || string(v.([]byte)) != big {
			t.Fatalf("GET %d reply wrong: %v", i, err)
		}
	}
	if s.tele.earlyFlush.Load() == 0 {
		t.Fatal("no early flush despite tiny write buffer")
	}
}

// TestServerMaxConnsShed: connections beyond -maxconns receive one
// error reply and a close; tracked connections still work; a freed
// slot becomes available again.
func TestServerMaxConnsShed(t *testing.T) {
	s := newTestServer(t)
	s.net.maxConns = 1
	r1, w1, _ := pipeClient(t, s)

	// Second connection: the accept loop would refuse and shed it.
	c2, srv2 := net.Pipe()
	if s.track(srv2) {
		t.Fatal("track admitted connection over maxconns")
	}
	done := make(chan struct{})
	s.wg.Add(1) // shed goroutines are tracked like served connections
	go func() { s.shed(srv2); close(done) }()
	v, err := resp.NewReader(c2).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := v.(error); !ok || !strings.Contains(e.Error(), "max number of clients") {
		t.Fatalf("shed reply = %v", v)
	}
	<-done
	c2.Close()
	if s.tele.shedConns.Load() != 1 {
		t.Fatalf("shed_conns = %d", s.tele.shedConns.Load())
	}

	// The admitted connection still serves.
	w1.WriteCommand([]byte("PING"))
	w1.Flush()
	if v, err := r1.ReadReply(); err != nil || v != "PONG" {
		t.Fatalf("PING on admitted conn = %v, %v", v, err)
	}

	// Quitting frees the slot.
	w1.WriteCommand([]byte("QUIT"))
	w1.Flush()
	if v, err := r1.ReadReply(); err != nil || v != "OK" {
		t.Fatalf("QUIT = %v, %v", v, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.tele.activeConns.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection not untracked after QUIT")
		}
		time.Sleep(time.Millisecond)
	}
	c3, srv3 := net.Pipe()
	defer c3.Close()
	if !s.track(srv3) {
		t.Fatal("slot not freed after QUIT")
	}
	go s.serve(srv3)
}

// TestServerIdleTimeout: a client silent past -idle-timeout is
// disconnected.
func TestServerIdleTimeout(t *testing.T) {
	s := newTestServer(t)
	s.net.idleTimeout = 30 * time.Millisecond
	r, w, _ := pipeClient(t, s)
	w.WriteCommand([]byte("PING"))
	w.Flush()
	if v, err := r.ReadReply(); err != nil || v != "PONG" {
		t.Fatalf("PING = %v, %v", v, err)
	}
	// Stay silent; the server must close the connection.
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("idle connection not closed")
	}
}
