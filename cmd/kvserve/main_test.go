package main

import (
	"bytes"
	"strings"
	"testing"

	"addrkv"
	"addrkv/internal/resp"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Index:      addrkv.IndexChainHash,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &server{sys: sys}
}

// call dispatches a command and returns the decoded reply.
func call(t *testing.T, s *server, args ...string) any {
	t.Helper()
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	s.dispatch(w, ba)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := resp.NewReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerBasicCommands(t *testing.T) {
	s := newTestServer(t)

	if got := call(t, s, "PING"); got != "PONG" {
		t.Fatalf("PING = %v", got)
	}
	if got := call(t, s, "SET", "alpha", "one"); got != "OK" {
		t.Fatalf("SET = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); string(got.([]byte)) != "one" {
		t.Fatalf("GET = %v", got)
	}
	if got := call(t, s, "EXISTS", "alpha"); got.(int64) != 1 {
		t.Fatalf("EXISTS = %v", got)
	}
	if got := call(t, s, "GET", "missing"); got != nil {
		t.Fatalf("GET missing = %v", got)
	}
	if got := call(t, s, "DBSIZE"); got.(int64) != 1 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := call(t, s, "DEL", "alpha", "missing"); got.(int64) != 1 {
		t.Fatalf("DEL = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); got != nil {
		t.Fatal("deleted key visible")
	}
}

func TestServerInfoAndReset(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "cycles_per_op") {
		t.Fatalf("INFO missing stats:\n%s", info)
	}
	if got := call(t, s, "RESETSTATS"); got != "OK" {
		t.Fatalf("RESETSTATS = %v", got)
	}
	info = string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "ops:0") {
		t.Fatalf("stats not reset:\n%s", info)
	}
}

func TestServerErrors(t *testing.T) {
	s := newTestServer(t)
	if _, ok := call(t, s, "GET").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "SET", "k").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "WHATEVER").(error); !ok {
		t.Fatal("unknown command not reported")
	}
	if _, ok := call(t, s, "FLUSHALL").(error); !ok {
		t.Fatal("FLUSHALL should report unsupported")
	}
}

func TestServerQuit(t *testing.T) {
	s := newTestServer(t)
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	if quit := s.dispatch(w, [][]byte{[]byte("QUIT")}); !quit {
		t.Fatal("QUIT did not request close")
	}
	if quit := s.dispatch(w, [][]byte{[]byte("PING")}); quit {
		t.Fatal("PING requested close")
	}
}
