package main

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"addrkv"
	"addrkv/internal/resp"
)

func newTestServerShards(t *testing.T, shards int) *server {
	t.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Shards:     shards,
		Index:      addrkv.IndexChainHash,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sys)
}

func newTestServer(t *testing.T) *server { return newTestServerShards(t, 1) }

// call dispatches a command and returns the decoded reply.
func call(t *testing.T, s *server, args ...string) any {
	t.Helper()
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	s.dispatch(w, ba)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := resp.NewReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerBasicCommands(t *testing.T) {
	s := newTestServer(t)

	if got := call(t, s, "PING"); got != "PONG" {
		t.Fatalf("PING = %v", got)
	}
	if got := call(t, s, "SET", "alpha", "one"); got != "OK" {
		t.Fatalf("SET = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); string(got.([]byte)) != "one" {
		t.Fatalf("GET = %v", got)
	}
	if got := call(t, s, "EXISTS", "alpha"); got.(int64) != 1 {
		t.Fatalf("EXISTS = %v", got)
	}
	if got := call(t, s, "GET", "missing"); got != nil {
		t.Fatalf("GET missing = %v", got)
	}
	if got := call(t, s, "DBSIZE"); got.(int64) != 1 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := call(t, s, "DEL", "alpha", "missing"); got.(int64) != 1 {
		t.Fatalf("DEL = %v", got)
	}
	if got := call(t, s, "GET", "alpha"); got != nil {
		t.Fatal("deleted key visible")
	}
}

func TestServerInfoAndReset(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "cycles_per_op") {
		t.Fatalf("INFO missing stats:\n%s", info)
	}
	if !strings.Contains(info, "shards:1") || !strings.Contains(info, "# shard 0") {
		t.Fatalf("INFO missing shard sections:\n%s", info)
	}
	if got := call(t, s, "RESETSTATS"); got != "OK" {
		t.Fatalf("RESETSTATS = %v", got)
	}
	info = string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "\r\nops:0\r\n") {
		t.Fatalf("stats not reset:\n%s", info)
	}
}

// TestServerExistsCounted: EXISTS must count toward server_ops like
// GET/SET, and must be cheaper than a GET of the same key (it skips
// the value read and the value-copy reply).
func TestServerExistsCounted(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", strings.Repeat("v", 256))
	call(t, s, "RESETSTATS")
	call(t, s, "EXISTS", "k")
	call(t, s, "EXISTS", "nope")
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, "server_ops:2") {
		t.Fatalf("EXISTS not counted in server_ops:\n%s", info)
	}
	if !strings.Contains(info, "\r\nops:2\r\n") {
		t.Fatalf("EXISTS not counted as engine ops:\n%s", info)
	}

	existsRep := s.sys.Report()
	call(t, s, "RESETSTATS")
	call(t, s, "GET", "k")
	call(t, s, "GET", "nope")
	getRep := s.sys.Report()
	if existsRep.Cycles >= getRep.Cycles {
		t.Fatalf("EXISTS (%d cycles) not cheaper than GET (%d cycles)",
			existsRep.Cycles, getRep.Cycles)
	}
}

func TestServerFlushall(t *testing.T) {
	s := newTestServerShards(t, 2)
	call(t, s, "SET", "a", "1")
	call(t, s, "SET", "b", "2")
	if got := call(t, s, "DBSIZE"); got.(int64) != 2 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := call(t, s, "FLUSHALL"); got != "OK" {
		t.Fatalf("FLUSHALL = %v", got)
	}
	if got := call(t, s, "DBSIZE"); got.(int64) != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %v", got)
	}
	if got := call(t, s, "GET", "a"); got != nil {
		t.Fatalf("flushed key visible: %v", got)
	}
	// Server stays usable.
	if got := call(t, s, "SET", "c", "3"); got != "OK" {
		t.Fatalf("SET after FLUSHALL = %v", got)
	}
	if got := call(t, s, "GET", "c"); string(got.([]byte)) != "3" {
		t.Fatalf("GET after FLUSHALL = %v", got)
	}
}

func TestServerErrors(t *testing.T) {
	s := newTestServer(t)
	if _, ok := call(t, s, "GET").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "SET", "k").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "EXISTS").(error); !ok {
		t.Fatal("arity error not reported")
	}
	if _, ok := call(t, s, "WHATEVER").(error); !ok {
		t.Fatal("unknown command not reported")
	}
}

func TestServerQuit(t *testing.T) {
	s := newTestServer(t)
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	if quit := s.dispatch(w, [][]byte{[]byte("QUIT")}); !quit {
		t.Fatal("QUIT did not request close")
	}
	if quit := s.dispatch(w, [][]byte{[]byte("PING")}); quit {
		t.Fatal("PING requested close")
	}
}

// TestServerConcurrentDispatch hammers dispatch from many goroutines
// on a 4-shard server (run under -race in CI) and checks that the
// aggregate op counts come out exact: per-shard locking must lose no
// updates, and concurrent INFO/DBSIZE snapshots must not crash.
func TestServerConcurrentDispatch(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 400
	)
	s := newTestServerShards(t, 4)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf bytes.Buffer
			w := resp.NewWriter(&buf)
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i)
				s.dispatch(w, [][]byte{[]byte("SET"), []byte(key), []byte("v")})
				s.dispatch(w, [][]byte{[]byte("GET"), []byte(key)})
				s.dispatch(w, [][]byte{[]byte("EXISTS"), []byte(key)})
				if i%64 == 0 {
					s.dispatch(w, [][]byte{[]byte("INFO")})
					s.dispatch(w, [][]byte{[]byte("DBSIZE")})
				}
				buf.Reset()
			}
		}(g)
	}
	wg.Wait()

	if got, want := s.opsSinceMark.Load(), uint64(3*goroutines*opsEach); got != want {
		t.Fatalf("server_ops = %d, want %d", got, want)
	}
	rep := s.sys.Report()
	if got, want := rep.Ops, uint64(3*goroutines*opsEach); got != want {
		t.Fatalf("aggregate engine ops = %d, want %d", got, want)
	}
	if got, want := s.sys.Len(), goroutines*opsEach; got != want {
		t.Fatalf("DBSIZE = %d, want %d", got, want)
	}
	var perShard uint64
	for _, st := range rep.PerShard {
		perShard += st.Ops
	}
	if perShard != rep.Ops {
		t.Fatalf("per-shard ops sum %d != aggregate %d", perShard, rep.Ops)
	}
}
