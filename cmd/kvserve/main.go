// Command kvserve runs a Redis-protocol key-value server backed by the
// simulated addrkv engine — the zero-to-running demo of the paper's
// setup (Figure 1 measures Redis over a Unix domain socket with
// pipelined requests), scaled out across -shards simulated machines.
//
// Each shard is an independent simulated core (own caches, TLBs, STB,
// and an STLT sized at keys/shards); keys route to shards by a stable
// hash, so concurrent clients touching different shards proceed in
// parallel with only per-shard locking.
//
// The connection path is pipelined: each serve loop drains every
// command a client has in flight (up to -pipeline), dispatches them
// all, and flushes the replies in one write — the amortization that
// makes Figure 1's pipelined Redis setup fast, applied to the real
// network front-end. Multi-key commands (MGET/MSET/DEL) group their
// keys by home shard and execute one locked batch per shard, charging
// exactly the modeled cycles of N sequential ops. Backpressure knobs:
// -pipeline bounds in-flight commands per drain, -writebuf caps
// buffered reply bytes before an early flush, -idle-timeout reaps
// silent connections, and -maxconns sheds new clients gracefully with
// an error reply.
//
// Commands: PING, ECHO, GET, SET, DEL, EXISTS, MGET, MSET, DBSIZE,
// SCAN cursor [MATCH pat] [COUNT n], RANGE start end [limit], EXPIRE,
// PEXPIRE, TTL, PTTL, INFO, RESETSTATS, FLUSHALL, SLOWLOG
// GET/RESET/LEN, MONITOR, TRACE ON/OFF/STATUS/DUMP, BGSAVE, LASTSAVE,
// QUIT, and in cluster mode CLUSTER
// SLOTS/INFO/HEALTH/HEARTBEAT/MIGRATE plus ASKING. SCAN MATCH filters
// keys server-side with a Redis-style glob after the cursor decodes;
// COUNT bounds keys scanned, not keys returned.
//
// SCAN and RANGE need an ordered index (-index rbtree or btree); on a
// hash index they answer a typed error instead of a silent empty
// result. Cursors are stateless ("0" starts, "k"+hex resumes strictly
// after the last key), so a cursor walk under concurrent writes never
// duplicates a key and covers every key present for the whole walk.
// EXPIRE/PEXPIRE arm per-key TTLs: expired keys are reaped lazily on
// access plus by an active sweep (-sweep-interval for -dispatch mutex;
// the worker runtime sweeps off its own drain bursts). -maxmemory caps
// each shard's record bytes, evicting by the STLT's in-set LFU rule
// once a SET crosses the cap.
//
// With -cluster-nodes the server joins a hash-slot cluster: keys map
// to 16384 slots, each node owns a share and redirects the rest with
// -MOVED/-ASK, and CLUSTER MIGRATE moves a live slot between nodes
// while both keep serving it (see cluster.go).
//
// With -aof every mutation is appended to a per-shard append-only log
// (group-committed at the dispatch mode's batch boundary, fsynced per
// -aof-fsync) and replayed on startup; BGSAVE — or a positive
// -snapshot-interval — compacts each shard's log into a snapshot
// generation in the background while traffic continues.
// INFO reports the *simulated* cycle statistics (aggregate plus a
// section per shard) alongside real wall-clock latency percentiles and
// the networking/pipelining counters, so a client can measure the
// modeled speedup while talking real RESP over a real socket. With
// -metrics-addr the same numbers are served as Prometheus text on
// /metrics (plus /snapshot.json and net/http/pprof). SIGINT/SIGTERM
// stop the listener, drain in-flight connections, and remove the Unix
// socket file.
//
//	kvserve -mode stlt -keys 100000 -shards 4 -sock /tmp/addrkv.sock
//	kvserve -mode baseline -addr 127.0.0.1:6380 -metrics-addr 127.0.0.1:9090 -maxconns 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"addrkv"
	"addrkv/internal/resp"
	"addrkv/internal/shard"
	"addrkv/internal/telemetry"
	"addrkv/internal/trace"
)

// drainTimeout bounds how long shutdown waits for in-flight
// connections before force-closing them.
const drainTimeout = 5 * time.Second

// defaultSlowlogCap is the default -slowlog capacity.
const defaultSlowlogCap = 128

// Networking defaults: how many pipelined commands one drain may pick
// up, and how many reply bytes may sit unflushed before an early
// flush relieves the write buffer.
const (
	defaultMaxPipeline = 1024
	defaultWriteBufCap = 256 << 10
)

// defaultScanCount is SCAN's page size without an explicit COUNT.
const defaultScanCount = 10

// defaultSweepLimit is how many armed deadlines each shard samples per
// active-expiry sweep when -sweep-limit is unset.
const defaultSweepLimit = 20

// netConfig bundles the connection-path backpressure knobs.
type netConfig struct {
	// maxPipeline caps commands drained (and thus replies buffered)
	// per serve-loop iteration.
	maxPipeline int
	// writeBufCap flushes the reply writer early once this many bytes
	// are buffered, bounding per-connection memory under deep
	// pipelines of large values.
	writeBufCap int
	// idleTimeout, when positive, is the per-connection read deadline:
	// a client silent for longer is disconnected.
	idleTimeout time.Duration
	// maxConns, when positive, sheds connections beyond this count
	// with an error reply instead of serving them.
	maxConns int
}

type server struct {
	sys          *addrkv.System
	tele         *serverTele
	net          netConfig
	opsSinceMark atomic.Uint64 // GET/SET/EXISTS dispatched since RESETSTATS

	// workers selects the per-shard worker runtime (-dispatch worker):
	// single-key commands are enqueued on their home shard's request
	// ring and completed by the shard's owning goroutine. queueCap is
	// the per-shard ring capacity.
	workers  bool
	queueCap int

	// statsMu orders RESETSTATS/FLUSHALL against INFO and snapshot
	// reads: a reset holds the write lock across every counter it
	// clears, so a concurrent INFO never sees a half-reset mix (engine
	// stats zeroed but server_ops still counting, or vice versa).
	// Data-path commands take no lock here — they only touch the
	// engine's own per-shard locks and lock-free telemetry.
	statsMu sync.RWMutex

	// persist is the durability runtime (nil without -aof).
	persist *persistState

	// Active-expiry sweeper for -dispatch mutex (the worker runtime
	// sweeps off its own drain bursts instead — see SetSweepLimit).
	// With -expire-cycle-budget the ticker runs in BOTH dispatch modes
	// and these counters feed the "# expiry" INFO section.
	sweepStop       chan struct{}
	sweepDone       chan struct{}
	sweepBudget     int           // -expire-cycle-budget (0 = per-mode defaults)
	sweepCycles     atomic.Uint64 // completed sweep cycles
	sweepReaped     atomic.Uint64 // keys reaped by sweeps, lifetime
	sweepLastReaped atomic.Uint64 // keys reaped by the most recent cycle

	// clus is the cluster runtime (nil in standalone mode — every
	// cluster hook checks it, so standalone behavior is untouched).
	clus *clusterState

	// loop is the event-loop networking front-end (nil without
	// -netloop; the accept path then serves goroutine-per-connection).
	loop *loopState

	// Span tracing: the sampling tracer shared with every shard engine,
	// the flight-recorder dump sink (nil without -trace-dir), and a
	// connection sequence so spans name the connection they came from.
	tracer   *trace.Tracer
	dumper   *trace.Dumper
	traceDir string
	connSeq  atomic.Int64

	closing atomic.Bool
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

func newServer(sys *addrkv.System, slowlogCap int) *server {
	s := &server{
		sys: sys,
		net: netConfig{
			maxPipeline: defaultMaxPipeline,
			writeBufCap: defaultWriteBufCap,
		},
		tele:  newServerTele(sys, slowlogCap),
		conns: map[net.Conn]struct{}{},
	}
	s.initTrace(traceConfig{}) // sampling off until TRACE ON or -trace-sample
	s.tele.registerTraceMetrics(s)
	return s
}

func main() {
	var (
		mode    = flag.String("mode", "stlt", "baseline|stlt|slb|stlt-sw|stlt-va")
		index   = flag.String("index", "chainhash", "chainhash|densehash|rbtree|btree")
		keys    = flag.Int("keys", 100_000, "index/STLT sizing hint (and preload count with -preload)")
		shards  = flag.Int("shards", 1, "number of simulated machines the key space is hashed across")
		pre     = flag.Bool("preload", false, "preload -keys YCSB records before serving")
		vsize   = flag.Int("vsize", 64, "preload value size")
		sock    = flag.String("sock", "", "Unix socket path (the paper's transport)")
		addr    = flag.String("addr", "", "TCP address, e.g. 127.0.0.1:6380")
		maddr   = flag.String("metrics-addr", "", "HTTP address for /metrics, /snapshot.json and /debug/pprof, e.g. 127.0.0.1:9090")
		slowCap = flag.Int("slowlog", defaultSlowlogCap, "how many slowest commands SLOWLOG keeps")

		maxPipe  = flag.Int("pipeline", defaultMaxPipeline, "max pipelined commands drained per read batch")
		writeBuf = flag.Int("writebuf", defaultWriteBufCap, "reply bytes buffered per connection before an early flush")
		idleTO   = flag.Duration("idle-timeout", 0, "disconnect clients silent for this long (0 = never)")
		maxConns = flag.Int("maxconns", 0, "max concurrent client connections; extras are shed with an error (0 = unlimited)")

		netloop   = flag.Bool("netloop", false, "event-loop front-end: reader shards multiplex connections instead of one goroutine per connection")
		readers   = flag.Int("readers", 0, "reader shards for -netloop (0 = GOMAXPROCS/2, capped at 8)")
		netPoller = flag.String("netloop-poller", "auto", "netloop poller: auto|epoll|portable")

		dispatch = flag.String("dispatch", "worker", "worker: per-shard owning goroutines drain request rings; mutex: lock-per-op dispatch")
		queueCap = flag.Int("queue", 0, "per-shard request ring capacity for -dispatch worker (0 = default, rounded up to a power of two)")

		maxMem     = flag.Int64("maxmemory", 0, "per-shard record-byte cap; past it SETs evict keys by the STLT's in-set LFU rule (0 = unlimited)")
		fastHash   = flag.String("fast-hash", "", "STLT/SLB fast-path hash: sipHash|murmurHash|xxh64|djb2|xxh3 (default xxh3)")
		sweepEvery = flag.Duration("sweep-interval", 100*time.Millisecond, "active TTL sweep period (-dispatch mutex; worker mode sweeps on drain bursts; 0 = lazy expiry only)")
		sweepLimit = flag.Int("sweep-limit", 0, "armed deadlines sampled per shard per sweep (0 = default)")
		expBudget  = flag.Int("expire-cycle-budget", 0, "total armed deadlines sampled per sweep cycle across ALL shards; >0 splits the budget over shards and runs the ticker sweeper in both dispatch modes (0 = per-mode defaults)")

		aof       = flag.Bool("aof", false, "enable the per-shard append-only log (durability)")
		aofDir    = flag.String("aof-dir", "aof", "directory for AOF segments and snapshots")
		aofFsync  = flag.String("aof-fsync", "everysec", "fsync policy: always|everysec|no")
		snapEvery = flag.Duration("snapshot-interval", 0, "run a compacting BGSAVE this often (0 = only on demand)")

		clusterNodes  = flag.String("cluster-nodes", "", "join a cluster: comma-separated clientAddr@busAddr per node, ordered by node index")
		clusterSelf   = flag.Int("cluster-self", 0, "this node's index into -cluster-nodes")
		clusterSlots  = flag.String("cluster-slots", "", "initial slot assignment overrides, e.g. '0:0-8191,1:8192-16383' (default: even split)")
		clusterRewarm = flag.Bool("cluster-rewarm", true, "re-warm the STLT for records arriving via slot migration")
		clusterBatch  = flag.Int("cluster-batch", 0, "keys per migration batch (0 = default)")
		hbEvery       = flag.Duration("heartbeat-interval", defaultHeartbeatEvery, "cluster heartbeat period H (0 = heartbeats off)")
		hbSuspect     = flag.Int("heartbeat-suspect", 0, "missed heartbeat intervals before a peer is suspect (0 = default)")
		hbDown        = flag.Int("heartbeat-down", 0, "missed heartbeat intervals K before a peer is down (0 = default)")

		traceSample = flag.Uint64("trace-sample", 0, "trace 1 in N single-key ops (1 = every op, 0 = off; TRACE ON/OFF adjusts at runtime)")
		traceDir    = flag.String("trace-dir", "", "directory for flight-recorder dump bundles (TRACE DUMP, anomaly auto-dumps, final dump on shutdown)")
		traceRing   = flag.Int("trace-ring", defaultTraceRing, "completed traces the flight recorder keeps per shard")
		traceSlow   = flag.Uint64("trace-anomaly-cycles", 0, "auto-dump when a traced op exceeds this many modeled cycles (0 = off)")
	)
	flag.Parse()

	if *maxPipe < 1 || *writeBuf < 1 {
		fmt.Fprintln(os.Stderr, "kvserve: -pipeline and -writebuf must be >= 1")
		os.Exit(2)
	}

	if (*sock == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "kvserve: exactly one of -sock or -addr is required")
		os.Exit(2)
	}
	if *dispatch != "worker" && *dispatch != "mutex" {
		fmt.Fprintln(os.Stderr, "kvserve: -dispatch must be worker or mutex")
		os.Exit(2)
	}
	if *clusterNodes != "" {
		// Cluster nodes advertise TCP client addresses in the slot map,
		// and slot migration would bypass the AOF (migrated-away keys
		// would replay on restart) — keep the two features apart.
		if *addr == "" {
			fmt.Fprintln(os.Stderr, "kvserve: cluster mode requires -addr (peers redirect clients to TCP addresses)")
			os.Exit(2)
		}
		if *aof {
			fmt.Fprintln(os.Stderr, "kvserve: cluster mode does not compose with -aof yet")
			os.Exit(2)
		}
	}

	sys, err := addrkv.New(addrkv.Options{
		Keys:         *keys,
		Shards:       *shards,
		Index:        addrkv.IndexKind(*index),
		Mode:         addrkv.Mode(*mode),
		RedisLayer:   true,
		MaxMemory:    *maxMem,
		FastHashName: *fastHash,
	})
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	// Recovery must run against fresh engines, so durability comes up
	// before any preload; a preload on top of recovered data would
	// double-apply, so it only runs into an empty store.
	var ps *persistState
	if *aof {
		ps, err = openPersistence(sys, persistOpts{
			dir:      *aofDir,
			fsync:    *aofFsync,
			interval: *snapEvery,
			shards:   *shards,
		})
		if err != nil {
			log.Fatalf("kvserve: %v", err)
		}
	}
	if *pre {
		if ps != nil && ps.recovered.Ops() > 0 {
			log.Printf("kvserve: skipping -preload, %d keys recovered from %s", sys.Len(), *aofDir)
		} else {
			log.Printf("preloading %d keys (%dB values)...", *keys, *vsize)
			sys.Load(*keys, *vsize)
		}
	}
	s := newServer(sys, *slowCap)
	s.persist = ps
	if ps != nil {
		s.tele.registerPersistMetrics(s)
		s.startSnapshotter()
	}
	s.net = netConfig{
		maxPipeline: *maxPipe,
		writeBufCap: *writeBuf,
		idleTimeout: *idleTO,
		maxConns:    *maxConns,
	}
	s.initTrace(traceConfig{
		sampleEvery: *traceSample,
		dir:         *traceDir,
		ringCap:     *traceRing,
		slowCycles:  *traceSlow,
	})
	if *traceSample > 0 {
		log.Printf("kvserve: tracing 1 in %d ops (ring %d/shard, dir %q)",
			*traceSample, *traceRing, *traceDir)
	}
	if *clusterNodes != "" {
		nodes, err := parseClusterNodes(*clusterNodes)
		if err != nil {
			log.Fatalf("kvserve: %v", err)
		}
		if err := s.setupCluster(nodes, *clusterSelf, clusterOpts{
			assign:    *clusterSlots,
			rewarm:    *clusterRewarm,
			batch:     *clusterBatch,
			hbEvery:   *hbEvery,
			hbSuspect: *hbSuspect,
			hbDown:    *hbDown,
		}); err != nil {
			log.Fatalf("kvserve: %v", err)
		}
		log.Printf("kvserve: cluster node %d/%d, bus on %s, owning %d slots, heartbeat every %v",
			*clusterSelf, len(nodes), s.clus.bus.Addr(), s.clus.node.OwnedSlots(), *hbEvery)
	}
	sweepLim := *sweepLimit
	if sweepLim <= 0 {
		sweepLim = defaultSweepLimit
	}
	if *expBudget > 0 {
		// A cycle budget overrides -sweep-limit: split it evenly across
		// shards (ceiling, so a tiny budget still samples something) and
		// drive the ticker in BOTH dispatch modes. Worker drain-burst
		// sweeps stay off so the budget is the only active-expiry source
		// and each cycle's cost is bounded by the budget alone.
		sweepLim = (*expBudget + *shards - 1) / *shards
		s.sweepBudget = *expBudget
	}
	if *dispatch == "worker" {
		if *sweepEvery > 0 && *expBudget <= 0 {
			// Must land before StartWorkers: workers read the limit once.
			sys.Cluster().SetSweepLimit(sweepLim)
		}
		if err := s.startWorkers(*queueCap); err != nil {
			log.Fatalf("kvserve: %v", err)
		}
		log.Printf("kvserve: worker runtime up (%d shard workers, ring cap %d)",
			*shards, s.queueCap)
		if *sweepEvery > 0 && *expBudget > 0 {
			s.startSweeper(*sweepEvery, sweepLim)
		}
	} else if *sweepEvery > 0 {
		s.startSweeper(*sweepEvery, sweepLim)
	}

	if *netloop {
		if err := s.startNetloop(*readers, *netPoller); err != nil {
			log.Fatalf("kvserve: %v", err)
		}
		log.Printf("kvserve: netloop front-end up (%d reader shard(s), %s poller)",
			len(s.loop.shards), s.loop.poller)
	}

	if *maddr != "" {
		msrv, bound, err := startMetricsServer(*maddr, s)
		if err != nil {
			log.Fatalf("kvserve: metrics listener: %v", err)
		}
		defer msrv.Close()
		log.Printf("kvserve: metrics on http://%s/metrics (pprof on /debug/pprof/)", bound)
	}

	var ln net.Listener
	if *sock != "" {
		_ = os.Remove(*sock)
		ln, err = net.Listen("unix", *sock)
	} else {
		ln, err = net.Listen("tcp", *addr)
	}
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	log.Printf("kvserve: %s engine on %s, %d shard(s), serving %s",
		*mode, *index, *shards, ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("kvserve: %v — stopping accept, draining connections", sig)
		s.closing.Store(true)
		ln.Close()
		s.nudgeConns()  // wake readers blocked on idle connections
		s.wakeNetloop() // wake reader shards parked in their pollers
	}()

	s.acceptLoop(ln)

	s.drain()
	s.stopNetloop()      // loops closed their conns during drain; join them
	s.stopSweeper()      // before the logs close: sweeps append expiry records
	s.stopWorkers()      // after drain: no connection is producing anymore
	s.closePersistence() // after workers: nothing appends; sync + close the logs
	s.closeCluster()     // last: peers may still be mid-call into the bus while draining
	s.finalTraceDump()
	if *sock != "" {
		_ = os.Remove(*sock)
	}
	log.Printf("kvserve: shutdown complete")
}

// acceptLoop accepts until the listener closes, shedding past the
// -maxconns ceiling and handing tracked connections to the event loop
// (-netloop) or a per-connection serve goroutine.
func (s *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("accept: %v", err)
			time.Sleep(50 * time.Millisecond) // don't spin on persistent errors
			continue
		}
		if !s.track(conn) {
			// Shed goroutines count toward the shutdown drain too: a
			// SIGTERM must not leak a pending shed write.
			s.wg.Add(1)
			go s.shed(conn)
			continue
		}
		if s.loop != nil {
			s.loop.add(conn)
		} else {
			go s.serve(conn)
		}
	}
}

// track registers a connection, refusing (false) when the -maxconns
// ceiling is reached; the caller then sheds it gracefully.
func (s *server) track(conn net.Conn) bool {
	s.connMu.Lock()
	if s.net.maxConns > 0 && len(s.conns) >= s.net.maxConns {
		s.connMu.Unlock()
		return false
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	s.wg.Add(1)
	s.tele.activeConns.Add(1)
	return true
}

func (s *server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.tele.activeConns.Add(-1)
	s.wg.Done()
}

// shed refuses an over-limit connection the way Redis does: one error
// reply, then close. The client sees why instead of a silent RST.
// Callers add the goroutine to s.wg so shutdown waits for the reply.
func (s *server) shed(conn net.Conn) {
	defer s.wg.Done()
	s.tele.shedConns.Inc()
	s.tracer.NoteAnomaly("maxconns_shed")
	w := resp.NewWriter(conn)
	_ = w.WriteError("ERR max number of clients reached")
	_ = w.Flush()
	_ = conn.Close()
}

// nudgeConns sets an immediate read deadline on every open connection
// so serve loops blocked in ReadCommand wake up and observe closing.
func (s *server) nudgeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
}

// drain waits for in-flight connections to finish their current
// command, force-closing stragglers after drainTimeout.
func (s *server) drain() {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(drainTimeout):
		s.connMu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		log.Printf("kvserve: drain timeout, force-closed %d connection(s)", n)
		<-done
	}
}

// startSweeper runs the ticker-driven active-expiry loop: every
// period, each shard samples up to limit armed deadlines and reaps the
// dead ones (Redis's activeExpireCycle). Mutex dispatch always uses
// it; worker dispatch uses it only under -expire-cycle-budget, where
// the ticker replaces the drain-burst sweeps (SweepExpired takes each
// shard's own mutex, so the two dispatch modes need no extra locking).
func (s *server) startSweeper(every time.Duration, limit int) {
	s.sweepStop = make(chan struct{})
	s.sweepDone = make(chan struct{})
	go func() {
		defer close(s.sweepDone)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n := s.sys.SweepExpired(limit)
				s.sweepCycles.Add(1)
				s.sweepReaped.Add(uint64(n))
				s.sweepLastReaped.Store(uint64(n))
			case <-s.sweepStop:
				return
			}
		}
	}()
}

// stopSweeper stops the active-expiry loop and waits for an in-flight
// sweep to finish (it may be appending to the AOF).
func (s *server) stopSweeper() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
}

// serve runs one connection's pipelined loop: block for the first
// command, drain every further command the client already sent (up to
// the pipeline cap), dispatch them all, and flush the replies in one
// write. A whole N-deep pipeline therefore costs one read burst and
// one flush instead of N of each — the per-request amortization the
// batching literature (LaKe, the SmartNIC KV offloads) attributes
// most of its networking win to. The write-buffer cap bounds reply
// memory: past it the writer flushes early instead of buffering an
// entire deep pipeline of bulk values.
func (s *server) serve(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	cs := &connState{id: s.connSeq.Add(1)}
	// Annotate the connection as a runtime/trace task (and each
	// pipeline drain as a region below) so `go tool trace` on a pprof
	// capture shows per-connection lanes with one slice per batch.
	ctx, task := rtrace.NewTask(context.Background(), "kvserve.conn")
	defer task.End()
	src := io.Reader(conn)
	if s.net.idleTimeout > 0 {
		// Re-arm the read deadline before every read, not once per
		// burst: "idle" means no BYTES for the timeout, so a client
		// trickling a large pipelined burst slower than the timeout is
		// never reaped mid-burst (see TestIdleTimeoutMidBurst).
		src = &idleConn{conn: conn, s: s}
	}
	r := resp.NewReader(src)
	w := resp.NewWriter(conn)
	for {
		// The arena-reuse read path: everything cmds references is valid
		// until the next ReadPipelineReuse call, i.e. across this whole
		// burst (including the pending-window flush below).
		cmds, rerr := r.ReadPipelineReuse(s.net.maxPipeline)
		reg := rtrace.StartRegion(ctx, "pipeline.batch")
		quit, monitor, werr := s.runBurstCmds(w, cs, cmds)
		if s.workers && werr == nil {
			werr = s.flushPending(w, cs)
		}
		reg.End()
		if werr != nil {
			return
		}
		if err := w.Flush(); err != nil || quit || s.closing.Load() {
			return
		}
		if monitor {
			s.monitorLoop(r, w)
			return
		}
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) && !isTimeout(rerr) {
				log.Printf("client error: %v", rerr)
			}
			return
		}
	}
}

// runBurstCmds dispatches one parsed pipeline burst — the dispatch
// core shared verbatim by the goroutine path (serve) and the event
// loop (processReady), which is what makes the two front-ends
// bit-for-bit identical in replies and modeled stats. Worker mode
// classifies each command: async single-key ops enqueue on their
// shard rings; anything else is an ordering barrier that flushes the
// pending window first. quit/monitor report the command that
// requested them (later commands in the burst are dropped, exactly
// like the blocking loop's break). The caller owns the trailing
// flushPending + Flush.
func (s *server) runBurstCmds(w *resp.Writer, cs *connState, cmds [][][]byte) (quit, monitor bool, werr error) {
	if len(cmds) > 0 {
		s.tele.pipeBatches.Inc()
		s.tele.pipeCmds.Add(uint64(len(cmds)))
		s.tele.pipeDepth.Observe(uint64(len(cmds)))
	}
	for _, args := range cmds {
		if s.workers {
			if kind, cmd, ok := asyncKind(args); ok {
				s.enqueueAsync(cs, kind, cmd, args)
				continue
			}
			// A command the workers cannot serve is an ordering
			// barrier: earlier async replies must be written first.
			if werr = s.flushPending(w, cs); werr != nil {
				return
			}
		}
		quit, monitor = s.dispatch(w, args, cs)
		if quit || monitor {
			return
		}
		if w.Buffered() >= s.net.writeBufCap {
			s.tele.earlyFlush.Inc()
			if werr = w.Flush(); werr != nil {
				return
			}
		}
	}
	return
}

// idleConn arms the -idle-timeout read deadline before every
// underlying read. During shutdown the immediate deadline nudgeConns
// set must win, so the re-arm is undone when closing is observed (the
// check runs AFTER the re-arm: either this read sees the immediate
// deadline, or nudgeConns runs later and sets it itself).
type idleConn struct {
	conn net.Conn
	s    *server
}

func (ic *idleConn) Read(p []byte) (int, error) {
	_ = ic.conn.SetReadDeadline(time.Now().Add(ic.s.net.idleTimeout))
	if ic.s.closing.Load() {
		_ = ic.conn.SetReadDeadline(time.Now())
	}
	return ic.conn.Read(p)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// connState is the per-connection dispatch state: the connection's
// identity for span attribution plus its local trace-sampling counter.
// Each connection's serve loop is one goroutine, so the counter needs
// no synchronization — sampling 1-in-N per connection instead of
// globally keeps the untraced fast path free of shared-cache-line
// writes at high op rates.
type connState struct {
	id  int64
	ops uint64

	// netloop marks connections served by the event-loop front-end;
	// reader is the owning reader shard (sampled spans stamp it on an
	// EvNetRead event so traces attribute ingress).
	netloop bool
	reader  int

	// asking is the one-shot ASKING flag (cluster mode): the next
	// command may bypass the op gate if its slot is importing here.
	asking bool

	// Worker-dispatch state: a slab of reusable request slots (pointer
	// slice — addresses stay stable while it grows, and each slot's Val
	// buffer stays warm) and the pending window of enqueued commands
	// awaiting completion, both reset by flushPending.
	reqs []*shard.Req
	used int
	pend []pending
}

// dispatch executes one command and records its telemetry: wall-clock
// latency, per-command counters, the engine's per-op (or per-batch)
// outcome — shard, modeled cycles, addressing-path result — a slowlog
// offer, and — when a MONITOR client is attached — a feed line. It
// takes no global lock on the data path: System's *O methods lock only
// the key's home shard, and all telemetry writes are atomic.
func (s *server) dispatch(w *resp.Writer, args [][]byte, cs *connState) (quit, monitor bool) {
	start := time.Now()
	cmd := strings.ToLower(string(args[0]))
	oc := addrkv.OpOutcome{Shard: -1}
	var bo addrkv.BatchOutcome
	if s.clus != nil && cmd != "asking" {
		oc.Bypass = s.clusterConsumeAsking(cs, args)
	}
	// Span lifecycle for sampled single-key ops: dispatch here, the
	// cluster anchors the cycle base and emits shard.lock/engine-level
	// events while the op runs under its shard lock (via oc.Trace), and
	// reply.flush + Finish close the timeline once the reply is
	// buffered. The sampling decision uses the connection's own counter
	// against the shared rate, so an unsampled op costs one atomic load
	// and never writes a shared cache line.
	var sp *trace.Op
	if traceSpanFor(cmd, len(args)) {
		if every := s.tracer.Sample(); every != 0 {
			cs.ops++
			if cs.ops%every == 0 {
				sp = s.tracer.BeginSampled(cmd, args[1])
				sp.Conn = cs.id
				if cs.netloop {
					sp.EventRel(trace.EvNetRead, 0, int64(cs.reader), 0, 0)
				}
				sp.EventRel(trace.EvDispatch, 0, 0, 0, 0)
				oc.Trace = sp
			}
		}
	}
	quit, monitor, isErr := s.execute(w, cmd, args, &oc, &bo, cs)
	if sp != nil {
		sp.EventRel(trace.EvReplyFlush, sp.Cycles, 0, 0, 0)
		s.tracer.Finish(sp, oc.Shard, oc.FastHit, oc.Missed)
	}
	dur := time.Since(start)
	var ocp *addrkv.OpOutcome
	var bop *addrkv.BatchOutcome
	switch {
	case len(bo.PerShard) > 0:
		oc = bo.Merged()
		ocp, bop = &oc, &bo
	case oc.Shard >= 0:
		ocp = &oc
	}
	s.tele.observeCmd(cmd, args, ocp, bop, dur, isErr)
	if s.tele.feed.Active() {
		s.tele.feed.Publish(monitorLine(args, oc.Shard))
	}
	return quit, monitor
}

// execute runs one command's switch arm. Single-key commands fill oc
// (oc.Shard stays -1 for commands that never reach an engine);
// multi-key commands (MGET/MSET/DEL) fill bo with one exact probe
// delta per shard touched. PING and ECHO are pure protocol fast
// paths: no engine, no keys, a reply straight into the write buffer.
// In cluster mode an op the shard gate denied (slot not served here)
// is rewritten into its redirect instead of a normal reply.
func (s *server) execute(w *resp.Writer, cmd string, args [][]byte, oc *addrkv.OpOutcome, bo *addrkv.BatchOutcome, cs *connState) (quit, monitor, isErr bool) {
	fail := func(msg string) (bool, bool, bool) {
		w.WriteError(msg)
		return false, false, true
	}
	switch cmd {
	case "ping":
		w.WriteSimple("PONG")
	case "echo":
		if len(args) != 2 {
			return fail("ERR wrong number of arguments for 'echo'")
		}
		w.WriteBulk(args[1])
	case "quit":
		w.WriteSimple("OK")
		return true, false, false
	case "get":
		if len(args) != 2 {
			return fail("ERR wrong number of arguments for 'get'")
		}
		s.opsSinceMark.Add(1)
		v, ok := s.sys.GetO(args[1], oc)
		if oc.Denied {
			return s.clusterRedirect(w, args[1])
		}
		if ok {
			w.WriteBulk(v)
		} else {
			w.WriteBulk(nil)
		}
	case "set":
		if len(args) != 3 {
			return fail("ERR wrong number of arguments for 'set'")
		}
		s.opsSinceMark.Add(1)
		s.sys.SetO(args[1], args[2], oc)
		if oc.Denied {
			return s.clusterRedirect(w, args[1])
		}
		w.WriteSimple("OK")
	case "del":
		if len(args) < 2 {
			return fail("ERR wrong number of arguments for 'del'")
		}
		s.opsSinceMark.Add(uint64(len(args) - 1))
		if len(args) == 2 {
			// Single-key DEL takes the per-op path so it fills oc (and
			// carries a span when sampled) instead of a one-shard batch.
			deleted := s.sys.DeleteO(args[1], oc)
			if oc.Denied {
				return s.clusterRedirect(w, args[1])
			}
			if deleted {
				w.WriteInt(1)
			} else {
				w.WriteInt(0)
			}
			break
		}
		if s.clus != nil && s.clusterBatchCheck(w, args[1:]) {
			return false, false, true
		}
		n := s.sys.DeleteBatchO(args[1:], bo)
		if bo.Denied {
			return s.clusterTryAgain(w)
		}
		w.WriteInt(int64(n))
	case "mget":
		if len(args) < 2 {
			return fail("ERR wrong number of arguments for 'mget'")
		}
		if s.clus != nil && s.clusterBatchCheck(w, args[1:]) {
			return false, false, true
		}
		s.opsSinceMark.Add(uint64(len(args) - 1))
		vals, oks := s.sys.GetBatchO(args[1:], bo)
		if bo.Denied {
			return s.clusterTryAgain(w)
		}
		for i := range vals {
			if !oks[i] {
				vals[i] = nil // null bulk, matching single-key GET misses
			}
		}
		w.WriteBulkArray(vals)
	case "mset":
		if len(args) < 3 || len(args)%2 != 1 {
			return fail("ERR wrong number of arguments for 'mset'")
		}
		n := (len(args) - 1) / 2
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i], vals[i] = args[1+2*i], args[2+2*i]
		}
		if s.clus != nil && s.clusterBatchCheck(w, keys) {
			return false, false, true
		}
		s.opsSinceMark.Add(uint64(n))
		s.sys.SetBatchO(keys, vals, bo)
		if bo.Denied {
			return s.clusterTryAgain(w)
		}
		w.WriteSimple("OK")
	case "exists":
		if len(args) != 2 {
			return fail("ERR wrong number of arguments for 'exists'")
		}
		s.opsSinceMark.Add(1)
		present := s.sys.ExistsO(args[1], oc)
		if oc.Denied {
			return s.clusterRedirect(w, args[1])
		}
		if present {
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "scan":
		// SCAN cursor [MATCH pat] [COUNT n]: one stateless page of an
		// ordered cursor walk. MATCH filters server-side after the page
		// is scanned — COUNT bounds keys SCANNED, not keys returned, and
		// the continuation cursor follows the last scanned key so a page
		// of non-matching keys still makes progress. Worker mode runs it
		// as an ordering barrier (not an async kind), so pipelined
		// replies stay in command order.
		if len(args) != 2 && len(args) != 4 && len(args) != 6 {
			return fail("ERR wrong number of arguments for 'scan'")
		}
		count := defaultScanCount
		var pattern []byte
		for i := 2; i+1 < len(args); i += 2 {
			switch {
			case asciiLowerEq(args[i], "count"):
				v, err := strconv.Atoi(string(args[i+1]))
				if err != nil || v < 1 {
					return fail("ERR COUNT must be a positive integer")
				}
				count = v
			case asciiLowerEq(args[i], "match"):
				pattern = args[i+1]
			default:
				return fail("ERR syntax error")
			}
		}
		if s.clus != nil && s.clusterScanCheck(w) {
			return false, false, true
		}
		after, resume, err := addrkv.ParseCursor(args[1], nil)
		if err != nil {
			return fail("ERR invalid cursor")
		}
		s.opsSinceMark.Add(1)
		var keys [][]byte
		var last []byte
		n, err := s.sys.ScanO(addrkv.ScanStart(after, resume, nil), count, func(k []byte) bool {
			last = k
			if pattern == nil || addrkv.MatchGlob(pattern, k) {
				keys = append(keys, k)
			}
			return true
		}, bo)
		if err != nil {
			return fail("ERR SCAN requires an ordered index (-index rbtree or btree)")
		}
		w.WriteArrayHeader(2)
		if n == count {
			w.WriteBulk(addrkv.AppendCursor(nil, last))
		} else {
			// A short page proves the walk reached the end of the
			// keyspace: the terminal cursor.
			w.WriteBulkString("0")
		}
		w.WriteBulkArray(keys)
	case "range":
		// RANGE start end [limit]: ordered key/value pairs, bounds
		// inclusive; "-" starts at the smallest key, "+" is unbounded
		// above. Replies a flat [k1, v1, k2, v2, ...] array.
		if len(args) != 3 && len(args) != 4 {
			return fail("ERR wrong number of arguments for 'range'")
		}
		limit := 0
		if len(args) == 4 {
			v, err := strconv.Atoi(string(args[3]))
			if err != nil || v < 1 {
				return fail("ERR limit must be a positive integer")
			}
			limit = v
		}
		if s.clus != nil && s.clusterScanCheck(w) {
			return false, false, true
		}
		start, end := args[1], args[2]
		if len(start) == 1 && start[0] == '-' {
			start = nil
		}
		if len(end) == 1 && end[0] == '+' {
			end = nil
		}
		s.opsSinceMark.Add(1)
		var flat [][]byte
		_, err := s.sys.RangeO(start, end, limit, func(k, v []byte) bool {
			flat = append(flat, k, v)
			return true
		}, bo)
		if err != nil {
			return fail("ERR RANGE requires an ordered index (-index rbtree or btree)")
		}
		w.WriteBulkArray(flat)
	case "expire", "pexpire":
		if len(args) != 3 {
			return fail(fmt.Sprintf("ERR wrong number of arguments for '%s'", cmd))
		}
		n, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil {
			return fail("ERR value is not an integer or out of range")
		}
		unit := int64(time.Second)
		if cmd == "pexpire" {
			unit = int64(time.Millisecond)
		}
		// Clamp so now+n*unit cannot overflow; a deadline centuries out
		// is indistinguishable from the clamp.
		if lim := int64(1) << 62 / unit; n > lim {
			n = lim
		} else if n < -lim {
			n = -lim
		}
		s.opsSinceMark.Add(1)
		armed := s.sys.ExpireAtO(args[1], s.sys.Now()+n*unit, oc)
		if oc.Denied {
			return s.clusterRedirect(w, args[1])
		}
		w.WriteInt(int64(armed))
	case "ttl", "pttl":
		if len(args) != 2 {
			return fail(fmt.Sprintf("ERR wrong number of arguments for '%s'", cmd))
		}
		s.opsSinceMark.Add(1)
		ns := s.sys.TTLO(args[1], oc)
		if oc.Denied {
			return s.clusterRedirect(w, args[1])
		}
		if ns < 0 {
			w.WriteInt(ns) // -2 absent, -1 present without a deadline
			break
		}
		unit := int64(time.Second)
		if cmd == "pttl" {
			unit = int64(time.Millisecond)
		}
		w.WriteInt((ns + unit - 1) / unit) // round up: 1ns left is still alive
	case "dbsize":
		w.WriteInt(int64(s.sys.Len()))
	case "info":
		s.statsMu.RLock()
		payload := s.info()
		s.statsMu.RUnlock()
		w.WriteBulk([]byte(payload))
	case "resetstats":
		s.statsMu.Lock()
		s.sys.MarkMeasurement()
		s.opsSinceMark.Store(0)
		s.tele.resetWindow()
		s.statsMu.Unlock()
		// A measurement mark means the caches should be warm from here
		// on: arm the page_walk_warm flight-recorder trigger.
		s.tracer.SetWarm(true)
		w.WriteSimple("OK")
	case "flushall":
		release, gerr := s.clusterFlushGuard()
		if gerr != nil {
			return fail(fmt.Sprintf("ERR flushall: %v", gerr))
		}
		s.statsMu.Lock()
		err := s.sys.Reset()
		if err == nil {
			s.opsSinceMark.Store(0)
			s.tele.resetWindow()
		}
		s.statsMu.Unlock()
		release()
		if err != nil {
			return fail(fmt.Sprintf("ERR flushall: %v", err))
		}
		s.tracer.SetWarm(false) // fresh engines start cold again
		w.WriteSimple("OK")
	case "bgsave", "lastsave":
		if len(args) != 1 {
			return fail(fmt.Sprintf("ERR wrong number of arguments for '%s'", cmd))
		}
		return false, false, s.persistCmd(w, cmd)
	case "cluster":
		return s.clusterCmd(w, args)
	case "asking":
		if s.clus == nil {
			return fail("ERR This instance has cluster support disabled")
		}
		cs.asking = true
		s.clus.node.Metrics.Asking.Add(1)
		w.WriteSimple("OK")
	case "slowlog":
		return s.slowlogCmd(w, args)
	case "trace":
		return s.traceCmd(w, args)
	case "monitor":
		if s.closing.Load() {
			return fail("ERR server shutting down")
		}
		w.WriteSimple("OK")
		return false, true, false
	default:
		return fail(fmt.Sprintf("ERR unknown command '%s'", strings.ToUpper(cmd)))
	}
	return false, false, false
}

// slowlogCmd handles SLOWLOG GET [n] / RESET / LEN. Each GET entry is
// a 7-element array: id, unix seconds, duration in microseconds, the
// (truncated) argument array, home shard, modeled cycles, and the
// addressing-path breakdown string.
func (s *server) slowlogCmd(w *resp.Writer, args [][]byte) (quit, monitor, isErr bool) {
	fail := func(msg string) (bool, bool, bool) {
		w.WriteError(msg)
		return false, false, true
	}
	if len(args) < 2 {
		return fail("ERR wrong number of arguments for 'slowlog'")
	}
	switch strings.ToLower(string(args[1])) {
	case "get":
		n := 10
		if len(args) == 3 {
			v, err := strconv.Atoi(string(args[2]))
			if err != nil || v < -1 {
				return fail("ERR invalid slowlog count")
			}
			n = v // -1 and 0 mean "all", like Redis
		} else if len(args) > 3 {
			return fail("ERR wrong number of arguments for 'slowlog get'")
		}
		entries := s.tele.slowlog.Entries(n)
		w.WriteArrayHeader(len(entries))
		for _, e := range entries {
			w.WriteArrayHeader(7)
			w.WriteInt(e.ID)
			w.WriteInt(e.UnixMicro / 1e6)
			w.WriteInt(e.Duration.Microseconds())
			w.WriteArrayHeader(len(e.Args))
			for _, a := range e.Args {
				w.WriteBulkString(a)
			}
			w.WriteInt(int64(e.Shard))
			w.WriteInt(int64(e.Cycles))
			w.WriteBulkString(e.Detail)
		}
	case "reset":
		s.tele.slowlog.Reset()
		w.WriteSimple("OK")
	case "len":
		w.WriteInt(int64(s.tele.slowlog.Len()))
	default:
		return fail(fmt.Sprintf("ERR unknown SLOWLOG subcommand '%s'", args[1]))
	}
	return false, false, false
}

// monitorLoop streams the command feed to a MONITOR client until the
// client sends another command (QUIT/RESET per Redis, but any input
// detaches), disconnects, or the server drains. Lines a slow client
// cannot absorb are dropped by the feed, never blocking dispatch.
func (s *server) monitorLoop(r *resp.Reader, w *resp.Writer) {
	id, ch := s.tele.feed.Subscribe(1024)
	defer s.tele.feed.Unsubscribe(id)
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for {
			if _, err := r.ReadCommand(); err != nil {
				return // disconnect, or nudgeConns during shutdown
			}
			return // any command detaches the monitor
		}
	}()
	for {
		select {
		case line := <-ch:
			if w.WriteSimple(line) != nil || w.Flush() != nil {
				return
			}
		case <-stop:
			return
		}
	}
}

// info renders the INFO payload: the aggregate simulated statistics,
// the server's real wall-clock latency and modeled per-op cycle
// percentiles, then one section per shard. Callers hold statsMu.
func (s *server) info() string {
	rep := s.sys.Report()
	var b strings.Builder
	fmt.Fprintf(&b, "# addrkv simulated statistics (since RESETSTATS)\r\n")
	fmt.Fprintf(&b, "shards:%d\r\n", rep.Shards)
	fmt.Fprintf(&b, "server_ops:%d\r\n", s.opsSinceMark.Load())
	fmt.Fprintf(&b, "ops:%d\r\n", rep.Ops)
	fmt.Fprintf(&b, "cycles:%d\r\n", rep.Cycles)
	fmt.Fprintf(&b, "max_shard_cycles:%d\r\n", rep.MaxShardCycles)
	fmt.Fprintf(&b, "cycles_per_op:%.1f\r\n", rep.CyclesPerOp)
	fmt.Fprintf(&b, "modeled_ops_per_kcycle:%.3f\r\n", 1000*rep.ModeledThroughput())
	fmt.Fprintf(&b, "tlb_misses_per_op:%.3f\r\n", rep.TLBMissesPerOp)
	fmt.Fprintf(&b, "page_walks_per_op:%.3f\r\n", rep.PageWalksPerOp)
	fmt.Fprintf(&b, "llc_misses_per_op:%.3f\r\n", rep.CacheMissesPerOp)
	fmt.Fprintf(&b, "fast_path_hit_rate:%.4f\r\n", rep.FastPathHitRate)
	fmt.Fprintf(&b, "table_miss_rate:%.4f\r\n", rep.TableMissRate)
	fmt.Fprintf(&b, "scans:%d\r\n", rep.Scans)
	fmt.Fprintf(&b, "expired_keys:%d\r\n", rep.Expired)
	fmt.Fprintf(&b, "evicted_keys:%d\r\n", rep.Evicted)
	fmt.Fprintf(&b, "expires_armed:%d\r\n", s.sys.ExpiresArmed())
	fmt.Fprintf(&b, "used_bytes:%d\r\n", s.sys.UsedBytes())

	lat := telemetry.QuantilesOf(s.tele.latencySnapshot())
	fmt.Fprintf(&b, "# latency (real wall clock, since RESETSTATS)\r\n")
	fmt.Fprintf(&b, "latency_samples:%d\r\n", lat.Count)
	fmt.Fprintf(&b, "latency_mean_us:%.1f\r\n", lat.Mean/1e3)
	fmt.Fprintf(&b, "latency_p50_us:%.1f\r\n", float64(lat.P50)/1e3)
	fmt.Fprintf(&b, "latency_p90_us:%.1f\r\n", float64(lat.P90)/1e3)
	fmt.Fprintf(&b, "latency_p99_us:%.1f\r\n", float64(lat.P99)/1e3)
	fmt.Fprintf(&b, "latency_p999_us:%.1f\r\n", float64(lat.P999)/1e3)
	fmt.Fprintf(&b, "latency_max_us:%.1f\r\n", float64(lat.Max)/1e3)
	cyc := telemetry.QuantilesOf(s.tele.cycleSnapshot())
	fmt.Fprintf(&b, "op_cycles_p50:%d\r\n", cyc.P50)
	fmt.Fprintf(&b, "op_cycles_p99:%d\r\n", cyc.P99)
	fmt.Fprintf(&b, "op_cycles_max:%d\r\n", cyc.Max)
	fmt.Fprintf(&b, "slowlog_len:%d\r\n", s.tele.slowlog.Len())
	fmt.Fprintf(&b, "monitor_clients:%d\r\n", s.tele.feed.Subscribers())

	pd := telemetry.QuantilesOf(s.tele.pipeDepth.Snapshot())
	fmt.Fprintf(&b, "# networking\r\n")
	fmt.Fprintf(&b, "active_conns:%d\r\n", s.tele.activeConns.Load())
	fmt.Fprintf(&b, "shed_conns:%d\r\n", s.tele.shedConns.Load())
	fmt.Fprintf(&b, "pipeline_batches:%d\r\n", s.tele.pipeBatches.Load())
	fmt.Fprintf(&b, "pipelined_commands:%d\r\n", s.tele.pipeCmds.Load())
	fmt.Fprintf(&b, "pipeline_depth_mean:%.2f\r\n", pd.Mean)
	fmt.Fprintf(&b, "pipeline_depth_p99:%d\r\n", pd.P99)
	fmt.Fprintf(&b, "pipeline_depth_max:%d\r\n", pd.Max)
	fmt.Fprintf(&b, "early_flushes:%d\r\n", s.tele.earlyFlush.Load())
	fmt.Fprintf(&b, "batch_commands:%d\r\n", s.tele.batchCmds.Load())
	fmt.Fprintf(&b, "batched_keys:%d\r\n", s.tele.batchKeys.Load())
	s.netloopInfo(func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	})

	fmt.Fprintf(&b, "# expiry\r\n")
	fmt.Fprintf(&b, "expire_cycle_budget:%d\r\n", s.sweepBudget)
	fmt.Fprintf(&b, "sweep_cycles:%d\r\n", s.sweepCycles.Load())
	fmt.Fprintf(&b, "sweep_reaped_total:%d\r\n", s.sweepReaped.Load())
	fmt.Fprintf(&b, "sweep_last_reaped:%d\r\n", s.sweepLastReaped.Load())

	s.runtimeInfo(func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	})

	s.persistInfo(func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	})

	s.clusterInfo(func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	}, rep)

	fmt.Fprintf(&b, "# tracing\r\n")
	fmt.Fprintf(&b, "trace_sample_every:%d\r\n", s.tracer.Sample())
	fmt.Fprintf(&b, "trace_ops:%d\r\n", s.tracer.Traced())
	fmt.Fprintf(&b, "trace_anomalies:%d\r\n", s.tracer.AnomalyCount())
	fmt.Fprintf(&b, "trace_auto_dumps:%d\r\n", s.tracer.Dumps())
	fmt.Fprintf(&b, "trace_warm_phase:%v\r\n", s.tracer.Warm())

	for i, st := range rep.PerShard {
		fmt.Fprintf(&b, "# shard %d\r\n", i)
		fmt.Fprintf(&b, "shard%d_ops:%d\r\n", i, st.Ops)
		fmt.Fprintf(&b, "shard%d_keys:%d\r\n", i, s.sys.Cluster().ShardLen(i))
		fmt.Fprintf(&b, "shard%d_cycles:%d\r\n", i, uint64(st.Machine.Cycles))
		fmt.Fprintf(&b, "shard%d_cycles_per_op:%.1f\r\n", i, st.CyclesPerOp())
		fmt.Fprintf(&b, "shard%d_fast_hits:%d\r\n", i, st.FastHits)
		if st.Gets > 0 {
			fmt.Fprintf(&b, "shard%d_fast_hit_rate:%.4f\r\n", i, float64(st.FastHits)/float64(st.Gets))
		}
		if i < len(s.tele.shardCycles) {
			q := telemetry.QuantilesOf(s.tele.shardCycles[i].Snapshot())
			fmt.Fprintf(&b, "shard%d_cycles_p99:%d\r\n", i, q.P99)
		}
	}
	return b.String()
}
