// Command kvserve runs a Redis-protocol key-value server backed by the
// simulated addrkv engine — the zero-to-running demo of the paper's
// setup (Figure 1 measures Redis over a Unix domain socket with
// pipelined requests).
//
// Commands: PING, GET, SET, DEL, EXISTS, DBSIZE, INFO, FLUSHALL, QUIT.
// INFO reports the *simulated* cycle statistics (cycles/op, TLB misses,
// STLT hit rate), so a client can measure the modeled speedup while
// talking real RESP over a real socket.
//
//	kvserve -mode stlt -keys 100000 -sock /tmp/addrkv.sock
//	kvserve -mode baseline -addr 127.0.0.1:6380
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"

	"addrkv"
	"addrkv/internal/resp"
)

type server struct {
	mu  sync.Mutex // the simulated machine is single-core; serialize ops
	sys *addrkv.System

	opsSinceMark uint64
}

func main() {
	var (
		mode  = flag.String("mode", "stlt", "baseline|stlt|slb|stlt-sw|stlt-va")
		index = flag.String("index", "chainhash", "chainhash|densehash|rbtree|btree")
		keys  = flag.Int("keys", 100_000, "index/STLT sizing hint (and preload count with -preload)")
		pre   = flag.Bool("preload", false, "preload -keys YCSB records before serving")
		vsize = flag.Int("vsize", 64, "preload value size")
		sock  = flag.String("sock", "", "Unix socket path (the paper's transport)")
		addr  = flag.String("addr", "", "TCP address, e.g. 127.0.0.1:6380")
	)
	flag.Parse()

	if (*sock == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "kvserve: exactly one of -sock or -addr is required")
		os.Exit(2)
	}

	sys, err := addrkv.New(addrkv.Options{
		Keys:       *keys,
		Index:      addrkv.IndexKind(*index),
		Mode:       addrkv.Mode(*mode),
		RedisLayer: true,
	})
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	if *pre {
		log.Printf("preloading %d keys (%dB values)...", *keys, *vsize)
		sys.Load(*keys, *vsize)
	}
	s := &server{sys: sys}

	var ln net.Listener
	if *sock != "" {
		_ = os.Remove(*sock)
		ln, err = net.Listen("unix", *sock)
	} else {
		ln, err = net.Listen("tcp", *addr)
	}
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	log.Printf("kvserve: %s engine on %s serving %s", *mode, *index, ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go s.serve(conn)
	}
}

func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				log.Printf("client error: %v", err)
			}
			return
		}
		quit := s.dispatch(w, args)
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

func (s *server) dispatch(w *resp.Writer, args [][]byte) (quit bool) {
	cmd := strings.ToUpper(string(args[0]))
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case "PING":
		w.WriteSimple("PONG")
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "GET":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'get'")
			return
		}
		s.opsSinceMark++
		if v, ok := s.sys.Get(args[1]); ok {
			w.WriteBulk(v)
		} else {
			w.WriteBulk(nil)
		}
	case "SET":
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'set'")
			return
		}
		s.opsSinceMark++
		s.sys.Set(args[1], args[2])
		w.WriteSimple("OK")
	case "DEL":
		if len(args) < 2 {
			w.WriteError("ERR wrong number of arguments for 'del'")
			return
		}
		var n int64
		for _, k := range args[1:] {
			if s.sys.Delete(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "EXISTS":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'exists'")
			return
		}
		if _, ok := s.sys.Get(args[1]); ok {
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "DBSIZE":
		w.WriteInt(int64(s.sys.Engine().Idx.Len()))
	case "INFO":
		rep := s.sys.Report()
		var b strings.Builder
		fmt.Fprintf(&b, "# addrkv simulated statistics (since RESETSTATS)\r\n")
		fmt.Fprintf(&b, "ops:%d\r\n", rep.Ops)
		fmt.Fprintf(&b, "cycles:%d\r\n", rep.Cycles)
		fmt.Fprintf(&b, "cycles_per_op:%.1f\r\n", rep.CyclesPerOp)
		fmt.Fprintf(&b, "tlb_misses_per_op:%.3f\r\n", rep.TLBMissesPerOp)
		fmt.Fprintf(&b, "page_walks_per_op:%.3f\r\n", rep.PageWalksPerOp)
		fmt.Fprintf(&b, "llc_misses_per_op:%.3f\r\n", rep.CacheMissesPerOp)
		fmt.Fprintf(&b, "fast_path_hit_rate:%.4f\r\n", rep.FastPathHitRate)
		fmt.Fprintf(&b, "table_miss_rate:%.4f\r\n", rep.TableMissRate)
		w.WriteBulk([]byte(b.String()))
	case "RESETSTATS":
		s.sys.Engine().MarkMeasurement()
		s.opsSinceMark = 0
		w.WriteSimple("OK")
	case "FLUSHALL":
		w.WriteError("ERR FLUSHALL not supported; restart the server")
	default:
		w.WriteError(fmt.Sprintf("ERR unknown command '%s'", cmd))
	}
	return false
}
