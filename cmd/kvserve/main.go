// Command kvserve runs a Redis-protocol key-value server backed by the
// simulated addrkv engine — the zero-to-running demo of the paper's
// setup (Figure 1 measures Redis over a Unix domain socket with
// pipelined requests), scaled out across -shards simulated machines.
//
// Each shard is an independent simulated core (own caches, TLBs, STB,
// and an STLT sized at keys/shards); keys route to shards by a stable
// hash, so concurrent clients touching different shards proceed in
// parallel with only per-shard locking.
//
// Commands: PING, GET, SET, DEL, EXISTS, DBSIZE, INFO, RESETSTATS,
// FLUSHALL, QUIT. INFO reports the *simulated* cycle statistics
// (aggregate plus a section per shard), so a client can measure the
// modeled speedup while talking real RESP over a real socket.
// SIGINT/SIGTERM stop the listener, drain in-flight connections, and
// remove the Unix socket file.
//
//	kvserve -mode stlt -keys 100000 -shards 4 -sock /tmp/addrkv.sock
//	kvserve -mode baseline -addr 127.0.0.1:6380
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"addrkv"
	"addrkv/internal/resp"
)

// drainTimeout bounds how long shutdown waits for in-flight
// connections before force-closing them.
const drainTimeout = 5 * time.Second

type server struct {
	sys          *addrkv.System
	opsSinceMark atomic.Uint64 // GET/SET/EXISTS dispatched since RESETSTATS

	closing atomic.Bool
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

func newServer(sys *addrkv.System) *server {
	return &server{sys: sys, conns: map[net.Conn]struct{}{}}
}

func main() {
	var (
		mode   = flag.String("mode", "stlt", "baseline|stlt|slb|stlt-sw|stlt-va")
		index  = flag.String("index", "chainhash", "chainhash|densehash|rbtree|btree")
		keys   = flag.Int("keys", 100_000, "index/STLT sizing hint (and preload count with -preload)")
		shards = flag.Int("shards", 1, "number of simulated machines the key space is hashed across")
		pre    = flag.Bool("preload", false, "preload -keys YCSB records before serving")
		vsize  = flag.Int("vsize", 64, "preload value size")
		sock   = flag.String("sock", "", "Unix socket path (the paper's transport)")
		addr   = flag.String("addr", "", "TCP address, e.g. 127.0.0.1:6380")
	)
	flag.Parse()

	if (*sock == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "kvserve: exactly one of -sock or -addr is required")
		os.Exit(2)
	}

	sys, err := addrkv.New(addrkv.Options{
		Keys:       *keys,
		Shards:     *shards,
		Index:      addrkv.IndexKind(*index),
		Mode:       addrkv.Mode(*mode),
		RedisLayer: true,
	})
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	if *pre {
		log.Printf("preloading %d keys (%dB values)...", *keys, *vsize)
		sys.Load(*keys, *vsize)
	}
	s := newServer(sys)

	var ln net.Listener
	if *sock != "" {
		_ = os.Remove(*sock)
		ln, err = net.Listen("unix", *sock)
	} else {
		ln, err = net.Listen("tcp", *addr)
	}
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	log.Printf("kvserve: %s engine on %s, %d shard(s), serving %s",
		*mode, *index, *shards, ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("kvserve: %v — stopping accept, draining connections", sig)
		s.closing.Store(true)
		ln.Close()
		s.nudgeConns() // wake readers blocked on idle connections
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				break
			}
			log.Printf("accept: %v", err)
			time.Sleep(50 * time.Millisecond) // don't spin on persistent errors
			continue
		}
		s.track(conn)
		go s.serve(conn)
	}

	s.drain()
	if *sock != "" {
		_ = os.Remove(*sock)
	}
	log.Printf("kvserve: shutdown complete")
}

func (s *server) track(conn net.Conn) {
	s.wg.Add(1)
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.wg.Done()
}

// nudgeConns sets an immediate read deadline on every open connection
// so serve loops blocked in ReadCommand wake up and observe closing.
func (s *server) nudgeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
}

// drain waits for in-flight connections to finish their current
// command, force-closing stragglers after drainTimeout.
func (s *server) drain() {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(drainTimeout):
		s.connMu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		log.Printf("kvserve: drain timeout, force-closed %d connection(s)", n)
		<-done
	}
}

func (s *server) serve(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) && !isTimeout(err) {
				log.Printf("client error: %v", err)
			}
			return
		}
		quit := s.dispatch(w, args)
		if err := w.Flush(); err != nil || quit || s.closing.Load() {
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch executes one command. It takes no global lock: System's
// data-path methods lock only the key's home shard, so concurrent
// connections touching different shards proceed in parallel.
func (s *server) dispatch(w *resp.Writer, args [][]byte) (quit bool) {
	cmd := strings.ToUpper(string(args[0]))
	switch cmd {
	case "PING":
		w.WriteSimple("PONG")
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "GET":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'get'")
			return
		}
		s.opsSinceMark.Add(1)
		if v, ok := s.sys.Get(args[1]); ok {
			w.WriteBulk(v)
		} else {
			w.WriteBulk(nil)
		}
	case "SET":
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'set'")
			return
		}
		s.opsSinceMark.Add(1)
		s.sys.Set(args[1], args[2])
		w.WriteSimple("OK")
	case "DEL":
		if len(args) < 2 {
			w.WriteError("ERR wrong number of arguments for 'del'")
			return
		}
		var n int64
		for _, k := range args[1:] {
			if s.sys.Delete(k) {
				n++
			}
		}
		w.WriteInt(n)
	case "EXISTS":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'exists'")
			return
		}
		s.opsSinceMark.Add(1)
		if s.sys.Exists(args[1]) {
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "DBSIZE":
		w.WriteInt(int64(s.sys.Len()))
	case "INFO":
		w.WriteBulk([]byte(s.info()))
	case "RESETSTATS":
		s.sys.MarkMeasurement()
		s.opsSinceMark.Store(0)
		w.WriteSimple("OK")
	case "FLUSHALL":
		if err := s.sys.Reset(); err != nil {
			w.WriteError(fmt.Sprintf("ERR flushall: %v", err))
			return
		}
		s.opsSinceMark.Store(0)
		w.WriteSimple("OK")
	default:
		w.WriteError(fmt.Sprintf("ERR unknown command '%s'", cmd))
	}
	return false
}

// info renders the INFO payload: the aggregate simulated statistics
// followed by one section per shard.
func (s *server) info() string {
	rep := s.sys.Report()
	var b strings.Builder
	fmt.Fprintf(&b, "# addrkv simulated statistics (since RESETSTATS)\r\n")
	fmt.Fprintf(&b, "shards:%d\r\n", rep.Shards)
	fmt.Fprintf(&b, "server_ops:%d\r\n", s.opsSinceMark.Load())
	fmt.Fprintf(&b, "ops:%d\r\n", rep.Ops)
	fmt.Fprintf(&b, "cycles:%d\r\n", rep.Cycles)
	fmt.Fprintf(&b, "max_shard_cycles:%d\r\n", rep.MaxShardCycles)
	fmt.Fprintf(&b, "cycles_per_op:%.1f\r\n", rep.CyclesPerOp)
	fmt.Fprintf(&b, "modeled_ops_per_kcycle:%.3f\r\n", 1000*rep.ModeledThroughput())
	fmt.Fprintf(&b, "tlb_misses_per_op:%.3f\r\n", rep.TLBMissesPerOp)
	fmt.Fprintf(&b, "page_walks_per_op:%.3f\r\n", rep.PageWalksPerOp)
	fmt.Fprintf(&b, "llc_misses_per_op:%.3f\r\n", rep.CacheMissesPerOp)
	fmt.Fprintf(&b, "fast_path_hit_rate:%.4f\r\n", rep.FastPathHitRate)
	fmt.Fprintf(&b, "table_miss_rate:%.4f\r\n", rep.TableMissRate)
	for i, st := range rep.PerShard {
		fmt.Fprintf(&b, "# shard %d\r\n", i)
		fmt.Fprintf(&b, "shard%d_ops:%d\r\n", i, st.Ops)
		fmt.Fprintf(&b, "shard%d_keys:%d\r\n", i, s.sys.Cluster().ShardLen(i))
		fmt.Fprintf(&b, "shard%d_cycles:%d\r\n", i, uint64(st.Machine.Cycles))
		fmt.Fprintf(&b, "shard%d_cycles_per_op:%.1f\r\n", i, st.CyclesPerOp())
		fmt.Fprintf(&b, "shard%d_fast_hits:%d\r\n", i, st.FastHits)
	}
	return b.String()
}
