package main

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"

	"addrkv/internal/cluster"
	"addrkv/internal/resp"
	"addrkv/internal/wal"
)

// reserveAddr grabs a free loopback port and releases it for the bus
// listener to re-bind (a benign race: tests in this package do not run
// in parallel).
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// newTestCluster builds n in-process cluster servers (2 shards each)
// with live buses and an even slot split. Client addresses in the slot
// map are symbolic ("node-i") — redirect tests match on them; nothing
// dials them.
func newTestCluster(t *testing.T, n int, workers bool) []*server {
	return newTestClusterOpts(t, n, workers, clusterOpts{rewarm: true, batch: 8})
}

// newTestClusterOpts is newTestCluster with explicit cluster options —
// the heartbeat tests pass a live interval here.
func newTestClusterOpts(t *testing.T, n int, workers bool, o clusterOpts) []*server {
	t.Helper()
	nodes := make([]cluster.NodeInfo, n)
	for i := range nodes {
		nodes[i] = cluster.NodeInfo{Addr: fmt.Sprintf("node-%d", i), Bus: reserveAddr(t)}
	}
	srvs := make([]*server, n)
	for i := range srvs {
		var s *server
		if workers {
			s = newWorkerServer(t, 2)
		} else {
			s = newTestServerShards(t, 2)
		}
		if err := s.setupCluster(nodes, i, o); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.closeCluster)
		srvs[i] = s
	}
	return srvs
}

// callCS is call with a caller-owned connState, so ASKING's one-shot
// flag survives across commands like it would on a real connection.
func callCS(t *testing.T, s *server, cs *connState, args ...string) any {
	t.Helper()
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	s.dispatch(w, ba, cs)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := resp.NewReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// keysInSlot generates count distinct keys that all hash to slot.
func keysInSlot(t *testing.T, slot uint16, count int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < count; i++ {
		k := fmt.Sprintf("mig:%d", i)
		if cluster.SlotOf([]byte(k)) == slot {
			keys = append(keys, k)
		}
		if i > 5_000_000 {
			t.Fatalf("could not find %d keys in slot %d", count, slot)
		}
	}
	return keys
}

// diffOps is the deterministic command sequence both differential
// tests replay: single-key ops, misses, deletes, and same-slot batches
// (cluster batches must be single-slot, and standalone handles that
// shape identically).
func diffOps(t *testing.T) [][]string {
	t.Helper()
	var ops [][]string
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("user:%d", i)
		ops = append(ops, []string{"SET", k, fmt.Sprintf("val-%d", i)})
	}
	for i := 0; i < 200; i++ {
		ops = append(ops, []string{"GET", fmt.Sprintf("user:%d", i*2)}) // half miss
	}
	for i := 0; i < 50; i++ {
		ops = append(ops, []string{"EXISTS", fmt.Sprintf("user:%d", i*4)})
	}
	for i := 0; i < 30; i++ {
		ops = append(ops, []string{"DEL", fmt.Sprintf("user:%d", i*3)})
	}
	batch := keysInSlot(t, 77, 6)
	mset := []string{"MSET"}
	for i, k := range batch {
		mset = append(mset, k, fmt.Sprintf("bv-%d", i))
	}
	ops = append(ops, mset)
	ops = append(ops, append([]string{"MGET"}, batch...))
	ops = append(ops, append([]string{"DEL"}, batch[:3]...))
	for _, k := range batch {
		ops = append(ops, []string{"GET", k})
	}
	return ops
}

// TestClusterSingleNodeDifferentialMutex pins a 1-node cluster to
// standalone kvserve on the mutex dispatch path: every reply and the
// full modeled statistics report must match exactly — cluster mode's
// gate and routing hooks may not perturb the engine model.
func TestClusterSingleNodeDifferentialMutex(t *testing.T) {
	sa := newTestServerShards(t, 2)
	cl := newTestCluster(t, 1, false)[0]

	csA, csB := &connState{id: 1}, &connState{id: 1}
	for _, op := range diffOps(t) {
		ra := callCS(t, sa, csA, op...)
		rb := callCS(t, cl, csB, op...)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%v: standalone %v != cluster %v", op, ra, rb)
		}
	}
	if !reflect.DeepEqual(sa.sys.Report(), cl.sys.Report()) {
		t.Fatalf("modeled stats diverged:\nstandalone: %+v\ncluster:    %+v",
			sa.sys.Report(), cl.sys.Report())
	}
}

// TestClusterSingleNodeDifferentialWorker is the same pin on the
// worker dispatch path, over real pipelined connections.
func TestClusterSingleNodeDifferentialWorker(t *testing.T) {
	sa := newWorkerServer(t, 2)
	cl := newTestCluster(t, 1, true)[0]

	ra, wa, _ := pipeClient(t, sa)
	rb, wb, _ := pipeClient(t, cl)
	ops := diffOps(t)
	// Bounded bursts: net.Pipe is unbuffered, so a whole-sequence
	// pipeline would deadlock writer against reader. 25 commands per
	// burst still exercises pipelined worker dispatch.
	for start := 0; start < len(ops); start += 25 {
		end := min(start+25, len(ops))
		for _, op := range ops[start:end] {
			ba := make([][]byte, len(op))
			for i, a := range op {
				ba[i] = []byte(a)
			}
			wa.WriteCommand(ba...)
			wb.WriteCommand(ba...)
		}
		if err := wa.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := wb.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := start; i < end; i++ {
			va, erra := ra.ReadReply()
			vb, errb := rb.ReadReply()
			if erra != nil || errb != nil {
				t.Fatalf("op %d: read errors %v / %v", i, erra, errb)
			}
			if !reflect.DeepEqual(va, vb) {
				t.Fatalf("%v: standalone %v != cluster %v", ops[i], va, vb)
			}
		}
	}
	if !reflect.DeepEqual(sa.sys.Report(), cl.sys.Report()) {
		t.Fatalf("modeled stats diverged:\nstandalone: %+v\ncluster:    %+v",
			sa.sys.Report(), cl.sys.Report())
	}
}

// TestClusterMovedRedirect: a key whose slot another node owns gets a
// -MOVED naming that node, on both dispatch paths, and the redirect is
// counted. The op must not touch the engine (no modeled ops recorded).
func TestClusterMovedRedirect(t *testing.T) {
	for _, workers := range []bool{false, true} {
		t.Run(fmt.Sprintf("workers=%v", workers), func(t *testing.T) {
			srvs := newTestCluster(t, 2, workers)
			s0 := srvs[0]
			// A key from the top half of the slot space belongs to node 1.
			key := keysInSlot(t, 12000, 1)[0]
			var got any
			if workers {
				r, w, _ := pipeClient(t, s0)
				w.WriteCommand([]byte("SET"), []byte(key), []byte("v"))
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				v, err := r.ReadReply()
				if err != nil {
					t.Fatal(err)
				}
				got = v
			} else {
				got = callCS(t, s0, &connState{id: 1}, "SET", key, "v")
			}
			err, ok := got.(error)
			if !ok {
				t.Fatalf("reply = %v, want MOVED error", got)
			}
			want := fmt.Sprintf("MOVED %d node-1", cluster.SlotOf([]byte(key)))
			if err.Error() != want {
				t.Fatalf("redirect = %q, want %q", err, want)
			}
			if n := s0.clus.node.Metrics.Moved.Load(); n != 1 {
				t.Fatalf("moved counter = %d", n)
			}
			if rep := s0.sys.Report(); rep.Ops != 0 {
				t.Fatalf("denied op reached the engine: %d modeled ops", rep.Ops)
			}
		})
	}
}

// TestClusterCrossSlot: multi-key commands spanning slots are refused.
func TestClusterCrossSlot(t *testing.T) {
	cl := newTestCluster(t, 1, false)[0]
	a := keysInSlot(t, 10, 1)[0]
	b := keysInSlot(t, 11, 1)[0]
	got := callCS(t, cl, &connState{id: 1}, "MGET", a, b)
	err, ok := got.(error)
	if !ok || !strings.HasPrefix(err.Error(), "CROSSSLOT") {
		t.Fatalf("MGET across slots = %v, want CROSSSLOT", got)
	}
}

// TestClusterCommandSurface: CLUSTER SLOTS/INFO shapes, and the
// disabled-on-standalone refusals.
func TestClusterCommandSurface(t *testing.T) {
	sa := newTestServer(t)
	for _, args := range [][]string{{"CLUSTER", "INFO"}, {"ASKING"}} {
		if _, ok := call(t, sa, args...).(error); !ok {
			t.Fatalf("%v on standalone did not error", args)
		}
	}

	srvs := newTestCluster(t, 2, false)
	slots := callCS(t, srvs[0], &connState{id: 1}, "CLUSTER", "SLOTS").([]any)
	if len(slots) != 2 {
		t.Fatalf("CLUSTER SLOTS ranges = %d, want 2", len(slots))
	}
	first := slots[0].([]any)
	if first[0].(int64) != 0 || first[1].(int64) != 8191 {
		t.Fatalf("range 0 = [%v, %v]", first[0], first[1])
	}
	if owner := first[2].([]any); string(owner[0].([]byte)) != "node-0" || owner[1].(int64) != 0 {
		t.Fatalf("range 0 owner = %v", owner)
	}
	info := string(callCS(t, srvs[0], &connState{id: 1}, "CLUSTER", "INFO").([]byte))
	for _, want := range []string{"cluster_state:ok", "cluster_enabled:1", "cluster_known_nodes:2", "cluster_slots_owned:8192"} {
		if !strings.Contains(info, want) {
			t.Fatalf("CLUSTER INFO missing %q:\n%s", want, info)
		}
	}
	// INFO carries the same section; standalone INFO must not.
	if full := string(call(t, srvs[0], "INFO").([]byte)); !strings.Contains(full, "# cluster\r\n") {
		t.Fatal("INFO missing # cluster section in cluster mode")
	}
	if full := string(call(t, sa, "INFO").([]byte)); strings.Contains(full, "# cluster") {
		t.Fatal("standalone INFO grew a cluster section")
	}
}

// TestClusterAskingBypass: an importing slot serves present keys only
// to clients that sent ASKING first, and the flag is one-shot.
func TestClusterAskingBypass(t *testing.T) {
	srvs := newTestCluster(t, 2, false)
	s1 := srvs[1]
	// Slot 100 is owned by node 0; stage an import of it on node 1.
	if err := s1.clus.node.BeginImport(100, 0); err != nil {
		t.Fatal(err)
	}
	key := keysInSlot(t, 100, 1)[0]
	cs := &connState{id: 1}

	// Without ASKING the op redirects to the owner.
	got := callCS(t, s1, cs, "SET", key, "v")
	if err, ok := got.(error); !ok || !strings.HasPrefix(err.Error(), "MOVED") {
		t.Fatalf("un-asked op on importing slot = %v, want MOVED", got)
	}
	// With ASKING it executes here.
	if got := callCS(t, s1, cs, "ASKING"); got != "OK" {
		t.Fatalf("ASKING = %v", got)
	}
	if got := callCS(t, s1, cs, "SET", key, "v"); got != "OK" {
		t.Fatalf("asked SET = %v", got)
	}
	// One-shot: the next command is gated again.
	got = callCS(t, s1, cs, "GET", key)
	if err, ok := got.(error); !ok || !strings.HasPrefix(err.Error(), "MOVED") {
		t.Fatalf("ASKING leaked past one command: %v", got)
	}
}

// TestClusterBusBatchGate pins the destination-side install gate at
// the serving layer: busHandler must refuse a MigBatch unless the
// slot is importing here from exactly the batch's source, so a late
// duplicate batch after the commit cannot re-install stale records.
func TestClusterBusBatchGate(t *testing.T) {
	srvs := newTestCluster(t, 3, false)
	s1 := srvs[1]
	const slot = 100 // owned by node 0 under the even split
	key := keysInSlot(t, slot, 1)[0]
	frames := wal.AppendFrame(nil, wal.RecLoad, []byte(key), []byte("stale"))
	batch := func(src int) cluster.Msg {
		return cluster.Msg{Type: cluster.MsgMigBatch, Payload: cluster.EncodeMigBatch(slot, src, false, frames)}
	}

	if typ, _ := s1.busHandler(batch(0)); typ != cluster.MsgErr {
		t.Fatal("batch for a non-importing slot installed")
	}
	if err := s1.clus.node.BeginImport(slot, 0); err != nil {
		t.Fatal(err)
	}
	if typ, _ := s1.busHandler(batch(2)); typ != cluster.MsgErr {
		t.Fatal("batch from the wrong source installed")
	}
	typ, body := s1.busHandler(batch(0))
	if typ != cluster.MsgAck || cluster.DecodeU64(body) != 1 {
		t.Fatalf("legitimate batch: type=%d installed=%d", typ, cluster.DecodeU64(body))
	}
	// Commit clears the importing mark; a duplicate is now refused.
	next := s1.clus.node.Map().Clone()
	next.Version++
	next.SetOwner(slot, 1)
	s1.clus.node.CommitImport(slot, next)
	if typ, _ := s1.busHandler(batch(0)); typ != cluster.MsgErr {
		t.Fatal("post-commit duplicate batch installed")
	}
}

// TestClusterFlushallGuard: FLUSHALL is refused while any slot is
// migrating or importing on this node — records already shipped to a
// destination would survive a local flush and resurface at commit,
// making the flush silently partial.
func TestClusterFlushallGuard(t *testing.T) {
	srvs := newTestCluster(t, 2, false)
	s0, s1 := srvs[0], srvs[1]
	cs := &connState{id: 1}

	// Importing destination refuses.
	if err := s1.clus.node.BeginImport(100, 0); err != nil {
		t.Fatal(err)
	}
	got := callCS(t, s1, cs, "FLUSHALL")
	if err, ok := got.(error); !ok || !strings.Contains(err.Error(), "migrating or importing") {
		t.Fatalf("FLUSHALL while importing = %v, want refusal", got)
	}

	// Migrating source refuses.
	ownedBy0 := uint16(0)
	if s0.clus.node.Map().Owner(ownedBy0) != 0 {
		t.Fatal("slot 0 not owned by node 0 under the even split")
	}
	if _, err := s0.clus.node.BeginMigrate(ownedBy0, 1); err != nil {
		t.Fatal(err)
	}
	got = callCS(t, s0, cs, "FLUSHALL")
	if err, ok := got.(error); !ok || !strings.Contains(err.Error(), "migrating or importing") {
		t.Fatalf("FLUSHALL while migrating = %v, want refusal", got)
	}

	// Stable nodes flush fine.
	s0.clus.node.AbortMigrate(ownedBy0)
	if got := callCS(t, s0, cs, "FLUSHALL"); got != "OK" {
		t.Fatalf("FLUSHALL on a stable node = %v", got)
	}
}

// TestClusterMigrateOverRESP drives a live migration through the
// command surface: populate a slot on node 0, CLUSTER MIGRATE it to
// node 1, and verify the records moved byte-identically, ownership
// flipped on both nodes, and the source now redirects.
func TestClusterMigrateOverRESP(t *testing.T) {
	for _, workers := range []bool{false, true} {
		t.Run(fmt.Sprintf("workers=%v", workers), func(t *testing.T) {
			srvs := newTestCluster(t, 2, workers)
			s0, s1 := srvs[0], srvs[1]
			const slot = 42
			keys := keysInSlot(t, slot, 40)
			cs0 := &connState{id: 1}

			put := func(s *server, k, v string) any {
				if !workers {
					return callCS(t, s, cs0, "SET", k, v)
				}
				r, w, c := pipeClient(t, s)
				defer c.Close()
				w.WriteCommand([]byte("SET"), []byte(k), []byte(v))
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				v2, err := r.ReadReply()
				if err != nil {
					t.Fatal(err)
				}
				return v2
			}
			for i, k := range keys {
				if got := put(s0, k, fmt.Sprintf("payload-%d", i)); got != "OK" {
					t.Fatalf("SET %s = %v", k, got)
				}
			}

			rep := callCS(t, s0, cs0, "CLUSTER", "MIGRATE", "42", "1")
			sum, ok := rep.(string)
			if !ok || !strings.HasPrefix(sum, "OK slot=42 dest=1 keys=40") {
				t.Fatalf("CLUSTER MIGRATE = %v", rep)
			}

			// Both nodes agree on the new owner.
			if got := s0.clus.node.Map().Owner(slot); got != 1 {
				t.Fatalf("source owner after migrate = %d", got)
			}
			if got := s1.clus.node.Map().Owner(slot); got != 1 {
				t.Fatalf("dest owner after migrate = %d", got)
			}
			// Source redirects, destination serves the records unchanged.
			for i, k := range keys {
				got := callCS(t, s0, &connState{id: 2}, "GET", k)
				if err, ok := got.(error); !ok || !strings.HasPrefix(err.Error(), fmt.Sprintf("MOVED %d node-1", slot)) {
					t.Fatalf("source GET %s = %v, want MOVED", k, got)
				}
				got = callCS(t, s1, &connState{id: 3}, "GET", k)
				want := fmt.Sprintf("payload-%d", i)
				if b, ok := got.([]byte); !ok || string(b) != want {
					t.Fatalf("dest GET %s = %v, want %q", k, got, want)
				}
			}
			// Import metrics observed the stream, and with rewarm on the
			// destination STLT was warmed for the migrated records.
			m := &s1.clus.node.Metrics
			if m.ImpRecords.Load() != 40 || m.ImpBatches.Load() == 0 {
				t.Fatalf("import metrics: records=%d batches=%d", m.ImpRecords.Load(), m.ImpBatches.Load())
			}
			if m.ImpRewarmed.Load() == 0 {
				t.Fatal("no STLT rows rewarmed despite rewarm=true")
			}
		})
	}
}
