// Span-tracing wiring for kvserve: the -trace-* flags, the TRACE
// ON/OFF/STATUS/DUMP command, the flight-recorder dump sink, and the
// INFO/Prometheus surfaces for tracing state.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"addrkv/internal/resp"
	"addrkv/internal/trace"
)

// writeJSONFile marshals v (indented) into path, creating the
// directory if needed.
func writeJSONFile(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// defaultTraceRing is the default per-shard flight-recorder depth.
const defaultTraceRing = 64

// traceConfig bundles the tracing knobs from the -trace-* flags.
type traceConfig struct {
	// sampleEvery is the initial 1-in-N sampling rate (0 = off).
	sampleEvery uint64
	// dir, when non-empty, receives flight-recorder dump bundles
	// (TRACE DUMP, anomaly auto-dumps, and the final dump on
	// shutdown) plus the Chrome trace_event export.
	dir string
	// ringCap is the per-shard flight-recorder depth.
	ringCap int
	// slowCycles arms the slow-op anomaly trigger (0 = off).
	slowCycles uint64
}

// initTrace builds the server's tracer and dump sink.
func (s *server) initTrace(cfg traceConfig) {
	if cfg.ringCap < 1 {
		cfg.ringCap = defaultTraceRing
	}
	tr := trace.NewTracer(s.sys.Cluster().NumShards(), cfg.ringCap, cfg.sampleEvery)
	tr.SetAnomalyConfig(trace.AnomalyConfig{
		SlowCycles: cfg.slowCycles,
		WalkInWarm: true,
	})
	s.tracer = tr
	s.traceDir = cfg.dir
	s.sys.Cluster().SetTracer(tr)
	if cfg.dir != "" {
		s.dumper = trace.NewDumper(cfg.dir, "kvserve")
		tr.SetDumpFunc(func(reason string) {
			if path, err := s.dumper.Dump(tr, reason); err != nil {
				log.Printf("kvserve: trace auto-dump (%s): %v", reason, err)
			} else {
				log.Printf("kvserve: trace auto-dump (%s) -> %s", reason, path)
			}
		})
	}
}

// finalTraceDump writes the shutdown bundle (plus its Chrome export)
// when a dump directory is configured and anything was traced.
func (s *server) finalTraceDump() {
	if s.dumper == nil || s.tracer.Traced() == 0 {
		return
	}
	path, err := s.dumper.Dump(s.tracer, "final")
	if err != nil {
		log.Printf("kvserve: final trace dump: %v", err)
		return
	}
	log.Printf("kvserve: final trace dump -> %s", path)
	if cpath, err := s.writeChromeTrace("final"); err != nil {
		log.Printf("kvserve: chrome trace export: %v", err)
	} else {
		log.Printf("kvserve: chrome trace -> %s", cpath)
	}
}

// writeChromeTrace renders the current flight-recorder contents as
// Chrome trace_event JSON under the dump directory.
func (s *server) writeChromeTrace(label string) (string, error) {
	b := s.tracer.Snapshot("kvserve", label)
	path := filepath.Join(s.traceDir, fmt.Sprintf("kvserve-chrome-%s.json", label))
	ct := trace.ChromeTraceOf(b)
	return path, writeJSONFile(path, ct)
}

// traceCmd handles TRACE ON [1-in-N] / OFF / STATUS / DUMP.
func (s *server) traceCmd(w *resp.Writer, args [][]byte) (quit, monitor, isErr bool) {
	fail := func(msg string) (bool, bool, bool) {
		w.WriteError(msg)
		return false, false, true
	}
	if len(args) < 2 {
		return fail("ERR wrong number of arguments for 'trace'")
	}
	switch strings.ToLower(string(args[1])) {
	case "on":
		every := uint64(1)
		if len(args) == 3 {
			v, err := strconv.ParseUint(string(args[2]), 10, 64)
			if err != nil || v < 1 {
				return fail("ERR invalid trace sampling rate")
			}
			every = v
		} else if len(args) > 3 {
			return fail("ERR wrong number of arguments for 'trace on'")
		}
		s.tracer.SetSample(every)
		w.WriteSimple("OK")
	case "off":
		s.tracer.SetSample(0)
		w.WriteSimple("OK")
	case "status":
		counts := s.tracer.EventCounts()
		var b strings.Builder
		fmt.Fprintf(&b, "sample_every:%d\r\n", s.tracer.Sample())
		fmt.Fprintf(&b, "traced_ops:%d\r\n", s.tracer.Traced())
		fmt.Fprintf(&b, "shards:%d\r\n", s.tracer.Shards())
		fmt.Fprintf(&b, "anomalies:%d\r\n", s.tracer.AnomalyCount())
		fmt.Fprintf(&b, "auto_dumps:%d\r\n", s.tracer.Dumps())
		fmt.Fprintf(&b, "warm_phase:%v\r\n", s.tracer.Warm())
		fmt.Fprintf(&b, "dump_dir:%s\r\n", s.traceDir)
		for _, k := range traceKindOrder() {
			if n, ok := counts[k]; ok {
				fmt.Fprintf(&b, "events_%s:%d\r\n", strings.ReplaceAll(k, ".", "_"), n)
			}
		}
		w.WriteBulk([]byte(b.String()))
	case "dump":
		if s.dumper == nil {
			return fail("ERR no trace dump directory configured (start kvserve with -trace-dir)")
		}
		reason := "manual"
		if len(args) == 3 {
			reason = string(args[2])
		} else if len(args) > 3 {
			return fail("ERR wrong number of arguments for 'trace dump'")
		}
		path, err := s.dumper.Dump(s.tracer, reason)
		if err != nil {
			return fail(fmt.Sprintf("ERR trace dump: %v", err))
		}
		if _, err := s.writeChromeTrace(reason); err != nil {
			log.Printf("kvserve: chrome trace export: %v", err)
		}
		w.WriteBulk([]byte(path))
	default:
		return fail(fmt.Sprintf("ERR unknown TRACE subcommand '%s'", args[1]))
	}
	return false, false, false
}

// traceKindOrder returns the event kinds in pipeline order for the
// STATUS listing.
func traceKindOrder() []string {
	out := make([]string, trace.NumEventKinds)
	for i := range out {
		out[i] = trace.EventKind(i).String()
	}
	return out
}

// traceSpanFor reports whether cmd (with its argument count) is a
// single-key data-path command the server attaches spans to. Multi-key
// batches (MGET/MSET, multi-key DEL) span several shards and are left
// to the aggregate BatchOutcome telemetry.
func traceSpanFor(cmd string, nargs int) bool {
	switch cmd {
	case "get", "exists", "del", "ttl", "pttl":
		return nargs == 2
	case "set", "expire", "pexpire":
		return nargs == 3
	}
	return false
}
