//go:build !linux

// Non-linux stub: the netloop front-end falls back to the portable
// poller (startNetloop never selects epoll here, so these methods are
// unreachable; they exist to keep netloop.go platform-independent).

package main

// epollSupported gates the "auto" poller choice.
const epollSupported = false

// epollState is empty off linux.
type epollState struct{}

func (sh *readerShard) epollInit() error      { panic("netloop: epoll unavailable") }
func (sh *readerShard) epollClose()           {}
func (sh *readerShard) epollWake()            {}
func (sh *readerShard) epollDel(lc *loopConn) {}
func (sh *readerShard) runEpoll()             { panic("netloop: epoll unavailable") }
