package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addrkv/internal/trace"
)

// tsv pulls one "key:value" line out of a TRACE STATUS / INFO payload.
func tsv(t *testing.T, payload, key string) string {
	t.Helper()
	for _, line := range strings.Split(payload, "\r\n") {
		if v, ok := strings.CutPrefix(line, key+":"); ok {
			return v
		}
	}
	t.Fatalf("no %q line in payload:\n%s", key, payload)
	return ""
}

func TestTraceCommands(t *testing.T) {
	s := newTestServer(t)
	dir := t.TempDir()
	s.initTrace(traceConfig{dir: dir})

	status := string(call(t, s, "TRACE", "STATUS").([]byte))
	if tsv(t, status, "sample_every") != "0" || tsv(t, status, "traced_ops") != "0" {
		t.Fatalf("fresh tracer not idle:\n%s", status)
	}

	if got := call(t, s, "TRACE", "ON"); got != "OK" {
		t.Fatalf("TRACE ON = %v", got)
	}
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	call(t, s, "GET", "missing")
	call(t, s, "DEL", "k")
	call(t, s, "EXISTS", "k")

	status = string(call(t, s, "TRACE", "STATUS").([]byte))
	if tsv(t, status, "sample_every") != "1" || tsv(t, status, "traced_ops") != "5" {
		t.Fatalf("TRACE STATUS after 5 single-key ops:\n%s", status)
	}
	for _, k := range []string{"events_dispatch", "events_engine_op", "events_reply_flush"} {
		if tsv(t, status, k) != "5" {
			t.Fatalf("%s != 5:\n%s", k, status)
		}
	}

	// DUMP writes a parsable bundle plus a Chrome trace next to it.
	path := string(call(t, s, "TRACE", "DUMP").([]byte))
	b, err := trace.ParseBundleFile(path)
	if err != nil {
		t.Fatalf("dumped bundle unparsable: %v", err)
	}
	if len(b.Ops) != 5 || b.EventCounts["dispatch"] != 5 {
		t.Fatalf("bundle ops %d, counts %v", len(b.Ops), b.EventCounts)
	}
	for _, op := range b.Ops {
		if op.Conn != 1 {
			t.Fatalf("span missing connection id: %+v", op)
		}
		if !op.Has(trace.EvShardLock) || !op.Has(trace.EvReplyFlush) {
			t.Fatalf("span missing front-end events: %+v", op.Events)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "kvserve-chrome-manual.json"))
	if err != nil {
		t.Fatalf("no chrome trace next to the dump: %v", err)
	}
	var ct trace.ChromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil || len(ct.TraceEvents) == 0 {
		t.Fatalf("chrome trace invalid (err %v, %d events)", err, len(ct.TraceEvents))
	}

	if got := call(t, s, "TRACE", "OFF"); got != "OK" {
		t.Fatalf("TRACE OFF = %v", got)
	}
	call(t, s, "SET", "k2", "v")
	status = string(call(t, s, "TRACE", "STATUS").([]byte))
	if tsv(t, status, "traced_ops") != "5" || tsv(t, status, "sample_every") != "0" {
		t.Fatalf("TRACE OFF still sampling:\n%s", status)
	}

	if got := call(t, s, "TRACE", "ON", "0"); !strings.HasPrefix(got.(error).Error(), "ERR") {
		t.Fatalf("TRACE ON 0 accepted: %v", got)
	}
	if got := call(t, s, "TRACE", "BOGUS"); !strings.HasPrefix(got.(error).Error(), "ERR") {
		t.Fatalf("TRACE BOGUS accepted: %v", got)
	}
}

func TestTraceDumpWithoutDirFails(t *testing.T) {
	s := newTestServer(t)
	err, ok := call(t, s, "TRACE", "DUMP").(error)
	if !ok || !strings.Contains(err.Error(), "-trace-dir") {
		t.Fatalf("TRACE DUMP without -trace-dir = %v", err)
	}
}

// TestServerTracedMatchesUntraced is the server-layer leg of the
// bit-for-bit invariant: an identical command stream with 100%
// sampling must leave the engines in exactly the state an untraced
// server reaches, while every span agrees with its op's outcome.
func TestServerTracedMatchesUntraced(t *testing.T) {
	plain := newTestServerShards(t, 2)
	traced := newTestServerShards(t, 2)
	if got := call(t, traced, "TRACE", "ON"); got != "OK" {
		t.Fatalf("TRACE ON = %v", got)
	}

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	run := func(s *server) []any {
		var out []any
		for round := 0; round < 20; round++ {
			for _, k := range keys {
				out = append(out, call(t, s, "SET", k, strings.Repeat("x", 64)))
				out = append(out, call(t, s, "GET", k))
				out = append(out, call(t, s, "EXISTS", k))
			}
			out = append(out, call(t, s, "DEL", keys[round%len(keys)]))
			out = append(out, call(t, s, "GET", "missing"))
		}
		return out
	}
	rp, rt := run(plain), run(traced)
	for i := range rp {
		bp, okP := rp[i].([]byte)
		bt, okT := rt[i].([]byte)
		if okP != okT || (okP && string(bp) != string(bt)) || (!okP && rp[i] != rt[i]) {
			t.Fatalf("reply %d diverged: %v vs %v", i, rp[i], rt[i])
		}
	}

	want, got := plain.sys.Cluster().Stats(), traced.sys.Cluster().Stats()
	if got.Agg != want.Agg {
		t.Fatalf("traced server diverged from untraced:\ntraced: %+v\nplain:  %+v", got.Agg, want.Agg)
	}

	const nOps = 20 * (5*3 + 2) // every op in run() is single-key
	if n := traced.tracer.Traced(); n != nOps {
		t.Fatalf("traced %d ops, want %d", n, nOps)
	}
	counts := traced.tracer.EventCounts()
	if counts["dispatch"] != nOps || counts["reply.flush"] != nOps || counts["shard.lock"] != nOps {
		t.Fatalf("front-end event counts off: %v", counts)
	}
	if counts["page.walk"] != got.Agg.Machine.PageWalks {
		t.Fatalf("page.walk events %d != machine walks %d", counts["page.walk"], got.Agg.Machine.PageWalks)
	}
}

// TestResetStatsClearsSlowlog: RESETSTATS must start a fresh slowlog
// window, not keep reporting the warmup phase's slowest commands.
func TestResetStatsClearsSlowlog(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "SET", "k", "v")
	call(t, s, "GET", "k")
	if n := call(t, s, "SLOWLOG", "LEN").(int64); n == 0 {
		t.Fatal("no slowlog entries before reset")
	}
	call(t, s, "RESETSTATS")
	// The RESETSTATS command itself is observed into the fresh window
	// (dispatch logs after execute), so at most that one entry remains.
	entries := call(t, s, "SLOWLOG", "GET", "0").([]any)
	for _, e := range entries {
		args := e.([]any)[3].([]any)
		if cmd := string(args[0].([]byte)); !strings.EqualFold(cmd, "resetstats") {
			t.Fatalf("pre-reset command %q survived RESETSTATS", cmd)
		}
	}
}

// TestWarmPhaseAnomaly: RESETSTATS arms the warm-phase trigger, so a
// traced op that still page-walks afterwards goes on the anomaly log.
func TestWarmPhaseAnomaly(t *testing.T) {
	s := newTestServer(t)
	call(t, s, "TRACE", "ON")
	call(t, s, "SET", "cold", strings.Repeat("v", 64))
	if s.tracer.Warm() {
		t.Fatal("warm before RESETSTATS")
	}
	call(t, s, "RESETSTATS")
	if !s.tracer.Warm() {
		t.Fatal("RESETSTATS did not arm the warm phase")
	}
	// Touch fresh keys until one misses the TLB hard enough to walk.
	for i := 0; i < 500 && s.tracer.AnomalyCount() == 0; i++ {
		call(t, s, "SET", "warmkey"+strings.Repeat("x", i%7)+string(rune('a'+i%26)), "v")
	}
	if s.tracer.AnomalyCount() == 0 {
		t.Skip("no page walk occurred in the warm phase (workload fits TLB)")
	}
	status := string(call(t, s, "TRACE", "STATUS").([]byte))
	if tsv(t, status, "warm_phase") != "true" {
		t.Fatalf("STATUS warm_phase wrong:\n%s", status)
	}
	call(t, s, "FLUSHALL")
	if s.tracer.Warm() {
		t.Fatal("FLUSHALL did not clear the warm phase")
	}
}
