// Telemetry wiring for kvserve: the metrics registry backing the
// Prometheus /metrics endpoint, the SLOWLOG ring, the MONITOR feed,
// and the per-command instrumentation the dispatch loop calls into.
//
// Everything on the record path is lock-free (atomic counters and
// per-shard histograms), and the engine is only ever *read* — modeled
// cycle counts with telemetry attached are bit-for-bit identical to a
// run without it.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"addrkv"
	"addrkv/internal/shard"
	"addrkv/internal/telemetry"
)

// knownCmds get dedicated counters and latency histograms; everything
// else lands in "other".
var knownCmds = []string{
	"get", "set", "del", "exists", "mget", "mset", "dbsize", "info",
	"scan", "range", "expire", "pexpire", "ttl", "pttl",
	"ping", "echo", "resetstats", "flushall", "slowlog", "monitor",
	"bgsave", "lastsave", "cluster", "asking", "quit", "other",
}

// serverTele bundles the server's telemetry state.
type serverTele struct {
	reg     *telemetry.Registry
	slowlog *telemetry.Slowlog
	feed    *telemetry.Feed

	// Real wall-clock command latency, nanosecond samples.
	latAll *telemetry.Histogram
	cmdLat map[string]*telemetry.Histogram
	// Command counts and protocol errors.
	cmdTotal map[string]*telemetry.Counter
	errTotal *telemetry.Counter
	// Per-shard serving telemetry: op counts and modeled per-op cycle
	// cost distributions (one histogram per shard — each serving
	// goroutine writes its own shard's cache lines).
	shardOps    []*telemetry.Counter
	shardCycles []*telemetry.Histogram
	// Addressing-path outcome counters fed from OpOutcome deltas.
	fastHits  *telemetry.Counter
	fastMiss  *telemetry.Counter
	keyMiss   *telemetry.Counter
	tlbMiss   *telemetry.Counter
	stbHits   *telemetry.Counter
	pageWalks *telemetry.Counter

	// Networking/pipelining telemetry: drained pipeline batches, the
	// commands inside them, their depth distribution, early flushes
	// forced by the write-buffer cap, multi-key batch commands and the
	// keys they carried, and connection accounting.
	pipeBatches *telemetry.Counter
	pipeCmds    *telemetry.Counter
	pipeDepth   *telemetry.Histogram
	earlyFlush  *telemetry.Counter
	batchCmds   *telemetry.Counter
	batchKeys   *telemetry.Counter
	shedConns   *telemetry.Counter
	activeConns atomic.Int64

	// Worker-runtime telemetry: requests coalesced per drain burst
	// (fed by the cluster's drain observer) plus scrape-time gauges
	// over the per-shard worker counters.
	drainSize *telemetry.Histogram

	// Scrape-time cache: one Report per /metrics scrape feeds all the
	// hit-rate/cycles-per-op gauges below.
	mu     sync.Mutex
	rep    addrkv.Report
	keys   []int
	wstats []shard.WorkerStats
}

// newServerTele builds the registry and registers every metric.
func newServerTele(sys *addrkv.System, slowlogCap int) *serverTele {
	shards := sys.Cluster().NumShards()
	t := &serverTele{
		reg:      telemetry.NewRegistry(),
		slowlog:  telemetry.NewSlowlog(slowlogCap),
		feed:     telemetry.NewFeed(),
		cmdLat:   map[string]*telemetry.Histogram{},
		cmdTotal: map[string]*telemetry.Counter{},
		keys:     make([]int, shards),
	}
	r := t.reg
	t.latAll = r.Histogram("addrkv_command_latency_seconds",
		"Real wall-clock latency of RESP commands.", 1e-9, telemetry.Labels{"cmd": "all"})
	for _, c := range knownCmds {
		t.cmdTotal[c] = r.Counter("addrkv_commands_total",
			"RESP commands dispatched, by command.", telemetry.Labels{"cmd": c})
		t.cmdLat[c] = r.Histogram("addrkv_command_latency_seconds",
			"Real wall-clock latency of RESP commands.", 1e-9, telemetry.Labels{"cmd": c})
	}
	t.errTotal = r.Counter("addrkv_command_errors_total",
		"Commands rejected with an error reply.", nil)
	t.fastHits = r.Counter("addrkv_fast_path_hits_total",
		"Ops served by the STLT/SLB fast path.", nil)
	t.fastMiss = r.Counter("addrkv_fast_path_misses_total",
		"Ops that fell back to the full indexing structure.", nil)
	t.keyMiss = r.Counter("addrkv_key_misses_total",
		"GET/EXISTS of absent keys.", nil)
	t.tlbMiss = r.Counter("addrkv_tlb_misses_total",
		"Modeled full TLB misses during served ops.", nil)
	t.stbHits = r.Counter("addrkv_stb_hits_total",
		"Modeled STB hits during served ops.", nil)
	t.pageWalks = r.Counter("addrkv_page_walks_total",
		"Modeled page-table walks during served ops.", nil)
	t.pipeBatches = r.Counter("addrkv_pipeline_batches_total",
		"Pipeline drains: bursts of commands read before one flush.", nil)
	t.pipeCmds = r.Counter("addrkv_pipelined_commands_total",
		"Commands arriving inside pipeline drains.", nil)
	t.pipeDepth = r.Histogram("addrkv_pipeline_depth",
		"Commands per drained pipeline batch.", 1, nil)
	t.earlyFlush = r.Counter("addrkv_early_flushes_total",
		"Flushes forced mid-pipeline by the write-buffer cap.", nil)
	t.batchCmds = r.Counter("addrkv_batch_commands_total",
		"Multi-key commands (MGET/MSET/DEL) executed via shard batches.", nil)
	t.batchKeys = r.Counter("addrkv_batched_keys_total",
		"Keys carried by multi-key commands.", nil)
	t.shedConns = r.Counter("addrkv_shed_connections_total",
		"Connections refused at the -maxconns ceiling.", nil)
	t.drainSize = r.Histogram("addrkv_drain_size",
		"Requests coalesced per worker drain burst (cross-connection batching).", 1, nil)
	r.GaugeFunc("addrkv_active_connections", "Currently served connections.", nil,
		func() float64 { return float64(t.activeConns.Load()) })
	for i := 0; i < shards; i++ {
		lbl := telemetry.Labels{"shard": strconv.Itoa(i)}
		t.shardOps = append(t.shardOps, r.Counter("addrkv_shard_ops_total",
			"Key ops served, by home shard.", lbl))
		t.shardCycles = append(t.shardCycles, r.Histogram("addrkv_op_cycles",
			"Modeled cycle cost per engine op, by home shard.", 1, lbl))
	}

	// Engine-derived gauges: one Report snapshot per scrape (the
	// OnScrape hook) feeds them all.
	r.OnScrape(func() {
		rep := sys.Report()
		keys := make([]int, shards)
		for i := 0; i < shards; i++ {
			keys[i] = sys.Cluster().ShardLen(i)
		}
		ws := sys.Cluster().RuntimeStats()
		t.mu.Lock()
		t.rep, t.keys, t.wstats = rep, keys, ws
		t.mu.Unlock()
	})
	repGauge := func(name, help string, f func(addrkv.Report) float64) {
		r.GaugeFunc(name, help, nil, func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return f(t.rep)
		})
	}
	repGauge("addrkv_engine_ops", "Engine ops since RESETSTATS.",
		func(rep addrkv.Report) float64 { return float64(rep.Ops) })
	repGauge("addrkv_cycles_per_op", "Modeled mean cycles per op since RESETSTATS.",
		func(rep addrkv.Report) float64 { return rep.CyclesPerOp })
	repGauge("addrkv_fast_path_hit_rate", "Fraction of GETs served by the STLT/SLB fast path.",
		func(rep addrkv.Report) float64 { return rep.FastPathHitRate })
	repGauge("addrkv_table_miss_rate", "STLT (or SLB) table miss ratio.",
		func(rep addrkv.Report) float64 { return rep.TableMissRate })
	repGauge("addrkv_tlb_misses_per_op", "Modeled full TLB misses per op.",
		func(rep addrkv.Report) float64 { return rep.TLBMissesPerOp })
	repGauge("addrkv_page_walks_per_op", "Modeled page walks per op.",
		func(rep addrkv.Report) float64 { return rep.PageWalksPerOp })
	repGauge("addrkv_llc_misses_per_op", "Modeled LLC misses (DRAM demand) per op.",
		func(rep addrkv.Report) float64 { return rep.CacheMissesPerOp })
	repGauge("addrkv_modeled_ops_per_kcycle", "Ops per thousand modeled wall-clock cycles.",
		func(rep addrkv.Report) float64 { return 1000 * rep.ModeledThroughput() })
	repGauge("addrkv_scans_total", "SCAN/RANGE ops since RESETSTATS.",
		func(rep addrkv.Report) float64 { return float64(rep.Scans) })
	repGauge("addrkv_expired_keys_total", "Keys reaped by TTL expiry (lazy + sweep) since RESETSTATS.",
		func(rep addrkv.Report) float64 { return float64(rep.Expired) })
	repGauge("addrkv_evicted_keys_total", "Keys evicted by the maxmemory LFU policy since RESETSTATS.",
		func(rep addrkv.Report) float64 { return float64(rep.Evicted) })
	r.GaugeFunc("addrkv_expires_armed", "Keys currently carrying a TTL deadline.", nil,
		func() float64 { return float64(sys.ExpiresArmed()) })
	r.GaugeFunc("addrkv_used_bytes", "Record bytes tracked by the eviction policy (0 without -maxmemory).", nil,
		func() float64 { return float64(sys.UsedBytes()) })
	for i := 0; i < shards; i++ {
		i := i
		lbl := telemetry.Labels{"shard": strconv.Itoa(i)}
		r.GaugeFunc("addrkv_shard_fast_hit_rate",
			"Per-shard fast-path hit rate.", lbl, func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				if i >= len(t.rep.PerShard) || t.rep.PerShard[i].Gets == 0 {
					return 0
				}
				st := t.rep.PerShard[i]
				return float64(st.FastHits) / float64(st.Gets)
			})
		r.GaugeFunc("addrkv_shard_cycles_per_op",
			"Per-shard modeled cycles per op.", lbl, func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				if i >= len(t.rep.PerShard) {
					return 0
				}
				return t.rep.PerShard[i].CyclesPerOp()
			})
		r.GaugeFunc("addrkv_shard_keys",
			"Keys stored, by shard.", lbl, func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return float64(t.keys[i])
			})
	}
	for i := 0; i < shards; i++ {
		i := i
		r.GaugeFunc("addrkv_queue_depth",
			"Requests queued in the shard worker's ring (0 with -dispatch mutex).",
			telemetry.Labels{"shard": strconv.Itoa(i)}, func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				if i >= len(t.wstats) {
					return 0
				}
				return float64(t.wstats[i].Depth)
			})
	}
	workerGauge := func(name, help string, f func(shard.WorkerStats) uint64) {
		r.GaugeFunc(name, help, nil, func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			var sum uint64
			for _, st := range t.wstats {
				sum += f(st)
			}
			return float64(sum)
		})
	}
	workerGauge("addrkv_worker_drains_total", "Worker drain bursts across all shards.",
		func(st shard.WorkerStats) uint64 { return st.Drains })
	workerGauge("addrkv_worker_drained_ops_total", "Requests completed by worker drains.",
		func(st shard.WorkerStats) uint64 { return st.DrainedOps })
	workerGauge("addrkv_queue_full_spins_total", "Producer yields on a full worker ring.",
		func(st shard.WorkerStats) uint64 { return st.FullSpins })
	r.GaugeFunc("addrkv_slowlog_len", "Entries in the slowlog.", nil,
		func() float64 { return float64(t.slowlog.Len()) })
	r.GaugeFunc("addrkv_monitor_clients", "Attached MONITOR clients.", nil,
		func() float64 { return float64(t.feed.Subscribers()) })
	r.GaugeFunc("addrkv_monitor_dropped_total", "MONITOR lines dropped on slow clients.", nil,
		func() float64 { return float64(t.feed.Dropped()) })
	return t
}

// observeCmd records one dispatched command: wall latency, command
// counters, per-shard cycle cost, outcome counters, and a slowlog
// offer. oc is nil for commands that never reached an engine. For
// multi-key commands bo carries the exact per-shard batch deltas (oc
// is then the merged view: total cycles, home shard or -1); each
// shard's op counter advances by its share of the batch, and its
// cycle histogram records one sample per shard sub-batch.
func (t *serverTele) observeCmd(cmd string, args [][]byte, oc *addrkv.OpOutcome, bo *addrkv.BatchOutcome, dur time.Duration, isErr bool) {
	key := cmd
	if _, ok := t.cmdTotal[key]; !ok {
		key = "other"
	}
	t.cmdTotal[key].Inc()
	ns := uint64(dur.Nanoseconds())
	t.latAll.Observe(ns)
	t.cmdLat[key].Observe(ns)
	if isErr {
		t.errTotal.Inc()
	}
	shard := -1
	var cycles uint64
	isBatch := bo != nil && len(bo.PerShard) > 0
	isOp := !isBatch && oc != nil && oc.Shard >= 0 && oc.Shard < len(t.shardOps)
	switch {
	case isBatch:
		shard, cycles = oc.Shard, oc.Cycles
		for _, sb := range bo.PerShard {
			if sb.Shard < 0 || sb.Shard >= len(t.shardOps) {
				continue
			}
			t.shardOps[sb.Shard].Add(uint64(sb.Ops))
			t.shardCycles[sb.Shard].Observe(sb.Cycles)
			t.tlbMiss.Add(sb.TLBMisses)
			t.stbHits.Add(sb.STBHits)
			t.pageWalks.Add(sb.PageWalks)
			if cmd == "mget" {
				t.fastHits.Add(sb.FastHits)
				t.fastMiss.Add(uint64(sb.Ops) - sb.FastHits)
			}
			t.keyMiss.Add(sb.Misses)
		}
		t.batchCmds.Inc()
		t.batchKeys.Add(uint64(bo.TotalOps()))
	case isOp:
		shard, cycles = oc.Shard, oc.Cycles
		t.shardOps[oc.Shard].Inc()
		t.shardCycles[oc.Shard].Observe(oc.Cycles)
		t.tlbMiss.Add(oc.TLBMisses)
		t.stbHits.Add(oc.STBHits)
		t.pageWalks.Add(oc.PageWalks)
		if cmd == "get" || cmd == "exists" {
			if oc.FastHit {
				t.fastHits.Inc()
			} else {
				t.fastMiss.Inc()
			}
		}
		if oc.Missed {
			t.keyMiss.Inc()
		}
	}
	// Building a slowlog entry formats arguments and the outcome
	// breakdown (both allocate); skip the construction entirely for
	// commands under the log's floor, keeping the steady-state record
	// path allocation-free.
	if !t.slowlog.Qualifies(dur) {
		return
	}
	detail := ""
	switch {
	case isBatch:
		detail = fmt.Sprintf("shards=%d keys=%d fast_hits=%d misses=%d tlb_misses=%d stb_hits=%d page_walks=%d",
			len(bo.PerShard), bo.TotalOps(), batchFastHits(bo), batchMisses(bo),
			oc.TLBMisses, oc.STBHits, oc.PageWalks)
	case isOp:
		detail = fmt.Sprintf("fast_hit=%v tlb_misses=%d stb_hits=%d page_walks=%d",
			oc.FastHit, oc.TLBMisses, oc.STBHits, oc.PageWalks)
	}
	t.slowlog.Note(telemetry.SlowlogEntry{
		UnixMicro: time.Now().UnixMicro(),
		Duration:  dur,
		Args:      formatArgs(args),
		Shard:     shard,
		Cycles:    cycles,
		Detail:    detail,
	})
}

// batchFastHits and batchMisses sum outcome fields over a batch.
func batchFastHits(bo *addrkv.BatchOutcome) uint64 {
	var n uint64
	for _, sb := range bo.PerShard {
		n += sb.FastHits
	}
	return n
}

func batchMisses(bo *addrkv.BatchOutcome) uint64 {
	var n uint64
	for _, sb := range bo.PerShard {
		n += sb.Misses
	}
	return n
}

// formatArgs renders a command for the slowlog / monitor feed,
// truncating long values and long argument lists.
func formatArgs(args [][]byte) []string {
	const maxArgs, maxLen = 8, 48
	out := make([]string, 0, min(len(args), maxArgs+1))
	for i, a := range args {
		if i == maxArgs {
			out = append(out, fmt.Sprintf("... (%d more arguments)", len(args)-maxArgs))
			break
		}
		if len(a) > maxLen {
			out = append(out, fmt.Sprintf("%s... (%d bytes)", a[:maxLen], len(a)))
		} else {
			out = append(out, string(a))
		}
	}
	return out
}

// monitorLine formats one command for the MONITOR feed, Redis-style.
func monitorLine(args [][]byte, shard int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.6f [shard %d]", float64(time.Now().UnixMicro())/1e6, shard)
	for _, a := range formatArgs(args) {
		fmt.Fprintf(&b, " %q", a)
	}
	return b.String()
}

// latencySnapshot merges per-command wall latency into one snapshot.
func (t *serverTele) latencySnapshot() telemetry.HistSnapshot {
	return t.latAll.Snapshot()
}

// cycleSnapshot merges the per-shard op-cycle histograms.
func (t *serverTele) cycleSnapshot() telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	for _, h := range t.shardCycles {
		s.Merge(h.Snapshot())
	}
	return s
}

// resetWindow clears the stats-window histograms (RESETSTATS) and the
// slowlog: the slowest ops of the warmup phase are exactly what a
// fresh measurement window must not keep reporting. Counters stay
// monotonic for Prometheus rate() queries.
func (t *serverTele) resetWindow() {
	t.latAll.Reset()
	for _, h := range t.cmdLat {
		h.Reset()
	}
	for _, h := range t.shardCycles {
		h.Reset()
	}
	t.pipeDepth.Reset()
	t.slowlog.Reset()
}

// registerTraceMetrics exposes the span tracer's state on /metrics.
// The gauges read s.tracer at scrape time, so main() swapping in the
// flag-configured tracer after newServer needs no re-registration.
func (t *serverTele) registerTraceMetrics(s *server) {
	t.reg.GaugeFunc("addrkv_trace_sample_every", "1-in-N trace sampling rate (0 = off).", nil,
		func() float64 { return float64(s.tracer.Sample()) })
	t.reg.GaugeFunc("addrkv_traced_ops_total", "Ops completed with a trace span attached.", nil,
		func() float64 { return float64(s.tracer.Traced()) })
	t.reg.GaugeFunc("addrkv_trace_anomalies_total", "Flight-recorder anomaly trigger firings.", nil,
		func() float64 { return float64(s.tracer.AnomalyCount()) })
	t.reg.GaugeFunc("addrkv_trace_auto_dumps_total", "Auto-dumps requested by anomaly triggers.", nil,
		func() float64 { return float64(s.tracer.Dumps()) })
}

// startMetricsServer serves /metrics (Prometheus text), /snapshot.json
// (a telemetry.Snapshot of the current window), and net/http/pprof
// under /debug/pprof/ on addr. It returns the bound listener address
// (addr may be ":0").
func startMetricsServer(addr string, s *server) (*http.Server, net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.tele.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.benchSnapshot()
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(b, '\n'))
	})
	if s.clus != nil {
		mux.HandleFunc("/cluster/metrics", s.clusterMetricsHandler)
		mux.HandleFunc("/cluster/snapshot.json", s.clusterSnapshotHandler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// benchSnapshot renders the current stats window as a JSON snapshot
// (the /snapshot.json payload).
func (s *server) benchSnapshot() *telemetry.Snapshot {
	s.statsMu.RLock()
	rep := s.sys.Report()
	s.statsMu.RUnlock()
	return &telemetry.Snapshot{
		Name:     "kvserve",
		Kind:     "server",
		UnixTime: time.Now().Unix(),
		Params: map[string]any{
			"shards": rep.Shards,
		},
		Runs: []telemetry.RunRecord{reportRecord("live", rep)},
		Latency: map[string]telemetry.Quantiles{
			"wall_ns":   telemetry.QuantilesOf(s.tele.latencySnapshot()),
			"op_cycles": telemetry.QuantilesOf(s.tele.cycleSnapshot()),
		},
	}
}

// reportRecord converts an addrkv.Report into a RunRecord.
func reportRecord(spec string, rep addrkv.Report) telemetry.RunRecord {
	return telemetry.RunRecord{
		Spec:           spec,
		Ops:            rep.Ops,
		Cycles:         rep.Cycles,
		CyclesPerOp:    rep.CyclesPerOp,
		FastPathHits:   rep.Stats.FastHits,
		TableMissRate:  rep.TableMissRate,
		TLBMissesPerOp: rep.TLBMissesPerOp,
		PageWalksPerOp: rep.PageWalksPerOp,
		LLCMissesPerOp: rep.CacheMissesPerOp,
	}
}
