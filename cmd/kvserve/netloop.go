// Event-loop networking front-end (-netloop): N reader shards
// multiplex every client connection instead of dedicating a goroutine
// per connection. Each shard owns a poller (epoll on linux, a
// portable per-connection-reader fallback elsewhere or via
// -netloop-poller), drains readable sockets into per-connection
// resp.Streams, and dispatches parsed bursts through the SAME
// runBurstCmds / flushPending machinery the goroutine path uses — so
// replies and modeled statistics are bit-for-bit identical by
// construction, pinned by the differentials in netloop_test.go.
//
// The win LaKe attributes to a multiplexed ingress is preserved here
// as cross-connection batching: one wakeup processes every readable
// connection in two phases — phase 1 parses and enqueues each
// connection's burst onto the per-shard worker rings, phase 2 awaits
// and flushes replies — so a single worker drain covers async ops
// from MANY connections, where the goroutine path only batches within
// one connection's pipeline.
//
// Semantics carried over from the goroutine path:
//   - -pipeline bounds commands per burst; a connection whose burst
//     hit the cap is re-processed in the same wakeup (no new reads)
//     until its buffer holds no complete command.
//   - -writebuf forces early flushes (inside runBurstCmds/flushPending,
//     shared code).
//   - -maxconns sheds at accept, before a shard is ever chosen.
//   - -idle-timeout means "no bytes arrived for the timeout": epoll
//     shards reap by last-read stamp, the portable poller by per-read
//     deadlines — both match the blocking path's idleConn semantics,
//     so a trickling mid-burst client is never reaped.
//   - MONITOR and malformed input detach/close exactly like serve().
//
// A write to a stalled peer cannot wedge a whole shard: every
// connection gets a generous write deadline per wakeup and is dropped
// as a write stall when it expires (EPOLLOUT-driven spill buffers are
// future work; the deadline bounds the damage until then).
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
)

const (
	// loopReadSize is the read segment requested from the stream per
	// socket read.
	loopReadSize = 16 << 10
	// loopReadCap bounds bytes drained from one connection per wakeup
	// (fairness across the shard's connections; level-triggered epoll
	// re-arms for the rest).
	loopReadCap = 256 << 10
	// loopWriteTimeout is the per-wakeup write deadline: a peer that
	// cannot absorb its replies for this long is dropped instead of
	// wedging the shard.
	loopWriteTimeout = 60 * time.Second
	// loopRegBacklog is the registration channel depth per shard.
	loopRegBacklog = 256
	// loopEventBacklog is the portable poller's event channel depth.
	loopEventBacklog = 1024
)

// loopState is the front-end: the reader shards and their assignment
// counter.
type loopState struct {
	s      *server
	shards []*readerShard
	poller string // "epoll" or "portable"
	next   atomic.Uint64
	wg     sync.WaitGroup
}

// loopConn is one multiplexed connection's state.
type loopConn struct {
	conn net.Conn
	sh   *readerShard
	st   *resp.Stream
	w    *resp.Writer
	cs   *connState

	// epoll-path state: the raw fd, the control handle, and the stored
	// read callback (allocated once, not per read).
	fd      int32
	rc      syscall.RawConn
	readFn  func(uintptr) bool
	readN   int
	readErr error

	lastActive time.Time // epoll idle reap stamp (last byte arrival)

	// Portable-path state: the reader goroutine's resume signal and
	// exit flag (also set on close, so a woken reader exits).
	procDone      chan struct{}
	detached      atomic.Bool
	readerWaiting bool

	// Per-wakeup dispatch outcome, reset each round.
	rerr   error // read/parse error: close once buffered commands drain
	werr   error // write error: close without a final flush
	quit   bool
	mon    bool
	full   bool // burst hit -pipeline: more commands may be buffered
	closed bool
}

// readerShard is one event loop: a set of connections, their poller,
// and the wakeup-processing scratch state.
type readerShard struct {
	s    *server
	loop *loopState
	id   int

	regCh  chan *loopConn
	stopCh chan struct{}

	// epoll-path state (populated by epollInit on linux).
	ep       epollState
	epConns  map[int32]*loopConn
	lastReap time.Time

	// Portable-path state.
	eventCh chan loopEvent
	wakeCh  chan struct{}
	pConns  map[*loopConn]struct{}

	// Wakeup scratch, reused across wakeups: the conns with fresh
	// bytes this wakeup, and the two round buffers of the burst
	// machine.
	batch  []*loopConn
	ready  []*loopConn
	readyB []*loopConn

	// Telemetry, read cross-thread by INFO and /metrics.
	nconns       atomic.Int64
	wakeups      atomic.Uint64
	connEvents   atomic.Uint64
	bytesRead    atomic.Uint64
	rounds       atomic.Uint64
	idleReaped   atomic.Uint64
	writeStalls  atomic.Uint64
	blockedWaits atomic.Uint64
}

// loopEvent is the portable poller's handoff: a connection whose
// reader goroutine filled its stream (or hit err).
type loopEvent struct {
	lc  *loopConn
	err error
}

// startNetloop brings the reader shards up. pollerChoice is
// auto|epoll|portable; auto prefers epoll where the platform has it
// AND at least two Ps are available. The raw epoll shard blocks its
// OS thread outside the runtime's knowledge, so a spare P must be
// free to keep the runtime netpoller (client/worker wakeups) running;
// at GOMAXPROCS=1 that P is held hostage in the syscall until sysmon
// retakes it, turning every quiet-socket wakeup into 100µs+ of
// scheduler-monitor latency. The portable poller parks in
// runtime-native reads, so below two Ps it is strictly better.
func (s *server) startNetloop(readers int, pollerChoice string) error {
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0) / 2
		if readers < 1 {
			readers = 1
		}
		if readers > 8 {
			readers = 8
		}
	}
	poller := pollerChoice
	if poller == "" || poller == "auto" {
		poller = "portable"
		if epollSupported && runtime.GOMAXPROCS(0) > 1 {
			poller = "epoll"
		}
	}
	switch poller {
	case "portable":
	case "epoll":
		if !epollSupported {
			return fmt.Errorf("netloop: epoll poller unavailable on %s (use -netloop-poller portable)", runtime.GOOS)
		}
	default:
		return fmt.Errorf("netloop: unknown poller %q (auto|epoll|portable)", pollerChoice)
	}
	ls := &loopState{s: s, poller: poller}
	for i := 0; i < readers; i++ {
		sh := &readerShard{
			s:      s,
			loop:   ls,
			id:     i,
			regCh:  make(chan *loopConn, loopRegBacklog),
			stopCh: make(chan struct{}),
		}
		if poller == "epoll" {
			sh.epConns = map[int32]*loopConn{}
			if err := sh.epollInit(); err != nil {
				for _, prev := range ls.shards {
					prev.epollClose()
				}
				return fmt.Errorf("netloop: %w", err)
			}
		} else {
			sh.eventCh = make(chan loopEvent, loopEventBacklog)
			sh.wakeCh = make(chan struct{}, 1)
			sh.pConns = map[*loopConn]struct{}{}
		}
		ls.shards = append(ls.shards, sh)
	}
	for _, sh := range ls.shards {
		ls.wg.Add(1)
		if poller == "epoll" {
			go sh.runEpoll()
		} else {
			go sh.runPortable()
		}
	}
	s.loop = ls
	s.tele.registerNetloopMetrics(s)
	return nil
}

// wakeNetloop kicks every shard so loops blocked in their poller
// observe s.closing (the signal handler calls it next to nudgeConns).
func (s *server) wakeNetloop() {
	if s.loop == nil {
		return
	}
	for _, sh := range s.loop.shards {
		sh.wake()
	}
}

// stopNetloop joins the shard loops (and the portable poller's reader
// goroutines); callers have already drained the connections.
func (s *server) stopNetloop() {
	if s.loop == nil {
		return
	}
	for _, sh := range s.loop.shards {
		close(sh.stopCh)
		sh.wake()
	}
	s.loop.wg.Wait()
	if s.loop.poller == "epoll" {
		for _, sh := range s.loop.shards {
			sh.epollClose()
		}
	}
}

// wake kicks one shard's poller.
func (sh *readerShard) wake() {
	if sh.wakeCh != nil {
		select {
		case sh.wakeCh <- struct{}{}:
		default:
		}
		return
	}
	sh.epollWake()
}

// add assigns a freshly accepted (and tracked) connection to a reader
// shard round-robin and hands it over.
func (ls *loopState) add(conn net.Conn) {
	sh := ls.shards[ls.next.Add(1)%uint64(len(ls.shards))]
	lc := &loopConn{
		conn: conn,
		sh:   sh,
		st:   resp.NewStream(),
		w:    resp.NewWriter(conn),
		cs:   &connState{id: ls.s.connSeq.Add(1), netloop: true, reader: sh.id},
	}
	if ls.poller == "portable" {
		lc.procDone = make(chan struct{}, 1)
	}
	sh.regCh <- lc
	sh.wake()
}

// ---------------------------------------------------------------------
// Shared burst machine (both pollers).

// processReady runs the two-phase burst machine over sh.batch: every
// round, phase 1 parses one burst per connection and dispatches it
// (worker mode enqueues async ops from ALL connections before anyone
// waits — the cross-connection batching), then phase 2 awaits pending
// replies and flushes each connection once. Connections whose burst
// hit the -pipeline cap re-enter the next round (their buffer may
// hold more complete commands; no new reads happen between rounds, so
// rounds are bounded by buffered bytes).
func (sh *readerShard) processReady() {
	s := sh.s
	sh.ready = append(sh.ready[:0], sh.batch...)
	round := sh.ready
	spare := sh.readyB
	for len(round) > 0 {
		sh.rounds.Add(1)
		for _, lc := range round {
			lc.quit, lc.mon, lc.full, lc.werr = false, false, false, nil
			cmds, perr := lc.st.NextBurst(s.net.maxPipeline)
			if perr != nil && lc.rerr == nil {
				lc.rerr = perr
			}
			lc.full = perr == nil && len(cmds) == s.net.maxPipeline
			lc.quit, lc.mon, lc.werr = s.runBurstCmds(lc.w, lc.cs, cmds)
		}
		next := spare[:0]
		for _, lc := range round {
			if sh.finishBurst(lc) && lc.full {
				next = append(next, lc)
			}
		}
		spare = round
		round = next
	}
	sh.readyB = spare
}

// finishBurst is phase 2 for one connection: await pending worker
// replies, flush, and act on quit/monitor/errors. It reports whether
// the connection is still attached to the loop.
func (sh *readerShard) finishBurst(lc *loopConn) bool {
	s := sh.s
	if s.workers && lc.werr == nil {
		lc.werr = s.flushPending(lc.w, lc.cs)
	}
	if lc.werr != nil {
		// Same as serve(): a write error closes without a final flush.
		if isTimeout(lc.werr) {
			sh.writeStalls.Add(1)
		}
		sh.closeConn(lc)
		return false
	}
	if err := lc.w.Flush(); err != nil || lc.quit || s.closing.Load() {
		if err != nil && isTimeout(err) {
			sh.writeStalls.Add(1)
		}
		sh.closeConn(lc)
		return false
	}
	if lc.mon {
		sh.detachMonitor(lc)
		return false
	}
	if lc.rerr != nil && !lc.full {
		// Every buffered complete command has been answered (the
		// blocking path behaves the same way: a read error surfaces
		// only once the buffer runs dry). The partial tail can never
		// complete — close.
		if !errors.Is(lc.rerr, io.EOF) && !isTimeout(lc.rerr) && !errors.Is(lc.rerr, net.ErrClosed) {
			log.Printf("client error: %v", lc.rerr)
		}
		sh.closeConn(lc)
		return false
	}
	return true
}

// closeConn detaches a connection from the shard and closes it. Safe
// to call twice (shutdown paths overlap).
func (sh *readerShard) closeConn(lc *loopConn) {
	if lc.closed {
		return
	}
	lc.closed = true
	lc.detached.Store(true) // portable reader goroutine: exit on wake
	if sh.epConns != nil {
		sh.epollDel(lc)
		delete(sh.epConns, lc.fd)
	} else {
		delete(sh.pConns, lc)
	}
	sh.nconns.Add(-1)
	_ = lc.conn.Close()
	sh.s.untrack(lc.conn)
}

// detachMonitor hands a connection that issued MONITOR to a dedicated
// goroutine running the same monitorLoop as the blocking path: the
// loop stops polling the socket, and the unparsed stream tail is
// replayed ahead of the live connection so a pipelined
// "MONITOR\r\nQUIT\r\n" still detaches immediately.
func (sh *readerShard) detachMonitor(lc *loopConn) {
	lc.detached.Store(true)
	if sh.epConns != nil {
		sh.epollDel(lc)
		delete(sh.epConns, lc.fd)
	} else {
		delete(sh.pConns, lc)
	}
	sh.nconns.Add(-1)
	s := sh.s
	leftover := lc.st.TakeLeftover()
	go func() {
		var src io.Reader = lc.conn
		if s.net.idleTimeout > 0 {
			src = &idleConn{conn: lc.conn, s: s}
		}
		if len(leftover) > 0 {
			src = io.MultiReader(bytes.NewReader(leftover), src)
		}
		s.monitorLoop(resp.NewReader(src), lc.w)
		_ = lc.conn.Close()
		s.untrack(lc.conn)
	}()
}

// ---------------------------------------------------------------------
// Portable poller: one blocking-reader goroutine per connection hands
// filled streams to the shard loop over a channel. Keeps goroutine-
// per-connection reads but centralizes dispatch, so cross-connection
// batching and the shared burst machine still apply; epoll-less
// platforms and the -netloop-poller portable test leg use it.

func (sh *readerShard) runPortable() {
	defer sh.loop.wg.Done()
	for {
		sh.batch = sh.batch[:0]
		select {
		case lc := <-sh.regCh:
			sh.portableAdd(lc)
		case ev := <-sh.eventCh:
			sh.collect(ev)
		case <-sh.wakeCh:
		case <-sh.stopCh:
			sh.closeAllPortable()
			return
		}
		// Greedy drain: everything that arrived while we slept joins
		// this wakeup's batch (the cross-connection window).
		for drained := false; !drained; {
			select {
			case lc := <-sh.regCh:
				sh.portableAdd(lc)
			case ev := <-sh.eventCh:
				sh.collect(ev)
			default:
				drained = true
			}
		}
		if sh.s.closing.Load() {
			sh.closeAllPortable()
			return
		}
		if len(sh.batch) == 0 {
			continue
		}
		sh.wakeups.Add(1)
		sh.connEvents.Add(uint64(len(sh.batch)))
		for _, lc := range sh.batch {
			_ = lc.conn.SetWriteDeadline(time.Now().Add(loopWriteTimeout))
		}
		sh.processReady()
		for _, lc := range sh.batch {
			if lc.readerWaiting {
				lc.readerWaiting = false
				lc.procDone <- struct{}{} // cap 1, reader is parked on it
			}
		}
	}
}

func (sh *readerShard) portableAdd(lc *loopConn) {
	sh.pConns[lc] = struct{}{}
	sh.nconns.Add(1)
	sh.loop.wg.Add(1)
	go sh.portableReader(lc)
}

func (sh *readerShard) collect(ev loopEvent) {
	lc := ev.lc
	if lc.closed {
		return
	}
	lc.readerWaiting = ev.err == nil
	if ev.err != nil && lc.rerr == nil {
		lc.rerr = ev.err
		if isTimeout(ev.err) {
			sh.idleReaped.Add(1)
		}
	}
	sh.batch = append(sh.batch, lc)
}

// portableReader is the per-connection fill goroutine: read into the
// stream, hand the connection to the loop, park until the loop is
// done with the stream, repeat. Stream accesses are ordered by the
// event/procDone channel pair, so loop and reader never touch it
// concurrently.
func (sh *readerShard) portableReader(lc *loopConn) {
	defer sh.loop.wg.Done()
	s := sh.s
	for {
		if lc.detached.Load() {
			return
		}
		dst := lc.st.Writable(loopReadSize)
		if s.net.idleTimeout > 0 {
			_ = lc.conn.SetReadDeadline(time.Now().Add(s.net.idleTimeout))
			if s.closing.Load() {
				_ = lc.conn.SetReadDeadline(time.Now())
			}
		}
		n, err := lc.conn.Read(dst)
		if n > 0 {
			lc.st.Advance(n)
			sh.bytesRead.Add(uint64(n))
		}
		select {
		case sh.eventCh <- loopEvent{lc: lc, err: err}:
		case <-sh.stopCh:
			return
		}
		if err != nil {
			return
		}
		select {
		case <-lc.procDone:
		case <-sh.stopCh:
			return
		}
	}
}

func (sh *readerShard) closeAllPortable() {
	for lc := range sh.pConns {
		sh.closeConn(lc)
	}
}

// ---------------------------------------------------------------------
// INFO and /metrics surfacing.

// netloopInfo appends the event-loop lines to INFO's "# networking"
// section.
func (s *server) netloopInfo(add func(format string, args ...any)) {
	if s.loop == nil {
		add("netloop:off\r\n")
		return
	}
	add("netloop:on\r\n")
	add("netloop_readers:%d\r\n", len(s.loop.shards))
	add("netloop_poller:%s\r\n", s.loop.poller)
	var conns int64
	var wakeups, events, bytesRead, rounds, idle, stalls, blocked uint64
	for _, sh := range s.loop.shards {
		conns += sh.nconns.Load()
		wakeups += sh.wakeups.Load()
		events += sh.connEvents.Load()
		bytesRead += sh.bytesRead.Load()
		rounds += sh.rounds.Load()
		idle += sh.idleReaped.Load()
		stalls += sh.writeStalls.Load()
		blocked += sh.blockedWaits.Load()
	}
	add("netloop_conns:%d\r\n", conns)
	add("loop_wakeups:%d\r\n", wakeups)
	add("loop_conn_events:%d\r\n", events)
	add("loop_bytes_read:%d\r\n", bytesRead)
	add("loop_rounds:%d\r\n", rounds)
	add("loop_idle_reaped:%d\r\n", idle)
	add("loop_write_stalls:%d\r\n", stalls)
	add("loop_blocked_waits:%d\r\n", blocked)
}

// registerNetloopMetrics exposes per-reader-shard loop counters on
// /metrics (called once from startNetloop).
func (t *serverTele) registerNetloopMetrics(s *server) {
	for _, sh := range s.loop.shards {
		sh := sh
		lbl := telemetry.Labels{"reader": strconv.Itoa(sh.id)}
		t.reg.GaugeFunc("addrkv_netloop_conns", "Connections owned by the reader shard.", lbl,
			func() float64 { return float64(sh.nconns.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_wakeups_total", "Poller wakeups processed by the reader shard.", lbl,
			func() float64 { return float64(sh.wakeups.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_conn_events_total", "Readable-connection events processed.", lbl,
			func() float64 { return float64(sh.connEvents.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_bytes_read_total", "Bytes drained from sockets by the reader shard.", lbl,
			func() float64 { return float64(sh.bytesRead.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_rounds_total", "Burst-machine rounds run (>= wakeups; extra rounds drain deep pipelines).", lbl,
			func() float64 { return float64(sh.rounds.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_idle_reaped_total", "Connections reaped by the idle timeout.", lbl,
			func() float64 { return float64(sh.idleReaped.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_write_stalls_total", "Connections dropped on an expired write deadline.", lbl,
			func() float64 { return float64(sh.writeStalls.Load()) })
		t.reg.GaugeFunc("addrkv_netloop_blocked_waits_total", "Epoll waits that exhausted the spin budget and blocked the OS thread.", lbl,
			func() float64 { return float64(sh.blockedWaits.Load()) })
	}
}
