//go:build linux

// Linux epoll poller for the netloop front-end, on stdlib syscall
// only (no cgo, no external modules). Level-triggered EPOLLIN: a
// connection whose buffer still holds bytes after the per-wakeup read
// cap simply re-arms. The wake pipe is the cross-goroutine kick —
// registrations and shutdown write one byte to it.
//
// Reads go through syscall.RawConn.Read with a callback that returns
// true immediately (read exactly once, never park in the runtime
// poller): the RawConn keeps the runtime's fd reference alive across
// the read, so a concurrent force-close during shutdown cannot recycle
// the fd under us. The callback is allocated once per connection and
// stored, keeping the per-read path allocation-free.

package main

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"syscall"
	"time"
)

// epollSupported gates the "auto" poller choice.
const epollSupported = true

// epollState is the per-shard epoll handle plus its wake pipe.
type epollState struct {
	fd      int
	wakeRd  int
	wakeWr  int
	events  []syscall.EpollEvent
	wakeBuf [64]byte
}

func (sh *readerShard) epollInit() error {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return fmt.Errorf("epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return fmt.Errorf("pipe2: %w", err)
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p[0])
		syscall.Close(p[1])
		return fmt.Errorf("epoll_ctl wake: %w", err)
	}
	sh.ep = epollState{fd: epfd, wakeRd: p[0], wakeWr: p[1], events: make([]syscall.EpollEvent, 128)}
	return nil
}

func (sh *readerShard) epollClose() {
	if sh.ep.fd != 0 {
		syscall.Close(sh.ep.fd)
		syscall.Close(sh.ep.wakeRd)
		syscall.Close(sh.ep.wakeWr)
		sh.ep.fd = 0
	}
}

// epollWake kicks EpollWait; EAGAIN means a kick is already pending.
func (sh *readerShard) epollWake() {
	var one = [1]byte{1}
	_, _ = syscall.Write(sh.ep.wakeWr, one[:])
}

// epollAdd registers a fresh connection: resolve the raw fd, arm the
// stored read callback, and add it level-triggered.
func (sh *readerShard) epollAdd(lc *loopConn) error {
	sc, ok := lc.conn.(syscall.Conn)
	if !ok {
		return fmt.Errorf("netloop: connection is not a syscall.Conn")
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	lc.rc = rc
	if err := rc.Control(func(fd uintptr) { lc.fd = int32(fd) }); err != nil {
		return err
	}
	lc.readFn = func(fd uintptr) bool {
		dst := lc.st.Writable(loopReadSize)
		n, err := syscall.Read(int(fd), dst)
		if n > 0 {
			lc.st.Advance(n)
		} else {
			n = 0
		}
		lc.readN, lc.readErr = n, err
		return true
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: lc.fd}
	if err := syscall.EpollCtl(sh.ep.fd, syscall.EPOLL_CTL_ADD, int(lc.fd), &ev); err != nil {
		return err
	}
	lc.lastActive = time.Now()
	sh.epConns[lc.fd] = lc
	sh.nconns.Add(1)
	return nil
}

// epollDel removes a connection from the interest set (the fd is
// still open — MONITOR detaches without closing).
func (sh *readerShard) epollDel(lc *loopConn) {
	_ = syscall.EpollCtl(sh.ep.fd, syscall.EPOLL_CTL_DEL, int(lc.fd), nil)
}

// loopSpinRounds bounds the non-blocking poll phase before the shard
// falls back to a blocking EpollWait. A goroutine parked in a raw
// blocking syscall holds its P until sysmon retakes it (20µs–10ms,
// backing off while idle), so at low connection counts every request
// would eat scheduler-monitor latency. Spinning EpollWait(0) with a
// Gosched between attempts keeps the P in the fast entersyscall path
// and lets peer goroutines (clients, shard workers) run in the gaps;
// after the budget we block and let the wake pipe kick us.
const loopSpinRounds = 256

// runEpoll is the shard loop: wait, read every ready connection into
// its stream, run the shared burst machine, reap idlers.
func (sh *readerShard) runEpoll() {
	defer sh.loop.wg.Done()
	s := sh.s
	waitMs := -1
	if s.net.idleTimeout > 0 {
		waitMs = int(s.net.idleTimeout.Milliseconds() / 2)
		if waitMs < 10 {
			waitMs = 10
		}
		if waitMs > 500 {
			waitMs = 500
		}
	}
	spin := 0
	for {
		var n int
		var err error
		if spin < loopSpinRounds {
			n, err = syscall.EpollWait(sh.ep.fd, sh.ep.events, 0)
			if err == nil && n == 0 {
				spin++
				runtime.Gosched()
				continue
			}
		} else {
			sh.blockedWaits.Add(1)
			n, err = syscall.EpollWait(sh.ep.fd, sh.ep.events, waitMs)
		}
		spin = 0
		if err != nil {
			if errors.Is(err, syscall.EINTR) {
				continue
			}
			return // epoll fd closed: shutdown
		}
		sh.drainRegistrations()
		if s.closing.Load() {
			sh.closeAllEpoll()
			return
		}
		select {
		case <-sh.stopCh:
			sh.closeAllEpoll()
			return
		default:
		}
		sh.batch = sh.batch[:0]
		now := time.Now()
		for i := 0; i < n; i++ {
			fd := sh.ep.events[i].Fd
			if fd == int32(sh.ep.wakeRd) {
				sh.drainWakePipe()
				continue
			}
			lc := sh.epConns[fd]
			if lc == nil {
				continue // raced with a close this wakeup
			}
			sh.fill(lc, now)
			sh.batch = append(sh.batch, lc)
		}
		if len(sh.batch) > 0 {
			sh.wakeups.Add(1)
			sh.connEvents.Add(uint64(len(sh.batch)))
			for _, lc := range sh.batch {
				_ = lc.conn.SetWriteDeadline(now.Add(loopWriteTimeout))
			}
			sh.processReady()
		}
		if s.net.idleTimeout > 0 {
			sh.reapIdle(now)
		}
	}
}

// drainRegistrations adopts connections the accept loop handed over.
func (sh *readerShard) drainRegistrations() {
	for {
		select {
		case lc := <-sh.regCh:
			if err := sh.epollAdd(lc); err != nil {
				_ = lc.conn.Close()
				sh.s.untrack(lc.conn)
			}
		default:
			return
		}
	}
}

func (sh *readerShard) drainWakePipe() {
	for {
		n, err := syscall.Read(sh.ep.wakeRd, sh.ep.wakeBuf[:])
		if n < len(sh.ep.wakeBuf) || err != nil {
			return
		}
	}
}

// fill drains one readable connection into its stream, up to the
// fairness cap (level-triggered epoll re-arms for the remainder).
func (sh *readerShard) fill(lc *loopConn, now time.Time) {
	total := 0
	for lc.rerr == nil && total < loopReadCap {
		lc.readN, lc.readErr = 0, nil
		if err := lc.rc.Read(lc.readFn); err != nil {
			lc.rerr = err // runtime-side: fd closed under us
			break
		}
		if lc.readErr != nil {
			if lc.readErr == syscall.EAGAIN {
				break // socket drained
			}
			lc.rerr = lc.readErr
			break
		}
		if lc.readN == 0 {
			lc.rerr = io.EOF
			break
		}
		total += lc.readN
	}
	if total > 0 {
		lc.lastActive = now
		sh.bytesRead.Add(uint64(total))
	}
}

// reapIdle closes connections with no byte arrival for the idle
// timeout — the same "silent for the timeout" rule the blocking
// path's idleConn enforces, so a slow mid-burst client survives as
// long as bytes keep trickling.
func (sh *readerShard) reapIdle(now time.Time) {
	to := sh.s.net.idleTimeout
	if now.Sub(sh.lastReap) < to/4 {
		return
	}
	sh.lastReap = now
	for _, lc := range sh.epConns {
		if now.Sub(lc.lastActive) > to {
			sh.idleReaped.Add(1)
			sh.closeConn(lc)
		}
	}
}

func (sh *readerShard) closeAllEpoll() {
	for _, lc := range sh.epConns {
		sh.closeConn(lc)
	}
}
