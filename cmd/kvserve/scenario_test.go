package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"addrkv"
	"addrkv/internal/cluster"
	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
)

// newScenarioServer builds a test server with a chosen index (SCAN
// needs an ordered one) and optional maxmemory, in either dispatch
// mode.
func newScenarioServer(t *testing.T, shards int, index addrkv.IndexKind, maxMem int64, workers bool) *server {
	t.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Shards:     shards,
		Index:      index,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
		MaxMemory:  maxMem,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(sys, defaultSlowlogCap)
	if workers {
		if err := s.startWorkers(0); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			s.closing.Store(true)
			s.nudgeConns()
			s.drain()
			s.stopWorkers()
		})
	}
	return s
}

// scanCursorFor renders the continuation cursor SCAN would return
// after emitting key.
func scanCursorFor(key string) string {
	return string(addrkv.AppendCursor(nil, []byte(key)))
}

// scenarioScript is the SCAN/RANGE/TTL command stream the differential
// tests replay, in two sections with a 6-second clock advance between
// them (the PEXPIRE 5000 deadlines die, the EXPIRE 100 ones survive).
func scenarioScript() (sec1, sec2 [][]string) {
	for i := 0; i < 30; i++ {
		sec1 = append(sec1, []string{"SET", fmt.Sprintf("k:%02d", i), fmt.Sprintf("val-%d", i)})
	}
	for i := 0; i < 10; i++ {
		sec1 = append(sec1, []string{"EXPIRE", fmt.Sprintf("k:%02d", i), "100"})
	}
	for i := 10; i < 15; i++ {
		sec1 = append(sec1, []string{"PEXPIRE", fmt.Sprintf("k:%02d", i), "5000"})
	}
	sec1 = append(sec1,
		[]string{"TTL", "k:00"},             // 100
		[]string{"PTTL", "k:05"},            // 100000
		[]string{"TTL", "k:10"},             // 5 (rounded up from 5000ms)
		[]string{"TTL", "k:20"},             // -1: present, no deadline
		[]string{"TTL", "missing"},          // -2
		[]string{"EXPIRE", "missing", "10"}, // 0
		[]string{"EXPIRE", "k:00", "junk"},  // error
		[]string{"SCAN", "0"},
		[]string{"SCAN", "0", "COUNT", "5"},
		[]string{"SCAN", scanCursorFor("k:09"), "COUNT", "7"},
		[]string{"SCAN", "0", "MATCH", "k:0?", "COUNT", "50"},
		[]string{"SCAN", "0", "COUNT", "50", "MATCH", "k:1*"}, // options in either order
		[]string{"SCAN", "0", "MATCH", "no-such-prefix*"},     // cursor advances, empty page
		[]string{"SCAN", scanCursorFor("k:04"), "MATCH", "k:[0-1]?", "COUNT", "8"},
		[]string{"SCAN", "not-a-cursor"},        // error
		[]string{"SCAN", "0", "COUNT", "zero"},  // error
		[]string{"SCAN", "0", "MATCH"},          // error: odd option tail
		[]string{"SCAN", "0", "FILTER", "k:0*"}, // error: unknown option
		[]string{"RANGE", "k:05", "k:12"},
		[]string{"RANGE", "-", "+", "6"},
		[]string{"RANGE", "k:28", "+"},
		[]string{"RANGE", "-", "k:02"},
		[]string{"EXISTS", "k:11"},
		[]string{"DEL", "k:29"},
		[]string{"GET", "k:13"},
	)
	sec2 = append(sec2,
		[]string{"GET", "k:10"},  // dead: lazy reap
		[]string{"TTL", "k:11"},  // dead: -2 (the query reaps it)
		[]string{"PTTL", "k:12"}, // dead
		[]string{"TTL", "k:00"},  // 94 seconds left
		[]string{"SCAN", "0", "COUNT", "30"},
		[]string{"SCAN", "0", "MATCH", "k:*", "COUNT", "30"}, // post-expiry filtered walk
		[]string{"RANGE", "k:09", "k:16"},
		[]string{"SET", "k:10", "reborn"},
		[]string{"TTL", "k:10"}, // -1: SET discarded nothing, fresh key
		[]string{"GET", "k:10"},
		[]string{"DBSIZE"},
	)
	return sec1, sec2
}

// TestServerScanTTLWorkerMatchesMutex extends the dispatch-mode
// differential to the scenario surface: the same SCAN/RANGE/EXPIRE/
// TTL/PTTL stream over a deterministic clock must produce identical
// replies AND bit-for-bit identical modeled statistics under worker
// and mutex dispatch. SCAN/RANGE/EXPIRE are ordering barriers in
// worker mode; none of that machinery may perturb the engine model.
func TestServerScanTTLWorkerMatchesMutex(t *testing.T) {
	sec1, sec2 := scenarioScript()
	for _, shards := range []int{1, 2} {
		worker := newScenarioServer(t, shards, addrkv.IndexBTree, 0, true)
		mutex := newScenarioServer(t, shards, addrkv.IndexBTree, 0, false)
		var wClock, mClock atomic.Int64
		wClock.Store(1_000_000_000)
		mClock.Store(1_000_000_000)
		worker.sys.SetClock(wClock.Load)
		mutex.sys.SetClock(mClock.Load)

		wr := runScript(t, worker, sec1, 9)
		mr := runScript(t, mutex, sec1, 9)
		wClock.Add(6_000_000_000) // 6s: the PEXPIRE 5000 keys die
		mClock.Add(6_000_000_000)
		wr = append(wr, runScript(t, worker, sec2, 9)...)
		mr = append(mr, runScript(t, mutex, sec2, 9)...)

		script := append(append([][]string{}, sec1...), sec2...)
		if len(wr) != len(mr) {
			t.Fatalf("shards=%d: %d worker replies vs %d mutex", shards, len(wr), len(mr))
		}
		for i := range wr {
			if wr[i] != mr[i] {
				t.Fatalf("shards=%d reply %d (%v): worker %q vs mutex %q",
					shards, i, script[i], wr[i], mr[i])
			}
		}
		wrep, mrep := worker.sys.Report(), mutex.sys.Report()
		if wrep.Ops != mrep.Ops || wrep.Cycles != mrep.Cycles ||
			wrep.Scans != mrep.Scans || wrep.Expired != mrep.Expired {
			t.Fatalf("shards=%d stats diverged: ops %d/%d cycles %d/%d scans %d/%d expired %d/%d",
				shards, wrep.Ops, mrep.Ops, wrep.Cycles, mrep.Cycles,
				wrep.Scans, mrep.Scans, wrep.Expired, mrep.Expired)
		}
		for i := range wrep.PerShard {
			if wrep.PerShard[i] != mrep.PerShard[i] {
				t.Fatalf("shard %d diverged:\nworker: %+v\nmutex:  %+v",
					i, wrep.PerShard[i], mrep.PerShard[i])
			}
		}
		// Spot-check absolute values (both modes could be wrong together):
		// TTL k:00 before the advance is 100s, after it 94s.
		if wr[45] != "int64:100" {
			t.Fatalf("shards=%d: TTL k:00 = %q, want 100", shards, wr[45])
		}
		if got := wr[len(sec1)+3]; got != "int64:94" {
			t.Fatalf("shards=%d: post-advance TTL k:00 = %q, want 94", shards, got)
		}
	}
}

// TestServerScanReplyShape pins the SCAN/RANGE wire format on one
// mutex server: cursor placement, page boundaries, terminal cursor,
// and the flat RANGE pair array.
func TestServerScanReplyShape(t *testing.T) {
	s := newScenarioServer(t, 2, addrkv.IndexBTree, 0, false)
	for i := 0; i < 12; i++ {
		call(t, s, "SET", fmt.Sprintf("k:%02d", i), fmt.Sprintf("v%d", i))
	}
	// Full-page SCAN: continuation cursor plus the first 10 keys.
	rep := call(t, s, "SCAN", "0").([]any)
	if len(rep) != 2 {
		t.Fatalf("SCAN reply has %d elements", len(rep))
	}
	if got, want := string(rep[0].([]byte)), scanCursorFor("k:09"); got != want {
		t.Fatalf("continuation cursor = %q, want %q", got, want)
	}
	page := rep[1].([]any)
	if len(page) != 10 || string(page[0].([]byte)) != "k:00" || string(page[9].([]byte)) != "k:09" {
		t.Fatalf("first page = %v", page)
	}
	// Resume from the cursor: the remaining 2 keys and the terminal
	// cursor.
	rep = call(t, s, "SCAN", string(rep[0].([]byte))).([]any)
	if got := string(rep[0].([]byte)); got != "0" {
		t.Fatalf("terminal cursor = %q, want 0", got)
	}
	page = rep[1].([]any)
	if len(page) != 2 || string(page[0].([]byte)) != "k:10" || string(page[1].([]byte)) != "k:11" {
		t.Fatalf("second page = %v", page)
	}
	// RANGE replies flat [k, v, k, v, ...].
	flat := call(t, s, "RANGE", "k:03", "k:05").([]any)
	if len(flat) != 6 || string(flat[0].([]byte)) != "k:03" || string(flat[1].([]byte)) != "v3" ||
		string(flat[4].([]byte)) != "k:05" || string(flat[5].([]byte)) != "v5" {
		t.Fatalf("RANGE reply = %v", flat)
	}
}

// TestServerScanMatch pins the MATCH contract: the filter applies
// after the page is scanned, so COUNT bounds keys scanned (not keys
// returned) and the continuation cursor follows the last SCANNED key —
// a page whose keys all fail the filter still advances the walk.
func TestServerScanMatch(t *testing.T) {
	s := newScenarioServer(t, 2, addrkv.IndexBTree, 0, false)
	for i := 0; i < 12; i++ {
		call(t, s, "SET", fmt.Sprintf("k:%02d", i), "v")
	}
	call(t, s, "SET", "other", "v") // sorts after every k:*

	// Page of 5 scans k:00..k:04; "k:0[13]" keeps two of them. The
	// cursor must point at k:04 (last scanned), not k:03 (last match).
	rep := call(t, s, "SCAN", "0", "MATCH", "k:0[13]", "COUNT", "5").([]any)
	if got, want := string(rep[0].([]byte)), scanCursorFor("k:04"); got != want {
		t.Fatalf("continuation cursor = %q, want %q", got, want)
	}
	page := rep[1].([]any)
	if len(page) != 2 || string(page[0].([]byte)) != "k:01" || string(page[1].([]byte)) != "k:03" {
		t.Fatalf("filtered page = %v", page)
	}

	// A pattern matching nothing on this page returns an empty array but
	// still advances the cursor over the scanned run.
	rep = call(t, s, "SCAN", "0", "MATCH", "zz*", "COUNT", "4").([]any)
	if got, want := string(rep[0].([]byte)), scanCursorFor("k:03"); got != want {
		t.Fatalf("empty-page cursor = %q, want %q", got, want)
	}
	if page := rep[1].([]any); len(page) != 0 {
		t.Fatalf("empty-page reply = %v, want []", page)
	}

	// Resuming the filtered walk to completion sees every matching key
	// exactly once, in order.
	var got []string
	cursor := "0"
	for {
		rep := call(t, s, "SCAN", cursor, "MATCH", "k:*", "COUNT", "3").([]any)
		for _, k := range rep[1].([]any) {
			got = append(got, string(k.([]byte)))
		}
		cursor = string(rep[0].([]byte))
		if cursor == "0" {
			break
		}
	}
	if len(got) != 12 || got[0] != "k:00" || got[11] != "k:11" {
		t.Fatalf("filtered walk = %v", got)
	}

	// Option validation: odd tails and unknown options are syntax
	// errors, bad cursors stay bad.
	for _, bad := range [][]string{
		{"SCAN", "0", "MATCH"},
		{"SCAN", "0", "FILTER", "x"},
		{"SCAN", "0", "MATCH", "a", "COUNT"},
	} {
		if _, ok := call(t, s, bad...).(error); !ok {
			t.Fatalf("%v did not error", bad)
		}
	}
}

// TestServerExpireCycleBudget: the -expire-cycle-budget ticker sweeper
// reaps dead keys in both dispatch modes (worker drain-burst sweeps
// stay off — the budget is the only active source) and the "# expiry"
// INFO section reports the budget and cycle counters.
func TestServerExpireCycleBudget(t *testing.T) {
	for _, workers := range []bool{false, true} {
		t.Run(map[bool]string{false: "mutex", true: "worker"}[workers], func(t *testing.T) {
			const shards, budget = 2, 16
			s := newScenarioServer(t, shards, addrkv.IndexBTree, 0, workers)
			var clock atomic.Int64
			clock.Store(1_000_000_000)
			s.sys.SetClock(clock.Load)
			for i := 0; i < 40; i++ {
				call(t, s, "SET", fmt.Sprintf("k:%02d", i), "v")
				call(t, s, "PEXPIRE", fmt.Sprintf("k:%02d", i), "1000")
			}
			s.sweepBudget = budget
			s.startSweeper(time.Millisecond, (budget+shards-1)/shards)
			defer s.stopSweeper()

			clock.Add(5_000_000_000) // every deadline is now dead
			deadline := time.Now().Add(5 * time.Second)
			for s.sweepReaped.Load() < 40 {
				if time.Now().After(deadline) {
					t.Fatalf("sweeper reaped only %d/40 keys", s.sweepReaped.Load())
				}
				time.Sleep(time.Millisecond)
			}
			if got := call(t, s, "DBSIZE").(int64); got != 0 {
				t.Fatalf("DBSIZE after sweep = %d, want 0", got)
			}
			info := string(call(t, s, "INFO").([]byte))
			for _, want := range []string{"# expiry", "expire_cycle_budget:16", "sweep_reaped_total:"} {
				if !strings.Contains(info, want) {
					t.Fatalf("INFO missing %q", want)
				}
			}
			if strings.Contains(info, "sweep_cycles:0\r\n") {
				t.Fatal("INFO reports zero sweep cycles after a completed sweep")
			}
		})
	}
}

// TestServerScanRangeUnorderedTypedError: SCAN/RANGE against every
// -index value — the hash indexes fail with the typed RESP error
// naming the fix, never a silent empty array; the trees serve.
func TestServerScanRangeUnorderedTypedError(t *testing.T) {
	for _, tc := range []struct {
		index   addrkv.IndexKind
		ordered bool
	}{
		{addrkv.IndexChainHash, false},
		{addrkv.IndexDenseHash, false},
		{addrkv.IndexRBTree, true},
		{addrkv.IndexBTree, true},
	} {
		t.Run(string(tc.index), func(t *testing.T) {
			s := newScenarioServer(t, 2, tc.index, 0, false)
			call(t, s, "SET", "a", "1")
			scanRep := call(t, s, "SCAN", "0")
			rangeRep := call(t, s, "RANGE", "-", "+")
			if tc.ordered {
				if _, ok := scanRep.([]any); !ok {
					t.Fatalf("SCAN on %s = %v, want array", tc.index, scanRep)
				}
				if _, ok := rangeRep.([]any); !ok {
					t.Fatalf("RANGE on %s = %v, want array", tc.index, rangeRep)
				}
				return
			}
			for name, rep := range map[string]any{"SCAN": scanRep, "RANGE": rangeRep} {
				err, ok := rep.(error)
				if !ok {
					t.Fatalf("%s on %s = %v, want typed error", name, tc.index, rep)
				}
				if !strings.Contains(err.Error(), "ordered index") || !strings.Contains(err.Error(), "btree") {
					t.Fatalf("%s error %q does not name the fix", name, err)
				}
			}
		})
	}
}

// clusterScenarioOps: the scenario command stream constrained to what
// a 1-node cluster serves (it owns every slot, so everything).
func clusterScenarioOps() [][]string {
	var ops [][]string
	for i := 0; i < 40; i++ {
		ops = append(ops, []string{"SET", fmt.Sprintf("ck:%02d", i), fmt.Sprintf("cv-%d", i)})
	}
	for i := 0; i < 10; i++ {
		ops = append(ops, []string{"EXPIRE", fmt.Sprintf("ck:%02d", i), "500"})
	}
	ops = append(ops,
		[]string{"TTL", "ck:03"},
		[]string{"PTTL", "ck:04"},
		[]string{"TTL", "ck:20"},
		[]string{"SCAN", "0", "COUNT", "15"},
		[]string{"SCAN", scanCursorFor("ck:20"), "COUNT", "50"},
		[]string{"RANGE", "ck:10", "ck:14"},
		[]string{"RANGE", "-", "+", "8"},
		[]string{"EXISTS", "ck:05"},
		[]string{"DEL", "ck:06"},
		[]string{"TTL", "ck:06"},
		[]string{"GET", "ck:07"},
	)
	return ops
}

// TestClusterScanTTLSingleNodeDifferential: a 1-node cluster must be
// bit-for-bit identical to standalone kvserve on the SCAN/TTL surface
// too — same replies, same modeled Report — in both dispatch modes.
// Cluster mode's classify-time scan check and per-key gate may not
// perturb the engine model when no migration is running.
func TestClusterScanTTLSingleNodeDifferential(t *testing.T) {
	ops := clusterScenarioOps()
	for _, workers := range []bool{false, true} {
		t.Run(fmt.Sprintf("workers=%v", workers), func(t *testing.T) {
			sa := newScenarioServer(t, 2, addrkv.IndexBTree, 0, workers)
			cl := newScenarioServer(t, 2, addrkv.IndexBTree, 0, workers)
			nodes := []cluster.NodeInfo{{Addr: "node-0", Bus: reserveAddr(t)}}
			if err := cl.setupCluster(nodes, 0, clusterOpts{rewarm: true, batch: 8}); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cl.closeCluster)

			var saClock, clClock atomic.Int64
			saClock.Store(5_000_000_000)
			clClock.Store(5_000_000_000)
			sa.sys.SetClock(saClock.Load)
			cl.sys.SetClock(clClock.Load)

			if workers {
				ra := runScript(t, sa, ops, 10)
				rb := runScript(t, cl, ops, 10)
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("%v: standalone %q != cluster %q", ops[i], ra[i], rb[i])
					}
				}
			} else {
				csA, csB := &connState{id: 1}, &connState{id: 1}
				for _, op := range ops {
					ra := callCS(t, sa, csA, op...)
					rb := callCS(t, cl, csB, op...)
					if !reflect.DeepEqual(ra, rb) {
						t.Fatalf("%v: standalone %v != cluster %v", op, ra, rb)
					}
				}
			}
			if !reflect.DeepEqual(sa.sys.Report(), cl.sys.Report()) {
				t.Fatalf("modeled stats diverged:\nstandalone: %+v\ncluster:    %+v",
					sa.sys.Report(), cl.sys.Report())
			}
		})
	}
}

// TestClusterScanTryAgainWhileMigrating: while any slot is migrating
// or importing, SCAN and RANGE are refused with -TRYAGAIN at the RESP
// layer — a node-local scan during a slot move would silently miss or
// duplicate the in-flight records. Pinned in both dispatch modes, and
// the refusal must lift as soon as the slot map stabilizes.
func TestClusterScanTryAgainWhileMigrating(t *testing.T) {
	for _, workers := range []bool{false, true} {
		t.Run(fmt.Sprintf("workers=%v", workers), func(t *testing.T) {
			srvs := newTestCluster(t, 2, workers)
			s0, s1 := srvs[0], srvs[1]

			issue := func(s *server, args ...string) any {
				if !workers {
					return callCS(t, s, &connState{id: 9}, args...)
				}
				r, w, c := pipeClient(t, s)
				defer c.Close()
				ba := make([][]byte, len(args))
				for i, a := range args {
					ba[i] = []byte(a)
				}
				w.WriteCommand(ba...)
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				v, err := r.ReadReply()
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			wantTryAgain := func(rep any, label string) {
				t.Helper()
				err, ok := rep.(error)
				if !ok || !strings.HasPrefix(err.Error(), "TRYAGAIN") {
					t.Fatalf("%s = %v, want TRYAGAIN", label, rep)
				}
			}

			// Stable map: SCAN reaches the engine (chainhash here, so the
			// typed unordered error — proof the scan check let it through).
			rep := issue(s0, "SCAN", "0")
			if err, ok := rep.(error); !ok || !strings.Contains(err.Error(), "ordered index") {
				t.Fatalf("stable SCAN = %v, want unordered-index error", rep)
			}

			// Migrating source refuses both verbs.
			if _, err := s0.clus.node.BeginMigrate(0, 1); err != nil {
				t.Fatal(err)
			}
			before := s0.clus.node.Metrics.TryAgain.Load()
			wantTryAgain(issue(s0, "SCAN", "0"), "SCAN on migrating source")
			wantTryAgain(issue(s0, "RANGE", "-", "+"), "RANGE on migrating source")
			if got := s0.clus.node.Metrics.TryAgain.Load(); got != before+2 {
				t.Fatalf("TryAgain counter = %d, want %d", got, before+2)
			}

			// Importing destination refuses too.
			if err := s1.clus.node.BeginImport(9000, 1); err == nil {
				t.Fatal("BeginImport of an unowned-slot pairing succeeded unexpectedly")
			}
			if err := s1.clus.node.BeginImport(100, 0); err != nil {
				t.Fatal(err)
			}
			wantTryAgain(issue(s1, "SCAN", "0"), "SCAN on importing destination")

			// Abort: the refusal lifts immediately.
			s0.clus.node.AbortMigrate(0)
			rep = issue(s0, "SCAN", "0")
			if err, ok := rep.(error); !ok || !strings.Contains(err.Error(), "ordered index") {
				t.Fatalf("post-abort SCAN = %v, want unordered-index error again", rep)
			}
		})
	}
}

// TestServerMaxMemoryEviction: a maxmemory server evicts under write
// pressure, keeps serving, stays under budget, and surfaces the churn
// through INFO.
func TestServerMaxMemoryEviction(t *testing.T) {
	const maxMem = 4 * 1024
	s := newScenarioServer(t, 1, addrkv.IndexBTree, maxMem, false)
	val := strings.Repeat("x", 100)
	for i := 0; i < 200; i++ {
		if got := call(t, s, "SET", fmt.Sprintf("e:%04d", i), val); got != "OK" {
			t.Fatalf("SET %d = %v", i, got)
		}
	}
	if used := s.sys.UsedBytes(); used > maxMem {
		t.Fatalf("used_bytes %d over the %d budget", used, maxMem)
	}
	rep := s.sys.Report()
	if rep.Evicted == 0 {
		t.Fatal("no evictions under write pressure")
	}
	info := string(call(t, s, "INFO").([]byte))
	if !strings.Contains(info, fmt.Sprintf("evicted_keys:%d", rep.Evicted)) {
		t.Fatalf("INFO missing evicted_keys:%d:\n%s", rep.Evicted, info)
	}
	if !strings.Contains(info, "used_bytes:") {
		t.Fatalf("INFO missing used_bytes:\n%s", info)
	}
	// The newest key survived (it was just written), the store still
	// answers.
	if got := call(t, s, "GET", "e:0199"); got == nil {
		t.Fatal("most recent key evicted immediately")
	}
}

// TestServerScanExpireHotPathAllocs extends the allocation budgets to
// the scenario hot paths over a served worker-mode connection. These
// are barrier commands, so unlike the async SET/GET path (pinned at 0
// by TestServerHotPathZeroAlloc) they pay dispatch's per-command
// constant — the lowercased verb string and the outcome record:
//
//	EXPIRE + TTL round trip   <= 6 allocs (2x barrier dispatch)
//	SCAN page of 5 keys       <= 28 allocs (dispatch constant +
//	                          per-shard key copies + page slice +
//	                          cursor reply; copying out is the contract)
//
// The budgets are ceilings just above the measured steady state (5 and
// 25): the point is catching per-key or per-byte regressions, which
// add at least the page size.
func TestServerScanExpireHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel handoffs")
	}
	s := newScenarioServer(t, 1, addrkv.IndexBTree, 0, true)
	// Raise the slowlog floor so nanosecond-scale ops never qualify and
	// the entry construction (which allocates) is skipped.
	for i := 0; i < defaultSlowlogCap; i++ {
		s.tele.slowlog.Note(telemetry.SlowlogEntry{Duration: time.Hour})
	}
	for i := 0; i < 8; i++ {
		call(t, s, "SET", fmt.Sprintf("hot:%d", i), "v")
	}

	client, srv := net.Pipe()
	if !s.track(srv) {
		t.Fatal("track refused connection")
	}
	go s.serve(srv)
	t.Cleanup(func() { client.Close() })

	// Capture each pipeline's exact reply bytes via direct dispatch,
	// then drive the served connection against that expectation.
	wire := func(cmds [][]string) (req, rep []byte) {
		var reqBuf bytes.Buffer
		cw := resp.NewWriter(&reqBuf)
		for _, c := range cmds {
			ba := make([][]byte, len(c))
			for i, a := range c {
				ba[i] = []byte(a)
			}
			cw.WriteCommand(ba...)
		}
		cw.Flush()
		var repBuf bytes.Buffer
		rw := resp.NewWriter(&repBuf)
		for _, c := range cmds {
			ba := make([][]byte, len(c))
			for i, a := range c {
				ba[i] = []byte(a)
			}
			s.dispatch(rw, ba, &connState{id: 99})
		}
		rw.Flush()
		return reqBuf.Bytes(), repBuf.Bytes()
	}
	roundTrip := func(req []byte, reply []byte) func() {
		return func() {
			if _, err := client.Write(req); err != nil {
				t.Fatal(err)
			}
			if _, err := io.ReadFull(client, reply); err != nil {
				t.Fatal(err)
			}
		}
	}

	expireReq, expireRep := wire([][]string{
		{"EXPIRE", "hot:3", "1000000"},
		{"TTL", "hot:3"},
	})
	scanReq, scanRep := wire([][]string{{"SCAN", "0", "COUNT", "5"}})

	expireRT := roundTrip(expireReq, make([]byte, len(expireRep)))
	scanRT := roundTrip(scanReq, make([]byte, len(scanRep)))
	for i := 0; i < 64; i++ {
		expireRT()
		scanRT()
	}
	if n := testing.AllocsPerRun(200, expireRT); n > 6 {
		t.Errorf("EXPIRE+TTL round trip: %.2f allocs, budget 6", n)
	}
	if n := testing.AllocsPerRun(200, scanRT); n > 28 {
		t.Errorf("SCAN COUNT 5 round trip: %.2f allocs, budget 28", n)
	}
}
