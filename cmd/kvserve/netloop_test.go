// Differential and behavioral pins for the -netloop event-loop
// front-end. The headline guarantee — replies AND modeled statistics
// bit-for-bit identical to the goroutine-per-connection path, in both
// dispatch modes and under both pollers — is enforced here over real
// TCP sockets (epoll needs kernel fds; net.Pipe has none).
package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"addrkv"
	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
)

// tcpFrontend wires a server to a real TCP listener, optionally
// through the netloop front-end, and registers the full shutdown
// sequence (mirroring main): closing, listener close, nudge + wake,
// drain, stop loops.
func tcpFrontend(t *testing.T, s *server, netloop bool, poller string) string {
	t.Helper()
	if netloop {
		if err := s.startNetloop(2, poller); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.acceptLoop(ln)
	t.Cleanup(func() {
		s.closing.Store(true)
		ln.Close()
		s.nudgeConns()
		s.wakeNetloop()
		s.drain()
		s.stopNetloop()
	})
	return ln.Addr().String()
}

// tcpClient dials the front-end and returns RESP ends plus the raw
// conn.
func tcpClient(t *testing.T, addr string) (*resp.Reader, *resp.Writer, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return resp.NewReader(conn), resp.NewWriter(conn), conn
}

// runScriptTCP drives one TCP connection through cmds exactly like
// runScript drives a pipe, returning the rendered transcript.
func runScriptTCP(t *testing.T, addr string, cmds [][]string, flushEvery int) []string {
	t.Helper()
	r, w, _ := tcpClient(t, addr)
	replies := make([]string, 0, len(cmds))
	read := func(n int) {
		for i := 0; i < n; i++ {
			v, err := r.ReadReply()
			if err != nil {
				t.Fatalf("reply %d: %v", len(replies), err)
			}
			replies = append(replies, renderReply(v))
		}
	}
	pendingReads := 0
	for _, c := range cmds {
		args := make([][]byte, len(c))
		for i, a := range c {
			args[i] = []byte(a)
		}
		if err := w.WriteCommand(args...); err != nil {
			t.Fatal(err)
		}
		pendingReads++
		if pendingReads >= flushEvery {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			read(pendingReads)
			pendingReads = 0
		}
	}
	if pendingReads > 0 {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		read(pendingReads)
	}
	return replies
}

// netloopScript is the differential workload: async single-key ops,
// sync barriers, batch commands, arity errors, and misses interleaved
// so both the worker fast path and every barrier path run.
func netloopScript() [][]string {
	var script [][]string
	for i := 0; i < 24; i++ {
		script = append(script, []string{"SET", fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)})
	}
	for i := 0; i < 24; i++ {
		script = append(script, []string{"GET", fmt.Sprintf("key-%d", i)})
		if i%5 == 0 {
			script = append(script, []string{"PING"})
		}
		if i%7 == 0 {
			script = append(script, []string{"EXISTS", fmt.Sprintf("key-%d", i)})
		}
	}
	script = append(script,
		[]string{"MSET", "ma", "1", "mb", "2"},
		[]string{"MGET", "ma", "mb", "absent"},
		[]string{"GET", "absent"},
		[]string{"DEL", "key-3"},
		[]string{"GET", "key-3"},
		[]string{"DEL", "ma", "mb"},
		[]string{"GET"}, // arity error: sync, in order
		[]string{"EXISTS", "key-4"},
		[]string{"DBSIZE"},
		[]string{"SET", "key-3", "back"},
		[]string{"GET", "key-3"},
	)
	return script
}

// TestNetloopMatchesGoroutine is the front-end determinism pin: the
// same command stream over TCP must produce byte-identical replies and
// bit-for-bit identical modeled statistics through the goroutine path
// and the event loop (both pollers), in worker AND mutex dispatch. A
// small -pipeline cap forces the burst machine through its
// multi-round (full-burst) path.
func TestNetloopMatchesGoroutine(t *testing.T) {
	script := netloopScript()
	type frontend struct {
		name    string
		netloop bool
		poller  string
	}
	frontends := []frontend{{"goroutine", false, ""}}
	if epollSupported {
		frontends = append(frontends, frontend{"netloop-epoll", true, "epoll"})
	}
	frontends = append(frontends, frontend{"netloop-portable", true, "portable"})

	for _, dispatch := range []string{"worker", "mutex"} {
		var baseReplies []string
		var baseOps, baseCycles, baseServerOps uint64
		for _, fe := range frontends {
			t.Run(dispatch+"/"+fe.name, func(t *testing.T) {
				var s *server
				if dispatch == "worker" {
					s = newWorkerServer(t, 2)
				} else {
					s = newTestServerShards(t, 2)
				}
				s.net.maxPipeline = 4 // force full-burst rounds in the loop
				addr := tcpFrontend(t, s, fe.netloop, fe.poller)
				replies := runScriptTCP(t, addr, script, 9)
				rep := s.sys.Report()
				sops := s.opsSinceMark.Load()
				if fe.name == "goroutine" {
					baseReplies, baseOps, baseCycles, baseServerOps = replies, rep.Ops, rep.Cycles, sops
					return
				}
				if len(replies) != len(baseReplies) {
					t.Fatalf("%d replies vs %d on goroutine path", len(replies), len(baseReplies))
				}
				for i := range replies {
					if replies[i] != baseReplies[i] {
						t.Fatalf("reply %d (%v): netloop %q vs goroutine %q",
							i, script[i], replies[i], baseReplies[i])
					}
				}
				if rep.Ops != baseOps || rep.Cycles != baseCycles {
					t.Fatalf("modeled stats diverged: ops %d/%d cycles %d/%d",
						rep.Ops, baseOps, rep.Cycles, baseCycles)
				}
				if sops != baseServerOps {
					t.Fatalf("server_ops diverged: %d vs %d", sops, baseServerOps)
				}
			})
		}
	}
}

// TestNetloopCrossConnections hammers one netloop worker server from
// several TCP connections: per-connection reply order must hold under
// cross-connection batching, every op completes exactly once through
// the shard rings, and the loop telemetry reflects the traffic.
func TestNetloopCrossConnections(t *testing.T) {
	const (
		conns   = 4
		opsEach = 200
	)
	s := newWorkerServer(t, 2)
	addr := tcpFrontend(t, s, true, "")
	errCh := make(chan error, conns)
	for c := 0; c < conns; c++ {
		r, w, _ := tcpClient(t, addr)
		go func(c int, r *resp.Reader, w *resp.Writer) {
			for i := 0; i < opsEach; i++ {
				key := []byte(fmt.Sprintf("k-%d-%d", c, i))
				val := []byte(fmt.Sprintf("v-%d-%d", c, i))
				w.WriteCommand([]byte("SET"), key, val)
				w.WriteCommand([]byte("GET"), key)
				if err := w.Flush(); err != nil {
					errCh <- err
					return
				}
				if v, err := r.ReadReply(); err != nil || v != "OK" {
					errCh <- fmt.Errorf("conn %d SET %d: %v, %v", c, i, v, err)
					return
				}
				v, err := r.ReadReply()
				if err != nil || !bytes.Equal(v.([]byte), val) {
					errCh <- fmt.Errorf("conn %d GET %d: %v, %v", c, i, v, err)
					return
				}
			}
			errCh <- nil
		}(c, r, w)
	}
	for c := 0; c < conns; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	total := uint64(conns * opsEach * 2)
	if got := s.opsSinceMark.Load(); got != total {
		t.Fatalf("server_ops = %d, want %d", got, total)
	}
	if rep := s.sys.Report(); rep.Ops != total {
		t.Fatalf("engine ops = %d, want %d", rep.Ops, total)
	}
	var drained uint64
	for _, st := range s.sys.Cluster().RuntimeStats() {
		drained += st.DrainedOps
	}
	if drained != total {
		t.Fatalf("worker drained_ops = %d, want %d", drained, total)
	}
	var wakeups, bytesRead uint64
	for _, sh := range s.loop.shards {
		wakeups += sh.wakeups.Load()
		bytesRead += sh.bytesRead.Load()
	}
	if wakeups == 0 || bytesRead == 0 {
		t.Fatalf("loop telemetry silent: wakeups=%d bytes=%d", wakeups, bytesRead)
	}
}

// TestNetloopInfoAndMetrics: INFO's "# networking" section reports the
// loop state and /metrics exposes the per-reader-shard gauges.
func TestNetloopInfoAndMetrics(t *testing.T) {
	s := newWorkerServer(t, 1)
	addr := tcpFrontend(t, s, true, "")
	runScriptTCP(t, addr, [][]string{{"SET", "a", "1"}, {"GET", "a"}}, 2)

	r, w, _ := tcpClient(t, addr)
	if err := w.WriteCommand([]byte("INFO")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	info := string(v.([]byte))
	for _, want := range []string{
		"netloop:on", "netloop_readers:2", "netloop_poller:",
		"netloop_conns:", "loop_wakeups:", "loop_conn_events:",
		"loop_bytes_read:", "loop_rounds:", "loop_idle_reaped:0",
		"loop_write_stalls:0",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}

	srv, maddr, err := startMetricsServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + maddr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`addrkv_netloop_conns{reader="0"}`,
		`addrkv_netloop_conns{reader="1"}`,
		`addrkv_netloop_wakeups_total{reader=`,
		`addrkv_netloop_bytes_read_total{reader=`,
		`addrkv_netloop_rounds_total{reader=`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// A non-netloop server reports netloop:off.
	m := newTestServer(t)
	off := string(call(t, m, "INFO").([]byte))
	if !strings.Contains(off, "netloop:off") {
		t.Fatalf("plain INFO missing netloop:off:\n%s", off)
	}
}

// TestNetloopStartErrors: bad poller names fail fast at startup.
func TestNetloopStartErrors(t *testing.T) {
	s := newTestServer(t)
	if err := s.startNetloop(1, "kqueue"); err == nil {
		t.Fatal("unknown poller accepted")
	}
	if !epollSupported {
		if err := s.startNetloop(1, "epoll"); err == nil {
			t.Fatal("epoll accepted on a platform without it")
		}
	}
}

// dribble writes raw bytes in small chunks with a gap between chunks,
// simulating a client trickling a pipelined burst slower than the
// idle timeout but never going fully silent.
func dribble(t *testing.T, conn net.Conn, raw []byte, chunk int, gap time.Duration) {
	t.Helper()
	for off := 0; off < len(raw); off += chunk {
		end := off + chunk
		if end > len(raw) {
			end = len(raw)
		}
		if _, err := conn.Write(raw[off:end]); err != nil {
			t.Fatalf("dribble write at %d: %v", off, err)
		}
		time.Sleep(gap)
	}
}

// TestIdleTimeoutMidBurst is the regression pin for the idle-reap
// semantics fix: "idle" means no BYTES for the timeout, so a client
// trickling a pipelined burst slower than the timeout (but with
// steady byte arrival) is never reaped mid-burst — on the goroutine
// path (idleConn re-arms per read) and on both netloop pollers. A
// genuinely silent connection on the same server IS reaped.
func TestIdleTimeoutMidBurst(t *testing.T) {
	type frontend struct {
		name    string
		netloop bool
		poller  string
	}
	frontends := []frontend{{"goroutine", false, ""}, {"netloop-portable", true, "portable"}}
	if epollSupported {
		frontends = append(frontends, frontend{"netloop-epoll", true, "epoll"})
	}

	// The burst: enough pipelined PINGs that dribbling it at chunk/gap
	// spans several idle timeouts end to end.
	var burst bytes.Buffer
	bw := resp.NewWriter(&burst)
	const pings = 12
	for i := 0; i < pings; i++ {
		bw.WriteCommand([]byte("PING"))
	}
	bw.Flush()
	raw := burst.Bytes()

	for _, fe := range frontends {
		t.Run(fe.name, func(t *testing.T) {
			s := newTestServerShards(t, 1)
			const idle = 120 * time.Millisecond
			s.net.idleTimeout = idle
			addr := tcpFrontend(t, s, fe.netloop, fe.poller)

			// Trickling connection: ~30ms per chunk, total well past the
			// timeout, never silent for 120ms. Must survive and answer
			// every command.
			r, _, conn := tcpClient(t, addr)
			done := make(chan struct{})
			go func() {
				defer close(done)
				dribble(t, conn, raw, 8, 30*time.Millisecond)
			}()
			for i := 0; i < pings; i++ {
				v, err := r.ReadReply()
				if err != nil {
					t.Fatalf("trickled reply %d: %v (mid-burst reap?)", i, err)
				}
				if v != "PONG" {
					t.Fatalf("trickled reply %d = %v", i, v)
				}
			}
			<-done

			// Silent connection: must be reaped within a few timeouts.
			_, _, quiet := tcpClient(t, addr)
			quiet.SetReadDeadline(time.Now().Add(10 * idle))
			if _, err := quiet.Read(make([]byte, 1)); err == nil || isTimeout(err) {
				t.Fatalf("silent conn not reaped: %v", err)
			}
		})
	}
}

// TestNetloopMonitor: MONITOR detaches a connection from the loop onto
// the feed goroutine; a pipelined command right behind MONITOR (the
// stream's unparsed leftover) still detaches the monitor immediately.
func TestNetloopMonitor(t *testing.T) {
	s := newWorkerServer(t, 1)
	// Burst cap 1: a command pipelined behind MONITOR stays UNPARSED in
	// the stream, so the detach path must replay it as leftover. (At
	// larger caps it parses into the same burst and is dropped — the
	// blocking path does the same.)
	s.net.maxPipeline = 1
	addr := tcpFrontend(t, s, true, "")

	// Live monitor: sees another connection's traffic.
	mr, mw, mconn := tcpClient(t, addr)
	if err := mw.WriteCommand([]byte("MONITOR")); err != nil {
		t.Fatal(err)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := mr.ReadReply(); err != nil || v != "OK" {
		t.Fatalf("MONITOR ack: %v, %v", v, err)
	}
	runScriptTCP(t, addr, [][]string{{"SET", "spied", "on"}}, 1)
	mconn.SetReadDeadline(time.Now().Add(5 * time.Second))
	v, err := mr.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if line, ok := v.(string); !ok || !strings.Contains(line, "spied") {
		t.Fatalf("monitor line = %v", v)
	}
	// Any command detaches; the loop-side goroutine closes the conn.
	if err := mw.WriteCommand([]byte("PING")); err != nil {
		t.Fatal(err)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := mr.ReadReply(); err == nil || isTimeout(err) {
		t.Fatalf("monitor conn still open after detach command: %v", err)
	}

	// Pipelined MONITOR+PING in one segment: PING rides in the stream
	// leftover, is replayed to the monitor loop, and detaches at once.
	lr, lw, lconn := tcpClient(t, addr)
	lw.WriteCommand([]byte("MONITOR"))
	lw.WriteCommand([]byte("PING"))
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := lr.ReadReply(); err != nil || v != "OK" {
		t.Fatalf("pipelined MONITOR ack: %v, %v", v, err)
	}
	lconn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		v, err := lr.ReadReply()
		if err != nil {
			if isTimeout(err) {
				t.Fatal("leftover command after MONITOR did not detach")
			}
			break // detached and closed — success
		}
		if _, ok := v.(string); !ok {
			t.Fatalf("unexpected monitor reply %v", v)
		}
	}
}

// TestNetloopMalformed: a malformed command closes the connection, but
// only after every complete command ahead of it has been answered —
// the same surfacing order as the blocking path.
func TestNetloopMalformed(t *testing.T) {
	s := newWorkerServer(t, 1)
	addr := tcpFrontend(t, s, true, "")
	r, _, conn := tcpClient(t, addr)
	if _, err := conn.Write([]byte("*1\r\n$4\r\nPING\r\n*1\r\n$-5\r\nbogus\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if v, err := r.ReadReply(); err != nil || v != "PONG" {
		t.Fatalf("reply ahead of malformed input: %v, %v", v, err)
	}
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("connection survived malformed input")
	}
}

// TestNetloopHotPathZeroAlloc pins the event-loop read/flush budget
// on BOTH pollers (auto picks per host shape, so neither may regress):
// a warm SET+GET pipeline round trip through the loop allocates
// nothing — stream fill (segment reuse), burst parse (arena), worker
// enqueue (slab), reply write, and loop bookkeeping (stored read
// callback, reused round buffers) are all steady-state
// allocation-free.
func TestNetloopHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel handoffs")
	}
	for _, poller := range []string{"epoll", "portable"} {
		if poller == "epoll" && !epollSupported {
			continue
		}
		t.Run(poller, func(t *testing.T) { testNetloopZeroAlloc(t, poller) })
	}
}

func testNetloopZeroAlloc(t *testing.T, poller string) {
	s := newWorkerServer(t, 1)
	for i := 0; i < defaultSlowlogCap; i++ {
		s.tele.slowlog.Note(telemetry.SlowlogEntry{Duration: time.Hour})
	}
	addr := tcpFrontend(t, s, true, poller)
	_, _, client := tcpClient(t, addr)

	val := bytes.Repeat([]byte("v"), 64)
	var reqBuf, repBuf bytes.Buffer
	cw := resp.NewWriter(&reqBuf)
	cw.WriteCommand([]byte("SET"), []byte("hotkey"), val)
	cw.WriteCommand([]byte("GET"), []byte("hotkey"))
	cw.Flush()
	ew := resp.NewWriter(&repBuf)
	ew.WriteSimple("OK")
	ew.WriteBulk(val)
	ew.Flush()
	req, wantRep := reqBuf.Bytes(), repBuf.Bytes()

	reply := make([]byte, len(wantRep))
	roundTrip := func() {
		if _, err := client.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(client, reply); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // warm stream, arena, slab, round buffers
		roundTrip()
	}
	if !bytes.Equal(reply, wantRep) {
		t.Fatalf("reply = %q, want %q", reply, wantRep)
	}
	if n := testing.AllocsPerRun(200, roundTrip); n != 0 {
		t.Errorf("netloop SET+GET round trip: %.2f allocs, budget 0", n)
	}
}

// BenchmarkFrontend compares the two front-ends end to end over
// loopback TCP: pipelined SET+GET bursts against a worker server, at
// one connection (the event loop's worst case — every burst is a
// fresh poller wakeup) and at eight (its design point — wakeups
// batch across connections). The CI benchstat gate runs matching
// legs against each other as a regression backstop.
func BenchmarkFrontend(b *testing.B) {
	for _, fe := range []struct {
		name    string
		netloop bool
	}{{"goroutine", false}, {"netloop", true}} {
		for _, nconns := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/conns=%d", fe.name, nconns), func(b *testing.B) {
				s := benchServer(b)
				if fe.netloop {
					if err := s.startNetloop(2, ""); err != nil {
						b.Fatal(err)
					}
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go s.acceptLoop(ln)
				defer func() {
					s.closing.Store(true)
					ln.Close()
					s.nudgeConns()
					s.wakeNetloop()
					s.drain()
					s.stopNetloop()
					s.stopWorkers()
				}()

				const depth = 16
				val := bytes.Repeat([]byte("v"), 64)
				var reqBuf bytes.Buffer
				cw := resp.NewWriter(&reqBuf)
				for i := 0; i < depth/2; i++ {
					cw.WriteCommand([]byte("SET"), []byte("benchkey"), val)
					cw.WriteCommand([]byte("GET"), []byte("benchkey"))
				}
				cw.Flush()
				req := reqBuf.Bytes()
				var repBuf bytes.Buffer
				ew := resp.NewWriter(&repBuf)
				for i := 0; i < depth/2; i++ {
					ew.WriteSimple("OK")
					ew.WriteBulk(val)
				}
				ew.Flush()

				conns := make([]net.Conn, nconns)
				for i := range conns {
					c, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					defer c.Close()
					conns[i] = c
				}
				roundTrip := func(c net.Conn, reply []byte) error {
					if _, err := c.Write(req); err != nil {
						return err
					}
					_, err := io.ReadFull(c, reply)
					return err
				}
				for _, c := range conns {
					if err := roundTrip(c, make([]byte, repBuf.Len())); err != nil {
						b.Fatal(err)
					}
				}

				b.SetBytes(int64(len(req)))
				b.ResetTimer()
				var wg sync.WaitGroup
				var failed atomic.Bool
				for i, c := range conns {
					iters := b.N / nconns
					if i < b.N%nconns {
						iters++
					}
					wg.Add(1)
					go func(c net.Conn, iters int) {
						defer wg.Done()
						reply := make([]byte, repBuf.Len())
						for j := 0; j < iters; j++ {
							if err := roundTrip(c, reply); err != nil {
								failed.Store(true)
								return
							}
						}
					}(c, iters)
				}
				wg.Wait()
				if failed.Load() {
					b.Fatal("round trip failed")
				}
			})
		}
	}
}

// benchServer builds a worker server for benchmarks (testing.B has no
// newWorkerServer helper — that one wants *testing.T).
func benchServer(b *testing.B) *server {
	b.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Shards:     1,
		Index:      addrkv.IndexChainHash,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := newServer(sys, defaultSlowlogCap)
	if err := s.startWorkers(0); err != nil {
		b.Fatal(err)
	}
	return s
}
