package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"addrkv/internal/health"
)

// hbTestOpts is the live-heartbeat cluster config the health tests
// use: a fast interval so down-detection deadlines land in fractions
// of a second, with the suspect/down multiples widened (8 and 16, vs
// the production 2 and 4) so -race scheduler stalls during the heavy
// differential legs cannot fake a missed-deadline verdict.
func hbTestOpts() clusterOpts {
	return clusterOpts{rewarm: true, batch: 8, hbEvery: 25 * time.Millisecond, hbSuspect: 8, hbDown: 16}
}

// runDiffOps replays ops against one server on the matching dispatch
// path (direct dispatch for mutex, bounded pipelined bursts for
// worker) and returns the decoded replies.
func runDiffOps(t *testing.T, s *server, ops [][]string, workers bool) []any {
	t.Helper()
	out := make([]any, 0, len(ops))
	if !workers {
		cs := &connState{id: 1}
		for _, op := range ops {
			out = append(out, callCS(t, s, cs, op...))
		}
		return out
	}
	r, w, _ := pipeClient(t, s)
	for start := 0; start < len(ops); start += 25 {
		end := min(start+25, len(ops))
		for _, op := range ops[start:end] {
			ba := make([][]byte, len(op))
			for i, a := range op {
				ba[i] = []byte(a)
			}
			w.WriteCommand(ba...)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := start; i < end; i++ {
			v, err := r.ReadReply()
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			out = append(out, v)
		}
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterHeartbeatDifferential is the tentpole guarantee: a
// heartbeat-on cluster must produce bit-for-bit the same replies AND
// the same modeled statistics report as a heartbeat-off cluster, on
// both dispatch paths and at both fleet sizes — heartbeats, digest
// builds, and CLUSTER HEALTH fan-outs ride read-only surfaces and may
// never perturb the engine model.
func TestClusterHeartbeatDifferential(t *testing.T) {
	for _, workers := range []bool{false, true} {
		for _, n := range []int{1, 3} {
			t.Run(fmt.Sprintf("workers=%v/nodes=%d", workers, n), func(t *testing.T) {
				off := newTestCluster(t, n, workers)
				on := newTestClusterOpts(t, n, workers, hbTestOpts())

				ops := diffOps(t)
				ro := runDiffOps(t, off[0], ops, workers)
				rn := runDiffOps(t, on[0], ops, workers)
				for i := range ro {
					if !reflect.DeepEqual(ro[i], rn[i]) {
						t.Fatalf("%v: heartbeat-off %v != heartbeat-on %v", ops[i], ro[i], rn[i])
					}
				}

				if n > 1 {
					// Make sure the observability plane actually ran before
					// comparing: every node must have completed at least one
					// heartbeat exchange, and a digest fan-out must have
					// served on every node.
					for i, s := range on {
						waitFor(t, 5*time.Second, fmt.Sprintf("node %d heartbeats", i), func() bool {
							return s.clus.hbSent.Load() >= uint64(n-1)
						})
					}
					txt := string(callCS(t, on[0], &connState{id: 9}, "CLUSTER", "HEALTH").([]byte))
					if strings.Count(txt, "up:1") != n {
						t.Fatalf("CLUSTER HEALTH did not reach all %d nodes:\n%s", n, txt)
					}
				}

				for i := range on {
					if !reflect.DeepEqual(off[i].sys.Report(), on[i].sys.Report()) {
						t.Fatalf("node %d modeled stats diverged:\noff: %+v\non:  %+v",
							i, off[i].sys.Report(), on[i].sys.Report())
					}
				}
			})
		}
	}
}

// TestClusterHealthSurfaces covers the command plane: CLUSTER HEALTH
// line format, CLUSTER HEARTBEAT ON/OFF/STATUS, and the heartbeat and
// liveness fields added to CLUSTER INFO.
func TestClusterHealthSurfaces(t *testing.T) {
	srvs := newTestClusterOpts(t, 3, false, hbTestOpts())
	s0 := srvs[0]
	cs := &connState{id: 1}
	waitFor(t, 5*time.Second, "first heartbeat round", func() bool {
		return s0.clus.hbSent.Load() >= 2
	})

	txt := string(callCS(t, s0, cs, "CLUSTER", "HEALTH").([]byte))
	lines := strings.Split(strings.TrimRight(txt, "\r\n"), "\r\n")
	if len(lines) != 3 {
		t.Fatalf("CLUSTER HEALTH rendered %d lines, want 3:\n%s", len(lines), txt)
	}
	for i, ln := range lines {
		for _, want := range []string{fmt.Sprintf("node:%d ", i), "state:ok", "up:1", "slots_owned:", "ops_per_sec:"} {
			if !strings.Contains(ln, want) {
				t.Fatalf("health line %d missing %q: %s", i, want, ln)
			}
		}
	}

	st := string(callCS(t, s0, cs, "CLUSTER", "HEARTBEAT", "STATUS").([]byte))
	for _, want := range []string{"heartbeat_enabled:1", "heartbeat_on:1", "heartbeat_interval_ms:25", "heartbeat_down_after:16"} {
		if !strings.Contains(st, want) {
			t.Fatalf("HEARTBEAT STATUS missing %q:\n%s", want, st)
		}
	}
	if got := callCS(t, s0, cs, "CLUSTER", "HEARTBEAT", "OFF"); got != "OK" {
		t.Fatalf("HEARTBEAT OFF = %v", got)
	}
	if s0.clus.hbOn.Load() {
		t.Fatal("heartbeats still on after OFF")
	}
	if got := callCS(t, s0, cs, "CLUSTER", "HEARTBEAT", "ON"); got != "OK" {
		t.Fatalf("HEARTBEAT ON = %v", got)
	}
	if !s0.clus.hbOn.Load() {
		t.Fatal("heartbeats not re-enabled by ON")
	}

	info := string(callCS(t, s0, cs, "CLUSTER", "INFO").([]byte))
	for _, want := range []string{
		"cluster_state:ok", "cluster_heartbeat_enabled:1", "cluster_heartbeat_interval_ms:25",
		"cluster_nodes_ok:3", "cluster_nodes_suspect:0", "cluster_nodes_down:0",
		"cluster_node_states:0=ok,1=ok,2=ok",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("CLUSTER INFO missing %q:\n%s", want, info)
		}
	}
}

// TestClusterHeartbeatDisabledRefusesOn: with -heartbeat-interval 0
// there are no loops to enable, so CLUSTER HEARTBEAT ON must refuse
// (silently "enabling" nothing would be a lie) while STATUS still
// answers.
func TestClusterHeartbeatDisabledRefusesOn(t *testing.T) {
	s := newTestCluster(t, 1, false)[0]
	cs := &connState{id: 1}
	got := callCS(t, s, cs, "CLUSTER", "HEARTBEAT", "ON")
	if err, ok := got.(error); !ok || !strings.Contains(err.Error(), "heartbeats disabled") {
		t.Fatalf("HEARTBEAT ON with interval 0 = %v, want refusal", got)
	}
	st := string(callCS(t, s, cs, "CLUSTER", "HEARTBEAT", "STATUS").([]byte))
	if !strings.Contains(st, "heartbeat_enabled:0") {
		t.Fatalf("HEARTBEAT STATUS = %s", st)
	}
}

// TestClusterDownDetection kills one node of a live-heartbeat fleet
// and pins the failure timeline on a survivor: the tracker flips the
// dead node to down on the missed-beat deadline, CLUSTER HEALTH shows
// state:down with up:0, CLUSTER INFO degrades, and the dead node's
// digest-derived series vanish from /cluster/metrics while its
// liveness series stay (up 0, state 2).
func TestClusterDownDetection(t *testing.T) {
	srvs := newTestClusterOpts(t, 3, false, hbTestOpts())
	s0 := srvs[0]
	cs := &connState{id: 1}
	waitFor(t, 5*time.Second, "heartbeats from all peers", func() bool {
		snap := s0.clus.health.Snapshot()
		return snap[1].Beats > 0 && snap[2].Beats > 0
	})

	// Before the kill the whole fleet is up and serving digests.
	rec := httptest.NewRecorder()
	s0.clusterMetricsHandler(rec, nil)
	if body := rec.Body.String(); !strings.Contains(body, `addrkv_fleet_ops{node="2"}`) {
		t.Fatalf("/cluster/metrics missing node 2 digest series before kill:\n%s", body)
	}

	killed := time.Now()
	srvs[2].closeCluster()
	waitFor(t, 10*time.Second, "node 2 declared down", func() bool {
		return s0.clus.health.State(2) == health.StateDown
	})
	// The deadline is DownAfter (4) missed 20ms intervals; the bound
	// here is deliberately loose for CI scheduling noise but still pins
	// detection to the deadline mechanism, not to some minutes-long
	// TCP timeout.
	if elapsed := time.Since(killed); elapsed > 5*time.Second {
		t.Fatalf("down detection took %v", elapsed)
	}

	txt := string(callCS(t, s0, cs, "CLUSTER", "HEALTH").([]byte))
	var deadLine string
	for _, ln := range strings.Split(txt, "\r\n") {
		if strings.HasPrefix(ln, "node:2 ") {
			deadLine = ln
		}
	}
	for _, want := range []string{"state:down", "up:0"} {
		if !strings.Contains(deadLine, want) {
			t.Fatalf("dead node health line missing %q: %s", want, deadLine)
		}
	}
	if strings.Contains(deadLine, "slots_owned:") {
		t.Fatalf("dead node still reports digest fields: %s", deadLine)
	}

	info := string(callCS(t, s0, cs, "CLUSTER", "INFO").([]byte))
	for _, want := range []string{"cluster_state:degraded", "cluster_nodes_down:1"} {
		if !strings.Contains(info, want) {
			t.Fatalf("CLUSTER INFO missing %q after kill:\n%s", want, info)
		}
	}

	rec = httptest.NewRecorder()
	s0.clusterMetricsHandler(rec, nil)
	body := rec.Body.String()
	if !strings.Contains(body, `addrkv_fleet_up{node="2"} 0`) || !strings.Contains(body, `addrkv_fleet_state{node="2"} 2`) {
		t.Fatalf("liveness series wrong after kill:\n%s", body)
	}
	if strings.Contains(body, `addrkv_fleet_ops{node="2"}`) {
		t.Fatalf("dead node's digest series did not disappear:\n%s", body)
	}
	// Survivors still serve theirs.
	if !strings.Contains(body, `addrkv_fleet_ops{node="1"}`) {
		t.Fatalf("live node's digest series missing:\n%s", body)
	}
}

// TestClusterMigrateStatus: CLUSTER MIGRATE STATUS errors before any
// migration has run, then reports the completed migration's counters.
func TestClusterMigrateStatus(t *testing.T) {
	srvs := newTestCluster(t, 2, false)
	s0 := srvs[0]
	cs := &connState{id: 1}

	got := callCS(t, s0, cs, "CLUSTER", "MIGRATE", "STATUS")
	if err, ok := got.(error); !ok || !strings.Contains(err.Error(), "no migration") {
		t.Fatalf("MIGRATE STATUS before any migration = %v, want error", got)
	}

	const slot = 42
	keys := keysInSlot(t, slot, 25)
	for i, k := range keys {
		if got := callCS(t, s0, cs, "SET", k, fmt.Sprintf("v-%d", i)); got != "OK" {
			t.Fatalf("SET %s = %v", k, got)
		}
	}
	if rep, ok := callCS(t, s0, cs, "CLUSTER", "MIGRATE", "42", "1").(string); !ok || !strings.HasPrefix(rep, "OK slot=42") {
		t.Fatalf("CLUSTER MIGRATE = %v", rep)
	}

	st := string(callCS(t, s0, cs, "CLUSTER", "MIGRATE", "STATUS").([]byte))
	for _, want := range []string{
		"migration_slot:42", "migration_dest:1", "migration_active:0", "migration_failed:0",
		"migration_keys_total:25", "migration_keys_shipped:25", "migration_keys_remaining:0",
	} {
		if !strings.Contains(st, want) {
			t.Fatalf("MIGRATE STATUS missing %q:\n%s", want, st)
		}
	}
}

// TestClusterSnapshotEndpoint: /cluster/snapshot.json is valid JSON
// with the pinned schema — fleet rows in node order, heartbeat config,
// per-node digests for reachable nodes, and the migration block once
// one has run.
func TestClusterSnapshotEndpoint(t *testing.T) {
	srvs := newTestClusterOpts(t, 2, false, hbTestOpts())
	s0 := srvs[0]
	cs := &connState{id: 1}
	keys := keysInSlot(t, 7, 5)
	for _, k := range keys {
		callCS(t, s0, cs, "SET", k, "v")
	}
	if rep, ok := callCS(t, s0, cs, "CLUSTER", "MIGRATE", "7", "1").(string); !ok || !strings.HasPrefix(rep, "OK slot=7") {
		t.Fatalf("CLUSTER MIGRATE = %v", rep)
	}

	// Digests are cached for half a heartbeat interval, so the
	// destination's row may briefly predate the batch install; poll
	// until the migrated keys show up there.
	var snap clusterSnapshot
	waitFor(t, 5*time.Second, "destination digest to include migrated keys", func() bool {
		rec := httptest.NewRecorder()
		s0.clusterSnapshotHandler(rec, nil)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		snap = clusterSnapshot{}
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v", err)
		}
		return len(snap.Nodes) == 2 && snap.Nodes[1].Digest != nil && snap.Nodes[1].Digest.Keys > 0
	})
	if snap.Name != "kvserve-cluster" || snap.SourceNode != 0 || snap.State != "ok" {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if !snap.Heartbeat.Enabled || snap.Heartbeat.IntervalMS != 25 {
		t.Fatalf("snapshot heartbeat block = %+v", snap.Heartbeat)
	}
	if len(snap.Nodes) != 2 || snap.Nodes[0].Node != 0 || snap.Nodes[1].Node != 1 {
		t.Fatalf("snapshot nodes = %+v", snap.Nodes)
	}
	if !snap.Nodes[0].Up || snap.Nodes[0].Digest == nil {
		t.Fatalf("self row has no digest: %+v", snap.Nodes[0])
	}
	if !snap.Nodes[1].Up {
		t.Fatalf("peer row not up: %+v", snap.Nodes[1])
	}
	if snap.Migration == nil || snap.Migration.Slot != 7 || snap.Migration.KeysShipped != 5 {
		t.Fatalf("snapshot migration block = %+v", snap.Migration)
	}
}
