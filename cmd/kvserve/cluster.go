// Cluster mode for kvserve (-cluster-nodes): this node joins an
// N-member hash-slot cluster. Keys hash to one of 16384 slots (the
// same xxh64 route hash that picks the home shard, so a slot's keys
// never split across shards); each node owns a contiguous share and
// answers -MOVED/-ASK redirects for the rest, Redis-cluster style.
// Nodes exchange the versioned slot map and migration streams over a
// small node-to-node bus (internal/cluster); the client data path
// never crosses the bus.
//
// Correctness is anchored in the shard op gate, not in classify-time
// routing: every single-key op consults the node's slot view UNDER its
// shard lock (shard.SetOpGate), so a migration can never race a
// buffered op into serving a key that already left the node. Denied
// ops surface as OpOutcome.Denied and are rewritten into redirects
// here — in execute() for the mutex path and flushPending() for the
// worker path. ASKING arms a one-shot gate bypass for the next
// command, honored only while the key's slot is actually importing.
//
// CLUSTER MIGRATE <slot> <node> runs a live migration: records stream
// to the destination in CRC'd batches while the slot dual-serves,
// ownership flips atomically at commit, and the destination re-warms
// its STLT from the migrated records (the paper's insertSTLT step) —
// each installed batch emits an stlt.rewarm trace span so the warm-up
// cliff is measurable.
package main

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"addrkv"
	"addrkv/internal/cluster"
	"addrkv/internal/health"
	"addrkv/internal/resp"
	"addrkv/internal/trace"
	"addrkv/internal/wal"
)

// clusterState is the server's cluster runtime: the node's slot view,
// the bus it serves, and its handles to every peer's bus.
type clusterState struct {
	node   *cluster.Node
	bus    *cluster.BusServer
	peers  []*cluster.Peer // node index -> bus handle, nil at self
	rewarm bool
	batch  int

	// migMu serializes operator-issued CLUSTER MIGRATE commands: one
	// migration at a time is the supported regime (concurrent sources
	// would race the map epoch — see internal/cluster/migrate.go).
	migMu sync.Mutex

	// Fleet observability (see health.go). hbPeers are DEDICATED bus
	// handles for heartbeats and digest collection — separate from the
	// migration peers, so a heartbeat never waits behind a migration
	// batch call on the per-peer mutex and turns falsely suspect.
	health  *health.Tracker
	hbPeers []*cluster.Peer // node index -> heartbeat bus handle, nil at self
	hbEvery time.Duration   // heartbeat period (0 = heartbeats off)
	hbOn    atomic.Bool     // runtime toggle (CLUSTER HEARTBEAT ON|OFF)
	hbStop  chan struct{}
	hbWG    sync.WaitGroup
	hbSent  atomic.Uint64
	hbFails atomic.Uint64

	// Cached own digest (see clusterDigest) and the ops-rate window.
	digMu   sync.Mutex
	digCur  *health.Digest
	digEnc  []byte
	digAt   time.Time
	rateMu  sync.Mutex
	lastOps uint64
	lastAt  time.Time
}

// parseClusterNodes parses the -cluster-nodes spec: comma-separated
// clientAddr@busAddr pairs, ordered by node index.
func parseClusterNodes(spec string) ([]cluster.NodeInfo, error) {
	var nodes []cluster.NodeInfo
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		client, bus, ok := strings.Cut(part, "@")
		if !ok || client == "" || bus == "" {
			return nil, fmt.Errorf("cluster node %q: want clientAddr@busAddr", part)
		}
		nodes = append(nodes, cluster.NodeInfo{Addr: client, Bus: bus})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-cluster-nodes is empty")
	}
	return nodes, nil
}

// clusterOpts bundles setupCluster's tuning knobs.
type clusterOpts struct {
	assign    string        // initial slot assignment override (-cluster-slots)
	rewarm    bool          // re-warm the STLT for migrated records
	batch     int           // keys per migration batch (0 = default)
	hbEvery   time.Duration // heartbeat period (0 = heartbeats off)
	hbSuspect int           // missed intervals before suspect (0 = default)
	hbDown    int           // missed intervals before down (0 = default)
}

// setupCluster brings the cluster runtime up: the initial slot map
// (even split unless o.assign overrides it), the bus listener, peer
// handles (plus the dedicated heartbeat handles), the health tracker,
// the shard op gate, the cluster metrics, and the heartbeat loops.
func (s *server) setupCluster(nodes []cluster.NodeInfo, self int, o clusterOpts) error {
	if self < 0 || self >= len(nodes) {
		return fmt.Errorf("cluster: -cluster-self %d out of range (%d nodes)", self, len(nodes))
	}
	m := cluster.NewSlotMap(nodes)
	if o.assign != "" {
		if err := cluster.ParseAssignment(m, o.assign); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", nodes[self].Bus)
	if err != nil {
		return fmt.Errorf("cluster: bus listen: %w", err)
	}
	cl := &clusterState{
		node:    cluster.NewNode(self, m),
		peers:   make([]*cluster.Peer, len(nodes)),
		hbPeers: make([]*cluster.Peer, len(nodes)),
		rewarm:  o.rewarm,
		batch:   o.batch,
		hbEvery: o.hbEvery,
		health: health.NewTracker(len(nodes), self, health.Config{
			Interval:     o.hbEvery,
			SuspectAfter: o.hbSuspect,
			DownAfter:    o.hbDown,
		}),
	}
	// A heartbeat call should fail fast relative to its own period —
	// detection is receiver-side anyway, so a slow call buys nothing.
	hbTimeout := 2 * o.hbEvery
	if hbTimeout < time.Second {
		hbTimeout = time.Second
	}
	for i, n := range nodes {
		if i != self {
			cl.peers[i] = cluster.NewPeer(n.Bus)
			hp := cluster.NewPeer(n.Bus)
			hp.Timeout = hbTimeout
			cl.hbPeers[i] = hp
		}
	}
	s.clus = cl
	cl.bus = cluster.ServeBus(ln, s.busHandler)
	s.sys.Cluster().SetOpGate(cl.node.Gate)
	s.tele.registerClusterMetrics(s)
	s.startHeartbeats()
	return nil
}

// closeCluster tears the heartbeat loops, the bus, and the peer
// connections down (after the client connections drained).
func (s *server) closeCluster() {
	if s.clus == nil {
		return
	}
	s.clus.stopHeartbeats()
	s.clus.bus.Close()
	for _, p := range s.clus.peers {
		if p != nil {
			p.Close()
		}
	}
	for _, p := range s.clus.hbPeers {
		if p != nil {
			p.Close()
		}
	}
}

// busHandler answers one bus request. It mirrors the protocol the
// migration runner speaks (internal/cluster): map exchange, import
// announcements, record batches, and the commit that flips ownership.
func (s *server) busHandler(m cluster.Msg) (cluster.MsgType, []byte) {
	n := s.clus.node
	switch m.Type {
	case cluster.MsgHello, cluster.MsgMapGet:
		return cluster.MsgMap, n.Map().Encode(nil)
	case cluster.MsgMapUpdate:
		sm, err := cluster.DecodeSlotMap(m.Payload)
		if err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		n.AdoptMap(sm)
		return cluster.MsgAck, cluster.EncodeU64(n.Version())
	case cluster.MsgMigStart:
		slot, src, err := cluster.DecodeSlotNode(m.Payload)
		if err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		if err := n.BeginImport(slot, src); err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		return cluster.MsgAck, nil
	case cluster.MsgMigBatch:
		slot, src, rewarm, frames, err := cluster.DecodeMigBatch(m.Payload)
		if err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		// Only install while the slot is importing from exactly this
		// source: a late duplicate batch (retried copy raced by the
		// original on a broken connection) arriving after the commit —
		// and after ASK-written client updates — must not re-install
		// stale records over newer acknowledged writes.
		if from, ok := n.ImportingFrom(slot); !ok || from != src {
			return cluster.MsgErr, []byte(fmt.Sprintf("slot %d not importing from node %d", slot, src))
		}
		res := wal.Scan(frames)
		if res.Torn {
			return cluster.MsgErr, []byte("torn migration batch")
		}
		// One stlt.rewarm span per installed batch: how many records
		// landed and how many STLT rows were warmed, so TRACE DUMP shows
		// the destination's warm-up (or, with rewarm off, its absence).
		sp := s.tracer.BeginSampled("stlt.rewarm", nil)
		installed, rewarmed := s.sys.Cluster().InstallRecords(res.Records, rewarm)
		sp.EventRel(trace.EvSTLTRewarm, 0, int64(installed), int64(rewarmed), int64(slot))
		s.tracer.Finish(sp, -1, false, false)
		n.Metrics.ImpBatches.Add(1)
		n.Metrics.ImpRecords.Add(uint64(installed))
		n.Metrics.ImpRewarmed.Add(uint64(rewarmed))
		return cluster.MsgAck, cluster.EncodeU64(uint64(installed))
	case cluster.MsgMigCommit:
		slot, sm, err := cluster.DecodeMigCommit(m.Payload)
		if err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		n.CommitImport(slot, sm)
		return cluster.MsgAck, cluster.EncodeU64(n.Version())
	case cluster.MsgHeartbeat:
		d, err := health.DecodeDigest(m.Payload)
		if err != nil {
			return cluster.MsgErr, []byte(err.Error())
		}
		s.clus.health.Alive(d.Node, d)
		return cluster.MsgAck, cluster.EncodeU64(n.Version())
	case cluster.MsgDigestGet:
		_, enc := s.clusterDigest()
		return cluster.MsgDigest, enc
	}
	return cluster.MsgErr, []byte(fmt.Sprintf("unhandled bus message type %d", m.Type))
}

// clusterConsumeAsking consumes the connection's one-shot ASKING flag
// (it covers exactly the next command, Redis semantics) and reports
// whether that command may bypass the op gate — only when its key's
// slot is actually importing here; ASKING toward a slot this node has
// no claim on still answers MOVED.
func (s *server) clusterConsumeAsking(cs *connState, args [][]byte) bool {
	if !cs.asking {
		return false
	}
	cs.asking = false
	if len(args) < 2 {
		return false
	}
	_, act, _ := s.clus.node.RouteKey(args[1], true)
	return act == cluster.RouteServeBypass
}

// clusterRedirectMsg renders the redirect for a key the op gate
// denied, resolved against the node's CURRENT slot view.
func (s *server) clusterRedirectMsg(key []byte) string {
	slot, kind, addr := s.clus.node.RedirectFor(key)
	met := &s.clus.node.Metrics
	switch kind {
	case cluster.RedirectMoved:
		met.Moved.Add(1)
		return fmt.Sprintf("MOVED %d %s", slot, addr)
	case cluster.RedirectAsk:
		met.Asked.Add(1)
		return fmt.Sprintf("ASK %d %s", slot, addr)
	default:
		met.TryAgain.Add(1)
		return "TRYAGAIN slot state changed, retry"
	}
}

// clusterRedirect writes the redirect reply for a denied single-key op
// (the synchronous execute path; the worker path writes the same
// message from flushPending).
func (s *server) clusterRedirect(w *resp.Writer, key []byte) (quit, monitor, isErr bool) {
	w.WriteError(s.clusterRedirectMsg(key))
	return false, false, true
}

// clusterBatchCheck classifies a multi-key command: every key must
// hash to ONE slot (CROSSSLOT otherwise), the slot must be owned here
// (MOVED otherwise) and stable (TRYAGAIN while migrating or importing
// — batches get no per-key dual-serve split). Returns true when it
// wrote a reply.
func (s *server) clusterBatchCheck(w *resp.Writer, keys [][]byte) bool {
	slot := cluster.SlotOf(keys[0])
	for _, k := range keys[1:] {
		if cluster.SlotOf(k) != slot {
			w.WriteError("CROSSSLOT Keys in request don't hash to the same slot")
			return true
		}
	}
	owner, ownerAddr, migrating, importing := s.clus.node.SlotInfo(slot)
	if owner != s.clus.node.Self() {
		s.clus.node.Metrics.Moved.Add(1)
		w.WriteError(fmt.Sprintf("MOVED %d %s", slot, ownerAddr))
		return true
	}
	if migrating || importing {
		s.clus.node.Metrics.TryAgain.Add(1)
		w.WriteError("TRYAGAIN slot is migrating, retry")
		return true
	}
	return false
}

// clusterScanCheck refuses SCAN/RANGE while any slot is migrating or
// importing here. Scans have no single home key for the shard gate to
// rule on — mid-migration, a key can legitimately live on either node,
// so an ordered page would silently skip or duplicate records crossing
// nodes. TRYAGAIN until the slot map is stable is the honest answer
// (batches over a migrating slot get the same treatment). Returns true
// when it wrote the reply.
func (s *server) clusterScanCheck(w *resp.Writer) bool {
	n := s.clus.node
	if len(n.MigratingSlots()) == 0 && len(n.ImportingSlots()) == 0 {
		return false
	}
	n.Metrics.TryAgain.Add(1)
	w.WriteError("TRYAGAIN slot is migrating, retry")
	return true
}

// clusterTryAgain answers a batch the op gate denied mid-flight: the
// slot started migrating between the classify check and execution.
func (s *server) clusterTryAgain(w *resp.Writer) (quit, monitor, isErr bool) {
	s.clus.node.Metrics.TryAgain.Add(1)
	w.WriteError("TRYAGAIN slot is migrating, retry")
	return false, false, true
}

// clusterCmd handles CLUSTER SLOTS | INFO | HEALTH | HEARTBEAT |
// MIGRATE <slot> <node> | MIGRATE STATUS.
func (s *server) clusterCmd(w *resp.Writer, args [][]byte) (quit, monitor, isErr bool) {
	fail := func(msg string) (bool, bool, bool) {
		w.WriteError(msg)
		return false, false, true
	}
	if s.clus == nil {
		return fail("ERR This instance has cluster support disabled")
	}
	if len(args) < 2 {
		return fail("ERR wrong number of arguments for 'cluster'")
	}
	switch strings.ToLower(string(args[1])) {
	case "slots":
		// One entry per contiguous owned range: start, end, then the
		// owning node as [clientAddr, nodeIndex, healthState].
		m := s.clus.node.Map()
		ranges := m.Ranges()
		w.WriteArrayHeader(len(ranges))
		for _, r := range ranges {
			w.WriteArrayHeader(3)
			w.WriteInt(int64(r.Start))
			w.WriteInt(int64(r.End))
			w.WriteArrayHeader(3)
			w.WriteBulkString(m.Nodes[r.Node].Addr)
			w.WriteInt(int64(r.Node))
			w.WriteBulkString(s.clus.health.State(r.Node).String())
		}
	case "info":
		s.statsMu.RLock()
		rep := s.sys.Report()
		s.statsMu.RUnlock()
		var b strings.Builder
		fmt.Fprintf(&b, "cluster_state:%s\r\n", s.clusterStateName())
		s.clusterInfo(func(format string, args ...any) {
			fmt.Fprintf(&b, format, args...)
		}, rep)
		w.WriteBulk([]byte(b.String()))
	case "health":
		if len(args) != 2 {
			return fail("ERR wrong number of arguments for 'cluster health'")
		}
		w.WriteBulk([]byte(s.clusterHealthText()))
	case "heartbeat":
		if len(args) != 3 {
			return fail("ERR usage: CLUSTER HEARTBEAT ON|OFF|STATUS")
		}
		switch strings.ToLower(string(args[2])) {
		case "on":
			if s.clus.hbEvery <= 0 {
				return fail("ERR heartbeats disabled (-heartbeat-interval 0)")
			}
			s.clus.hbOn.Store(true)
			w.WriteSimple("OK")
		case "off":
			s.clus.hbOn.Store(false)
			w.WriteSimple("OK")
		case "status":
			w.WriteBulk([]byte(s.heartbeatStatusText()))
		default:
			return fail("ERR usage: CLUSTER HEARTBEAT ON|OFF|STATUS")
		}
	case "migrate":
		if len(args) == 3 && strings.EqualFold(string(args[2]), "status") {
			txt, ok := s.migrateStatusText()
			if !ok {
				return fail("ERR no migration has run on this node")
			}
			w.WriteBulk([]byte(txt))
			break
		}
		if len(args) != 4 {
			return fail("ERR usage: CLUSTER MIGRATE <slot> <dest-node> | CLUSTER MIGRATE STATUS")
		}
		slot, err1 := strconv.Atoi(string(args[2]))
		dest, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil || slot < 0 || slot >= cluster.NumSlots {
			return fail("ERR invalid slot or node index")
		}
		res, err := s.clusterMigrate(uint16(slot), dest)
		if err != nil {
			return fail(fmt.Sprintf("ERR migrate: %v", err))
		}
		w.WriteSimple(fmt.Sprintf("OK slot=%d dest=%d keys=%d bytes=%d batches=%d rewarm=%v us=%d",
			res.Slot, res.Dest, res.Keys, res.Bytes, res.Batches, res.Rewarm,
			res.Duration.Microseconds()))
	default:
		return fail(fmt.Sprintf("ERR unknown CLUSTER subcommand '%s'", args[1]))
	}
	return false, false, false
}

// clusterFlushGuard refuses FLUSHALL while any slot migration
// involves this node: records already shipped to a destination would
// survive a local flush and resurface once ownership commits, making
// the flush silently partial. On success it holds migMu — so no new
// source-side migration can start mid-flush — until the caller runs
// release. (An import announced over the bus during the flush is not
// excluded; FLUSHALL remains node-local and the importing source is
// unaffected either way.) Standalone mode passes trivially.
func (s *server) clusterFlushGuard() (release func(), err error) {
	cl := s.clus
	if cl == nil {
		return func() {}, nil
	}
	if !cl.migMu.TryLock() {
		return nil, fmt.Errorf("slot migration in progress; retry after it commits")
	}
	n := cl.node
	if len(n.MigratingSlots()) > 0 || len(n.ImportingSlots()) > 0 {
		cl.migMu.Unlock()
		return nil, fmt.Errorf("slots migrating or importing; retry after the migration commits")
	}
	return cl.migMu.Unlock, nil
}

// clusterMigrate runs one operator-issued slot migration. It blocks
// the issuing connection until committed or failed; every other
// connection keeps being served throughout (dual-serve via the gate).
func (s *server) clusterMigrate(slot uint16, dest int) (cluster.MigrationResult, error) {
	cl := s.clus
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	return cl.node.Migrate(s.sys.Cluster(), func(i int) *cluster.Peer {
		if i < 0 || i >= len(cl.peers) {
			return nil
		}
		return cl.peers[i]
	}, slot, dest, cluster.MigrateOpts{
		BatchKeys: cl.batch,
		Rewarm:    cl.rewarm,
		// One mig.progress span per shipped batch (plus one at commit):
		// records shipped so far, the run's work list, and the slot, so
		// TRACE DUMP reconstructs the migration's advancement timeline.
		OnProgress: func(mp cluster.MigrationProgress) {
			sp := s.tracer.BeginSampled("mig.progress", nil)
			sp.EventRel(trace.EvMigProgress, 0, int64(mp.KeysShipped), int64(mp.KeysTotal), int64(mp.Slot))
			s.tracer.Finish(sp, -1, false, false)
		},
	})
}

// clusterInfo renders the INFO "# cluster" section. Emits nothing in
// standalone mode, keeping standalone INFO byte-identical to earlier
// releases. cluster_gets_total/cluster_fast_hits_total sum the
// per-shard counters so clients can sample the STLT hit rate over a
// window (the migration warm-up cliff measurement).
func (s *server) clusterInfo(add func(format string, args ...any), rep addrkv.Report) {
	if s.clus == nil {
		return
	}
	n := s.clus.node
	m := n.Map()
	met := &n.Metrics
	add("# cluster\r\n")
	add("cluster_enabled:1\r\n")
	add("cluster_node_index:%d\r\n", n.Self())
	add("cluster_known_nodes:%d\r\n", len(m.Nodes))
	add("cluster_addr:%s\r\n", m.Nodes[n.Self()].Addr)
	add("cluster_bus_addr:%s\r\n", s.clus.bus.Addr())
	add("cluster_map_version:%d\r\n", m.Version)
	add("cluster_slots_owned:%d\r\n", n.OwnedSlots())
	add("cluster_slots_migrating:%d\r\n", len(n.MigratingSlots()))
	add("cluster_slots_importing:%d\r\n", len(n.ImportingSlots()))
	add("cluster_moved_total:%d\r\n", met.Moved.Load())
	add("cluster_ask_total:%d\r\n", met.Asked.Load())
	add("cluster_asking_total:%d\r\n", met.Asking.Load())
	add("cluster_tryagain_total:%d\r\n", met.TryAgain.Load())
	add("cluster_migrations_started:%d\r\n", met.MigStarted.Load())
	add("cluster_migrations_completed:%d\r\n", met.MigCompleted.Load())
	add("cluster_migrations_failed:%d\r\n", met.MigFailed.Load())
	add("cluster_migrated_keys:%d\r\n", met.MigKeys.Load())
	add("cluster_migrated_bytes:%d\r\n", met.MigBytes.Load())
	add("cluster_import_batches:%d\r\n", met.ImpBatches.Load())
	add("cluster_import_records:%d\r\n", met.ImpRecords.Load())
	add("cluster_import_rewarmed:%d\r\n", met.ImpRewarmed.Load())
	add("cluster_last_migration_slot:%d\r\n", met.LastMigSlot.Load())
	add("cluster_last_migration_us:%d\r\n", met.LastMigUS.Load())
	add("cluster_bus_requests:%d\r\n", s.clus.bus.Served())
	var gets, fastHits uint64
	for _, st := range rep.PerShard {
		gets += st.Gets
		fastHits += st.FastHits
	}
	add("cluster_gets_total:%d\r\n", gets)
	add("cluster_fast_hits_total:%d\r\n", fastHits)
	add("cluster_heartbeat_enabled:%d\r\n", b2i(s.clus.hbEvery > 0))
	add("cluster_heartbeat_on:%d\r\n", b2i(s.clus.hbOn.Load()))
	add("cluster_heartbeat_interval_ms:%.0f\r\n", float64(s.clus.hbEvery)/1e6)
	add("cluster_heartbeats_sent:%d\r\n", s.clus.hbSent.Load())
	add("cluster_heartbeat_failures:%d\r\n", s.clus.hbFails.Load())
	var nOK, nSuspect, nDown int
	states := make([]string, 0, len(m.Nodes))
	for _, nh := range s.clus.health.Snapshot() {
		switch nh.State {
		case health.StateOK:
			nOK++
		case health.StateSuspect:
			nSuspect++
		default:
			nDown++
		}
		states = append(states, fmt.Sprintf("%d=%s", nh.Node, nh.State))
	}
	add("cluster_nodes_ok:%d\r\n", nOK)
	add("cluster_nodes_suspect:%d\r\n", nSuspect)
	add("cluster_nodes_down:%d\r\n", nDown)
	add("cluster_node_states:%s\r\n", strings.Join(states, ","))
}

// registerClusterMetrics exposes the node's cluster counters on
// /metrics, read at scrape time like registerTraceMetrics.
func (t *serverTele) registerClusterMetrics(s *server) {
	n := s.clus.node
	met := &n.Metrics
	g := func(name, help string, f func() float64) {
		t.reg.GaugeFunc(name, help, nil, f)
	}
	g("addrkv_cluster_map_version", "Installed slot map epoch.",
		func() float64 { return float64(n.Version()) })
	g("addrkv_cluster_slots_owned", "Hash slots owned by this node.",
		func() float64 { return float64(n.OwnedSlots()) })
	g("addrkv_cluster_slots_migrating", "Slots currently leaving this node.",
		func() float64 { return float64(len(n.MigratingSlots())) })
	g("addrkv_cluster_slots_importing", "Slots currently arriving at this node.",
		func() float64 { return float64(len(n.ImportingSlots())) })
	g("addrkv_cluster_moved_total", "MOVED redirects answered.",
		func() float64 { return float64(met.Moved.Load()) })
	g("addrkv_cluster_ask_total", "ASK redirects answered.",
		func() float64 { return float64(met.Asked.Load()) })
	g("addrkv_cluster_asking_total", "ASKING commands accepted.",
		func() float64 { return float64(met.Asking.Load()) })
	g("addrkv_cluster_tryagain_total", "TRYAGAIN answers.",
		func() float64 { return float64(met.TryAgain.Load()) })
	g("addrkv_cluster_migrations_completed_total", "Slot migrations committed from this node.",
		func() float64 { return float64(met.MigCompleted.Load()) })
	g("addrkv_cluster_migrated_keys_total", "Records shipped out by slot migrations.",
		func() float64 { return float64(met.MigKeys.Load()) })
	g("addrkv_cluster_migrated_bytes_total", "Frame bytes shipped out by slot migrations.",
		func() float64 { return float64(met.MigBytes.Load()) })
	g("addrkv_cluster_import_records_total", "Records installed by slot imports.",
		func() float64 { return float64(met.ImpRecords.Load()) })
	g("addrkv_cluster_import_rewarmed_total", "STLT rows re-warmed during slot imports.",
		func() float64 { return float64(met.ImpRewarmed.Load()) })
	g("addrkv_cluster_bus_requests_total", "Node-to-node bus requests served.",
		func() float64 { return float64(s.clus.bus.Served()) })
	g("addrkv_cluster_heartbeats_sent_total", "Heartbeat frames acked by peers.",
		func() float64 { return float64(s.clus.hbSent.Load()) })
	g("addrkv_cluster_heartbeat_failures_total", "Heartbeat calls that errored.",
		func() float64 { return float64(s.clus.hbFails.Load()) })
	g("addrkv_cluster_degraded", "1 when any slot-owning node is suspect or down.",
		func() float64 {
			if s.clus.health.Degraded(n.Map().Owners()) {
				return 1
			}
			return 0
		})
	countState := func(want health.State) float64 {
		var c float64
		for _, nh := range s.clus.health.Snapshot() {
			if nh.State == want {
				c++
			}
		}
		return c
	}
	g("addrkv_cluster_nodes_suspect", "Peers currently classified suspect.",
		func() float64 { return countState(health.StateSuspect) })
	g("addrkv_cluster_nodes_down", "Peers currently classified down.",
		func() float64 { return countState(health.StateDown) })
	// Migration progress gauges: the source-side view of the current
	// (or most recent) slot migration, zero before any migration runs.
	mg := func(name, help string, f func(cluster.MigrationProgress) float64) {
		g(name, help, func() float64 {
			mp, ok := n.Progress()
			if !ok {
				return 0
			}
			return f(mp)
		})
	}
	mg("addrkv_cluster_migration_active", "1 while a slot migration is running here.",
		func(mp cluster.MigrationProgress) float64 { return float64(b2i(mp.Active)) })
	mg("addrkv_cluster_migration_slot", "Slot of the current/last migration.",
		func(mp cluster.MigrationProgress) float64 { return float64(mp.Slot) })
	mg("addrkv_cluster_migration_keys_total", "Records in the migration's work list.",
		func(mp cluster.MigrationProgress) float64 { return float64(mp.KeysTotal) })
	mg("addrkv_cluster_migration_keys_shipped", "Records shipped so far.",
		func(mp cluster.MigrationProgress) float64 { return float64(mp.KeysShipped) })
	mg("addrkv_cluster_migration_batches_shipped", "Batches shipped so far.",
		func(mp cluster.MigrationProgress) float64 { return float64(mp.BatchesShipped) })
	mg("addrkv_cluster_migration_bytes", "Frame bytes shipped so far.",
		func(mp cluster.MigrationProgress) float64 { return float64(mp.Bytes) })
	mg("addrkv_cluster_migration_elapsed_seconds", "Elapsed wall time of the migration.",
		func(mp cluster.MigrationProgress) float64 { return mp.Elapsed.Seconds() })
	mg("addrkv_cluster_migration_eta_seconds", "Estimated remaining ship time (0 when idle).",
		func(mp cluster.MigrationProgress) float64 { return mp.ETA.Seconds() })
}
