package main

import (
	"fmt"
	"strings"
	"testing"

	"addrkv"
	"addrkv/internal/wal"
)

// newPersistServer builds a server with durability on, recovering
// whatever dir already holds.
func newPersistServer(t *testing.T, shards int, dir, fsync string, workers bool) *server {
	t.Helper()
	sys, err := addrkv.New(addrkv.Options{
		Keys:       2000,
		Shards:     shards,
		Index:      addrkv.IndexChainHash,
		Mode:       addrkv.ModeSTLT,
		RedisLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := openPersistence(sys, persistOpts{dir: dir, fsync: fsync, shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(sys, defaultSlowlogCap)
	s.persist = ps
	s.tele.registerPersistMetrics(s)
	if workers {
		if err := s.startWorkers(0); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// shutdownPersist mirrors main's shutdown ordering.
func shutdownPersist(s *server) {
	s.stopWorkers()
	s.closePersistence()
}

// TestPersistRestartRoundTrip: data set through the server survives a
// restart, INFO grows a persistence section, and BGSAVE/LASTSAVE work.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newPersistServer(t, 2, dir, "everysec", false)
	for i := 0; i < 50; i++ {
		if got := call(t, s, "SET", fmt.Sprintf("pk-%d", i), fmt.Sprintf("pv-%d", i)); got != "OK" {
			t.Fatalf("SET = %v", got)
		}
	}
	call(t, s, "DEL", "pk-7")
	if got := call(t, s, "LASTSAVE"); got.(int64) != 0 {
		t.Fatalf("LASTSAVE before any save = %v", got)
	}
	if got := call(t, s, "BGSAVE"); got != "Background saving started" {
		t.Fatalf("BGSAVE = %v", got)
	}
	s.persist.saveWG.Wait()
	if got := call(t, s, "LASTSAVE"); got.(int64) == 0 {
		t.Fatal("LASTSAVE still 0 after BGSAVE")
	}
	info := string(call(t, s, "INFO").([]byte))
	for _, want := range []string{"# persistence", "aof_enabled:1", "aof_fsync:everysec", "bgsaves_ok:1", "aof_shard0_gen:2"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	// More writes after the snapshot land in the new generation's tail.
	call(t, s, "SET", "post-snap", "tail-value")
	shutdownPersist(s)

	s2 := newPersistServer(t, 2, dir, "everysec", false)
	defer shutdownPersist(s2)
	if got := call(t, s2, "DBSIZE"); got.(int64) != 50 {
		t.Fatalf("recovered DBSIZE = %v, want 50", got)
	}
	if got := call(t, s2, "GET", "pk-3"); string(got.([]byte)) != "pv-3" {
		t.Fatalf("GET pk-3 = %v", got)
	}
	if got := call(t, s2, "GET", "pk-7"); got != nil {
		t.Fatal("deleted key resurrected by recovery")
	}
	if got := call(t, s2, "GET", "post-snap"); string(got.([]byte)) != "tail-value" {
		t.Fatalf("GET post-snap = %v", got)
	}
	info = string(call(t, s2, "INFO").([]byte))
	if !strings.Contains(info, "recovered_records:") {
		t.Fatalf("INFO missing recovery stats:\n%s", info)
	}
}

// TestPersistShardCountMismatch: restarting with a different -shards
// must refuse to recover rather than misroute replay.
func TestPersistShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	s := newPersistServer(t, 2, dir, "no", false)
	call(t, s, "SET", "k", "v")
	shutdownPersist(s)
	sys, err := addrkv.New(addrkv.Options{
		Keys: 2000, Shards: 3,
		Index: addrkv.IndexChainHash, Mode: addrkv.ModeSTLT, RedisLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openPersistence(sys, persistOpts{dir: dir, fsync: "no", shards: 3}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}

// persistScript issues a deterministic pipelined workload over one
// connection, returning the concatenated reply transcript and the
// expected surviving key/value map. betweenChunks (optional) runs
// after each chunk is flushed but before its replies are drained —
// i.e. while the server is dispatching the chunk.
func persistScript(t *testing.T, s *server, nCmds int, betweenChunks func(chunk int)) (string, map[string]string) {
	t.Helper()
	r, w, conn := pipeClient(t, s)
	defer conn.Close()
	want := map[string]string{}
	var transcript strings.Builder
	const chunk = 40
	for base := 0; base < nCmds; base += chunk {
		sent := 0
		for i := base; i < base+chunk && i < nCmds; i++ {
			key := fmt.Sprintf("tk-%d", i%211)
			switch {
			case i%13 == 4:
				if err := w.WriteCommand([]byte("DEL"), []byte(key)); err != nil {
					t.Fatal(err)
				}
				delete(want, key)
			case i%7 == 2:
				if err := w.WriteCommand([]byte("GET"), []byte(key)); err != nil {
					t.Fatal(err)
				}
			default:
				val := fmt.Sprintf("tv-%d", i)
				if err := w.WriteCommand([]byte("SET"), []byte(key), []byte(val)); err != nil {
					t.Fatal(err)
				}
				want[key] = val
			}
			sent++
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if betweenChunks != nil {
			betweenChunks(base / chunk)
		}
		for j := 0; j < sent; j++ {
			v, err := r.ReadReply()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&transcript, "%d:%v;", base+j, replyString(v))
		}
	}
	return transcript.String(), want
}

func replyString(v any) string {
	if b, ok := v.([]byte); ok {
		return string(b)
	}
	return fmt.Sprint(v)
}

// TestSnapshotDuringTraffic: continuous background BGSAVEs while a
// client streams mutations must lose nothing and duplicate nothing —
// the post-traffic store and an independent recovery of the logs both
// match the client's view — and the reply transcript is identical
// whichever dispatch mode served it.
func TestSnapshotDuringTraffic(t *testing.T) {
	const shards, nCmds = 2, 900
	transcripts := map[bool]string{}
	for _, workers := range []bool{false, true} {
		dir := t.TempDir()
		s := newPersistServer(t, shards, dir, "everysec", workers)

		// Compact every third chunk, concurrently with the server
		// dispatching that chunk's pipelined commands.
		transcript, want := persistScript(t, s, nCmds, func(chunk int) {
			if chunk%3 == 1 && s.beginSave() {
				s.runSave("test")
			}
		})
		transcripts[workers] = transcript
		if s.persist.saves.Load() == 0 {
			t.Fatal("no snapshot completed during traffic")
		}
		if s.persist.saveErrs.Load() != 0 {
			t.Fatalf("%d snapshot errors during traffic", s.persist.saveErrs.Load())
		}

		// Live view: exactly the client's expected map.
		if got := s.sys.Len(); got != len(want) {
			t.Fatalf("workers=%v: live store has %d keys, want %d", workers, got, len(want))
		}
		for k, v := range want {
			got, ok := s.sys.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("workers=%v: live %s = (%q,%v), want %q", workers, k, got, ok, v)
			}
		}
		if err := s.sys.Cluster().WALErr(); err != nil {
			t.Fatal(err)
		}
		shutdownPersist(s)

		// Recovered view: replay the logs into a fresh system.
		sys2, err := addrkv.New(addrkv.Options{
			Keys: 2000, Shards: shards,
			Index: addrkv.IndexChainHash, Mode: addrkv.ModeSTLT, RedisLayer: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < shards; i++ {
			l, rec, err := wal.OpenShard(dir, i, wal.FsyncNo)
			if err != nil {
				t.Fatal(err)
			}
			if rec.TornBytes != 0 {
				t.Fatalf("clean shutdown left %d torn bytes on shard %d", rec.TornBytes, i)
			}
			if _, err := sys2.Cluster().ApplyRecovery(i, rec); err != nil {
				t.Fatal(err)
			}
			l.Close()
		}
		if got := sys2.Len(); got != len(want) {
			t.Fatalf("workers=%v: recovery has %d keys, want %d", workers, got, len(want))
		}
		for k, v := range want {
			got, ok := sys2.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("workers=%v: recovered %s = (%q,%v), want %q", workers, k, got, ok, v)
			}
		}
	}
	if transcripts[false] != transcripts[true] {
		t.Fatal("worker and mutex dispatch produced different reply transcripts under snapshot load")
	}
}
