// Durability wiring for kvserve: -aof turns on the per-shard
// append-only log (internal/wal), recovering any existing data in
// -aof-dir before the listener comes up and logging every mutation
// after it. BGSAVE compacts the logs into snapshot generations in the
// background (shard by shard, so traffic keeps flowing), LASTSAVE
// reports the oldest shard's last completed save, and a positive
// -snapshot-interval runs BGSAVE on a timer. INFO gains a
// "# persistence" section and /metrics the aof_* series, including the
// fsync latency histogram the everysec-vs-always tradeoff is judged by.
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"addrkv"
	"addrkv/internal/resp"
	"addrkv/internal/shard"
	"addrkv/internal/telemetry"
	"addrkv/internal/wal"
)

// persistOpts carries the -aof* flag values.
type persistOpts struct {
	dir      string
	fsync    string
	interval time.Duration
	shards   int
}

// persistState is the server's durability runtime: the recovered
// summary, the background-save gate, and the periodic snapshotter.
type persistState struct {
	dir      string
	policy   wal.Policy
	interval time.Duration

	recovered shard.RecoveryApplyStats
	tornBytes int64
	tornShard int

	// saving gates BGSAVE: one background save at a time, Redis-style.
	saving   atomic.Bool
	saves    atomic.Uint64
	saveErrs atomic.Uint64
	saveWG   sync.WaitGroup

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// openPersistence opens (or creates) the per-shard logs in opts.dir,
// replays any surviving snapshot+tail streams into the cluster, and
// attaches the logs so subsequent mutations are recorded. Call before
// preloading and before serving: recovery requires fresh engines.
func openPersistence(sys *addrkv.System, opts persistOpts) (*persistState, error) {
	policy, err := wal.ParsePolicy(opts.fsync)
	if err != nil {
		return nil, err
	}
	existing, err := wal.DetectShards(opts.dir)
	if err != nil {
		return nil, fmt.Errorf("aof dir %s: %w", opts.dir, err)
	}
	if existing > 0 && existing != opts.shards {
		return nil, fmt.Errorf("aof dir %s holds %d shard log(s) but -shards is %d; restart with -shards %d or point -aof-dir elsewhere",
			opts.dir, existing, opts.shards, existing)
	}
	ps := &persistState{
		dir:       opts.dir,
		policy:    policy,
		interval:  opts.interval,
		tornShard: -1,
		stop:      make(chan struct{}),
	}
	c := sys.Cluster()
	logs := make([]*wal.Log, opts.shards)
	start := time.Now()
	for i := 0; i < opts.shards; i++ {
		l, rec, err := wal.OpenShard(opts.dir, i, policy)
		if err != nil {
			closeLogs(logs[:i])
			return nil, fmt.Errorf("aof shard %d: %w", i, err)
		}
		if rec.TornBytes > 0 {
			log.Printf("kvserve: aof shard %d: dropped %d torn trailing byte(s) (%v) — last write did not survive the crash",
				i, rec.TornBytes, rec.TornErr)
			ps.tornBytes += rec.TornBytes
			ps.tornShard = i
		}
		st, err := c.ApplyRecovery(i, rec)
		if err != nil {
			l.Close()
			closeLogs(logs[:i])
			return nil, fmt.Errorf("aof shard %d replay: %w", i, err)
		}
		ps.recovered = ps.recovered.Add(st)
		logs[i] = l
	}
	if err := c.AttachWAL(logs); err != nil {
		closeLogs(logs)
		return nil, err
	}
	if n := ps.recovered.Ops(); n > 0 {
		log.Printf("kvserve: recovered %d record(s) from %s in %v (%d snapshot loads, %d sets, %d dels, %d flushes; %d keys live)",
			n, opts.dir, time.Since(start).Round(time.Millisecond),
			ps.recovered.Loads, ps.recovered.Sets, ps.recovered.Dels, ps.recovered.Flushes, c.Len())
	} else {
		log.Printf("kvserve: aof enabled in %s (fsync %s), no prior data", opts.dir, policy)
	}
	return ps, nil
}

func closeLogs(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// startSnapshotter launches the periodic BGSAVE loop when
// -snapshot-interval is positive. Call after the server is built.
func (s *server) startSnapshotter() {
	ps := s.persist
	if ps == nil || ps.interval <= 0 {
		return
	}
	ps.wg.Add(1)
	go func() {
		defer ps.wg.Done()
		tick := time.NewTicker(ps.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if !s.beginSave() {
					continue // previous save still running
				}
				s.runSave("periodic")
			case <-ps.stop:
				return
			}
		}
	}()
	log.Printf("kvserve: snapshotting every %v", ps.interval)
}

// beginSave claims the single background-save slot.
func (s *server) beginSave() bool {
	ps := s.persist
	if ps == nil {
		return false
	}
	if !ps.saving.CompareAndSwap(false, true) {
		return false
	}
	ps.saveWG.Add(1)
	return true
}

// runSave compacts every shard's log (the caller holds the save slot).
func (s *server) runSave(origin string) {
	ps := s.persist
	defer ps.saveWG.Done()
	defer ps.saving.Store(false)
	start := time.Now()
	if err := s.sys.Cluster().SnapshotAll(); err != nil {
		ps.saveErrs.Add(1)
		log.Printf("kvserve: %s snapshot failed: %v", origin, err)
		return
	}
	ps.saves.Add(1)
	log.Printf("kvserve: %s snapshot complete in %v", origin, time.Since(start).Round(time.Millisecond))
}

// closePersistence is the shutdown barrier: stop the snapshotter, wait
// out any in-flight save, then sync and close every log. Call after
// drain and stopWorkers — nothing may be appending anymore.
func (s *server) closePersistence() {
	ps := s.persist
	if ps == nil {
		return
	}
	ps.stopOnce.Do(func() { close(ps.stop) })
	ps.wg.Wait()
	ps.saveWG.Wait()
	c := s.sys.Cluster()
	if err := c.SyncWAL(); err != nil {
		log.Printf("kvserve: final aof sync: %v", err)
	}
	if err := c.CloseWAL(); err != nil {
		log.Printf("kvserve: aof close: %v", err)
	}
}

// lastSaveUnix returns the oldest shard's last completed snapshot time
// (0 = some shard has never been snapshotted): the conservative answer
// to "since when is everything compact?".
func (s *server) lastSaveUnix() int64 {
	c := s.sys.Cluster()
	if !c.WALAttached() {
		return 0
	}
	var oldest int64 = -1
	for i := 0; i < c.NumShards(); i++ {
		ls := c.WAL(i).Stats().LastSaveUnixNS
		if oldest < 0 || ls < oldest {
			oldest = ls
		}
	}
	if oldest <= 0 {
		return 0
	}
	return oldest / int64(time.Second)
}

// persistCmd handles BGSAVE and LASTSAVE.
func (s *server) persistCmd(w *resp.Writer, cmd string) (isErr bool) {
	if s.persist == nil {
		w.WriteError("ERR persistence is disabled (start kvserve with -aof)")
		return true
	}
	switch cmd {
	case "bgsave":
		if !s.beginSave() {
			w.WriteError("ERR background save already in progress")
			return true
		}
		go s.runSave("bgsave")
		w.WriteSimple("Background saving started")
	case "lastsave":
		w.WriteInt(s.lastSaveUnix())
	}
	return false
}

// persistInfo renders the INFO "# persistence" section.
func (s *server) persistInfo(emit func(format string, args ...any)) {
	emit("# persistence\r\n")
	ps := s.persist
	if ps == nil {
		emit("aof_enabled:0\r\n")
		return
	}
	emit("aof_enabled:1\r\n")
	emit("aof_fsync:%s\r\n", ps.policy)
	c := s.sys.Cluster()
	var agg wal.Stats
	for i := 0; i < c.NumShards(); i++ {
		st := c.WAL(i).Stats()
		agg.SizeBytes += st.SizeBytes
		agg.Appends += st.Appends
		agg.Commits += st.Commits
		agg.Fsyncs += st.Fsyncs
		agg.FsyncNS += st.FsyncNS
		agg.Rewrites += st.Rewrites
	}
	emit("aof_size_bytes:%d\r\n", agg.SizeBytes)
	emit("aof_appends:%d\r\n", agg.Appends)
	emit("aof_commits:%d\r\n", agg.Commits)
	emit("aof_fsyncs:%d\r\n", agg.Fsyncs)
	if agg.Fsyncs > 0 {
		emit("aof_fsync_mean_us:%.1f\r\n", float64(agg.FsyncNS)/float64(agg.Fsyncs)/1e3)
	}
	emit("aof_rewrites:%d\r\n", agg.Rewrites)
	emit("bgsave_in_progress:%d\r\n", b2i(ps.saving.Load()))
	emit("bgsaves_ok:%d\r\n", ps.saves.Load())
	emit("bgsaves_err:%d\r\n", ps.saveErrs.Load())
	emit("last_save_unix:%d\r\n", s.lastSaveUnix())
	emit("recovered_records:%d\r\n", ps.recovered.Ops())
	emit("recovered_torn_bytes:%d\r\n", ps.tornBytes)
	for i := 0; i < c.NumShards(); i++ {
		st := c.WAL(i).Stats()
		emit("aof_shard%d_gen:%d\r\n", i, st.Gen)
		emit("aof_shard%d_size_bytes:%d\r\n", i, st.SizeBytes)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// registerPersistMetrics exposes the durability series on /metrics:
// the fsync latency histogram (fed by the logs' fsync observer) plus
// per-shard log size/generation gauges and save counters.
func (t *serverTele) registerPersistMetrics(s *server) {
	ps := s.persist
	if ps == nil {
		return
	}
	r := t.reg
	fsyncHist := r.Histogram("addrkv_aof_fsync_seconds",
		"Wall-clock latency of AOF fsync barriers.", 1e-9, nil)
	c := s.sys.Cluster()
	for i := 0; i < c.NumShards(); i++ {
		c.WAL(i).SetFsyncObserver(func(ns int64) { fsyncHist.Observe(uint64(ns)) })
	}
	walGauge := func(name, help string, f func(wal.Stats) float64) {
		for i := 0; i < c.NumShards(); i++ {
			l := c.WAL(i)
			r.GaugeFunc(name, help, telemetry.Labels{"shard": strconv.Itoa(l.Shard())},
				func() float64 { return f(l.Stats()) })
		}
	}
	walGauge("addrkv_aof_size_bytes", "Current AOF segment size, by shard.",
		func(st wal.Stats) float64 { return float64(st.SizeBytes) })
	walGauge("addrkv_aof_generation", "Current AOF/snapshot generation, by shard.",
		func(st wal.Stats) float64 { return float64(st.Gen) })
	walGauge("addrkv_aof_appends_total", "Records appended to the AOF, by shard.",
		func(st wal.Stats) float64 { return float64(st.Appends) })
	walGauge("addrkv_aof_fsyncs_total", "AOF fsync barriers, by shard.",
		func(st wal.Stats) float64 { return float64(st.Fsyncs) })
	walGauge("addrkv_aof_rewrites_total", "Compacting snapshot rewrites, by shard.",
		func(st wal.Stats) float64 { return float64(st.Rewrites) })
	walGauge("addrkv_aof_last_save_timestamp_seconds", "Unix time of the shard's last completed snapshot.",
		func(st wal.Stats) float64 { return float64(st.LastSaveUnixNS) / 1e9 })
	r.GaugeFunc("addrkv_bgsave_in_progress", "1 while a background save is running.", nil,
		func() float64 { return float64(b2i(ps.saving.Load())) })
	r.GaugeFunc("addrkv_bgsaves_total", "Completed background saves.", nil,
		func() float64 { return float64(ps.saves.Load()) })
	r.GaugeFunc("addrkv_bgsave_errors_total", "Failed background saves.", nil,
		func() float64 { return float64(ps.saveErrs.Load()) })
}
