package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addrkv/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot from the current replay")

func testCfg() replayConfig {
	return replayConfig{
		mode:   "stlt",
		index:  "chainhash",
		keys:   1000,
		shards: 2,
		vsize:  64,
		warm:   500,
	}
}

// TestReplayGolden replays testdata/trace.txt and compares the -json
// snapshot byte-for-byte against the committed golden file. The
// simulation is deterministic and the snapshot carries no timestamps,
// so any diff is a real change to the modeled counters — run with
// -update to accept one deliberately.
func TestReplayGolden(t *testing.T) {
	trace, err := os.Open("testdata/trace.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer trace.Close()

	cfg := testCfg()
	cfg.jsonOut = filepath.Join(t.TempDir(), "replay.json")
	var out strings.Builder
	if err := run(cfg, trace, &out); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(cfg.jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/replay_golden.json"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("snapshot diverged from %s (rerun with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// Sanity on the snapshot's shape, independent of golden bytes.
	var snap telemetry.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "replay" || len(snap.Runs) != 1 || snap.Runs[0].Ops == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, ok := snap.Latency["op_cycles"]; !ok {
		t.Fatal("snapshot missing op_cycles latency")
	}
	if !strings.Contains(out.String(), "replayed 2000 ops") {
		t.Fatalf("report missing op count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cluster: 2 shards") {
		t.Fatalf("report missing cluster section:\n%s", out.String())
	}
}

// TestReplayMalformedLine: a bad verb aborts with an error naming the
// line (main maps this to exit code 1).
func TestReplayMalformedLine(t *testing.T) {
	cfg := testCfg()
	cfg.shards = 1
	in := strings.NewReader("GET user00000000000000000001\nFROB x\n")
	err := run(cfg, in, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), `bad trace line "FROB x"`) {
		t.Fatalf("err = %v", err)
	}
}

// TestReplayBadMode: an unknown mode surfaces as an error, not a
// panic.
func TestReplayBadMode(t *testing.T) {
	cfg := testCfg()
	cfg.mode = "warp-drive"
	if err := run(cfg, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestReplayWithoutJSON: the no-probe path (oc == nil) replays fine
// and reports the same op counts.
func TestReplayWithoutJSON(t *testing.T) {
	trace, err := os.Open("testdata/trace.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer trace.Close()
	cfg := testCfg()
	var out strings.Builder
	if err := run(cfg, trace, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed 2000 ops") {
		t.Fatalf("report:\n%s", out.String())
	}
}
