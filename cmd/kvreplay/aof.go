// AOF replay: kvreplay as the reference executor of the durability
// subsystem's recovery contract. Records are applied through exactly
// the entry points server recovery uses (shard.Cluster.ApplyRecovery),
// so for any surviving log the stats this command prints are what a
// recovered kvserve would report — the "recovery equals replay"
// property the differential tests pin.
package main

import (
	"fmt"
	"io"
	"os"

	"addrkv"
	"addrkv/internal/shard"
	"addrkv/internal/telemetry"
	"addrkv/internal/wal"
)

// runAOF replays an append-only log (directory, single file, or raw
// frames on in) through a fresh simulated System and prints the
// modeled statistics.
func runAOF(cfg replayConfig, in io.Reader, out io.Writer) error {
	isDir := false
	if cfg.file != "" {
		st, err := os.Stat(cfg.file)
		if err != nil {
			return err
		}
		isDir = st.IsDir()
	}

	var recs []*wal.Recovery
	shards := cfg.shards
	if isDir {
		detected, err := wal.DetectShards(cfg.file)
		if err != nil {
			return err
		}
		if detected == 0 {
			return fmt.Errorf("%s holds no shard-*.aof/.snap files", cfg.file)
		}
		switch {
		case shards == 1 || shards == detected:
			shards = detected
		default:
			return fmt.Errorf("%s was written with %d shard(s), -shards says %d", cfg.file, detected, shards)
		}
		for i := 0; i < shards; i++ {
			rec, err := wal.ReadShard(cfg.file, i)
			if err != nil {
				return err
			}
			recs = append(recs, rec)
		}
	} else {
		if shards != 1 {
			return fmt.Errorf("a single AOF stream is one shard's log; use -shards 1 or point -f at the directory")
		}
		var buf []byte
		var err error
		if cfg.file != "" {
			buf, err = os.ReadFile(cfg.file)
		} else {
			buf, err = io.ReadAll(in)
		}
		if err != nil {
			return err
		}
		res := wal.Scan(buf)
		rec := &wal.Recovery{Gen: 1, Tail: res.Records}
		if res.Torn {
			rec.TornBytes = int64(len(buf)) - res.Valid
			rec.TornErr = res.TornErr
		}
		recs = append(recs, rec)
	}

	sys, err := addrkv.New(addrkv.Options{
		Keys:   cfg.keys,
		Shards: shards,
		Index:  addrkv.IndexKind(cfg.index),
		Mode:   addrkv.Mode(cfg.mode),
	})
	if err != nil {
		return err
	}
	var agg shard.RecoveryApplyStats
	var torn int64
	for i, rec := range recs {
		if rec.TornBytes > 0 {
			fmt.Fprintf(out, "shard %d: dropped %d torn trailing byte(s): %v\n", i, rec.TornBytes, rec.TornErr)
			torn += rec.TornBytes
		}
		st, err := sys.Cluster().ApplyRecovery(i, rec)
		if err != nil {
			return err
		}
		agg = agg.Add(st)
	}

	rep := sys.Report()
	fmt.Fprintf(out, "replayed %d aof records (%d snapshot loads, %d sets, %d dels, %d flushes); %d keys live\n",
		agg.Ops(), agg.Loads, agg.Sets, agg.Dels, agg.Flushes, sys.Len())
	fmt.Fprintln(out, rep)
	if rep.Shards > 1 {
		fmt.Fprintf(out, "cluster: %d shards, max shard cycles %d (modeled wall-clock bound)\n",
			rep.Shards, rep.MaxShardCycles)
	}

	if cfg.jsonOut != "" {
		snap := &telemetry.Snapshot{
			Name: "replay-aof",
			Kind: "replay",
			Params: map[string]any{
				"format":  "aof",
				"mode":    cfg.mode,
				"index":   cfg.index,
				"keys":    cfg.keys,
				"shards":  shards,
				"records": agg.Ops(),
				"loads":   agg.Loads,
				"sets":    agg.Sets,
				"dels":    agg.Dels,
				"flushes": agg.Flushes,
				"torn":    torn,
				"live":    sys.Len(),
			},
			Runs: []telemetry.RunRecord{{
				Spec:           fmt.Sprintf("replay-aof/%s/%s/%d/%d", cfg.mode, cfg.index, cfg.keys, shards),
				Ops:            rep.Ops,
				Cycles:         rep.Cycles,
				CyclesPerOp:    rep.CyclesPerOp,
				FastPathHits:   rep.Stats.FastHits,
				TableMissRate:  rep.TableMissRate,
				TLBMissesPerOp: rep.TLBMissesPerOp,
				PageWalksPerOp: rep.PageWalksPerOp,
				LLCMissesPerOp: rep.CacheMissesPerOp,
			}},
		}
		if err := snap.WriteFile(cfg.jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "(json: %s)\n", cfg.jsonOut)
	}
	return nil
}
