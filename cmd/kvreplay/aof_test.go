package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addrkv/internal/telemetry"
	"addrkv/internal/wal"
)

// buildTestAOF produces the deterministic record stream committed as
// testdata/recovery.aof: snapshot-style bulk loads, timed sets and
// overwrites, deletes (one of an absent key), a FLUSHALL, rebuilding
// sets, and a torn trailing fragment (the first half of a valid frame)
// that replay must warn about and skip.
func buildTestAOF() []byte {
	var b []byte
	for i := 0; i < 40; i++ {
		b = wal.AppendFrame(b, wal.RecLoad, fmt.Appendf(nil, "warm-%02d", i), bytes.Repeat([]byte{'w'}, 32))
	}
	for i := 0; i < 60; i++ {
		b = wal.AppendFrame(b, wal.RecSet, fmt.Appendf(nil, "key-%02d", i%25), fmt.Appendf(nil, "val-%03d", i))
	}
	b = wal.AppendFrame(b, wal.RecDel, []byte("key-03"), nil)
	b = wal.AppendFrame(b, wal.RecDel, []byte("never-existed"), nil)
	b = wal.AppendFrame(b, wal.RecFlush, nil, nil)
	for i := 0; i < 20; i++ {
		b = wal.AppendFrame(b, wal.RecSet, fmt.Appendf(nil, "post-%02d", i), []byte("rebuilt"))
	}
	torn := wal.AppendFrame(nil, wal.RecSet, []byte("torn-victim"), []byte("never-acked"))
	return append(b, torn[:len(torn)/2]...)
}

// TestReplayAOFGolden replays the committed AOF through -format aof
// and compares the -json snapshot byte-for-byte against the golden
// file; with -update both artifacts are rewritten.
func TestReplayAOFGolden(t *testing.T) {
	const aofFile = "testdata/recovery.aof"
	if *update {
		if err := os.WriteFile(aofFile, buildTestAOF(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if committed, err := os.ReadFile(aofFile); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(committed, buildTestAOF()) {
		t.Fatalf("%s drifted from buildTestAOF (rerun with -update)", aofFile)
	}

	cfg := testCfg()
	cfg.format = "aof"
	cfg.shards = 1
	cfg.file = aofFile
	cfg.jsonOut = filepath.Join(t.TempDir(), "replay-aof.json")
	var out strings.Builder
	if err := runAOF(cfg, nil, &out); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(cfg.jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/replay_aof_golden.json"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("snapshot diverged from %s (rerun with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatal(err)
	}
	// 40 loads + 60 sets + 2 dels + 1 flush + 20 sets = 123 records;
	// the torn half-frame is dropped, leaving the 20 post-flush keys.
	if snap.Params["records"] != float64(123) || snap.Params["live"] != float64(20) {
		t.Fatalf("params = %v", snap.Params)
	}
	report := out.String()
	if !strings.Contains(report, "dropped") || !strings.Contains(report, "torn trailing byte") {
		t.Fatalf("report missing torn-tail warning:\n%s", report)
	}
	if !strings.Contains(report, "replayed 123 aof records (40 snapshot loads, 80 sets, 2 dels, 1 flushes); 20 keys live") {
		t.Fatalf("report summary wrong:\n%s", report)
	}
}

// TestReplayAOFDirectory: pointing -f at a multi-shard -aof-dir
// detects the shard count and replays every shard's stream.
func TestReplayAOFDirectory(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		l, rec, err := wal.OpenShard(dir, i, wal.FsyncNo)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Records()) != 0 {
			t.Fatal("fresh dir not empty")
		}
		for j := 0; j < 10; j++ {
			l.Append(wal.RecSet, fmt.Appendf(nil, "s%d-k%d", i, j), []byte("v"))
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}

	cfg := testCfg()
	cfg.format = "aof"
	cfg.shards = 1 // auto-detects 2
	cfg.file = dir
	var out strings.Builder
	if err := runAOF(cfg, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed 20 aof records (0 snapshot loads, 20 sets, 0 dels, 0 flushes); 20 keys live") {
		t.Fatalf("report:\n%s", out.String())
	}

	cfg.shards = 3
	if err := runAOF(cfg, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "written with 2 shard(s)") {
		t.Fatalf("shard mismatch not rejected: %v", err)
	}
}

// TestReplayAOFStdin: raw frames on stdin replay as one shard's tail.
func TestReplayAOFStdin(t *testing.T) {
	var b []byte
	b = wal.AppendFrame(b, wal.RecSet, []byte("in"), []byte("mem"))
	cfg := testCfg()
	cfg.format = "aof"
	cfg.shards = 1
	var out strings.Builder
	if err := runAOF(cfg, bytes.NewReader(b), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 keys live") {
		t.Fatalf("report:\n%s", out.String())
	}
}
