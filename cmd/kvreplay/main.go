// Command kvreplay replays a ycsbgen text trace ("GET <key>" /
// "SET <key> <valueSize>" lines) through a simulated System and prints
// the modeled statistics — useful for running *recorded* production
// traces against the STLT design, which is how one would evaluate it
// for a real deployment.
//
// With -shards N the trace is routed across N simulated machines (the
// sharded cluster kvserve runs); per-shard and aggregate statistics
// are reported, including the modeled wall-clock bound (busiest
// shard's cycles).
//
// With -json PATH the run also writes a telemetry snapshot: the
// aggregate RunRecord plus a per-op modeled cycle distribution
// (p50/p99/p999), gathered through the engine's outcome probes —
// which read counters only, so the modeled totals are identical to a
// run without -json.
//
//	ycsbgen -keys 200000 -ops 2000000 -dist zipf > trace.txt
//	kvreplay -mode baseline -keys 200000 < trace.txt
//	kvreplay -mode stlt     -keys 200000 -warm 600000 < trace.txt
//	kvreplay -mode stlt     -keys 200000 -shards 4 -json replay.json < trace.txt
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"addrkv"
	"addrkv/internal/telemetry"
)

func main() {
	var (
		mode    = flag.String("mode", "stlt", "baseline|stlt|slb|stlt-sw|stlt-va")
		index   = flag.String("index", "chainhash", "chainhash|densehash|rbtree|btree|skiplist")
		keys    = flag.Int("keys", 100_000, "keys to preload (ids 0..keys-1)")
		shards  = flag.Int("shards", 1, "simulated machines to hash the key space across")
		vsize   = flag.Int("vsize", 64, "preload value size")
		warm    = flag.Int("warm", 0, "trace ops to treat as warm-up (stats reset after)")
		file    = flag.String("f", "", "trace file (default stdin)")
		jsonOut = flag.String("json", "", "write a telemetry snapshot JSON to this path")
	)
	flag.Parse()

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatalf("kvreplay: %v", err)
		}
		defer f.Close()
		in = f
	}

	sys, err := addrkv.New(addrkv.Options{
		Keys:   *keys,
		Shards: *shards,
		Index:  addrkv.IndexKind(*index),
		Mode:   addrkv.Mode(*mode),
	})
	if err != nil {
		log.Fatalf("kvreplay: %v", err)
	}
	sys.Load(*keys, *vsize)

	// The cycle histogram costs two atomic adds per op; skip the
	// outcome probing entirely without -json.
	var cycleHist *telemetry.Histogram
	var oc *addrkv.OpOutcome
	if *jsonOut != "" {
		cycleHist = &telemetry.Histogram{}
		oc = &addrkv.OpOutcome{}
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		ops      int
		setsSeen int
		missing  int
	)
	value := make([]byte, *vsize)
	for sc.Scan() {
		line := sc.Bytes()
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		verb := string(line[:sp])
		rest := line[sp+1:]
		switch verb {
		case "GET":
			if !sys.GetTouchO(rest, oc) {
				missing++
			}
		case "SET":
			key := rest
			if sp2 := bytes.IndexByte(rest, ' '); sp2 >= 0 {
				key = rest[:sp2]
				if n, err := strconv.Atoi(string(rest[sp2+1:])); err == nil && n != len(value) {
					value = make([]byte, n)
				}
			}
			sys.SetO(key, value, oc)
			setsSeen++
		default:
			log.Fatalf("kvreplay: bad trace line %q", line)
		}
		if cycleHist != nil {
			cycleHist.Observe(oc.Cycles)
		}
		ops++
		if *warm > 0 && ops == *warm {
			sys.MarkMeasurement()
			if cycleHist != nil {
				cycleHist.Reset() // the warm-up ops were not measurement
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("kvreplay: %v", err)
	}

	rep := sys.Report()
	fmt.Printf("replayed %d ops (%d SETs, %d GET misses)\n", ops, setsSeen, missing)
	fmt.Println(rep)
	if rep.Shards > 1 {
		fmt.Printf("cluster: %d shards, max shard cycles %d (modeled wall-clock bound), %.3f ops/kcycle\n",
			rep.Shards, rep.MaxShardCycles, 1000*rep.ModeledThroughput())
		for i, st := range rep.PerShard {
			fmt.Printf("  shard %d: ops=%d cycles/op=%.0f fastHits=%d\n",
				i, st.Ops, st.CyclesPerOp(), st.FastHits)
		}
	}
	if len(rep.CategoryShare) > 0 {
		fmt.Println("cycle breakdown:")
		for _, cat := range []string{"hash", "traverse", "translate", "data", "stlt", "other"} {
			fmt.Printf("  %-10s %5.1f%%\n", cat, 100*rep.CategoryShare[cat])
		}
	}

	if *jsonOut != "" {
		q := telemetry.QuantilesOf(cycleHist.Snapshot())
		fmt.Printf("op cycles: p50=%d p99=%d p999=%d max=%d\n", q.P50, q.P99, q.P999, q.Max)
		snap := &telemetry.Snapshot{
			Name: "replay",
			Kind: "replay",
			Params: map[string]any{
				"mode":   *mode,
				"index":  *index,
				"keys":   *keys,
				"shards": *shards,
				"warm":   *warm,
				"ops":    ops,
				"sets":   setsSeen,
				"misses": missing,
			},
			Runs: []telemetry.RunRecord{{
				Spec:           fmt.Sprintf("replay/%s/%s/%d/%d", *mode, *index, *keys, *shards),
				Ops:            rep.Ops,
				Cycles:         rep.Cycles,
				CyclesPerOp:    rep.CyclesPerOp,
				FastPathHits:   rep.Stats.FastHits,
				TableMissRate:  rep.TableMissRate,
				TLBMissesPerOp: rep.TLBMissesPerOp,
				PageWalksPerOp: rep.PageWalksPerOp,
				LLCMissesPerOp: rep.CacheMissesPerOp,
			}},
			Latency: map[string]telemetry.Quantiles{"op_cycles": q},
		}
		if err := snap.WriteFile(*jsonOut); err != nil {
			log.Fatalf("kvreplay: %v", err)
		}
		fmt.Printf("(json: %s)\n", *jsonOut)
	}
}
