// Command kvreplay replays a ycsbgen text trace ("GET <key>" /
// "SET <key> <valueSize>" lines) through a simulated System and prints
// the modeled statistics — useful for running *recorded* production
// traces against the STLT design, which is how one would evaluate it
// for a real deployment.
//
// With -shards N the trace is routed across N simulated machines (the
// sharded cluster kvserve runs); per-shard and aggregate statistics
// are reported, including the modeled wall-clock bound (busiest
// shard's cycles).
//
// With -json PATH the run also writes a telemetry snapshot: the
// aggregate RunRecord plus a per-op modeled cycle distribution
// (p50/p99/p999), gathered through the engine's outcome probes —
// which read counters only, so the modeled totals are identical to a
// run without -json. The snapshot carries no timestamps, so for a
// fixed trace and flags it is byte-for-byte reproducible (pinned by
// the golden-file test).
//
// A malformed trace line aborts the replay with exit code 1.
//
// With -format aof the input is an addrkv append-only log instead of a
// text trace: -f may name a kvserve -aof-dir (every shard's snapshot
// and log tail is replayed, shard count auto-detected) or a single
// .aof/.snap file; raw frames can also stream in on stdin. Records are
// applied exactly the way server recovery applies them — snapshot
// loads untimed, tail SET/DEL/FLUSHALL through the timed ops — so
// kvreplay is the reference executor the recovery-equals-replay
// contract is checked against. A torn trailing frame is reported and
// skipped, never an error.
//
//	ycsbgen -keys 200000 -ops 2000000 -dist zipf > trace.txt
//	kvreplay -mode baseline -keys 200000 < trace.txt
//	kvreplay -mode stlt     -keys 200000 -warm 600000 < trace.txt
//	kvreplay -mode stlt     -keys 200000 -shards 4 -json replay.json < trace.txt
//	kvreplay -format aof -keys 200000 -f ./aof -json recovered.json
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"addrkv"
	"addrkv/internal/telemetry"
)

// replayConfig shapes one replay run (the parsed flag set).
type replayConfig struct {
	mode    string
	index   string
	keys    int
	shards  int
	vsize   int
	warm    int
	format  string
	file    string
	jsonOut string
}

func main() {
	var (
		cfg  replayConfig
		file string
	)
	flag.StringVar(&cfg.mode, "mode", "stlt", "baseline|stlt|slb|stlt-sw|stlt-va")
	flag.StringVar(&cfg.index, "index", "chainhash", "chainhash|densehash|rbtree|btree|skiplist")
	flag.IntVar(&cfg.keys, "keys", 100_000, "keys to preload (ids 0..keys-1)")
	flag.IntVar(&cfg.shards, "shards", 1, "simulated machines to hash the key space across")
	flag.IntVar(&cfg.vsize, "vsize", 64, "preload value size")
	flag.IntVar(&cfg.warm, "warm", 0, "trace ops to treat as warm-up (stats reset after)")
	flag.StringVar(&file, "f", "", "trace file, or AOF file/directory with -format aof (default stdin)")
	flag.StringVar(&cfg.format, "format", "trace", "trace: ycsbgen text lines; aof: addrkv append-only log")
	flag.StringVar(&cfg.jsonOut, "json", "", "write a telemetry snapshot JSON to this path")
	flag.Parse()

	cfg.file = file
	if cfg.format == "aof" {
		if err := runAOF(cfg, os.Stdin, os.Stdout); err != nil {
			log.Fatalf("kvreplay: %v", err)
		}
		return
	}
	if cfg.format != "trace" {
		log.Fatalf("kvreplay: -format must be trace or aof")
	}
	in := io.Reader(os.Stdin)
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			log.Fatalf("kvreplay: %v", err)
		}
		defer f.Close()
		in = f
	}
	if err := run(cfg, in, os.Stdout); err != nil {
		log.Fatalf("kvreplay: %v", err)
	}
}

// run replays the trace on in, writing the human report to out and,
// when configured, the JSON snapshot to cfg.jsonOut. It returns an
// error (rather than exiting) on a malformed trace so main can map it
// to exit code 1 and tests can assert on it.
func run(cfg replayConfig, in io.Reader, out io.Writer) error {
	sys, err := addrkv.New(addrkv.Options{
		Keys:   cfg.keys,
		Shards: cfg.shards,
		Index:  addrkv.IndexKind(cfg.index),
		Mode:   addrkv.Mode(cfg.mode),
	})
	if err != nil {
		return err
	}
	sys.Load(cfg.keys, cfg.vsize)

	// The cycle histogram costs two atomic adds per op; skip the
	// outcome probing entirely without -json.
	var cycleHist *telemetry.Histogram
	var oc *addrkv.OpOutcome
	if cfg.jsonOut != "" {
		cycleHist = &telemetry.Histogram{}
		oc = &addrkv.OpOutcome{}
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		ops      int
		setsSeen int
		missing  int
	)
	value := make([]byte, cfg.vsize)
	for sc.Scan() {
		line := sc.Bytes()
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		verb := string(line[:sp])
		rest := line[sp+1:]
		switch verb {
		case "GET":
			if !sys.GetTouchO(rest, oc) {
				missing++
			}
		case "SET":
			key := rest
			if sp2 := bytes.IndexByte(rest, ' '); sp2 >= 0 {
				key = rest[:sp2]
				if n, err := strconv.Atoi(string(rest[sp2+1:])); err == nil && n != len(value) {
					value = make([]byte, n)
				}
			}
			sys.SetO(key, value, oc)
			setsSeen++
		default:
			return fmt.Errorf("bad trace line %q", line)
		}
		if cycleHist != nil {
			cycleHist.Observe(oc.Cycles)
		}
		ops++
		if cfg.warm > 0 && ops == cfg.warm {
			sys.MarkMeasurement()
			if cycleHist != nil {
				cycleHist.Reset() // the warm-up ops were not measurement
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	rep := sys.Report()
	fmt.Fprintf(out, "replayed %d ops (%d SETs, %d GET misses)\n", ops, setsSeen, missing)
	fmt.Fprintln(out, rep)
	if rep.Shards > 1 {
		fmt.Fprintf(out, "cluster: %d shards, max shard cycles %d (modeled wall-clock bound), %.3f ops/kcycle\n",
			rep.Shards, rep.MaxShardCycles, 1000*rep.ModeledThroughput())
		for i, st := range rep.PerShard {
			fmt.Fprintf(out, "  shard %d: ops=%d cycles/op=%.0f fastHits=%d\n",
				i, st.Ops, st.CyclesPerOp(), st.FastHits)
		}
	}
	if len(rep.CategoryShare) > 0 {
		fmt.Fprintln(out, "cycle breakdown:")
		for _, cat := range []string{"hash", "traverse", "translate", "data", "stlt", "other"} {
			fmt.Fprintf(out, "  %-10s %5.1f%%\n", cat, 100*rep.CategoryShare[cat])
		}
	}

	if cfg.jsonOut != "" {
		q := telemetry.QuantilesOf(cycleHist.Snapshot())
		fmt.Fprintf(out, "op cycles: p50=%d p99=%d p999=%d max=%d\n", q.P50, q.P99, q.P999, q.Max)
		snap := &telemetry.Snapshot{
			Name: "replay",
			Kind: "replay",
			Params: map[string]any{
				"mode":   cfg.mode,
				"index":  cfg.index,
				"keys":   cfg.keys,
				"shards": cfg.shards,
				"warm":   cfg.warm,
				"ops":    ops,
				"sets":   setsSeen,
				"misses": missing,
			},
			Runs: []telemetry.RunRecord{{
				Spec:           fmt.Sprintf("replay/%s/%s/%d/%d", cfg.mode, cfg.index, cfg.keys, cfg.shards),
				Ops:            rep.Ops,
				Cycles:         rep.Cycles,
				CyclesPerOp:    rep.CyclesPerOp,
				FastPathHits:   rep.Stats.FastHits,
				TableMissRate:  rep.TableMissRate,
				TLBMissesPerOp: rep.TLBMissesPerOp,
				PageWalksPerOp: rep.PageWalksPerOp,
				LLCMissesPerOp: rep.CacheMissesPerOp,
			}},
			Latency: map[string]telemetry.Quantiles{"op_cycles": q},
		}
		if err := snap.WriteFile(cfg.jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "(json: %s)\n", cfg.jsonOut)
	}
	return nil
}
