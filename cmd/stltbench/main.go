// Command stltbench regenerates the paper's tables and figures.
//
// Usage:
//
//	stltbench -list                 # show all experiment ids
//	stltbench -exp fig11            # run one experiment
//	stltbench -exp all              # run everything (slow)
//	stltbench -exp fig13 -keys 600000 -measure 128000
//	stltbench -exp fig14 -quick     # trimmed sweeps
//	stltbench -exp fig11 -csv out/  # also write CSV files
//	stltbench -exp fig11 -json      # also write BENCH_fig11.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"addrkv/internal/harness"
	"addrkv/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		keys    = flag.Int("keys", 0, "number of distinct keys (default 400000)")
		warm    = flag.Float64("warm", 0, "warm-up ops as a multiple of keys (default 3)")
		measure = flag.Int("measure", 0, "measured operations (default 64000)")
		quick   = flag.Bool("quick", false, "trim sweep experiments for a fast pass")
		verbose = flag.Bool("v", false, "log each simulation run")
		csvDir  = flag.String("csv", "", "directory to also write CSV outputs into")
		jsonOut = flag.Bool("json", false, "also write BENCH_<exp>.json per experiment")
		jsonDir = flag.String("json-dir", ".", "directory BENCH_<exp>.json files go into")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n         shape: %s\n", e.ID, e.Title, e.Shape)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "stltbench: -exp required (or -list); e.g. -exp fig11")
		os.Exit(2)
	}

	sc := harness.DefaultScale()
	if *keys > 0 {
		sc.Keys = *keys
	}
	if *warm > 0 {
		sc.WarmFactor = *warm
	}
	if *measure > 0 {
		sc.MeasureOps = *measure
	}
	sc.Quick = *quick
	sc.Verbose = *verbose

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "stltbench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// With -json, collect one RunRecord per simulation run. The records
	// come from the engine's own deterministic counters (UnixTime stays
	// zero), so a BENCH_<exp>.json is byte-identical across runs of the
	// same binary and scale.
	var (
		recMu   sync.Mutex
		records []telemetry.RunRecord
	)
	if *jsonOut {
		harness.SetRecorder(func(r telemetry.RunRecord) {
			recMu.Lock()
			records = append(records, r)
			recMu.Unlock()
		})
		defer harness.SetRecorder(nil)
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper shape: %s\n\n", e.Shape)
		records = records[:0]
		tables := e.Run(sc)
		for i, t := range tables {
			fmt.Println(t.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "stltbench:", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "stltbench:", err)
					os.Exit(1)
				}
				fmt.Printf("(csv: %s)\n", path)
			}
		}
		if *jsonOut {
			snap := &telemetry.Snapshot{
				Name: e.ID,
				Kind: "harness",
				Params: map[string]any{
					"keys":        sc.Keys,
					"warm_factor": sc.WarmFactor,
					"measure_ops": sc.MeasureOps,
					"quick":       sc.Quick,
				},
				Runs: records,
			}
			for _, t := range tables {
				snap.Tables = append(snap.Tables, t.Data())
			}
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "stltbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, fmt.Sprintf("BENCH_%s.json", e.ID))
			if err := snap.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "stltbench:", err)
				os.Exit(1)
			}
			fmt.Printf("(json: %s, %d runs)\n", path, len(records))
		}
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
