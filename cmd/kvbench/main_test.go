package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"addrkv/internal/resp"
)

// miniServer is an in-process RESP responder: GET answers a bulk or a
// null for the sentinel key "user0000000000000099", SET answers OK,
// anything else an error. It records the largest burst one drain
// picked up so tests can verify the client actually pipelines.
type miniServer struct {
	ln        net.Listener
	cmds      atomic.Uint64
	traceCmds atomic.Uint64
	maxBurst  atomic.Uint64
}

func startMiniServer(t *testing.T) *miniServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ms := &miniServer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go ms.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ms
}

func (ms *miniServer) serve(conn net.Conn) {
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		cmds, err := r.ReadPipeline(0)
		if uint64(len(cmds)) > ms.maxBurst.Load() {
			ms.maxBurst.Store(uint64(len(cmds)))
		}
		for _, args := range cmds {
			ms.cmds.Add(1)
			switch strings.ToUpper(string(args[0])) {
			case "GET":
				if strings.HasSuffix(string(args[1]), "99") {
					w.WriteBulk(nil)
				} else {
					w.WriteBulk([]byte("value"))
				}
			case "SET":
				w.WriteSimple("OK")
			case "TRACE":
				ms.traceCmds.Add(1)
				w.WriteSimple("OK")
			default:
				w.WriteError("ERR unknown command")
			}
		}
		if w.Flush() != nil || err != nil {
			return
		}
	}
}

func testConfig(addr string) benchConfig {
	return benchConfig{
		network: "tcp", addr: addr,
		conns: 2, ops: 400, keys: 100, vsize: 32,
		getRatio: 0.5, seed: 1,
	}
}

// TestRunSweepEndToEnd drives a depth sweep against the mini server
// and checks op accounting, pipelining, and reporting.
func TestRunSweepEndToEnd(t *testing.T) {
	ms := startMiniServer(t)
	cfg := testConfig(ms.ln.Addr().String())

	var out strings.Builder
	results, err := run(cfg, []int{1, 8}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Ops != 400 || r.Conns != 2 || r.Errors != 0 {
			t.Fatalf("result %+v", r)
		}
		if r.OpsPerSec <= 0 || r.ElapsedNS <= 0 {
			t.Fatalf("no throughput measured: %+v", r)
		}
		if r.RoundtripUS.Count == 0 {
			t.Fatalf("no roundtrips observed: %+v", r)
		}
	}
	// Depth 1 flushes once per op; depth 8 once per batch of 8.
	if got := results[0].RoundtripUS.Count; got != 400 {
		t.Fatalf("depth-1 roundtrips = %d, want 400", got)
	}
	if got := results[1].RoundtripUS.Count; got != 50 {
		t.Fatalf("depth-8 roundtrips = %d, want 50 (200 ops / 8 per conn * 2 conns)", got)
	}
	if ms.cmds.Load() != 800 {
		t.Fatalf("server saw %d commands, want 800", ms.cmds.Load())
	}
	if ms.maxBurst.Load() < 2 {
		t.Fatal("server never saw a pipelined burst")
	}
	if !strings.Contains(out.String(), "depth   1:") || !strings.Contains(out.String(), "depth   8:") {
		t.Fatalf("report output missing depth lines:\n%s", out.String())
	}
}

// TestErrorRepliesCounted: error replies are counted, not fatal.
func TestErrorRepliesCounted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r, w := resp.NewReader(c), resp.NewWriter(c)
				for {
					if _, err := r.ReadCommand(); err != nil {
						return
					}
					w.WriteError("ERR nope")
					if w.Flush() != nil {
						return
					}
				}
			}(conn)
		}
	}()
	cfg := testConfig(ln.Addr().String())
	cfg.conns, cfg.ops = 1, 20
	res, err := runDepth(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20 || res.Errors != 20 {
		t.Fatalf("ops=%d errors=%d, want 20/20", res.Ops, res.Errors)
	}
}

// TestParseSweep covers the sweep flag grammar.
func TestParseSweep(t *testing.T) {
	got, err := parseSweep("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseSweep = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "4,-1"} {
		if _, err := parseSweep(bad); err == nil {
			t.Fatalf("parseSweep(%q) accepted", bad)
		}
	}
}

// TestWriteArtifact checks the JSON sweep artifact shape.
func TestWriteArtifact(t *testing.T) {
	ms := startMiniServer(t)
	cfg := testConfig(ms.ln.Addr().String())
	results, err := run(cfg, []int{2}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := writeArtifact(path, cfg, []int{2}, results, nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, b)
	}
	if a.Name != "pipeline-sweep" || a.Kind != "kvbench" || len(a.Sweep) != 1 {
		t.Fatalf("artifact = %+v", a)
	}
	if a.Sweep[0].Depth != 2 || a.Sweep[0].Ops != 400 {
		t.Fatalf("sweep point = %+v", a.Sweep[0])
	}
	if a.Params["conns"].(float64) != 2 {
		t.Fatalf("params = %+v", a.Params)
	}
}

// TestTraceOverheadMode: the A/B comparison toggles TRACE on the
// server around the measured legs and lands in the artifact.
func TestTraceOverheadMode(t *testing.T) {
	ms := startMiniServer(t)
	cfg := testConfig(ms.ln.Addr().String())
	cfg.ops = 200

	var out strings.Builder
	to, err := runTraceOverhead(cfg, 8, 1024, &out)
	if err != nil {
		t.Fatal(err)
	}
	// 1 initial OFF + (OFF, ON) per interleaved round + 1 final OFF.
	if ms.traceCmds.Load() != 12 {
		t.Fatalf("server saw %d TRACE commands, want 12", ms.traceCmds.Load())
	}
	if to.SampleEvery != 1024 || to.OpsPerSecOff <= 0 || to.OpsPerSecOn <= 0 {
		t.Fatalf("overhead result = %+v", to)
	}
	if !strings.Contains(out.String(), "trace overhead @1/1024") {
		t.Fatalf("report line missing:\n%s", out.String())
	}

	path := filepath.Join(t.TempDir(), "overhead.json")
	if err := writeArtifact(path, cfg, []int{8}, nil, to); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	if a.Name != "trace-overhead" || a.TraceOverhead == nil || a.TraceOverhead.SampleEvery != 1024 {
		t.Fatalf("artifact = %+v", a)
	}
}
