// Command kvbench is a closed-loop RESP load generator for kvserve.
// It opens -conns connections and drives each with a fixed pipeline
// depth: write -depth commands, flush once, read -depth replies,
// repeat. Because the loop is closed, ops/sec directly measures how
// much per-request overhead (syscalls, flushes, scheduling) pipelining
// amortizes — the real-world win the simulator's cycle model
// deliberately leaves out.
//
//	kvbench -addr 127.0.0.1:6380 -conns 4 -depth 16 -ops 200000
//	kvbench -addr 127.0.0.1:6380 -sweep 1,4,16,64 -json sweep.json
//
// With -sweep, each depth runs as its own measurement point and the
// -json artifact holds the whole sweep (telemetry.Snapshot-style:
// name/kind/params plus one record per depth).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"os"
	rtrace "runtime/trace"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"addrkv/internal/hostmeta"
	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
	"addrkv/internal/ycsb"
)

// benchConfig shapes one kvbench invocation.
type benchConfig struct {
	network  string // "tcp" or "unix"
	addr     string
	conns    int
	ops      int // total operations per depth point, split across conns
	keys     int // key-space size
	vsize    int // SET value size
	getRatio float64
	seed     uint64
	// cluster treats addr as a cluster seed node: the slot table is
	// bootstrapped from CLUSTER SLOTS and ops are routed per key.
	cluster bool
	// mix, when set, drives a YCSB A–F (or flood) operation mix instead
	// of the plain GET/SET ratio: scans map to RANGE pages, inserts to
	// SETs of fresh keys, RMWs to GET+SET pairs.
	mix *ycsb.Mix
	// ttlMS, when positive, follows every SET with PEXPIRE <ttlMS> so
	// the run churns the expiry machinery.
	ttlMS int64
}

// depthResult is one measurement point of a sweep.
type depthResult struct {
	Depth     int     `json:"depth"`
	Conns     int     `json:"conns"`
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	ElapsedNS int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// RoundtripUS summarizes the per-flush roundtrip (write batch,
	// flush, read all replies) in microseconds.
	RoundtripUS telemetry.Quantiles `json:"roundtrip_us"`
	// LatencyUS approximates per-op latency percentiles: every op in a
	// depth-D pipelined batch experiences ~the batch's full roundtrip,
	// so each roundtrip contributes D samples of its duration.
	LatencyUS telemetry.Quantiles `json:"latency_us"`
	// Redirect traffic absorbed in cluster mode (zero otherwise).
	Moved    uint64 `json:"moved,omitempty"`
	Ask      uint64 `json:"ask,omitempty"`
	TryAgain uint64 `json:"tryagain,omitempty"`
	// Repairs counts slot-table rebuilds forced by routing to an
	// unreachable (killed) node.
	Repairs uint64 `json:"repairs,omitempty"`
}

// traceOverhead compares server throughput with tracing off vs
// sampling 1 in SampleEvery ops — the cost of leaving the flight
// recorder armed in production.
type traceOverhead struct {
	SampleEvery  uint64  `json:"sample_every"`
	OpsPerSecOff float64 `json:"ops_per_sec_off"`
	OpsPerSecOn  float64 `json:"ops_per_sec_on"`
	// OverheadFrac is 1 - median(on/off) over the interleaved round
	// pairs; negative values mean the traced leg measured faster
	// (noise).
	OverheadFrac float64 `json:"overhead_frac"`
}

// artifact is the -json output: a self-contained record of the sweep,
// stamped with the host fingerprint so a 1-CPU container capture is
// never mistaken for a multi-core bench run.
type artifact struct {
	Name          string         `json:"name"`
	Kind          string         `json:"kind"`
	Host          hostmeta.Meta  `json:"host"`
	Params        map[string]any `json:"params"`
	Sweep         []depthResult  `json:"sweep"`
	TraceOverhead *traceOverhead `json:"trace_overhead,omitempty"`
}

func main() {
	var (
		sock     = flag.String("sock", "", "Unix socket path")
		addr     = flag.String("addr", "", "TCP address")
		conns    = flag.Int("conns", 4, "concurrent connections")
		depth    = flag.Int("depth", 16, "pipeline depth per connection")
		sweep    = flag.String("sweep", "", "comma-separated depths to sweep (overrides -depth)")
		ops      = flag.Int("ops", 100_000, "operations per depth point")
		keys     = flag.Int("keys", 10_000, "key-space size")
		vsize    = flag.Int("vsize", 64, "SET value size")
		getRatio = flag.Float64("get-ratio", 0.9, "fraction of GETs (rest are SETs)")
		seed     = flag.Uint64("seed", 42, "workload seed")
		workload = flag.String("workload", "", "YCSB core mix A..F or 'flood' (overrides -get-ratio; E needs an ordered server index)")
		ttl      = flag.Duration("ttl", 0, "follow every SET with PEXPIRE of this duration (0 = no TTLs)")
		clus     = flag.Bool("cluster", false, "treat -addr as a cluster seed node: route per key via CLUSTER SLOTS, follow MOVED/ASK")
		jsonPath = flag.String("json", "", "write the sweep artifact to this file")

		ovhd       = flag.Bool("trace-overhead", false, "measure tracing overhead: throughput with TRACE OFF vs TRACE ON <sample> (best of 3 each)")
		ovhdSample = flag.Uint64("trace-overhead-sample", 1024, "1-in-N sampling rate for the traced leg of -trace-overhead")
		maxOvhd    = flag.Float64("max-overhead", 0, "exit 1 when the measured trace overhead fraction exceeds this (0 = report only)")
	)
	flag.Parse()

	if (*sock == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "kvbench: exactly one of -sock or -addr is required")
		os.Exit(2)
	}
	cfg := benchConfig{
		network: "unix", addr: *sock,
		conns: *conns, ops: *ops, keys: *keys, vsize: *vsize,
		getRatio: *getRatio, seed: *seed,
	}
	if *addr != "" {
		cfg.network, cfg.addr = "tcp", *addr
	}
	cfg.cluster = *clus
	if cfg.cluster && *addr == "" {
		fmt.Fprintln(os.Stderr, "kvbench: -cluster requires -addr (cluster nodes redirect to TCP addresses)")
		os.Exit(2)
	}
	cfg.ttlMS = ttl.Milliseconds()
	if *workload != "" {
		mix, err := ycsb.MixByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(2)
		}
		if cfg.cluster {
			fmt.Fprintln(os.Stderr, "kvbench: -workload does not compose with -cluster (scans have no slot routing)")
			os.Exit(2)
		}
		cfg.mix = &mix
	}
	if cfg.conns < 1 || *depth < 1 || cfg.ops < 1 || cfg.keys < 1 {
		fmt.Fprintln(os.Stderr, "kvbench: -conns, -depth, -ops and -keys must be >= 1")
		os.Exit(2)
	}
	depths := []int{*depth}
	if *sweep != "" {
		var err error
		if depths, err = parseSweep(*sweep); err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
			os.Exit(2)
		}
	}

	if *ovhd {
		to, err := runTraceOverhead(cfg, *depth, *ovhdSample, os.Stdout)
		if err != nil {
			log.Fatalf("kvbench: %v", err)
		}
		if *jsonPath != "" {
			if err := writeArtifact(*jsonPath, cfg, depths, nil, to); err != nil {
				log.Fatalf("kvbench: %v", err)
			}
		}
		if *maxOvhd > 0 && to.OverheadFrac > *maxOvhd {
			log.Fatalf("kvbench: trace overhead %.2f%% exceeds the %.2f%% budget",
				100*to.OverheadFrac, 100**maxOvhd)
		}
		return
	}

	results, err := run(cfg, depths, os.Stdout)
	if err != nil {
		log.Fatalf("kvbench: %v", err)
	}
	if *jsonPath != "" {
		if err := writeArtifact(*jsonPath, cfg, depths, results, nil); err != nil {
			log.Fatalf("kvbench: %v", err)
		}
	}
}

// serverCmd sends one out-of-band command (e.g. TRACE ON 1024) on its
// own connection and fails on an error reply.
func serverCmd(cfg benchConfig, args ...string) error {
	conn, err := net.Dial(cfg.network, cfg.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	ba := make([][]byte, len(args))
	for i, a := range args {
		ba[i] = []byte(a)
	}
	if err := w.WriteCommand(ba...); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	v, err := resp.NewReader(conn).ReadReply()
	if err != nil {
		return err
	}
	if e, isErr := v.(error); isErr {
		return fmt.Errorf("%s: %w", strings.Join(args, " "), e)
	}
	return nil
}

// runTraceOverhead measures the cost of armed sampling. Closed-loop
// throughput is noisy and drifts as the server's fast path warms, so
// neither a sequential A/B nor best-of-N can resolve a small
// overhead. Instead, after one unmeasured warmup round, the off/on
// legs INTERLEAVE with the order flipped every round (off-on, on-off,
// ...): each adjacent pair shares its warmth/noise regime, the
// per-pair throughput ratio estimates the overhead with the drift
// cancelled (alternating which leg runs first cancels any residual
// within-pair drift direction), and the MEDIAN over pairs discards
// outlier rounds (GC, scheduler hiccups).
func runTraceOverhead(cfg benchConfig, depth int, sample uint64, out io.Writer) (*traceOverhead, error) {
	const rounds = 5
	if err := serverCmd(cfg, "TRACE", "OFF"); err != nil {
		return nil, err
	}
	if _, err := runDepth(cfg, depth); err != nil { // warmup, unmeasured
		return nil, err
	}
	leg := func(on bool) (depthResult, error) {
		var err error
		if on {
			err = serverCmd(cfg, "TRACE", "ON", strconv.FormatUint(sample, 10))
		} else {
			err = serverCmd(cfg, "TRACE", "OFF")
		}
		if err != nil {
			return depthResult{}, err
		}
		return runDepth(cfg, depth)
	}
	var bestOff, bestOn float64
	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		onFirst := i%2 == 1
		first, err := leg(onFirst)
		if err != nil {
			return nil, err
		}
		second, err := leg(!onFirst)
		if err != nil {
			return nil, err
		}
		roff, ron := first, second
		if onFirst {
			roff, ron = second, first
		}
		bestOff = math.Max(bestOff, roff.OpsPerSec)
		bestOn = math.Max(bestOn, ron.OpsPerSec)
		ratios = append(ratios, ron.OpsPerSec/roff.OpsPerSec)
	}
	if err := serverCmd(cfg, "TRACE", "OFF"); err != nil {
		return nil, err
	}
	sort.Float64s(ratios)
	to := &traceOverhead{
		SampleEvery:  sample,
		OpsPerSecOff: bestOff,
		OpsPerSecOn:  bestOn,
		OverheadFrac: 1 - ratios[len(ratios)/2],
	}
	fmt.Fprintf(out, "trace overhead @1/%d sampling: best %.0f ops/sec untraced, %.0f traced, median paired overhead %.2f%%\n",
		sample, bestOff, bestOn, 100*to.OverheadFrac)
	return to, nil
}

// parseSweep parses "1,4,16,64" into pipeline depths.
func parseSweep(s string) ([]int, error) {
	var depths []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad sweep depth %q", part)
		}
		depths = append(depths, d)
	}
	return depths, nil
}

// run executes one depth point per entry of depths and reports each on
// out as it completes.
func run(cfg benchConfig, depths []int, out io.Writer) ([]depthResult, error) {
	results := make([]depthResult, 0, len(depths))
	for _, d := range depths {
		r, err := runDepth(cfg, d)
		if err != nil {
			return results, err
		}
		fmt.Fprintf(out, "depth %3d: %9.0f ops/sec  (%d ops, %d conns, %d errors, lat p50 %dus p99 %dus p999 %dus)\n",
			d, r.OpsPerSec, r.Ops, r.Conns, r.Errors, r.LatencyUS.P50, r.LatencyUS.P99, r.LatencyUS.P999)
		if r.Moved+r.Ask+r.TryAgain+r.Repairs > 0 {
			fmt.Fprintf(out, "           redirects: %d moved, %d ask, %d tryagain, %d down-node repairs\n",
				r.Moved, r.Ask, r.TryAgain, r.Repairs)
		}
		results = append(results, r)
	}
	return results, nil
}

// runDepth drives one closed-loop measurement at a fixed pipeline
// depth across cfg.conns connections.
func runDepth(cfg benchConfig, depth int) (depthResult, error) {
	perConn := cfg.ops / cfg.conns
	if perConn == 0 {
		perConn = 1
	}
	var (
		wg       sync.WaitGroup
		done     uint64
		errCount uint64
		rt, lat  telemetry.Histogram
		cc       clusterCounters
		st       slotTable
		firstErr error
		errOnce  sync.Once
	)
	if cfg.cluster {
		if err := st.refresh(cfg.network, cfg.addr); err != nil {
			return depthResult{}, fmt.Errorf("slot table bootstrap: %w", err)
		}
	}
	start := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var n, errs uint64
			var err error
			if cfg.cluster {
				n, errs, err = benchClusterConn(cfg, depth, perConn, cfg.seed+uint64(id)*7919, &rt, &lat, &st, &cc)
			} else {
				n, errs, err = benchConn(cfg, depth, perConn, cfg.seed+uint64(id)*7919, &rt, &lat)
			}
			atomic.AddUint64(&done, n)
			atomic.AddUint64(&errCount, errs)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return depthResult{}, firstErr
	}
	return depthResult{
		Depth:       depth,
		Conns:       cfg.conns,
		Ops:         done,
		Errors:      errCount,
		ElapsedNS:   elapsed.Nanoseconds(),
		OpsPerSec:   float64(done) / elapsed.Seconds(),
		RoundtripUS: telemetry.QuantilesOf(rt.Snapshot()),
		LatencyUS:   telemetry.QuantilesOf(lat.Snapshot()),
		Moved:       cc.moved.Load(),
		Ask:         cc.ask.Load(),
		TryAgain:    cc.tryagain.Load(),
		Repairs:     cc.repairs.Load(),
	}, nil
}

// benchConn runs one connection's closed loop: batches of up to depth
// commands, one flush per batch, then all replies. Returns ops
// completed and error replies seen (protocol or dial errors abort).
func benchConn(cfg benchConfig, depth, ops int, seed uint64, rt, lat *telemetry.Histogram) (uint64, uint64, error) {
	conn, err := net.Dial(cfg.network, cfg.addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	// One runtime/trace task per connection, one region per pipelined
	// roundtrip: `go tool trace` on a client capture then shows how
	// batches from concurrent connections interleave.
	ctx, task := rtrace.NewTask(context.Background(), "kvbench.conn")
	defer task.End()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	rng := rand.New(rand.NewSource(int64(seed)))
	var gen *ycsb.MixGenerator
	if cfg.mix != nil {
		gen = ycsb.NewMixGenerator(*cfg.mix, cfg.keys, seed)
	}

	var sent, errs uint64
	for remaining := ops; remaining > 0; {
		batch := depth
		if remaining < batch {
			batch = remaining
		}
		wrote := 0
		t0 := time.Now()
		rerr := func() error {
			reg := rtrace.StartRegion(ctx, "bench.roundtrip")
			defer reg.End()
			for wrote < batch {
				if gen != nil {
					n, werr := writeMixOp(w, gen.Next(), cfg, uint32(sent))
					if werr != nil {
						return werr
					}
					wrote += n
					continue
				}
				id := uint64(rng.Intn(cfg.keys))
				key := ycsb.KeyName(id)
				if rng.Float64() < cfg.getRatio {
					err = w.WriteCommand([]byte("GET"), key)
				} else {
					err = w.WriteCommand([]byte("SET"), key, ycsb.Value(id, uint32(sent), cfg.vsize))
				}
				if err != nil {
					return err
				}
				wrote++
			}
			if err := w.Flush(); err != nil {
				return err
			}
			for i := 0; i < wrote; i++ {
				v, err := r.ReadReply()
				if err != nil {
					return fmt.Errorf("read reply: %w", err)
				}
				if _, isErr := v.(error); isErr {
					errs++
				}
				sent++
			}
			return nil
		}()
		if rerr != nil {
			return sent, errs, rerr
		}
		us := uint64(time.Since(t0).Microseconds())
		rt.Observe(us)
		lat.ObserveN(us, uint64(wrote))
		remaining -= wrote
	}
	return sent, errs, nil
}

// writeMixOp renders one mixed-workload op as RESP commands, returning
// how many commands (= expected replies) it wrote. Scans become RANGE
// pages from the op's start key, inserts plain SETs (the server treats
// them identically), RMWs a GET+SET pair; -ttl chases every SET with a
// PEXPIRE.
func writeMixOp(w *resp.Writer, op ycsb.Op, cfg benchConfig, version uint32) (int, error) {
	key := ycsb.KeyName(op.KeyID)
	set := func() (int, error) {
		if err := w.WriteCommand([]byte("SET"), key, ycsb.Value(op.KeyID, version, cfg.vsize)); err != nil {
			return 0, err
		}
		if cfg.ttlMS <= 0 {
			return 1, nil
		}
		if err := w.WriteCommand([]byte("PEXPIRE"), key, []byte(strconv.FormatInt(cfg.ttlMS, 10))); err != nil {
			return 1, err
		}
		return 2, nil
	}
	switch op.Type {
	case ycsb.Set, ycsb.Insert:
		return set()
	case ycsb.Scan:
		err := w.WriteCommand([]byte("RANGE"), key, []byte("+"), []byte(strconv.Itoa(op.ScanLen)))
		return 1, err
	case ycsb.RMW:
		if err := w.WriteCommand([]byte("GET"), key); err != nil {
			return 0, err
		}
		n, err := set()
		return 1 + n, err
	default:
		err := w.WriteCommand([]byte("GET"), key)
		return 1, err
	}
}

// writeArtifact writes the sweep JSON artifact.
func writeArtifact(path string, cfg benchConfig, depths []int, results []depthResult, to *traceOverhead) error {
	name := "pipeline-sweep"
	if to != nil {
		name = "trace-overhead"
	}
	a := artifact{
		Name: name,
		Kind: "kvbench",
		Host: hostmeta.Collect(),
		Params: map[string]any{
			"addr":      cfg.addr,
			"conns":     cfg.conns,
			"ops":       cfg.ops,
			"keys":      cfg.keys,
			"vsize":     cfg.vsize,
			"get_ratio": cfg.getRatio,
			"seed":      cfg.seed,
			"cluster":   cfg.cluster,
			"depths":    depths,
		},
		Sweep:         results,
		TraceOverhead: to,
	}
	if cfg.mix != nil {
		a.Name = "ycsb-" + cfg.mix.Name
		a.Params["workload"] = cfg.mix.Name
	}
	if cfg.ttlMS > 0 {
		a.Params["ttl_ms"] = cfg.ttlMS
	}
	b, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
