// Cluster-aware load generation (-cluster): the bench bootstraps a
// slot→address table from CLUSTER SLOTS on the seed address, predicts
// each key's node, and pipelines per-node sub-batches. Redirects are
// followed the way a real cluster client would: MOVED repairs the
// cached table and retries at the named node, ASK follows with an
// ASKING-prefixed one-shot, TRYAGAIN backs off briefly — so a live
// slot migration costs extra roundtrips but never failed ops, and the
// artifact reports how many of each redirect the run absorbed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"addrkv/internal/cluster"
	"addrkv/internal/resp"
	"addrkv/internal/telemetry"
	"addrkv/internal/ycsb"
)

// slotTable is the client-side slot→address cache, shared by every
// bench connection and repaired in place on MOVED.
type slotTable struct {
	mu    sync.RWMutex
	addrs []string
}

func (st *slotTable) addr(slot uint16) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.addrs) == 0 {
		return ""
	}
	return st.addrs[slot]
}

func (st *slotTable) set(slot uint16, addr string) {
	st.mu.Lock()
	if len(st.addrs) == 0 {
		st.addrs = make([]string, cluster.NumSlots)
	}
	st.addrs[slot] = addr
	st.mu.Unlock()
}

// refresh rebuilds the whole table from one CLUSTER SLOTS call.
func (st *slotTable) refresh(network, seedAddr string) error {
	conn, err := net.Dial(network, seedAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	if err := w.WriteCommand([]byte("CLUSTER"), []byte("SLOTS")); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	v, err := resp.NewReader(conn).ReadReply()
	if err != nil {
		return err
	}
	ranges, ok := v.([]any)
	if !ok {
		return fmt.Errorf("CLUSTER SLOTS: unexpected reply %T (%v)", v, v)
	}
	addrs := make([]string, cluster.NumSlots)
	for _, e := range ranges {
		ent, ok := e.([]any)
		if !ok || len(ent) < 3 {
			return fmt.Errorf("CLUSTER SLOTS: bad range entry %v", e)
		}
		start, ok1 := ent[0].(int64)
		end, ok2 := ent[1].(int64)
		owner, ok3 := ent[2].([]any)
		if !ok1 || !ok2 || !ok3 || len(owner) < 1 ||
			start < 0 || end >= cluster.NumSlots || start > end {
			return fmt.Errorf("CLUSTER SLOTS: bad range entry %v", e)
		}
		oa, ok := owner[0].([]byte)
		if !ok {
			return fmt.Errorf("CLUSTER SLOTS: bad owner %v", owner)
		}
		for s := start; s <= end; s++ {
			addrs[s] = string(oa)
		}
	}
	st.mu.Lock()
	st.addrs = addrs
	st.mu.Unlock()
	return nil
}

// parseRedirect decodes "MOVED <slot> <addr>" / "ASK <slot> <addr>" /
// "TRYAGAIN ..." error replies; ok is false for any other error.
func parseRedirect(msg string) (kind string, slot uint16, addr string, ok bool) {
	if strings.HasPrefix(msg, "TRYAGAIN") {
		return "TRYAGAIN", 0, "", true
	}
	fields := strings.Fields(msg)
	if len(fields) != 3 || (fields[0] != "MOVED" && fields[0] != "ASK") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n >= cluster.NumSlots {
		return "", 0, "", false
	}
	return fields[0], uint16(n), fields[2], true
}

// clusterCounters aggregates redirect traffic across connections.
// repairs counts slot-table rebuilds forced by an unreachable node —
// a redirect or prediction that routed to a dead address.
type clusterCounters struct {
	moved, ask, tryagain, repairs atomic.Uint64
}

// benchOp is one generated command.
type benchOp struct {
	get bool
	key []byte
	val []byte
}

// nodeConn is one persistent connection to one cluster node.
type nodeConn struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

// clusterBench is one connection-slot's worth of cluster load: a
// connection per node, lazily dialed. seedAddr is the bootstrap node
// the slot table is re-fetched from when a routed-to node turns out to
// be dead.
type clusterBench struct {
	network  string
	seedAddr string
	st       *slotTable
	cc       *clusterCounters
	conns    map[string]*nodeConn
}

func (b *clusterBench) conn(addr string) (*nodeConn, error) {
	if nc, ok := b.conns[addr]; ok {
		return nc, nil
	}
	c, err := net.Dial(b.network, addr)
	if err != nil {
		return nil, err
	}
	nc := &nodeConn{conn: c, r: resp.NewReader(c), w: resp.NewWriter(c)}
	b.conns[addr] = nc
	return nc, nil
}

func (b *clusterBench) closeAll() {
	for _, nc := range b.conns {
		nc.conn.Close()
	}
}

// repairRoute handles a dead routing target: log the node (once per
// incident, with the cause), drop its cached connection, and rebuild
// the slot table from the seed so the retry loop re-routes by the
// repaired map instead of aborting the whole run. The cluster has no
// automatic failover, so if the map still names the dead node the
// caller's bounded retry surfaces the original error.
func (b *clusterBench) repairRoute(addr string, cause error) {
	b.cc.repairs.Add(1)
	log.Printf("kvbench: node %s unreachable (%v); refreshing slot table from %s", addr, cause, b.seedAddr)
	if nc, ok := b.conns[addr]; ok {
		nc.conn.Close()
		delete(b.conns, addr)
	}
	if err := b.st.refresh(b.network, b.seedAddr); err != nil {
		log.Printf("kvbench: slot table refresh from %s failed: %v", b.seedAddr, err)
	}
}

func writeOp(w *resp.Writer, op benchOp) error {
	if op.get {
		return w.WriteCommand([]byte("GET"), op.key)
	}
	return w.WriteCommand([]byte("SET"), op.key, op.val)
}

// retry resolves one redirected op. MOVED repairs the slot table and
// chases the named node; ASK one-shots the named node behind ASKING
// without caching; TRYAGAIN backs off and re-resolves (migration
// commits within microseconds of the dual-serve window closing).
func (b *clusterBench) retry(op benchOp, msg string) (any, error) {
	slot := cluster.SlotOf(op.key)
	repairs := 0
	for attempt := 0; attempt < 32; attempt++ {
		kind, rslot, raddr, ok := parseRedirect(msg)
		if !ok {
			return fmt.Errorf("%s", msg), nil // a genuine error reply
		}
		var nc *nodeConn
		var err error
		asking := false
		target := raddr
		switch kind {
		case "MOVED":
			b.cc.moved.Add(1)
			b.st.set(rslot, raddr)
			nc, err = b.conn(raddr)
		case "ASK":
			b.cc.ask.Add(1)
			asking = true
			nc, err = b.conn(raddr)
		case "TRYAGAIN":
			b.cc.tryagain.Add(1)
			time.Sleep(time.Duration(100+50*attempt) * time.Microsecond)
			target = b.st.addr(slot)
			nc, err = b.conn(target)
		}
		if err != nil {
			// The redirect named a node that does not answer (killed
			// mid-run): repair the table and chase the refreshed owner
			// instead of aborting. Bounded — with no failover, a map
			// that keeps naming the dead node is a terminal condition.
			if repairs >= 3 {
				return nil, err
			}
			repairs++
			b.repairRoute(target, err)
			msg = fmt.Sprintf("MOVED %d %s", slot, b.st.addr(slot))
			continue
		}
		if asking {
			if err := nc.w.WriteCommand([]byte("ASKING")); err != nil {
				return nil, err
			}
		}
		if err := writeOp(nc.w, op); err != nil {
			return nil, err
		}
		if err := nc.w.Flush(); err != nil {
			return nil, err
		}
		if asking {
			if _, err := nc.r.ReadReply(); err != nil { // the +OK for ASKING
				return nil, err
			}
		}
		v, err := nc.r.ReadReply()
		if err != nil {
			return nil, err
		}
		e, isErr := v.(error)
		if !isErr {
			return v, nil
		}
		msg = e.Error()
	}
	return nil, fmt.Errorf("redirect loop did not settle: %s", msg)
}

// benchClusterConn is the cluster-mode counterpart of benchConn: each
// batch is grouped by predicted node, pipelined per node, and any
// redirected op is chased to completion before the batch counts as
// done — the closed loop measures migration disruption as latency,
// not as lost ops.
func benchClusterConn(cfg benchConfig, depth, ops int, seed uint64,
	rt, lat *telemetry.Histogram, st *slotTable, cc *clusterCounters) (uint64, uint64, error) {
	b := &clusterBench{network: cfg.network, seedAddr: cfg.addr, st: st, cc: cc, conns: map[string]*nodeConn{}}
	defer b.closeAll()
	rng := rand.New(rand.NewSource(int64(seed)))

	batchOps := make([]benchOp, 0, depth)
	groups := map[string][]int{}
	var sent, errs uint64
	for remaining := ops; remaining > 0; {
		batch := depth
		if remaining < batch {
			batch = remaining
		}
		batchOps = batchOps[:0]
		for i := 0; i < batch; i++ {
			id := uint64(rng.Intn(cfg.keys))
			op := benchOp{get: rng.Float64() < cfg.getRatio, key: ycsb.KeyName(id)}
			if !op.get {
				op.val = ycsb.Value(id, uint32(sent)+uint32(i), cfg.vsize)
			}
			batchOps = append(batchOps, op)
		}
		for k := range groups {
			delete(groups, k)
		}
		for i, op := range batchOps {
			addr := st.addr(cluster.SlotOf(op.key))
			groups[addr] = append(groups[addr], i)
		}
		t0 := time.Now()
		for addr, idxs := range groups {
			nc, err := b.conn(addr)
			if err != nil {
				// The predicted node is unreachable: log + repair the
				// slot table, then chase each of the group's ops
				// individually through the redirect machinery (which
				// re-repairs, bounded, if the refreshed map is stale).
				b.repairRoute(addr, err)
				for _, i := range idxs {
					slot := cluster.SlotOf(batchOps[i].key)
					v, rerr := b.retry(batchOps[i], fmt.Sprintf("MOVED %d %s", slot, b.st.addr(slot)))
					if rerr != nil {
						return sent, errs, rerr
					}
					if _, stillErr := v.(error); stillErr {
						errs++
					}
					sent++
				}
				continue
			}
			for _, i := range idxs {
				if err := writeOp(nc.w, batchOps[i]); err != nil {
					return sent, errs, err
				}
			}
			if err := nc.w.Flush(); err != nil {
				return sent, errs, err
			}
			for _, i := range idxs {
				v, err := nc.r.ReadReply()
				if err != nil {
					return sent, errs, fmt.Errorf("read reply: %w", err)
				}
				if e, isErr := v.(error); isErr {
					if _, _, _, redir := parseRedirect(e.Error()); redir {
						v, err = b.retry(batchOps[i], e.Error())
						if err != nil {
							return sent, errs, err
						}
					}
					if _, stillErr := v.(error); stillErr {
						errs++
					}
				}
				sent++
			}
		}
		us := uint64(time.Since(t0).Microseconds())
		rt.Observe(us)
		lat.ObserveN(us, uint64(batch))
		remaining -= batch
	}
	return sent, errs, nil
}
