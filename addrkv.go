// Package addrkv is a library-level reproduction of "Hardware-Based
// Address-Centric Acceleration of Key-Value Store" (HPCA 2021): the
// STLT/STB/IPB hardware design, its OS support, the SLB software
// baseline, four production-style indexing structures, and the YCSB
// workloads — all running on a timing-accurate simulated memory system
// (TLBs, three cache levels, radix page tables, DRAM) implemented in
// pure Go.
//
// The top-level API builds a simulated key-value System in one of
// several acceleration modes and runs real GET/SET traffic through it,
// reporting cycle-accurate statistics:
//
//	sys, err := addrkv.New(addrkv.Options{
//		Keys:  200_000,
//		Index: addrkv.IndexChainHash,
//		Mode:  addrkv.ModeSTLT,
//	})
//	...
//	sys.Load(200_000, 64)
//	rep := sys.RunWorkload(addrkv.Workload{
//		Distribution: addrkv.DistZipf, ValueSize: 64,
//		WarmOps: 400_000, MeasureOps: 64_000,
//	})
//	fmt.Println(rep.CyclesPerOp)
//
// To reproduce the paper's tables and figures, use cmd/stltbench or
// the benchmarks in bench_test.go.
package addrkv

import (
	"fmt"

	"addrkv/internal/arch"
	"addrkv/internal/core"
	"addrkv/internal/hashfn"
	"addrkv/internal/kv"
	"addrkv/internal/shard"
	"addrkv/internal/ycsb"
)

// Mode selects the acceleration configuration of a System.
type Mode = kv.Mode

// Acceleration modes. ModeSTLTSW and ModeSTLTVA are the ablations of
// the paper's Figure 19.
const (
	ModeBaseline = kv.ModeBaseline
	ModeSTLT     = kv.ModeSTLT
	ModeSLB      = kv.ModeSLB
	ModeSTLTSW   = kv.ModeSTLTSW
	ModeSTLTVA   = kv.ModeSTLTVA
)

// IndexKind selects the indexing structure of a System.
type IndexKind = kv.IndexKind

// Index kinds (Table II of the paper).
const (
	IndexChainHash = kv.KindChainHash // Redis-dict-style chained hash
	IndexDenseHash = kv.KindDenseHash // dense_hash_map-style open addressing
	IndexRBTree    = kv.KindRBTree    // std::map-style red-black tree
	IndexBTree     = kv.KindBTree     // cpp-btree-style B-tree
)

// Distribution selects a workload request distribution.
type Distribution = ycsb.Distribution

// Distributions for RunWorkload.
const (
	DistZipf    = ycsb.Zipf
	DistLatest  = ycsb.Latest
	DistUniform = ycsb.Uniform
)

// Options configures a System. Zero values pick the paper's defaults.
type Options struct {
	// Keys is the expected number of distinct keys across the whole
	// system (sizes the indexes and the default STLTs). Required.
	Keys int
	// Shards is the number of independent simulated machines the key
	// space is hashed across (default 1, the paper's single-core
	// setup). Each shard gets its own caches, TLBs, STB/IPB, and an
	// STLT sized at Keys/Shards; different shards can be driven from
	// concurrent goroutines.
	Shards int
	// Index picks the indexing structure (default IndexChainHash).
	Index IndexKind
	// Mode picks the acceleration (default ModeBaseline).
	Mode Mode
	// RedisLayer adds the modeled Redis command-processing costs.
	RedisLayer bool
	// STLTRows / STLTWays size the STLT (defaults: the scaled
	// equivalent of the paper's 512 MB table, 4-way).
	STLTRows int
	STLTWays int
	// SLBEntries sizes the SLB cache table (default: the paper's
	// Figure 11 setup).
	SLBEntries int
	// FastHashName picks the STLT/SLB fast-path hash from Table IV:
	// "sipHash", "murmurHash", "xxh64", "djb2", "xxh3" (default).
	FastHashName string
	// SlowHashName overrides the index's own hash function (defaults:
	// sipHash with RedisLayer, murmurHash otherwise).
	SlowHashName string
	// EnableMonitor turns on the runtime performance monitor
	// (Section III-F "Performance guarantee").
	EnableMonitor bool
	// AutoTune turns on the miss-ratio-driven STLT resizer
	// (Section III-F performance tuning).
	AutoTune bool
	// DataPrefetcher: "", "stride", or "vldp" (Section IV-F).
	DataPrefetcher string
	// TLBPrefetch enables distance TLB prefetching (Section IV-F).
	TLBPrefetch bool
	// MachineParams overrides the simulated architecture (defaults to
	// Table III via arch.DefaultMachineParams).
	MachineParams *arch.MachineParams
	// MaxMemory, when positive, caps the PER-SHARD record bytes: once a
	// SET pushes a shard past the cap, keys are evicted by the STLT's
	// in-set LFU rule (4-bit probabilistic counters, first-minimum
	// victim) until it fits. 0 disables eviction.
	MaxMemory int64
	// Seed makes runs deterministic (default 42).
	Seed uint64
}

// System is a simulated key-value store instance: a shard.Cluster of
// one or more simulated machines. All data-path methods are safe for
// concurrent use; operations on different shards proceed in parallel.
type System struct {
	c *shard.Cluster
}

// New builds a System.
func New(o Options) (*System, error) {
	cfg := kv.Config{
		Keys:           o.Keys,
		Index:          o.Index,
		Mode:           o.Mode,
		RedisLayer:     o.RedisLayer,
		STLTRows:       o.STLTRows,
		STLTWays:       o.STLTWays,
		SLBEntries:     o.SLBEntries,
		Monitor:        o.EnableMonitor,
		AutoTune:       o.AutoTune,
		DataPrefetcher: o.DataPrefetcher,
		TLBPrefetch:    o.TLBPrefetch,
		MaxMemory:      o.MaxMemory,
		Seed:           o.Seed,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if o.MachineParams != nil {
		cfg.Params = *o.MachineParams
	}
	if o.FastHashName != "" {
		f, err := hashfn.ByName(o.FastHashName)
		if err != nil {
			return nil, err
		}
		cfg.FastHash = &f
	}
	if o.SlowHashName != "" {
		f, err := hashfn.ByName(o.SlowHashName)
		if err != nil {
			return nil, err
		}
		cfg.SlowHash = &f
	}
	c, err := shard.New(shard.Config{Shards: o.Shards, Engine: cfg})
	if err != nil {
		return nil, err
	}
	return &System{c: c}, nil
}

// Load bulk-inserts n sequential YCSB keys with valueSize-byte values
// (the fast, untimed population phase), each routed to its home shard.
func (s *System) Load(n, valueSize int) { s.c.Load(n, valueSize) }

// Get retrieves a key with full timing, returning its value.
func (s *System) Get(key []byte) ([]byte, bool) { return s.c.Get(key) }

// GetTouch performs a timed GET charging the value read without
// materializing it (the hot loop of replayers and benchmarks).
func (s *System) GetTouch(key []byte) bool { return s.c.GetTouch(key) }

// Set inserts or updates a key with full timing.
func (s *System) Set(key, value []byte) { s.c.Set(key, value) }

// Delete removes a key with full timing.
func (s *System) Delete(key []byte) bool { return s.c.Delete(key) }

// Exists performs a timed existence-only check: the addressing path
// without the value read or value reply.
func (s *System) Exists(key []byte) bool { return s.c.Exists(key) }

// OpOutcome is the per-operation telemetry report of the *O data-path
// variants: home shard, modeled cycle cost, and how the addressing
// path resolved. Filling it reads counters only — observed runs stay
// bit-for-bit identical to unobserved ones.
type OpOutcome = shard.OpOutcome

// GetO is Get with a per-op outcome report (out may be nil).
func (s *System) GetO(key []byte, out *OpOutcome) ([]byte, bool) { return s.c.GetO(key, out) }

// GetTouchO is GetTouch with a per-op outcome report.
func (s *System) GetTouchO(key []byte, out *OpOutcome) bool { return s.c.GetTouchO(key, out) }

// SetO is Set with a per-op outcome report.
func (s *System) SetO(key, value []byte, out *OpOutcome) { s.c.SetO(key, value, out) }

// DeleteO is Delete with a per-op outcome report.
func (s *System) DeleteO(key []byte, out *OpOutcome) bool { return s.c.DeleteO(key, out) }

// ExistsO is Exists with a per-op outcome report.
func (s *System) ExistsO(key []byte, out *OpOutcome) bool { return s.c.ExistsO(key, out) }

// BatchOutcome is the per-batch telemetry report of the *BatchO
// methods: one exact probe delta per shard touched. Like OpOutcome,
// filling it reads counters only.
type BatchOutcome = shard.BatchOutcome

// GetBatch retrieves keys with full timing, grouped by home shard and
// executed as one locked call per shard. Results are positional:
// vals[i]/oks[i] answer keys[i]. Modeled cycles are bit-for-bit
// identical to len(keys) sequential Get calls.
func (s *System) GetBatch(keys [][]byte) (vals [][]byte, oks []bool) { return s.c.GetBatch(keys) }

// GetBatchO is GetBatch with a per-batch outcome report (out may be nil).
func (s *System) GetBatchO(keys [][]byte, out *BatchOutcome) (vals [][]byte, oks []bool) {
	return s.c.GetBatchO(keys, out)
}

// SetBatch inserts or updates keys[i] = values[i] with full timing,
// one locked call per home shard.
func (s *System) SetBatch(keys, values [][]byte) { s.c.SetBatch(keys, values) }

// SetBatchO is SetBatch with a per-batch outcome report.
func (s *System) SetBatchO(keys, values [][]byte, out *BatchOutcome) {
	s.c.SetBatchO(keys, values, out)
}

// DeleteBatch removes keys with full timing, one locked call per home
// shard, returning how many existed.
func (s *System) DeleteBatch(keys [][]byte) int { return s.c.DeleteBatch(keys) }

// DeleteBatchO is DeleteBatch with a per-batch outcome report.
func (s *System) DeleteBatchO(keys [][]byte, out *BatchOutcome) int {
	return s.c.DeleteBatchO(keys, out)
}

// ErrUnordered reports a SCAN/RANGE against a hash index (no key
// order to iterate); the server surfaces it as a typed RESP error.
var ErrUnordered = kv.ErrUnordered

// ErrBadCursor reports a malformed SCAN cursor.
var ErrBadCursor = kv.ErrBadCursor

// ParseCursor decodes a SCAN cursor: "0" starts a walk, "k"+hex resumes
// strictly after the encoded key. See AppendCursor for the encoder.
func ParseCursor(cur, buf []byte) (after []byte, resume bool, err error) {
	return kv.ParseCursor(cur, buf)
}

// AppendCursor appends the continuation cursor for a scan page that
// last emitted key, reusing dst's capacity.
func AppendCursor(dst, key []byte) []byte { return kv.AppendCursor(dst, key) }

// ScanStart converts a parsed cursor into the inclusive Scan start key
// (strictly after the cursor's key), appended into buf's capacity.
func ScanStart(after []byte, resume bool, buf []byte) []byte {
	return kv.ScanStart(after, resume, buf)
}

// MatchGlob reports whether key matches the Redis-style glob pattern
// (`*`, `?`, `[a-c]`/`[^...]` classes, `\` escapes), byte-wise. SCAN
// MATCH applies it server-side after cursor decode.
func MatchGlob(pattern, key []byte) bool { return kv.MatchGlob(pattern, key) }

// Ordered reports whether the configured index supports SCAN/RANGE
// (rbtree and btree do; the hash indexes do not).
func (s *System) Ordered() bool { return s.c.Ordered() }

// Scan visits up to limit stored keys >= start in ascending order with
// full timing (limit <= 0 = unbounded), calling fn with a copy of each
// key. Returns keys emitted, or ErrUnordered for a hash index.
func (s *System) Scan(start []byte, limit int, fn func(key []byte) bool) (int, error) {
	return s.c.Scan(start, limit, fn)
}

// ScanO is Scan with a per-shard outcome report (out may be nil).
func (s *System) ScanO(start []byte, limit int, fn func(key []byte) bool, out *BatchOutcome) (int, error) {
	return s.c.ScanO(start, limit, fn, out)
}

// Range visits up to limit stored pairs with start <= key <= end in
// ascending key order with full timing (end nil = unbounded). Returns
// pairs emitted, or ErrUnordered for a hash index.
func (s *System) Range(start, end []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	return s.c.Range(start, end, limit, fn)
}

// RangeO is Range with a per-shard outcome report (out may be nil).
func (s *System) RangeO(start, end []byte, limit int, fn func(key, value []byte) bool, out *BatchOutcome) (int, error) {
	return s.c.RangeO(start, end, limit, fn, out)
}

// ExpireAt arms an absolute TTL deadline (unix ns) on a key with full
// timing, returning 1 when armed and 0 when the key is absent. Expired
// keys are reaped lazily on access plus by the active sweep; recovery
// replays both the arm and the reap, so TTL state survives restarts.
func (s *System) ExpireAt(key []byte, deadline int64) int { return s.c.ExpireAt(key, deadline) }

// ExpireAtO is ExpireAt with a per-op outcome report (out may be nil).
func (s *System) ExpireAtO(key []byte, deadline int64, out *OpOutcome) int {
	return s.c.ExpireAtO(key, deadline, out)
}

// TTL reports a key's remaining TTL in nanoseconds with full timing
// (-2 absent, -1 present without deadline).
func (s *System) TTL(key []byte) int64 { return s.c.TTL(key) }

// TTLO is TTL with a per-op outcome report (out may be nil).
func (s *System) TTLO(key []byte, out *OpOutcome) int64 { return s.c.TTLO(key, out) }

// Now reads the TTL clock (shard 0's time source) — the base servers
// use to turn relative EXPIRE/PEXPIRE into absolute deadlines.
func (s *System) Now() int64 { return s.c.Now() }

// SetClock installs a deterministic TTL time source on every shard
// (tests, differential harnesses); nil restores real time.
func (s *System) SetClock(fn func() int64) { s.c.SetClock(fn) }

// SweepExpired runs one active-expiry cycle over every shard, sampling
// up to limit armed deadlines per shard; returns keys reaped. Servers
// call this off a ticker (mutex dispatch) — the worker runtime sweeps
// off its own drain loop.
func (s *System) SweepExpired(limit int) int { return s.c.SweepExpired(limit) }

// UsedBytes reports the record bytes tracked by the eviction policy (0
// unless MaxMemory is set).
func (s *System) UsedBytes() int64 { return s.c.UsedBytes() }

// ExpiresArmed reports how many keys currently carry a TTL deadline.
func (s *System) ExpiresArmed() int { return s.c.ExpiresArmed() }

// Len returns the number of stored keys across all shards.
func (s *System) Len() int { return s.c.Len() }

// MarkMeasurement resets all counters on every shard: everything
// before this call was warm-up.
func (s *System) MarkMeasurement() { s.c.MarkMeasurement() }

// Reset returns the system to its just-built state (FLUSHALL): empty
// indexes, cold caches and fast paths, zeroed statistics.
func (s *System) Reset() error { return s.c.Reset() }

// KeyName returns the canonical YCSB key for a key id, as used by Load.
func KeyName(id uint64) []byte { return ycsb.KeyName(id) }

// Engine exposes shard 0's engine for advanced use (experiment
// harnesses, tests). It bypasses the shard locks: single-goroutine
// use only, and with Shards > 1 it sees only part of the key space —
// prefer the System methods or Cluster.
func (s *System) Engine() *kv.Engine { return s.c.Engine(0) }

// Cluster exposes the underlying shard cluster (routing inspection,
// per-shard stats).
func (s *System) Cluster() *shard.Cluster { return s.c }

// Workload shapes a RunWorkload call.
type Workload struct {
	// Distribution is DistZipf, DistLatest or DistUniform.
	Distribution ycsb.Distribution
	// ValueSize is the value payload in bytes (default 64).
	ValueSize int
	// WarmOps run before counters reset; MeasureOps are measured.
	WarmOps    int
	MeasureOps int
	// SetFraction, when positive, overrides the paper's rule
	// (5% SETs for latest, all-GET otherwise).
	SetFraction float64
	// Seed makes the stream deterministic (default 42).
	Seed uint64
}

// Report summarizes a measured workload window.
type Report struct {
	Ops         uint64
	Cycles      uint64
	CyclesPerOp float64
	// TLBMissesPerOp counts full TLB misses per operation.
	TLBMissesPerOp float64
	// PageWalksPerOp counts completed page walks per operation.
	PageWalksPerOp float64
	// CacheMissesPerOp counts LLC misses (DRAM demand) per operation.
	CacheMissesPerOp float64
	// FastPathHitRate is the fraction of GETs served by the STLT/SLB.
	FastPathHitRate float64
	// TableMissRate is the STLT (or SLB) table miss ratio.
	TableMissRate float64
	// Scans counts SCAN/RANGE ops, Expired TTL reaps, and Evicted
	// maxmemory evictions inside the measured window.
	Scans   uint64
	Expired uint64
	Evicted uint64
	// CategoryShare maps cost-category names ("hash", "traverse",
	// "translate", "data", "stlt", "other") to their fraction of total
	// cycles — the Figure 1 breakdown for this run.
	CategoryShare map[string]float64
	// Raw engine statistics for detailed analysis. With Shards > 1
	// this is the counter-wise aggregate over shards; Cycles is then
	// the summed per-core service time, not elapsed time.
	Stats kv.Stats
	// Shards is the number of simulated machines behind this report.
	Shards int
	// MaxShardCycles is the busiest shard's cycle count — the modeled
	// wall-clock bound of the window (the slowest core finishes last).
	// Equal to Cycles when Shards == 1.
	MaxShardCycles uint64
	// PerShard holds each shard's own statistics.
	PerShard []kv.Stats
}

// ModeledThroughput returns operations per modeled wall-clock cycle
// (Ops / MaxShardCycles); ratios of this across shard counts give the
// modeled scaling curve.
func (r Report) ModeledThroughput() float64 {
	if r.MaxShardCycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.MaxShardCycles)
}

// RunWorkload drives a generated workload through the system: WarmOps
// operations to warm caches/TLBs/tables, a counter reset, then
// MeasureOps measured operations (the paper's 80%-warm-up
// methodology).
func (s *System) RunWorkload(w Workload) Report {
	if w.ValueSize == 0 {
		w.ValueSize = 64
	}
	if w.Distribution == "" {
		w.Distribution = DistZipf
	}
	seed := w.Seed
	if seed == 0 {
		seed = 42
	}
	cfg := ycsb.Config{
		Keys:      s.c.Len(),
		ValueSize: w.ValueSize,
		Dist:      w.Distribution,
		Seed:      seed,
	}
	if w.SetFraction > 0 {
		cfg.SetFraction = w.SetFraction
	} else {
		cfg = cfg.WithPaperSetFraction()
	}
	g := ycsb.NewGenerator(cfg)
	for i := 0; i < w.WarmOps; i++ {
		s.c.RunOp(g.Next(), w.ValueSize)
	}
	s.c.MarkMeasurement()
	for i := 0; i < w.MeasureOps; i++ {
		s.c.RunOp(g.Next(), w.ValueSize)
	}
	return s.Report()
}

// Report snapshots statistics since the last measurement mark,
// merged across shards.
func (s *System) Report() Report {
	cs := s.c.Stats()
	st := cs.Agg
	r := Report{
		Ops:            st.Ops,
		Cycles:         uint64(st.Machine.Cycles),
		Scans:          st.Scans,
		Expired:        st.Expired,
		Evicted:        st.Evicted,
		Stats:          st,
		Shards:         s.c.NumShards(),
		MaxShardCycles: cs.MaxShardCycles,
		PerShard:       cs.PerShard,
	}
	if st.Ops > 0 {
		ops := float64(st.Ops)
		r.CyclesPerOp = float64(st.Machine.Cycles) / ops
		r.TLBMissesPerOp = float64(st.Machine.TLBMisses) / ops
		r.PageWalksPerOp = float64(st.Machine.PageWalks) / ops
		r.CacheMissesPerOp = float64(st.Machine.DRAMDemand) / ops
	}
	if st.Gets > 0 {
		r.FastPathHitRate = float64(st.FastHits) / float64(st.Gets)
	}
	switch {
	case st.STLT.Lookups > 0:
		r.TableMissRate = st.STLT.MissRate()
	case st.SLB.Lookups > 0:
		r.TableMissRate = st.SLB.MissRate()
	}
	if st.Machine.Cycles > 0 {
		r.CategoryShare = map[string]float64{}
		total := float64(st.Machine.Cycles)
		for c := 0; c < arch.NumCostCategories; c++ {
			r.CategoryShare[arch.CostCategory(c).String()] =
				float64(st.Machine.ByCat[c]) / total
		}
	}
	return r
}

// HardwareCost returns the on-chip storage budget of the STLT design
// (Table I of the paper) as (rows, totalBits).
func HardwareCost() ([]core.HWComponentCost, int) {
	return core.HWCost(), core.HWCostTotalBits()
}

// PaperEquivalentMB converts an STLT row count at a given key scale to
// the table-size label the paper would use at its 10-million-key
// scale.
func PaperEquivalentMB(rows, keys int) float64 {
	return kv.PaperEquivalentMB(rows, keys)
}

// String renders a Report compactly.
func (r Report) String() string {
	return fmt.Sprintf("ops=%d cycles/op=%.0f tlbMiss/op=%.2f walks/op=%.2f llcMiss/op=%.2f fastHit=%.1f%% tableMiss=%.2f%%",
		r.Ops, r.CyclesPerOp, r.TLBMissesPerOp, r.PageWalksPerOp, r.CacheMissesPerOp,
		100*r.FastPathHitRate, 100*r.TableMissRate)
}
