// Package addrkv is a library-level reproduction of "Hardware-Based
// Address-Centric Acceleration of Key-Value Store" (HPCA 2021): the
// STLT/STB/IPB hardware design, its OS support, the SLB software
// baseline, four production-style indexing structures, and the YCSB
// workloads — all running on a timing-accurate simulated memory system
// (TLBs, three cache levels, radix page tables, DRAM) implemented in
// pure Go.
//
// The top-level API builds a simulated key-value System in one of
// several acceleration modes and runs real GET/SET traffic through it,
// reporting cycle-accurate statistics:
//
//	sys, err := addrkv.New(addrkv.Options{
//		Keys:  200_000,
//		Index: addrkv.IndexChainHash,
//		Mode:  addrkv.ModeSTLT,
//	})
//	...
//	sys.Load(200_000, 64)
//	rep := sys.RunWorkload(addrkv.Workload{
//		Distribution: addrkv.DistZipf, ValueSize: 64,
//		WarmOps: 400_000, MeasureOps: 64_000,
//	})
//	fmt.Println(rep.CyclesPerOp)
//
// To reproduce the paper's tables and figures, use cmd/stltbench or
// the benchmarks in bench_test.go.
package addrkv

import (
	"fmt"

	"addrkv/internal/arch"
	"addrkv/internal/core"
	"addrkv/internal/hashfn"
	"addrkv/internal/kv"
	"addrkv/internal/ycsb"
)

// Mode selects the acceleration configuration of a System.
type Mode = kv.Mode

// Acceleration modes. ModeSTLTSW and ModeSTLTVA are the ablations of
// the paper's Figure 19.
const (
	ModeBaseline = kv.ModeBaseline
	ModeSTLT     = kv.ModeSTLT
	ModeSLB      = kv.ModeSLB
	ModeSTLTSW   = kv.ModeSTLTSW
	ModeSTLTVA   = kv.ModeSTLTVA
)

// IndexKind selects the indexing structure of a System.
type IndexKind = kv.IndexKind

// Index kinds (Table II of the paper).
const (
	IndexChainHash = kv.KindChainHash // Redis-dict-style chained hash
	IndexDenseHash = kv.KindDenseHash // dense_hash_map-style open addressing
	IndexRBTree    = kv.KindRBTree    // std::map-style red-black tree
	IndexBTree     = kv.KindBTree     // cpp-btree-style B-tree
)

// Distribution selects a workload request distribution.
type Distribution = ycsb.Distribution

// Distributions for RunWorkload.
const (
	DistZipf    = ycsb.Zipf
	DistLatest  = ycsb.Latest
	DistUniform = ycsb.Uniform
)

// Options configures a System. Zero values pick the paper's defaults.
type Options struct {
	// Keys is the expected number of distinct keys (sizes the index
	// and the default STLT). Required.
	Keys int
	// Index picks the indexing structure (default IndexChainHash).
	Index IndexKind
	// Mode picks the acceleration (default ModeBaseline).
	Mode Mode
	// RedisLayer adds the modeled Redis command-processing costs.
	RedisLayer bool
	// STLTRows / STLTWays size the STLT (defaults: the scaled
	// equivalent of the paper's 512 MB table, 4-way).
	STLTRows int
	STLTWays int
	// SLBEntries sizes the SLB cache table (default: the paper's
	// Figure 11 setup).
	SLBEntries int
	// FastHashName picks the STLT/SLB fast-path hash from Table IV:
	// "sipHash", "murmurHash", "xxh64", "djb2", "xxh3" (default).
	FastHashName string
	// SlowHashName overrides the index's own hash function (defaults:
	// sipHash with RedisLayer, murmurHash otherwise).
	SlowHashName string
	// EnableMonitor turns on the runtime performance monitor
	// (Section III-F "Performance guarantee").
	EnableMonitor bool
	// AutoTune turns on the miss-ratio-driven STLT resizer
	// (Section III-F performance tuning).
	AutoTune bool
	// DataPrefetcher: "", "stride", or "vldp" (Section IV-F).
	DataPrefetcher string
	// TLBPrefetch enables distance TLB prefetching (Section IV-F).
	TLBPrefetch bool
	// MachineParams overrides the simulated architecture (defaults to
	// Table III via arch.DefaultMachineParams).
	MachineParams *arch.MachineParams
	// Seed makes runs deterministic (default 42).
	Seed uint64
}

// System is a simulated key-value store instance.
type System struct {
	e *kv.Engine
}

// New builds a System.
func New(o Options) (*System, error) {
	cfg := kv.Config{
		Keys:           o.Keys,
		Index:          o.Index,
		Mode:           o.Mode,
		RedisLayer:     o.RedisLayer,
		STLTRows:       o.STLTRows,
		STLTWays:       o.STLTWays,
		SLBEntries:     o.SLBEntries,
		Monitor:        o.EnableMonitor,
		AutoTune:       o.AutoTune,
		DataPrefetcher: o.DataPrefetcher,
		TLBPrefetch:    o.TLBPrefetch,
		Seed:           o.Seed,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if o.MachineParams != nil {
		cfg.Params = *o.MachineParams
	}
	if o.FastHashName != "" {
		f, err := hashfn.ByName(o.FastHashName)
		if err != nil {
			return nil, err
		}
		cfg.FastHash = &f
	}
	if o.SlowHashName != "" {
		f, err := hashfn.ByName(o.SlowHashName)
		if err != nil {
			return nil, err
		}
		cfg.SlowHash = &f
	}
	e, err := kv.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{e: e}, nil
}

// Load bulk-inserts n sequential YCSB keys with valueSize-byte values
// (the fast, untimed population phase).
func (s *System) Load(n, valueSize int) { s.e.Load(n, valueSize) }

// Get retrieves a key with full timing, returning its value.
func (s *System) Get(key []byte) ([]byte, bool) { return s.e.Get(key) }

// Set inserts or updates a key with full timing.
func (s *System) Set(key, value []byte) { s.e.Set(key, value) }

// Delete removes a key with full timing.
func (s *System) Delete(key []byte) bool { return s.e.Delete(key) }

// KeyName returns the canonical YCSB key for a key id, as used by Load.
func KeyName(id uint64) []byte { return ycsb.KeyName(id) }

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, tests).
func (s *System) Engine() *kv.Engine { return s.e }

// Workload shapes a RunWorkload call.
type Workload struct {
	// Distribution is DistZipf, DistLatest or DistUniform.
	Distribution ycsb.Distribution
	// ValueSize is the value payload in bytes (default 64).
	ValueSize int
	// WarmOps run before counters reset; MeasureOps are measured.
	WarmOps    int
	MeasureOps int
	// SetFraction, when positive, overrides the paper's rule
	// (5% SETs for latest, all-GET otherwise).
	SetFraction float64
	// Seed makes the stream deterministic (default 42).
	Seed uint64
}

// Report summarizes a measured workload window.
type Report struct {
	Ops         uint64
	Cycles      uint64
	CyclesPerOp float64
	// TLBMissesPerOp counts full TLB misses per operation.
	TLBMissesPerOp float64
	// PageWalksPerOp counts completed page walks per operation.
	PageWalksPerOp float64
	// CacheMissesPerOp counts LLC misses (DRAM demand) per operation.
	CacheMissesPerOp float64
	// FastPathHitRate is the fraction of GETs served by the STLT/SLB.
	FastPathHitRate float64
	// TableMissRate is the STLT (or SLB) table miss ratio.
	TableMissRate float64
	// CategoryShare maps cost-category names ("hash", "traverse",
	// "translate", "data", "stlt", "other") to their fraction of total
	// cycles — the Figure 1 breakdown for this run.
	CategoryShare map[string]float64
	// Raw engine statistics for detailed analysis.
	Stats kv.Stats
}

// RunWorkload drives a generated workload through the system: WarmOps
// operations to warm caches/TLBs/tables, a counter reset, then
// MeasureOps measured operations (the paper's 80%-warm-up
// methodology).
func (s *System) RunWorkload(w Workload) Report {
	if w.ValueSize == 0 {
		w.ValueSize = 64
	}
	if w.Distribution == "" {
		w.Distribution = DistZipf
	}
	seed := w.Seed
	if seed == 0 {
		seed = 42
	}
	cfg := ycsb.Config{
		Keys:      s.e.Idx.Len(),
		ValueSize: w.ValueSize,
		Dist:      w.Distribution,
		Seed:      seed,
	}
	if w.SetFraction > 0 {
		cfg.SetFraction = w.SetFraction
	} else {
		cfg = cfg.WithPaperSetFraction()
	}
	g := ycsb.NewGenerator(cfg)
	for i := 0; i < w.WarmOps; i++ {
		s.e.RunOp(g.Next(), w.ValueSize)
	}
	s.e.MarkMeasurement()
	for i := 0; i < w.MeasureOps; i++ {
		s.e.RunOp(g.Next(), w.ValueSize)
	}
	return s.Report()
}

// Report snapshots statistics since the last measurement mark.
func (s *System) Report() Report {
	st := s.e.Stats()
	r := Report{
		Ops:    st.Ops,
		Cycles: uint64(st.Machine.Cycles),
		Stats:  st,
	}
	if st.Ops > 0 {
		ops := float64(st.Ops)
		r.CyclesPerOp = float64(st.Machine.Cycles) / ops
		r.TLBMissesPerOp = float64(st.Machine.TLBMisses) / ops
		r.PageWalksPerOp = float64(st.Machine.PageWalks) / ops
		r.CacheMissesPerOp = float64(st.Machine.DRAMDemand) / ops
	}
	if st.Gets > 0 {
		r.FastPathHitRate = float64(st.FastHits) / float64(st.Gets)
	}
	switch {
	case st.STLT.Lookups > 0:
		r.TableMissRate = st.STLT.MissRate()
	case st.SLB.Lookups > 0:
		r.TableMissRate = st.SLB.MissRate()
	}
	if st.Machine.Cycles > 0 {
		r.CategoryShare = map[string]float64{}
		total := float64(st.Machine.Cycles)
		for c := 0; c < arch.NumCostCategories; c++ {
			r.CategoryShare[arch.CostCategory(c).String()] =
				float64(st.Machine.ByCat[c]) / total
		}
	}
	return r
}

// HardwareCost returns the on-chip storage budget of the STLT design
// (Table I of the paper) as (rows, totalBits).
func HardwareCost() ([]core.HWComponentCost, int) {
	return core.HWCost(), core.HWCostTotalBits()
}

// PaperEquivalentMB converts an STLT row count at a given key scale to
// the table-size label the paper would use at its 10-million-key
// scale.
func PaperEquivalentMB(rows, keys int) float64 {
	return kv.PaperEquivalentMB(rows, keys)
}

// String renders a Report compactly.
func (r Report) String() string {
	return fmt.Sprintf("ops=%d cycles/op=%.0f tlbMiss/op=%.2f walks/op=%.2f llcMiss/op=%.2f fastHit=%.1f%% tableMiss=%.2f%%",
		r.Ops, r.CyclesPerOp, r.TLBMissesPerOp, r.PageWalksPerOp, r.CacheMissesPerOp,
		100*r.FastPathHitRate, 100*r.TableMissRate)
}
