package addrkv

// One benchmark per table and figure of the paper's evaluation
// (Section IV). Each bench runs the corresponding harness experiment
// at BenchScale (reduced keys, trimmed sweeps — see EXPERIMENTS.md for
// the full-scale calibrated numbers) and logs the regenerated tables;
// run with -v to see them:
//
//	go test -bench=. -benchmem
//	go test -bench=Fig13 -v
//
// Results are memoized within the process, so b.N > 1 re-runs are
// nearly free and the reported ns/op is NOT the simulation cost — the
// interesting outputs are the logged tables and the custom metrics.

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"addrkv/internal/harness"
	"addrkv/internal/hashfn"
	"addrkv/internal/ycsb"
)

func runExperiment(b *testing.B, id string) []*harness.Table {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := harness.BenchScale()
	var tables []*harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables = e.Run(sc)
	}
	b.StopTimer()
	for _, t := range tables {
		b.Log("\n" + t.Render())
	}
	return tables
}

// cell parses a numeric cell from a rendered table row.
func cell(tb *harness.Table, row, col int) float64 {
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTab1HWCost(b *testing.B) {
	tables := runExperiment(b, "tab1")
	last := tables[0].Rows[len(tables[0].Rows)-1]
	bits, _ := strconv.ParseFloat(last[1], 64)
	b.ReportMetric(bits, "hw-bits")
	if bits != 6694 {
		b.Fatalf("hardware cost %v bits, paper says 6694", bits)
	}
}

func BenchmarkFig01Breakdown(b *testing.B) {
	tables := runExperiment(b, "fig1")
	// Last row of the first table is the total addressing share.
	t0 := tables[0]
	share := cell(t0, len(t0.Rows)-1, 1)
	b.ReportMetric(share, "%addressing")
}

func BenchmarkFig11Redis(b *testing.B) {
	tables := runExperiment(b, "fig11")
	t0 := tables[0]
	avg := len(t0.Rows) - 1
	b.ReportMetric(cell(t0, avg, 1), "x-stlt")
	b.ReportMetric(cell(t0, avg, 2), "x-slb")
}

func BenchmarkFig12MissReduction(b *testing.B) {
	tables := runExperiment(b, "fig12")
	// zipf row, STLT TLB reduction.
	b.ReportMetric(cell(tables[0], 0, 1), "%tlb-reduction-stlt")
}

func BenchmarkTab5MissRates(b *testing.B) {
	tables := runExperiment(b, "tab5")
	b.ReportMetric(cell(tables[0], 0, 2), "%stlt-miss-zipf")
	b.ReportMetric(cell(tables[0], 0, 1), "%slb-miss-zipf")
}

func BenchmarkFig13Kernels(b *testing.B) {
	tables := runExperiment(b, "fig13")
	agg := tables[len(tables)-1]
	for _, row := range agg.Rows {
		name := strings.Fields(row[0])[0]
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, "x-stlt-"+name)
	}
}

func BenchmarkFig14SizeSweep(b *testing.B) {
	tables := runExperiment(b, "fig14")
	t0 := tables[0]
	// Report the first app's smallest- and largest-table speedups to
	// expose the rise-then-flatten shape. Rows are grouped by app.
	var first, last int
	app := t0.Rows[0][0]
	for i, r := range t0.Rows {
		if r[0] != app {
			break
		}
		last = i
	}
	b.ReportMetric(cell(t0, first, 2), "x-smallest")
	b.ReportMetric(cell(t0, last, 2), "x-largest")
}

func BenchmarkFig15MissVsSize(b *testing.B) {
	tables := runExperiment(b, "fig15")
	t0 := tables[0]
	b.ReportMetric(cell(t0, 0, 2), "%miss-smallest")
}

func BenchmarkFig16TLBReduction(b *testing.B) {
	tables := runExperiment(b, "fig16")
	t0 := tables[0]
	b.ReportMetric(cell(t0, len(t0.Rows)-1, 2), "%tlb-reduction-largest")
}

func BenchmarkFig17Assoc(b *testing.B) {
	runExperiment(b, "fig17")
}

func BenchmarkFig18HashFns(b *testing.B) {
	tables := runExperiment(b, "fig18")
	t0 := tables[0]
	b.ReportMetric(cell(t0, len(t0.Rows)-1, 1), "%spread")
}

func BenchmarkFig19Breakdown(b *testing.B) {
	runExperiment(b, "fig19l")
}

func BenchmarkFig19Prefetch(b *testing.B) {
	tables := runExperiment(b, "fig19r")
	t0 := tables[0]
	avg := len(t0.Rows) - 1
	b.ReportMetric(cell(t0, avg, 1), "%stride-slowdown")
	b.ReportMetric(cell(t0, avg, 2), "%vldp-slowdown")
}

func BenchmarkExtShards(b *testing.B) {
	tables := runExperiment(b, "ext-shards")
	t0 := tables[0]
	last := len(t0.Rows) - 1
	b.ReportMetric(cell(t0, last, 3), "x-modeled")
	b.ReportMetric(cell(t0, last, 5), "x-real")
}

// BenchmarkClusterParallel drives a sharded System from parallel
// goroutines (RunParallel spawns GOMAXPROCS workers), measuring the
// real wall-clock op rate of the concurrent front-end — the number
// that should rise with -shards.
func BenchmarkClusterParallel(b *testing.B) {
	const keys = 20000
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sys, err := New(Options{Keys: keys, Shards: shards, Index: IndexChainHash, Mode: ModeSTLT})
			if err != nil {
				b.Fatal(err)
			}
			sys.Load(keys, 64)
			var nextSeed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := ycsb.NewGenerator(ycsb.Config{
					Keys: keys, ValueSize: 64, Dist: ycsb.Zipf,
					Seed: nextSeed.Add(1), SetFraction: 0.05,
				})
				var buf [ycsb.KeyLen]byte
				c := sys.Cluster()
				for pb.Next() {
					op := g.Next()
					if op.Type == ycsb.Set {
						c.Set(ycsb.KeyNameInto(buf[:], op.KeyID%keys), ycsb.Value(op.KeyID, 1, 64))
					} else {
						c.GetTouch(ycsb.KeyNameInto(buf[:], op.KeyID%keys))
					}
				}
			})
			b.StopTimer()
			rep := sys.Report()
			if rep.Ops != uint64(b.N) {
				b.Fatalf("lost ops under parallel drive: engine saw %d, bench ran %d", rep.Ops, b.N)
			}
		})
	}
}

// --- microbenchmarks of the core primitives (real wall-clock cost of
// the simulator itself, useful for keeping the harness fast) ---

func BenchmarkMicroSimulatedGet(b *testing.B) {
	for _, mode := range []Mode{ModeBaseline, ModeSTLT} {
		b.Run(string(mode), func(b *testing.B) {
			sys, err := New(Options{Keys: 20000, Index: IndexChainHash, Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			sys.Load(20000, 64)
			g := ycsb.NewGenerator(ycsb.Config{Keys: 20000, ValueSize: 64, Dist: ycsb.Zipf, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Engine().RunOp(g.Next(), 64)
			}
		})
	}
}

func BenchmarkMicroHashFunctions(b *testing.B) {
	key := []byte("user00000000000000001234")
	for _, f := range hashfn.All() {
		b.Run(f.Name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= f.Hash(key, 42)
			}
			_ = sink
		})
	}
}

func BenchmarkMicroYCSBNext(b *testing.B) {
	for _, d := range ycsb.Distributions() {
		b.Run(string(d), func(b *testing.B) {
			g := ycsb.NewGenerator(ycsb.Config{Keys: 1 << 20, ValueSize: 64, Dist: d, Seed: 1})
			for i := 0; i < b.N; i++ {
				g.Next()
			}
		})
	}
}
