// Package trace is the per-operation event tracer: a sampling span
// tracer whose traced operations carry an ordered timeline of
// microarchitectural events (STLT set probe, IPB filter, STB hit or
// miss, TLB refill, page-walk levels, index traversal) with both
// modeled-cycle and wall-clock stamps, plus a flight recorder that
// keeps the last N completed traces per shard and dumps a JSON bundle
// when an anomaly trigger fires.
//
// The paper's argument lives in *where cycles go inside one op* — the
// Figure 1 breakdown, the loadVA pipeline of Figure 8, the hit/miss
// flows of Figure 13. Aggregate counters (PR 2's telemetry) cannot
// attribute one slow p99 GET to a page-walk burst vs. a cold STLT set;
// this package can, because every traced op records the exact event
// sequence the simulated hardware executed for it.
//
// Design constraints, in priority order:
//
//  1. The untraced fast path stays bit-for-bit identical: hooks only
//     READ machine counters (cycle stamps), never charge cycles, and
//     every hook site is a single nil-pointer check when the op is
//     unsampled.
//  2. The record path is lock-free: sampling is an atomic counter,
//     completed spans go into per-shard rings of atomic pointers, and
//     event appends happen on a span owned by exactly one goroutine
//     (the one holding the shard lock).
//  3. This is a leaf package (standard library only), so every layer
//     from internal/vm to cmd/kvserve can emit into it without import
//     cycles.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind identifies one step of the traced pipeline. The order
// mirrors the op timeline: dispatch → [queue.wait → drain] →
// shard.lock → engine.op →
// stlt.loadva → stlt.probe → ipb.check → stb.{hit|miss} →
// {tlb.refill | walk.level* → page.walk} → index.walk → stlt.insert →
// reply.flush.
type EventKind uint8

// Event kinds. Each carries up to three small integer arguments whose
// meaning is kind-specific (documented per constant).
const (
	// EvDispatch marks the RESP front-end picking the command off the
	// wire. No cycle stamp (the simulated machine is not chosen yet).
	EvDispatch EventKind = iota
	// EvQueueWait marks a worker dequeuing the op from its shard's
	// request ring (worker dispatch mode); A = shard, B = position in
	// the drained burst, C = burst size. The wall delta from dispatch
	// is the time the op sat queued behind its shard's worker.
	EvQueueWait
	// EvDrain marks the op executing inside a worker drain burst —
	// one shard-lock critical section shared by every op of the burst;
	// A = burst size, B = position within it.
	EvDrain
	// EvShardLock marks the home shard's lock acquisition; A = shard.
	// The wall delta from dispatch is the lock wait plus routing.
	EvShardLock
	// EvEngineOp marks entry into the engine's op body.
	EvEngineOp
	// EvLoadVA marks the start of a loadVA instruction; A = STLT set.
	EvLoadVA
	// EvSTLTProbe marks the end of the STLT set scan; A = set,
	// B = matching way (-1 for a miss), C = sub-integer tag.
	EvSTLTProbe
	// EvIPBCheck marks the IPB CAM filter on a probe hit; A = 1 when
	// the hit was rejected (page recently invalidated), 0 when passed;
	// B = the checked virtual page number.
	EvIPBCheck
	// EvSTBHit marks a TLB miss served by the STB; A = VPN, B = STB
	// entry index.
	EvSTBHit
	// EvSTBMiss marks a TLB miss that also missed the STB; A = VPN.
	EvSTBMiss
	// EvTLBRefill marks the TLB fill after an STB hit or a completed
	// walk; A = VPN.
	EvTLBRefill
	// EvWalkLevel marks one radix level of a page walk; A = level
	// (4 = root .. 1 = leaf), B = 1 when this level is the leaf.
	EvWalkLevel
	// EvPageWalk marks a completed page walk; A = levels walked,
	// B = walk cycles.
	EvPageWalk
	// EvIndexWalk marks the end of a slow-path index traversal
	// (Get/Put/Delete on the real structure); A = 1 found/0 absent.
	EvIndexWalk
	// EvSTLTInsert marks an insertSTLT; A = set, B = victim way
	// (-1 when the SPTW dropped the insert on a page fault).
	EvSTLTInsert
	// EvSTLTScrub marks a full-table scrub (IPB overflow slow path);
	// A = sets scrubbed.
	EvSTLTScrub
	// EvReplyFlush marks the reply leaving the server's write buffer.
	EvReplyFlush
	// EvWALAppend marks the op's mutation record entering the shard's
	// append-only log buffer (under the shard lock, after the engine
	// op); A = encoded frame bytes. Appends charge no modeled cycles —
	// persistence is front-end work, like routing.
	EvWALAppend
	// EvWALFsync marks the group-commit barrier that made the op's
	// record durable (fsync always policy); A = fsync wall ns,
	// B = records covered by the barrier. Emitted after the engine
	// section ends, so its cycle stamp equals the op's total.
	EvWALFsync
	// EvSTLTRewarm marks a migration batch re-warming the destination
	// node's STLT from freshly installed records (the paper's
	// insertSTLT() step of the record-move protocol, replayed per
	// migrated record); A = records installed, B = STLT rows warmed,
	// C = the hash slot being migrated. Installation is functional, so
	// the cycle stamp is always 0 — the span's wall time is the
	// re-warm cost.
	EvSTLTRewarm

	// EvExpire marks a lazy or sweep expiry removing a dead key:
	// A = the key's deadline (unix ns), B = 1 when found by the active
	// sweep, 0 when found lazily on access. The removal itself is
	// untimed maintenance, so the span's interest is the churn count.
	EvExpire
	// EvEvict marks a maxmemory LFU eviction: A = the victim's LFU
	// counter at eviction, B = bytes reclaimed. Like EvExpire the
	// removal is untimed; the event makes eviction churn (and its STLT
	// hit-rate impact) visible in traces.
	EvEvict
	// EvMigProgress marks one shipped slot-migration batch on the
	// source node: A = records shipped so far this run, B = records in
	// the run's work list, C = the hash slot. Shipping is front-end
	// work, so the cycle stamp is always 0; the span's wall time is
	// the batch round-trip plus extraction.
	EvMigProgress

	// EvNetRead marks a command that entered through the event-loop
	// front-end (-netloop): A = the reader shard whose poller drained
	// the socket. Absent on the goroutine-per-connection path. No
	// cycle stamp — the simulated machine is not chosen yet.
	EvNetRead

	// NumEventKinds bounds the kind space (for per-kind counters).
	NumEventKinds = int(EvNetRead) + 1
)

var kindNames = [NumEventKinds]string{
	"dispatch", "queue.wait", "drain", "shard.lock", "engine.op",
	"stlt.loadva", "stlt.probe", "ipb.check", "stb.hit", "stb.miss",
	"tlb.refill", "walk.level", "page.walk", "index.walk", "stlt.insert",
	"stlt.scrub", "reply.flush", "wal.append", "wal.fsync", "stlt.rewarm",
	"expire", "evict", "mig.progress", "net.read",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a wire name back to its kind.
func KindByName(s string) (EventKind, bool) {
	for i, n := range kindNames {
		if n == s {
			return EventKind(i), true
		}
	}
	return 0, false
}

// Event is one point on a traced op's timeline. Cycles is the modeled
// cycle counter relative to the span's base (the machine's counter
// when the op entered its home shard), so the delta between
// consecutive events is the modeled cost of the step that ended at
// this event. WallNS is real time since the span began.
type Event struct {
	Kind   EventKind `json:"kind"`
	Cycles uint64    `json:"cycles"`
	WallNS int64     `json:"wall_ns"`
	A      int64     `json:"a,omitempty"`
	B      int64     `json:"b,omitempty"`
	C      int64     `json:"c,omitempty"`
}

// Op is one traced operation: identity, the event timeline, and the
// final outcome. An Op is written by exactly one goroutine at a time
// (the dispatcher, then the shard-lock holder, then the dispatcher
// again) and becomes immutable once pushed into a ring.
type Op struct {
	ID    uint64 `json:"id"`
	Shard int    `json:"shard"`
	// Conn is the front-end connection that issued the op (0 for
	// engine-embedded tracing).
	Conn int64  `json:"conn,omitempty"`
	Name string `json:"op"`
	Key  string `json:"key,omitempty"`
	// StartUnixNS anchors the span on the wall clock.
	StartUnixNS int64   `json:"start_unix_ns"`
	Events      []Event `json:"events"`
	// Cycles is the op's total modeled cycle cost (end - base).
	Cycles uint64 `json:"cycles"`
	WallNS int64  `json:"wall_ns"`
	// FastHit and Missed mirror the OpOutcome flags.
	FastHit bool `json:"fast_hit,omitempty"`
	Missed  bool `json:"missed,omitempty"`
	// Anomalies lists the trigger reasons this op fired (empty for a
	// normal op).
	Anomalies []string `json:"anomalies,omitempty"`

	start      time.Time
	baseCycles uint64
	baseSet    bool
}

// SetBase anchors the span's cycle stamps: abs is the machine's
// absolute cycle counter at the moment the op reached its simulated
// core. Events recorded before the base (front-end events) stamp
// cycles 0.
func (o *Op) SetBase(abs uint64) {
	o.baseCycles, o.baseSet = abs, true
}

// Event appends a timeline point. abs is the machine's absolute cycle
// counter at emission (ignored before SetBase).
func (o *Op) Event(kind EventKind, abs uint64, a, b, c int64) {
	var rel uint64
	if o.baseSet && abs >= o.baseCycles {
		rel = abs - o.baseCycles
	}
	o.Events = append(o.Events, Event{
		Kind:   kind,
		Cycles: rel,
		WallNS: time.Since(o.start).Nanoseconds(),
		A:      a, B: b, C: c,
	})
}

// EventRel appends a timeline point with an already-relative cycle
// stamp (front-end events emitted after the engine section ended).
func (o *Op) EventRel(kind EventKind, rel uint64, a, b, c int64) {
	o.Events = append(o.Events, Event{
		Kind:   kind,
		Cycles: rel,
		WallNS: time.Since(o.start).Nanoseconds(),
		A:      a, B: b, C: c,
	})
}

// End stamps the op's total modeled cycle cost from the machine's
// absolute counter.
func (o *Op) End(abs uint64) {
	if o.baseSet && abs >= o.baseCycles {
		o.Cycles = abs - o.baseCycles
	}
}

// Has reports whether the timeline contains an event of kind k.
func (o *Op) Has(k EventKind) bool {
	for _, e := range o.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// AnomalyConfig shapes the flight recorder's triggers.
type AnomalyConfig struct {
	// SlowCycles fires when a traced op costs more modeled cycles
	// (0 disables the trigger).
	SlowCycles uint64
	// WalkInWarm fires when a traced op page-walks while the tracer is
	// in the warm phase (after a measurement mark, when the paper's
	// methodology says translations should be table-resident).
	WalkInWarm bool
}

// Anomaly is one recorded trigger firing.
type Anomaly struct {
	UnixNS int64  `json:"unix_ns"`
	Reason string `json:"reason"`
	// OpID is the traced op that fired the trigger (0 for server-side
	// triggers like connection shedding that have no op).
	OpID uint64 `json:"op_id,omitempty"`
}

// maxAnomalies bounds the recorded anomaly list.
const maxAnomalies = 256

// maxAutoDumps bounds how many bundles the flight recorder writes on
// its own, so a pathological trigger cannot fill a disk.
const maxAutoDumps = 32

// Tracer is the sampling span tracer plus flight recorder: the
// sampling decision, one completed-trace ring per shard, per-kind
// event totals over every traced op, the anomaly log, and the dump
// sink.
type Tracer struct {
	shards int
	rings  []ring

	// sample is the 1-in-N sampling rate (0 = off, 1 = every op).
	sample atomic.Uint64
	ctr    atomic.Uint64
	nextID atomic.Uint64

	// warm marks the measurement phase for the WalkInWarm trigger.
	warm atomic.Bool

	anomaly AnomalyConfig

	traced     atomic.Uint64
	kindCounts [NumEventKinds]atomic.Uint64

	anomMu    sync.Mutex
	anomalies []Anomaly

	// dump is called (on its own goroutine) when an anomaly fires and
	// auto-dumping is configured; see SetDumpFunc.
	dump      func(reason string)
	dumpCount atomic.Uint64
}

// NewTracer builds a tracer for shards shards with ringCap completed
// traces retained per shard. sampleEvery is the initial 1-in-N rate
// (0 = off).
func NewTracer(shards, ringCap int, sampleEvery uint64) *Tracer {
	if shards < 1 {
		shards = 1
	}
	if ringCap < 1 {
		ringCap = 1
	}
	t := &Tracer{shards: shards, rings: make([]ring, shards)}
	for i := range t.rings {
		t.rings[i].init(ringCap)
	}
	t.sample.Store(sampleEvery)
	return t
}

// SetAnomalyConfig installs the flight-recorder triggers.
func (t *Tracer) SetAnomalyConfig(c AnomalyConfig) { t.anomaly = c }

// SetDumpFunc installs the auto-dump sink the anomaly path calls
// (asynchronously, at most maxAutoDumps times).
func (t *Tracer) SetDumpFunc(f func(reason string)) { t.dump = f }

// SetSample changes the 1-in-N sampling rate (0 disables tracing).
func (t *Tracer) SetSample(every uint64) { t.sample.Store(every) }

// Sample returns the current 1-in-N sampling rate.
func (t *Tracer) Sample() uint64 { return t.sample.Load() }

// SetWarm flips the warm-phase flag for the WalkInWarm trigger.
func (t *Tracer) SetWarm(v bool) { t.warm.Store(v) }

// Warm reports the warm-phase flag.
func (t *Tracer) Warm() bool { return t.warm.Load() }

// Traced returns how many ops have completed with a trace attached.
func (t *Tracer) Traced() uint64 { return t.traced.Load() }

// Dumps returns how many auto-dumps the anomaly path has requested.
func (t *Tracer) Dumps() uint64 { return t.dumpCount.Load() }

// Shards returns the ring count.
func (t *Tracer) Shards() int { return t.shards }

// Begin makes the sampling decision for one op and, when sampled,
// returns a fresh span (nil otherwise). The key is copied, so callers
// may reuse their buffer.
func (t *Tracer) Begin(name string, key []byte) *Op {
	every := t.sample.Load()
	if every == 0 {
		return nil
	}
	if t.ctr.Add(1)%every != 0 {
		return nil
	}
	return t.BeginSampled(name, key)
}

// BeginSampled creates a span unconditionally: the caller has already
// made the sampling decision. High-rate callers with a natural
// per-goroutine home (e.g. one RESP connection) keep a LOCAL op
// counter against Sample() and call this only on the sampled op, so
// the unsampled fast path never writes the shared sampling counter's
// cache line.
func (t *Tracer) BeginSampled(name string, key []byte) *Op {
	now := time.Now()
	return &Op{
		ID:          t.nextID.Add(1),
		Shard:       -1,
		Name:        name,
		Key:         truncKey(key),
		StartUnixNS: now.UnixNano(),
		start:       now,
	}
}

// maxTracedKey bounds the key bytes kept on a span.
const maxTracedKey = 48

func truncKey(key []byte) string {
	if len(key) > maxTracedKey {
		return string(key[:maxTracedKey]) + "..."
	}
	return string(key)
}

// Finish completes a span: stamps wall time, files it in shard's
// flight-recorder ring, accumulates per-kind totals, and evaluates the
// anomaly triggers. fastHit/missed mirror the op outcome.
func (t *Tracer) Finish(op *Op, shard int, fastHit, missed bool) {
	if op == nil {
		return
	}
	op.WallNS = time.Since(op.start).Nanoseconds()
	op.Shard = shard
	op.FastHit, op.Missed = fastHit, missed

	walked, scrubbed := false, false
	for _, e := range op.Events {
		t.kindCounts[e.Kind].Add(1)
		switch e.Kind {
		case EvPageWalk:
			walked = true
		case EvSTLTScrub:
			scrubbed = true
		}
	}
	if t.anomaly.SlowCycles > 0 && op.Cycles > t.anomaly.SlowCycles {
		op.Anomalies = append(op.Anomalies, "slow_op")
	}
	if t.anomaly.WalkInWarm && walked && t.warm.Load() {
		op.Anomalies = append(op.Anomalies, "page_walk_warm")
	}
	if scrubbed {
		op.Anomalies = append(op.Anomalies, "stlt_scrub")
	}

	if shard < 0 || shard >= t.shards {
		shard = 0
	}
	t.rings[shard].push(op)
	t.traced.Add(1)

	for _, reason := range op.Anomalies {
		t.fire(reason, op.ID)
	}
}

// NoteAnomaly records a trigger firing that has no traced op behind
// it (e.g. the server shedding a connection at the -maxconns ceiling)
// and requests an auto-dump.
func (t *Tracer) NoteAnomaly(reason string) { t.fire(reason, 0) }

func (t *Tracer) fire(reason string, opID uint64) {
	t.anomMu.Lock()
	if len(t.anomalies) < maxAnomalies {
		t.anomalies = append(t.anomalies, Anomaly{
			UnixNS: time.Now().UnixNano(),
			Reason: reason,
			OpID:   opID,
		})
	}
	t.anomMu.Unlock()
	if t.dump != nil && t.dumpCount.Add(1) <= maxAutoDumps {
		go t.dump(reason)
	}
}

// AnomalyCount returns how many trigger firings are on record.
func (t *Tracer) AnomalyCount() int {
	t.anomMu.Lock()
	defer t.anomMu.Unlock()
	return len(t.anomalies)
}

// EventCounts returns the per-kind event totals over every traced op
// (not just those still retained in the rings).
func (t *Tracer) EventCounts() map[string]uint64 {
	m := make(map[string]uint64, NumEventKinds)
	for i := range t.kindCounts {
		if n := t.kindCounts[i].Load(); n > 0 {
			m[EventKind(i).String()] = n
		}
	}
	return m
}

// ring is the lock-free flight-recorder ring: a fixed array of atomic
// pointers plus an atomic write sequence. Pushes are wait-free;
// snapshot readers see each slot atomically (a torn *set* of slots is
// acceptable — the recorder keeps "about the last N", not a
// transactional log).
type ring struct {
	slots []atomic.Pointer[Op]
	seq   atomic.Uint64
}

func (r *ring) init(n int) { r.slots = make([]atomic.Pointer[Op], n) }

func (r *ring) push(op *Op) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(op)
}

// snapshot returns the retained ops, oldest first.
func (r *ring) snapshot() []*Op {
	n := uint64(len(r.slots))
	seq := r.seq.Load()
	start := uint64(0)
	if seq > n {
		start = seq - n
	}
	out := make([]*Op, 0, n)
	for i := start; i < seq; i++ {
		if op := r.slots[i%n].Load(); op != nil {
			out = append(out, op)
		}
	}
	return out
}
