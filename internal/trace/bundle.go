// Bundle is the flight recorder's dump format: a self-contained JSON
// artifact holding the retained traces of every shard, the per-kind
// event totals over the whole run, and the anomaly log. kvtrace loads
// bundles; kvserve writes them (TRACE DUMP, anomaly auto-dump, and the
// final dump on shutdown).

package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// BundleVersion is the dump schema version ParseBundle accepts.
const BundleVersion = 1

// Bundle is one flight-recorder dump.
type Bundle struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Kind    string `json:"kind"` // always "trace-bundle"
	// Reason is "manual", "final", or the anomaly trigger name.
	Reason   string `json:"reason"`
	UnixTime int64  `json:"unix_time"`
	Shards   int    `json:"shards"`
	// SampleEvery is the 1-in-N sampling rate at dump time.
	SampleEvery uint64 `json:"sample_every"`
	// Traced counts every op traced since start, retained or not.
	Traced uint64 `json:"traced"`
	// EventCounts totals events by kind over every traced op.
	EventCounts map[string]uint64 `json:"event_counts,omitempty"`
	// Ops holds the retained traces, ordered by shard then age.
	Ops []*Op `json:"ops"`
	// Anomalies is the trigger log.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// MarshalJSON renders the kind as its stable wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a wire name (or a legacy integer).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kind, ok := KindByName(s)
		if !ok {
			return fmt.Errorf("trace: unknown event kind %q", s)
		}
		*k = kind
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("trace: bad event kind %s", b)
	}
	if n < 0 || n >= NumEventKinds {
		return fmt.Errorf("trace: event kind %d out of range", n)
	}
	*k = EventKind(n)
	return nil
}

// Snapshot assembles a Bundle from the tracer's current state. reason
// labels why the dump was taken.
func (t *Tracer) Snapshot(name, reason string) *Bundle {
	b := &Bundle{
		Version:     BundleVersion,
		Name:        name,
		Kind:        "trace-bundle",
		Reason:      reason,
		UnixTime:    time.Now().Unix(),
		Shards:      t.shards,
		SampleEvery: t.sample.Load(),
		Traced:      t.traced.Load(),
		EventCounts: t.EventCounts(),
	}
	for i := range t.rings {
		b.Ops = append(b.Ops, t.rings[i].snapshot()...)
	}
	t.anomMu.Lock()
	b.Anomalies = append([]Anomaly(nil), t.anomalies...)
	t.anomMu.Unlock()
	return b
}

// Marshal renders the bundle as indented JSON with a trailing newline.
func (b *Bundle) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// WriteFile writes the bundle to path.
func (b *Bundle) WriteFile(path string) error {
	buf, err := b.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ParseBundle decodes and validates a dump. It rejects unknown
// versions, unknown event kinds (the EventKind unmarshaler), negative
// timelines, and ops whose events exceed sane bounds — the contract
// the kvtrace fuzz target pins.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("trace: unsupported bundle version %d", b.Version)
	}
	if b.Kind != "trace-bundle" {
		return nil, fmt.Errorf("trace: kind %q is not a trace bundle", b.Kind)
	}
	if b.Shards < 0 {
		return nil, fmt.Errorf("trace: negative shard count %d", b.Shards)
	}
	for i, op := range b.Ops {
		if op == nil {
			return nil, fmt.Errorf("trace: op %d is null", i)
		}
		if op.Name == "" {
			return nil, fmt.Errorf("trace: op %d has no name", i)
		}
		if op.WallNS < 0 {
			return nil, fmt.Errorf("trace: op %d has negative wall time", i)
		}
		for j, e := range op.Events {
			if int(e.Kind) >= NumEventKinds {
				return nil, fmt.Errorf("trace: op %d event %d kind out of range", i, j)
			}
			if e.WallNS < 0 {
				return nil, fmt.Errorf("trace: op %d event %d has negative wall time", i, j)
			}
		}
	}
	return &b, nil
}

// ParseBundleFile loads and validates a dump from disk.
func ParseBundleFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseBundle(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Merge folds o's ops, anomalies and totals into b (multi-file
// kvtrace loads). Ops are re-sorted by start time.
func (b *Bundle) Merge(o *Bundle) {
	b.Ops = append(b.Ops, o.Ops...)
	b.Anomalies = append(b.Anomalies, o.Anomalies...)
	b.Traced += o.Traced
	if b.EventCounts == nil {
		b.EventCounts = map[string]uint64{}
	}
	for k, v := range o.EventCounts {
		b.EventCounts[k] += v
	}
	if o.Shards > b.Shards {
		b.Shards = o.Shards
	}
	sort.SliceStable(b.Ops, func(i, j int) bool {
		return b.Ops[i].StartUnixNS < b.Ops[j].StartUnixNS
	})
}

// Dumper serializes flight-recorder dumps into a directory with
// sequenced, reason-stamped filenames. It is safe for concurrent use
// (the anomaly path dumps from its own goroutine).
type Dumper struct {
	mu   sync.Mutex
	dir  string
	name string
	seq  int
}

// NewDumper writes bundles named <name>-<seq>-<reason>.json under dir.
func NewDumper(dir, name string) *Dumper { return &Dumper{dir: dir, name: name} }

// Dump snapshots the tracer and writes one bundle file, returning its
// path.
func (d *Dumper) Dump(t *Tracer, reason string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return "", err
	}
	d.seq++
	path := filepath.Join(d.dir, fmt.Sprintf("%s-%03d-%s.json", d.name, d.seq, sanitize(reason)))
	if err := t.Snapshot(d.name, reason).WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize keeps dump filenames shell-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 32; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}
