// Chrome trace_event export: renders a Bundle as the JSON Object
// Format consumed by Perfetto and chrome://tracing. Each traced op
// becomes one complete ("X") slice on track (pid=shard, tid=conn);
// the deltas between consecutive timeline events become child slices
// named after the pipeline stage they ended, so the Perfetto flame
// view shows exactly where inside one op the time went.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one trace_event entry. Fields follow the Trace Event
// Format spec (ph "X" = complete event, ph "M" = metadata); ts and dur
// are microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceOf converts a bundle. Timestamps are wall-clock
// microseconds relative to the earliest traced op so Perfetto's
// timeline starts at zero.
func ChromeTraceOf(b *Bundle) *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ns"}
	var base int64
	for _, op := range b.Ops {
		if base == 0 || op.StartUnixNS < base {
			base = op.StartUnixNS
		}
	}
	seenShard := map[int64]bool{}
	for _, op := range b.Ops {
		pid, tid := int64(op.Shard), op.Conn
		if !seenShard[pid] {
			seenShard[pid] = true
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": fmt.Sprintf("shard %d", op.Shard)},
			})
		}
		start := float64(op.StartUnixNS-base) / 1e3
		args := map[string]any{
			"id":     op.ID,
			"key":    op.Key,
			"cycles": op.Cycles,
		}
		if op.FastHit {
			args["fast_hit"] = true
		}
		if op.Missed {
			args["missed"] = true
		}
		if len(op.Anomalies) > 0 {
			args["anomalies"] = op.Anomalies
		}
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: op.Name, Ph: "X", Cat: "op",
			TS: start, Dur: maxf(float64(op.WallNS)/1e3, 0.001),
			PID: pid, TID: tid, Args: args,
		})
		prevWall := int64(0)
		prevCycles := uint64(0)
		for _, e := range op.Events {
			durUS := float64(e.WallNS-prevWall) / 1e3
			if durUS < 0 {
				durUS = 0
			}
			var dCyc uint64
			if e.Cycles >= prevCycles {
				dCyc = e.Cycles - prevCycles
			}
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: e.Kind.String(), Ph: "X", Cat: "stage",
				TS: start + float64(prevWall)/1e3, Dur: maxf(durUS, 0.001),
				PID: pid, TID: tid,
				Args: map[string]any{"cycles": dCyc, "a": e.A, "b": e.B, "c": e.C},
			})
			prevWall, prevCycles = e.WallNS, e.Cycles
		}
	}
	return ct
}

// WriteChromeTrace renders the bundle as Chrome trace JSON on w.
func WriteChromeTrace(w io.Writer, b *Bundle) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeTraceOf(b))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
