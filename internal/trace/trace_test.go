package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplingRate(t *testing.T) {
	tr := NewTracer(1, 8, 4)
	n := 0
	for i := 0; i < 100; i++ {
		if op := tr.Begin("get", []byte("k")); op != nil {
			n++
			op.End(0)
			tr.Finish(op, 0, false, false)
		}
	}
	if n != 25 {
		t.Fatalf("sample 1-in-4 traced %d of 100 ops", n)
	}
	tr.SetSample(0)
	if op := tr.Begin("get", []byte("k")); op != nil {
		t.Fatal("sample 0 still traced an op")
	}
}

func TestRingKeepsLastN(t *testing.T) {
	tr := NewTracer(1, 4, 1)
	for i := 0; i < 10; i++ {
		op := tr.Begin("get", []byte("k"))
		tr.Finish(op, 0, false, false)
	}
	ops := tr.rings[0].snapshot()
	if len(ops) != 4 {
		t.Fatalf("ring kept %d, want 4", len(ops))
	}
	if ops[0].ID != 7 || ops[3].ID != 10 {
		t.Fatalf("ring window [%d..%d], want [7..10]", ops[0].ID, ops[3].ID)
	}
}

func TestRingConcurrentPush(t *testing.T) {
	tr := NewTracer(2, 64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				op := tr.Begin("set", []byte("k"))
				op.Event(EvEngineOp, 0, 0, 0, 0)
				tr.Finish(op, i%2, false, false)
			}
		}()
	}
	wg.Wait()
	if tr.Traced() != 4000 {
		t.Fatalf("traced %d, want 4000", tr.Traced())
	}
	b := tr.Snapshot("test", "manual")
	if len(b.Ops) != 128 {
		t.Fatalf("snapshot kept %d ops, want 128", len(b.Ops))
	}
}

// newTestOp builds a span with a representative timeline.
func newTestOp(tr *Tracer) *Op {
	op := tr.Begin("get", []byte("usertable-key-00042"))
	op.SetBase(1000)
	op.Event(EvEngineOp, 1000, 0, 0, 0)
	op.Event(EvLoadVA, 1002, 3, 0, 0)
	op.Event(EvSTLTProbe, 1012, 3, 1, 0xabc)
	op.Event(EvIPBCheck, 1013, 0, 77, 0)
	op.Event(EvSTBHit, 1020, 77, 4, 0)
	op.Event(EvTLBRefill, 1021, 77, 0, 0)
	op.Event(EvIndexWalk, 1100, 1, 0, 0)
	op.End(1130)
	return op
}

func TestBundleRoundTrip(t *testing.T) {
	tr := NewTracer(2, 8, 1)
	op := newTestOp(tr)
	tr.Finish(op, 1, true, false)

	b := tr.Snapshot("unit", "manual")
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 1 || got.Ops[0].Name != "get" || got.Ops[0].Cycles != 130 {
		t.Fatalf("round-trip op = %+v", got.Ops[0])
	}
	if got.Ops[0].Events[2].Kind != EvSTLTProbe || got.Ops[0].Events[2].Cycles != 12 {
		t.Fatalf("round-trip event = %+v", got.Ops[0].Events[2])
	}
	if got.EventCounts["stb.hit"] != 1 {
		t.Fatalf("event counts = %v", got.EventCounts)
	}
	if !strings.Contains(string(data), `"kind": "stlt.probe"`) {
		t.Fatalf("event kinds should serialize as names:\n%s", data)
	}
}

func TestParseBundleRejectsBadInput(t *testing.T) {
	cases := []string{
		`{}`,
		`{"version":99,"kind":"trace-bundle"}`,
		`{"version":1,"kind":"nope"}`,
		`{"version":1,"kind":"trace-bundle","ops":[null]}`,
		`{"version":1,"kind":"trace-bundle","ops":[{"id":1}]}`,
		`{"version":1,"kind":"trace-bundle","ops":[{"id":1,"op":"get","events":[{"kind":"bogus"}]}]}`,
		`{"version":1,"kind":"trace-bundle","ops":[{"id":1,"op":"get","wall_ns":-5}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParseBundle([]byte(c)); err == nil {
			t.Errorf("ParseBundle accepted %q", c)
		}
	}
}

func TestAnomalyTriggers(t *testing.T) {
	tr := NewTracer(1, 8, 1)
	tr.SetAnomalyConfig(AnomalyConfig{SlowCycles: 50, WalkInWarm: true})
	dumped := make(chan string, 8)
	tr.SetDumpFunc(func(reason string) { dumped <- reason })

	// Slow op.
	op := tr.Begin("get", []byte("k"))
	op.SetBase(0)
	op.End(100)
	tr.Finish(op, 0, false, false)
	if got := <-dumped; got != "slow_op" {
		t.Fatalf("anomaly = %q, want slow_op", got)
	}

	// Page walk while cold: no trigger.
	op = tr.Begin("get", []byte("k"))
	op.SetBase(0)
	op.Event(EvPageWalk, 10, 4, 0, 0)
	op.End(20)
	tr.Finish(op, 0, false, false)

	// Page walk while warm: trigger.
	tr.SetWarm(true)
	op = tr.Begin("get", []byte("k"))
	op.SetBase(0)
	op.Event(EvPageWalk, 10, 4, 0, 0)
	op.End(20)
	tr.Finish(op, 0, false, false)
	if got := <-dumped; got != "page_walk_warm" {
		t.Fatalf("anomaly = %q, want page_walk_warm", got)
	}

	// Server-side trigger with no op.
	tr.NoteAnomaly("maxconns_shed")
	if got := <-dumped; got != "maxconns_shed" {
		t.Fatalf("anomaly = %q, want maxconns_shed", got)
	}
	if tr.AnomalyCount() != 3 {
		t.Fatalf("anomaly count = %d, want 3", tr.AnomalyCount())
	}
}

func TestDumperWritesParsableBundles(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(1, 8, 1)
	op := newTestOp(tr)
	tr.Finish(op, 0, true, false)
	d := NewDumper(dir, "kvserve")
	path, err := d.Dump(tr, "manual/../evil reason")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump escaped directory: %s", path)
	}
	b, err := ParseBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Traced != 1 || len(b.Ops) != 1 {
		t.Fatalf("dumped bundle traced=%d ops=%d", b.Traced, len(b.Ops))
	}
}

// TestChromeTraceSchema pins the trace_event JSON contract Perfetto
// requires: a traceEvents array whose entries all carry name/ph/ts and
// pid/tid, with "X" events carrying a non-negative dur.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer(2, 8, 1)
	op := newTestOp(tr)
	tr.Finish(op, 1, true, false)
	op2 := tr.Begin("set", []byte("other"))
	op2.SetBase(5000)
	op2.Event(EvEngineOp, 5000, 0, 0, 0)
	op2.Event(EvPageWalk, 5100, 4, 80, 0)
	op2.End(5150)
	tr.Finish(op2, 0, false, false)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, tr.Snapshot("unit", "manual")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	names := map[string]bool{}
	for i, e := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, e)
			}
		}
		ph := e["ph"].(string)
		if ph != "X" && ph != "M" {
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
		if ph == "X" {
			ts, dur := e["ts"].(float64), e["dur"].(float64)
			if ts < 0 || dur <= 0 {
				t.Fatalf("event %d ts=%v dur=%v", i, ts, dur)
			}
		}
		names[e["name"].(string)] = true
	}
	for _, want := range []string{"get", "set", "stlt.probe", "page.walk"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q slice (have %v)", want, names)
		}
	}
}

func TestBundleMerge(t *testing.T) {
	mk := func(start int64) *Bundle {
		tr := NewTracer(1, 4, 1)
		op := tr.Begin("get", []byte("k"))
		op.StartUnixNS = start
		tr.Finish(op, 0, false, false)
		return tr.Snapshot("m", "manual")
	}
	a, b := mk(200), mk(100)
	a.Merge(b)
	if a.Traced != 2 || len(a.Ops) != 2 {
		t.Fatalf("merge traced=%d ops=%d", a.Traced, len(a.Ops))
	}
	if a.Ops[0].StartUnixNS != 100 {
		t.Fatal("merge did not sort ops by start time")
	}
}

func TestOpWallClock(t *testing.T) {
	tr := NewTracer(1, 4, 1)
	op := tr.Begin("get", []byte("k"))
	time.Sleep(time.Millisecond)
	op.Event(EvEngineOp, 0, 0, 0, 0)
	tr.Finish(op, 0, false, false)
	if op.Events[0].WallNS <= 0 || op.WallNS < op.Events[0].WallNS {
		t.Fatalf("wall stamps event=%d op=%d", op.Events[0].WallNS, op.WallNS)
	}
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
