package core

import (
	"testing"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
)

func newOSM(t *testing.T) (*OS, *cpu.Machine) {
	t.Helper()
	m := cpu.New(arch.DefaultMachineParams())
	return NewOS(m), m
}

func allocSTLT(t *testing.T, o *OS, rows, ways int) *STLT {
	t.Helper()
	st, err := o.STLTAlloc(rows, ways)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSTLTAllocValidation(t *testing.T) {
	o, _ := newOSM(t)
	if _, err := o.STLTAlloc(0, 4); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := o.STLTAlloc(12, 4); err == nil {
		t.Error("accepted non-power-of-two set count")
	}
	if _, err := o.STLTAlloc(64, 4); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if _, err := o.STLTAlloc(64, 4); err == nil {
		t.Error("second STLT allowed (at most one per process)")
	}
}

func TestInsertThenLoadVA(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	va := m.AS.Alloc(64)

	const integer = 0xABCD_1234
	if got := st.LoadVA(integer); got != 0 {
		t.Fatalf("empty table hit: %v", got)
	}
	st.InsertSTLT(integer, va)
	if got := st.LoadVA(integer); got != va {
		t.Fatalf("LoadVA = %v, want %v", got, va)
	}
	if st.Stats.Inserts != 1 || st.Stats.Hits != 1 {
		t.Fatalf("stats %+v", st.Stats)
	}
}

func TestLoadVAFillsSTB(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	va := m.AS.Alloc(64)
	st.InsertSTLT(5, va)
	st.LoadVA(5)
	if _, ok := m.STB.Lookup(va.Page()); !ok {
		t.Fatal("loadVA hit did not push the translation into the STB")
	}
}

func TestVAOnlyVariantSkipsSTB(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	st.Variant = VariantVAOnly
	va := m.AS.Alloc(64)
	st.InsertSTLT(5, va)
	if got := st.LoadVA(5); got != va {
		t.Fatalf("VA-only LoadVA = %v", got)
	}
	if _, ok := m.STB.Lookup(va.Page()); ok {
		t.Fatal("VA-only variant filled the STB")
	}
}

func TestInsertSTLTDroppedOnPageFault(t *testing.T) {
	o, _ := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	st.InsertSTLT(7, arch.Addr(0xdead_0000)) // unmapped: SPTW returns 0
	if st.Stats.InsertDrops != 1 || st.Stats.Inserts != 0 {
		t.Fatalf("stats %+v", st.Stats)
	}
	if got := st.LoadVA(7); got != 0 {
		t.Fatal("dropped insert became visible")
	}
}

func TestSubIntegerAliasing(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 1) // direct-mapped, 64 sets
	vaA := m.AS.Alloc(64)

	// Two integers with the same set index and sub-integer: the
	// partial tag cannot distinguish them (potential false hit,
	// resolved by software validation).
	intA := uint64(0x3<<SubIntegerBits | 0x123)
	intB := uint64((64+0x3)<<SubIntegerBits | 0x123) // same set, same subint, different high bits
	st.InsertSTLT(intA, vaA)
	if got := st.LoadVA(intB); got != vaA {
		t.Fatalf("aliased LoadVA = %v, want false hit %v", got, vaA)
	}
	st.ReportFalseHit()
	if st.Stats.FalseHits != 1 {
		t.Fatal("false hit not recorded")
	}
	if st.Stats.MissRate() <= 0 {
		t.Fatal("false hits must count against the effective hit rate")
	}
}

func TestLFUReplacementPrefersColdRow(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 8, 4) // 2 sets of 4 ways
	// Fill set 0 (set index bits are just above the 12 sub-int bits).
	mkInt := func(sub uint64) uint64 { return sub } // set 0, given subint
	vas := make([]arch.Addr, 5)
	for i := range vas {
		vas[i] = m.AS.Alloc(64)
	}
	for i := 0; i < 4; i++ {
		st.InsertSTLT(mkInt(uint64(i+1)), vas[i])
	}
	// Heat rows 2..4 via hits; row with subint 1 stays cold.
	for n := 0; n < 50; n++ {
		for i := 1; i < 4; i++ {
			if st.LoadVA(mkInt(uint64(i+1))) == 0 {
				t.Fatal("unexpected miss while heating")
			}
		}
	}
	// Insert a fifth entry: the cold row (subint 1) must be evicted.
	st.InsertSTLT(mkInt(9), vas[4])
	if st.LoadVA(mkInt(9)) != vas[4] {
		t.Fatal("new entry absent")
	}
	if st.LoadVA(mkInt(1)) != 0 {
		t.Fatal("cold row survived; LFU replacement broken")
	}
	for i := 1; i < 4; i++ {
		if st.LoadVA(mkInt(uint64(i+1))) != vas[i] {
			t.Fatalf("hot row %d evicted", i)
		}
	}
}

func TestInsertUpdatesMatchingRow(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 4)
	va1 := m.AS.Alloc(64)
	va2 := m.AS.Alloc(64)
	st.InsertSTLT(42, va1)
	st.InsertSTLT(42, va2) // same integer: in-place update, no second row
	if got := st.LoadVA(42); got != va2 {
		t.Fatalf("LoadVA = %v, want updated %v", got, va2)
	}
	if st.Stats.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1 (in-place update counts)", st.Stats.Replaced)
	}
}

func TestProbabilisticCounter(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 4)
	va := m.AS.Alloc(64)
	st.InsertSTLT(3, va)

	// Counter starts at 0: first hit increments deterministically
	// (probability 2^-0 = 1).
	st.LoadVA(3)
	r := st.readRow(st.setIndex(3), 0)
	if r.Counter != 1 {
		t.Fatalf("counter after first hit = %d, want 1", r.Counter)
	}
	// Many hits: counter grows but saturates at 15.
	for i := 0; i < 100000; i++ {
		st.LoadVA(3)
	}
	r = st.readRow(st.setIndex(3), 0)
	if r.Counter < 2 || r.Counter > 15 {
		t.Fatalf("counter after many hits = %d", r.Counter)
	}
}

func TestIPBRejectsInvalidatedPage(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	va := m.AS.Alloc(arch.PageSize) // own page
	st.InsertSTLT(11, va)
	if st.LoadVA(11) != va {
		t.Fatal("setup miss")
	}
	// Unmap the page: flush_tlb path puts it into the IPB.
	m.AS.UnmapPage(va)
	if !m.IPB.Contains(va.Page()) {
		t.Fatal("unmap did not reach the IPB")
	}
	if got := st.LoadVA(11); got != 0 {
		t.Fatalf("LoadVA returned %v for an invalidated page", got)
	}
	if st.Stats.IPBRejects != 1 {
		t.Fatalf("IPBRejects = %d", st.Stats.IPBRejects)
	}
}

func TestIPBOverflowScrubsSTLT(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 1024, 4)

	// Insert translations for many single-page allocations.
	vas := make([]arch.Addr, 40)
	for i := range vas {
		vas[i] = m.AS.Alloc(arch.PageSize)
		st.InsertSTLT(uint64(i)<<SubIntegerBits|uint64(i), vas[i])
	}
	// Unmap more pages than the IPB holds (32): forces a clear+scrub.
	for i := 0; i < 34; i++ {
		m.AS.UnmapPage(vas[i])
	}
	if st.Stats.Scrubs == 0 {
		t.Fatal("IPB overflow did not scrub the STLT")
	}
	// After a scrub plus IPB filtering, no stale VA may be returned.
	for i := 0; i < 34; i++ {
		if got := st.LoadVA(uint64(i)<<SubIntegerBits | uint64(i)); got != 0 {
			t.Fatalf("stale VA %v returned after scrub (entry %d)", got, i)
		}
	}
	// Still-mapped entries must survive.
	alive := 0
	for i := 34; i < 40; i++ {
		if st.LoadVA(uint64(i)<<SubIntegerBits|uint64(i)) == vas[i] {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("scrub destroyed valid entries")
	}
}

func TestContextSwitchReplaysIPB(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	va := m.AS.Alloc(arch.PageSize)
	st.InsertSTLT(5, va)
	m.AS.UnmapPage(va)

	o.ContextSwitch()
	if !m.IPB.Contains(va.Page()) {
		t.Fatal("context switch lost the pending invalidation")
	}
	if st.LoadVA(5) != 0 {
		t.Fatal("stale translation visible after context switch")
	}
	if o.ContextSwitches != 1 {
		t.Fatal("switch not counted")
	}
}

func TestResizeClearsTable(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	va := m.AS.Alloc(64)
	st.InsertSTLT(1, va)
	if err := o.STLTResize(512); err != nil {
		t.Fatal(err)
	}
	if st.Rows() != 512 {
		t.Fatalf("rows = %d", st.Rows())
	}
	if st.LoadVA(1) != 0 {
		t.Fatal("content survived resize (must clear: OS cannot rehash)")
	}
	if st.Occupancy() != 0 {
		t.Fatal("occupancy nonzero after resize")
	}
}

func TestSTLTFree(t *testing.T) {
	o, _ := newOSM(t)
	allocSTLT(t, o, 64, 4)
	if err := o.STLTFree(); err != nil {
		t.Fatal(err)
	}
	if err := o.STLTFree(); err == nil {
		t.Fatal("double free allowed")
	}
	// A new table can be allocated afterwards.
	if _, err := o.STLTAlloc(64, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledSTLTIsInert(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 4)
	va := m.AS.Alloc(64)
	st.Enabled = false
	st.InsertSTLT(1, va)
	if st.LoadVA(1) != 0 {
		t.Fatal("disabled table served a hit")
	}
	st.Enabled = true
	if st.LoadVA(1) != 0 {
		t.Fatal("disabled insert persisted")
	}
}

func TestRecordMoveProtocol(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	oldVA := m.AS.Alloc(64)
	st.InsertSTLT(9, oldVA)

	// The KV store moves the record and re-issues insertSTLT
	// (Section III-F "Moving records").
	newVA := m.AS.Alloc(64)
	st.InsertSTLT(9, newVA)
	if got := st.LoadVA(9); got != newVA {
		t.Fatalf("LoadVA after move = %v, want %v", got, newVA)
	}
}

func TestSpliceTableID(t *testing.T) {
	integer := uint64(0xFFFF_FFFF)
	for id := 0; id < 4; id++ {
		got := SpliceTableID(integer, id, 2)
		if got&3 != uint64(id) {
			t.Fatalf("ID bits = %d, want %d", got&3, id)
		}
		if got>>2 != integer>>2 {
			t.Fatal("high bits disturbed")
		}
	}
	// Distinct IDs must yield distinct integers (no aliasing).
	a := SpliceTableID(integer, 0, 2)
	b := SpliceTableID(integer, 1, 2)
	if a == b {
		t.Fatal("IDs alias")
	}
	for _, bad := range []struct{ id, bits int }{{4, 2}, {-1, 2}, {0, 0}, {0, 13}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SpliceTableID(%d,%d) did not panic", bad.id, bad.bits)
				}
			}()
			SpliceTableID(integer, bad.id, bad.bits)
		}()
	}
}

func TestMultiTableSharingNoAliasing(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	vaH := m.AS.Alloc(64) // "hash table" record
	vaT := m.AS.Alloc(64) // "tree" record

	raw := uint64(0x5555_5555)
	intH := SpliceTableID(raw, 0, TableIDBits)
	intT := SpliceTableID(raw, 1, TableIDBits)
	st.InsertSTLT(intH, vaH)
	st.InsertSTLT(intT, vaT)
	if st.LoadVA(intH) != vaH || st.LoadVA(intT) != vaT {
		t.Fatal("shared STLT aliased two structures' keys")
	}
}

func TestHWCostMatchesTable1(t *testing.T) {
	if got := HWCostTotalBits(); got != 6694 {
		t.Fatalf("total = %d bits, paper says 6694", got)
	}
	wants := map[string]int{
		"CR_S":                64,
		"Invalid page buffer": 1158,
		"STB":                 4096,
		"Insertion buffer":    1376,
	}
	for _, c := range HWCost() {
		if w, ok := wants[c.Component]; !ok || c.Bits != w {
			t.Errorf("%s = %d bits, want %d", c.Component, c.Bits, w)
		}
	}
}

func TestOccupancy(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 4)
	if st.Occupancy() != 0 {
		t.Fatal("fresh table not empty")
	}
	st.InsertSTLT(1, m.AS.Alloc(16))
	if occ := st.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy = %v", occ)
	}
}
