package core

import (
	"testing"

	"addrkv/internal/arch"
)

func TestTunerGrowsUnderConflictMisses(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 4096, 4)
	tu := NewTuner(o)
	tu.EvalOps = 2048
	tu.MinRows = 1024

	// Far more hot keys than rows: conflict misses dominate.
	vas := make([]arch.Addr, 40000)
	for i := range vas {
		vas[i] = m.AS.Alloc(64)
	}
	before := st.Rows()
	for round := 0; round < 4; round++ {
		for i, va := range vas {
			integer := uint64(i) * 0x9E3779B97F4A7C15
			if st.LoadVA(integer) == 0 {
				st.InsertSTLT(integer, va)
			}
			tu.Tick()
		}
	}
	if tu.Grows == 0 {
		t.Fatal("tuner never grew a thrashing table")
	}
	if st.Rows() <= before {
		t.Fatalf("rows %d not grown from %d", st.Rows(), before)
	}
}

func TestTunerShrinksOverProvisionedTable(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 1<<16, 4)
	tu := NewTuner(o)
	tu.EvalOps = 2048
	tu.MinRows = 1024

	// A handful of hot keys in a huge table: miss ratio ~0 after the
	// first touches.
	vas := make([]arch.Addr, 64)
	for i := range vas {
		vas[i] = m.AS.Alloc(64)
		st.InsertSTLT(uint64(i)*0x9E3779B97F4A7C15, vas[i])
	}
	before := st.Rows()
	for round := 0; round < 200; round++ {
		for i := range vas {
			st.LoadVA(uint64(i) * 0x9E3779B97F4A7C15)
			tu.Tick()
		}
		// Re-insert after any resize (resize clears the table).
		for i := range vas {
			if st.LoadVA(uint64(i)*0x9E3779B97F4A7C15) == 0 {
				st.InsertSTLT(uint64(i)*0x9E3779B97F4A7C15, vas[i])
			}
		}
	}
	if tu.Shrinks == 0 {
		t.Fatal("tuner never shrank an over-provisioned table")
	}
	if st.Rows() >= before {
		t.Fatalf("rows %d not shrunk from %d", st.Rows(), before)
	}
	if st.Rows() < tu.MinRows {
		t.Fatalf("rows %d below MinRows %d", st.Rows(), tu.MinRows)
	}
}

func TestTunerRespectsBounds(t *testing.T) {
	o, _ := newOSM(t)
	st := allocSTLT(t, o, 4096, 4)
	tu := NewTuner(o)
	if tu.MaxRows != 4096*64 {
		t.Fatalf("MaxRows default = %d", tu.MaxRows)
	}
	if st.Rows() != 4096 {
		t.Fatal("setup")
	}
	// Disabled STLT: tuner must stay inert.
	st.Enabled = false
	tu.lastLookups = 0
	st.Stats.Lookups = 1 << 20
	if tu.Tick() {
		t.Fatal("tuner acted on a disabled STLT")
	}
}
