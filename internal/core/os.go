package core

import (
	"fmt"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
)

// SyscallCost is the modeled round-trip cost of an STLT system call
// (mode switch + kernel work excluding the table clear, which is
// charged separately).
const SyscallCost arch.Cycles = 1200

// OS models the kernel side of the design: the STLT system calls
// (Section III-F), the flush_tlb_* instrumentation that maintains the
// IPB (Section III-D1), and process context switches.
//
// The OS owns at most one STLT per process ("Every process can have at
// most one STLT").
type OS struct {
	m *cpu.Machine

	stlt *STLT

	// invalidatedVAs is the kernel-space array mirroring the IPB: "the
	// kernel function records with a kernel-space array the virtual
	// address associated with the PTE to invalidate". It is part of
	// the process context; on context-switch-in its contents are
	// re-inserted into the IPB.
	invalidatedVAs []uint64

	// Invalidations counts page-translation invalidations observed.
	Invalidations uint64
	// ContextSwitches counts simulated context switch round trips.
	ContextSwitches uint64
}

// NewOS wires an OS model to a machine, hooking the address space's
// invalidation callback to the IPB maintenance path.
func NewOS(m *cpu.Machine) *OS {
	os := &OS{m: m}
	m.AS.OnInvalidate = os.flushTLBPage
	return os
}

// Machine returns the machine this OS manages.
func (o *OS) Machine() *cpu.Machine { return o.m }

// STLT returns the process's table, or nil before STLTAlloc.
func (o *OS) STLT() *STLT { return o.stlt }

// STLTAlloc implements the STLTalloc(n) system call: allocate a
// physically contiguous, page-aligned table of rows×ways geometry in
// kernel memory, update CR_S, and return the table handle.
func (o *OS) STLTAlloc(rows, ways int) (*STLT, error) {
	if o.stlt != nil {
		return nil, fmt.Errorf("core: process already has an STLT (at most one per process)")
	}
	if err := validateGeometry(rows, ways); err != nil {
		return nil, err
	}
	va, pa := o.m.AS.AllocKernel(rows * RowSize)
	t := &STLT{
		m:       o.m,
		os:      o,
		crs:     CRS{BasePA: pa, Rows: rows},
		baseVA:  va,
		ways:    ways,
		sets:    rows / ways,
		setBits: log2(rows / ways),
		Enabled: true,
		rng:     0x9E3779B97F4A7C15,
	}
	o.stlt = t
	o.m.Compute(SyscallCost, arch.CatOther)
	return t, nil
}

// STLTResize implements STLTresize(n): reallocate to the new row
// count, clearing contents (the OS cannot rehash because it does not
// know the application's hash function).
func (o *OS) STLTResize(rows int) error {
	t := o.stlt
	if t == nil {
		return fmt.Errorf("core: STLTresize without an STLT")
	}
	if err := validateGeometry(rows, t.ways); err != nil {
		return err
	}
	oldVA, oldSize := t.baseVA, t.SizeBytes()
	va, pa := o.m.AS.AllocKernel(rows * RowSize)
	t.baseVA = va
	t.crs = CRS{BasePA: pa, Rows: rows}
	t.sets = rows / t.ways
	t.setBits = log2(t.sets)
	o.m.AS.FreeKernel(oldVA, oldSize)
	o.m.Compute(SyscallCost, arch.CatOther)
	return nil
}

// STLTFree implements STLTfree(): release the table.
func (o *OS) STLTFree() error {
	if o.stlt == nil {
		return fmt.Errorf("core: STLTfree without an STLT")
	}
	o.m.AS.FreeKernel(o.stlt.baseVA, o.stlt.SizeBytes())
	o.stlt = nil
	o.m.Compute(SyscallCost, arch.CatOther)
	return nil
}

// flushTLBPage is the modified flush_tlb_* path of Section III-D1. It
// runs before any page-table update that invalidates pageVA's
// translation: invalidate the TLBs and STB, then record the page in
// the IPB (clearing + scrubbing the STLT when the IPB is full).
func (o *OS) flushTLBPage(pageVA arch.Addr) {
	o.Invalidations++
	vpn := pageVA.Page()
	o.m.TLBs.InvalidatePage(vpn) // invlpg
	o.m.STB.InvalidatePage(vpn)
	if o.stlt == nil {
		return
	}
	// Instruction 3: check IPB capacity.
	if o.m.IPB.Full() {
		// Instruction 2 + STLT scrub; the kernel array is drained
		// because the table is now coherent.
		o.m.IPB.Clear()
		o.stlt.scrub()
		o.invalidatedVAs = o.invalidatedVAs[:0]
	}
	// Instruction 1: insert into IPB; mirror in the kernel array.
	o.m.IPB.Insert(vpn)
	o.invalidatedVAs = append(o.invalidatedVAs, vpn)
}

// ContextSwitch simulates the process being descheduled and later
// rescheduled: on the way out the OS clears the IPB (without updating
// the STLT); on the way in it re-inserts the kernel array's VAs. If
// the retained set no longer fits the IPB, the STLT is scrubbed and
// the backlog dropped, restoring coherence.
func (o *OS) ContextSwitch() {
	o.ContextSwitches++
	// Switch out.
	o.m.IPB.Clear()
	o.m.STB.Clear()
	o.m.TLBs.Flush() // the new process gets the TLB; ours refills on return
	// ... another process runs ...
	// Switch in: replay the retained invalidations.
	if o.stlt != nil && len(o.invalidatedVAs) > o.m.IPB.Len() {
		o.stlt.scrub()
		o.invalidatedVAs = o.invalidatedVAs[:0]
	}
	for _, vpn := range o.invalidatedVAs {
		o.m.IPB.Insert(vpn)
	}
	o.m.Compute(2*SyscallCost, arch.CatOther)
}

// PendingInvalidations returns the size of the kernel-space
// invalidated-VA array (diagnostics).
func (o *OS) PendingInvalidations() int { return len(o.invalidatedVAs) }
