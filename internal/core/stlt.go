// Package core implements the paper's primary contribution: the system
// translation lookaside table (STLT) and its two instructions, loadVA
// and insertSTLT, executed by the system translation unit (STU), plus
// the OS support (system calls, lazy page-table coherence via the IPB,
// context switching) and the runtime performance monitor.
//
// The STLT is a set-associative table in simulated *kernel* memory,
// physically contiguous, whose base physical address and size live in
// the CR_S register of the STU. Each 16-byte row is
//
//	| counter (4 bits) | sub-integer (12 bits) | VA (48 bits) | PTE (64 bits) |
//
// exactly as in Figure 5 of the paper.
package core

import (
	"fmt"
	"math/bits"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
	"addrkv/internal/trace"
	"addrkv/internal/vm"
)

// RowSize is the size of one STLT row in bytes.
const RowSize = 16

// SubIntegerBits is the width of the partial tag stored per row.
const SubIntegerBits = 12

// subIntMask extracts the sub-integer from a hash integer.
const subIntMask = (1 << SubIntegerBits) - 1

// CounterBits is the width of the per-row frequency counter.
const CounterBits = 4

const counterMax = (1 << CounterBits) - 1

// Row is a decoded STLT row.
type Row struct {
	Counter uint8
	SubInt  uint16
	VA      arch.Addr
	PTE     vm.PTE
}

// Valid reports whether the row holds a translation (VA != 0 means
// valid; a zero VA is the null pointer the paper uses to signal an
// empty row).
func (r Row) Valid() bool { return r.VA != 0 }

// CRS is the STU's control register pair: the physical base address of
// the (page-aligned, physically contiguous) STLT and its size.
type CRS struct {
	BasePA arch.Addr
	Rows   int
}

// Stats counts STLT fast-path events.
type Stats struct {
	Lookups     uint64 // loadVA executions
	Hits        uint64 // loadVA returned a non-zero VA
	IPBRejects  uint64 // potential hits suppressed by the IPB
	MultiMatch  uint64 // sets where >1 row matched the sub-integer
	Inserts     uint64 // insertSTLT executions that wrote a row
	InsertDrops uint64 // insertSTLT dropped by the SPTW (page fault)
	Replaced    uint64 // inserts that evicted a valid row
	Scrubs      uint64 // full-table scrubs (IPB overflow)
	FalseHits   uint64 // hits whose VA the software validation rejected
	Invalidates uint64 // rows cleared by the delete-side Invalidate hook
}

// STLT is the system translation lookaside table plus the STU state
// needed to execute loadVA and insertSTLT against a simulated machine.
type STLT struct {
	m  *cpu.Machine
	os *OS

	crs     CRS
	baseVA  arch.Addr // kernel virtual base (for OS-side scrubbing)
	ways    int
	sets    int
	setBits int

	// Enabled gates the fast path; the runtime monitor (monitor.go)
	// flips it. When disabled, LoadVA reports a miss without
	// touching the table and InsertSTLT is a no-op.
	Enabled bool

	// Variant selects the ablation configuration of Figure 19:
	// the full design, the VA-only hardware design (no PTE caching,
	// no STB fill), or the software-only table (conventional loads
	// and stores, no new instructions).
	Variant Variant

	rng uint64 // xorshift state for the probabilistic counter

	Stats Stats
}

// Ways returns the set associativity.
func (t *STLT) Ways() int { return t.ways }

// Sets returns the number of sets.
func (t *STLT) Sets() int { return t.sets }

// Rows returns the total row count.
func (t *STLT) Rows() int { return t.sets * t.ways }

// SizeBytes returns the table's memory footprint.
func (t *STLT) SizeBytes() int { return t.Rows() * RowSize }

// rowPA returns the physical address of row w of set s.
func (t *STLT) rowPA(s, w int) arch.Addr {
	return t.crs.BasePA + arch.Addr((s*t.ways+w)*RowSize)
}

// setIndex extracts the set number from a hash integer. The
// sub-integer occupies the low SubIntegerBits bits and the set index
// the bits directly above it (Figure 6), so the two never overlap and
// resizing only widens/narrows the index field.
func (t *STLT) setIndex(integer uint64) int {
	return int((integer >> SubIntegerBits) & uint64(t.sets-1))
}

// subInt extracts the partial tag from a hash integer.
func subInt(integer uint64) uint16 { return uint16(integer & subIntMask) }

// readRow fetches a row functionally from simulated physical memory.
func (t *STLT) readRow(s, w int) Row {
	pa := t.rowPA(s, w)
	pm := t.m.AS.Phys
	meta := uint16(pm.ReadU64(pa) & 0xffff)
	var vab [8]byte
	pm.ReadAt(pa+2, vab[:6])
	va := arch.Addr(uint64(vab[0]) | uint64(vab[1])<<8 | uint64(vab[2])<<16 |
		uint64(vab[3])<<24 | uint64(vab[4])<<32 | uint64(vab[5])<<40)
	pte := vm.PTE(pm.ReadU64(pa + 8))
	return Row{
		Counter: uint8(meta >> SubIntegerBits),
		SubInt:  meta & subIntMask,
		VA:      va,
		PTE:     pte,
	}
}

// writeRow stores a row functionally into simulated physical memory.
func (t *STLT) writeRow(s, w int, r Row) {
	pa := t.rowPA(s, w)
	pm := t.m.AS.Phys
	meta := uint16(r.Counter)<<SubIntegerBits | r.SubInt&subIntMask
	var b [8]byte
	b[0], b[1] = byte(meta), byte(meta>>8)
	v := uint64(r.VA)
	b[2], b[3], b[4] = byte(v), byte(v>>8), byte(v>>16)
	b[5], b[6], b[7] = byte(v>>24), byte(v>>32), byte(v>>40)
	pm.WriteAt(pa, b[:])
	pm.WriteU64(pa+8, uint64(r.PTE))
}

// chargeSetScan charges the cache traffic and scan logic of reading a
// whole set. Sets of <=4 ways fit one cache line; wider sets span
// multiple lines and cost proportionally more (Section III-E).
func (t *STLT) chargeSetScan(s int, cat arch.CostCategory) {
	c := t.m.Caches.AccessRange(t.rowPA(s, 0), t.ways*RowSize, false, arch.KindSTLT)
	// Comparator scan: ~1 extra cycle per 4 ways (one line's worth of
	// rows compares in parallel; wider sets serialize).
	c += arch.Cycles(t.ways / 4)
	t.chargeCycles(c, cat)
}

func (t *STLT) chargeCycles(c arch.Cycles, cat arch.CostCategory) {
	// The machine exposes Compute for pure cycles; memory cycles from
	// Caches.AccessRange above are charged here so they land in the
	// STLT category rather than the caller's.
	t.m.Compute(c, cat)
}

// nextRand is a xorshift64 PRNG standing in for the STU's hardware
// random source ("the hardware generates the random number ahead of
// time; thus it is almost free").
func (t *STLT) nextRand() uint64 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return x
}

// bumpCounter applies the probabilistic increment of Section III-E: a
// counter at value x increments with probability 2^-x, so a 4-bit
// counter saturates after ~2^17 updates on average.
func (t *STLT) bumpCounter(r *Row) bool {
	if r.Counter >= counterMax {
		return false
	}
	if t.nextRand()&((1<<r.Counter)-1) != 0 {
		return false
	}
	r.Counter++
	return true
}

// LoadVA executes the loadVA instruction (Figure 8a): index the set,
// scan for a sub-integer match, filter through the IPB, bump the hit
// counter, push the VA->PTE pair into the STB, and return the record
// VA (0 on miss). The caller (the key-value store's fast path) must
// validate that the record at the returned VA actually holds the key.
func (t *STLT) LoadVA(integer uint64) arch.Addr {
	if !t.Enabled {
		return 0
	}
	t.Stats.Lookups++
	if t.m.Fast {
		return t.loadVAFunctional(integer)
	}
	s := t.setIndex(integer)
	if t.m.Trace != nil {
		t.m.Trace.Event(trace.EvLoadVA, uint64(t.m.Cycles()), int64(s), int64(t.ways), 0)
	}
	if t.Variant == VariantSoftware {
		// Software table: branchy scan over the set through the
		// ordinary virtual load path (pays its own translations).
		t.m.Compute(swScanCost(t.ways), arch.CatSTLT)
		t.m.Touch(t.setVA(s), t.ways*RowSize, false, arch.KindSTLT, arch.CatSTLT)
	} else {
		t.m.Compute(t.m.Params.LoadVALatency, arch.CatSTLT)
		t.chargeSetScan(s, arch.CatSTLT)
	}

	sub := subInt(integer)
	match := -1
	for w := 0; w < t.ways; w++ {
		r := t.readRow(s, w)
		if r.Valid() && r.SubInt == sub {
			if match >= 0 {
				t.Stats.MultiMatch++
				// "one matching row is randomly selected"
				if t.nextRand()&1 == 0 {
					match = w
				}
			} else {
				match = w
			}
		}
	}
	if t.m.Trace != nil {
		t.m.Trace.Event(trace.EvSTLTProbe, uint64(t.m.Cycles()), int64(s), int64(match), int64(sub))
	}
	if match < 0 {
		return 0
	}
	r := t.readRow(s, match)

	// IPB filter: recently invalidated pages must miss. The software
	// variant has no IPB; it relies on software validation alone.
	if t.Variant != VariantSoftware {
		ipbIdx := t.m.IPB.ContainsIdx(r.VA.Page())
		if t.m.Trace != nil {
			rejected := int64(0)
			if ipbIdx >= 0 {
				rejected = 1
			}
			t.m.Trace.Event(trace.EvIPBCheck, uint64(t.m.Cycles()), rejected, int64(ipbIdx), 0)
		}
		if ipbIdx >= 0 {
			t.Stats.IPBRejects++
			return 0
		}
	}

	// Counter update: a 4-bit store back into the row's line (already
	// in L1 after the scan — charge the write hit).
	if t.bumpCounter(&r) {
		t.writeRow(s, match, r)
	}
	c := t.m.Caches.Access(t.rowPA(s, match), true, arch.KindSTLT)
	t.chargeCycles(c, arch.CatSTLT)

	// Forward the row to the MMU: the VA->PTE pair enters the STB so
	// the dependent record access skips the page walk. Only the full
	// design caches the PTE (Figure 19's STLT vs STLT-VA gap).
	if t.Variant == VariantFull {
		t.m.STB.Insert(r.VA.Page(), r.PTE)
	}

	t.Stats.Hits++
	return r.VA
}

// setVA returns the kernel virtual address of set s (software-variant
// accesses).
func (t *STLT) setVA(s int) arch.Addr {
	return t.baseVA + arch.Addr(s*t.ways*RowSize)
}

// loadVAFunctional is the Fast-mode variant: same table state changes,
// no timing.
func (t *STLT) loadVAFunctional(integer uint64) arch.Addr {
	s := t.setIndex(integer)
	sub := subInt(integer)
	for w := 0; w < t.ways; w++ {
		r := t.readRow(s, w)
		if r.Valid() && r.SubInt == sub {
			if t.bumpCounter(&r) {
				t.writeRow(s, w, r)
			}
			t.Stats.Hits++
			return r.VA
		}
	}
	return 0
}

// ReportFalseHit records that software validation rejected the VA a
// LoadVA hit returned (partial-tag alias or stale record). The paper's
// footnote 2: "Software further validates if the returned VA is the
// correct one."
func (t *STLT) ReportFalseHit() { t.Stats.FalseHits++ }

// Invalidate clears every row of integer's set whose sub-integer
// matches — the delete-side coherence hook (Section III-F: the
// deallocation path updates the STLT so freed records cannot be
// returned). Validation alone cannot be trusted here: the allocator
// reuses the freed record's first word for a tagged free-list link,
// whose low byte can alias a legal key length, so a stale row may
// validate against its own freed record. Clearing a colliding
// neighbor's row is harmless — the next access re-inserts it.
func (t *STLT) Invalidate(integer uint64) {
	if !t.Enabled {
		return
	}
	s := t.setIndex(integer)
	sub := subInt(integer)
	if !t.m.Fast {
		if t.Variant == VariantSoftware {
			t.m.Compute(swScanCost(t.ways), arch.CatSTLT)
			t.m.Touch(t.setVA(s), t.ways*RowSize, false, arch.KindSTLT, arch.CatSTLT)
		} else {
			t.chargeSetScan(s, arch.CatSTLT)
		}
	}
	for w := 0; w < t.ways; w++ {
		r := t.readRow(s, w)
		if r.Valid() && r.SubInt == sub {
			t.writeRow(s, w, Row{})
			t.Stats.Invalidates++
		}
	}
}

// InsertSTLT executes the insertSTLT instruction (Figure 9): the SPTW
// resolves the PTE for va (dropping the insert on a page fault), then
// the insertion buffer writes a 16-byte row, replacing the
// least-frequently-used row of the set.
func (t *STLT) InsertSTLT(integer uint64, va arch.Addr) {
	if !t.Enabled {
		return
	}
	if t.m.Fast {
		t.insertFunctional(integer, va)
		return
	}

	var pte vm.PTE
	switch t.Variant {
	case VariantFull:
		t.m.Compute(t.m.Params.InsertSTLTLatency, arch.CatSTLT)
		// SPTW: reuse the page table walker, but a fault returns
		// PTE=0 instead of raising an exception.
		pte = t.sptw(va)
		if !pte.Present() {
			t.Stats.InsertDrops++
			return
		}
	case VariantVAOnly:
		// VA-only rows skip the SPTW; record the PTE functionally so
		// scrubbing stays coherent, without charging a walk.
		t.m.Compute(t.m.Params.InsertSTLTLatency, arch.CatSTLT)
		pte, _ = t.m.AS.PT.Lookup(va)
		if !pte.Present() {
			t.Stats.InsertDrops++
			return
		}
	case VariantSoftware:
		t.m.Compute(swScanCost(t.ways), arch.CatSTLT)
		pte, _ = t.m.AS.PT.Lookup(va)
		if !pte.Present() {
			t.Stats.InsertDrops++
			return
		}
	}

	s := t.setIndex(integer)
	if t.Variant == VariantSoftware {
		t.m.Touch(t.setVA(s), t.ways*RowSize, false, arch.KindSTLT, arch.CatSTLT)
	} else {
		t.chargeSetScan(s, arch.CatSTLT)
	}
	w := t.victimWay(s, subInt(integer))
	if t.readRow(s, w).Valid() {
		t.Stats.Replaced++
	}
	t.writeRow(s, w, Row{Counter: 0, SubInt: subInt(integer), VA: va, PTE: pte})
	if t.Variant == VariantSoftware {
		t.m.Touch(t.setVA(s)+arch.Addr(w*RowSize), RowSize, true, arch.KindSTLT, arch.CatSTLT)
	} else {
		c := t.m.Caches.Access(t.rowPA(s, w), true, arch.KindSTLT)
		t.chargeCycles(c, arch.CatSTLT)
	}
	if t.m.Trace != nil {
		t.m.Trace.Event(trace.EvSTLTInsert, uint64(t.m.Cycles()), int64(s), int64(w), 0)
	}
	t.Stats.Inserts++
}

func (t *STLT) insertFunctional(integer uint64, va arch.Addr) {
	pte, ok := t.m.AS.PT.Lookup(va)
	if !ok {
		t.Stats.InsertDrops++
		return
	}
	s := t.setIndex(integer)
	w := t.victimWay(s, subInt(integer))
	if t.readRow(s, w).Valid() {
		t.Stats.Replaced++
	}
	t.writeRow(s, w, Row{Counter: 0, SubInt: subInt(integer), VA: va, PTE: pte})
	t.Stats.Inserts++
}

// sptw is the simplified page table walker: the normal walker with
// exceptions disabled. PTE reads go through the data caches.
func (t *STLT) sptw(va arch.Addr) vm.PTE {
	pte, steps := t.m.AS.PT.Walk(va, nil)
	var c arch.Cycles
	for _, st := range steps {
		c += t.m.Caches.Access(st.PTEAddr, false, arch.KindPageTable)
	}
	t.chargeCycles(c, arch.CatSTLT)
	return pte
}

// victimWay picks the row insertSTLT writes: a sub-integer match is
// updated in place; otherwise the first invalid row; otherwise the
// least-frequently-accessed row by counter (Section III-E).
func (t *STLT) victimWay(s int, sub uint16) int {
	firstInvalid := -1
	victim := 0
	victimCounter := uint8(counterMax + 1)
	for w := 0; w < t.ways; w++ {
		r := t.readRow(s, w)
		if !r.Valid() {
			if firstInvalid < 0 {
				firstInvalid = w
			}
			continue
		}
		if r.SubInt == sub {
			return w
		}
		if r.Counter < victimCounter {
			victim, victimCounter = w, r.Counter
		}
	}
	if firstInvalid >= 0 {
		return firstInvalid
	}
	return victim
}

// scrub walks the whole table and clears rows whose page translation
// is gone or changed — the expensive slow path taken when the IPB
// overflows ("If IPB is full, the kernel function clears it ... and
// updates STLT via searching the page table for invalidated PTEs").
func (t *STLT) scrub() {
	t.Stats.Scrubs++
	if t.m.Trace != nil {
		t.m.Trace.Event(trace.EvSTLTScrub, uint64(t.m.Cycles()), int64(t.sets), int64(t.ways), 0)
	}
	for s := 0; s < t.sets; s++ {
		for w := 0; w < t.ways; w++ {
			r := t.readRow(s, w)
			if !r.Valid() {
				continue
			}
			pte, ok := t.m.AS.PT.Lookup(r.VA)
			if !ok || pte != r.PTE {
				t.writeRow(s, w, Row{})
			}
		}
	}
	// Kernel-side cost model: one cache line visit per set; this is
	// rare, so a coarse charge is fine.
	if !t.m.Fast {
		t.m.Compute(arch.Cycles(t.sets), arch.CatOther)
	}
}

// Clear zeroes every row (used by STLTresize: "STLTresize ... clears
// the content of STLT as the hash function the application uses is
// unknown to OS").
func (t *STLT) Clear() {
	for s := 0; s < t.sets; s++ {
		for w := 0; w < t.ways; w++ {
			t.writeRow(s, w, Row{})
		}
	}
}

// Occupancy returns the fraction of valid rows (diagnostics, Figure 6
// discussion of the balls-and-bins utilization problem).
func (t *STLT) Occupancy() float64 {
	valid := 0
	for s := 0; s < t.sets; s++ {
		for w := 0; w < t.ways; w++ {
			if t.readRow(s, w).Valid() {
				valid++
			}
		}
	}
	return float64(valid) / float64(t.Rows())
}

// MissRate returns misses/lookups over the Stats window.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return 1 - float64(s.Hits-s.FalseHits)/float64(s.Lookups)
}

// validateGeometry checks an STLT shape request.
func validateGeometry(rows, ways int) error {
	if ways <= 0 || rows <= 0 {
		return fmt.Errorf("core: STLT rows (%d) and ways (%d) must be positive", rows, ways)
	}
	if rows%ways != 0 {
		return fmt.Errorf("core: STLT rows (%d) not divisible by ways (%d)", rows, ways)
	}
	sets := rows / ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("core: STLT set count %d is not a power of two", sets)
	}
	return nil
}

func log2(n int) int { return bits.Len(uint(n)) - 1 }
