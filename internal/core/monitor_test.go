package core

import (
	"testing"

	"addrkv/internal/arch"
)

// driveMonitor simulates a stream of operations where the fast path
// either pays off (hit saves cycles) or is pure overhead (flooding:
// every lookup misses).
func driveMonitor(t *testing.T, helpful bool, ops int) (*Monitor, *STLT) {
	t.Helper()
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	mo := NewMonitor(st)
	mo.WindowOps = 64
	mo.WarmupOps = 64
	mo.RunOps = 512

	va := m.AS.Alloc(64)
	st.InsertSTLT(1, va)

	for i := 0; i < ops; i++ {
		mo.BeginOp()
		var hit arch.Addr
		if helpful {
			hit = st.LoadVA(1) // hits when enabled
		} else {
			hit = st.LoadVA(uint64(2 + i)) // flooding: never hits
		}
		if hit != 0 {
			// Fast path: cheap.
			m.Compute(50, arch.CatData)
		} else {
			// Slow path: expensive; when the STLT is enabled we also
			// paid the probe above.
			m.Compute(400, arch.CatTraverse)
		}
		mo.EndOp()
	}
	return mo, st
}

func TestMonitorKeepsHelpfulSTLTOn(t *testing.T) {
	mo, st := driveMonitor(t, true, 4000)
	if mo.Decisions == 0 {
		t.Fatal("monitor never decided")
	}
	if !st.Enabled {
		t.Fatal("monitor disabled a profitable STLT")
	}
	if mo.Disables != 0 {
		t.Fatalf("Disables = %d on a profitable workload", mo.Disables)
	}
}

func TestMonitorDisablesUnderFlooding(t *testing.T) {
	mo, st := driveMonitor(t, false, 2000)
	if mo.Decisions == 0 {
		t.Fatal("monitor never decided")
	}
	if st.Enabled {
		t.Fatal("monitor left the STLT on under hash flooding")
	}
	if mo.Disables == 0 {
		t.Fatal("no disable decisions recorded")
	}
}

func TestMonitorReprobes(t *testing.T) {
	// After a disable decision the monitor must re-enable the table
	// for the next probe window (adaptivity).
	o, m := newOSM(t)
	st := allocSTLT(t, o, 256, 4)
	mo := NewMonitor(st)
	mo.WindowOps = 8
	mo.WarmupOps = 8
	mo.RunOps = 16

	va := m.AS.Alloc(64)
	st.InsertSTLT(1, va)

	sawOffThenOn := false
	wasOff := false
	for i := 0; i < 2000; i++ {
		mo.BeginOp()
		if st.LoadVA(uint64(100+i)) == 0 { // always miss
			m.Compute(100, arch.CatTraverse)
		}
		mo.EndOp()
		if !st.Enabled {
			wasOff = true
		} else if wasOff {
			sawOffThenOn = true
		}
	}
	if !sawOffThenOn {
		t.Fatal("monitor never re-probed after disabling")
	}
}
