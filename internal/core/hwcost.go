package core

import "fmt"

// Hardware cost accounting for Table I of the paper. The numbers are
// computed from the component geometries rather than hard-coded, so
// the table stays honest if a geometry constant changes.

// HWComponentCost is one row of Table I.
type HWComponentCost struct {
	Component string
	Bits      int
	Detail    string
}

// HWCost returns the on-chip storage budget of the design, matching
// Table I: CR_S, the invalid page buffer, the STB, and the insertion
// buffer, totalling 6,694 bits (837 bytes).
func HWCost() []HWComponentCost {
	const (
		vaBits     = 48
		pageShift  = 12
		vpnBits    = vaBits - pageShift // 36-bit virtual page number
		pteBits    = 64
		paBits     = 44
		ipbEntries = 32
		ipbCounter = 6
		stbEntries = 32
		insEntries = 8
	)
	return []HWComponentCost{
		{
			Component: "CR_S",
			Bits:      64,
			Detail:    "STLT address and size",
		},
		{
			Component: "Invalid page buffer",
			Bits:      ipbEntries*vpnBits + ipbCounter,
			Detail:    fmt.Sprintf("%d entries, a %d bits counter", ipbEntries, ipbCounter),
		},
		{
			Component: "STB",
			Bits:      stbEntries * (64 + 64),
			Detail:    fmt.Sprintf("%d entries", stbEntries),
		},
		{
			Component: "Insertion buffer",
			Bits:      insEntries * (64 + 64 + paBits),
			Detail:    fmt.Sprintf("%d entries", insEntries),
		},
	}
}

// HWCostTotalBits sums the Table I rows (the paper reports 6,694 bits
// = 837 bytes).
func HWCostTotalBits() int {
	total := 0
	for _, c := range HWCost() {
		total += c.Bits
	}
	return total
}
