package core

// Tuner implements the performance-tuning loop sketched in Section
// III-F: "our design allows the key-value store user to monitor STLT
// miss ratio and tune the performance factors, such as space overhead,
// improvement in performance, or worst-case query latency."
//
// Every EvalOps STLT lookups it inspects the window's miss ratio:
//   - above GrowThreshold and below MaxRows, it doubles the table
//     (STLTresize clears it, so misses spike briefly and the next
//     window is skipped);
//   - below ShrinkThreshold and above MinRows, it halves the table to
//     give memory back.
//
// Hysteresis between the two thresholds prevents oscillation.
type Tuner struct {
	os *OS

	// EvalOps is the window length in STLT lookups.
	EvalOps uint64
	// GrowThreshold / ShrinkThreshold are miss-ratio bounds.
	GrowThreshold   float64
	ShrinkThreshold float64
	// MinRows / MaxRows bound the table size.
	MinRows int
	MaxRows int

	lastLookups uint64
	lastMisses  uint64
	skipWindow  bool

	// Grows / Shrinks count resize actions taken.
	Grows   uint64
	Shrinks uint64
}

// NewTuner attaches a tuner with conservative defaults: grow past 10%
// misses, shrink under 0.5%, between 4K rows and 64x the initial size.
func NewTuner(os *OS) *Tuner {
	t := os.STLT()
	if t == nil {
		panic("core: NewTuner requires an allocated STLT")
	}
	return &Tuner{
		os:              os,
		EvalOps:         1 << 14,
		GrowThreshold:   0.10,
		ShrinkThreshold: 0.005,
		MinRows:         4096,
		MaxRows:         t.Rows() * 64,
	}
}

// Tick must be called periodically (e.g. once per operation); it
// evaluates the window and resizes when warranted. It returns true if
// it resized.
func (tu *Tuner) Tick() bool {
	st := tu.os.STLT()
	if st == nil || !st.Enabled {
		return false
	}
	lookups := st.Stats.Lookups
	if lookups-tu.lastLookups < tu.EvalOps {
		return false
	}
	misses := (st.Stats.Lookups - st.Stats.Hits) + st.Stats.FalseHits
	windowLookups := lookups - tu.lastLookups
	windowMisses := misses - tu.lastMisses
	tu.lastLookups = lookups
	tu.lastMisses = misses

	if tu.skipWindow {
		// The window right after a resize is cold; ignore it.
		tu.skipWindow = false
		return false
	}
	ratio := float64(windowMisses) / float64(windowLookups)
	switch {
	case ratio > tu.GrowThreshold && st.Rows()*2 <= tu.MaxRows:
		if err := tu.os.STLTResize(st.Rows() * 2); err != nil {
			return false
		}
		tu.Grows++
		tu.skipWindow = true
		return true
	case ratio < tu.ShrinkThreshold && st.Rows()/2 >= tu.MinRows:
		if err := tu.os.STLTResize(st.Rows() / 2); err != nil {
			return false
		}
		tu.Shrinks++
		tu.skipWindow = true
		return true
	}
	return false
}
