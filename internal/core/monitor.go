package core

import "addrkv/internal/arch"

// Monitor implements the runtime performance guarantee of Section
// III-F ("Performance guarantee") and the flooding defence of Section
// III-H: it periodically compares the per-operation cost with the STLT
// enabled versus disabled and switches the fast path off when it stops
// paying (e.g. under a hash-flooding attack every request would miss
// the STLT), re-probing occasionally so it can switch back on.
//
// The monitor alternates measurement windows:
//
//	[on window][off window] -> decide -> [long run in winner mode] -> repeat
type Monitor struct {
	t *STLT

	// WindowOps is the length of each probe window in operations.
	WindowOps uint64
	// WarmupOps lead the ON probe window without being counted, so a
	// table that went cold while disabled can refill before being
	// judged — otherwise one OFF decision would starve the STLT of
	// inserts and latch it off forever.
	WarmupOps uint64
	// RunOps is the length of the committed phase before re-probing.
	RunOps uint64
	// Hysteresis is the minimum relative advantage (e.g. 0.02 = 2%)
	// the ON configuration must show to stay enabled.
	Hysteresis float64

	phase      monitorPhase
	opsInPhase uint64
	cyclesOn   arch.Cycles
	cyclesOff  arch.Cycles
	opStart    arch.Cycles

	// Decisions counts completed probe pairs; Disables counts
	// decisions that turned the STLT off.
	Decisions uint64
	Disables  uint64
}

type monitorPhase uint8

const (
	phaseProbeOnWarm monitorPhase = iota
	phaseProbeOn
	phaseProbeOff
	phaseRun
)

// NewMonitor attaches a monitor to t with sensible defaults.
func NewMonitor(t *STLT) *Monitor {
	return &Monitor{t: t, WindowOps: 512, WarmupOps: 1024, RunOps: 8192, Hysteresis: 0.0}
}

// BeginOp marks the start of one key-value operation.
func (mo *Monitor) BeginOp() { mo.opStart = mo.t.m.Cycles() }

// EndOp marks the end of the operation and advances the monitor state
// machine. It must be paired with BeginOp.
func (mo *Monitor) EndOp() {
	spent := mo.t.m.Cycles() - mo.opStart
	switch mo.phase {
	case phaseProbeOnWarm:
		mo.opsInPhase++
		if mo.opsInPhase >= mo.WarmupOps {
			mo.phase = phaseProbeOn
			mo.opsInPhase = 0
		}
	case phaseProbeOn:
		mo.cyclesOn += spent
		mo.opsInPhase++
		if mo.opsInPhase >= mo.WindowOps {
			mo.phase = phaseProbeOff
			mo.opsInPhase = 0
			mo.t.Enabled = false
		}
	case phaseProbeOff:
		mo.cyclesOff += spent
		mo.opsInPhase++
		if mo.opsInPhase >= mo.WindowOps {
			mo.decide()
		}
	case phaseRun:
		mo.opsInPhase++
		if mo.opsInPhase >= mo.RunOps {
			// Start a new probe cycle (warm the table first).
			mo.phase = phaseProbeOnWarm
			mo.opsInPhase = 0
			mo.cyclesOn, mo.cyclesOff = 0, 0
			mo.t.Enabled = true
		}
	}
}

func (mo *Monitor) decide() {
	mo.Decisions++
	// Enable iff the ON window was cheaper by at least Hysteresis.
	on := float64(mo.cyclesOn)
	off := float64(mo.cyclesOff)
	enable := on <= off*(1-mo.Hysteresis)
	if !enable {
		mo.Disables++
	}
	mo.t.Enabled = enable
	mo.phase = phaseRun
	mo.opsInPhase = 0
}

// Enabled reports the current fast-path state.
func (mo *Monitor) Enabled() bool { return mo.t.Enabled }
