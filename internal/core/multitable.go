package core

// Multi-table support (Section III-F, Figure 10): an application has
// at most one STLT, so several indexing structures share it. To
// prevent key aliasing between structures, the program splices a small
// per-structure ID into the low bits of the sub-integer before using
// the integer with loadVA/insertSTLT, making the integer globally
// unique across structures.

// TableIDBits is the default width reserved for structure IDs when
// sharing an STLT (up to 4 structures). Applications with more
// structures can pass a wider width to SpliceTableID.
const TableIDBits = 2

// SpliceTableID replaces the low idBits bits of integer's sub-integer
// with id, implementing the integer manipulation of Figure 10.
// It panics if id does not fit in idBits or idBits exceeds the
// sub-integer width.
func SpliceTableID(integer uint64, id, idBits int) uint64 {
	if idBits <= 0 || idBits > SubIntegerBits {
		panic("core: table ID width out of range")
	}
	if id < 0 || id >= 1<<idBits {
		panic("core: table ID does not fit in the given width")
	}
	mask := uint64(1<<idBits - 1)
	return integer&^mask | uint64(id)
}
