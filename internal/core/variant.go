package core

import "addrkv/internal/arch"

// Variant selects one of the three STLT configurations compared in
// Figure 19 (left) of the paper.
type Variant uint8

const (
	// VariantFull is the complete design: hardware instructions,
	// VA+PTE rows, STB fill on hit (skips page walks).
	VariantFull Variant = iota
	// VariantVAOnly ("STLT-VA") uses the hardware instructions but
	// retains only virtual addresses: hits do not fill the STB, so
	// the record access still pays TLB misses and page walks.
	VariantVAOnly
	// VariantSoftware ("STLT-SW") is a software-only table: the set
	// scan runs as ordinary loads through the *virtual* address path
	// (paying its own translations and branchy compare loops), and
	// insertions are ordinary stores.
	VariantSoftware
)

func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "STLT"
	case VariantVAOnly:
		return "STLT-VA"
	case VariantSoftware:
		return "STLT-SW"
	}
	return "variant(?)"
}

// swScanCost is the software compute cost of the set-scan loop that
// the hardware STU eliminates ("the hardware instructions avoid
// frequent branch mispredictions and enable concurrent operations on
// STLT set scanning").
func swScanCost(ways int) arch.Cycles { return arch.Cycles(14 + 4*ways) }
