package core

import (
	"testing"
	"testing/quick"

	"addrkv/internal/arch"
	"addrkv/internal/vm"
)

// TestRowEncodeDecodeRoundTrip checks the packed 16-byte row format of
// Figure 5 (4-bit counter, 12-bit sub-integer, 48-bit VA, 64-bit PTE)
// through simulated memory.
func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	o, _ := newOSM(t)
	st := allocSTLT(t, o, 64, 4)

	f := func(counter uint8, sub uint16, va uint64, pte uint64) bool {
		r := Row{
			Counter: counter & 0xF,
			SubInt:  sub & subIntMask,
			VA:      arch.Addr(va & (1<<arch.VABits - 1)),
			PTE:     vm.PTE(pte),
		}
		st.writeRow(3, 1, r)
		got := st.readRow(3, 1)
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRowSizeIsSixteenBytes pins the row footprint the paper's Table I
// and Figure 5 depend on.
func TestRowSizeIsSixteenBytes(t *testing.T) {
	if RowSize != 16 {
		t.Fatalf("RowSize = %d", RowSize)
	}
	if CounterBits+SubIntegerBits != 16 {
		t.Fatalf("counter+subint = %d bits, must fit 2 bytes", CounterBits+SubIntegerBits)
	}
}

// TestRowsDoNotOverlap writes distinct rows into adjacent slots and
// verifies isolation (off-by-one layout bugs).
func TestRowsDoNotOverlap(t *testing.T) {
	o, m := newOSM(t)
	st := allocSTLT(t, o, 64, 4)
	vas := [4]arch.Addr{}
	for w := 0; w < 4; w++ {
		vas[w] = m.AS.Alloc(16)
		st.writeRow(2, w, Row{Counter: uint8(w), SubInt: uint16(w + 1), VA: vas[w], PTE: vm.MakePTE(uint64(w+10), true)})
	}
	for w := 0; w < 4; w++ {
		r := st.readRow(2, w)
		if r.Counter != uint8(w) || r.SubInt != uint16(w+1) || r.VA != vas[w] {
			t.Fatalf("row %d corrupted: %+v", w, r)
		}
	}
	// Neighboring sets untouched.
	if st.readRow(1, 3).Valid() || st.readRow(3, 0).Valid() {
		t.Fatal("writes leaked into neighboring sets")
	}
}

// TestSetIndexUsesBitsAboveSubInteger pins the Figure 6 bit layout:
// the set index comes from bits [12, 12+log2(sets)) and never overlaps
// the sub-integer.
func TestSetIndexUsesBitsAboveSubInteger(t *testing.T) {
	o, _ := newOSM(t)
	st := allocSTLT(t, o, 256, 4) // 64 sets
	// Changing only the low 12 bits must not change the set.
	a := st.setIndex(0xABC000 | 0x111)
	b := st.setIndex(0xABC000 | 0xFFF)
	if a != b {
		t.Fatal("sub-integer bits leak into the set index")
	}
	// Changing bit 12 must change the set.
	if st.setIndex(0) == st.setIndex(1<<SubIntegerBits) {
		t.Fatal("set index ignores bit 12")
	}
	// Resize: index field widens, sub-integer stays the 12 LSBs.
	if err := o.STLTResize(512); err != nil {
		t.Fatal(err)
	}
	if st.Sets() != 128 {
		t.Fatalf("sets = %d after resize", st.Sets())
	}
	if subInt(0x123456) != 0x456 {
		t.Fatal("sub-integer moved")
	}
}
