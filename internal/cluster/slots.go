// Package cluster scales kvserve past one process: N nodes own
// disjoint ranges of 16384 hash slots, exchange a versioned slot map
// over a small node-to-node bus, redirect misrouted commands with
// MOVED/ASK, and migrate slots live — streaming a slot's records to
// the destination while dual-serving, then atomically flipping
// ownership and re-warming the destination's STLT (the paper's
// insertSTLT() record-move step, at node scale).
//
// The layering mirrors the in-process shard cluster one level up:
// internal/shard routes keys to engines inside a node; this package
// routes keys to nodes, using the SAME hash (shard.RouteValue) so a
// slot's keys stay co-located per shard — with a power-of-two shard
// count, slot and shard are just different low-bit reductions of one
// hash value. Routing remains front-end work: no simulated cycles are
// charged for slot lookup or redirects, exactly as NIC steering is
// unmodeled inside a node.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"addrkv/internal/shard"
)

// NumSlots is the size of the hash-slot space. 2^14 keeps the slot
// map small enough to ship in one bus frame while giving migrations
// fine-grained units (a 1M-key store averages ~61 keys per slot).
const NumSlots = 16384

// SlotMask reduces a routing-hash value to a slot.
const SlotMask = NumSlots - 1

// SlotOf returns the hash slot of a key: the shard-routing hash
// (xxh64 with shard.RouteSeed) reduced to 14 bits. Clients, servers
// and the migrator all route through this one function.
func SlotOf(key []byte) uint16 {
	return uint16(shard.RouteValue(key) & SlotMask)
}

// ParseRange parses "lo-hi" (or a single "n") into an inclusive slot
// range, validating bounds and order.
func ParseRange(s string) (lo, hi uint16, err error) {
	ls, hs, found := strings.Cut(s, "-")
	if !found {
		hs = ls
	}
	l, err := strconv.ParseUint(strings.TrimSpace(ls), 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: bad slot %q: %v", ls, err)
	}
	h, err := strconv.ParseUint(strings.TrimSpace(hs), 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: bad slot %q: %v", hs, err)
	}
	if l >= NumSlots || h >= NumSlots {
		return 0, 0, fmt.Errorf("cluster: slot range %q exceeds %d", s, NumSlots-1)
	}
	if l > h {
		return 0, 0, fmt.Errorf("cluster: inverted slot range %q", s)
	}
	return uint16(l), uint16(h), nil
}
