// Node-local cluster state: the current slot map plus the two
// transient migration sets (slots leaving, slots arriving) and the
// counters the INFO/metrics surface reports.
//
// Installed slot maps are immutable: every change clones the current
// map, edits the clone, bumps its version and swaps the pointer — so
// readers (routing, the op gate) take a short RLock to copy the
// pointer and then read without synchronization.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"addrkv/internal/shard"
)

// RouteAction classifies one key command's routing at classify time.
type RouteAction uint8

const (
	// RouteServe executes the command on this node (the op gate still
	// has the final word under the shard lock).
	RouteServe RouteAction = iota
	// RouteServeBypass executes the command with the op gate bypassed:
	// the connection sent ASKING and the key's slot is importing here.
	RouteServeBypass
	// RouteMoved answers -MOVED toward the slot's owner.
	RouteMoved
)

// RedirectKind classifies the redirect for an op the gate denied.
type RedirectKind uint8

const (
	// RedirectMoved: the slot is (now) owned elsewhere.
	RedirectMoved RedirectKind = iota
	// RedirectAsk: the slot is migrating and the key has already been
	// extracted — the destination serves it after ASKING.
	RedirectAsk
	// RedirectTryAgain: transient (the migration state changed between
	// the denial and this lookup); the client simply retries.
	RedirectTryAgain
)

// Metrics are the node's cluster counters, all monotonic except the
// Last* gauges.
type Metrics struct {
	Moved    atomic.Uint64 // -MOVED redirects answered
	Asked    atomic.Uint64 // -ASK redirects answered
	Asking   atomic.Uint64 // ASKING commands accepted
	TryAgain atomic.Uint64 // -TRYAGAIN answers

	MigStarted   atomic.Uint64 // migrations started (source side)
	MigCompleted atomic.Uint64 // migrations committed (source side)
	MigFailed    atomic.Uint64 // migration attempts that errored
	MigKeys      atomic.Uint64 // records shipped out
	MigBytes     atomic.Uint64 // frame bytes shipped out

	ImpBatches  atomic.Uint64 // batches installed (destination side)
	ImpRecords  atomic.Uint64 // records installed
	ImpRewarmed atomic.Uint64 // STLT rows re-warmed on install

	LastMigSlot atomic.Int64 // last committed slot (-1 when none)
	LastMigUS   atomic.Int64 // last committed migration's wall us
}

// Node is one cluster member's control state.
type Node struct {
	self int

	mu        sync.RWMutex
	smap      *SlotMap
	migrating map[uint16]int // slot -> destination node (source side)
	importing map[uint16]int // slot -> source node (destination side)

	// Metrics is exported for the serving layer's INFO/metrics.
	Metrics Metrics

	// prog tracks source-side migration progress (see progress.go).
	prog progress
}

// NewNode builds a node's state around an initial map.
func NewNode(self int, m *SlotMap) *Node {
	n := &Node{
		self:      self,
		smap:      m,
		migrating: make(map[uint16]int),
		importing: make(map[uint16]int),
	}
	n.Metrics.LastMigSlot.Store(-1)
	return n
}

// Self returns this node's index.
func (n *Node) Self() int { return n.self }

// Map returns the current slot map. Installed maps are immutable —
// treat as read-only.
func (n *Node) Map() *SlotMap {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.smap
}

// Version returns the current map epoch.
func (n *Node) Version() uint64 { return n.Map().Version }

// AdoptMap installs m when it is strictly newer, returning whether it
// was adopted.
func (n *Node) AdoptMap(m *SlotMap) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Version <= n.smap.Version {
		return false
	}
	n.smap = m
	return true
}

// RouteKey classifies one key command at dispatch time. asking is the
// connection's one-shot ASKING flag. addr is the redirect target for
// RouteMoved.
func (n *Node) RouteKey(key []byte, asking bool) (slot uint16, action RouteAction, addr string) {
	slot = SlotOf(key)
	n.mu.RLock()
	defer n.mu.RUnlock()
	owner := n.smap.Owner(slot)
	if owner == n.self {
		return slot, RouteServe, ""
	}
	if asking {
		if _, ok := n.importing[slot]; ok {
			return slot, RouteServeBypass, ""
		}
	}
	return slot, RouteMoved, n.smap.Nodes[owner].Addr
}

// Gate is the op-gate decision for one key, evaluated under the
// shard lock (see shard.SetOpGate): owned and stable slots execute,
// migrating slots dual-serve (present keys only), everything else is
// denied and redirected by RedirectFor.
func (n *Node) Gate(key []byte) shard.GateDecision {
	slot := SlotOf(key)
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.smap.Owner(slot) != n.self {
		return shard.GateDeny
	}
	if _, mig := n.migrating[slot]; mig {
		return shard.GateIfPresent
	}
	return shard.GateAllow
}

// RedirectFor resolves the redirect for an op the gate denied,
// against the CURRENT state (which may be newer than the one that
// denied — any answer derived from fresher state is still valid
// routing).
func (n *Node) RedirectFor(key []byte) (slot uint16, kind RedirectKind, addr string) {
	slot = SlotOf(key)
	n.mu.RLock()
	defer n.mu.RUnlock()
	owner := n.smap.Owner(slot)
	if owner != n.self {
		return slot, RedirectMoved, n.smap.Nodes[owner].Addr
	}
	if dest, ok := n.migrating[slot]; ok {
		return slot, RedirectAsk, n.smap.Nodes[dest].Addr
	}
	return slot, RedirectTryAgain, ""
}

// SlotInfo reports one slot's full local view (for CLUSTER INFO and
// multi-key classify).
func (n *Node) SlotInfo(slot uint16) (owner int, ownerAddr string, migrating, importing bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	owner = n.smap.Owner(slot)
	ownerAddr = n.smap.Nodes[owner].Addr
	_, migrating = n.migrating[slot]
	_, importing = n.importing[slot]
	return owner, ownerAddr, migrating, importing
}

// OwnedSlots returns how many slots this node currently owns.
func (n *Node) OwnedSlots() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.smap.OwnedCount(n.self)
}

// MigratingSlots returns the slots currently leaving this node.
func (n *Node) MigratingSlots() []uint16 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]uint16, 0, len(n.migrating))
	for s := range n.migrating {
		out = append(out, s)
	}
	return out
}

// ImportingSlots returns the slots currently arriving at this node.
func (n *Node) ImportingSlots() []uint16 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]uint16, 0, len(n.importing))
	for s := range n.importing {
		out = append(out, s)
	}
	return out
}

// BeginMigrate marks a slot as leaving toward dest. The slot must be
// owned here, stable, and dest must be another known node. resumed
// reports that the slot was ALREADY migrating toward dest — an
// interrupted migration being re-issued, whose earlier batches may
// have shipped; the caller must then never clear the mark on failure.
func (n *Node) BeginMigrate(slot uint16, dest int) (resumed bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dest < 0 || dest >= len(n.smap.Nodes) {
		return false, fmt.Errorf("cluster: unknown destination node %d", dest)
	}
	if dest == n.self {
		return false, fmt.Errorf("cluster: slot %d already on node %d", slot, dest)
	}
	if n.smap.Owner(slot) != n.self {
		return false, fmt.Errorf("cluster: slot %d not owned here (owner %d)", slot, n.smap.Owner(slot))
	}
	if d, ok := n.migrating[slot]; ok {
		if d == dest {
			return true, nil // resume of an interrupted migration
		}
		return false, fmt.Errorf("cluster: slot %d already migrating to %d", slot, d)
	}
	n.migrating[slot] = dest
	return false, nil
}

// AbortMigrate clears a slot's migrating mark (only safe when no
// batch was shipped — the caller restored every record locally).
func (n *Node) AbortMigrate(slot uint16) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.migrating, slot)
}

// FinishMigrate installs the committed map and clears the migrating
// mark in one step, so no op can observe "owned elsewhere" while the
// slot still looks migrating.
func (n *Node) FinishMigrate(slot uint16, m *SlotMap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Version > n.smap.Version {
		n.smap = m
	}
	delete(n.migrating, slot)
}

// BeginImport marks a slot as arriving from src. Refuses when this
// node already owns the slot or is importing it from a different
// source; re-announcing the same import is a resume and succeeds.
func (n *Node) BeginImport(slot uint16, src int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.smap.Owner(slot) == n.self {
		return fmt.Errorf("cluster: slot %d already owned here", slot)
	}
	if s, ok := n.importing[slot]; ok && s != src {
		return fmt.Errorf("cluster: slot %d already importing from %d", slot, s)
	}
	n.importing[slot] = src
	return nil
}

// Importing reports whether a slot is currently arriving here.
func (n *Node) Importing(slot uint16) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.importing[slot]
	return ok
}

// ImportingFrom returns the source node a slot is arriving from, if
// any. Batch installs gate on this: a MigBatch for a slot that is not
// importing here (or importing from someone else) must be refused, so
// a duplicate batch surfacing after the commit cannot re-install
// stale records over newer acknowledged writes.
func (n *Node) ImportingFrom(slot uint16) (src int, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	src, ok = n.importing[slot]
	return src, ok
}

// CommitImport installs the committed map (version-gated) and clears
// the importing mark — the destination's half of the ownership flip.
func (n *Node) CommitImport(slot uint16, m *SlotMap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Version > n.smap.Version {
		n.smap = m
	}
	delete(n.importing, slot)
}
