package cluster

import (
	"bytes"
	"io"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	bodies := map[MsgType][]byte{
		MsgHello:     EncodeSlotNode(0, 2),
		MsgMapGet:    nil,
		MsgMap:       NewSlotMap([]NodeInfo{{Addr: "a:1", Bus: "a:2"}}).Encode(nil),
		MsgMapUpdate: {1, 2, 3},
		MsgMigStart:  EncodeSlotNode(512, 1),
		MsgMigBatch:  EncodeMigBatch(512, 1, true, []byte("frames")),
		MsgMigCommit: {9, 9},
		MsgAck:       EncodeU64(42),
		MsgErr:       []byte("nope"),
	}
	var buf []byte
	var order []MsgType
	for ty, body := range bodies {
		buf = AppendFrame(buf, ty, body)
		order = append(order, ty)
	}
	for _, want := range order {
		m, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", want, err)
		}
		if m.Type != want {
			t.Fatalf("type %v, want %v", m.Type, want)
		}
		if !bytes.Equal(m.Payload, bodies[want]) {
			t.Fatalf("payload %q, want %q", m.Payload, bodies[want])
		}
		buf = buf[n:]
	}
	if m, n, err := DecodeFrame(buf); err != nil || n != 0 {
		t.Fatalf("clean end: %v %d %v", m, n, err)
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	full := AppendFrame(nil, MsgAck, EncodeU64(7))
	for cut := 1; cut < len(full); cut++ {
		if _, n, err := DecodeFrame(full[:cut]); err != ErrTorn || n != 0 {
			t.Fatalf("cut %d: n=%d err=%v, want torn", cut, n, err)
		}
	}
	flip := append([]byte(nil), full...)
	flip[len(flip)-1] ^= 0x40
	if _, n, err := DecodeFrame(flip); err == nil || n != 0 {
		t.Fatalf("bit flip accepted: n=%d err=%v", n, err)
	}
	// Unknown type with a valid CRC must still be rejected.
	bad := AppendFrame(nil, MsgType(200), nil)
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Hostile length prefix.
	huge := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1}
	if _, _, err := DecodeFrame(huge); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestReadWriteMsgStream(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteMsg(&stream, MsgMigBatch, EncodeMigBatch(3, 2, false, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(&stream, MsgAck, EncodeU64(1)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	m, buf, err := ReadMsg(&stream, buf)
	if err != nil || m.Type != MsgMigBatch {
		t.Fatalf("first: %v %v", m.Type, err)
	}
	slot, src, rewarm, frames, err := DecodeMigBatch(m.Payload)
	if err != nil || slot != 3 || src != 2 || rewarm || string(frames) != "x" {
		t.Fatalf("batch body: %d %d %v %q %v", slot, src, rewarm, frames, err)
	}
	m, buf, err = ReadMsg(&stream, buf)
	if err != nil || m.Type != MsgAck || DecodeU64(m.Payload) != 1 {
		t.Fatalf("second: %v %v", m, err)
	}
	if _, _, err = ReadMsg(&stream, buf); err != io.EOF {
		t.Fatalf("eof: %v", err)
	}
	// A stream that dies mid-frame is a tear, not EOF.
	stream.Reset()
	full := AppendFrame(nil, MsgErr, []byte("boom"))
	stream.Write(full[:len(full)-2])
	if _, _, err := ReadMsg(&stream, nil); err != ErrTorn {
		t.Fatalf("tear: %v", err)
	}
}

func TestMigCommitRoundtrip(t *testing.T) {
	m := NewSlotMap([]NodeInfo{{Addr: "h:1", Bus: "h:2"}, {Addr: "h:3", Bus: "h:4"}})
	m.Version = 7
	m.SetOwner(100, 1)
	body := EncodeMigCommit(100, m)
	slot, got, err := DecodeMigCommit(body)
	if err != nil || slot != 100 {
		t.Fatalf("decode: %d %v", slot, err)
	}
	if got.Version != 7 || got.Owner(100) != 1 || got.Owner(99) != 0 {
		t.Fatalf("map mismatch: %+v", got)
	}
}
