// The source-side migration runner: stream one slot's records to the
// destination in batches, dual-serving throughout, then flip
// ownership.
//
// State machine (source / destination):
//
//	stable ──BeginMigrate──▶ migrating(slot→dest)      [source]
//	          MigStart──▶ importing(slot→src)          [destination]
//	migrating: per batch, under each shard lock —
//	    re-read + delete + frame records, ship, await Ack
//	    (present keys keep serving locally; extracted keys ASK)
//	all shipped ──MigCommit(map v+1)──▶ destination owns [destination]
//	             FinishMigrate(map v+1)                 [source]
//	             gossip MapUpdate to remaining peers
//
// Failure discipline: before any batch ships, an error aborts cleanly
// (every record still local, migrating mark cleared). After a batch
// has shipped, the slot STAYS migrating — shipped records live only
// at the destination, which serves them through the ASK window — and
// the operator re-issues the migration, which resumes idempotently
// (extraction skips absent keys; installation upserts). A resume
// whose MigStart the destination refuses because it already owns the
// slot — the commit landed but its ack was lost — completes by
// adopting the destination's newer map instead. Rolling back
// shipped batches is never attempted: pulling records back while the
// destination may be serving ASK traffic for them is exactly the
// lost-update hazard this protocol exists to avoid.
//
// One migration at a time is the supported regime (it is an operator
// command, not an automatic rebalancer): concurrent migrations from
// different sources would race the map epoch (both publish
// version+1). The version gate makes such races safe — one side's
// commit loses adoption — but the loser's slot would need re-issuing,
// so the orchestrator serializes.
package cluster

import (
	"fmt"
	"time"

	"addrkv/internal/shard"
)

// DefaultBatchKeys is the records-per-batch default: big enough to
// amortize a bus round-trip, small enough that the per-shard lock
// hold (extract + ship + ack) stays in the tens of microseconds on a
// loopback bus.
const DefaultBatchKeys = 256

// MigrateOpts tunes one migration.
type MigrateOpts struct {
	// BatchKeys caps records per MigBatch (0 = DefaultBatchKeys).
	BatchKeys int
	// Rewarm asks the destination to re-insert each installed
	// record's STLT row (the paper's insertSTLT step). Off, the
	// destination serves the migrated slot cold and the warm-up cliff
	// is visible in its fast-hit rate.
	Rewarm bool
	// OnProgress, when set, is called after every shipped batch (and
	// once more at completion) with the current progress snapshot —
	// the serving layer's hook for mig.progress trace events. Called
	// from the migration goroutine; must not block.
	OnProgress func(MigrationProgress)
}

// MigrationResult reports one completed (or partial) migration.
type MigrationResult struct {
	Slot     uint16
	Dest     int
	Keys     int
	Bytes    int
	Batches  int
	Rewarm   bool
	Duration time.Duration
}

// Migrate moves one slot from this node to dest, streaming records
// over the destination's bus peer. peers resolves a node index to its
// bus handle (nil for self). c is this node's local shard cluster.
// Blocks until committed or failed; concurrent client traffic keeps
// being served throughout (dual-serve via the op gate).
func (n *Node) Migrate(c *shard.Cluster, peers func(int) *Peer, slot uint16, dest int, o MigrateOpts) (MigrationResult, error) {
	res := MigrationResult{Slot: slot, Dest: dest, Rewarm: o.Rewarm}
	batch := o.BatchKeys
	if batch <= 0 {
		batch = DefaultBatchKeys
	}
	start := time.Now()
	resumed, err := n.BeginMigrate(slot, dest)
	if err != nil {
		return res, err
	}
	n.Metrics.MigStarted.Add(1)
	p := peers(dest)
	if p == nil {
		// A resumed migration's earlier batches may have shipped: the
		// mark must survive so the slot keeps ASK-ing toward dest.
		if !resumed {
			n.AbortMigrate(slot)
		}
		n.Metrics.MigFailed.Add(1)
		return res, fmt.Errorf("cluster: no bus peer for node %d", dest)
	}
	if _, err := p.Call(MsgMigStart, EncodeSlotNode(slot, n.self)); err != nil {
		if resumed {
			// The interrupted attempt may have committed at the
			// destination with the ack lost — it then owns the slot and
			// refuses BeginImport. Probe its map: if it already shows
			// dest owning the slot at a newer epoch, adopt it and the
			// migration is complete.
			if sm := n.adoptCommitted(p, slot, dest); sm != nil {
				return n.finishCommitted(res, sm, peers, start)
			}
			// Still interrupted: keep the migrating mark (shipped
			// records live only at the destination) and report.
			n.Metrics.MigFailed.Add(1)
			return res, err
		}
		n.AbortMigrate(slot)
		n.Metrics.MigFailed.Add(1)
		return res, err
	}

	// From here on the op gate dual-serves the slot: present keys run
	// locally, extracted keys redirect with ASK. CollectKeys may race
	// traffic — keys created after the scan are gated to the
	// destination, deleted ones are skipped at extraction.
	keys := c.CollectKeys(func(k []byte) bool { return SlotOf(k) == slot })
	n.progressStart(slot, dest, resumed, len(keys), (len(keys)+batch-1)/batch)
	notify := func() {
		if o.OnProgress != nil {
			if mp, ok := n.Progress(); ok {
				o.OnProgress(mp)
			}
		}
	}
	shipped := false
	for lo := 0; lo < len(keys); lo += batch {
		hi := lo + batch
		if hi > len(keys) {
			hi = len(keys)
		}
		moved, bytes, err := c.ExtractBatch(keys[lo:hi], func(frames []byte, count int) error {
			_, cerr := p.Call(MsgMigBatch, EncodeMigBatch(slot, n.self, o.Rewarm, frames))
			return cerr
		})
		res.Keys += moved
		res.Bytes += bytes
		if moved > 0 {
			res.Batches++
			shipped = true
			n.progressBatch(moved, bytes)
			notify()
		}
		if err != nil {
			n.Metrics.MigFailed.Add(1)
			n.progressEnd(true)
			if !shipped {
				n.AbortMigrate(slot) // nothing left the node: clean cancel
			}
			return res, err
		}
	}

	next := n.Map().Clone()
	next.Version++
	next.SetOwner(slot, dest)
	// Destination first: it must be able to serve as owner before any
	// other node (or this one) starts answering MOVED toward it.
	if _, err := p.Call(MsgMigCommit, EncodeMigCommit(slot, next)); err != nil {
		// Records are all at the destination; the slot stays migrating
		// here so every key ASKs its way there. Re-issuing the
		// migration retries the (idempotent) commit — or, if this
		// commit landed and only its ack was lost, resumes through the
		// adoptCommitted probe above.
		n.Metrics.MigFailed.Add(1)
		n.progressEnd(true)
		return res, err
	}
	n.FinishMigrate(slot, next)
	n.Metrics.MigKeys.Add(uint64(res.Keys))
	n.Metrics.MigBytes.Add(uint64(res.Bytes))
	n.progressEnd(false)
	notify()
	return n.finishCommitted(res, next, peers, start)
}

// adoptCommitted probes the destination for evidence that an
// interrupted migration's commit already landed there: a map strictly
// newer than ours under which dest owns the slot. If found, install
// it (clearing the migrating mark) and return it; nil means no such
// evidence — the interruption stands.
func (n *Node) adoptCommitted(p *Peer, slot uint16, dest int) *SlotMap {
	m, err := p.Call(MsgMapGet, nil)
	if err != nil {
		return nil
	}
	sm, err := DecodeSlotMap(m.Payload)
	if err != nil {
		return nil
	}
	if sm.Version <= n.Version() || sm.Owner(slot) != dest {
		return nil
	}
	n.FinishMigrate(slot, sm)
	return sm
}

// finishCommitted records a committed migration's metrics and gossips
// the new map to the remaining peers, best effort: a peer that misses
// it keeps redirecting through the old owner (us), which now answers
// MOVED toward the destination — two hops, not wrong answers.
func (n *Node) finishCommitted(res MigrationResult, next *SlotMap, peers func(int) *Peer, start time.Time) (MigrationResult, error) {
	n.Metrics.MigCompleted.Add(1)
	res.Duration = time.Since(start)
	n.Metrics.LastMigSlot.Store(int64(res.Slot))
	n.Metrics.LastMigUS.Store(res.Duration.Microseconds())
	enc := next.Encode(nil)
	for i := range next.Nodes {
		if i == n.self || i == res.Dest {
			continue
		}
		if pp := peers(i); pp != nil {
			pp.Call(MsgMapUpdate, enc) //nolint:errcheck // best-effort gossip
		}
	}
	return res, nil
}
