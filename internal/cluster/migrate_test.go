package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/shard"
	"addrkv/internal/wal"
)

// testNode is a minimal in-process cluster member: a shard cluster, a
// node state, and a bus handler mirroring the serving layer's wiring
// (kvserve composes the same pieces).
type testNode struct {
	idx  int
	c    *shard.Cluster
	n    *Node
	bus  *BusServer
	peer *Peer // dialed by others

	// intercept, when set, sees every bus request first;
	// handled=true short-circuits the normal handler — the
	// failure-injection hook for interruption tests.
	intercept atomic.Pointer[func(m Msg) (t MsgType, body []byte, handled bool)]
}

func (tn *testNode) setIntercept(f func(m Msg) (MsgType, []byte, bool)) {
	if f == nil {
		tn.intercept.Store(nil)
		return
	}
	tn.intercept.Store(&f)
}

func newTestCluster(t *testing.T, nodes int) []*testNode {
	t.Helper()
	infos := make([]NodeInfo, nodes)
	lns := make([]net.Listener, nodes)
	for i := range infos {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		infos[i] = NodeInfo{
			Addr: fmt.Sprintf("127.0.0.1:%d", 7000+i), // advertised only
			Bus:  ln.Addr().String(),
		}
	}
	tns := make([]*testNode, nodes)
	for i := range tns {
		c, err := shard.New(shard.Config{Shards: 2, Engine: kv.Config{Keys: 8000, Mode: kv.ModeSTLT, Seed: 42}})
		if err != nil {
			t.Fatal(err)
		}
		n := NewNode(i, NewSlotMap(infos))
		c.SetOpGate(n.Gate)
		tn := &testNode{idx: i, c: c, n: n}
		tn.bus = ServeBus(lns[i], tn.handle)
		tn.peer = NewPeer(infos[i].Bus)
		t.Cleanup(tn.bus.Close)
		t.Cleanup(tn.peer.Close)
		tns[i] = tn
	}
	return tns
}

func (tn *testNode) handle(m Msg) (MsgType, []byte) {
	if f := tn.intercept.Load(); f != nil {
		if t, body, handled := (*f)(m); handled {
			return t, body
		}
	}
	switch m.Type {
	case MsgHello, MsgMapGet:
		return MsgMap, tn.n.Map().Encode(nil)
	case MsgMapUpdate:
		sm, err := DecodeSlotMap(m.Payload)
		if err != nil {
			return MsgErr, []byte(err.Error())
		}
		tn.n.AdoptMap(sm)
		return MsgAck, EncodeU64(tn.n.Version())
	case MsgMigStart:
		slot, src, err := DecodeSlotNode(m.Payload)
		if err != nil {
			return MsgErr, []byte(err.Error())
		}
		if err := tn.n.BeginImport(slot, src); err != nil {
			return MsgErr, []byte(err.Error())
		}
		return MsgAck, nil
	case MsgMigBatch:
		slot, src, rewarm, frames, err := DecodeMigBatch(m.Payload)
		if err != nil {
			return MsgErr, []byte(err.Error())
		}
		if from, ok := tn.n.ImportingFrom(slot); !ok || from != src {
			return MsgErr, []byte(fmt.Sprintf("slot %d not importing from node %d", slot, src))
		}
		res := wal.Scan(frames)
		if res.Torn {
			return MsgErr, []byte("torn batch")
		}
		installed, _ := tn.c.InstallRecords(res.Records, rewarm)
		tn.n.Metrics.ImpBatches.Add(1)
		tn.n.Metrics.ImpRecords.Add(uint64(installed))
		return MsgAck, EncodeU64(uint64(installed))
	case MsgMigCommit:
		slot, sm, err := DecodeMigCommit(m.Payload)
		if err != nil {
			return MsgErr, []byte(err.Error())
		}
		tn.n.CommitImport(slot, sm)
		return MsgAck, EncodeU64(tn.n.Version())
	}
	return MsgErr, []byte("unhandled")
}

func peersOf(tns []*testNode, self int) func(int) *Peer {
	return func(i int) *Peer {
		if i < 0 || i >= len(tns) || i == self {
			return nil
		}
		return tns[i].peer
	}
}

// keysInSlotOwnedBy fabricates distinct keys landing in slots owned
// by node `own` under map m, at least count of them.
func keysOwnedBy(m *SlotMap, own, count int) [][]byte {
	var keys [][]byte
	for i := 0; len(keys) < count; i++ {
		k := []byte(fmt.Sprintf("mig:%d", i))
		if m.Owner(SlotOf(k)) == own {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestMigrateMovesSlotByteIdentical(t *testing.T) {
	tns := newTestCluster(t, 2)
	src, dst := tns[0], tns[1]

	// Populate node 0 with keys, remember those in one chosen slot.
	keys := keysOwnedBy(src.n.Map(), 0, 500)
	vals := map[string][]byte{}
	for i, k := range keys {
		v := []byte(fmt.Sprintf("value-%d-%s", i, k))
		src.c.Set(k, v)
		vals[string(k)] = v
	}
	slot := SlotOf(keys[0])
	var slotKeys [][]byte
	for _, k := range keys {
		if SlotOf(k) == slot {
			slotKeys = append(slotKeys, k)
		}
	}

	res, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{Rewarm: true, BatchKeys: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys != len(slotKeys) {
		t.Fatalf("moved %d keys, want %d", res.Keys, len(slotKeys))
	}
	if src.n.Map().Owner(slot) != 1 || dst.n.Map().Owner(slot) != 1 {
		t.Fatalf("ownership not flipped: src=%d dst=%d",
			src.n.Map().Owner(slot), dst.n.Map().Owner(slot))
	}
	if src.n.Map().Version != 2 || dst.n.Map().Version != 2 {
		t.Fatalf("version not bumped: %d/%d", src.n.Map().Version, dst.n.Map().Version)
	}
	for _, k := range slotKeys {
		if src.c.ContainsKey(k) {
			t.Fatalf("key %q still on source", k)
		}
		got, ok := dst.c.PeekValue(k)
		if !ok || !bytes.Equal(got, vals[string(k)]) {
			t.Fatalf("key %q on destination: ok=%v val=%q want %q", k, ok, got, vals[string(k)])
		}
	}
	// Keys of other slots stayed put.
	stay := 0
	for _, k := range keys {
		if SlotOf(k) != slot {
			if !src.c.ContainsKey(k) {
				t.Fatalf("unmigrated key %q vanished", k)
			}
			stay++
		}
	}
	if stay+len(slotKeys) != len(keys) {
		t.Fatal("key accounting broken")
	}
	if got := dst.n.Metrics.ImpRecords.Load(); got != uint64(len(slotKeys)) {
		t.Fatalf("destination installed %d, want %d", got, len(slotKeys))
	}
	if res.Batches == 0 || res.Bytes == 0 || res.Duration <= 0 {
		t.Fatalf("result not filled: %+v", res)
	}
}

// TestMigrateRewarmWarmsDestinationSTLT pins the insertSTLT analog:
// with Rewarm the destination's first GET of a migrated key is a
// fast-path hit; without it, the first GET takes the slow path (the
// warm-up cliff the benchmark measures).
func TestMigrateRewarmWarmsDestinationSTLT(t *testing.T) {
	for _, rewarm := range []bool{true, false} {
		tns := newTestCluster(t, 2)
		src, dst := tns[0], tns[1]
		keys := keysOwnedBy(src.n.Map(), 0, 200)
		for _, k := range keys {
			src.c.Set(k, []byte("v"))
		}
		slot := SlotOf(keys[0])
		if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{Rewarm: rewarm}); err != nil {
			t.Fatal(err)
		}
		var first *shard.OpOutcome
		for _, k := range keys {
			if SlotOf(k) != slot {
				continue
			}
			var out shard.OpOutcome
			if _, ok := dst.c.GetO(k, &out); !ok {
				t.Fatalf("migrated key %q missing", k)
			}
			first = &out
			break
		}
		if first == nil {
			t.Fatal("no key in slot")
		}
		if first.FastHit != rewarm {
			t.Fatalf("rewarm=%v: first GET fastHit=%v", rewarm, first.FastHit)
		}
	}
}

// TestMigrateUnderTraffic runs a mixed GET/SET stream against the
// moving slot while the migration is in flight, following redirects
// the way a cluster client would, and verifies zero lost, stale, or
// duplicated acknowledged writes.
func TestMigrateUnderTraffic(t *testing.T) {
	tns := newTestCluster(t, 2)
	src, dst := tns[0], tns[1]
	keys := keysOwnedBy(src.n.Map(), 0, 100)
	slot := SlotOf(keys[0])
	// Pack a meaningful population into the moving slot so the stream
	// and the migration genuinely interleave.
	var slotKeys [][]byte
	for i := 0; len(slotKeys) < 32; i++ {
		k := []byte(fmt.Sprintf("hot:%d", i))
		if SlotOf(k) == slot {
			slotKeys = append(slotKeys, k)
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		src.c.Set(k, []byte("v0"))
	}

	// clientOp mimics the serving path: route on the owner's node
	// state, run the gated op, follow ASK/MOVED on denial.
	ackVal := func(k []byte, seq int) []byte { return []byte(fmt.Sprintf("v%d", seq)) }
	nodeOf := func(i int) *testNode { return tns[i] }
	doSet := func(k, v []byte) {
		node := src
		for hop := 0; hop < 8; hop++ {
			var out shard.OpOutcome
			if node.n.Map().Owner(SlotOf(k)) != node.idx && !node.n.Importing(SlotOf(k)) {
				node = nodeOf(node.n.Map().Owner(SlotOf(k)))
				continue
			}
			if node.n.Importing(SlotOf(k)) && node.n.Map().Owner(SlotOf(k)) != node.idx {
				out.Bypass = true // the ASKING path
			}
			node.c.SetO(k, v, &out)
			if !out.Denied {
				return
			}
			_, kind, _ := node.n.RedirectFor(k)
			switch kind {
			case RedirectAsk:
				node = nodeOf(1) // dest of the only migration
			case RedirectMoved:
				node = nodeOf(node.n.Map().Owner(SlotOf(k)))
			}
		}
		t.Error("SET did not settle within 8 hops")
	}
	doGet := func(k []byte) ([]byte, bool) {
		node := src
		for hop := 0; hop < 8; hop++ {
			var out shard.OpOutcome
			if node.n.Map().Owner(SlotOf(k)) != node.idx && !node.n.Importing(SlotOf(k)) {
				node = nodeOf(node.n.Map().Owner(SlotOf(k)))
				continue
			}
			if node.n.Importing(SlotOf(k)) && node.n.Map().Owner(SlotOf(k)) != node.idx {
				out.Bypass = true
			}
			v, ok := node.c.GetO(k, &out)
			if !out.Denied {
				return append([]byte(nil), v...), ok
			}
			_, kind, _ := node.n.RedirectFor(k)
			switch kind {
			case RedirectAsk:
				node = nodeOf(1)
			case RedirectMoved:
				node = nodeOf(node.n.Map().Owner(SlotOf(k)))
			}
		}
		t.Error("GET did not settle within 8 hops")
		return nil, false
	}

	stop := make(chan struct{})
	var mu sync.Mutex
	lastAcked := map[string]int{} // key -> last acknowledged seq
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := slotKeys[seq%len(slotKeys)]
			doSet(k, ackVal(k, seq))
			mu.Lock()
			lastAcked[string(k)] = seq
			mu.Unlock()
			if v, ok := doGet(k); !ok || len(v) == 0 {
				t.Errorf("read-your-write failed for %q", k)
				return
			}
			seq++
		}
	}()

	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{Rewarm: true, BatchKeys: 2}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Post-migration: every acknowledged write's latest value must be
	// on the destination (and only there).
	mu.Lock()
	defer mu.Unlock()
	for _, k := range slotKeys {
		want := []byte("v0")
		if seq, ok := lastAcked[string(k)]; ok {
			want = ackVal(k, seq)
		}
		if src.c.ContainsKey(k) {
			t.Fatalf("key %q duplicated on source after migration", k)
		}
		got, ok := dst.c.PeekValue(k)
		if !ok {
			t.Fatalf("acknowledged key %q lost", k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("stale value for %q: got %q want %q", k, got, want)
		}
	}
}

// TestMigrateInterruptedKeepsMarkAndResumes pins the failure
// discipline around shipped batches: once any batch has left the
// node, neither the original failure nor a failed RESUME may clear
// the migrating mark (records live only at the destination, which
// serves them through the ASK window); a later successful resume
// completes the move with nothing lost.
func TestMigrateInterruptedKeepsMarkAndResumes(t *testing.T) {
	tns := newTestCluster(t, 2)
	src, dst := tns[0], tns[1]
	keys := keysOwnedBy(src.n.Map(), 0, 300)
	vals := map[string][]byte{}
	for i, k := range keys {
		v := []byte(fmt.Sprintf("v%d", i))
		src.c.Set(k, v)
		vals[string(k)] = v
	}
	slot := SlotOf(keys[0])
	var slotKeys [][]byte
	for _, k := range keys {
		if SlotOf(k) == slot {
			slotKeys = append(slotKeys, k)
		}
	}
	// Pack the moving slot so the stream has several one-key batches
	// to interrupt between.
	for i := 0; len(slotKeys) < 8; i++ {
		k := []byte(fmt.Sprintf("pad:%d", i))
		if SlotOf(k) == slot {
			v := []byte(fmt.Sprintf("pv%d", i))
			src.c.Set(k, v)
			vals[string(k)] = v
			slotKeys = append(slotKeys, k)
		}
	}

	// Fail the second batch: one batch ships, then the bus "breaks".
	var batches atomic.Int32
	dst.setIntercept(func(m Msg) (MsgType, []byte, bool) {
		if m.Type == MsgMigBatch && batches.Add(1) == 2 {
			return MsgErr, []byte("injected: bus broke"), true
		}
		return 0, nil, false
	})
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{BatchKeys: 1}); err == nil {
		t.Fatal("interrupted migration reported success")
	}
	if len(src.n.MigratingSlots()) != 1 {
		t.Fatal("migrating mark cleared after a batch shipped")
	}

	// Resume against a dead MigStart: the mark must STILL survive —
	// clearing it would make the source serve the slot as sole owner
	// while shipped records live only at the destination.
	dst.setIntercept(func(m Msg) (MsgType, []byte, bool) {
		if m.Type == MsgMigStart {
			return MsgErr, []byte("injected: start refused"), true
		}
		return 0, nil, false
	})
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{BatchKeys: 1}); err == nil {
		t.Fatal("resume with refused MigStart reported success")
	}
	if len(src.n.MigratingSlots()) != 1 {
		t.Fatal("migrating mark cleared by a failed resume")
	}
	if src.n.Map().Owner(slot) != 0 {
		t.Fatal("ownership moved without a commit")
	}

	// Clean resume: completes, every record byte-identical at dest.
	dst.setIntercept(nil)
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{BatchKeys: 1}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(src.n.MigratingSlots()) != 0 || src.n.Map().Owner(slot) != 1 {
		t.Fatal("resume did not complete")
	}
	for _, k := range slotKeys {
		if src.c.ContainsKey(k) {
			t.Fatalf("key %q still on source", k)
		}
		got, ok := dst.c.PeekValue(k)
		if !ok || !bytes.Equal(got, vals[string(k)]) {
			t.Fatalf("key %q at destination: ok=%v got=%q want %q", k, ok, got, vals[string(k)])
		}
	}
}

// TestMigrateLostCommitAckResumes pins the lost-ack recovery: the
// destination applies the commit but its ack never reaches the
// source. The re-issued migration finds the destination refusing
// MigStart ("already owned here"), probes its map, adopts the newer
// epoch and completes — instead of failing forever or, worse,
// clearing the mark.
func TestMigrateLostCommitAckResumes(t *testing.T) {
	tns := newTestCluster(t, 2)
	src, dst := tns[0], tns[1]
	keys := keysOwnedBy(src.n.Map(), 0, 200)
	for _, k := range keys {
		src.c.Set(k, []byte("v"))
	}
	slot := SlotOf(keys[0])

	// Apply the commit at the destination, then eat the ack.
	dst.setIntercept(func(m Msg) (MsgType, []byte, bool) {
		if m.Type == MsgMigCommit {
			s, sm, err := DecodeMigCommit(m.Payload)
			if err != nil {
				return MsgErr, []byte(err.Error()), true
			}
			dst.n.CommitImport(s, sm)
			return MsgErr, []byte("injected: ack lost"), true
		}
		return 0, nil, false
	})
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{}); err == nil {
		t.Fatal("migration with a lost commit ack reported success")
	}
	if len(src.n.MigratingSlots()) != 1 || src.n.Map().Version != 1 {
		t.Fatal("source state wrong after lost ack")
	}
	if dst.n.Map().Owner(slot) != 1 || dst.n.Map().Version != 2 {
		t.Fatal("destination did not commit")
	}

	dst.setIntercept(nil)
	res, err := src.n.Migrate(src.c, peersOf(tns, 0), slot, 1, MigrateOpts{})
	if err != nil {
		t.Fatalf("resume after lost ack: %v", err)
	}
	if res.Keys != 0 {
		t.Fatalf("resume re-shipped %d keys", res.Keys)
	}
	if src.n.Map().Version != 2 || src.n.Map().Owner(slot) != 1 {
		t.Fatal("source did not adopt the committed map")
	}
	if len(src.n.MigratingSlots()) != 0 {
		t.Fatal("migrating mark survived the adopted commit")
	}
	if got := src.n.Metrics.MigCompleted.Load(); got != 1 {
		t.Fatalf("MigCompleted=%d, want 1", got)
	}
}

// TestMigrateStaleBatchRefused pins the destination-side install
// gate: a MigBatch for a slot that is not importing (or importing
// from a different source) must be refused, so a duplicate batch
// surfacing after the commit cannot clobber newer acknowledged
// writes.
func TestMigrateStaleBatchRefused(t *testing.T) {
	tns := newTestCluster(t, 3)
	src, dst := tns[0], tns[1]
	keys := keysOwnedBy(src.n.Map(), 0, 100)
	for _, k := range keys {
		src.c.Set(k, []byte("v"))
	}
	slot := SlotOf(keys[0])
	frames := wal.AppendFrame(nil, wal.RecLoad, keys[0], []byte("stale"))

	// Not importing at all: refused.
	if _, err := dst.peer.Call(MsgMigBatch, EncodeMigBatch(slot, 0, false, frames)); err == nil {
		t.Fatal("batch for a non-importing slot installed")
	}
	// Importing, but from another source: refused.
	if _, err := dst.peer.Call(MsgMigStart, EncodeSlotNode(slot, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.peer.Call(MsgMigBatch, EncodeMigBatch(slot, 2, false, frames)); err == nil {
		t.Fatal("batch from the wrong source installed")
	}
	// Matching source: installed.
	reply, err := dst.peer.Call(MsgMigBatch, EncodeMigBatch(slot, 0, false, frames))
	if err != nil {
		t.Fatalf("legitimate batch refused: %v", err)
	}
	if DecodeU64(reply.Payload) != 1 {
		t.Fatalf("installed %d records, want 1", DecodeU64(reply.Payload))
	}
	// After the commit clears the importing mark, a late duplicate of
	// the same batch is refused — acknowledged post-commit writes
	// cannot be clobbered.
	next := dst.n.Map().Clone()
	next.Version++
	next.SetOwner(slot, 1)
	dst.n.CommitImport(slot, next)
	if _, err := dst.peer.Call(MsgMigBatch, EncodeMigBatch(slot, 0, false, frames)); err == nil {
		t.Fatal("post-commit duplicate batch installed")
	}
}

func TestMigrateRefusals(t *testing.T) {
	tns := newTestCluster(t, 3)
	src := tns[0]
	// Slot not owned here.
	foreign := uint16(0)
	for s := uint16(0); ; s++ {
		if src.n.Map().Owner(s) != 0 {
			foreign = s
			break
		}
	}
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), foreign, 1, MigrateOpts{}); err == nil {
		t.Fatal("migrated unowned slot")
	}
	// Destination == self.
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), 0, 0, MigrateOpts{}); err == nil {
		t.Fatal("migrated slot to itself")
	}
	// Unknown destination.
	if _, err := src.n.Migrate(src.c, peersOf(tns, 0), 0, 9, MigrateOpts{}); err == nil {
		t.Fatal("migrated to unknown node")
	}
	// Destination refuses an import of a slot it owns.
	owned1 := uint16(0)
	for s := uint16(0); ; s++ {
		if src.n.Map().Owner(s) == 1 {
			owned1 = s
			break
		}
	}
	if err := tns[1].n.BeginImport(owned1, 0); err == nil {
		t.Fatal("imported an owned slot")
	}
}
