// Bus frame codec. Same armor as internal/wal's record frames — a
// little-endian [payloadLen u32][crc32c u32] header over a
// [type u8][body] payload — because the bus and the log face the same
// failure shape: a byte stream that can be torn or corrupted must
// never be half-trusted. A frame either decodes exactly or is
// rejected whole.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MsgType identifies one bus message.
type MsgType uint8

// Bus message types. Every request is answered by exactly one reply
// frame (MsgMap, MsgAck or MsgErr), so a peer connection is a simple
// in-order call channel.
const (
	// MsgHello introduces a peer; body: u16 sender node index.
	// Reply: MsgMap with the receiver's current slot map.
	MsgHello MsgType = 1
	// MsgMapGet requests the current slot map; empty body.
	// Reply: MsgMap.
	MsgMapGet MsgType = 2
	// MsgMap carries an encoded SlotMap (see SlotMap.Encode).
	MsgMap MsgType = 3
	// MsgMapUpdate gossips a newer slot map; body: encoded SlotMap.
	// Reply: MsgAck with the receiver's (possibly newer) version.
	MsgMapUpdate MsgType = 4
	// MsgMigStart opens an import: the sender is about to stream a
	// slot's records; body: u16 slot, u16 source node index.
	// Reply: MsgAck, or MsgErr when the receiver must refuse (it
	// already owns the slot, or is importing it from someone else).
	MsgMigStart MsgType = 5
	// MsgMigBatch carries one extracted batch; body: u16 slot,
	// u16 source node index, u8 rewarm flag, then wal RecLoad frames
	// back to back. The receiver must refuse (MsgErr) unless the slot
	// is importing from exactly that source — a duplicate batch
	// arriving after the commit must not re-install stale records.
	// Reply: MsgAck with the number of records installed.
	MsgMigBatch MsgType = 6
	// MsgMigCommit flips ownership; body: u16 slot, then the encoded
	// post-migration SlotMap (version+1, slot owned by the receiver).
	// Reply: MsgAck with the adopted version.
	MsgMigCommit MsgType = 7
	// MsgAck acknowledges a request; body: u64 kind-specific count.
	MsgAck MsgType = 8
	// MsgErr rejects a request; body: utf-8 reason.
	MsgErr MsgType = 9
	// MsgHeartbeat announces the sender is alive; body: an encoded
	// health.Digest (the sender's telemetry snapshot). Reply: MsgAck
	// with the receiver's map version — a successful round-trip is
	// liveness evidence in both directions.
	MsgHeartbeat MsgType = 10
	// MsgDigestGet requests the receiver's current telemetry digest
	// (fleet aggregation fan-out); empty body. Reply: MsgDigest.
	MsgDigestGet MsgType = 11
	// MsgDigest carries an encoded health.Digest.
	MsgDigest MsgType = 12
)

func validMsgType(t MsgType) bool { return t >= MsgHello && t <= MsgDigest }

// Msg is one decoded bus frame. Payload aliases the decode buffer.
type Msg struct {
	Type    MsgType
	Payload []byte
}

// MaxPayload bounds a frame's payload (type byte + body), like
// wal.MaxPayload: big enough for a migration batch of maximal
// records, small enough that a hostile length prefix cannot force a
// giant allocation.
const MaxPayload = 1 << 26

const frameHeaderSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a frame cut short — the reader should treat the
// stream as ended mid-frame.
var ErrTorn = errors.New("cluster: torn frame")

// ErrCorrupt reports a frame whose bytes are internally inconsistent
// (CRC mismatch, unknown type, hostile length).
var ErrCorrupt = errors.New("cluster: corrupt frame")

// AppendFrame appends one encoded frame to buf and returns the
// extended slice.
func AppendFrame(buf []byte, t MsgType, body []byte) []byte {
	plen := 1 + len(body)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(plen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = append(buf, byte(t))
	buf = append(buf, body...)
	crc := crc32.Checksum(buf[crcAt+4:], castagnoli)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// DecodeFrame decodes the first frame in b. Returns the message and
// the bytes consumed. A clean end (empty b) returns n == 0 with no
// error; a frame cut short returns ErrTorn; inconsistent bytes return
// ErrCorrupt. On any error n is 0 — a bad frame consumes nothing.
// Msg.Payload aliases b.
func DecodeFrame(b []byte) (Msg, int, error) {
	if len(b) == 0 {
		return Msg{}, 0, nil
	}
	if len(b) < frameHeaderSize {
		return Msg{}, 0, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(b)
	if plen < 1 || plen > MaxPayload {
		return Msg{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	total := frameHeaderSize + int(plen)
	if len(b) < total {
		return Msg{}, 0, ErrTorn
	}
	want := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeaderSize:total]
	if crc32.Checksum(payload, castagnoli) != want {
		return Msg{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	t := MsgType(payload[0])
	if !validMsgType(t) {
		return Msg{}, 0, fmt.Errorf("%w: unknown type %d", ErrCorrupt, t)
	}
	return Msg{Type: t, Payload: payload[1:]}, total, nil
}

// WriteMsg writes one frame to w.
func WriteMsg(w io.Writer, t MsgType, body []byte) error {
	_, err := w.Write(AppendFrame(nil, t, body))
	return err
}

// ReadMsg reads exactly one frame from r, reusing buf when it is
// large enough. Returns the message (Payload aliases the returned
// buffer) and the buffer for reuse. A clean EOF before any header
// byte returns io.EOF; a tear mid-frame returns ErrTorn.
func ReadMsg(r io.Reader, buf []byte) (Msg, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Msg{}, buf, io.EOF
		}
		return Msg{}, buf, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(hdr[:])
	if plen < 1 || plen > MaxPayload {
		return Msg{}, buf, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	total := frameHeaderSize + int(plen)
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[frameHeaderSize:]); err != nil {
		return Msg{}, buf, ErrTorn
	}
	m, _, err := DecodeFrame(buf)
	return m, buf, err
}

// Payload helpers: tiny fixed encodings for the migration messages.

// EncodeSlotNode encodes (slot, node) — the MigStart body.
func EncodeSlotNode(slot uint16, node int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint16(b[0:], slot)
	binary.LittleEndian.PutUint16(b[2:], uint16(node))
	return b[:]
}

// DecodeSlotNode decodes a MigStart body.
func DecodeSlotNode(b []byte) (slot uint16, node int, err error) {
	if len(b) != 4 {
		return 0, 0, fmt.Errorf("%w: slot/node body %d bytes", ErrCorrupt, len(b))
	}
	return binary.LittleEndian.Uint16(b), int(binary.LittleEndian.Uint16(b[2:])), nil
}

// EncodeMigBatch prefixes a run of wal RecLoad frames with the slot,
// the sending node and the re-warm flag — the MigBatch body.
func EncodeMigBatch(slot uint16, src int, rewarm bool, frames []byte) []byte {
	b := make([]byte, 0, 5+len(frames))
	b = binary.LittleEndian.AppendUint16(b, slot)
	b = binary.LittleEndian.AppendUint16(b, uint16(src))
	if rewarm {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, frames...)
}

// DecodeMigBatch splits a MigBatch body; frames aliases b.
func DecodeMigBatch(b []byte) (slot uint16, src int, rewarm bool, frames []byte, err error) {
	if len(b) < 5 {
		return 0, 0, false, nil, fmt.Errorf("%w: mig batch body %d bytes", ErrCorrupt, len(b))
	}
	return binary.LittleEndian.Uint16(b), int(binary.LittleEndian.Uint16(b[2:])), b[4] == 1, b[5:], nil
}

// EncodeMigCommit prefixes an encoded slot map with the committed
// slot — the MigCommit body.
func EncodeMigCommit(slot uint16, m *SlotMap) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint16(b, slot)
	return m.Encode(b)
}

// DecodeMigCommit splits a MigCommit body.
func DecodeMigCommit(b []byte) (slot uint16, m *SlotMap, err error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("%w: mig commit body %d bytes", ErrCorrupt, len(b))
	}
	m, err = DecodeSlotMap(b[2:])
	if err != nil {
		return 0, nil, err
	}
	return binary.LittleEndian.Uint16(b), m, nil
}

// EncodeU64 encodes an Ack count.
func EncodeU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeU64 decodes an Ack count (0 on short body — Acks are
// advisory).
func DecodeU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
