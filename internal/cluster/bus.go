// The node-to-node bus: length-prefixed CRC'd frames over TCP, one
// request one reply, served by a per-connection goroutine. The bus
// carries control traffic only (slot maps, migration streams) — the
// client data path never crosses it, so a thin codec with blocking
// calls is the right amount of machinery.
package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler answers one bus request with one reply message. It runs on
// the serving connection's goroutine; returning a MsgErr reply is the
// way to refuse a request.
type Handler func(m Msg) (MsgType, []byte)

// BusServer accepts peer connections and serves requests.
type BusServer struct {
	ln     net.Listener
	h      Handler
	closed atomic.Bool
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	served atomic.Uint64
	errs   atomic.Uint64
}

// ServeBus starts serving bus requests on ln.
func ServeBus(ln net.Listener, h Handler) *BusServer {
	b := &BusServer{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// track registers a live connection, refusing it mid-shutdown.
func (b *BusServer) track(conn net.Conn) bool {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	if b.closed.Load() {
		return false
	}
	b.conns[conn] = struct{}{}
	return true
}

func (b *BusServer) untrack(conn net.Conn) {
	b.connMu.Lock()
	delete(b.conns, conn)
	b.connMu.Unlock()
}

// Addr returns the bus listen address.
func (b *BusServer) Addr() string { return b.ln.Addr().String() }

// Served returns how many requests the bus has answered.
func (b *BusServer) Served() uint64 { return b.served.Load() }

func (b *BusServer) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			if b.closed.Load() {
				return
			}
			b.errs.Add(1)
			// Persistent Accept errors (EMFILE and friends) would
			// otherwise busy-spin a core; back off briefly.
			time.Sleep(acceptBackoff)
			continue
		}
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

// acceptBackoff spaces retries after an Accept error.
const acceptBackoff = 10 * time.Millisecond

func (b *BusServer) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()
	if !b.track(conn) {
		return
	}
	defer b.untrack(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var buf []byte
	for {
		var m Msg
		var err error
		m, buf, err = ReadMsg(br, buf)
		if err != nil {
			return
		}
		t, body := b.h(m)
		b.served.Add(1)
		// Bound the reply write: a peer that stops draining must not
		// pin this goroutine (reads may block indefinitely — an idle
		// peer connection is normal).
		conn.SetWriteDeadline(time.Now().Add(CallTimeout)) //nolint:errcheck
		if err := WriteMsg(bw, t, body); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting, closes live peer connections (unblocking
// their read loops) and waits for the serving goroutines to drain.
func (b *BusServer) Close() {
	b.closed.Store(true)
	b.ln.Close()
	b.connMu.Lock()
	for conn := range b.conns {
		conn.Close()
	}
	b.connMu.Unlock()
	b.wg.Wait()
}

// Peer is a client handle to one remote node's bus: a persistent
// connection issuing blocking request/reply calls, serialized by a
// mutex (the bus is control-plane; one in-flight call per peer is
// plenty). A broken connection is redialed once per call.
type Peer struct {
	addr string

	// Timeout bounds one call's write+read round trip (0 means
	// CallTimeout). Set before the first Call; not synchronized.
	Timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	buf  []byte

	calls atomic.Uint64
}

// DialTimeout bounds one bus connect attempt.
const DialTimeout = 2 * time.Second

// CallTimeout bounds one bus call's write+read round trip. Batches
// ship while a shard lock is held (see internal/shard.ExtractBatch),
// so a hung or black-holed peer must surface as a call error — which
// aborts or retries the migration — rather than wedging the shard's
// client traffic indefinitely.
const CallTimeout = 10 * time.Second

// NewPeer returns a lazy handle; the connection is established on
// first Call.
func NewPeer(addr string) *Peer { return &Peer{addr: addr} }

// BusAddr returns the peer's bus address.
func (p *Peer) BusAddr() string { return p.addr }

// Calls returns how many calls this peer has completed.
func (p *Peer) Calls() uint64 { return p.calls.Load() }

func (p *Peer) connect() error {
	conn, err := net.DialTimeout("tcp", p.addr, DialTimeout)
	if err != nil {
		return err
	}
	p.conn = conn
	p.br = bufio.NewReaderSize(conn, 64<<10)
	return nil
}

// Call sends one request and reads its reply. A MsgErr reply is
// surfaced as an error. On a transport failure the connection is
// dropped and the call retried once on a fresh dial — safe because
// every bus request is idempotent (map exchange; batch install is an
// upsert; commit adoption is version-gated).
func (p *Peer) Call(t MsgType, body []byte) (Msg, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.callRetry(t, body)
}

// CallCopy is Call with the reply payload copied into a fresh slice
// while the peer's lock is still held. A plain Call's payload aliases
// the peer's reused read buffer, so on a peer shared between
// goroutines (the heartbeat loop and digest collection) the caller
// cannot copy it safely after Call returns — the next Call may already
// be overwriting the buffer.
func (p *Peer) CallCopy(t MsgType, body []byte) (Msg, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, err := p.callRetry(t, body)
	if err == nil && len(m.Payload) > 0 {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	return m, err
}

func (p *Peer) callRetry(t MsgType, body []byte) (Msg, error) {
	for attempt := 0; ; attempt++ {
		if p.conn == nil {
			if err := p.connect(); err != nil {
				return Msg{}, fmt.Errorf("cluster: dial %s: %w", p.addr, err)
			}
		}
		m, err := p.call(t, body)
		if err == nil {
			p.calls.Add(1)
			if m.Type == MsgErr {
				return Msg{}, fmt.Errorf("cluster: peer %s: %s", p.addr, m.Payload)
			}
			return m, nil
		}
		p.conn.Close()
		p.conn = nil
		if attempt == 1 {
			return Msg{}, fmt.Errorf("cluster: call %s: %w", p.addr, err)
		}
	}
}

func (p *Peer) call(t MsgType, body []byte) (Msg, error) {
	to := p.Timeout
	if to <= 0 {
		to = CallTimeout
	}
	if err := p.conn.SetDeadline(time.Now().Add(to)); err != nil {
		return Msg{}, err
	}
	if err := WriteMsg(p.conn, t, body); err != nil {
		return Msg{}, err
	}
	var m Msg
	var err error
	m, p.buf, err = ReadMsg(p.br, p.buf)
	return m, err
}

// Close drops the connection.
func (p *Peer) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}
