// The versioned slot map: which node owns which hash slots.
//
// Versioning follows the usual epoch rule: every ownership change
// bumps Version by one, and a node adopts a received map only when
// its version is strictly newer than the one it holds. A migration
// commits by shipping version+1 with the slot flipped to the
// destination FIRST (so the new owner can serve before anyone else
// learns), then installing locally, then gossiping to the remaining
// peers — stale peers keep answering MOVED toward the old owner,
// which answers MOVED toward the new one, so clients converge in at
// most two hops.
package cluster

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// NodeInfo identifies one cluster member: the client-facing RESP
// address redirects point at, and the bus address peers dial.
type NodeInfo struct {
	// Addr is the advertised client address ("host:port").
	Addr string
	// Bus is the node-to-node bus address ("host:port").
	Bus string
}

// SlotMap assigns every hash slot to one node. The zero value is not
// usable; build with NewSlotMap or DecodeSlotMap.
type SlotMap struct {
	// Version is the map epoch; higher wins.
	Version uint64
	// Nodes lists the cluster members; slot owners index into it.
	Nodes []NodeInfo
	// owners[slot] is the owning node index.
	owners []int16
}

// NewSlotMap builds a version-1 map over nodes with the slot space
// split into len(nodes) contiguous even ranges (node i owns
// [i*N/n, (i+1)*N/n)).
func NewSlotMap(nodes []NodeInfo) *SlotMap {
	m := &SlotMap{Version: 1, Nodes: nodes, owners: make([]int16, NumSlots)}
	n := len(nodes)
	for s := 0; s < NumSlots; s++ {
		m.owners[s] = int16(s * n / NumSlots)
	}
	return m
}

// Owner returns the owning node index of a slot.
func (m *SlotMap) Owner(slot uint16) int { return int(m.owners[slot]) }

// OwnerAddr returns the owning node's client address.
func (m *SlotMap) OwnerAddr(slot uint16) string { return m.Nodes[m.owners[slot]].Addr }

// SetOwner reassigns a slot. Callers bump Version once per ownership
// change they publish.
func (m *SlotMap) SetOwner(slot uint16, node int) { m.owners[slot] = int16(node) }

// OwnedCount returns how many slots a node owns.
func (m *SlotMap) OwnedCount(node int) int {
	n := 0
	for _, o := range m.owners {
		if int(o) == node {
			n++
		}
	}
	return n
}

// Owners returns the distinct node indexes owning at least one slot,
// in node order — the set whose health decides cluster_state.
func (m *SlotMap) Owners() []int {
	seen := make([]bool, len(m.Nodes))
	for _, o := range m.owners {
		if int(o) >= 0 && int(o) < len(seen) {
			seen[o] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i, ok := range seen {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Clone deep-copies the map (Nodes metadata is shared by value).
func (m *SlotMap) Clone() *SlotMap {
	c := &SlotMap{
		Version: m.Version,
		Nodes:   append([]NodeInfo(nil), m.Nodes...),
		owners:  append([]int16(nil), m.owners...),
	}
	return c
}

// SlotRange is one maximal run of consecutive slots with one owner.
type SlotRange struct {
	Start, End uint16 // inclusive
	Node       int
}

// Ranges returns the map as maximal contiguous runs, in slot order —
// the compact form the wire encoding and CLUSTER SLOTS use.
func (m *SlotMap) Ranges() []SlotRange {
	var out []SlotRange
	start := 0
	for s := 1; s <= NumSlots; s++ {
		if s == NumSlots || m.owners[s] != m.owners[start] {
			out = append(out, SlotRange{
				Start: uint16(start), End: uint16(s - 1), Node: int(m.owners[start]),
			})
			start = s
		}
	}
	return out
}

// Encode appends the map's wire form to buf: version u64, node count
// u16, per node two length-prefixed strings (addr, bus), range count
// u32, per range u16 start, u16 end, u16 owner — all little-endian.
// The range form keeps a production map (a handful of runs) to a few
// dozen bytes; the worst case (alternating owners) still fits a
// single bus frame.
func (m *SlotMap) Encode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		buf = appendString(buf, n.Addr)
		buf = appendString(buf, n.Bus)
	}
	ranges := m.Ranges()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ranges)))
	for _, r := range ranges {
		buf = binary.LittleEndian.AppendUint16(buf, r.Start)
		buf = binary.LittleEndian.AppendUint16(buf, r.End)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(r.Node))
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("cluster: short string header")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("cluster: short string body (%d < %d)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

// DecodeSlotMap parses an Encode'd map, validating that every slot is
// covered exactly once and every owner is a known node.
func DecodeSlotMap(b []byte) (*SlotMap, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("cluster: slot map too short (%d bytes)", len(b))
	}
	m := &SlotMap{Version: binary.LittleEndian.Uint64(b), owners: make([]int16, NumSlots)}
	nodes := int(binary.LittleEndian.Uint16(b[8:]))
	b = b[10:]
	if nodes == 0 {
		return nil, fmt.Errorf("cluster: slot map with zero nodes")
	}
	for i := 0; i < nodes; i++ {
		var addr, bus string
		var err error
		if addr, b, err = takeString(b); err != nil {
			return nil, err
		}
		if bus, b, err = takeString(b); err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, NodeInfo{Addr: addr, Bus: bus})
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("cluster: short range header")
	}
	nr := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != nr*6 {
		return nil, fmt.Errorf("cluster: range body %d bytes, want %d", len(b), nr*6)
	}
	for i := range m.owners {
		m.owners[i] = -1
	}
	for i := 0; i < nr; i++ {
		lo := binary.LittleEndian.Uint16(b[i*6:])
		hi := binary.LittleEndian.Uint16(b[i*6+2:])
		own := int(binary.LittleEndian.Uint16(b[i*6+4:]))
		if lo >= NumSlots || hi >= NumSlots || lo > hi {
			return nil, fmt.Errorf("cluster: bad range %d-%d", lo, hi)
		}
		if own >= nodes {
			return nil, fmt.Errorf("cluster: range owner %d of %d nodes", own, nodes)
		}
		for s := int(lo); s <= int(hi); s++ {
			if m.owners[s] != -1 {
				return nil, fmt.Errorf("cluster: slot %d covered twice", s)
			}
			m.owners[s] = int16(own)
		}
	}
	for s, o := range m.owners {
		if o == -1 {
			return nil, fmt.Errorf("cluster: slot %d unowned", s)
		}
	}
	return m, nil
}

// ParseAssignment overrides a map's ownership from a spec like
// "0:0-8191,1:8192-16383" (node:range, comma-separated; later entries
// win). Every slot must remain owned by a known node.
func ParseAssignment(m *SlotMap, spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ns, rs, found := strings.Cut(part, ":")
		if !found {
			return fmt.Errorf("cluster: assignment %q missing node:", part)
		}
		node, err := strconv.Atoi(strings.TrimSpace(ns))
		if err != nil || node < 0 || node >= len(m.Nodes) {
			return fmt.Errorf("cluster: assignment %q: bad node %q", part, ns)
		}
		lo, hi, err := ParseRange(rs)
		if err != nil {
			return err
		}
		for s := lo; ; s++ {
			m.SetOwner(s, node)
			if s == hi {
				break
			}
		}
	}
	return nil
}
