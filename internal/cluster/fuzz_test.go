package cluster

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws corrupt bytes, truncations, and hostile
// length prefixes at the bus frame decoder — the same invariants
// internal/wal's frame fuzzer pins: never panic, never over-read,
// accept exactly the canonical encoding (a decoded frame re-encodes
// to the same bytes), and consume nothing on error so a torn stream
// is rejected cleanly rather than resynchronized into garbage.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, MsgHello, EncodeSlotNode(0, 1)))
	f.Add(AppendFrame(nil, MsgMapGet, nil))
	f.Add(AppendFrame(nil, MsgMap, NewSlotMap([]NodeInfo{{Addr: "a", Bus: "b"}}).Encode(nil)))
	f.Add(AppendFrame(nil, MsgMigBatch, EncodeMigBatch(16383, 3, true, bytes.Repeat([]byte{'r'}, 500))))
	two := AppendFrame(AppendFrame(nil, MsgAck, EncodeU64(9)), MsgErr, []byte("reason"))
	f.Add(two)
	f.Add(two[:len(two)-3])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})                 // giant length prefix
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0, 0, 0, 0, 99, 0, 0, 0, 0}) // bad type

	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeFrame(b)
		switch {
		case err != nil:
			if n != 0 {
				t.Fatalf("error %v with n=%d", err, n)
			}
		case n == 0:
			if len(b) != 0 {
				t.Fatal("clean end on non-empty input")
			}
		default:
			if n > len(b) {
				t.Fatalf("decoder over-read: n=%d len=%d", n, len(b))
			}
			re := AppendFrame(nil, m.Type, m.Payload)
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("non-canonical accept:\n got %x\nfrom %x", re, b[:n])
			}
		}
		// The slot-map decoder shares the bus's trust boundary: any
		// bytes, never a panic.
		if sm, err := DecodeSlotMap(b); err == nil {
			if _, err2 := DecodeSlotMap(sm.Encode(nil)); err2 != nil {
				t.Fatalf("re-encode of accepted map rejected: %v", err2)
			}
		}
	})
}
