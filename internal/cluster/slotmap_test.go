package cluster

import (
	"fmt"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/shard"
)

func nodes3() []NodeInfo {
	return []NodeInfo{
		{Addr: "127.0.0.1:7000", Bus: "127.0.0.1:7100"},
		{Addr: "127.0.0.1:7001", Bus: "127.0.0.1:7101"},
		{Addr: "127.0.0.1:7002", Bus: "127.0.0.1:7102"},
	}
}

func TestSlotOfMatchesRouteHash(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("user:%d", i))
		want := uint16(shard.RouteValue(key) & SlotMask)
		if got := SlotOf(key); got != want {
			t.Fatalf("SlotOf(%q) = %d, want %d", key, got, want)
		}
	}
}

// With a power-of-two shard count, a slot's keys all land on one
// shard inside the owning node — slot and shard are low-bit
// reductions of the same hash, so migrating a slot moves whole-shard
// locality, never splits it.
func TestSlotShardColocation(t *testing.T) {
	c, err := shard.New(shard.Config{Shards: 4, Engine: kv.Config{Keys: 4000, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	shardOf := map[uint16]int{}
	for i := 0; i < 20000; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		slot := SlotOf(key)
		sh := c.ShardFor(key)
		if prev, ok := shardOf[slot]; ok && prev != sh {
			t.Fatalf("slot %d split across shards %d and %d", slot, prev, sh)
		}
		shardOf[slot] = sh
	}
}

func TestNewSlotMapEvenSplit(t *testing.T) {
	m := NewSlotMap(nodes3())
	counts := map[int]int{}
	prev := -1
	for s := 0; s < NumSlots; s++ {
		o := m.Owner(uint16(s))
		if o < prev {
			t.Fatalf("ownership not contiguous at slot %d", s)
		}
		prev = o
		counts[o]++
	}
	for n, c := range counts {
		if c < NumSlots/3-1 || c > NumSlots/3+1 {
			t.Fatalf("node %d owns %d slots, want ~%d", n, c, NumSlots/3)
		}
	}
	if got := len(m.Ranges()); got != 3 {
		t.Fatalf("ranges: %d, want 3", got)
	}
}

func TestSlotMapEncodeDecode(t *testing.T) {
	m := NewSlotMap(nodes3())
	m.Version = 9
	m.SetOwner(0, 2)
	m.SetOwner(8000, 0)
	got, err := DecodeSlotMap(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 9 || len(got.Nodes) != 3 {
		t.Fatalf("header: %+v", got)
	}
	if got.Nodes[1] != (NodeInfo{Addr: "127.0.0.1:7001", Bus: "127.0.0.1:7101"}) {
		t.Fatalf("node info: %+v", got.Nodes[1])
	}
	for s := 0; s < NumSlots; s++ {
		if got.Owner(uint16(s)) != m.Owner(uint16(s)) {
			t.Fatalf("slot %d: %d != %d", s, got.Owner(uint16(s)), m.Owner(uint16(s)))
		}
	}
}

func TestDecodeSlotMapRejectsBadCoverage(t *testing.T) {
	m := NewSlotMap(nodes3())
	enc := m.Encode(nil)
	for _, mut := range [][]byte{
		enc[:8],          // truncated header
		enc[:len(enc)-3], // truncated ranges
	} {
		if _, err := DecodeSlotMap(mut); err == nil {
			t.Fatalf("accepted %d-byte mutation", len(mut))
		}
	}
}

func TestParseAssignment(t *testing.T) {
	m := NewSlotMap(nodes3())
	if err := ParseAssignment(m, "0:0-16383, 2:100-200, 1:150"); err != nil {
		t.Fatal(err)
	}
	if m.Owner(0) != 0 || m.Owner(99) != 0 || m.Owner(100) != 2 ||
		m.Owner(150) != 1 || m.Owner(151) != 2 || m.Owner(201) != 0 {
		t.Fatal("assignment not applied in order")
	}
	for _, bad := range []string{"3:0-5", "0:5-1", "0:99999", "nope"} {
		if err := ParseAssignment(m.Clone(), bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestNodeAdoptVersioning(t *testing.T) {
	m := NewSlotMap(nodes3())
	n := NewNode(1, m)
	older := m.Clone()
	older.Version = 0
	if n.AdoptMap(older) {
		t.Fatal("adopted older map")
	}
	same := m.Clone()
	if n.AdoptMap(same) {
		t.Fatal("adopted same-version map")
	}
	newer := m.Clone()
	newer.Version = 5
	newer.SetOwner(0, 1)
	if !n.AdoptMap(newer) {
		t.Fatal("rejected newer map")
	}
	if n.Version() != 5 || n.Map().Owner(0) != 1 {
		t.Fatalf("map not installed: v%d", n.Version())
	}
}
