// Source-side migration progress: a point-in-time view of the node's
// current (or most recently finished) slot migration, updated by the
// migration runner after every shipped batch and read lock-free of the
// data path by CLUSTER MIGRATE STATUS, the migration gauges, and the
// fleet snapshot. Purely observational — routing and the op gate never
// consult it.
package cluster

import (
	"sync"
	"time"
)

// MigrationProgress reports one migration's advancement. Zero value =
// no migration has run on this node yet.
type MigrationProgress struct {
	Slot    uint16
	Dest    int
	Active  bool // a migration is running right now
	Resumed bool // this run resumed an interrupted migration
	Failed  bool // the last run ended in an error (slot stays migrating)

	KeysTotal      int // records collected at start (this run's work list)
	KeysShipped    int
	BatchesTotal   int
	BatchesShipped int
	Bytes          int // frame bytes shipped

	Elapsed time.Duration
	// ETA estimates the remaining ship time by linear extrapolation of
	// the per-key pace so far (0 when done, failed, or nothing shipped
	// yet).
	ETA time.Duration
}

// progress is the Node's internal tracking state.
type progress struct {
	mu      sync.Mutex
	cur     MigrationProgress
	started time.Time
	ended   time.Time
	seen    bool // any migration ever ran here
}

// progressStart opens a new run's tracking.
func (n *Node) progressStart(slot uint16, dest int, resumed bool, keysTotal, batchesTotal int) {
	p := &n.prog
	p.mu.Lock()
	p.cur = MigrationProgress{
		Slot:         slot,
		Dest:         dest,
		Active:       true,
		Resumed:      resumed,
		KeysTotal:    keysTotal,
		BatchesTotal: batchesTotal,
	}
	p.started = time.Now()
	p.ended = time.Time{}
	p.seen = true
	p.mu.Unlock()
}

// progressBatch records one shipped batch.
func (n *Node) progressBatch(keys, bytes int) {
	p := &n.prog
	p.mu.Lock()
	p.cur.KeysShipped += keys
	p.cur.Bytes += bytes
	p.cur.BatchesShipped++
	p.mu.Unlock()
}

// progressEnd closes the run; failed runs keep their counts so STATUS
// shows where the migration stalled.
func (n *Node) progressEnd(failed bool) {
	p := &n.prog
	p.mu.Lock()
	p.cur.Active = false
	p.cur.Failed = failed
	p.ended = time.Now()
	p.mu.Unlock()
}

// Progress snapshots the migration progress. ok is false when no
// migration has ever run on this node.
func (n *Node) Progress() (mp MigrationProgress, ok bool) {
	p := &n.prog
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seen {
		return MigrationProgress{}, false
	}
	mp = p.cur
	if mp.Active {
		mp.Elapsed = time.Since(p.started)
	} else {
		mp.Elapsed = p.ended.Sub(p.started)
	}
	if mp.Active && mp.KeysShipped > 0 && mp.KeysShipped < mp.KeysTotal {
		perKey := mp.Elapsed / time.Duration(mp.KeysShipped)
		mp.ETA = perKey * time.Duration(mp.KeysTotal-mp.KeysShipped)
	}
	return mp, true
}
