package cluster

import (
	"net"
	"sync"
	"testing"
	"time"
)

func startBus(t *testing.T, h Handler) (*BusServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := ServeBus(ln, h)
	t.Cleanup(b.Close)
	return b, ln.Addr().String()
}

func TestBusCallRoundtrip(t *testing.T) {
	m := NewSlotMap([]NodeInfo{{Addr: "a:1", Bus: "a:2"}})
	_, addr := startBus(t, func(req Msg) (MsgType, []byte) {
		switch req.Type {
		case MsgMapGet, MsgHello:
			return MsgMap, m.Encode(nil)
		case MsgMigStart:
			return MsgErr, []byte("refused")
		default:
			return MsgAck, EncodeU64(uint64(len(req.Payload)))
		}
	})
	p := NewPeer(addr)
	defer p.Close()

	reply, err := p.Call(MsgMapGet, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSlotMap(reply.Payload)
	if err != nil || got.Version != 1 {
		t.Fatalf("map reply: %v %v", got, err)
	}
	if _, err := p.Call(MsgMigStart, EncodeSlotNode(1, 0)); err == nil {
		t.Fatal("MsgErr reply not surfaced as error")
	}
	reply, err = p.Call(MsgMapUpdate, []byte{1, 2, 3})
	if err != nil || DecodeU64(reply.Payload) != 3 {
		t.Fatalf("ack: %v %v", reply, err)
	}
}

func TestBusConcurrentPeers(t *testing.T) {
	var served sync.Map
	_, addr := startBus(t, func(req Msg) (MsgType, []byte) {
		served.Store(string(req.Payload), true)
		return MsgAck, req.Payload
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			p := NewPeer(addr)
			defer p.Close()
			for j := 0; j < 50; j++ {
				body := []byte{id, byte(j)}
				reply, err := p.Call(MsgAck, body)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if string(reply.Payload) != string(body) {
					t.Errorf("echo mismatch")
					return
				}
			}
		}(byte(i))
	}
	wg.Wait()
}

// TestPeerCallTimeout pins the deadline discipline: a peer whose
// remote accepts but never answers must surface a call error within
// the configured timeout, not block forever — batches ship while a
// shard lock is held, so a black-holed destination that wedged Call
// would wedge that shard's client traffic with it.
func TestPeerCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow requests, never reply
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	p := NewPeer(ln.Addr().String())
	p.Timeout = 100 * time.Millisecond
	defer p.Close()
	start := time.Now()
	if _, err := p.Call(MsgMapGet, nil); err == nil {
		t.Fatal("call against a mute peer succeeded")
	}
	// Two attempts (initial + one redial), each bounded by Timeout.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("call took %v, deadline not applied", el)
	}
}

func TestPeerReconnects(t *testing.T) {
	b, addr := startBus(t, func(req Msg) (MsgType, []byte) { return MsgAck, nil })
	p := NewPeer(addr)
	defer p.Close()
	if _, err := p.Call(MsgMapGet, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the peer's connection out from under it; the next call must
	// redial transparently.
	p.mu.Lock()
	p.conn.Close()
	p.mu.Unlock()
	if _, err := p.Call(MsgMapGet, nil); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	b.Close()
	if _, err := p.Call(MsgMapGet, nil); err == nil {
		t.Fatal("call against closed bus succeeded")
	}
}
