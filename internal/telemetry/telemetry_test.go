package telemetry

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20,
		1<<40 + 12345, 1<<63 + 1, ^uint64(0)}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if up := BucketUpper(i); v > up {
			t.Errorf("value %d above its bucket upper bound %d (bucket %d)", v, up, i)
		}
		if i > 0 {
			if prev := BucketUpper(i - 1); v <= prev {
				t.Errorf("value %d not above previous bucket's upper bound %d", v, prev)
			}
		}
	}
	// Bucket upper bounds must be strictly increasing.
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not increasing at %d: %d <= %d", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d", got)
	}
	checks := []struct {
		q   float64
		min uint64
		max uint64
	}{
		{0.50, 450, 560}, // log buckets: <= 1/16 relative error
		{0.99, 900, 1056},
		{0.999, 930, 1056},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.min || got > c.max {
			t.Errorf("Quantile(%v) = %d, want in [%d, %d]", c.q, got, c.min, c.max)
		}
	}
	s := h.Snapshot()
	if s.Max() < 1000 || s.Max() > 1056 {
		t.Errorf("Max = %d", s.Max())
	}
	if m := s.Mean(); m < 499 || m > 502 {
		t.Errorf("Mean = %v", m)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if q := s.Quantile(0.25); q != 10 {
		t.Errorf("merged p25 = %d, want 10", q)
	}
	if q := s.Quantile(0.9); q < 1000 {
		t.Errorf("merged p90 = %d, want >= 1000", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Observe(uint64(r.Intn(1 << 20)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("lost observations: %d != %d", got, goroutines*each)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("addrkv_ops_total", "ops served", Labels{"shard": "0"})
	c.Add(5)
	c2 := reg.Counter("addrkv_ops_total", "ops served", Labels{"shard": "1"})
	c2.Add(7)
	g := reg.Gauge("addrkv_hit_rate", "fast-path hit rate", nil)
	g.Set(0.75)
	reg.GaugeFunc("addrkv_keys", "stored keys", Labels{"shard": "0"}, func() float64 { return 42 })
	h := reg.Histogram("addrkv_latency_seconds", "command latency", 1e-9, Labels{"cmd": "get"})
	h.Observe(1500) // 1.5us
	h.Observe(3000)

	hookRan := false
	reg.OnScrape(func() { hookRan = true })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !hookRan {
		t.Error("scrape hook not run")
	}
	for _, want := range []string{
		"# HELP addrkv_ops_total ops served",
		"# TYPE addrkv_ops_total counter",
		`addrkv_ops_total{shard="0"} 5`,
		`addrkv_ops_total{shard="1"} 7`,
		"# TYPE addrkv_hit_rate gauge",
		"addrkv_hit_rate 0.75",
		`addrkv_keys{shard="0"} 42`,
		"# TYPE addrkv_latency_seconds histogram",
		`addrkv_latency_seconds_bucket{cmd="get",le="+Inf"} 2`,
		`addrkv_latency_seconds_count{cmd="get"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear exactly once per family.
	if n := strings.Count(out, "# TYPE addrkv_ops_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
	// Histogram cumulative buckets must be non-decreasing and end at
	// the sample count.
	if !strings.Contains(out, `le="4.096e-06"`) {
		t.Errorf("expected a power-of-two microsecond bucket boundary:\n%s", out)
	}
}

func TestRegistryTypeClash(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("type clash not detected")
		}
	}()
	reg.Gauge("m", "h", nil)
}

func TestSlowlogKeepsSlowest(t *testing.T) {
	l := NewSlowlog(3)
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8}
	for i, d := range durs {
		l.Note(SlowlogEntry{Duration: d * time.Microsecond, Args: []string{"GET", "k"}, Shard: i})
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	es := l.Entries(0)
	if len(es) != 3 || es[0].Duration != 9*time.Microsecond ||
		es[1].Duration != 8*time.Microsecond || es[2].Duration != 7*time.Microsecond {
		t.Fatalf("wrong slowest set: %+v", es)
	}
	// A fast command must be rejected without changing the set.
	if l.Note(SlowlogEntry{Duration: 1 * time.Microsecond}) {
		t.Error("fast command recorded into a full slowlog")
	}
	// Entries(max) truncates.
	if got := len(l.Entries(2)); got != 2 {
		t.Fatalf("Entries(2) returned %d", got)
	}
	// IDs keep counting across Reset.
	maxID := es[0].ID
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	l.Note(SlowlogEntry{Duration: time.Millisecond})
	if es := l.Entries(0); len(es) != 1 || es[0].ID <= maxID {
		t.Fatalf("ids did not keep counting: %+v", es)
	}
}

func TestSlowlogConcurrent(t *testing.T) {
	l := NewSlowlog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Note(SlowlogEntry{Duration: time.Duration(i ^ g*7919)})
			}
		}(g)
	}
	wg.Wait()
	es := l.Entries(0)
	if len(es) != 16 {
		t.Fatalf("Len = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Duration > es[i-1].Duration {
			t.Fatal("entries not sorted slowest-first")
		}
	}
}

func TestFeed(t *testing.T) {
	f := NewFeed()
	if f.Active() {
		t.Fatal("fresh feed active")
	}
	f.Publish("dropped-on-floor") // no subscribers: no-op
	id, ch := f.Subscribe(2)
	if !f.Active() || f.Subscribers() != 1 {
		t.Fatal("subscriber not counted")
	}
	f.Publish("one")
	f.Publish("two")
	f.Publish("overflow") // buffer of 2 is full: dropped
	if got := <-ch; got != "one" {
		t.Fatalf("got %q", got)
	}
	if got := <-ch; got != "two" {
		t.Fatalf("got %q", got)
	}
	if f.Dropped() != 1 {
		t.Fatalf("Dropped = %d", f.Dropped())
	}
	f.Unsubscribe(id)
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed on unsubscribe")
	}
	if f.Active() {
		t.Fatal("feed still active")
	}
	f.Unsubscribe(id) // double-unsubscribe is a no-op
}

func TestSnapshotWriteFile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i * 100)
	}
	s := &Snapshot{
		Name:   "fig11",
		Kind:   "harness",
		Params: map[string]any{"keys": 1000},
		Runs: []RunRecord{{
			Spec: "1000/64/zipf/stlt/chainhash", Ops: 5000, Cycles: 123456,
			CyclesPerOp: 24.7,
		}},
		Tables: []TableData{{
			Title: "demo", Columns: []string{"a", "b"},
			Rows: [][]string{{"1", "2"}},
		}},
		Latency: map[string]Quantiles{"op_cycles": QuantilesOf(h.Snapshot())},
	}
	path := filepath.Join(t.TempDir(), "BENCH_fig11.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "fig11" || back.Runs[0].Cycles != 123456 ||
		back.Tables[0].Rows[0][1] != "2" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if q := back.Latency["op_cycles"]; q.Count != 100 || q.P50 == 0 {
		t.Fatalf("latency quantiles lost: %+v", q)
	}
}
