package telemetry

import (
	"encoding/json"
	"os"
)

// Quantiles summarizes a histogram for JSON output.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

// QuantilesOf summarizes a histogram snapshot.
func QuantilesOf(s HistSnapshot) Quantiles {
	return Quantiles{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max(),
	}
}

// RunRecord captures the modeled outcome of one simulation run — the
// unit of the BENCH_<exp>.json perf trajectory. Cycle counts are the
// engine's own deterministic counters, so a record is bit-for-bit
// reproducible for a given spec regardless of whether telemetry was
// attached.
type RunRecord struct {
	// Spec is the harness's canonical run key
	// (keys/valueSize/dist/mode/index/...).
	Spec           string  `json:"spec"`
	Ops            uint64  `json:"ops"`
	Cycles         uint64  `json:"cycles"`
	CyclesPerOp    float64 `json:"cycles_per_op"`
	FastPathHits   uint64  `json:"fast_path_hits"`
	TableMissRate  float64 `json:"table_miss_rate"`
	TLBMissesPerOp float64 `json:"tlb_misses_per_op"`
	PageWalksPerOp float64 `json:"page_walks_per_op"`
	LLCMissesPerOp float64 `json:"llc_misses_per_op"`
}

// TableData is the JSON form of a rendered result table.
type TableData struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Snapshot is a self-contained JSON benchmark artifact: what ran, the
// per-run modeled counters, the rendered tables, and any latency
// distributions gathered along the way.
type Snapshot struct {
	// Name identifies the artifact (experiment id, "replay", ...).
	Name string `json:"name"`
	// Kind is the producer: "harness", "replay", or "server".
	Kind string `json:"kind"`
	// UnixTime stamps the run (0 where determinism matters more).
	UnixTime int64 `json:"unix_time,omitempty"`
	// Params records the knobs the run was shaped by.
	Params map[string]any `json:"params,omitempty"`
	// Runs holds one record per simulation run, in execution order.
	Runs []RunRecord `json:"runs,omitempty"`
	// Tables holds the rendered result tables.
	Tables []TableData `json:"tables,omitempty"`
	// Latency maps a distribution name ("op_cycles", "wall_ns") to its
	// quantile summary.
	Latency map[string]Quantiles `json:"latency,omitempty"`
}

// Marshal renders the snapshot as indented JSON with a trailing
// newline.
func (s *Snapshot) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	b, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
