package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: values below 16 get one exact bucket each;
// larger values land in subBuckets log-spaced sub-buckets per
// power-of-two octave, so the relative quantile error is bounded by
// 1/subBuckets (~6%) at any magnitude. The layout is fixed at compile
// time, which keeps Observe to two atomic adds and an increment with
// no allocation — cheap enough to sit on the per-command hot path.
const (
	subBuckets  = 16
	subShift    = 4 // log2(subBuckets)
	firstOctave = 4 // 2^4 == subBuckets: first non-exact octave
	// NumBuckets covers the full uint64 range.
	NumBuckets = subBuckets + (64-firstOctave)*subBuckets
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1 // firstOctave..63
	sub := (v >> (e - subShift)) & (subBuckets - 1)
	return subBuckets + int(e-firstOctave)*subBuckets + int(sub)
}

// BucketUpper returns the largest value that falls into bucket i.
func BucketUpper(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	o := uint(i-subBuckets)/subBuckets + firstOctave
	s := uint64(uint(i-subBuckets) % subBuckets)
	lower := uint64(1)<<o + s<<(o-subShift)
	return lower + 1<<(o-subShift) - 1
}

// Histogram is a lock-free log-bucketed histogram of uint64 samples
// (latencies in nanoseconds, op costs in cycles). All methods are safe
// for concurrent use; Observe never blocks.
type Histogram struct {
	labels Labels
	// scale converts stored sample units into the exported unit when
	// rendering Prometheus text (e.g. 1e-9 for nanoseconds → seconds).
	scale   float64
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records n samples of value v in one shot — three atomic
// adds total instead of 3n. Pipelined clients use it to attribute one
// measured batch round-trip to every op the batch carried without
// per-op atomics on the hot path.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bucketIndex(v)].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. It is not atomic with respect to
// concurrent Observe calls: samples landing mid-reset may survive or
// vanish, which is acceptable for a stats-window reset (RESETSTATS).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// Snapshot copies the histogram counters at one (approximate) instant.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the approximate q-quantile (0 < q <= 1) of the
// recorded samples.
func (h *Histogram) Quantile(q float64) uint64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable
// across shards.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds o into s (for aggregating per-shard histograms).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile sample (exact for values < 16, within 1/16 above).
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket.
func (s HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Mean returns the arithmetic mean of the recorded samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
