// Package telemetry is the observability layer of the addrkv server
// stack: a lock-free metrics registry (atomic counters, gauges, and
// log-bucketed histograms) with Prometheus text-format rendering, a
// slowlog of the slowest commands, a MONITOR-style command feed, and
// JSON benchmark snapshots.
//
// Everything on the record path is a handful of atomic operations, so
// instrumentation can sit inside the per-shard serving loop without
// perturbing the simulated timing: telemetry only ever *reads* the
// engine's counters, never charges cycles, which keeps telemetry-on
// runs bit-for-bit identical to telemetry-off runs.
//
// Histograms are sharded per core by the callers (one histogram per
// shard), mirroring how the engines themselves are sharded: each
// serving goroutine then touches only cache lines of its own shard's
// histogram, and aggregate views are built by merging snapshots at
// read time (INFO, /metrics scrape) instead of contending at write
// time.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant Prometheus labels attached to one metric
// instance (e.g. {shard="3"} or {cmd="get"}).
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith appends extra label pairs (for histogram "le").
func (l Labels) renderWith(extraK, extraV string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	labels Labels
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64.
type Gauge struct {
	labels Labels
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	labels Labels
	f      func() float64
}

// family groups all instances of one metric name under a shared HELP
// and TYPE header, as the Prometheus exposition format requires.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	counters   []*Counter
	gauges     []*Gauge
	gaugeFns   []gaugeFunc
	histograms []*Histogram
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format. Registration is expected at startup;
// metric updates are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter registers (or extends a family with) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, "counter")
	c := &Counter{labels: labels}
	r.mu.Lock()
	f.counters = append(f.counters, c)
	r.mu.Unlock()
	return c
}

// Gauge registers a settable gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, "gauge")
	g := &Gauge{labels: labels}
	r.mu.Lock()
	f.gauges = append(f.gauges, g)
	r.mu.Unlock()
	return g
}

// GaugeFunc registers a gauge computed by f at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	fam := r.family(name, help, "gauge")
	r.mu.Lock()
	fam.gaugeFns = append(fam.gaugeFns, gaugeFunc{labels: labels, f: f})
	r.mu.Unlock()
}

// Histogram registers a histogram. scale converts stored sample units
// to the exported unit (1e-9 renders nanosecond samples as seconds;
// use 1 for dimensionless samples such as cycles).
func (r *Registry) Histogram(name, help string, scale float64, labels Labels) *Histogram {
	f := r.family(name, help, "histogram")
	h := &Histogram{labels: labels, scale: scale}
	r.mu.Lock()
	f.histograms = append(f.histograms, h)
	r.mu.Unlock()
	return h
}

// OnScrape registers a hook run at the start of every WritePrometheus
// call — the place to refresh cached engine snapshots that several
// GaugeFuncs then read.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, c := range f.counters {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels.render(), c.Load()); err != nil {
				return err
			}
		}
		for _, g := range f.gauges {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, g.labels.render(), g.Load()); err != nil {
				return err
			}
		}
		for _, gf := range f.gaugeFns {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, gf.labels.render(), gf.f()); err != nil {
				return err
			}
		}
		for _, h := range f.histograms {
			if err := writeHistogram(w, f.name, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram with power-of-two "le"
// boundaries, coalescing the sub-octave buckets (976 internal buckets
// would drown a scraper; ~30 octave boundaries carry the shape).
// Counts are of samples strictly below each boundary.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	s := h.Snapshot()
	scale := h.scale
	if scale == 0 {
		scale = 1
	}
	first, last := -1, -1
	for i, c := range s.Buckets {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first >= 0 {
		lo, hi := BucketUpper(first), BucketUpper(last)
		var cum uint64
		idx := 0
		for k := 0; k < 64; k++ {
			bound := uint64(1) << k
			for idx < NumBuckets && BucketUpper(idx) < bound {
				cum += s.Buckets[idx]
				idx++
			}
			if bound <= lo {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, h.labels.renderWith("le", formatFloat(float64(bound)*scale)), cum); err != nil {
				return err
			}
			if bound > hi {
				break
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.labels.renderWith("le", "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, h.labels.render(), float64(s.Sum)*scale); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels.render(), s.Count)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
