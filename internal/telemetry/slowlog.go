package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SlowlogEntry records one slow command.
type SlowlogEntry struct {
	// ID is a monotonically increasing entry id (survives RESET, like
	// Redis's slowlog ids).
	ID int64
	// UnixMicro is the wall-clock completion time.
	UnixMicro int64
	// Duration is the real (wall-clock) service time of the command.
	Duration time.Duration
	// Args is the command argument list (possibly truncated by the
	// caller before recording).
	Args []string
	// Shard is the home shard of the command's key (-1 for keyless
	// commands).
	Shard int
	// Cycles is the modeled cycle cost the engine charged for the
	// command (0 for commands that never reach an engine).
	Cycles uint64
	// Detail is a free-form cycle/outcome breakdown
	// ("tlb_misses=2 page_walks=1 fast_hit=true").
	Detail string
}

// Slowlog keeps the N slowest commands seen since the last Reset —
// "slowest-so-far" semantics rather than Redis's threshold filter, so
// SLOWLOG GET is informative even when every command is fast. The
// hot-path cost for a command that does not qualify is one atomic
// load and a compare.
type Slowlog struct {
	capacity int
	// floorNS is the minimum duration worth locking for: -1 until the
	// log is full, then the smallest recorded duration.
	floorNS atomic.Int64
	mu      sync.Mutex
	// entries is a min-heap on Duration.
	entries []SlowlogEntry
	nextID  int64
}

// NewSlowlog creates a slowlog keeping the capacity slowest commands.
func NewSlowlog(capacity int) *Slowlog {
	if capacity < 1 {
		capacity = 1
	}
	l := &Slowlog{capacity: capacity}
	l.floorNS.Store(-1)
	return l
}

// Qualifies reports whether a command of duration d would currently
// make it into the log — the same one-atomic-load check Note performs
// first. Callers that must *build* an entry (format its arguments)
// use this to skip the construction entirely for ops under the floor,
// keeping the steady-state record path allocation-free.
func (l *Slowlog) Qualifies(d time.Duration) bool {
	return int64(d) > l.floorNS.Load()
}

// Note offers an entry to the log; it is recorded iff it is slower
// than the current floor (always, while the log is not yet full).
// The entry's ID is assigned on recording.
func (l *Slowlog) Note(e SlowlogEntry) bool {
	if int64(e.Duration) <= l.floorNS.Load() {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Re-check under the lock: the floor may have moved.
	if len(l.entries) == l.capacity && e.Duration <= l.entries[0].Duration {
		return false
	}
	e.ID = l.nextID
	l.nextID++
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
		l.siftUp(len(l.entries) - 1)
		if len(l.entries) == l.capacity {
			l.floorNS.Store(int64(l.entries[0].Duration))
		}
		return true
	}
	l.entries[0] = e
	l.siftDown(0)
	l.floorNS.Store(int64(l.entries[0].Duration))
	return true
}

func (l *Slowlog) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.entries[p].Duration <= l.entries[i].Duration {
			return
		}
		l.entries[p], l.entries[i] = l.entries[i], l.entries[p]
		i = p
	}
}

func (l *Slowlog) siftDown(i int) {
	n := len(l.entries)
	for {
		least, left, right := i, 2*i+1, 2*i+2
		if left < n && l.entries[left].Duration < l.entries[least].Duration {
			least = left
		}
		if right < n && l.entries[right].Duration < l.entries[least].Duration {
			least = right
		}
		if least == i {
			return
		}
		l.entries[i], l.entries[least] = l.entries[least], l.entries[i]
		i = least
	}
}

// Entries returns the recorded entries, slowest first (newest first on
// ties), up to max (<= 0 for all).
func (l *Slowlog) Entries(max int) []SlowlogEntry {
	l.mu.Lock()
	out := append([]SlowlogEntry{}, l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].ID > out[j].ID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Len returns the number of recorded entries.
func (l *Slowlog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Reset clears the log (ids keep counting).
func (l *Slowlog) Reset() {
	l.mu.Lock()
	l.entries = l.entries[:0]
	l.floorNS.Store(-1)
	l.mu.Unlock()
}
