package telemetry

import (
	"sync"
	"sync/atomic"
)

// Feed is a broadcast channel for the MONITOR command: every dispatched
// command is published as one line to all subscribers. When nobody is
// subscribed, Publish is a single atomic load; with subscribers it is
// a non-blocking send per subscriber — a slow MONITOR client drops
// lines (counted) instead of stalling the serving path.
type Feed struct {
	active  atomic.Int32
	dropped atomic.Uint64
	mu      sync.Mutex
	subs    map[uint64]chan string
	nextID  uint64
}

// NewFeed creates an empty feed.
func NewFeed() *Feed { return &Feed{subs: map[uint64]chan string{}} }

// Active reports whether any subscriber is attached (the hot-path
// check before formatting a line).
func (f *Feed) Active() bool { return f.active.Load() > 0 }

// Subscribers returns the current subscriber count.
func (f *Feed) Subscribers() int { return int(f.active.Load()) }

// Dropped returns the number of lines dropped on full subscriber
// buffers.
func (f *Feed) Dropped() uint64 { return f.dropped.Load() }

// Publish sends line to every subscriber, dropping on full buffers.
func (f *Feed) Publish(line string) {
	if f.active.Load() == 0 {
		return
	}
	f.mu.Lock()
	for _, ch := range f.subs {
		select {
		case ch <- line:
		default:
			f.dropped.Add(1)
		}
	}
	f.mu.Unlock()
}

// Subscribe attaches a new subscriber with the given channel buffer.
func (f *Feed) Subscribe(buffer int) (id uint64, ch <-chan string) {
	if buffer < 1 {
		buffer = 1
	}
	c := make(chan string, buffer)
	f.mu.Lock()
	id = f.nextID
	f.nextID++
	f.subs[id] = c
	f.mu.Unlock()
	f.active.Add(1)
	return id, c
}

// Unsubscribe detaches a subscriber and closes its channel.
func (f *Feed) Unsubscribe(id uint64) {
	f.mu.Lock()
	c, ok := f.subs[id]
	if ok {
		delete(f.subs, id)
	}
	f.mu.Unlock()
	if ok {
		f.active.Add(-1)
		close(c)
	}
}
