package slb

import (
	"fmt"
	"testing"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
	"addrkv/internal/hashfn"
)

func newSLB(entries int) (*SLB, *cpu.Machine) {
	m := cpu.New(arch.DefaultMachineParams())
	return New(m, hashfn.XXH3, 7, entries), m
}

func k(i int) []byte { return []byte(fmt.Sprintf("slbkey-%06d-abcdefghi", i)) }

func TestLookupMissThenAdmit(t *testing.T) {
	s, m := newSLB(1024)
	va := m.AS.Alloc(64)

	if _, ok := s.Lookup(k(1)); ok {
		t.Fatal("hit in empty SLB")
	}
	s.OnMiss(k(1), va)
	got, ok := s.Lookup(k(1))
	if !ok || got != va {
		t.Fatalf("Lookup after admit = %v,%v", got, ok)
	}
	if s.Stats.Inserts != 1 {
		t.Fatalf("Inserts = %d", s.Stats.Inserts)
	}
}

func TestFrequencyAdmissionProtectsHotEntries(t *testing.T) {
	s, m := newSLB(64) // small: 1-2 sets
	hot := make([]arch.Addr, Ways)
	// Fill one bucket's worth with hot keys and heat them.
	for i := range hot {
		hot[i] = m.AS.Alloc(64)
		s.OnMiss(k(i), hot[i])
	}
	for n := 0; n < 30; n++ {
		for i := range hot {
			s.Lookup(k(i))
		}
	}
	// A cold stream of distinct keys must mostly be rejected rather
	// than evicting the hot set.
	for i := 100; i < 300; i++ {
		s.OnMiss(k(i), m.AS.Alloc(64))
	}
	if s.Stats.Rejected == 0 {
		t.Fatal("admission never rejected cold keys")
	}
	hits := 0
	for i := range hot {
		if va, ok := s.Lookup(k(i)); ok && va == hot[i] {
			hits++
		}
	}
	if hits < Ways/2 {
		t.Fatalf("only %d/%d hot entries survived the cold flood", hits, Ways)
	}
}

func TestInvalidateAndFalseHit(t *testing.T) {
	s, m := newSLB(1024)
	va := m.AS.Alloc(64)
	s.OnMiss(k(9), va)
	if _, ok := s.Lookup(k(9)); !ok {
		t.Fatal("setup miss")
	}
	s.Invalidate(k(9))
	if _, ok := s.Lookup(k(9)); ok {
		t.Fatal("entry survived Invalidate")
	}

	// ReportFalseHit drops the entry and corrects the stats.
	s.OnMiss(k(9), va)
	s.Lookup(k(9))
	hits := s.Stats.Hits
	s.ReportFalseHit(k(9))
	if s.Stats.FalseHits != 1 || s.Stats.Hits != hits-1 {
		t.Fatalf("false-hit accounting: %+v", s.Stats)
	}
	if _, ok := s.Lookup(k(9)); ok {
		t.Fatal("entry survived ReportFalseHit")
	}
}

func TestEntriesAndSpace(t *testing.T) {
	s, _ := newSLB(10000)
	if s.Entries()%Ways != 0 {
		t.Fatalf("entries %d not a multiple of ways", s.Entries())
	}
	if s.Entries() > 10000 {
		t.Fatalf("entries %d exceed request", s.Entries())
	}
	perEntry := float64(s.SizeBytes()) / float64(s.Entries())
	// ~2.5x an STLT row (16B), as in Figure 14's space accounting.
	if perEntry < 30 || perEntry > 55 {
		t.Fatalf("space per entry = %.1f bytes", perEntry)
	}
}

func TestLookupChargesCycles(t *testing.T) {
	s, m := newSLB(1024)
	before := m.Cycles()
	s.Lookup(k(3))
	if m.Cycles() == before {
		t.Fatal("software lookup charged nothing")
	}
}

func TestMissRate(t *testing.T) {
	s, m := newSLB(1024)
	va := m.AS.Alloc(64)
	s.OnMiss(k(1), va)
	s.Lookup(k(1)) // hit
	s.Lookup(k(2)) // miss
	s.Lookup(k(3)) // miss
	// 3 lookups (the OnMiss path followed an initial Lookup? no — we
	// called Lookup 3 times total here plus none in OnMiss).
	got := s.Stats.MissRate()
	want := 1 - 1.0/3.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("MissRate = %v, want %v", got, want)
	}
}

func TestTagAliasReturnsSomeVA(t *testing.T) {
	// 16-bit tags can alias; the contract is "caller validates".
	// Construct the scenario directly: two keys in the same bucket
	// with equal tags are rare, so instead verify that a wrong-VA
	// result is recoverable via ReportFalseHit without corrupting
	// other entries.
	s, m := newSLB(256)
	vaA := m.AS.Alloc(64)
	vaB := m.AS.Alloc(64)
	s.OnMiss(k(1), vaA)
	s.OnMiss(k(2), vaB)
	s.ReportFalseHit(k(1))
	if va, ok := s.Lookup(k(2)); !ok || va != vaB {
		t.Fatal("unrelated entry damaged by ReportFalseHit")
	}
}
