// Package slb implements the Search Lookaside Buffer (Wu, Ni & Jiang,
// SoCC 2017), the paper's software-caching comparison point: a purely
// software cache of record *virtual addresses* in front of an indexing
// structure. Unlike the STLT it has no architectural support — every
// probe is an ordinary load, and the record access that follows a hit
// still pays the normal TLB-miss/page-walk cost, which is exactly the
// gap the paper's evaluation isolates.
//
// Layout follows the SLB design: the cache table is an array of
// cache-line-sized (64 B) buckets, each holding 7 tagged pointers
// {16-bit tag | 48-bit VA} plus one metadata word with 7 one-byte
// access-frequency counters — so a whole set probe costs a single line
// access. A separate log table, 4x the entry count, holds 8-byte
// {tag, count} slots that track the frequency of *missing* keys for
// admission. Per entry that is 64/7 + 4*8 ≈ 41 bytes, ~2.5x the
// STLT's 16-byte rows, matching the paper's space accounting in
// Figure 14.
package slb

import (
	"encoding/binary"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
	"addrkv/internal/hashfn"
)

const (
	// Ways is the cache table associativity (7-way per the SLB paper).
	Ways = 7
	// BucketSize is one cache-table set: 7 tagged pointers + metadata.
	BucketSize = 64
	// LogEntrySize is one log-table slot {tag uint32, count uint32}.
	LogEntrySize = 8
	// LogFactor is the log-table size relative to cache entries.
	LogFactor = 4

	// scanCost is the software compute cost of probing a bucket: a
	// branchy 7-iteration compare loop with a likely mispredict.
	scanCost arch.Cycles = 16
	// logCost is the compute cost of the log-table read-modify-write.
	logCost arch.Cycles = 4

	tagBits = 16
	vaMask  = 1<<48 - 1
)

// BytesPerEntry is the amortized space cost per cache entry including
// the log table share (~41 B, 2.5x an STLT row).
const BytesPerEntry = BucketSize/Ways + LogFactor*LogEntrySize

// Stats counts SLB events.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	FalseHits uint64 // tag matched but key validation failed
	Inserts   uint64
	Rejected  uint64 // admission declined (victim hotter)
}

// MissRate returns the miss ratio over the stats window.
func (st Stats) MissRate() float64 {
	if st.Lookups == 0 {
		return 0
	}
	return 1 - float64(st.Hits)/float64(st.Lookups)
}

// SLB is the software cache. Both tables live in the simulated user
// heap and are probed with timed, virtually-addressed loads.
type SLB struct {
	m    *cpu.Machine
	hash hashfn.Func
	seed uint64

	table   arch.Addr // cache table (sets * 64 B)
	logTab  arch.Addr // log table
	sets    int       // power of two
	entries int
	logLen  int // log slots, power of two

	Stats Stats
}

// New builds an SLB with approximately the given number of cache-table
// entries (rounded to a power-of-two bucket count), sharing the fast
// hash function used by the STLT fast path for fair comparison.
func New(m *cpu.Machine, h hashfn.Func, seed uint64, entries int) *SLB {
	sets := 1
	for sets*2*Ways <= entries {
		sets *= 2
	}
	logLen := 1
	for logLen < sets*Ways*LogFactor {
		logLen *= 2
	}
	s := &SLB{m: m, hash: h, seed: seed, sets: sets, entries: sets * Ways, logLen: logLen}
	s.table = m.AS.Alloc(sets * BucketSize)
	s.logTab = m.AS.Alloc(logLen * LogEntrySize)
	return s
}

// Entries returns the actual cache-table entry count.
func (s *SLB) Entries() int { return s.entries }

// SizeBytes returns the combined footprint of both tables.
func (s *SLB) SizeBytes() int { return s.sets*BucketSize + s.logLen*LogEntrySize }

func (s *SLB) bucketVA(h uint64) arch.Addr {
	return s.table + arch.Addr(int(h>>tagBits)&(s.sets-1)*BucketSize)
}

func (s *SLB) logVA(h uint64) arch.Addr {
	idx := int(h>>20) & (s.logLen - 1)
	return s.logTab + arch.Addr(idx*LogEntrySize)
}

// tagOf derives the 16-bit entry tag from the hash; tag 0 means empty,
// so hashes that map to 0 are nudged.
func tagOf(h uint64) uint64 {
	t := h & (1<<tagBits - 1)
	if t == 0 {
		t = 1
	}
	return t
}

func packEntry(tag uint64, va arch.Addr) uint64 { return tag<<48 | uint64(va)&vaMask }
func entryTag(e uint64) uint64                  { return e >> 48 }
func entryVA(e uint64) arch.Addr                { return arch.Addr(e & vaMask) }

// Lookup probes the cache table for the key's record VA: one bucket
// line read, tag compares, and a frequency-byte bump on hit. The
// caller must validate the returned VA against the key and call
// ReportFalseHit if validation fails.
func (s *SLB) Lookup(key []byte) (arch.Addr, bool) {
	s.Stats.Lookups++
	m := s.m
	m.Compute(s.hash.Cost(len(key)), arch.CatHash)
	h := s.hash.Hash(key, s.seed)

	m.Compute(scanCost, arch.CatTraverse)
	bva := s.bucketVA(h)
	var buf [BucketSize]byte
	m.Read(bva, buf[:], arch.KindSLB, arch.CatTraverse)

	tag := tagOf(h)
	for w := 0; w < Ways; w++ {
		e := binary.LittleEndian.Uint64(buf[w*8:])
		if e != 0 && entryTag(e) == tag {
			// Saturating frequency bump in the metadata byte (a
			// store to the line the scan just loaded).
			if f := buf[56+w]; f < 255 {
				m.Write(bva+arch.Addr(56+w), []byte{f + 1}, arch.KindSLB, arch.CatTraverse)
			}
			s.Stats.Hits++
			return entryVA(e), true
		}
	}
	return 0, false
}

// ReportFalseHit records a validation failure after Lookup returned a
// VA (stale or aliased entry); the entry is dropped.
func (s *SLB) ReportFalseHit(key []byte) {
	s.Stats.FalseHits++
	s.Stats.Hits--
	s.dropEntry(key)
}

// Invalidate drops the entry for key (record moved or deleted).
func (s *SLB) Invalidate(key []byte) { s.dropEntry(key) }

func (s *SLB) dropEntry(key []byte) {
	h := s.hash.Hash(key, s.seed)
	bva := s.bucketVA(h)
	tag := tagOf(h)
	for w := 0; w < Ways; w++ {
		eva := bva + arch.Addr(w*8)
		if e := s.m.AS.ReadU64(eva); e != 0 && entryTag(e) == tag {
			s.m.WriteU64(eva, 0, arch.KindSLB, arch.CatTraverse)
			s.m.Write(bva+arch.Addr(56+w), []byte{0}, arch.KindSLB, arch.CatTraverse)
		}
	}
}

// OnMiss records the slow-path resolution of key to va: it bumps the
// key's log-table counter and admits the entry if it is now at least
// as hot as the coldest entry of its bucket (frequency-based
// admission, SLB's advantage over naive software caching).
func (s *SLB) OnMiss(key []byte, va arch.Addr) {
	m := s.m
	h := s.hash.Hash(key, s.seed) // recomputed functionally; cost charged in Lookup

	// Log-table RMW.
	m.Compute(logCost, arch.CatTraverse)
	lva := s.logVA(h)
	var lb [LogEntrySize]byte
	m.Read(lva, lb[:], arch.KindSLB, arch.CatTraverse)
	ltag := uint32(h >> 32)
	var freq uint32
	if binary.LittleEndian.Uint32(lb[0:]) == ltag {
		freq = binary.LittleEndian.Uint32(lb[4:]) + 1
	} else {
		freq = 1 // conflict in the log table resets the count
	}
	binary.LittleEndian.PutUint32(lb[0:], ltag)
	binary.LittleEndian.PutUint32(lb[4:], freq)
	m.Write(lva, lb[:], arch.KindSLB, arch.CatTraverse)

	// Admission against the coldest way (bucket is L1-resident after
	// Lookup's probe).
	bva := s.bucketVA(h)
	var buf [BucketSize]byte
	m.Read(bva, buf[:], arch.KindSLB, arch.CatTraverse)
	victim, victimFreq := -1, uint32(256)
	for w := 0; w < Ways; w++ {
		if binary.LittleEndian.Uint64(buf[w*8:]) == 0 {
			victim, victimFreq = w, 0
			break
		}
		if f := uint32(buf[56+w]); f < victimFreq {
			victim, victimFreq = w, f
		}
	}
	cand := freq
	if cand > 255 {
		cand = 255
	}
	// Admit only when strictly hotter than the victim: a cold stream
	// must not churn entries of equal (or greater) observed frequency.
	if cand <= victimFreq {
		s.Stats.Rejected++
		return
	}
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], packEntry(tagOf(h), va))
	m.Write(bva+arch.Addr(victim*8), eb[:], arch.KindSLB, arch.CatTraverse)
	m.Write(bva+arch.Addr(56+victim), []byte{byte(cand)}, arch.KindSLB, arch.CatTraverse)
	s.Stats.Inserts++
}
