// Package hashfn provides the five hash functions evaluated in the
// paper (Table IV) — SipHash-2-4, MurmurHash64A, xxh64, an xxh3-style
// variant, and djb2 — implemented from scratch, together with a
// cycle-cost model for each.
//
// Functional behaviour (the actual 64-bit hash values) drives the
// conflict behaviour of the KV hash tables and the STLT, so the
// distribution quality differences the paper discusses (Figure 18:
// sipHash has the lowest STLT miss rate, murmurHash the highest) emerge
// from the real functions. Timing is charged from the cost model,
// which follows the paper's methodology of measuring a software
// implementation and using that latency ("We derive the associated
// latency by implementing the function in software").
package hashfn

import (
	"fmt"

	"addrkv/internal/arch"
)

// Func couples a hash implementation with its cost model.
type Func struct {
	// Name is the identifier used in the paper's Table IV.
	Name string
	// Hash computes a 64-bit hash of key with the given seed.
	Hash func(key []byte, seed uint64) uint64
	// Cost returns the compute latency of hashing an n-byte key.
	Cost func(n int) arch.Cycles
}

// linearCost builds a setup+per-byte cycle model.
func linearCost(setup, perByteNum, perByteDen int) func(int) arch.Cycles {
	return func(n int) arch.Cycles {
		return arch.Cycles(setup + n*perByteNum/perByteDen)
	}
}

// The cost constants are calibrated from userspace measurements of the
// reference C implementations on short (24-byte) keys, expressed at
// 2.66 GHz. They preserve the ordering the paper relies on: sipHash is
// several times more expensive than the non-cryptographic functions,
// djb2 pays a byte-at-a-time loop, and xxh3 is the cheapest.
var (
	// SipHash is SipHash-2-4, the default hash of Redis, Python and
	// Rust (flood-attack resistant).
	SipHash = Func{Name: "sipHash", Hash: sipHash24, Cost: linearCost(48, 2, 1)}

	// Murmur64A is MurmurHash64A, the default hash of the four
	// kernel benchmarks in the paper.
	Murmur64A = Func{Name: "murmurHash", Hash: murmur64a, Cost: linearCost(12, 1, 2)}

	// XXH64 is the 64-bit xxHash.
	XXH64 = Func{Name: "xxh64", Hash: xxh64, Cost: linearCost(10, 2, 5)}

	// XXH3 is an xxh3-style short-input variant of xxh64 (the
	// paper's default STLT fast-path hash). This implementation is a
	// documented simplification of upstream XXH3: it keeps the
	// one-shot wide multiply-fold structure that makes XXH3 fast on
	// short keys but is not bit-compatible with the reference.
	XXH3 = Func{Name: "xxh3", Hash: xxh3, Cost: linearCost(8, 1, 4)}

	// DJB2 is Bernstein's string hash (hash*33 + c), widened to 64
	// bits.
	DJB2 = Func{Name: "djb2", Hash: djb2, Cost: linearCost(2, 1, 1)}
)

// All lists every provided function, in the paper's Table IV order.
func All() []Func { return []Func{SipHash, Murmur64A, XXH64, DJB2, XXH3} }

// ByName looks a function up by its Table IV name.
func ByName(name string) (Func, error) {
	for _, f := range All() {
		if f.Name == name {
			return f, nil
		}
	}
	return Func{}, fmt.Errorf("hashfn: unknown hash function %q", name)
}
