package hashfn

// murmur64a is Austin Appleby's MurmurHash64A, the 64-bit Murmur2
// variant used as the default hash by the paper's four kernel
// benchmarks (and, historically, by pre-SipHash Redis).
func murmur64a(data []byte, seed uint64) uint64 {
	const m = 0xc6a4a7935bd1e995
	const r = 47

	h := seed ^ uint64(len(data))*m

	n := len(data)
	end := n - n%8
	for i := 0; i < end; i += 8 {
		k := le64(data[i:])
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	tail := data[end:]
	switch len(tail) & 7 {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// djb2 is Bernstein's classic string hash, hash = hash*33 + c, widened
// to 64 bits. It is cheap (one multiply-add per byte) but its
// distribution on structured keys is visibly worse than the mixers
// above, which is the trade-off Figure 18 explores.
func djb2(data []byte, seed uint64) uint64 {
	h := uint64(5381) + seed
	for _, c := range data {
		h = h*33 + uint64(c)
	}
	return h
}
