package hashfn

import "math/bits"

// xxHash primes (Yann Collet).
const (
	prime64_1 = 0x9E3779B185EBCA87
	prime64_2 = 0xC2B2AE3D27D4EB4F
	prime64_3 = 0x165667B19E3779F9
	prime64_4 = 0x85EBCA77C2B2AE63
	prime64_5 = 0x27D4EB2F165667C5
)

// xxh64 is the reference XXH64 algorithm.
func xxh64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime64_1 + prime64_2
		v2 := seed + prime64_2
		v3 := seed
		v4 := seed - prime64_1
		i := 0
		for ; i+32 <= n; i += 32 {
			v1 = xxh64Round(v1, le64(data[i:]))
			v2 = xxh64Round(v2, le64(data[i+8:]))
			v3 = xxh64Round(v3, le64(data[i+16:]))
			v4 = xxh64Round(v4, le64(data[i+24:]))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxh64MergeRound(h, v1)
		h = xxh64MergeRound(h, v2)
		h = xxh64MergeRound(h, v3)
		h = xxh64MergeRound(h, v4)
		data = data[i:]
	} else {
		h = seed + prime64_5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= xxh64Round(0, le64(data))
		h = bits.RotateLeft64(h, 27)*prime64_1 + prime64_4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= le32(data) * prime64_1
		h = bits.RotateLeft64(h, 23)*prime64_2 + prime64_3
		data = data[4:]
	}
	for _, c := range data {
		h ^= uint64(c) * prime64_5
		h = bits.RotateLeft64(h, 11) * prime64_1
	}

	h ^= h >> 33
	h *= prime64_2
	h ^= h >> 29
	h *= prime64_3
	h ^= h >> 32
	return h
}

func xxh64Round(acc, input uint64) uint64 {
	acc += input * prime64_2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime64_1
}

func xxh64MergeRound(acc, val uint64) uint64 {
	acc ^= xxh64Round(0, val)
	return acc*prime64_1 + prime64_4
}

// xxh3 is an XXH3-style short-input hash: a folded 128-bit multiply
// over 16-byte stripes with a final avalanche. It keeps the structure
// that makes upstream XXH3 the fastest choice on short keys (wide
// multiplies, no per-byte loop) but is not bit-compatible with the
// reference implementation; the paper only relies on xxh3 being fast
// and well distributed, both of which hold here.
func xxh3(data []byte, seed uint64) uint64 {
	n := len(data)
	h := seed ^ (uint64(n) * prime64_1)

	for len(data) >= 16 {
		lo := le64(data) ^ (h + prime64_2)
		hi := le64(data[8:]) ^ (h * prime64_3)
		h = mulFold64(lo, hi)
		data = data[16:]
	}
	if len(data) >= 8 {
		h = mulFold64(le64(data)^h, h+prime64_4)
		data = data[8:]
	}
	if len(data) > 0 {
		var m uint64
		for i, c := range data {
			m |= uint64(c) << (8 * uint(i))
		}
		h = mulFold64(m^h, h+prime64_5)
	}

	// XXH3 avalanche.
	h ^= h >> 37
	h *= 0x165667919E3779F9
	h ^= h >> 32
	return h
}

// mulFold64 returns the XOR of the high and low halves of the 128-bit
// product of a and b — the core XXH3 mixing primitive.
func mulFold64(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}
