package hashfn

import "math/bits"

// sipHash24 is SipHash-2-4 (Aumasson & Bernstein, INDOCRYPT 2012): two
// compression rounds per 8-byte word, four finalization rounds. The
// 128-bit key is derived from the 64-bit seed (k0 = seed,
// k1 = seed ^ golden ratio), which preserves the security-relevant
// property the paper cares about — an attacker who does not know the
// seed cannot construct colliding keys.
func sipHash24(data []byte, seed uint64) uint64 {
	k0 := seed
	k1 := seed ^ 0x9e3779b97f4a7c15

	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	round := func() {
		v0 += v1
		v1 = bits.RotateLeft64(v1, 13)
		v1 ^= v0
		v0 = bits.RotateLeft64(v0, 32)
		v2 += v3
		v3 = bits.RotateLeft64(v3, 16)
		v3 ^= v2
		v0 += v3
		v3 = bits.RotateLeft64(v3, 21)
		v3 ^= v0
		v2 += v1
		v1 = bits.RotateLeft64(v1, 17)
		v1 ^= v2
		v2 = bits.RotateLeft64(v2, 32)
	}

	n := len(data)
	end := n - n%8
	for i := 0; i < end; i += 8 {
		m := le64(data[i:])
		v3 ^= m
		round()
		round()
		v0 ^= m
	}

	// Last block: remaining bytes plus the length in the top byte.
	var m uint64 = uint64(n) << 56
	for i := end; i < n; i++ {
		m |= uint64(data[i]) << (8 * uint(i-end))
	}
	v3 ^= m
	round()
	round()
	v0 ^= m

	v2 ^= 0xff
	round()
	round()
	round()
	round()
	return v0 ^ v1 ^ v2 ^ v3
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint64 {
	_ = b[3]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
}
