package hashfn

import (
	"fmt"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestXXH64KnownVectors(t *testing.T) {
	// Canonical XXH64 test vectors (seed 0).
	cases := map[string]uint64{
		"":    0xEF46DB3751D8E999,
		"a":   0xD24EC4F1A98C6E5B,
		"abc": 0x44BC2CF5AD770999,
	}
	for in, want := range cases {
		if got := xxh64([]byte(in), 0); got != want {
			t.Errorf("xxh64(%q) = %#x, want %#x", in, got, want)
		}
	}
}

func TestXXH64LongInput(t *testing.T) {
	// Exercise the 32-byte-stripe path and confirm determinism.
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	h1 := xxh64(data, 1)
	h2 := xxh64(data, 1)
	h3 := xxh64(data, 2)
	if h1 != h2 {
		t.Fatal("xxh64 not deterministic")
	}
	if h1 == h3 {
		t.Fatal("xxh64 ignores seed")
	}
}

func TestAllFunctionsBasicProperties(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			// Deterministic.
			k := []byte("user00000000000000000042")
			if f.Hash(k, 7) != f.Hash(k, 7) {
				t.Fatal("not deterministic")
			}
			// Seed-sensitive (djb2 only adds the seed, but output
			// must still differ).
			if f.Hash(k, 1) == f.Hash(k, 2) {
				t.Fatal("seed has no effect")
			}
			// Length-sensitive.
			if f.Hash(k, 7) == f.Hash(k[:23], 7) {
				t.Fatal("prefix collision on trivial truncation")
			}
			// Cost model: positive and monotonically non-decreasing.
			last := f.Cost(0)
			for n := 1; n <= 128; n *= 2 {
				c := f.Cost(n)
				if c < last {
					t.Fatalf("cost not monotonic at %d", n)
				}
				last = c
			}
		})
	}
}

func TestCostOrdering(t *testing.T) {
	// The orderings the paper relies on (24-byte keys).
	sip := SipHash.Cost(24)
	mur := Murmur64A.Cost(24)
	x3 := XXH3.Cost(24)
	if !(sip > 2*mur) {
		t.Errorf("sipHash (%d) should clearly exceed murmur (%d)", sip, mur)
	}
	if !(x3 <= mur) {
		t.Errorf("xxh3 (%d) should be the cheapest mixer (murmur %d)", x3, mur)
	}
}

// TestAvalanche checks that flipping one input bit flips roughly half
// of the output bits for the mixing hashes (not djb2, which is a weak
// multiplicative hash by design — that weakness is part of Figure 18's
// story).
func TestAvalanche(t *testing.T) {
	for _, f := range []Func{SipHash, Murmur64A, XXH64, XXH3} {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			base := []byte("user00000000000000001234")
			var totalFlips, samples int
			for bit := 0; bit < len(base)*8; bit += 7 {
				mod := append([]byte(nil), base...)
				mod[bit/8] ^= 1 << (bit % 8)
				d := f.Hash(base, 9) ^ f.Hash(mod, 9)
				totalFlips += bits.OnesCount64(d)
				samples++
			}
			mean := float64(totalFlips) / float64(samples)
			if mean < 24 || mean > 40 {
				t.Errorf("avalanche mean %.1f bits, want ~32", mean)
			}
		})
	}
}

// TestDistributionBuckets verifies no catastrophic bucket skew for the
// structured YCSB-style key population.
func TestDistributionBuckets(t *testing.T) {
	const nKeys = 1 << 14
	const buckets = 1 << 8
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			counts := make([]int, buckets)
			for i := 0; i < nKeys; i++ {
				k := []byte(fmt.Sprintf("user%020d", i*2654435761))
				counts[f.Hash(k, 3)&(buckets-1)]++
			}
			mean := nKeys / buckets
			// chi-square-ish bound: allow generous slack; djb2 is the
			// worst but even it should not collapse onto few buckets.
			maxAllowed := mean * 4
			for b, c := range counts {
				if c > maxAllowed {
					t.Fatalf("bucket %d holds %d keys (mean %d)", b, c, mean)
				}
			}
		})
	}
}

func TestSipHashBlockBoundaries(t *testing.T) {
	// Lengths around the 8-byte block boundary must all differ.
	seen := map[uint64]int{}
	for n := 0; n <= 32; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + 1)
		}
		h := sipHash24(data, 11)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func TestByName(t *testing.T) {
	for _, f := range All() {
		got, err := ByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("ByName(%q) failed: %v", f.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestHashQuickDeterminism(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		for _, fn := range All() {
			if fn.Hash(data, seed) != fn.Hash(data, seed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
