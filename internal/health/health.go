// Per-peer liveness tracking: every cluster node runs one Tracker fed
// by heartbeat arrivals (and heartbeat acks), and derives each peer's
// state from how long ago it was last heard:
//
//	ok      — heard within SuspectAfter·Interval
//	suspect — missed SuspectAfter..DownAfter-1 intervals
//	down    — missed DownAfter or more intervals
//
// State is derived lazily from the last-heard stamp at read time, so
// the tracker needs no ticking goroutine and readers never block
// writers: the hot path (a heartbeat arrival) is one mutex-guarded
// stamp update, far off the shard locks and the modeled data path. A
// peer that was never heard from counts from the tracker's start time,
// so a node that never comes up is detected on the same deadline as a
// node that dies.
package health

import (
	"sync"
	"time"
)

// State is one peer's liveness classification.
type State uint8

const (
	// StateOK: heard within the suspicion deadline.
	StateOK State = iota
	// StateSuspect: missed enough heartbeats to distrust, not enough
	// to declare dead. Routing still points at the node.
	StateSuspect
	// StateDown: missed the down deadline; the fleet surfaces report
	// it dead and aggregation drops its series.
	StateDown
)

// String returns the stable wire/text name of the state.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// Config tunes a Tracker.
type Config struct {
	// Interval is the heartbeat period H.
	Interval time.Duration
	// SuspectAfter is how many missed intervals move a peer to
	// suspect (0 = DefaultSuspectAfter).
	SuspectAfter int
	// DownAfter is how many missed intervals (the suspicion threshold
	// K) move a peer to down (0 = DefaultDownAfter).
	DownAfter int
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

// Default miss thresholds: one late heartbeat is noise, two are
// suspicious, four are a dead node. Chosen so the down deadline K·H
// stays comfortably above scheduler jitter at the default interval.
const (
	DefaultSuspectAfter = 2
	DefaultDownAfter    = 4
)

// NodeHealth is one peer's tracked state snapshot.
type NodeHealth struct {
	Node     int
	State    State
	Age      time.Duration // time since last heard (0 for self)
	Beats    uint64        // heartbeats/acks observed from this peer
	Digest   *Digest       // latest digest received, nil before the first
	DigestAt time.Time     // when Digest arrived
}

// Tracker derives peer liveness from heartbeat arrivals.
type Tracker struct {
	self    int
	cfg     Config
	now     func() time.Time
	mu      sync.Mutex
	last    []time.Time // last heard, per node; zero until first beat
	beats   []uint64
	digests []*Digest
	digAt   []time.Time
	start   time.Time
}

// NewTracker builds a tracker for a fleet of nodes, with self pinned
// permanently ok.
func NewTracker(nodes, self int, cfg Config) *Tracker {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DownAfter <= cfg.SuspectAfter {
		cfg.DownAfter = max(cfg.SuspectAfter+1, DefaultDownAfter)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Tracker{
		self:    self,
		cfg:     cfg,
		now:     now,
		last:    make([]time.Time, nodes),
		beats:   make([]uint64, nodes),
		digests: make([]*Digest, nodes),
		digAt:   make([]time.Time, nodes),
		start:   now(),
	}
}

// Interval returns the configured heartbeat period.
func (t *Tracker) Interval() time.Duration { return t.cfg.Interval }

// DownAfter returns the down threshold K (missed intervals).
func (t *Tracker) DownAfter() int { return t.cfg.DownAfter }

// Alive records evidence that node is alive right now: a heartbeat
// arrival, a heartbeat ack, or any successful bus exchange. d is the
// digest carried by the evidence, nil when it carried none.
func (t *Tracker) Alive(node int, d *Digest) {
	if node < 0 || node >= len(t.last) {
		return
	}
	now := t.now()
	t.mu.Lock()
	t.last[node] = now
	t.beats[node]++
	if d != nil {
		t.digests[node] = d
		t.digAt[node] = now
	}
	t.mu.Unlock()
}

// stateOf derives a peer's state from its last-heard age. Callers hold
// t.mu.
func (t *Tracker) stateOf(node int, now time.Time) (State, time.Duration) {
	if node == t.self {
		return StateOK, 0
	}
	ref := t.last[node]
	if ref.IsZero() {
		ref = t.start // never heard: count from tracker start
	}
	age := now.Sub(ref)
	if t.cfg.Interval <= 0 {
		return StateOK, age // liveness tracking disabled
	}
	switch {
	case age < time.Duration(t.cfg.SuspectAfter)*t.cfg.Interval:
		return StateOK, age
	case age < time.Duration(t.cfg.DownAfter)*t.cfg.Interval:
		return StateSuspect, age
	default:
		return StateDown, age
	}
}

// State classifies one node right now.
func (t *Tracker) State(node int) State {
	if node < 0 || node >= len(t.last) {
		return StateDown
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, _ := t.stateOf(node, t.now())
	return s
}

// Snapshot returns every node's current health, ordered by node index.
func (t *Tracker) Snapshot() []NodeHealth {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeHealth, len(t.last))
	for i := range t.last {
		st, age := t.stateOf(i, now)
		out[i] = NodeHealth{
			Node:     i,
			State:    st,
			Age:      age,
			Beats:    t.beats[i],
			Digest:   t.digests[i],
			DigestAt: t.digAt[i],
		}
	}
	return out
}

// Degraded reports whether any of the given nodes is suspect or down —
// the CLUSTER INFO cluster_state check, fed with the set of nodes that
// own at least one slot.
func (t *Tracker) Degraded(nodes []int) bool {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nodes {
		if n < 0 || n >= len(t.last) {
			return true
		}
		if st, _ := t.stateOf(n, now); st != StateOK {
			return true
		}
	}
	return false
}
