package health

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func sampleDigest() *Digest {
	return &Digest{
		Node:           2,
		MapVersion:     17,
		SlotsOwned:     5461,
		SlotsMigrating: 1,
		SlotsImporting: 0,
		Ops:            123456,
		Gets:           100000,
		FastHits:       91234,
		Keys:           20000,
		UsedBytes:      1 << 20,
		OpsPerSec:      54321.5,
		LatP50US:       12.25,
		LatP99US:       480.75,
		Shards: []ShardDigest{
			{Ops: 60000, Gets: 50000, FastHits: 46000, Keys: 10001, QueueDepth: 3},
			{Ops: 63456, Gets: 50000, FastHits: 45234, Keys: 9999, QueueDepth: 0},
		},
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := sampleDigest()
	enc := d.Encode(nil)
	got, err := DecodeDigest(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", d, got)
	}
	// No shards: Shards must stay nil, not empty-slice.
	d2 := &Digest{Node: 1, MapVersion: 3}
	got2, err := DecodeDigest(d2.Encode(nil))
	if err != nil {
		t.Fatalf("decode empty-shard digest: %v", err)
	}
	if !reflect.DeepEqual(d2, got2) {
		t.Fatalf("empty-shard round trip mismatch: %+v vs %+v", d2, got2)
	}
}

func TestDigestDecodeRejects(t *testing.T) {
	enc := sampleDigest().Encode(nil)
	cases := map[string][]byte{
		"empty":         {},
		"short header":  enc[:digestHeaderSize-1],
		"bad version":   append([]byte{99}, enc[1:]...),
		"truncated":     enc[:len(enc)-1],
		"trailing byte": append(append([]byte{}, enc...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeDigest(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestDigestDerived(t *testing.T) {
	d := sampleDigest()
	if got, want := d.HitRate(), float64(d.FastHits)/float64(d.Gets); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
	if got := d.QueueDepth(); got != 3 {
		t.Fatalf("QueueDepth = %d, want 3", got)
	}
	if (&Digest{}).HitRate() != 0 {
		t.Fatal("zero-get HitRate must be 0")
	}
	if (ShardDigest{Gets: 10, FastHits: 5}).HitRate() != 0.5 {
		t.Fatal("shard HitRate")
	}
}

// fakeClock advances manually for deterministic state transitions.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func trackerAt(c *fakeClock, n, self int, h time.Duration) *Tracker {
	return NewTracker(n, self, Config{Interval: h, SuspectAfter: 2, DownAfter: 4, Now: c.now})
}

func TestTrackerStateMachine(t *testing.T) {
	const h = 100 * time.Millisecond
	clk := newFakeClock()
	tr := trackerAt(clk, 3, 0, h)

	// Fresh tracker: everyone ok (nothing missed yet).
	for i := 0; i < 3; i++ {
		if st := tr.State(i); st != StateOK {
			t.Fatalf("fresh node %d = %v, want ok", i, st)
		}
	}
	// Node 1 beats, node 2 stays silent.
	clk.advance(h)
	tr.Alive(1, nil)
	clk.advance(h) // 2h since start: node 2 hits the suspect deadline
	if st := tr.State(2); st != StateSuspect {
		t.Fatalf("silent node at 2H = %v, want suspect", st)
	}
	if st := tr.State(1); st != StateOK {
		t.Fatalf("beating node = %v, want ok", st)
	}
	clk.advance(2 * h) // 4h since start: down deadline
	if st := tr.State(2); st != StateDown {
		t.Fatalf("silent node at 4H = %v, want down", st)
	}
	// Node 1 last beat 3h ago: suspect but not down.
	if st := tr.State(1); st != StateSuspect {
		t.Fatalf("node 1 at 3H since beat = %v, want suspect", st)
	}
	// A beat resurrects immediately.
	tr.Alive(2, nil)
	if st := tr.State(2); st != StateOK {
		t.Fatalf("resurrected node = %v, want ok", st)
	}
	// Self never degrades.
	clk.advance(100 * h)
	if st := tr.State(0); st != StateOK {
		t.Fatalf("self = %v, want ok", st)
	}
	// Out-of-range probes read down, and Alive ignores them.
	tr.Alive(99, nil)
	if st := tr.State(99); st != StateDown {
		t.Fatalf("out of range = %v, want down", st)
	}
}

func TestTrackerSnapshotAndDigest(t *testing.T) {
	const h = 50 * time.Millisecond
	clk := newFakeClock()
	tr := trackerAt(clk, 2, 0, h)
	d := sampleDigest()
	tr.Alive(1, d)
	clk.advance(h)
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	if snap[0].State != StateOK || snap[0].Age != 0 {
		t.Fatalf("self snapshot: %+v", snap[0])
	}
	if snap[1].Digest != d || snap[1].Beats != 1 || snap[1].Age != h {
		t.Fatalf("peer snapshot: %+v", snap[1])
	}
	// Alive without a digest keeps the last digest.
	tr.Alive(1, nil)
	if got := tr.Snapshot()[1]; got.Digest != d || got.Beats != 2 {
		t.Fatalf("digest not retained: %+v", got)
	}
}

func TestTrackerDegraded(t *testing.T) {
	const h = 100 * time.Millisecond
	clk := newFakeClock()
	tr := trackerAt(clk, 3, 0, h)
	tr.Alive(1, nil)
	tr.Alive(2, nil)
	if tr.Degraded([]int{0, 1, 2}) {
		t.Fatal("fully-alive fleet reported degraded")
	}
	clk.advance(2 * h)
	if !tr.Degraded([]int{0, 1, 2}) {
		t.Fatal("suspect peer not reported degraded")
	}
	// Degraded only considers the nodes asked about (slot owners).
	if tr.Degraded([]int{0}) {
		t.Fatal("self-only check reported degraded")
	}
	if !tr.Degraded([]int{5}) {
		t.Fatal("unknown node index must read degraded")
	}
}

func TestTrackerDisabledInterval(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(2, 0, Config{Interval: 0, Now: clk.now})
	clk.advance(time.Hour)
	if st := tr.State(1); st != StateOK {
		t.Fatalf("disabled tracker state = %v, want ok", st)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{StateOK: "ok", StateSuspect: "suspect", StateDown: "down", State(9): "unknown"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func FuzzDecodeDigest(f *testing.F) {
	f.Add(sampleDigest().Encode(nil))
	f.Add([]byte{digestVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDigest(b)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the same bytes.
		if got := d.Encode(nil); !reflect.DeepEqual(got, b) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", b, got)
		}
	})
}
