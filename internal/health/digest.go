// The heartbeat digest: a compact, fixed-layout snapshot of one
// node's serving telemetry, carried in every Heartbeat frame and
// returned on demand by DigestGet. The digest is built from existing
// read-only surfaces (Report, queue depths, latency histograms), so
// carrying it never charges modeled cycles — a heartbeat-on run stays
// bit-for-bit identical to a heartbeat-off run.
//
// Encoding is little-endian with a leading version byte, the same
// armor philosophy as the bus frames that carry it: decode exactly or
// reject whole. Per-shard entries follow the fixed header, prefixed by
// a u16 count, so the digest grows with the shard count but stays a
// few hundred bytes for realistic fleets.
package health

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// digestVersion is the wire version byte; a decoder refuses digests
// from a different layout generation instead of misreading them.
const digestVersion = 1

// maxDigestShards bounds the decoded shard-entry count so a hostile
// count prefix cannot force a giant allocation.
const maxDigestShards = 1 << 16

// ErrBadDigest reports an encoded digest that does not decode exactly.
var ErrBadDigest = errors.New("health: bad digest encoding")

// ShardDigest is one shard's slice of the digest: enough to derive the
// per-shard STLT fast-path hit rate and the worker queue pressure.
type ShardDigest struct {
	Ops        uint64 // engine ops served by this shard
	Gets       uint64 // GET/EXISTS ops (the hit-rate denominator)
	FastHits   uint64 // fast-path (STLT/SLB) hits
	Keys       uint64 // keys resident
	QueueDepth uint32 // worker ring depth (0 in mutex dispatch)
}

// HitRate derives the shard's fast-path hit rate (0 when no GETs ran).
func (s ShardDigest) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.FastHits) / float64(s.Gets)
}

// Digest is one node's telemetry snapshot.
type Digest struct {
	Node       int    // sender's node index
	MapVersion uint64 // sender's installed slot map epoch

	SlotsOwned     uint32
	SlotsMigrating uint32
	SlotsImporting uint32

	Ops       uint64 // engine ops since RESETSTATS
	Gets      uint64
	FastHits  uint64
	Keys      uint64 // keys resident across shards
	UsedBytes uint64 // record bytes tracked by eviction (0 without -maxmemory)

	OpsPerSec float64 // sender-computed rate over its heartbeat window
	LatP50US  float64 // wall-clock command latency percentiles
	LatP99US  float64

	Shards []ShardDigest
}

// HitRate derives the node-wide fast-path hit rate.
func (d *Digest) HitRate() float64 {
	if d.Gets == 0 {
		return 0
	}
	return float64(d.FastHits) / float64(d.Gets)
}

// QueueDepth sums the per-shard worker ring depths.
func (d *Digest) QueueDepth() uint64 {
	var n uint64
	for _, s := range d.Shards {
		n += uint64(s.QueueDepth)
	}
	return n
}

// Encode appends the digest's wire form to buf and returns the
// extended slice.
func (d *Digest) Encode(buf []byte) []byte {
	buf = append(buf, digestVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Node))
	buf = binary.LittleEndian.AppendUint64(buf, d.MapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, d.SlotsOwned)
	buf = binary.LittleEndian.AppendUint32(buf, d.SlotsMigrating)
	buf = binary.LittleEndian.AppendUint32(buf, d.SlotsImporting)
	buf = binary.LittleEndian.AppendUint64(buf, d.Ops)
	buf = binary.LittleEndian.AppendUint64(buf, d.Gets)
	buf = binary.LittleEndian.AppendUint64(buf, d.FastHits)
	buf = binary.LittleEndian.AppendUint64(buf, d.Keys)
	buf = binary.LittleEndian.AppendUint64(buf, d.UsedBytes)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.OpsPerSec))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.LatP50US))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.LatP99US))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.Shards)))
	for _, s := range d.Shards {
		buf = binary.LittleEndian.AppendUint64(buf, s.Ops)
		buf = binary.LittleEndian.AppendUint64(buf, s.Gets)
		buf = binary.LittleEndian.AppendUint64(buf, s.FastHits)
		buf = binary.LittleEndian.AppendUint64(buf, s.Keys)
		buf = binary.LittleEndian.AppendUint32(buf, s.QueueDepth)
	}
	return buf
}

// digestHeaderSize is the fixed prefix: version byte, node u16, map
// version u64, three u32 slot counts, five u64 counters, three f64
// rates, and the u16 shard count.
const digestHeaderSize = 1 + 2 + 8 + 3*4 + 5*8 + 3*8 + 2

// shardDigestSize is one per-shard entry: four u64 counters + u32.
const shardDigestSize = 4*8 + 4

// DecodeDigest decodes one digest. The whole buffer must be consumed —
// trailing bytes are a framing error, not padding.
func DecodeDigest(b []byte) (*Digest, error) {
	if len(b) < digestHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadDigest, len(b))
	}
	if b[0] != digestVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadDigest, b[0])
	}
	d := &Digest{}
	d.Node = int(binary.LittleEndian.Uint16(b[1:]))
	d.MapVersion = binary.LittleEndian.Uint64(b[3:])
	d.SlotsOwned = binary.LittleEndian.Uint32(b[11:])
	d.SlotsMigrating = binary.LittleEndian.Uint32(b[15:])
	d.SlotsImporting = binary.LittleEndian.Uint32(b[19:])
	d.Ops = binary.LittleEndian.Uint64(b[23:])
	d.Gets = binary.LittleEndian.Uint64(b[31:])
	d.FastHits = binary.LittleEndian.Uint64(b[39:])
	d.Keys = binary.LittleEndian.Uint64(b[47:])
	d.UsedBytes = binary.LittleEndian.Uint64(b[55:])
	d.OpsPerSec = math.Float64frombits(binary.LittleEndian.Uint64(b[63:]))
	d.LatP50US = math.Float64frombits(binary.LittleEndian.Uint64(b[71:]))
	d.LatP99US = math.Float64frombits(binary.LittleEndian.Uint64(b[79:]))
	shards := int(binary.LittleEndian.Uint16(b[87:]))
	if shards > maxDigestShards {
		return nil, fmt.Errorf("%w: %d shard entries", ErrBadDigest, shards)
	}
	rest := b[digestHeaderSize:]
	if len(rest) != shards*shardDigestSize {
		return nil, fmt.Errorf("%w: %d trailing bytes for %d shards", ErrBadDigest, len(rest), shards)
	}
	if shards > 0 {
		d.Shards = make([]ShardDigest, shards)
		for i := range d.Shards {
			e := rest[i*shardDigestSize:]
			d.Shards[i] = ShardDigest{
				Ops:        binary.LittleEndian.Uint64(e),
				Gets:       binary.LittleEndian.Uint64(e[8:]),
				FastHits:   binary.LittleEndian.Uint64(e[16:]),
				Keys:       binary.LittleEndian.Uint64(e[24:]),
				QueueDepth: binary.LittleEndian.Uint32(e[32:]),
			}
		}
	}
	return d, nil
}
