package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects when Commit fsyncs — the Redis appendfsync trade-off.
type Policy int

// Fsync policies. FsyncAlways makes every Commit durable before it
// returns (an acknowledged op can never be lost); FsyncEverySec marks
// the segment dirty and a background syncer fsyncs at most once per
// second (bounded loss window, near-zero hot-path cost); FsyncNo
// leaves flushing to the OS entirely.
const (
	FsyncNo Policy = iota
	FsyncEverySec
	FsyncAlways
)

func (p Policy) String() string {
	switch p {
	case FsyncNo:
		return "no"
	case FsyncEverySec:
		return "everysec"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the -aof-fsync flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "no":
		return FsyncNo, nil
	case "everysec":
		return FsyncEverySec, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, everysec, or no)", s)
}

// segPath and snapPath name one shard's generation-g files. Rewrites
// bump the generation and swap whole files in atomically (rename), so
// there is never a moment where a crash can observe a half-truncated
// log — recovery just picks the highest complete generation.
func segPath(dir string, shard int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.aof.%d", shard, gen))
}

func snapPath(dir string, shard int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.snap.%d", shard, gen))
}

// Log is one shard's append-only log. Exactly one writer (the shard's
// owning worker or a mutex-path caller holding the shard lock) appends;
// the internal mutex only coordinates appends with the background
// everysec syncer and with rewrites.
//
// The write path is two-phase to match the worker runtime's burst
// shape: Append encodes frames into a pending buffer (no syscalls, no
// allocations in steady state), and Commit writes the whole buffer
// with one write(2) and at most one fsync — group commit over a drain
// burst.
type Log struct {
	dir    string
	shard  int
	policy Policy

	mu   sync.Mutex
	f    *os.File
	gen  uint64
	pend []byte
	size int64 // committed bytes in the current segment
	err  error // sticky I/O error; appends/commits stop after the first

	// unsynced tracks whether bytes written since the last fsync exist,
	// so an always-policy Commit on a write-free burst skips the
	// barrier instead of fsyncing an already-durable file.
	unsynced bool

	appends  uint64
	commits  uint64
	fsyncs   uint64
	fsyncNS  uint64
	rewrites uint64
	lastSave int64 // unix ns of the last completed rewrite (0 = never)

	// onFsync, when set (before traffic), observes each fsync's wall
	// duration — the telemetry histogram hook.
	onFsync func(ns int64)

	dirty  atomic.Bool
	stop   chan struct{}
	closed chan struct{}
}

// SetFsyncObserver installs a callback invoked (under the log mutex)
// with each fsync's wall-clock nanoseconds. Install before traffic.
func (l *Log) SetFsyncObserver(fn func(ns int64)) { l.onFsync = fn }

// Shard returns the shard index this log belongs to.
func (l *Log) Shard() int { return l.shard }

// Policy returns the fsync policy.
func (l *Log) Policy() Policy { return l.policy }

// SegmentPath returns the current generation's log file path
// (diagnostics and tests).
func (l *Log) SegmentPath() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return segPath(l.dir, l.shard, l.gen)
}

// Append encodes one record into the pending buffer. It touches no
// file and performs no allocation once the buffer has grown to the
// burst's working size; Commit publishes it. Returns the frame's
// encoded size.
func (l *Log) Append(kind Kind, key, value []byte) int {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return 0
	}
	before := len(l.pend)
	l.pend = AppendFrame(l.pend, kind, key, value)
	n := len(l.pend) - before
	l.appends++
	l.mu.Unlock()
	return n
}

// Commit writes the pending buffer to the segment with one write(2)
// and applies the fsync policy: always → fsync now (group commit —
// one barrier for every record appended since the last Commit);
// everysec → mark dirty for the background syncer; no → nothing.
// The returned error is sticky: after an I/O error the log stops
// accepting writes and every later Commit reports it.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.pend) > 0 {
		n, err := l.f.Write(l.pend)
		l.size += int64(n)
		l.pend = l.pend[:0]
		l.commits++
		l.unsynced = true
		if err != nil {
			l.err = fmt.Errorf("wal shard %d: append: %w", l.shard, err)
			return l.err
		}
	}
	switch l.policy {
	case FsyncAlways:
		// Group commit: one barrier covers every record written since
		// the last fsync — including records another path (a mutex-mode
		// op between worker bursts) committed without waiting.
		if l.unsynced {
			return l.fsyncLocked()
		}
	case FsyncEverySec:
		if l.unsynced {
			l.dirty.Store(true)
		}
	}
	return nil
}

func (l *Log) fsyncLocked() error {
	t0 := time.Now()
	err := l.f.Sync()
	ns := time.Since(t0).Nanoseconds()
	l.fsyncs++
	l.fsyncNS += uint64(ns)
	l.unsynced = false
	if l.onFsync != nil {
		l.onFsync(ns)
	}
	if err != nil {
		l.err = fmt.Errorf("wal shard %d: fsync: %w", l.shard, err)
		return l.err
	}
	return nil
}

// Sync force-commits pending records and fsyncs regardless of policy
// (shutdown, snapshot barriers).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if len(l.pend) > 0 {
		n, err := l.f.Write(l.pend)
		l.size += int64(n)
		l.pend = l.pend[:0]
		l.commits++
		if err != nil {
			l.err = fmt.Errorf("wal shard %d: append: %w", l.shard, err)
			return l.err
		}
	}
	return l.fsyncLocked()
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close stops the background syncer, commits and fsyncs pending
// records, and closes the segment.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.closed
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	syncErr := error(nil)
	if l.err == nil {
		if len(l.pend) > 0 {
			n, err := l.f.Write(l.pend)
			l.size += int64(n)
			l.pend = l.pend[:0]
			l.commits++
			if err != nil {
				l.err = err
			}
		}
		if l.err == nil {
			syncErr = l.fsyncLocked()
		}
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.err != nil {
		return l.err
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// runSyncer is the everysec background fsync loop.
func (l *Log) runSyncer() {
	defer close(l.closed)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if l.dirty.Swap(false) {
				l.mu.Lock()
				if l.err == nil && l.f != nil {
					l.fsyncLocked() //nolint:errcheck // sticky in l.err
				}
				l.mu.Unlock()
			}
		}
	}
}

// Stats is a point-in-time snapshot of one log's counters.
type Stats struct {
	// Gen is the current file generation (bumped by every rewrite).
	Gen uint64
	// SizeBytes counts committed bytes in the current segment;
	// PendBytes counts encoded-but-uncommitted bytes.
	SizeBytes int64
	PendBytes int
	// Appends/Commits/Fsyncs count records, write(2) batches, and
	// fsync(2) barriers — Appends/Commits is the group-commit factor.
	Appends uint64
	Commits uint64
	Fsyncs  uint64
	// FsyncNS is total wall time spent in fsync.
	FsyncNS uint64
	// Rewrites counts compacting snapshots; LastSaveUnixNS stamps the
	// last one (0 = never in this process's lifetime).
	Rewrites       uint64
	LastSaveUnixNS int64
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Gen:            l.gen,
		SizeBytes:      l.size,
		PendBytes:      len(l.pend),
		Appends:        l.appends,
		Commits:        l.commits,
		Fsyncs:         l.fsyncs,
		FsyncNS:        l.fsyncNS,
		Rewrites:       l.rewrites,
		LastSaveUnixNS: l.lastSave,
	}
}
