// Package wal is the durability subsystem: a per-shard append-only log
// (AOF) of CRC32C-framed mutation records, group-committed by each
// shard's single writer, plus compacting snapshots and a recovery path
// that replays snapshot + log tail deterministically.
//
// The design follows the layered entry-file shape of onvakv (an
// append-only entry file per shard, periodically rewritten from live
// state so the head is prunable) and keeps persistence off the hot
// path as LaKe's production-KV framing argues: the per-shard worker
// runtime already gives exactly one writer per shard, so appends are
// plain buffer writes under the shard lock and ONE fsync covers a
// whole drain burst (group commit).
//
// Recovery contract (the repo's differential discipline): a recovered
// engine is bit-for-bit identical — replies, modeled cycles, stats —
// to a fresh engine that executed the surviving record stream live.
// Snapshot records replay as untimed bulk loads (the warm/preload
// path); tail records replay as timed ops. kvreplay -format aof is the
// reference executor for exactly that semantic.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind tags one log record.
type Kind uint8

// Record kinds. RecLoad is an untimed bulk insert (preload and
// snapshot records); RecSet/RecDel/RecFlush are timed mutations in
// engine execution order. RecExpire arms a TTL deadline (value is the
// 8-byte little-endian absolute deadline in unix nanoseconds; timed in
// the tail, untimed in snapshots). RecExpireDel and RecEvict record a
// lazy-expiry or maxmemory-eviction removal: both replay as untimed
// removals, because the live engine performed them as untimed
// maintenance — logging them keeps the index layout (and therefore
// every later op's modeled cycles) bit-for-bit reproducible.
const (
	RecSet       Kind = 1
	RecDel       Kind = 2
	RecFlush     Kind = 3
	RecLoad      Kind = 4
	RecExpire    Kind = 5
	RecExpireDel Kind = 6
	RecEvict     Kind = 7
)

func (k Kind) String() string {
	switch k {
	case RecSet:
		return "set"
	case RecDel:
		return "del"
	case RecFlush:
		return "flushall"
	case RecLoad:
		return "load"
	case RecExpire:
		return "expire"
	case RecExpireDel:
		return "expiredel"
	case RecEvict:
		return "evict"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func validKind(k Kind) bool { return k >= RecSet && k <= RecEvict }

// Record is one decoded log entry. Key and Value alias the buffer the
// frame was decoded from.
type Record struct {
	Kind  Kind
	Key   []byte
	Value []byte
}

// Frame layout on disk:
//
//	offset 0: payloadLen (uint32, little-endian) — bytes after the header
//	offset 4: CRC32C of the payload (uint32, little-endian)
//	offset 8: payload:
//	    offset 0: kind (1 byte)
//	    offset 1: keyLen (uint32, little-endian)
//	    offset 5: key bytes
//	    offset 5+keyLen: value bytes
const (
	frameHeaderSize   = 8
	payloadHeaderSize = 5
	// MaxPayload bounds one frame's payload (guards recovery against
	// garbage length prefixes claiming gigabytes).
	MaxPayload = 1 << 26
)

// crcTable is the Castagnoli polynomial (CRC32C, the checksum
// SSE4.2/ARMv8 accelerate and most storage formats use).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame decode errors. ErrTruncated means the buffer ends inside a
// frame (a torn tail — recoverable by truncating to the last whole
// frame); ErrCorrupt means a structurally invalid or checksum-failing
// frame.
var (
	ErrTruncated = errors.New("wal: truncated frame")
	ErrCorrupt   = errors.New("wal: corrupt frame")
)

// FrameSize returns the encoded size of a record.
func FrameSize(keyLen, valueLen int) int {
	return frameHeaderSize + payloadHeaderSize + keyLen + valueLen
}

// AppendFrame appends the encoded frame for one record to buf and
// returns the extended slice. It performs no allocation beyond growing
// buf.
func AppendFrame(buf []byte, kind Kind, key, value []byte) []byte {
	payloadLen := payloadHeaderSize + len(key) + len(value)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// DecodeFrame parses the first frame in b, returning the record and
// the number of bytes the frame occupies. On error the returned size
// is 0 and err is ErrTruncated (b ends mid-frame) or ErrCorrupt
// (bad length, kind, or checksum). An empty b returns (zero, 0, nil)
// — the clean end-of-log case — so callers distinguish "done" (n == 0,
// err == nil) from "torn" (ErrTruncated).
func DecodeFrame(b []byte) (rec Record, n int, err error) {
	if len(b) == 0 {
		return Record{}, 0, nil
	}
	if len(b) < frameHeaderSize {
		return Record{}, 0, ErrTruncated
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:]))
	if payloadLen < payloadHeaderSize || payloadLen > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, payloadLen)
	}
	if len(b) < frameHeaderSize+payloadLen {
		return Record{}, 0, ErrTruncated
	}
	payload := b[frameHeaderSize : frameHeaderSize+payloadLen]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	kind := Kind(payload[0])
	if !validKind(kind) {
		return Record{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, payload[0])
	}
	keyLen := int(binary.LittleEndian.Uint32(payload[1:]))
	if keyLen > payloadLen-payloadHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: key length %d exceeds payload", ErrCorrupt, keyLen)
	}
	body := payload[payloadHeaderSize:]
	return Record{Kind: kind, Key: body[:keyLen], Value: body[keyLen:]}, frameHeaderSize + payloadLen, nil
}

// ScanResult reports what Scan found in a log image.
type ScanResult struct {
	// Records are the decoded frames, in file order (aliasing the
	// scanned buffer).
	Records []Record
	// Valid is the byte offset just past the last whole frame.
	Valid int64
	// Torn reports bytes past Valid (a truncated or corrupt tail).
	Torn bool
	// TornErr describes the tail defect when Torn.
	TornErr error
}

// Scan decodes every whole frame in b. It never fails: a torn or
// corrupt tail ends the scan, reported via Torn/TornErr, and the
// records before it stand — the crash-recovery semantic (satellite:
// torn writes at the tail must not fail startup).
func Scan(b []byte) ScanResult {
	var res ScanResult
	for {
		rec, n, err := DecodeFrame(b[res.Valid:])
		if err != nil {
			res.Torn, res.TornErr = true, err
			return res
		}
		if n == 0 {
			return res
		}
		res.Records = append(res.Records, rec)
		res.Valid += int64(n)
	}
}
