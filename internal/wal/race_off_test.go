//go:build !race

package wal

// raceEnabled reports whether the race detector is on (it perturbs
// allocation counts, so the zero-alloc budget test skips itself).
const raceEnabled = false
