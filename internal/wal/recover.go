package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Recovery is what OpenShard found on disk: the surviving record
// stream for one shard, split into the snapshot part (replayed as
// untimed bulk loads) and the log tail (replayed as timed ops).
// Records alias internal buffers owned by the Recovery.
type Recovery struct {
	// Gen is the generation recovered from.
	Gen uint64
	// Snapshot holds the snapshot's records (all RecLoad), empty when
	// no snapshot generation exists.
	Snapshot []Record
	// Tail holds the log records appended after the snapshot.
	Tail []Record
	// TornBytes counts trailing log bytes dropped because the final
	// frame was truncated or failed its checksum; TornErr describes the
	// defect. A torn tail is expected after a crash — it is a warning,
	// never a startup failure.
	TornBytes int64
	TornErr   error

	snapBuf, tailBuf []byte // backing stores for the record slices
}

// Records returns the full surviving stream: snapshot, then tail.
func (r *Recovery) Records() []Record {
	out := make([]Record, 0, len(r.Snapshot)+len(r.Tail))
	out = append(out, r.Snapshot...)
	return append(out, r.Tail...)
}

// shardFiles lists a shard's generation-numbered snapshot and segment
// files present in dir.
func shardFiles(dir string, shard int) (snaps, segs map[uint64]bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	snaps, segs = map[uint64]bool{}, map[uint64]bool{}
	snapPrefix := fmt.Sprintf("shard-%d.snap.", shard)
	segPrefix := fmt.Sprintf("shard-%d.aof.", shard)
	for _, e := range entries {
		name := e.Name()
		if g, ok := parseGen(name, snapPrefix); ok {
			snaps[g] = true
		} else if g, ok := parseGen(name, segPrefix); ok {
			segs[g] = true
		}
	}
	return snaps, segs, nil
}

func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// DetectShards reports how many shards have durability files in dir
// (max shard index + 1; 0 when the directory is empty or absent). A
// server restarting over an existing AOF directory must run with the
// same shard count the files were written with — per-shard logs only
// order operations within a shard.
func DetectShards(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutPrefix(name, "shard-")
		if !ok {
			continue
		}
		idxStr, _, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			continue
		}
		if idx+1 > n {
			n = idx + 1
		}
	}
	return n, nil
}

// OpenShard opens (creating if necessary) shard i's log under dir and
// recovers its surviving record stream. The highest complete
// generation wins: its snapshot (if any) plus its log segment, with a
// torn or corrupt log tail truncated in place so the segment ends on a
// frame boundary before appends resume. Stale generations and
// half-written snapshot temporaries (debris of a rewrite interrupted
// by a crash) are removed.
func OpenShard(dir string, shard int, policy Policy) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	os.Remove(tmpSnapPath(dir, shard)) // crashed-rewrite debris
	snaps, segs, err := shardFiles(dir, shard)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	gen := uint64(1)
	for g := range snaps {
		if g > gen {
			gen = g
		}
	}
	for g := range segs {
		if g > gen {
			gen = g
		}
	}

	rec := &Recovery{Gen: gen}
	if snaps[gen] {
		buf, err := os.ReadFile(snapPath(dir, shard, gen))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read snapshot: %w", err)
		}
		res := Scan(buf)
		if res.Torn {
			// Snapshots are written to a temporary and renamed into place
			// only after fsync, so a damaged one is real corruption, not
			// a crash artifact.
			return nil, nil, fmt.Errorf("wal: shard %d snapshot gen %d corrupt at byte %d: %w",
				shard, gen, res.Valid, res.TornErr)
		}
		rec.snapBuf, rec.Snapshot = buf, res.Records
	}

	seg := segPath(dir, shard, gen)
	segSize := int64(0)
	if buf, err := os.ReadFile(seg); err == nil {
		res := Scan(buf)
		rec.tailBuf, rec.Tail = buf, res.Records
		segSize = res.Valid
		if res.Torn {
			rec.TornBytes = int64(len(buf)) - res.Valid
			rec.TornErr = res.TornErr
			if err := os.Truncate(seg, res.Valid); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: read segment: %w", err)
	}

	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open segment: %w", err)
	}

	// Drop every stale generation: recovery committed to gen, so older
	// files are dead weight (and would confuse a later recovery if gen's
	// files were ever lost).
	for g := range snaps {
		if g != gen {
			os.Remove(snapPath(dir, shard, g))
		}
	}
	for g := range segs {
		if g != gen {
			os.Remove(segPath(dir, shard, g))
		}
	}

	l := &Log{dir: dir, shard: shard, policy: policy, f: f, gen: gen, size: segSize}
	if snaps[gen] {
		if st, err := os.Stat(snapPath(dir, shard, gen)); err == nil {
			l.lastSave = st.ModTime().UnixNano()
		}
	}
	if policy == FsyncEverySec {
		l.stop = make(chan struct{})
		l.closed = make(chan struct{})
		go l.runSyncer()
	}
	return l, rec, nil
}

// ReadShard loads shard i's surviving record stream without side
// effects: no file creation, no torn-tail truncation, no stale-
// generation cleanup. This is the offline reference-executor path
// (kvreplay -format aof) — it must be able to examine a log directory
// it does not own.
func ReadShard(dir string, shard int) (*Recovery, error) {
	snaps, segs, err := shardFiles(dir, shard)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	gen := uint64(1)
	for g := range snaps {
		if g > gen {
			gen = g
		}
	}
	for g := range segs {
		if g > gen {
			gen = g
		}
	}
	rec := &Recovery{Gen: gen}
	if snaps[gen] {
		buf, err := os.ReadFile(snapPath(dir, shard, gen))
		if err != nil {
			return nil, fmt.Errorf("wal: read snapshot: %w", err)
		}
		res := Scan(buf)
		if res.Torn {
			return nil, fmt.Errorf("wal: shard %d snapshot gen %d corrupt at byte %d: %w",
				shard, gen, res.Valid, res.TornErr)
		}
		rec.snapBuf, rec.Snapshot = buf, res.Records
	}
	if buf, err := os.ReadFile(segPath(dir, shard, gen)); err == nil {
		res := Scan(buf)
		rec.tailBuf, rec.Tail = buf, res.Records
		if res.Torn {
			rec.TornBytes = int64(len(buf)) - res.Valid
			rec.TornErr = res.TornErr
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: read segment: %w", err)
	}
	return rec, nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable (the POSIX dance atomic file replacement requires).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// RemoveShardFiles deletes every durability file of every shard in dir
// (test and tooling helper).
func RemoveShardFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	return nil
}
