package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws corrupt bytes, truncations, and hostile
// length prefixes at the frame decoder. Invariants: the decoder never
// panics, never over-reads, and accepts exactly the canonical
// encoding — a successfully decoded frame re-encodes to the same
// bytes, so no two distinct frames alias one buffer prefix.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, RecSet, []byte("key"), []byte("value")))
	f.Add(AppendFrame(nil, RecDel, []byte("gone"), nil))
	f.Add(AppendFrame(nil, RecFlush, nil, nil))
	f.Add(AppendFrame(nil, RecLoad, bytes.Repeat([]byte{'k'}, 300), bytes.Repeat([]byte{'v'}, 1000)))
	two := AppendFrame(AppendFrame(nil, RecSet, []byte("a"), []byte("1")), RecDel, []byte("a"), nil)
	f.Add(two)
	f.Add(two[:len(two)-3])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})                // giant length prefix
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0, 0, 0, 0, 9, 0, 0, 0, 0}) // bad kind

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeFrame(b)
		switch {
		case err != nil:
			if n != 0 {
				t.Fatalf("error %v with n=%d", err, n)
			}
		case n == 0:
			if len(b) != 0 {
				t.Fatal("clean end on non-empty input")
			}
		default:
			if n > len(b) {
				t.Fatalf("decoder over-read: n=%d len=%d", n, len(b))
			}
			re := AppendFrame(nil, rec.Kind, rec.Key, rec.Value)
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b[:n], re)
			}
		}

		// Scan must terminate, never over-count, and its records must
		// round-trip to exactly the valid prefix.
		res := Scan(b)
		if res.Valid > int64(len(b)) || (res.Torn == (res.Valid == int64(len(b)))) {
			t.Fatalf("scan: valid=%d torn=%v len=%d", res.Valid, res.Torn, len(b))
		}
		var re []byte
		for _, r := range res.Records {
			re = AppendFrame(re, r.Kind, r.Key, r.Value)
		}
		if !bytes.Equal(re, b[:res.Valid]) {
			t.Fatal("scan records do not re-encode to the valid prefix")
		}
	})
}
