package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Record{
		{Kind: RecSet, Key: []byte("k"), Value: []byte("v")},
		{Kind: RecSet, Key: []byte("key-xyz"), Value: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: RecDel, Key: []byte("gone")},
		{Kind: RecFlush},
		{Kind: RecLoad, Key: []byte("warm"), Value: []byte("loaded")},
		{Kind: RecSet, Key: []byte{}, Value: []byte{}},
	}
	var buf []byte
	for _, c := range cases {
		buf = AppendFrame(buf, c.Kind, c.Key, c.Value)
	}
	off := 0
	for i, c := range cases {
		rec, n, err := DecodeFrame(buf[off:])
		if err != nil || n == 0 {
			t.Fatalf("case %d: decode: n=%d err=%v", i, n, err)
		}
		if n != FrameSize(len(c.Key), len(c.Value)) {
			t.Fatalf("case %d: frame size %d, want %d", i, n, FrameSize(len(c.Key), len(c.Value)))
		}
		if rec.Kind != c.Kind || !bytes.Equal(rec.Key, c.Key) || !bytes.Equal(rec.Value, c.Value) {
			t.Fatalf("case %d: got %v %q=%q", i, rec.Kind, rec.Key, rec.Value)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, RecSet, []byte("key"), []byte("value"))

	if _, n, err := DecodeFrame(nil); n != 0 || err != nil {
		t.Fatalf("empty input: n=%d err=%v, want clean end", n, err)
	}
	for cut := 1; cut < len(valid); cut++ {
		if _, _, err := DecodeFrame(valid[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err=%v, want ErrTruncated", cut, err)
		}
	}

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	if _, _, err := DecodeFrame(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err=%v, want ErrCorrupt", err)
	}

	giant := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(giant[0:], MaxPayload+1)
	if _, _, err := DecodeFrame(giant); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("giant length: err=%v, want ErrCorrupt", err)
	}

	// keyLen claiming more than the payload holds, with a fixed-up CRC
	// so only the structural check can catch it.
	evil := AppendFrame(nil, RecSet, []byte("abc"), []byte("de"))
	binary.LittleEndian.PutUint32(evil[frameHeaderSize+1:], 1<<30)
	payload := evil[frameHeaderSize:]
	binary.LittleEndian.PutUint32(evil[4:], crcOf(payload))
	if _, _, err := DecodeFrame(evil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized keyLen: err=%v, want ErrCorrupt", err)
	}

	// Unknown kind, CRC fixed up.
	badKind := AppendFrame(nil, RecSet, []byte("abc"), []byte("de"))
	badKind[frameHeaderSize] = 0x7F
	binary.LittleEndian.PutUint32(badKind[4:], crcOf(badKind[frameHeaderSize:]))
	if _, _, err := DecodeFrame(badKind); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: err=%v, want ErrCorrupt", err)
	}
}

func crcOf(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

func TestScanTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendFrame(buf, RecSet, fmt.Appendf(nil, "key-%d", i), []byte("v"))
	}
	whole := int64(len(buf))
	res := Scan(buf)
	if res.Torn || len(res.Records) != 10 || res.Valid != whole {
		t.Fatalf("clean scan: torn=%v n=%d valid=%d", res.Torn, len(res.Records), res.Valid)
	}
	// Half a frame appended: scan keeps the 10 whole frames.
	torn := append(append([]byte(nil), buf...), AppendFrame(nil, RecSet, []byte("tail"), []byte("v"))[:9]...)
	res = Scan(torn)
	if !res.Torn || len(res.Records) != 10 || res.Valid != whole {
		t.Fatalf("torn scan: torn=%v n=%d valid=%d want %d", res.Torn, len(res.Records), res.Valid, whole)
	}
}

func collect(recs []Record) []string {
	var out []string
	for _, r := range recs {
		out = append(out, fmt.Sprintf("%s:%s=%s", r.Kind, r.Key, r.Value))
	}
	return out
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := OpenShard(dir, 0, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshot)+len(rec.Tail) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records()))
	}
	l.Append(RecLoad, []byte("warm"), []byte("w0"))
	l.Append(RecSet, []byte("a"), []byte("1"))
	l.Append(RecDel, []byte("a"), nil)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(RecFlush, nil, nil)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 4 || st.Commits != 2 || st.Fsyncs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := OpenShard(dir, 0, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"load:warm=w0", "set:a=1", "del:a=", "flushall:="}
	if got := collect(rec2.Tail); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenShard(dir, 3, FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(RecSet, fmt.Appendf(nil, "k%d", i), []byte("v"))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame at the tail.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	partial := AppendFrame(nil, RecSet, []byte("torn-key"), []byte("torn-value"))
	if _, err := f.Write(partial[:len(partial)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	l2, rec, err := OpenShard(dir, 3, FsyncNo)
	if err != nil {
		t.Fatalf("torn tail must not fail startup: %v", err)
	}
	defer l2.Close()
	if len(rec.Tail) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Tail))
	}
	if rec.TornBytes != int64(len(partial)-4) || rec.TornErr == nil {
		t.Fatalf("torn bytes = %d (err %v), want %d", rec.TornBytes, rec.TornErr, len(partial)-4)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-rec.TornBytes {
		t.Fatalf("segment not truncated: %d -> %d", before.Size(), after.Size())
	}
	// Appends continue on the truncated frame boundary.
	l2.Append(RecSet, []byte("post"), []byte("crash"))
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := OpenShard(dir, 3, FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec2.Tail); n != 6 {
		t.Fatalf("after continue: %d records, want 6", n)
	}
}

func TestRewriteCompactsAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenShard(dir, 1, FsyncEverySec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Append(RecSet, fmt.Appendf(nil, "k%d", i%4), fmt.Appendf(nil, "v%d", i))
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Live state after those 20 sets: 4 keys, last-writer-wins.
	live := map[string]string{"k0": "v16", "k1": "v17", "k2": "v18", "k3": "v19"}
	err = l.Rewrite(func(add func(key, value []byte) error) error {
		for _, k := range []string{"k0", "k1", "k2", "k3"} {
			if err := add([]byte(k), []byte(live[k])); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Gen != 2 || st.SizeBytes != 0 || st.Rewrites != 1 || st.LastSaveUnixNS == 0 {
		t.Fatalf("post-rewrite stats = %+v", st)
	}
	l.Append(RecSet, []byte("k9"), []byte("tail"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := OpenShard(dir, 1, FsyncEverySec)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Gen != 2 {
		t.Fatalf("recovered gen %d, want 2", rec.Gen)
	}
	if len(rec.Snapshot) != 4 || len(rec.Tail) != 1 {
		t.Fatalf("recovered %d snapshot + %d tail records", len(rec.Snapshot), len(rec.Tail))
	}
	for _, r := range rec.Snapshot {
		if r.Kind != RecLoad || live[string(r.Key)] != string(r.Value) {
			t.Fatalf("snapshot record %s %q=%q", r.Kind, r.Key, r.Value)
		}
	}
	if rec.Tail[0].Kind != RecSet || string(rec.Tail[0].Key) != "k9" {
		t.Fatalf("tail record = %+v", rec.Tail[0])
	}
	// Generation 1 files are gone.
	if _, err := os.Stat(segPath(dir, 1, 1)); !os.IsNotExist(err) {
		t.Fatalf("old segment survived rewrite")
	}
}

func TestCrashedRewriteDebrisIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenShard(dir, 0, FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecSet, []byte("a"), []byte("1"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A rewrite that died before its rename leaves a temporary.
	if err := os.WriteFile(tmpSnapPath(dir, 0), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenShard(dir, 0, FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || rec.Gen != 1 {
		t.Fatalf("recovered gen %d with %d records", rec.Gen, len(rec.Tail))
	}
	if _, err := os.Stat(tmpSnapPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatal("rewrite debris not cleaned up")
	}
}

func TestDetectShards(t *testing.T) {
	dir := t.TempDir()
	if n, err := DetectShards(dir); n != 0 || err != nil {
		t.Fatalf("empty dir: n=%d err=%v", n, err)
	}
	if n, err := DetectShards(filepath.Join(dir, "missing")); n != 0 || err != nil {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
	for _, i := range []int{0, 1, 3} {
		l, _, err := OpenShard(dir, i, FsyncNo)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	if n, _ := DetectShards(dir); n != 4 {
		t.Fatalf("n=%d, want 4 (max index 3)", n)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"no": FsyncNo, "everysec": FsyncEverySec, "always": FsyncAlways} {
		p, err := ParsePolicy(s)
		if err != nil || p != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
		if p.String() != s {
			t.Fatalf("Policy(%v).String() = %q", p, p.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestAppendPathZeroAlloc pins the CI AllocsPerRun budget: with fsync
// policy no, the steady-state append+commit path allocates nothing
// (the pending buffer amortizes to its working size).
func TestAppendPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	l, _, err := OpenShard(t.TempDir(), 0, FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	key, val := []byte("alloc-test-key"), bytes.Repeat([]byte{'x'}, 128)
	// Warm the pending buffer to the burst working size.
	for i := 0; i < 32; i++ {
		l.Append(RecSet, key, val)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			l.Append(RecSet, key, val)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append path allocates %.1f allocs per burst, want 0", allocs)
	}
}

func TestStickyWriteError(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenShard(dir, 0, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecSet, []byte("a"), []byte("1"))
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Close the fd behind the log's back: the next commit must fail and
	// the failure must stick.
	l.f.Close()
	l.Append(RecSet, []byte("b"), []byte("2"))
	if err := l.Commit(); err == nil {
		t.Fatal("commit on closed file succeeded")
	}
	if l.Err() == nil {
		t.Fatal("error did not stick")
	}
	if n := l.Append(RecSet, []byte("c"), []byte("3")); n != 0 {
		t.Fatal("append accepted after sticky error")
	}
}
