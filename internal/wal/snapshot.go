package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

func tmpSnapPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.snap.tmp", shard))
}

// Rewrite compacts the log: emit streams the shard's live records (the
// BGSAVE body — typically kv.Engine.RangeRecords under the shard
// lock), which Rewrite serializes as RecLoad frames into a new
// snapshot generation, after which the log segment restarts empty.
//
// The swap is crash-safe by construction, following the onvakv
// entry-file scheme of pruning the head by replacing files rather than
// truncating in place:
//
//  1. write snapshot to a temporary, fsync it
//  2. rename it to snap.(g+1) — the atomic commit point
//  3. create the empty segment aof.(g+1), fsync the directory
//  4. retire generation g's files
//
// A crash before step 2 leaves generation g intact (the temporary is
// debris removed at the next open); a crash after it recovers from
// g+1, with a missing aof.(g+1) reading as an empty tail. At no point
// can recovery observe a state with a record doubled between snapshot
// and log or a record lost.
//
// The caller must hold the shard's execution lock so the emitted state
// is a consistent cut; records appended before the rewrite but not yet
// committed are dropped from the buffer — their effects are inside the
// cut, so replay must not see them again.
func (l *Log) Rewrite(emit func(add func(key, value []byte) error) error) error {
	return l.RewriteKinds(func(add func(kind Kind, key, value []byte) error) error {
		return emit(func(key, value []byte) error {
			return add(RecLoad, key, value)
		})
	})
}

// RewriteKinds is Rewrite with caller-chosen record kinds, so a
// snapshot can persist state beyond the record bodies — armed TTL
// deadlines are written as RecExpire frames after the RecLoad stream,
// keeping a compacted log equivalent to the uncompacted one.
func (l *Log) RewriteKinds(emit func(add func(kind Kind, key, value []byte) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}

	tmp := tmpSnapPath(l.dir, l.shard)
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal shard %d: rewrite: %w", l.shard, err)
	}
	bw := bufio.NewWriterSize(tf, 1<<16)
	var scratch []byte
	werr := emit(func(kind Kind, key, value []byte) error {
		scratch = AppendFrame(scratch[:0], kind, key, value)
		_, err := bw.Write(scratch)
		return err
	})
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = tf.Sync()
	}
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal shard %d: rewrite: %w", l.shard, werr)
	}

	newGen := l.gen + 1
	if err := os.Rename(tmp, snapPath(l.dir, l.shard, newGen)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal shard %d: rewrite commit: %w", l.shard, err)
	}
	nf, err := os.OpenFile(segPath(l.dir, l.shard, newGen),
		os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal shard %d: rewrite segment: %w", l.shard, err)
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return fmt.Errorf("wal shard %d: rewrite dir sync: %w", l.shard, err)
	}

	oldGen := l.gen
	l.f.Close()
	l.f = nf
	l.gen = newGen
	l.size = 0
	l.pend = l.pend[:0]
	l.unsynced = false
	l.rewrites++
	l.lastSave = time.Now().UnixNano()
	os.Remove(segPath(l.dir, l.shard, oldGen))
	os.Remove(snapPath(l.dir, l.shard, oldGen))
	return nil
}
