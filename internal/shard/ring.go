// Bounded MPSC request ring: the queue between connection goroutines
// (producers) and a shard's owning worker (the single consumer). The
// fast path is futex-free — producers claim slots with a CAS on the
// tail, the consumer advances the head with plain atomic stores, and
// per-slot sequence numbers (Vyukov's bounded-queue scheme) carry the
// handoff, so an enqueue onto a non-full ring and a dequeue from a
// non-empty ring never touch a lock or the scheduler.
package shard

import (
	"sync/atomic"
)

// Req is one queued single-key operation: the request fields the
// connection goroutine fills, and the completion fields the worker
// fills before signalling done. Reqs are pooled per connection and
// reused across pipeline bursts, so the steady state allocates
// nothing: Val is appended into at len 0 (keeping its capacity), and
// the done channel (capacity 1) is created once per slot.
type Req struct {
	// Kind selects the engine operation.
	Kind OpKind
	// Key is the operation key. It may alias a connection read buffer;
	// the worker only reads it during execution, and the engine copies
	// what it stores, so the producer may reuse the buffer after Wait.
	Key []byte
	// Value is the SET payload (same aliasing contract as Key).
	Value []byte

	// Val receives a GET's value, appended into Val[:0] — the buffer
	// is owned by the Req and reused across operations.
	Val []byte
	// OK is the boolean result: GET/EXISTS/DEL hit, always true for SET.
	OK bool
	// Out is the per-op outcome (shard, modeled cycles, addressing-path
	// flags). Set Out.Trace before Enqueue to trace the op.
	Out OpOutcome

	done chan struct{}
}

// OpKind enumerates the operations the worker runtime executes.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpSet
	OpDelete
	OpExists
	OpGetTouch
)

// NewReq returns a request slot ready for its first Enqueue.
func NewReq() *Req { return &Req{done: make(chan struct{}, 1)} }

// Wait blocks until the worker has completed the request. Each
// Enqueue must be matched by exactly one Wait before the Req is
// reused.
func (r *Req) Wait() { <-r.done }

// ring is the bounded MPSC queue, one per shard worker. Capacity is a
// power of two; each slot's seq field encodes its state relative to
// the wrapping positions: seq == pos means free for the producer
// claiming pos, seq == pos+1 means filled and ready for the consumer.
type ring struct {
	mask  uint64
	slots []ringSlot
	_     [48]byte // keep tail off the slots' cache lines
	tail  atomic.Uint64
	_pad  [56]byte // tail and head on separate cache lines
	head  atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	req *Req
}

func newRing(capacity int) *ring {
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	q := &ring{mask: n - 1, slots: make([]ringSlot, n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// enqueue claims a slot and publishes r; it returns false when the
// ring is full. Safe for concurrent producers.
func (q *ring) enqueue(r *Req) bool {
	pos := q.tail.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if q.tail.CompareAndSwap(pos, pos+1) {
				s.req = r
				s.seq.Store(pos + 1)
				return true
			}
			pos = q.tail.Load()
		case seq < pos:
			// The slot still holds an entry from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; reload the tail.
			pos = q.tail.Load()
		}
	}
}

// dequeue pops the oldest request, or nil when the ring is empty.
// Single consumer only.
func (q *ring) dequeue() *Req {
	pos := q.head.Load()
	s := &q.slots[pos&q.mask]
	if s.seq.Load() != pos+1 {
		return nil
	}
	r := s.req
	s.req = nil
	s.seq.Store(pos + q.mask + 1)
	q.head.Store(pos + 1)
	return r
}

// depth approximates the queued count (racy reads of head and tail;
// used for gauges only).
func (q *ring) depth() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}
