package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/trace"
	"addrkv/internal/ycsb"
)

// --- ring ---

func TestRingFIFOAndWrap(t *testing.T) {
	q := newRing(4)
	if q.dequeue() != nil {
		t.Fatal("dequeue on empty ring should return nil")
	}
	reqs := make([]*Req, 10)
	for i := range reqs {
		reqs[i] = NewReq()
	}
	// Several laps around a 4-slot ring, checking FIFO order.
	next := 0
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 4; i++ {
			if !q.enqueue(reqs[(lap*4+i)%len(reqs)]) {
				t.Fatalf("lap %d: enqueue %d on non-full ring failed", lap, i)
			}
		}
		if q.enqueue(reqs[0]) {
			t.Fatalf("lap %d: enqueue on full ring succeeded", lap)
		}
		if d := q.depth(); d != 4 {
			t.Fatalf("lap %d: depth = %d, want 4", lap, d)
		}
		for i := 0; i < 4; i++ {
			got := q.dequeue()
			want := reqs[next%len(reqs)]
			next++
			if got != want {
				t.Fatalf("lap %d: dequeue %d returned wrong request", lap, i)
			}
		}
	}
	if q.dequeue() != nil {
		t.Fatal("drained ring should dequeue nil")
	}
}

func TestRingCapacityRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {4096, 4096}, {5000, 8192},
	} {
		if q := newRing(tc.in); len(q.slots) != tc.want {
			t.Errorf("newRing(%d): %d slots, want %d", tc.in, len(q.slots), tc.want)
		}
	}
}

func TestRingConcurrentProducers(t *testing.T) {
	q := newRing(64)
	const producers, perProducer = 8, 2000
	var wg sync.WaitGroup
	seen := make(chan *Req, producers*perProducer)
	done := make(chan struct{})
	go func() { // single consumer
		defer close(done)
		for n := 0; n < producers*perProducer; {
			if r := q.dequeue(); r != nil {
				seen <- r
				n++
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r := NewReq()
				for !q.enqueue(r) {
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d requests, want %d", len(seen), producers*perProducer)
	}
	// No duplicates.
	uniq := map[*Req]bool{}
	for len(seen) > 0 {
		r := <-seen
		if uniq[r] {
			t.Fatal("request dequeued twice")
		}
		uniq[r] = true
	}
}

// --- worker runtime ---

func workloadOps(n int) []ycsb.Op {
	g := ycsb.NewGenerator(ycsb.Config{
		Keys: 4000, ValueSize: 64, Dist: ycsb.Zipf, Seed: 9, SetFraction: 0.2,
	})
	ops := make([]ycsb.Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// reply captures one op's results for differential comparison.
type reply struct {
	val []byte
	ok  bool
	out OpOutcome
}

// TestWorkerMatchesMutexSequential: the tentpole determinism pin. A
// single producer submitting ops one at a time through the worker
// runtime must produce bit-for-bit the same replies, per-op outcomes
// and engine stats as the mutex-path *O methods on an identically
// configured cluster — for 1 shard (where it also equals the seed
// engine, via TestOneShardMatchesSingleEngine) and for several.
func TestWorkerMatchesMutexSequential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{Shards: shards, Engine: kv.Config{
				Keys: 4000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42, RedisLayer: true,
			}}
			cm, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cm.Load(4000, 64)
			cw.Load(4000, 64)
			if err := cw.StartWorkers(64); err != nil {
				t.Fatal(err)
			}
			defer cw.StopWorkers()

			ops := workloadOps(6000)
			req := NewReq()
			var kbuf [ycsb.KeyLen]byte
			for oi, op := range ops {
				key := ycsb.KeyNameInto(kbuf[:], op.KeyID)
				var mu, wk reply
				switch op.Type {
				case ycsb.Get:
					mu.val, mu.ok = cm.GetO(key, &mu.out)
					req.Kind = OpGet
				case ycsb.Set:
					cm.SetO(key, ycsb.Value(op.KeyID, 1, 64), &mu.out)
					mu.ok = true
					req.Kind = OpSet
					req.Value = ycsb.Value(op.KeyID, 1, 64)
				}
				req.Key = key
				req.Out = OpOutcome{Shard: -1}
				cw.Enqueue(req)
				req.Wait()
				wk = reply{val: req.Val, ok: req.OK, out: req.Out}
				if req.Kind == OpSet {
					wk.val = nil
				}
				if wk.ok != mu.ok || !bytes.Equal(wk.val, mu.val) {
					t.Fatalf("op %d: reply diverged: worker (%q,%v) vs mutex (%q,%v)",
						oi, wk.val, wk.ok, mu.val, mu.ok)
				}
				if wk.out != mu.out {
					t.Fatalf("op %d: outcome diverged:\nworker: %+v\nmutex:  %+v", oi, wk.out, mu.out)
				}
			}
			ws, ms := cw.Stats(), cm.Stats()
			for i := range ws.PerShard {
				if ws.PerShard[i] != ms.PerShard[i] {
					t.Fatalf("shard %d stats diverged:\nworker: %+v\nmutex:  %+v",
						i, ws.PerShard[i], ms.PerShard[i])
				}
			}
		})
	}
}

// TestWorkerConcurrentProducersExact: N producer goroutines (the
// cross-connection case) firing disjoint key ranges through the
// worker runtime. Totals must be exact, every reply correct, and the
// drained-op counters must account for every request.
func TestWorkerConcurrentProducersExact(t *testing.T) {
	c, err := New(Config{Shards: 4, Engine: kv.Config{
		Keys: 8000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 1, RedisLayer: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StartWorkers(128); err != nil {
		t.Fatal(err)
	}
	defer c.StopWorkers()

	const producers, perProducer = 8, 1500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			req := NewReq()
			for i := 0; i < perProducer; i++ {
				id := uint64(p*perProducer + i)
				key := []byte(fmt.Sprintf("user%016d", id))
				req.Kind = OpSet
				req.Key = key
				req.Value = ycsb.Value(id, 0, 32)
				req.Out = OpOutcome{Shard: -1}
				c.Enqueue(req)
				req.Wait()
				req.Kind = OpGet
				req.Out = OpOutcome{Shard: -1}
				c.Enqueue(req)
				req.Wait()
				if !req.OK || !bytes.Equal(req.Val, ycsb.Value(id, 0, 32)) {
					t.Errorf("producer %d: GET %q after SET returned (%q, %v)", p, key, req.Val, req.OK)
					return
				}
				if req.Out.Shard != c.ShardFor(key) {
					t.Errorf("outcome shard %d, want %d", req.Out.Shard, c.ShardFor(key))
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got, want := c.Len(), producers*perProducer; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	var drained, totalOps uint64
	for _, ws := range c.RuntimeStats() {
		drained += ws.DrainedOps
		totalOps += ws.Drains
	}
	if want := uint64(2 * producers * perProducer); drained != want {
		t.Fatalf("drained ops = %d, want %d", drained, want)
	}
	if totalOps > drained {
		t.Fatalf("drains (%d) exceed drained ops (%d)", totalOps, drained)
	}
}

// TestWorkerStopDrainsQueue: requests already enqueued when
// StopWorkers is called still complete.
func TestWorkerStopDrainsQueue(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{
		Keys: 100, Index: kv.KindChainHash, Mode: kv.ModeSTLT, RedisLayer: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StartWorkers(16); err != nil {
		t.Fatal(err)
	}
	reqs := make([]*Req, 8)
	for i := range reqs {
		reqs[i] = NewReq()
		reqs[i].Kind = OpSet
		reqs[i].Key = []byte(fmt.Sprintf("k%d", i))
		reqs[i].Value = []byte("v")
		c.Enqueue(reqs[i])
	}
	c.StopWorkers()
	for i, r := range reqs {
		r.Wait() // must not hang
		if !r.OK {
			t.Fatalf("request %d not completed", i)
		}
	}
	if c.WorkersRunning() {
		t.Fatal("WorkersRunning after StopWorkers")
	}
	// Restart works.
	if err := c.StartWorkers(16); err != nil {
		t.Fatal(err)
	}
	c.StopWorkers()
}

// TestWorkerTraceEvents: a traced request picks up queue.wait + drain
// events plus the usual shard-lock/engine timeline, and tracing stays
// read-only (outcome equals an untraced twin's).
func TestWorkerTraceEvents(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{
		Keys: 1000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, RedisLayer: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(1000, 64)
	if err := c.StartWorkers(16); err != nil {
		t.Fatal(err)
	}
	defer c.StopWorkers()
	tr := trace.NewTracer(2, 8, 1)
	sp := tr.BeginSampled("get", []byte("user0000000000000001"))
	req := NewReq()
	req.Kind = OpGet
	req.Key = []byte(ycsb.KeyName(1))
	req.Out = OpOutcome{Shard: -1, Trace: sp}
	c.Enqueue(req)
	req.Wait()
	tr.Finish(sp, req.Out.Shard, req.Out.FastHit, req.Out.Missed)
	for _, k := range []trace.EventKind{trace.EvQueueWait, trace.EvDrain, trace.EvShardLock, trace.EvEngineOp} {
		if !sp.Has(k) {
			t.Errorf("traced worker op missing %v event; got %+v", k, sp.Events)
		}
	}
}

// TestEnqueueWaitZeroAlloc pins the enqueue/dequeue path's allocation
// budget: a steady-state producer reusing one Req must not allocate.
// (The worker goroutine itself is also on the measured path, since
// AllocsPerRun counts mallocs globally.)
func TestEnqueueWaitZeroAlloc(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{
		Keys: 2000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, RedisLayer: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(2000, 64)
	if err := c.StartWorkers(64); err != nil {
		t.Fatal(err)
	}
	defer c.StopWorkers()
	req := NewReq()
	key := []byte(ycsb.KeyName(7))
	// Warm: the Val buffer reaches its steady-state capacity.
	for i := 0; i < 100; i++ {
		req.Kind = OpGet
		req.Key = key
		req.Out = OpOutcome{Shard: -1}
		c.Enqueue(req)
		req.Wait()
	}
	if !req.OK {
		t.Fatal("warmup GET missed")
	}
	if n := testing.AllocsPerRun(2000, func() {
		req.Kind = OpGet
		req.Key = key
		req.Out = OpOutcome{Shard: -1}
		c.Enqueue(req)
		req.Wait()
	}); n != 0 {
		t.Errorf("enqueue/wait GET path: %.1f allocs/op, budget 0", n)
	}
	val := make([]byte, 64)
	if n := testing.AllocsPerRun(2000, func() {
		req.Kind = OpSet
		req.Key = key
		req.Value = val
		req.Out = OpOutcome{Shard: -1}
		c.Enqueue(req)
		req.Wait()
	}); n != 0 {
		t.Errorf("enqueue/wait SET path: %.1f allocs/op, budget 0", n)
	}
}

// --- ShardFor mask routing ---

// TestShardForMaskMatchesModulo: for power-of-two shard counts the
// mask route must agree with the modulo it replaces; non-power-of-two
// counts keep the modulo. Also pins that routing is independent of
// the dispatch mode (same cluster config → same ShardFor).
func TestShardForMaskMatchesModulo(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8, 16} {
		c, err := New(Config{Shards: n, Engine: kv.Config{
			Keys: 100 * n, Index: kv.KindChainHash, Mode: kv.ModeBaseline,
		}})
		if err != nil {
			t.Fatal(err)
		}
		wantMask := uint64(0)
		if n&(n-1) == 0 {
			wantMask = uint64(n - 1)
		}
		if c.mask != wantMask {
			t.Fatalf("shards=%d: mask = %#x, want %#x", n, c.mask, wantMask)
		}
		for id := uint64(0); id < 5000; id++ {
			key := []byte(ycsb.KeyName(id))
			want := int(c.route.Hash(key, RouteSeed) % uint64(n))
			if got := c.ShardFor(key); got != want {
				t.Fatalf("shards=%d key %s: ShardFor = %d, want %d", n, key, got, want)
			}
		}
	}
}

func BenchmarkShardFor(b *testing.B) {
	for _, n := range []int{7, 8} {
		name := "mod"
		if n&(n-1) == 0 {
			name = "mask"
		}
		b.Run(fmt.Sprintf("%s-shards%d", name, n), func(b *testing.B) {
			c, err := New(Config{Shards: n, Engine: kv.Config{
				Keys: 100 * n, Index: kv.KindChainHash, Mode: kv.ModeBaseline,
			}})
			if err != nil {
				b.Fatal(err)
			}
			key := []byte(ycsb.KeyName(12345))
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += c.ShardFor(key)
			}
			_ = sink
		})
	}
}

// BenchmarkDispatch compares the mutex path against the worker
// runtime under parallel producers — the contention case the worker
// runtime exists for. Used by the CI benchstat job (mutex vs worker).
func BenchmarkDispatch(b *testing.B) {
	newCluster := func(b *testing.B) *Cluster {
		c, err := New(Config{Shards: 4, Engine: kv.Config{
			Keys: 8000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, RedisLayer: true,
		}})
		if err != nil {
			b.Fatal(err)
		}
		c.Load(8000, 64)
		return c
	}
	b.Run("mutex", func(b *testing.B) {
		c := newCluster(b)
		b.RunParallel(func(pb *testing.PB) {
			var out OpOutcome
			var kbuf [ycsb.KeyLen]byte
			id := uint64(0)
			for pb.Next() {
				key := ycsb.KeyNameInto(kbuf[:], id%8000)
				c.GetO(key, &out)
				id++
			}
		})
	})
	b.Run("worker", func(b *testing.B) {
		c := newCluster(b)
		if err := c.StartWorkers(0); err != nil {
			b.Fatal(err)
		}
		defer c.StopWorkers()
		b.RunParallel(func(pb *testing.PB) {
			req := NewReq()
			var kbuf [ycsb.KeyLen]byte
			id := uint64(0)
			for pb.Next() {
				req.Kind = OpGet
				req.Key = ycsb.KeyNameInto(kbuf[:], id%8000)
				req.Out = OpOutcome{Shard: -1}
				c.Enqueue(req)
				req.Wait()
				id++
			}
		})
	})
}
