// Slot-migration support: the cluster op gate plus functional
// extraction/installation of key sets, the building blocks
// internal/cluster composes into live slot migration between nodes.
//
// Correctness rests on one rule: every decision that affects a key's
// home is made UNDER that key's shard lock. Routing checks in the
// front-end are only an optimization — a command classified "local"
// may race a migration that starts before the op executes (worker
// rings buffer ops; the mutex path has the same classify-to-execute
// window). The gate closes that window: it runs inside the same
// critical section as the engine op, so an op either executes before
// a batch extraction observes the store, or is denied and redirected
// after the extraction completed. Extraction in turn ships each
// shard's records to the destination BEFORE releasing that shard's
// lock, so by the time any denied op can be redirected with ASK, the
// destination has already acknowledged the records — no client can
// observe a key in neither place, read a stale source copy, or lose
// an acknowledged write.
package shard

import (
	"encoding/binary"

	"addrkv/internal/kv"
	"addrkv/internal/wal"
)

// GateDecision is the op gate's verdict for one key.
type GateDecision uint8

const (
	// GateAllow lets the op execute normally.
	GateAllow GateDecision = iota
	// GateIfPresent lets the op execute only while the key is still
	// stored locally — the dual-serve rule of a migrating slot:
	// present keys are served by the source, extracted (or never
	// present) keys redirect to the destination with ASK.
	GateIfPresent
	// GateDeny rejects the op outright (slot not owned by this node).
	GateDeny
)

// Gate decides, under the shard lock, whether a single-key data op
// may execute. It must be cheap and functional: it runs inside every
// op's critical section while set, and must not call back into the
// cluster (lock order is shard.mu -> gate's own state).
type Gate func(key []byte) GateDecision

// SetOpGate installs the cluster op gate (nil clears it). Ops whose
// OpOutcome.Bypass is pre-set skip the gate — the escape hatch for
// ASK-redirected commands that are legitimately served while their
// slot is still importing. Non-cluster callers never set a gate and
// pay one atomic nil-load per op.
func (c *Cluster) SetOpGate(g Gate) {
	if g == nil {
		c.gate.Store(nil)
		return
	}
	c.gate.Store(&g)
}

// gateAllows applies the op gate to one key under the shard lock.
// When the op is denied it marks out.Denied and returns false; no
// engine call may run and no cycles are charged, so a denied op is
// invisible to the simulation.
func (c *Cluster) gateAllows(e *kv.Engine, key []byte, out *OpOutcome) bool {
	gp := c.gate.Load()
	if gp == nil {
		return true
	}
	if out != nil && out.Bypass {
		return true
	}
	switch (*gp)(key) {
	case GateAllow:
		return true
	case GateIfPresent:
		if e.Contains(key) {
			return true
		}
	}
	if out != nil {
		out.Denied = true
	}
	return false
}

// gateDeniesBatch reports whether the op gate rejects any key of a
// shard sub-batch, checked under the shard lock before any engine op
// runs. Batches get no IfPresent dual-serve: a multi-key command
// overlapping a migrating slot is denied whole (TRYAGAIN) rather than
// split per key, matching the classify-time TRYAGAIN rule.
func (c *Cluster) gateDeniesBatch(e *kv.Engine, sub [][]byte) bool {
	gp := c.gate.Load()
	if gp == nil {
		return false
	}
	for _, k := range sub {
		if (*gp)(k) != GateAllow {
			return true
		}
	}
	return false
}

// CollectKeys returns a copy of every stored key matching the
// predicate, scanning shard by shard under each shard's lock. The
// snapshot is not atomic across shards — migration tolerates that
// because keys created after the scan are gated to the destination
// and keys deleted after it are skipped at extraction time.
func (c *Cluster) CollectKeys(match func(key []byte) bool) [][]byte {
	var keys [][]byte
	for _, s := range c.shards {
		s.mu.Lock()
		s.e.RangeRecords(func(k, _ []byte) bool {
			if match(k) {
				keys = append(keys, append([]byte(nil), k...))
			}
			return true
		})
		s.mu.Unlock()
	}
	return keys
}

// ExtractBatch moves a batch of keys out of this node: per shard
// group, under ONE shard-lock critical section, each still-present
// key is re-read functionally, deleted, and framed as a wal RecLoad
// record — followed by a RecExpire frame when the key carries a TTL,
// so deadlines migrate with their records. Keys whose deadline has
// already passed are reaped in place and NEVER shipped: the
// destination must not install a corpse the source would have lazily
// expired. ship is called with the group's frames while the lock is
// still held and must only return nil once the destination has
// acknowledged them. Keys absent by extraction time (deleted by
// traffic after CollectKeys) are skipped. If ship fails, the group is
// re-installed (values and deadlines) before the lock releases — the
// store is unchanged and the migration may retry; groups already
// shipped stay shipped (re-extracting them later is idempotent: the
// destination's LoadOne upserts). Returns the number of records
// shipped and the total frame bytes.
func (c *Cluster) ExtractBatch(keys [][]byte, ship func(frames []byte, count int) error) (moved, bytes int, err error) {
	var frames, vbuf []byte
	var dlb [8]byte
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		s := c.shards[si]
		s.mu.Lock()
		frames = frames[:0]
		var extK, extV [][]byte
		var extDL []int64
		var extArmed []bool
		for _, ki := range idxs {
			k := keys[ki]
			v, ok := s.e.PeekOne(k, vbuf)
			if !ok {
				continue
			}
			vbuf = v
			dl, armed := s.e.DeadlineOf(k)
			if armed && s.e.Now() >= dl {
				s.e.ExpireDelOne(k) // dead on extraction: reap, don't ship
				continue
			}
			vc := append([]byte(nil), v...)
			s.e.RemoveOne(k)
			frames = wal.AppendFrame(frames, wal.RecLoad, k, vc)
			if armed {
				binary.LittleEndian.PutUint64(dlb[:], uint64(dl))
				frames = wal.AppendFrame(frames, wal.RecExpire, k, dlb[:])
			}
			extK = append(extK, k)
			extV = append(extV, vc)
			extDL = append(extDL, dl)
			extArmed = append(extArmed, armed)
		}
		if len(extK) == 0 {
			s.mu.Unlock()
			continue
		}
		if serr := ship(frames, len(extK)); serr != nil {
			for j := range extK {
				s.e.LoadOne(extK[j], extV[j])
				if extArmed[j] {
					s.e.ArmDeadline(extK[j], extDL[j])
				}
			}
			s.mu.Unlock()
			return moved, bytes, serr
		}
		moved += len(extK)
		bytes += len(frames)
		s.mu.Unlock()
	}
	return moved, bytes, nil
}

// InstallRecords applies migrated records on the destination: each
// RecLoad is routed to its home shard and installed functionally
// (LoadOne, the same untimed path WAL recovery uses), optionally
// followed by an STLT re-warm — the paper's insertSTLT() step of the
// record-move protocol. RecExpire frames re-arm the shipped TTL
// deadlines (untimed; a frame order of load-then-expire is guaranteed
// by ExtractBatch). Returns how many records were installed and how
// many STLT rows were warmed.
func (c *Cluster) InstallRecords(recs []wal.Record, rewarm bool) (installed, rewarmed int) {
	for _, r := range recs {
		i := c.ShardFor(r.Key)
		s := c.shards[i]
		s.mu.Lock()
		if r.Kind == wal.RecExpire && len(r.Value) == 8 {
			s.e.ArmDeadline(r.Key, int64(binary.LittleEndian.Uint64(r.Value)))
			s.mu.Unlock()
			continue
		}
		s.e.LoadOne(r.Key, r.Value)
		if rewarm && s.e.RewarmOne(r.Key) {
			rewarmed++
		}
		s.mu.Unlock()
		installed++
	}
	return installed, rewarmed
}

// PeekValue reads a key's stored value functionally (copied), under
// the shard lock — verification paths use it to compare source and
// destination stores byte for byte without charging cycles.
func (c *Cluster) PeekValue(key []byte) ([]byte, bool) {
	s := c.slot(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.e.PeekOne(key, nil)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// ContainsKey reports functionally whether key is stored on this
// node, under the shard lock.
func (c *Cluster) ContainsKey(key []byte) bool {
	s := c.slot(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Contains(key)
}
