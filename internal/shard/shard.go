// Package shard scales the paper's single-core simulated engine to a
// multi-core cluster: N independent kv.Engine instances (each with its
// own simulated machine, caches, TLBs, STB/IPB, and an STLT sized at
// keys/N), with each key routed to one shard by a stable hash.
//
// The design follows the scaling path the related work lays out: LaKe
// replicates processing elements over a common store, and the paper's
// own STLT is a *per-process* kernel table — so a shard-per-core
// cluster where every core keeps private translation state (TLB, STB,
// IPB) and a private STLT slice is the faithful multi-core extension.
// Cross-shard state is nil by construction: a key's records, STLT rows
// and cache lines live entirely on its home shard, so shards never
// need coherence traffic and the front-end may drive them from
// concurrent goroutines (one lock per shard).
//
// Routing happens in the front-end (the real Go dispatch code), not on
// any simulated machine: it models the NIC/steering logic that real
// multi-core KV servers (and LaKe's hardware scheduler) place before
// the cores, so no simulated cycles are charged for it.
package shard

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"addrkv/internal/hashfn"
	"addrkv/internal/kv"
	"addrkv/internal/trace"
	"addrkv/internal/wal"
	"addrkv/internal/ycsb"
)

// RouteSeed is the fixed seed of the shard-routing hash. It is
// deliberately distinct from the engines' fast-path hash seed so that
// shard placement and STLT row placement are uncorrelated. Exported
// because cluster mode derives hash slots from the same function
// (internal/cluster.SlotOf), so slot placement and shard placement
// stay consistent views of one hash.
const RouteSeed = 0x5A4DC0DE

// RouteValue returns the default routing-hash value of key — xxh64
// with RouteSeed, the 64-bit value ShardFor reduces to a shard index
// and cluster mode reduces to a hash slot. Cluster-aware clients use
// it for slot prediction so client and server always agree on
// placement.
func RouteValue(key []byte) uint64 { return hashfn.XXH64.Hash(key, RouteSeed) }

// Config shapes a Cluster.
type Config struct {
	// Shards is the number of independent engines (default 1).
	Shards int
	// Engine is the per-shard engine template. Engine.Keys is the
	// TOTAL expected key count across the cluster; each shard's index
	// and STLT are sized at Keys/Shards. Shard i runs with seed
	// Engine.Seed+i so identically-configured shards do not share hash
	// layouts (shard 0 keeps the template seed, which is what makes a
	// 1-shard cluster bit-identical to a single engine).
	Engine kv.Config
	// RouteHash overrides the key-to-shard routing hash
	// (default xxh64).
	RouteHash *hashfn.Func
}

// Cluster is a sharded set of simulated engines.
type Cluster struct {
	shards []*shardSlot
	route  hashfn.Func
	// mask is len(shards)-1 when the shard count is a power of two —
	// ShardFor then routes with one AND instead of a 64-bit modulo.
	// Zero means "use %" (non-power-of-two counts; shard 0's mask
	// would also be 0, but that count takes the len==1 early return).
	mask uint64

	// Worker runtime (see worker.go): one owning goroutine per shard
	// draining a bounded MPSC request ring. The atomic pointer lets
	// metric scrapes read depth/drain counters concurrently with
	// StartWorkers/StopWorkers.
	wset    atomic.Pointer[workerSet]
	wwg     sync.WaitGroup
	onDrain func(shard, burst int)
	// sweepLimit is the per-drain active-expiry sample size (worker
	// runtime; 0 = off). Set before StartWorkers.
	sweepLimit int

	// logs, when non-nil, holds one append-only log per shard
	// (durability; see durability.go). Installed by AttachWAL before
	// traffic and read without synchronization on the hot path.
	logs []*wal.Log

	// gate, when non-nil, is the cluster-mode op gate consulted under
	// the shard lock before every single-key data op (see migrate.go).
	// Atomic so migrations can install/clear it against live traffic.
	gate atomic.Pointer[Gate]
}

// shardSlot pairs an engine with its serialization lock: each engine
// models ONE core, so operations on the same shard serialize while
// different shards proceed concurrently.
type shardSlot struct {
	mu sync.Mutex
	e  *kv.Engine
	// maint is the drain scratch for the engine's maintenance queue
	// (lazy expiries, evictions); only touched under mu.
	maint []kv.Maint
}

// New builds a cluster of cfg.Shards engines.
func New(cfg Config) (*Cluster, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", n)
	}
	route := hashfn.XXH64
	if cfg.RouteHash != nil {
		route = *cfg.RouteHash
	}
	perShard := cfg.Engine
	perShard.Keys = (cfg.Engine.Keys + n - 1) / n
	c := &Cluster{route: route}
	if n&(n-1) == 0 {
		c.mask = uint64(n - 1)
	}
	for i := 0; i < n; i++ {
		ecfg := perShard
		ecfg.Seed = cfg.Engine.Seed + uint64(i)
		e, err := kv.New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards = append(c.shards, &shardSlot{e: e})
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardFor returns the home shard of a key — a stable function of the
// key bytes only, so clients, replayers and the server always agree.
func (c *Cluster) ShardFor(key []byte) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := c.route.Hash(key, RouteSeed)
	if c.mask != 0 {
		// h & (2^k - 1) == h % 2^k: bit-identical routing, no divide.
		return int(h & c.mask)
	}
	return int(h % uint64(len(c.shards)))
}

func (c *Cluster) slot(key []byte) *shardSlot {
	return c.shards[c.ShardFor(key)]
}

// Engine exposes shard i's engine directly, WITHOUT locking — for
// single-threaded phases (tests, harness setup) only.
func (c *Cluster) Engine(i int) *kv.Engine { return c.shards[i].e }

// Load bulk-inserts n sequential YCSB keys (untimed), each routed to
// its home shard — the cluster form of kv.Engine.Load. With a WAL
// attached, each load is recorded (RecLoad — replayed untimed) so a
// preloaded server recovers to the same warm state.
func (c *Cluster) Load(n, valueSize int) {
	var buf [ycsb.KeyLen]byte
	for id := uint64(0); id < uint64(n); id++ {
		key := ycsb.KeyNameInto(buf[:], id)
		i := c.ShardFor(key)
		s := c.shards[i]
		s.mu.Lock()
		val := ycsb.Value(id, 0, valueSize)
		s.e.LoadOne(key, val)
		c.walAppend(i, s.e, wal.RecLoad, key, val, nil)
		s.mu.Unlock()
	}
	if c.logs != nil {
		for _, l := range c.logs {
			l.Commit() //nolint:errcheck // sticky; surfaced via WALErr
		}
	}
}

// OpOutcome describes one completed data-path operation for telemetry:
// which shard served it, what it cost in modeled cycles, and how the
// addressing path resolved. It is filled by diffing kv.OpProbe
// snapshots around the op while the shard lock is held, so the deltas
// are exact even under concurrent traffic — and since probing only
// reads counters, observed runs stay bit-for-bit identical to
// unobserved ones.
type OpOutcome struct {
	// Shard is the home shard that served the operation.
	Shard int
	// Cycles is the modeled cycle cost charged for this operation.
	Cycles uint64
	// FastHit reports whether the STLT/SLB fast path served it.
	FastHit bool
	// Missed reports a GET/EXISTS of an absent key.
	Missed bool
	// TLBMisses, STBHits and PageWalks count translation events
	// during this operation.
	TLBMisses uint64
	STBHits   uint64
	PageWalks uint64
	// Trace, when set by the caller BEFORE the op, is the front-end's
	// span for this operation: the shard anchors its cycle base and
	// attaches it to the engine's event hooks for the duration of the
	// op (under the shard lock), then detaches it with the total cycle
	// cost stamped. The caller finishes the span (reply events,
	// Tracer.Finish) after the outcome returns.
	Trace *trace.Op
	// Bypass, when set by the caller BEFORE the op, exempts it from
	// the cluster op gate — used for ASK-redirected commands the
	// client has already re-routed to this node (see SetOpGate).
	Bypass bool
	// Denied reports that the op gate rejected the operation under the
	// shard lock: no engine call ran, no cycles were charged, and the
	// front-end must answer with a redirect instead of a reply.
	Denied bool
}

// observe fills out (when non-nil) from the probe delta across an op.
// Must be called with the shard's lock held.
func observe(i int, e *kv.Engine, out *OpOutcome, before kv.OpProbe) {
	if out == nil {
		return
	}
	observeDelta(i, out, before, e.Probe())
}

// observeDelta fills out from an explicit pair of probe snapshots.
// The worker's drain loop uses it with chained probes (op N's after
// is op N+1's before), halving probe cost across a burst.
func observeDelta(i int, out *OpOutcome, before, after kv.OpProbe) {
	*out = OpOutcome{
		Shard:     i,
		Cycles:    uint64(after.Machine.Cycles - before.Machine.Cycles),
		FastHit:   after.FastHits > before.FastHits,
		Missed:    after.Misses > before.Misses,
		TLBMisses: after.Machine.TLBMisses - before.Machine.TLBMisses,
		STBHits:   after.Machine.STBHits - before.Machine.STBHits,
		PageWalks: after.Machine.PageWalks - before.Machine.PageWalks,
		Trace:     out.Trace,
		Bypass:    out.Bypass,
	}
}

// attachTrace anchors a caller-provided span (out.Trace) on shard i's
// engine: sets the cycle base, stamps shard.lock, and connects the
// machine's event hooks. Must hold the shard lock.
func attachTrace(i int, e *kv.Engine, out *OpOutcome) {
	if out == nil || out.Trace == nil {
		return
	}
	cyc := uint64(e.M.Cycles())
	out.Trace.SetBase(cyc)
	out.Trace.Event(trace.EvShardLock, cyc, int64(i), 0, 0)
	e.AttachTrace(out.Trace)
}

// detachTrace stamps the span's total cycle cost and disconnects the
// event hooks. Must hold the shard lock.
func detachTrace(e *kv.Engine, out *OpOutcome) {
	if out == nil || out.Trace == nil {
		return
	}
	out.Trace.End(uint64(e.M.Cycles()))
	e.DetachTrace()
}

// Get retrieves a key with full timing on its home shard.
func (c *Cluster) Get(key []byte) ([]byte, bool) { return c.GetO(key, nil) }

// GetO is Get with an optional per-op outcome report.
func (c *Cluster) GetO(key []byte, out *OpOutcome) ([]byte, bool) {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return nil, false
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	v, ok := s.e.Get(key)
	wrote := c.walOp(i, s, 0, nil, nil, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	if wrote {
		c.walCommit(i, out, 1)
	}
	return v, ok
}

// GetTouch performs a timed GET charging the value read without
// materializing it.
func (c *Cluster) GetTouch(key []byte) bool { return c.GetTouchO(key, nil) }

// GetTouchO is GetTouch with an optional per-op outcome report.
func (c *Cluster) GetTouchO(key []byte, out *OpOutcome) bool {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return false
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	ok := s.e.GetTouch(key)
	wrote := c.walOp(i, s, 0, nil, nil, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	if wrote {
		c.walCommit(i, out, 1)
	}
	return ok
}

// Set inserts or updates a key with full timing on its home shard.
func (c *Cluster) Set(key, value []byte) { c.SetO(key, value, nil) }

// SetO is Set with an optional per-op outcome report.
func (c *Cluster) SetO(key, value []byte, out *OpOutcome) {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	s.e.Set(key, value)
	c.walOp(i, s, wal.RecSet, key, value, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	c.walCommit(i, out, 1)
}

// Delete removes a key with full timing on its home shard.
func (c *Cluster) Delete(key []byte) bool { return c.DeleteO(key, nil) }

// DeleteO is Delete with an optional per-op outcome report.
func (c *Cluster) DeleteO(key []byte, out *OpOutcome) bool {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return false
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	ok := s.e.Delete(key)
	c.walOp(i, s, wal.RecDel, key, nil, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	c.walCommit(i, out, 1)
	return ok
}

// Exists performs a timed existence-only check on the home shard.
func (c *Cluster) Exists(key []byte) bool { return c.ExistsO(key, nil) }

// ExistsO is Exists with an optional per-op outcome report.
func (c *Cluster) ExistsO(key []byte, out *OpOutcome) bool {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return false
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	ok := s.e.Exists(key)
	wrote := c.walOp(i, s, 0, nil, nil, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	if wrote {
		c.walCommit(i, out, 1)
	}
	return ok
}

// ExpireAt arms an absolute TTL deadline (unix ns) with full timing on
// the key's home shard, returning 1 when armed and 0 when the key is
// absent. Successful arms append a RecExpire frame so recovery replays
// the deadline.
func (c *Cluster) ExpireAt(key []byte, deadline int64) int {
	return c.ExpireAtO(key, deadline, nil)
}

// ExpireAtO is ExpireAt with an optional per-op outcome report.
func (c *Cluster) ExpireAtO(key []byte, deadline int64, out *OpOutcome) int {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return 0
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	ret := s.e.ExpireAt(key, deadline)
	opKind := wal.Kind(0)
	var dlb [8]byte
	if ret == 1 {
		opKind = wal.RecExpire
		binary.LittleEndian.PutUint64(dlb[:], uint64(deadline))
	}
	wrote := c.walOp(i, s, opKind, key, dlb[:], out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	if wrote {
		c.walCommit(i, out, 1)
	}
	return ret
}

// TTL reports a key's remaining TTL with full timing on its home shard
// (-2 absent, -1 no deadline, remaining ns otherwise).
func (c *Cluster) TTL(key []byte) int64 { return c.TTLO(key, nil) }

// TTLO is TTL with an optional per-op outcome report.
func (c *Cluster) TTLO(key []byte, out *OpOutcome) int64 {
	i := c.ShardFor(key)
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.gateAllows(s.e, key, out) {
		return -2
	}
	var before kv.OpProbe
	if out != nil {
		before = s.e.Probe()
		attachTrace(i, s.e, out)
	}
	ret := s.e.TTL(key)
	wrote := c.walOp(i, s, 0, nil, nil, out)
	detachTrace(s.e, out)
	observe(i, s.e, out, before)
	if wrote {
		c.walCommit(i, out, 1)
	}
	return ret
}

// SetClock installs one TTL time source on every shard engine (tests
// and differential harnesses; nil restores real time).
func (c *Cluster) SetClock(fn func() int64) {
	for _, s := range c.shards {
		s.mu.Lock()
		s.e.SetClock(fn)
		s.mu.Unlock()
	}
}

// Now reads the cluster's TTL clock (shard 0's engine clock — every
// shard shares the source installed by SetClock).
func (c *Cluster) Now() int64 {
	s := c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Now()
}

// SweepExpired runs one active-expiry cycle on every shard, examining
// up to limit armed deadlines per shard, and logs the reaped keys. The
// mutex-path ticker calls this; the worker runtime sweeps off its own
// drain loop.
func (c *Cluster) SweepExpired(limit int) int {
	reaped := 0
	for i, s := range c.shards {
		s.mu.Lock()
		n := s.e.SweepExpired(limit)
		if n > 0 {
			reaped += n
			if c.walOp(i, s, 0, nil, nil, nil) {
				c.walCommit(i, nil, n)
			}
		}
		s.mu.Unlock()
	}
	return reaped
}

// RunOp executes one generated workload operation on the home shard —
// except Scan ops, which scatter-gather every shard like the SCAN
// command. The harness path runs without a WAL; the maintenance queue
// is still drained (and discarded) so TTL/eviction runs cannot grow
// it.
func (c *Cluster) RunOp(op ycsb.Op, valueSize int) {
	var buf [ycsb.KeyLen]byte
	key := ycsb.KeyNameInto(buf[:], op.KeyID)
	if op.Type == ycsb.Scan {
		_, _ = c.Scan(key, op.ScanLen, func([]byte) bool { return true })
		return
	}
	s := c.slot(key)
	s.mu.Lock()
	s.e.RunOp(op, valueSize)
	if s.e.MaintPending() {
		s.maint = s.e.TakeMaint(s.maint)
	}
	s.mu.Unlock()
}

// ShardLen returns the number of keys stored on shard i.
func (c *Cluster) ShardLen(i int) int {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Idx.Len()
}

// Len returns the total number of stored keys across all shards.
func (c *Cluster) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.e.Idx.Len()
		s.mu.Unlock()
	}
	return total
}

// SetTracer installs tr as every shard engine's own span tracer
// (engine-begun ops on shard i file into ring i). Front-end spans via
// OpOutcome.Trace take precedence per op, so a server that creates its
// own spans can share the same tracer without double-tracing.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	for i, s := range c.shards {
		s.mu.Lock()
		s.e.SetTracer(tr, i)
		s.mu.Unlock()
	}
}

// MarkMeasurement resets every shard's counters: everything before
// this call was warm-up.
func (c *Cluster) MarkMeasurement() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.e.MarkMeasurement()
		s.mu.Unlock()
	}
}

// Reset returns every shard to its just-built state (FLUSHALL). With
// a WAL attached, each shard logs a flush record at its position in
// that shard's op order, so replay flushes at the same point.
func (c *Cluster) Reset() error {
	for i, s := range c.shards {
		s.mu.Lock()
		err := s.e.Reset()
		if err == nil {
			c.walAppend(i, s.e, wal.RecFlush, nil, nil, nil)
			c.walCommit(i, nil, 1)
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// UsedBytes sums the tracked record bytes across shards (0 without
// maxmemory).
func (c *Cluster) UsedBytes() int64 {
	var total int64
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.e.UsedBytes()
		s.mu.Unlock()
	}
	return total
}

// ExpiresArmed sums the armed TTL deadlines across shards.
func (c *Cluster) ExpiresArmed() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.e.ExpiresArmed()
		s.mu.Unlock()
	}
	return total
}

// ClusterStats is the merged view of a cluster run.
type ClusterStats struct {
	// PerShard holds each shard's own stats snapshot.
	PerShard []kv.Stats
	// Agg is the counter-wise sum over shards. Its CyclesPerOp is the
	// ops-weighted mean cost of one operation — the per-core service
	// time, NOT elapsed time (shards run concurrently).
	Agg kv.Stats
	// MaxShardCycles is the busiest shard's cycle count — the modeled
	// wall-clock bound of the run, since the slowest core finishes
	// last while the others idle.
	MaxShardCycles uint64
}

// CyclesPerOp returns the ops-weighted mean cycles per operation.
func (cs ClusterStats) CyclesPerOp() float64 { return cs.Agg.CyclesPerOp() }

// ModeledThroughput returns operations per modeled wall-clock cycle
// (total ops / busiest shard's cycles). Dividing two of these yields
// the modeled scaling factor between shard counts.
func (cs ClusterStats) ModeledThroughput() float64 {
	if cs.MaxShardCycles == 0 {
		return 0
	}
	return float64(cs.Agg.Ops) / float64(cs.MaxShardCycles)
}

// Stats snapshots and merges all shard counters.
func (c *Cluster) Stats() ClusterStats {
	cs := ClusterStats{PerShard: make([]kv.Stats, len(c.shards))}
	for i, s := range c.shards {
		s.mu.Lock()
		st := s.e.Stats()
		s.mu.Unlock()
		cs.PerShard[i] = st
		cs.Agg = cs.Agg.Add(st)
		if cyc := uint64(st.Machine.Cycles); cyc > cs.MaxShardCycles {
			cs.MaxShardCycles = cyc
		}
	}
	return cs
}
