package shard

import (
	"fmt"
	"sync"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/ycsb"
)

// TestOneShardMatchesSingleEngine: a 1-shard cluster must reproduce
// the seed single-engine run bit-for-bit — same cycles, same TLB and
// STLT counters. This pins the cluster layer as pure routing with no
// timing side effects.
func TestOneShardMatchesSingleEngine(t *testing.T) {
	cfg := kv.Config{Keys: 8000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	const loadN, warm, measure = 8000, 20000, 6000

	e, err := kv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Load(loadN, 64)
	c, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(loadN, 64)

	gcfg := ycsb.Config{Keys: loadN, ValueSize: 64, Dist: ycsb.Zipf, Seed: 7, SetFraction: 0.05}
	ge, gc := ycsb.NewGenerator(gcfg), ycsb.NewGenerator(gcfg)
	for i := 0; i < warm; i++ {
		e.RunOp(ge.Next(), 64)
		c.RunOp(gc.Next(), 64)
	}
	e.MarkMeasurement()
	c.MarkMeasurement()
	for i := 0; i < measure; i++ {
		e.RunOp(ge.Next(), 64)
		c.RunOp(gc.Next(), 64)
	}

	want := e.Stats()
	got := c.Stats()
	if got.Agg != want {
		t.Fatalf("1-shard cluster diverged from single engine:\ncluster: %+v\nengine:  %+v", got.Agg, want)
	}
	if got.MaxShardCycles != uint64(want.Machine.Cycles) {
		t.Fatalf("MaxShardCycles = %d, want %d", got.MaxShardCycles, want.Machine.Cycles)
	}
}

// TestObservedOpsMatchUnobserved: running the exact same stream with
// per-op outcome observation enabled must leave the engines bit-for-bit
// identical to an unobserved run (telemetry reads counters, never
// charges cycles), and the outcome deltas must sum to the engine's own
// aggregate counters.
func TestObservedOpsMatchUnobserved(t *testing.T) {
	cfg := kv.Config{Keys: 6000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	const loadN, nOps = 6000, 12000

	plain, err := New(Config{Shards: 2, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := New(Config{Shards: 2, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	plain.Load(loadN, 64)
	observed.Load(loadN, 64)
	// Drop table-allocation cycles so outcome sums cover every
	// remaining cycle in the aggregate.
	plain.MarkMeasurement()
	observed.MarkMeasurement()

	gcfg := ycsb.Config{Keys: loadN, ValueSize: 64, Dist: ycsb.Zipf, Seed: 9, SetFraction: 0.1}
	gp, go_ := ycsb.NewGenerator(gcfg), ycsb.NewGenerator(gcfg)
	var oc OpOutcome
	var sumCycles, sumTLBMisses, sumWalks, fastHits uint64
	var buf [ycsb.KeyLen]byte
	for i := 0; i < nOps; i++ {
		opP, opO := gp.Next(), go_.Next()
		key := ycsb.KeyNameInto(buf[:], opO.KeyID)
		if opP.Type == ycsb.Set {
			plain.Set(ycsb.KeyNameInto(buf[:], opP.KeyID), ycsb.Value(opP.KeyID, 1, 64))
			observed.SetO(key, ycsb.Value(opO.KeyID, 1, 64), &oc)
		} else {
			plain.GetTouch(ycsb.KeyNameInto(buf[:], opP.KeyID))
			observed.GetTouchO(key, &oc)
		}
		if want := observed.ShardFor(key); oc.Shard != want {
			t.Fatalf("outcome shard %d, want %d", oc.Shard, want)
		}
		sumCycles += oc.Cycles
		sumTLBMisses += oc.TLBMisses
		sumWalks += oc.PageWalks
		if oc.FastHit {
			fastHits++
		}
	}

	want, got := plain.Stats(), observed.Stats()
	if got.Agg != want.Agg {
		t.Fatalf("observed cluster diverged from unobserved:\nobserved: %+v\nplain:    %+v", got.Agg, want.Agg)
	}
	if sumCycles != uint64(got.Agg.Machine.Cycles) {
		t.Errorf("outcome cycles sum %d != aggregate %d", sumCycles, got.Agg.Machine.Cycles)
	}
	if sumTLBMisses != got.Agg.Machine.TLBMisses {
		t.Errorf("outcome TLB misses sum %d != aggregate %d", sumTLBMisses, got.Agg.Machine.TLBMisses)
	}
	if sumWalks != got.Agg.Machine.PageWalks {
		t.Errorf("outcome page walks sum %d != aggregate %d", sumWalks, got.Agg.Machine.PageWalks)
	}
	if fastHits != got.Agg.FastHits {
		t.Errorf("outcome fast hits %d != aggregate %d", fastHits, got.Agg.FastHits)
	}
}

// TestRoutingStableAndCovering: the same key always routes to the same
// shard, and a modest key population touches every shard.
func TestRoutingStableAndCovering(t *testing.T) {
	c, err := New(Config{Shards: 4, Engine: kv.Config{Keys: 4000, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for id := uint64(0); id < 1000; id++ {
		key := ycsb.KeyName(id)
		s := c.ShardFor(key)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if again := c.ShardFor(key); again != s {
			t.Fatalf("routing unstable for key %q: %d then %d", key, s, again)
		}
		seen[s]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("shard %d received no keys: %v", i, seen)
		}
	}
}

// TestShardingPartitionsKeys: after a routed load, per-shard index
// sizes sum to the total and match the router's assignment.
func TestShardingPartitionsKeys(t *testing.T) {
	const n = 3000
	c, err := New(Config{Shards: 4, Engine: kv.Config{Keys: n, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(n, 64)
	if got := c.Len(); got != n {
		t.Fatalf("cluster Len = %d, want %d", got, n)
	}
	want := map[int]int{}
	for id := uint64(0); id < n; id++ {
		want[c.ShardFor(ycsb.KeyName(id))]++
	}
	for i := 0; i < 4; i++ {
		if got := c.Engine(i).Idx.Len(); got != want[i] {
			t.Fatalf("shard %d holds %d keys, router assigned %d", i, got, want[i])
		}
	}
}

// TestConcurrentOpsExact: hammer a 4-shard cluster from many
// goroutines (run under -race in CI) and check the aggregate op count
// is exact — no lost updates in the per-shard locking.
func TestConcurrentOpsExact(t *testing.T) {
	const (
		shards     = 4
		goroutines = 8
		opsEach    = 2000
		keys       = 4000
	)
	c, err := New(Config{Shards: shards, Engine: kv.Config{Keys: keys, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(keys, 64)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(ycsb.Config{
				Keys: keys, ValueSize: 64, Dist: ycsb.Zipf,
				Seed: uint64(g + 1), SetFraction: 0.1,
			})
			for i := 0; i < opsEach; i++ {
				c.RunOp(gen.Next(), 64)
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if want := uint64(goroutines * opsEach); st.Agg.Ops != want {
		t.Fatalf("aggregate ops = %d, want %d", st.Agg.Ops, want)
	}
	var perShard uint64
	for _, s := range st.PerShard {
		perShard += s.Ops
	}
	if perShard != st.Agg.Ops {
		t.Fatalf("per-shard ops sum %d != aggregate %d", perShard, st.Agg.Ops)
	}
	if st.MaxShardCycles == 0 {
		t.Fatal("no shard accumulated cycles")
	}
}

// TestClusterReset: Reset empties every shard and zeroes stats, and
// the cluster is usable afterwards.
func TestClusterReset(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{Keys: 1000, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(1000, 64)
	c.Set([]byte("somekey"), []byte("v"))
	if c.Len() == 0 {
		t.Fatal("setup failed")
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after reset = %d", got)
	}
	st := c.Stats()
	if st.Agg.Ops != 0 || st.Agg.Machine.Cycles != 0 {
		t.Fatalf("stats not zeroed after reset: %+v", st.Agg)
	}
	c.Set([]byte("somekey"), []byte("v"))
	if v, ok := c.Get([]byte("somekey")); !ok || string(v) != "v" {
		t.Fatalf("cluster unusable after reset: %q %v", v, ok)
	}
}

// TestShardSeedsDiffer: shards must not share hash layouts (each gets
// Seed+i), while shard 0 keeps the template seed.
func TestShardSeedsDiffer(t *testing.T) {
	c, err := New(Config{Shards: 3, Engine: kv.Config{Keys: 900, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := c.Engine(i).Cfg.Seed; got != 42+uint64(i) {
			t.Fatalf("shard %d seed = %d, want %d", i, got, 42+i)
		}
	}
}

// TestPerShardSTLTSizing: each shard's STLT is sized for keys/N, not
// the full key count (the paper's per-process table, sliced).
func TestPerShardSTLTSizing(t *testing.T) {
	total := 64000
	single, err := New(Config{Shards: 1, Engine: kv.Config{Keys: total, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := New(Config{Shards: 4, Engine: kv.Config{Keys: total, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	sr := single.Engine(0).Cfg.STLTRows
	qr := quad.Engine(0).Cfg.STLTRows
	if qr >= sr {
		t.Fatalf("4-shard STLT rows %d not smaller than 1-shard %d", qr, sr)
	}
	if want := kv.DefaultSTLTRows(total/4, 4); qr != want {
		t.Fatalf("per-shard STLT rows = %d, want DefaultSTLTRows(keys/4) = %d", qr, want)
	}
}

func ExampleCluster() {
	c, _ := New(Config{Shards: 2, Engine: kv.Config{Keys: 100, Mode: kv.ModeSTLT, Seed: 42}})
	c.Set([]byte("hello"), []byte("world"))
	v, _ := c.Get([]byte("hello"))
	fmt.Println(string(v), c.Exists([]byte("hello")), c.Exists([]byte("nope")))
	// Output: world true false
}
