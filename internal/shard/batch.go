// Batched cross-shard operations: the cluster side of MGET/MSET/DEL.
//
// A batch is grouped by home shard with the same routing hash single
// ops use, then executed as ONE locked call per shard through the
// engine's batch entry points (kv.Engine.GetBatch/SetBatch/
// DeleteBatch). Those entry points are defined as exactly N sequential
// ops, so modeled cycles are bit-for-bit identical to a client issuing
// the keys one at a time — what batching amortizes is the real-world
// per-op overhead (one lock acquisition and one probe diff per shard
// instead of per key), which the simulator deliberately leaves
// unmodeled. Within a shard the original key order is preserved, so a
// 1-shard cluster batch reproduces the seed engine's sequential run
// exactly (pinned by the differential tests).
package shard

import (
	"addrkv/internal/kv"
	"addrkv/internal/wal"
)

// ShardBatchOutcome reports one shard's slice of a batched operation:
// how many keys landed there and the exact probe delta across the
// whole locked sub-batch.
type ShardBatchOutcome struct {
	// Shard is the home shard this slice ran on.
	Shard int
	// Ops is the number of keys routed to this shard.
	Ops int
	// Cycles is the modeled cycle cost of the whole sub-batch.
	Cycles uint64
	// FastHits counts sub-batch ops served by the STLT/SLB fast path.
	FastHits uint64
	// Misses counts GETs of absent keys in the sub-batch.
	Misses uint64
	// TLBMisses, STBHits and PageWalks count translation events across
	// the sub-batch.
	TLBMisses uint64
	STBHits   uint64
	PageWalks uint64
}

// BatchOutcome is the telemetry report of one batched operation: one
// entry per shard touched, in shard order. Like OpOutcome it is filled
// from probe diffs taken under the shard lock — counters are only
// read, so observed batches stay bit-for-bit identical to unobserved
// ones.
type BatchOutcome struct {
	PerShard []ShardBatchOutcome
	// Denied reports that the cluster op gate rejected the batch under
	// a shard lock before any of that shard's ops ran; remaining shard
	// groups are skipped. In cluster mode a multi-key command is
	// restricted to one hash slot (hence one shard group), so a denied
	// batch applied nothing at all — the front-end answers TRYAGAIN
	// and the client retries against fresh routing.
	Denied bool
}

// TotalOps sums ops over the touched shards.
func (b *BatchOutcome) TotalOps() int {
	n := 0
	for _, s := range b.PerShard {
		n += s.Ops
	}
	return n
}

// TotalCycles sums modeled cycles over the touched shards. With shards
// running concurrently this is aggregate service time, not elapsed
// time — the same convention as ClusterStats.Agg.
func (b *BatchOutcome) TotalCycles() uint64 {
	var n uint64
	for _, s := range b.PerShard {
		n += s.Cycles
	}
	return n
}

// Merged flattens the batch into one OpOutcome for single-op telemetry
// sinks (slowlog entries): Shard is the home shard when exactly one
// shard was touched and -1 otherwise; FastHit means every op hit the
// fast path; Missed means at least one key was absent.
func (b *BatchOutcome) Merged() OpOutcome {
	out := OpOutcome{Shard: -1}
	if len(b.PerShard) == 1 {
		out.Shard = b.PerShard[0].Shard
	}
	var fastHits uint64
	for _, s := range b.PerShard {
		out.Cycles += s.Cycles
		out.TLBMisses += s.TLBMisses
		out.STBHits += s.STBHits
		out.PageWalks += s.PageWalks
		fastHits += s.FastHits
		if s.Misses > 0 {
			out.Missed = true
		}
	}
	out.FastHit = b.TotalOps() > 0 && fastHits == uint64(b.TotalOps())
	return out
}

// groupByShard returns, per shard, the indices of the keys routed to
// it, preserving original order within each shard. For a 1-shard
// cluster every key lands in group 0 without hashing.
func (c *Cluster) groupByShard(keys [][]byte) [][]int {
	groups := make([][]int, len(c.shards))
	if len(c.shards) == 1 {
		idxs := make([]int, len(keys))
		for i := range keys {
			idxs[i] = i
		}
		groups[0] = idxs
		return groups
	}
	for i, k := range keys {
		s := c.ShardFor(k)
		groups[s] = append(groups[s], i)
	}
	return groups
}

// observeBatch appends one shard's probe delta to out (when non-nil).
// Must be called with the shard's lock held.
func observeBatch(i, ops int, e *kv.Engine, out *BatchOutcome, before kv.OpProbe) {
	if out == nil {
		return
	}
	after := e.Probe()
	out.PerShard = append(out.PerShard, ShardBatchOutcome{
		Shard:     i,
		Ops:       ops,
		Cycles:    uint64(after.Machine.Cycles - before.Machine.Cycles),
		FastHits:  after.FastHits - before.FastHits,
		Misses:    after.Misses - before.Misses,
		TLBMisses: after.Machine.TLBMisses - before.Machine.TLBMisses,
		STBHits:   after.Machine.STBHits - before.Machine.STBHits,
		PageWalks: after.Machine.PageWalks - before.Machine.PageWalks,
	})
}

// GetBatch retrieves keys with full timing, one locked engine call per
// home shard. Results are positional: vals[i]/oks[i] answer keys[i].
func (c *Cluster) GetBatch(keys [][]byte) (vals [][]byte, oks []bool) {
	return c.GetBatchO(keys, nil)
}

// GetBatchO is GetBatch with an optional per-batch outcome report.
func (c *Cluster) GetBatchO(keys [][]byte, out *BatchOutcome) (vals [][]byte, oks []bool) {
	vals = make([][]byte, len(keys))
	oks = make([]bool, len(keys))
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		sub := make([][]byte, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		s := c.shards[si]
		s.mu.Lock()
		if c.gateDeniesBatch(s.e, sub) {
			s.mu.Unlock()
			if out != nil {
				out.Denied = true
			}
			break
		}
		var before kv.OpProbe
		if out != nil {
			before = s.e.Probe()
		}
		svals, soks := s.e.GetBatch(sub)
		// Lazy expiries during the gets are all pre-op removals with no
		// op frames between them, so one post-batch drain preserves the
		// exact replay order.
		wrote := c.walOp(si, s, 0, nil, nil, nil)
		observeBatch(si, len(idxs), s.e, out, before)
		s.mu.Unlock()
		if wrote {
			c.walCommit(si, nil, len(idxs))
		}
		for j, i := range idxs {
			vals[i], oks[i] = svals[j], soks[j]
		}
	}
	return vals, oks
}

// SetBatch inserts or updates keys[i] = values[i] with full timing,
// one locked engine call per home shard.
func (c *Cluster) SetBatch(keys, values [][]byte) { c.SetBatchO(keys, values, nil) }

// SetBatchO is SetBatch with an optional per-batch outcome report.
func (c *Cluster) SetBatchO(keys, values [][]byte, out *BatchOutcome) {
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		subK := make([][]byte, len(idxs))
		subV := make([][]byte, len(idxs))
		for j, i := range idxs {
			subK[j], subV[j] = keys[i], values[i]
		}
		s := c.shards[si]
		s.mu.Lock()
		if c.gateDeniesBatch(s.e, subK) {
			s.mu.Unlock()
			if out != nil {
				out.Denied = true
			}
			break
		}
		var before kv.OpProbe
		if out != nil {
			before = s.e.Probe()
		}
		// SetBatch is defined as exactly N sequential Sets; running the
		// loop here keeps that identity while interleaving each op's
		// maintenance frames (lazy expiries, evictions) at their true
		// position in the log.
		for j := range subK {
			s.e.Set(subK[j], subV[j])
			c.walOp(si, s, wal.RecSet, subK[j], subV[j], nil)
		}
		observeBatch(si, len(idxs), s.e, out, before)
		s.mu.Unlock()
		c.walCommit(si, nil, len(idxs))
	}
}

// DeleteBatch removes keys with full timing, one locked engine call
// per home shard, returning how many existed.
func (c *Cluster) DeleteBatch(keys [][]byte) int { return c.DeleteBatchO(keys, nil) }

// DeleteBatchO is DeleteBatch with an optional per-batch outcome
// report.
func (c *Cluster) DeleteBatchO(keys [][]byte, out *BatchOutcome) int {
	n := 0
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		sub := make([][]byte, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		s := c.shards[si]
		s.mu.Lock()
		if c.gateDeniesBatch(s.e, sub) {
			s.mu.Unlock()
			if out != nil {
				out.Denied = true
			}
			break
		}
		var before kv.OpProbe
		if out != nil {
			before = s.e.Probe()
		}
		// Like SetBatchO: the explicit loop IS DeleteBatch, with each
		// op's maintenance frames interleaved in log order.
		for _, k := range sub {
			if s.e.Delete(k) {
				n++
			}
			c.walOp(si, s, wal.RecDel, k, nil, nil)
		}
		observeBatch(si, len(idxs), s.e, out, before)
		s.mu.Unlock()
		c.walCommit(si, nil, len(idxs))
	}
	return n
}
