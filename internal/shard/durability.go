// Durability wiring: the cluster side of the per-shard append-only
// log. Each shard's mutations append to its own wal.Log under the
// shard lock — so log order equals engine execution order by
// construction — and commits follow the dispatch mode's natural batch
// boundary: the worker runtime commits once per drain burst (group
// commit: one fsync covers every op of the burst, across connections),
// the mutex path commits per call.
//
// Replay discipline: recovery applies records through the same engine
// entry points live traffic uses — RecLoad through the untimed bulk
// loader, RecSet/RecDel/RecFlush through the timed ops — so a
// recovered engine is bit-for-bit identical (replies, modeled cycles,
// stats) to a fresh engine that executed the surviving stream live.
// ApplyRecovery talks to the engines directly and never touches the
// attached logs, so replayed records are not re-appended regardless of
// attach order.
package shard

import (
	"encoding/binary"
	"fmt"
	"time"

	"addrkv/internal/kv"
	"addrkv/internal/trace"
	"addrkv/internal/wal"
)

// AttachWAL installs one log per shard (index-aligned). Attach before
// traffic — the field is read without synchronization on the hot path.
// Passing nil detaches.
func (c *Cluster) AttachWAL(logs []*wal.Log) error {
	if logs == nil {
		c.logs = nil
		return nil
	}
	if len(logs) != len(c.shards) {
		return fmt.Errorf("shard: %d logs for %d shards — the AOF directory was written with a different -shards; recover with the original count or remove it",
			len(logs), len(c.shards))
	}
	c.logs = logs
	return nil
}

// WALAttached reports whether durability logging is on.
func (c *Cluster) WALAttached() bool { return c.logs != nil }

// WAL returns shard i's log (nil when durability is off).
func (c *Cluster) WAL(i int) *wal.Log {
	if c.logs == nil {
		return nil
	}
	return c.logs[i]
}

// WALErr returns the first sticky log I/O error across shards, if any.
func (c *Cluster) WALErr() error {
	if c.logs == nil {
		return nil
	}
	for _, l := range c.logs {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// walAppend logs one mutation record for shard i. Must hold the shard
// lock (it orders the append against the engine op it records).
func (c *Cluster) walAppend(i int, e *kv.Engine, kind wal.Kind, key, value []byte, out *OpOutcome) {
	if c.logs == nil {
		return
	}
	n := c.logs[i].Append(kind, key, value)
	if out != nil && out.Trace != nil {
		out.Trace.Event(trace.EvWALAppend, uint64(e.M.Cycles()), int64(n), 0, 0)
	}
}

// walOp drains shard i's maintenance queue and logs one op together
// with the maintenance it triggered, in replay order: lazy-expiry
// removals run before the op touches the index and evictions after it,
// so frames go RecExpireDel*, op, RecEvict*. opKind 0 means the op
// writes no frame of its own (reads, EXPIRE of an absent key) — only
// maintenance is logged. The queue is drained even without a WAL so it
// cannot grow. Returns whether any frame is pending commit. Must hold
// the shard lock.
func (c *Cluster) walOp(i int, s *shardSlot, opKind wal.Kind, key, value []byte, out *OpOutcome) bool {
	e := s.e
	if !e.MaintPending() {
		if opKind == 0 {
			return false
		}
		c.walAppend(i, e, opKind, key, value, out)
		return c.logs != nil
	}
	s.maint = e.TakeMaint(s.maint)
	for _, m := range s.maint {
		if !m.Evict {
			c.walAppend(i, e, wal.RecExpireDel, m.Key, nil, out)
		}
	}
	if opKind != 0 {
		c.walAppend(i, e, opKind, key, value, out)
	}
	for _, m := range s.maint {
		if m.Evict {
			c.walAppend(i, e, wal.RecEvict, m.Key, nil, out)
		}
	}
	return c.logs != nil
}

// walCommit publishes shard i's pending records (mutex path: one
// commit per call). covered is the record count the barrier covers,
// stamped on the traced op's wal.fsync event under the always policy.
func (c *Cluster) walCommit(i int, out *OpOutcome, covered int) {
	if c.logs == nil {
		return
	}
	l := c.logs[i]
	traced := out != nil && out.Trace != nil && l.Policy() == wal.FsyncAlways
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	l.Commit() //nolint:errcheck // sticky; surfaced via WALErr
	if traced {
		out.Trace.EventRel(trace.EvWALFsync, out.Cycles, time.Since(t0).Nanoseconds(), int64(covered), 0)
	}
}

// Snapshot compacts shard i's log: under the shard lock, stream the
// engine's live records into a new snapshot generation (BGSAVE body),
// then the armed TTL deadlines as RecExpire frames — a recovered
// engine lazily expires exactly what the live one would have.
func (c *Cluster) Snapshot(i int) error {
	if c.logs == nil {
		return fmt.Errorf("shard: no WAL attached")
	}
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.logs[i].RewriteKinds(func(add func(kind wal.Kind, key, value []byte) error) error {
		var err error
		s.e.RangeRecords(func(key, value []byte) bool {
			err = add(wal.RecLoad, key, value)
			return err == nil
		})
		if err != nil {
			return err
		}
		var dlb [8]byte
		s.e.RangeDeadlines(func(key []byte, deadline int64) bool {
			binary.LittleEndian.PutUint64(dlb[:], uint64(deadline))
			err = add(wal.RecExpire, key, dlb[:])
			return err == nil
		})
		return err
	})
}

// SnapshotAll compacts every shard's log (shard by shard — traffic on
// other shards proceeds while one shard snapshots).
func (c *Cluster) SnapshotAll() error {
	for i := range c.shards {
		if err := c.Snapshot(i); err != nil {
			return err
		}
	}
	return nil
}

// SyncWAL force-commits and fsyncs every shard's log (shutdown
// barrier).
func (c *Cluster) SyncWAL() error {
	if c.logs == nil {
		return nil
	}
	var first error
	for _, l := range c.logs {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CloseWAL closes and detaches every log. Stop traffic (and workers)
// first.
func (c *Cluster) CloseWAL() error {
	if c.logs == nil {
		return nil
	}
	var first error
	for _, l := range c.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.logs = nil
	return first
}

// RecoveryApplyStats reports what a replay applied.
type RecoveryApplyStats struct {
	Loads, Sets, Dels, Flushes int
	// Expires counts replayed TTL arms; ExpireDels and Evicts the
	// replayed maintenance removals.
	Expires, ExpireDels, Evicts int
}

// Ops returns the total applied record count.
func (s RecoveryApplyStats) Ops() int {
	return s.Loads + s.Sets + s.Dels + s.Flushes + s.Expires + s.ExpireDels + s.Evicts
}

// Add accumulates per-shard stats.
func (s RecoveryApplyStats) Add(o RecoveryApplyStats) RecoveryApplyStats {
	return RecoveryApplyStats{
		s.Loads + o.Loads, s.Sets + o.Sets, s.Dels + o.Dels, s.Flushes + o.Flushes,
		s.Expires + o.Expires, s.ExpireDels + o.ExpireDels, s.Evicts + o.Evicts,
	}
}

// ApplyRecovery replays one shard's surviving record stream into its
// engine: snapshot records through the untimed bulk-load path, tail
// records through the timed ops — exactly the execution a live run of
// the same stream would perform. The whole replay runs with the
// engine's replay flag set: clock-driven expiry and live eviction are
// off, and every removal comes from its own RecExpireDel/RecEvict
// record instead of being re-decided — so the recovered state is a
// pure function of the log, independent of wall time at recovery.
func (c *Cluster) ApplyRecovery(i int, rec *wal.Recovery) (RecoveryApplyStats, error) {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.SetReplay(true)
	defer s.e.SetReplay(false)
	var st RecoveryApplyStats
	apply := func(r wal.Record, tail bool) error {
		switch r.Kind {
		case wal.RecLoad:
			s.e.LoadOne(r.Key, r.Value)
			st.Loads++
		case wal.RecSet:
			s.e.Set(r.Key, r.Value)
			st.Sets++
		case wal.RecDel:
			s.e.Delete(r.Key)
			st.Dels++
		case wal.RecFlush:
			if err := s.e.Reset(); err != nil {
				return fmt.Errorf("shard %d: replay flush: %w", i, err)
			}
			st.Flushes++
		case wal.RecExpire:
			if len(r.Value) != 8 {
				return fmt.Errorf("shard %d: replay: expire record with %d-byte deadline", i, len(r.Value))
			}
			dl := int64(binary.LittleEndian.Uint64(r.Value))
			if tail {
				s.e.ExpireAt(r.Key, dl) // timed, like the live arm
			} else {
				s.e.ArmDeadline(r.Key, dl) // snapshot: untimed
			}
			st.Expires++
		case wal.RecExpireDel:
			s.e.ExpireDelOne(r.Key)
			st.ExpireDels++
		case wal.RecEvict:
			s.e.EvictOne(r.Key)
			st.Evicts++
		default:
			return fmt.Errorf("shard %d: replay: unknown record kind %d", i, r.Kind)
		}
		return nil
	}
	for _, r := range rec.Snapshot {
		if err := apply(r, false); err != nil {
			return st, err
		}
	}
	for _, r := range rec.Tail {
		if err := apply(r, true); err != nil {
			return st, err
		}
	}
	return st, nil
}
