// Per-shard worker runtime: one owning goroutine per shard draining a
// bounded MPSC request ring. Connection goroutines become pure
// parsers/routers — they enqueue ops and wait on per-request
// completion channels — and because the worker drains whole bursts,
// ops from *different connections* to the same shard coalesce into
// one shard-lock critical section per drain (cross-connection
// batching), with probe snapshots chained across the burst (op N's
// after-probe is op N+1's before-probe) so observation cost halves.
//
// This is the software analog of LaKe's hardware scheduler feeding
// shared-nothing processing elements: admission (the ring) is
// decoupled from execution (the worker), each engine has exactly one
// owner, and batching happens at admission rather than per caller.
//
// Determinism contract: the worker executes its shard's ring in FIFO
// order, and each connection enqueues in command order, so a single
// connection's ops execute in submission order on every shard. With
// one shard and one connection the engine therefore sees the same
// call sequence the mutex path would issue — modeled cycles, stats
// and replies are bit-for-bit identical (pinned by differential
// tests).
package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"addrkv/internal/trace"
	"addrkv/internal/wal"
)

// DefaultQueueCap is the per-shard ring capacity StartWorkers uses
// when the caller passes 0.
const DefaultQueueCap = 4096

// worker owns one shard's ring and drain loop.
type worker struct {
	q      *ring
	wake   chan struct{}
	parked atomic.Bool

	drains     atomic.Uint64
	drainedOps atomic.Uint64
	maxBurst   atomic.Uint64
	fullSpins  atomic.Uint64
}

// kick unparks the worker if it is (or is about to be) sleeping.
// Pairing the CAS with a buffered non-blocking send makes the wakeup
// at-most-once per park without ever blocking a producer.
func (w *worker) kick() {
	if w.parked.CompareAndSwap(true, false) {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// WorkerStats is one shard worker's counters (see RuntimeStats).
type WorkerStats struct {
	// Depth is the current (approximate) queued request count.
	Depth int
	// Drains counts drain bursts; DrainedOps the requests inside them,
	// so DrainedOps/Drains is the mean cross-connection batch size.
	Drains     uint64
	DrainedOps uint64
	// MaxBurst is the largest single drain.
	MaxBurst uint64
	// FullSpins counts producer yields on a full ring (backpressure).
	FullSpins uint64
}

// workerSet is one generation of the runtime: the per-shard workers
// plus the stop channel their drain loops select on.
type workerSet struct {
	ws     []*worker
	stopCh chan struct{}
}

// StartWorkers launches one owning goroutine per shard, each draining
// a bounded ring of queueCap requests (0 = DefaultQueueCap, rounded
// up to a power of two). After StartWorkers, Enqueue routes requests;
// the mutex-path *O methods remain safe concurrently (workers hold
// the same shard locks while draining).
func (c *Cluster) StartWorkers(queueCap int) error {
	if c.wset.Load() != nil {
		return fmt.Errorf("shard: workers already running")
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	set := &workerSet{
		ws:     make([]*worker, len(c.shards)),
		stopCh: make(chan struct{}),
	}
	for i := range set.ws {
		set.ws[i] = &worker{q: newRing(queueCap), wake: make(chan struct{}, 1)}
	}
	c.wset.Store(set)
	c.wwg.Add(len(set.ws))
	for i := range set.ws {
		go c.runWorker(set, i)
	}
	return nil
}

// StopWorkers stops the runtime: each worker drains its ring to empty
// (completing every request already enqueued) and exits. Callers must
// stop producing before calling — an Enqueue racing StopWorkers may
// hang its Wait.
func (c *Cluster) StopWorkers() {
	set := c.wset.Swap(nil)
	if set == nil {
		return
	}
	close(set.stopCh)
	for _, w := range set.ws {
		w.parked.Store(false) // suppress further parking
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	c.wwg.Wait()
}

// WorkersRunning reports whether the worker runtime is active.
func (c *Cluster) WorkersRunning() bool { return c.wset.Load() != nil }

// SetSweepLimit sets how many armed TTL deadlines each worker examines
// per drain burst (0 disables the drain-loop sweep). Set before
// StartWorkers; the mutex path sweeps via Cluster.SweepExpired instead.
func (c *Cluster) SetSweepLimit(limit int) { c.sweepLimit = limit }

// SetDrainObserver installs a callback the worker invokes after each
// drain burst (outside the shard lock) with the shard index and burst
// size. Install before StartWorkers.
func (c *Cluster) SetDrainObserver(f func(shard, burst int)) { c.onDrain = f }

// Enqueue routes r to its key's home shard worker and returns once
// the request is queued; the caller collects the result with r.Wait.
// A full ring applies backpressure by yielding until a slot frees.
func (c *Cluster) Enqueue(r *Req) {
	i := c.ShardFor(r.Key)
	w := c.wset.Load().ws[i]
	for !w.q.enqueue(r) {
		w.fullSpins.Add(1)
		w.kick()
		runtime.Gosched()
	}
	w.kick()
}

// QueueDepth returns shard i's approximate queued request count (0
// when the runtime is down).
func (c *Cluster) QueueDepth(i int) int {
	set := c.wset.Load()
	if set == nil {
		return 0
	}
	return set.ws[i].q.depth()
}

// RuntimeStats snapshots every worker's counters (nil when the
// runtime is down).
func (c *Cluster) RuntimeStats() []WorkerStats {
	set := c.wset.Load()
	if set == nil {
		return nil
	}
	out := make([]WorkerStats, len(set.ws))
	for i, w := range set.ws {
		out[i] = WorkerStats{
			Depth:      w.q.depth(),
			Drains:     w.drains.Load(),
			DrainedOps: w.drainedOps.Load(),
			MaxBurst:   w.maxBurst.Load(),
			FullSpins:  w.fullSpins.Load(),
		}
	}
	return out
}

// runWorker is shard i's drain loop: gather every queued request into
// a burst, execute the burst under one shard-lock acquisition, then
// signal completions; park on an empty ring until a producer kicks.
func (c *Cluster) runWorker(set *workerSet, i int) {
	defer c.wwg.Done()
	w := set.ws[i]
	s := c.shards[i]
	burst := make([]*Req, 0, len(w.q.slots))
	for {
		burst = burst[:0]
		for len(burst) < cap(burst) {
			r := w.q.dequeue()
			if r == nil {
				break
			}
			burst = append(burst, r)
		}
		if len(burst) == 0 {
			// Park: publish the flag, then re-check the ring so an
			// enqueue that raced the flag is never lost (the producer
			// either sees parked and kicks, or we see its request here).
			w.parked.Store(true)
			if r := w.q.dequeue(); r != nil {
				w.parked.Store(false)
				burst = append(burst, r)
			} else {
				select {
				case <-w.wake:
					w.parked.Store(false)
					continue
				case <-set.stopCh:
					w.parked.Store(false)
					for { // final drain: complete everything already queued
						r := w.q.dequeue()
						if r == nil {
							return
						}
						burst = append(burst[:0], r)
						c.serveBurst(i, s, w, burst)
					}
				}
			}
		}
		c.serveBurst(i, s, w, burst)
	}
}

// serveBurst executes one drained burst inside a single shard-lock
// critical section. Probe snapshots chain across the burst, and every
// completion is signalled only after the lock is released so waiters
// never contend with the drain.
func (c *Cluster) serveBurst(i int, s *shardSlot, w *worker, burst []*Req) {
	n := len(burst)
	wrote := false
	s.mu.Lock()
	before := s.e.Probe()
	for bi, r := range burst {
		out := &r.Out
		if !c.gateAllows(s.e, r.Key, out) {
			// Denied by the cluster op gate: no engine call, no probe
			// movement (before stays chained). The front-end rewrites
			// the reply as a redirect from out.Denied.
			r.OK = false
			continue
		}
		if out.Trace != nil {
			out.Trace.EventRel(trace.EvQueueWait, 0, int64(i), int64(bi), int64(n))
			attachTrace(i, s.e, out)
			out.Trace.Event(trace.EvDrain, uint64(s.e.M.Cycles()), int64(n), int64(bi), 0)
		}
		var opKind wal.Kind
		var opVal []byte
		switch r.Kind {
		case OpGet:
			r.Val, r.OK = s.e.GetInto(r.Key, r.Val[:0])
		case OpSet:
			s.e.Set(r.Key, r.Value)
			r.OK = true
			opKind, opVal = wal.RecSet, r.Value
		case OpDelete:
			r.OK = s.e.Delete(r.Key)
			opKind = wal.RecDel
		case OpExists:
			r.OK = s.e.Exists(r.Key)
		case OpGetTouch:
			r.OK = s.e.GetTouch(r.Key)
		}
		// Reads log too when they triggered lazy expiry — the removal
		// changed the index, so recovery must replay it.
		if c.walOp(i, s, opKind, r.Key, opVal, out) {
			wrote = true
		}
		detachTrace(s.e, out)
		after := s.e.Probe()
		observeDelta(i, out, before, after)
		before = after
	}
	// Active expiry rides the drain: one bounded sampling pass per
	// burst, inside the same critical section, reaping dead keys the
	// traffic never touches (untimed; the reaps are logged like lazy
	// expiries).
	if lim := c.sweepLimit; lim > 0 && s.e.ExpiresArmed() > 0 {
		if s.e.SweepExpired(lim) > 0 && c.walOp(i, s, 0, nil, nil, nil) {
			wrote = true
		}
	}
	s.mu.Unlock()
	// Group commit: one write and (under the always policy) one fsync
	// cover every mutation of the burst. Completions are signalled only
	// after the barrier, so an acknowledged op is on durable storage.
	if wrote && c.logs != nil {
		l := c.logs[i]
		always := l.Policy() == wal.FsyncAlways
		var t0 time.Time
		if always {
			t0 = time.Now()
		}
		l.Commit() //nolint:errcheck // sticky; surfaced via WALErr
		if always {
			ns := time.Since(t0).Nanoseconds()
			for _, r := range burst {
				if r.Out.Trace != nil {
					r.Out.Trace.EventRel(trace.EvWALFsync, r.Out.Cycles, ns, int64(n), 0)
				}
			}
		}
	}
	w.drains.Add(1)
	w.drainedOps.Add(uint64(n))
	if un := uint64(n); un > w.maxBurst.Load() {
		w.maxBurst.Store(un)
	}
	if c.onDrain != nil {
		c.onDrain(i, n)
	}
	for _, r := range burst {
		r.done <- struct{}{}
	}
}
