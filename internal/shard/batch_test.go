package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/ycsb"
)

// TestBatchMatchesSequentialSingleShard: on a 1-shard cluster, batched
// GET/SET/DEL must be bit-for-bit identical — replies, stats, modeled
// cycles — to issuing the same keys one at a time on the seed
// kv.Engine. This is the determinism contract the pipelined server
// relies on: MGET of N keys charges exactly N GETs.
func TestBatchMatchesSequentialSingleShard(t *testing.T) {
	cfg := kv.Config{Keys: 4000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	e, err := kv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	e.Load(4000, 64)
	c.Load(4000, 64)

	rng := rand.New(rand.NewSource(99))
	var bo BatchOutcome
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(12)
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = ycsb.KeyName(uint64(rng.Intn(5000))) // some absent
			vals[i] = []byte(fmt.Sprintf("v%d-%d", round, i))
		}
		bo.PerShard = bo.PerShard[:0]
		batch := true
		switch rng.Intn(6) {
		case 0: // MGET
			gotV, gotOK := c.GetBatchO(keys, &bo)
			for i, k := range keys {
				wantV, wantOK := e.Get(k)
				if gotOK[i] != wantOK || string(gotV[i]) != string(wantV) {
					t.Fatalf("round %d GET %q: (%q,%v) != (%q,%v)",
						round, k, gotV[i], gotOK[i], wantV, wantOK)
				}
			}
		case 1: // MSET
			c.SetBatchO(keys, vals, &bo)
			for i, k := range keys {
				e.Set(k, vals[i])
			}
		case 2: // multi-key DEL
			got := c.DeleteBatchO(keys, &bo)
			want := 0
			for _, k := range keys {
				if e.Delete(k) {
					want++
				}
			}
			if got != want {
				t.Fatalf("round %d DEL count %d != %d", round, got, want)
			}
		case 3: // single GET
			batch = false
			gotV, gotOK := c.Get(keys[0])
			wantV, wantOK := e.Get(keys[0])
			if gotOK != wantOK || string(gotV) != string(wantV) {
				t.Fatalf("round %d single GET %q diverged", round, keys[0])
			}
		case 4: // single SET
			batch = false
			c.Set(keys[0], vals[0])
			e.Set(keys[0], vals[0])
		case 5: // single EXISTS
			batch = false
			if c.Exists(keys[0]) != e.Exists(keys[0]) {
				t.Fatalf("round %d EXISTS %q diverged", round, keys[0])
			}
		}
		if batch && (len(bo.PerShard) != 1 || bo.PerShard[0].Ops != n) {
			t.Fatalf("round %d outcome = %+v, want 1 shard with %d ops", round, bo.PerShard, n)
		}
	}

	want, got := e.Stats(), c.Stats()
	if got.Agg != want {
		t.Fatalf("batched cluster diverged from sequential engine:\ncluster: %+v\nengine:  %+v", got.Agg, want)
	}
	if got.MaxShardCycles != uint64(want.Machine.Cycles) {
		t.Fatalf("MaxShardCycles = %d, want %d", got.MaxShardCycles, want.Machine.Cycles)
	}
}

// TestBatchMatchesSingleOpsMultiShard: on a multi-shard cluster, a
// batched call must leave every shard in exactly the state N
// single-key cluster calls produce (grouping preserves per-shard op
// order), and the batch outcome's per-shard deltas must equal the sum
// of the single-op outcomes.
func TestBatchMatchesSingleOpsMultiShard(t *testing.T) {
	cfg := kv.Config{Keys: 4000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	const shards = 4
	batched, err := New(Config{Shards: shards, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(Config{Shards: shards, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	batched.Load(4000, 64)
	single.Load(4000, 64)

	rng := rand.New(rand.NewSource(7))
	var bo BatchOutcome
	var oc OpOutcome
	for round := 0; round < 120; round++ {
		n := 1 + rng.Intn(16)
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = ycsb.KeyName(uint64(rng.Intn(5000)))
			vals[i] = []byte(fmt.Sprintf("v%d-%d", round, i))
		}
		// Per-shard sums of the single-op outcomes, keyed by shard.
		sum := map[int]*ShardBatchOutcome{}
		note := func(o OpOutcome) {
			s := sum[o.Shard]
			if s == nil {
				s = &ShardBatchOutcome{Shard: o.Shard}
				sum[o.Shard] = s
			}
			s.Ops++
			s.Cycles += o.Cycles
			s.TLBMisses += o.TLBMisses
			s.STBHits += o.STBHits
			s.PageWalks += o.PageWalks
			if o.FastHit {
				s.FastHits++
			}
			if o.Missed {
				s.Misses++
			}
		}
		bo.PerShard = bo.PerShard[:0]
		switch round % 3 {
		case 0:
			gotV, gotOK := batched.GetBatchO(keys, &bo)
			for i, k := range keys {
				wantV, wantOK := single.GetO(k, &oc)
				note(oc)
				if gotOK[i] != wantOK || string(gotV[i]) != string(wantV) {
					t.Fatalf("round %d GET %q diverged", round, k)
				}
			}
		case 1:
			batched.SetBatchO(keys, vals, &bo)
			for i, k := range keys {
				single.SetO(k, vals[i], &oc)
				note(oc)
			}
		case 2:
			got := batched.DeleteBatchO(keys, &bo)
			want := 0
			for _, k := range keys {
				var one OpOutcome
				if single.DeleteO(k, &one) {
					want++
				}
				note(one)
			}
			if got != want {
				t.Fatalf("round %d DEL count %d != %d", round, got, want)
			}
		}
		if bo.TotalOps() != n {
			t.Fatalf("round %d outcome ops %d != %d", round, bo.TotalOps(), n)
		}
		for _, sb := range bo.PerShard {
			want := sum[sb.Shard]
			if want == nil {
				t.Fatalf("round %d: batch touched shard %d, single ops did not", round, sb.Shard)
			}
			if sb != *want {
				t.Fatalf("round %d shard %d outcome:\nbatch:  %+v\nsingle: %+v", round, sb.Shard, sb, *want)
			}
		}
	}

	want, got := single.Stats(), batched.Stats()
	if got.Agg != want.Agg {
		t.Fatalf("batched cluster diverged from single-op cluster:\nbatched: %+v\nsingle:  %+v", got.Agg, want.Agg)
	}
	for i := range want.PerShard {
		if got.PerShard[i] != want.PerShard[i] {
			t.Fatalf("shard %d stats diverged:\nbatched: %+v\nsingle:  %+v", i, got.PerShard[i], want.PerShard[i])
		}
	}
}

// TestBatchOutcomeMerged covers the OpOutcome flattening used by the
// server's slowlog: single-shard batches keep their shard id,
// multi-shard batches report -1, and cycle totals add up.
func TestBatchOutcomeMerged(t *testing.T) {
	bo := BatchOutcome{PerShard: []ShardBatchOutcome{
		{Shard: 2, Ops: 3, Cycles: 100, FastHits: 3},
	}}
	m := bo.Merged()
	if m.Shard != 2 || m.Cycles != 100 || !m.FastHit || m.Missed {
		t.Fatalf("single-shard merge = %+v", m)
	}
	bo.PerShard = append(bo.PerShard, ShardBatchOutcome{Shard: 0, Ops: 1, Cycles: 50, Misses: 1})
	m = bo.Merged()
	if m.Shard != -1 || m.Cycles != 150 || m.FastHit || !m.Missed {
		t.Fatalf("multi-shard merge = %+v", m)
	}
}

// TestBatchEmpty: zero-key batches are legal no-ops (the server guards
// arity, but the library should not care).
func TestBatchEmpty(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{Keys: 100, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	var bo BatchOutcome
	vals, oks := c.GetBatchO(nil, &bo)
	if len(vals) != 0 || len(oks) != 0 || len(bo.PerShard) != 0 {
		t.Fatalf("empty GetBatch: %v %v %+v", vals, oks, bo)
	}
	if n := c.DeleteBatchO(nil, &bo); n != 0 {
		t.Fatalf("empty DeleteBatch = %d", n)
	}
	c.SetBatchO(nil, nil, &bo)
	if c.Len() != 0 {
		t.Fatal("empty SetBatch inserted keys")
	}
}
