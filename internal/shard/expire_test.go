package shard

import (
	"bytes"
	"fmt"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/wal"
)

// ttlTestCfg adds maxmemory to the shared durability template so the
// recovery differential exercises RecEvict replay alongside the
// expiry records.
var ttlTestCfg = kv.Config{Keys: 2000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42,
	MaxMemory: 64 * 1024}

// newTTLCluster builds a cluster on ttlTestCfg with a settable clock.
func newTTLCluster(t *testing.T, shards int) (*Cluster, *int64) {
	t.Helper()
	c, err := New(Config{Shards: shards, Engine: ttlTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	now := new(int64)
	*now = 1_000_000
	c.SetClock(func() int64 { return *now })
	return c, now
}

// TestExpiryRecoveryNoResurrection is the expiry-vs-recovery
// differential: keys that expired before the crash — whether reaped
// lazily by an access or actively by the sweep — must stay dead after
// WAL recovery, keys that were merely *armed* must come back with
// their absolute deadlines intact, and the recovered store must match
// the live store record for record. Recovery runs under the real
// clock with deadlines that are decades in its past: only the logged
// RecExpireDel removals may decide death, never the recovery-time
// clock.
func TestExpiryRecoveryNoResurrection(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	live, now := newTTLCluster(t, shards)
	logs, _ := openLogs(t, dir, shards, wal.FsyncAlways)
	if err := live.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}

	key := func(i int) []byte { return fmt.Appendf(nil, "ttl:%03d", i) }
	val := func(i int) []byte { return fmt.Appendf(nil, "val-%03d", i) }
	for i := 0; i < 40; i++ {
		live.Set(key(i), val(i))
	}
	// 0..19 get a near deadline (will die), 20..29 a far one (survive
	// armed), 30..39 never get one.
	for i := 0; i < 20; i++ {
		if got := live.ExpireAt(key(i), *now+100); got != 1 {
			t.Fatalf("ExpireAt %d = %d", i, got)
		}
	}
	const farDeadline = int64(1_000_000_000)
	for i := 20; i < 30; i++ {
		live.ExpireAt(key(i), farDeadline)
	}
	*now += 200

	// Lazy path for 0..9: the access reaps them.
	for i := 0; i < 10; i++ {
		if _, ok := live.Get(key(i)); ok {
			t.Fatalf("key %d served past its deadline", i)
		}
	}
	// Sweep path for 10..19: active cycles reap the untouched dead.
	for sweeps := 0; live.ExpiresArmed() > 10; sweeps++ {
		if live.SweepExpired(64) == 0 && sweeps > 100 {
			t.Fatalf("sweep stalled with %d still armed", live.ExpiresArmed())
		}
	}
	if err := live.WALErr(); err != nil {
		t.Fatal(err)
	}
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Recover WITHOUT the fake clock: all logged deadlines are in the
	// real clock's distant past, so any clock-driven re-decision during
	// replay would wrongly kill the armed keys (and any missed
	// RecExpireDel would resurrect the dead ones).
	recovered, err := New(Config{Shards: shards, Engine: ttlTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	var agg RecoveryApplyStats
	for i := 0; i < shards; i++ {
		l, rec, err := wal.OpenShard(dir, i, wal.FsyncNo)
		if err != nil {
			t.Fatal(err)
		}
		st, err := recovered.ApplyRecovery(i, rec)
		if err != nil {
			t.Fatal(err)
		}
		agg = agg.Add(st)
		l.Close()
	}
	if agg.ExpireDels != 20 {
		t.Fatalf("replayed %d expiry removals, want 20 (stats %+v)", agg.ExpireDels, agg)
	}
	if agg.Expires != 30 {
		t.Fatalf("replayed %d TTL arms, want 30 (stats %+v)", agg.Expires, agg)
	}

	// No resurrection: every key dead before the crash is dead after.
	for i := 0; i < 20; i++ {
		if v, ok := recovered.PeekValue(key(i)); ok {
			t.Fatalf("expired key %d resurrected with value %q", i, v)
		}
	}
	// Armed keys survive with their exact absolute deadlines.
	for i := 20; i < 30; i++ {
		if _, ok := recovered.PeekValue(key(i)); !ok {
			t.Fatalf("armed-but-alive key %d lost in recovery", i)
		}
		e := recovered.Engine(recovered.ShardFor(key(i)))
		dl, armed := e.DeadlineOf(key(i))
		if !armed || dl != farDeadline {
			t.Fatalf("key %d deadline = (%d,%v), want (%d,true)", i, dl, armed, farDeadline)
		}
	}
	if got := recovered.ExpiresArmed(); got != 10 {
		t.Fatalf("recovered ExpiresArmed = %d, want 10", got)
	}
	// Record-for-record differential against the live store.
	for i := 0; i < 40; i++ {
		lv, lok := live.PeekValue(key(i))
		rv, rok := recovered.PeekValue(key(i))
		if lok != rok || !bytes.Equal(lv, rv) {
			t.Fatalf("key %d: live (%q,%v) vs recovered (%q,%v)", i, lv, lok, rv, rok)
		}
	}
	for i := 0; i < shards; i++ {
		if l, r := live.ShardLen(i), recovered.ShardLen(i); l != r {
			t.Fatalf("shard %d len: live %d vs recovered %d", i, l, r)
		}
	}
}

// TestEvictionRecoveryReplaysLoggedVictims: maxmemory evictions are
// logged as RecEvict and replayed as exact removals — the recovered
// store keeps precisely the survivor set without re-running the LFU
// policy (whose PRNG state is long gone).
func TestEvictionRecoveryReplaysLoggedVictims(t *testing.T) {
	cfg := ttlTestCfg
	cfg.MaxMemory = 2048
	dir := t.TempDir()
	live, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	logs, _ := openLogs(t, dir, 1, wal.FsyncAlways)
	if err := live.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 48)
	for i := 0; i < 200; i++ {
		live.Set(fmt.Appendf(nil, "ev:%04d", i), val)
	}
	if live.Stats().Agg.Evicted == 0 {
		t.Fatal("no evictions; shape is wrong")
	}
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recovered, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	l, rec, err := wal.OpenShard(dir, 0, wal.FsyncNo)
	if err != nil {
		t.Fatal(err)
	}
	st, err := recovered.ApplyRecovery(0, rec)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if st.Evicts == 0 {
		t.Fatalf("no RecEvict records replayed (stats %+v)", st)
	}
	if uint64(st.Evicts) != live.Stats().Agg.Evicted {
		t.Fatalf("replayed %d evictions, live performed %d", st.Evicts, live.Stats().Agg.Evicted)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Appendf(nil, "ev:%04d", i)
		lv, lok := live.PeekValue(k)
		rv, rok := recovered.PeekValue(k)
		if lok != rok || !bytes.Equal(lv, rv) {
			t.Fatalf("key %s: live (%v,%v) vs recovered (%v,%v)", k, len(lv), lok, len(rv), rok)
		}
	}
	if l, r := live.ShardLen(0), recovered.ShardLen(0); l != r {
		t.Fatalf("survivor counts: live %d vs recovered %d", l, r)
	}
}

// TestMigrationCarriesTTLs pins the record-move protocol's TTL rules:
// a migrated key arrives with its absolute deadline intact, and a key
// already dead at extraction time is reaped at the source and NEVER
// shipped — the destination must not install a corpse.
func TestMigrationCarriesTTLs(t *testing.T) {
	src, now := newTTLCluster(t, 2)
	dst, _ := newTTLCluster(t, 2)

	key := func(i int) []byte { return fmt.Appendf(nil, "mig:%02d", i) }
	var keys [][]byte
	for i := 0; i < 10; i++ {
		k := key(i)
		src.Set(k, fmt.Appendf(nil, "payload-%02d", i))
		keys = append(keys, k)
	}
	const farDeadline = int64(2_000_000_000)
	for i := 0; i < 5; i++ {
		src.ExpireAt(key(i), farDeadline) // travels with the record
	}
	src.ExpireAt(key(5), *now+10) // will be dead at extraction
	*now += 100

	var shipped []wal.Record
	moved, _, err := src.ExtractBatch(keys, func(frames []byte, count int) error {
		res := wal.Scan(frames)
		if res.Torn {
			return res.TornErr
		}
		for _, r := range res.Records {
			// Deep-copy: frames alias the extractor's buffer.
			shipped = append(shipped, wal.Record{Kind: r.Kind,
				Key:   append([]byte(nil), r.Key...),
				Value: append([]byte(nil), r.Value...)})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 9 {
		t.Fatalf("moved %d records, want 9 (the dead key must not ship)", moved)
	}
	for _, r := range shipped {
		if bytes.Equal(r.Key, key(5)) {
			t.Fatalf("dead key shipped as %s record", r.Kind)
		}
	}
	// The corpse was reaped in place, not leaked.
	if _, ok := src.PeekValue(key(5)); ok {
		t.Fatal("dead key survived extraction at the source")
	}
	if src.Stats().Agg.Expired == 0 {
		t.Fatal("extraction reap not counted as an expiry")
	}

	installed, _ := dst.InstallRecords(shipped, true)
	if installed != 9 {
		t.Fatalf("installed %d records, want 9", installed)
	}
	for i := 0; i < 10; i++ {
		v, ok := dst.PeekValue(key(i))
		if i == 5 {
			if ok {
				t.Fatal("corpse installed at the destination")
			}
			continue
		}
		if !ok || !bytes.Equal(v, fmt.Appendf(nil, "payload-%02d", i)) {
			t.Fatalf("key %d at destination = (%q,%v)", i, v, ok)
		}
		e := dst.Engine(dst.ShardFor(key(i)))
		dl, armed := e.DeadlineOf(key(i))
		if i < 5 {
			if !armed || dl != farDeadline {
				t.Fatalf("key %d deadline = (%d,%v), want (%d,true)", i, dl, armed, farDeadline)
			}
		} else if armed {
			t.Fatalf("key %d grew a deadline (%d) in transit", i, dl)
		}
	}
}
