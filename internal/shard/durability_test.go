package shard

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/wal"
	"addrkv/internal/ycsb"
)

// durTestCfg is the engine template the durability tests share.
var durTestCfg = kv.Config{Keys: 2000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}

// testWrite is one issued mutation (the surviving-stream unit).
type testWrite struct {
	kind       wal.Kind // RecSet, RecDel, or RecFlush
	key, value []byte
}

// writeStream builds a deterministic mixed mutation stream: sets,
// overwrites, deletes (some of absent keys), one FLUSHALL in the
// middle, then rebuilding sets.
func writeStream(n int) []testWrite {
	var ws []testWrite
	for i := 0; i < n; i++ {
		key := ycsb.KeyName(uint64(i % 97))
		switch {
		case i == n/2:
			ws = append(ws, testWrite{kind: wal.RecFlush})
		case i%11 == 3:
			ws = append(ws, testWrite{kind: wal.RecDel, key: key})
		case i%17 == 5:
			// Delete of a key that may be absent.
			ws = append(ws, testWrite{kind: wal.RecDel, key: ycsb.KeyName(uint64(100000 + i))})
		default:
			ws = append(ws, testWrite{kind: wal.RecSet, key: key, value: fmt.Appendf(nil, "value-%d", i)})
		}
	}
	return ws
}

// openLogs opens one log per shard in dir and returns them with the
// per-shard recoveries.
func openLogs(t *testing.T, dir string, shards int, policy wal.Policy) ([]*wal.Log, []*wal.Recovery) {
	t.Helper()
	logs := make([]*wal.Log, shards)
	recs := make([]*wal.Recovery, shards)
	for i := 0; i < shards; i++ {
		l, rec, err := wal.OpenShard(dir, i, policy)
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		logs[i], recs[i] = l, rec
	}
	return logs, recs
}

// runWrites executes the stream on c, through the worker runtime when
// worker is true (single producer, so per-shard order matches the
// mutex path).
func runWrites(t *testing.T, c *Cluster, ws []testWrite, worker bool) {
	t.Helper()
	if worker {
		if err := c.StartWorkers(0); err != nil {
			t.Fatal(err)
		}
		defer c.StopWorkers()
		req := NewReq()
		for _, w := range ws {
			switch w.kind {
			case wal.RecFlush:
				if err := c.Reset(); err != nil {
					t.Fatal(err)
				}
			case wal.RecSet:
				req.Kind, req.Key, req.Value = OpSet, w.key, w.value
				c.Enqueue(req)
				req.Wait()
			case wal.RecDel:
				req.Kind, req.Key = OpDelete, w.key
				c.Enqueue(req)
				req.Wait()
			}
		}
		return
	}
	for _, w := range ws {
		switch w.kind {
		case wal.RecFlush:
			if err := c.Reset(); err != nil {
				t.Fatal(err)
			}
		case wal.RecSet:
			c.Set(w.key, w.value)
		case wal.RecDel:
			c.Delete(w.key)
		}
	}
}

// recoverCluster builds a fresh cluster and replays dir's surviving
// streams into it, returning the recovered cluster and apply stats.
func recoverCluster(t *testing.T, dir string, shards int) (*Cluster, RecoveryApplyStats) {
	t.Helper()
	c, err := New(Config{Shards: shards, Engine: durTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	var agg RecoveryApplyStats
	for i := 0; i < shards; i++ {
		l, rec, err := wal.OpenShard(dir, i, wal.FsyncNo)
		if err != nil {
			t.Fatalf("recover shard %d: %v", i, err)
		}
		st, err := c.ApplyRecovery(i, rec)
		if err != nil {
			t.Fatal(err)
		}
		agg = agg.Add(st)
		l.Close()
	}
	return c, agg
}

// assertClustersBitIdentical compares stats, lengths, and the replies
// plus modeled per-op cycles of an identical probe sequence.
func assertClustersBitIdentical(t *testing.T, got, want *Cluster, label string) {
	t.Helper()
	gs, ws := got.Stats(), want.Stats()
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverged:\ngot  %+v\nwant %+v", label, gs.Agg, ws.Agg)
	}
	for i := 0; i < got.NumShards(); i++ {
		if g, w := got.ShardLen(i), want.ShardLen(i); g != w {
			t.Fatalf("%s: shard %d len %d, want %d", label, i, g, w)
		}
	}
	for id := uint64(0); id < 120; id++ {
		key := ycsb.KeyName(id)
		var og, ow OpOutcome
		vg, okg := got.GetO(key, &og)
		vw, okw := want.GetO(key, &ow)
		if okg != okw || !bytes.Equal(vg, vw) {
			t.Fatalf("%s: key %s reply (%q,%v), want (%q,%v)", label, key, vg, okg, vw, okw)
		}
		if og.Cycles != ow.Cycles || og.FastHit != ow.FastHit {
			t.Fatalf("%s: key %s outcome %+v, want %+v", label, key, og, ow)
		}
	}
}

// TestRecoveryBitForBit pins the tentpole contract: a cluster
// recovered from snapshotless logs is bit-for-bit identical — stats,
// modeled cycles, replies — to a fresh cluster that executed the same
// surviving stream live, for 1-shard and multi-shard clusters in both
// dispatch modes. Timed reads on the original cluster are deliberately
// absent from the log (reads don't mutate), which is exactly why the
// reference is "fresh engine × surviving ops", not the pre-crash
// engine.
func TestRecoveryBitForBit(t *testing.T) {
	const loadN, nOps = 500, 1200
	ws := writeStream(nOps)
	for _, shards := range []int{1, 4} {
		for _, worker := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d/worker=%v", shards, worker)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				orig, err := New(Config{Shards: shards, Engine: durTestCfg})
				if err != nil {
					t.Fatal(err)
				}
				logs, _ := openLogs(t, dir, shards, wal.FsyncAlways)
				if err := orig.AttachWAL(logs); err != nil {
					t.Fatal(err)
				}
				orig.Load(loadN, 32)
				runWrites(t, orig, ws, worker)
				// Interleave timed reads: they must not appear in the log.
				for id := uint64(0); id < 50; id++ {
					orig.Get(ycsb.KeyName(id))
				}
				if err := orig.WALErr(); err != nil {
					t.Fatal(err)
				}
				if err := orig.CloseWAL(); err != nil {
					t.Fatal(err)
				}

				recovered, st := recoverCluster(t, dir, shards)
				if st.Loads != loadN || st.Flushes != shards {
					t.Fatalf("apply stats = %+v", st)
				}

				reference, err := New(Config{Shards: shards, Engine: durTestCfg})
				if err != nil {
					t.Fatal(err)
				}
				reference.Load(loadN, 32)
				runWrites(t, reference, ws, false)

				assertClustersBitIdentical(t, recovered, reference, name)
			})
		}
	}
}

// TestWorkerAndMutexProduceIdenticalLogs: the same single-connection
// stream must leave byte-identical per-shard log files whichever
// dispatch mode executed it — group commit batches fsyncs, never
// records.
func TestWorkerAndMutexProduceIdenticalLogs(t *testing.T) {
	const shards, nOps = 2, 800
	ws := writeStream(nOps)
	dirs := map[bool]string{}
	for _, worker := range []bool{false, true} {
		dir := t.TempDir()
		dirs[worker] = dir
		c, err := New(Config{Shards: shards, Engine: durTestCfg})
		if err != nil {
			t.Fatal(err)
		}
		logs, _ := openLogs(t, dir, shards, wal.FsyncEverySec)
		if err := c.AttachWAL(logs); err != nil {
			t.Fatal(err)
		}
		runWrites(t, c, ws, worker)
		if err := c.CloseWAL(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard-%d.aof.1", i)
		m, err := os.ReadFile(dirs[false] + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := os.ReadFile(dirs[true] + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m, w) {
			t.Fatalf("shard %d: worker log (%d B) differs from mutex log (%d B)", i, len(w), len(m))
		}
	}
}

// TestBatchOpsAreLogged: MSET/DEL-style batch entry points append
// their per-key records in sub-batch order, so recovery of a batch
// workload replays it exactly.
func TestBatchOpsAreLogged(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	c, err := New(Config{Shards: shards, Engine: durTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	logs, _ := openLogs(t, dir, shards, wal.FsyncNo)
	if err := c.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}
	var keys, vals [][]byte
	for i := 0; i < 60; i++ {
		keys = append(keys, fmt.Appendf(nil, "bk-%d", i))
		vals = append(vals, fmt.Appendf(nil, "bv-%d", i))
	}
	c.SetBatch(keys, vals)
	if n := c.DeleteBatch(keys[:20]); n != 20 {
		t.Fatalf("deleted %d, want 20", n)
	}
	if err := c.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recovered, st := recoverCluster(t, dir, shards)
	if st.Sets != 60 || st.Dels != 20 {
		t.Fatalf("apply stats = %+v", st)
	}
	if got := recovered.Len(); got != 40 {
		t.Fatalf("recovered %d keys, want 40", got)
	}
	for i := 20; i < 60; i++ {
		v, ok := recovered.Get(keys[i])
		if !ok || !bytes.Equal(v, vals[i]) {
			t.Fatalf("key %s = (%q,%v)", keys[i], v, ok)
		}
	}
}

// TestSnapshotMidStreamRecovery: a compacting snapshot taken between
// two halves of a stream must lose nothing and duplicate nothing, and
// recovery from snapshot+tail must be deterministic (two recoveries
// are bit-for-bit identical).
func TestSnapshotMidStreamRecovery(t *testing.T) {
	const shards, nOps = 2, 1000
	ws := writeStream(nOps)
	dir := t.TempDir()
	orig, err := New(Config{Shards: shards, Engine: durTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	logs, _ := openLogs(t, dir, shards, wal.FsyncEverySec)
	if err := orig.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}
	orig.Load(300, 32)
	runWrites(t, orig, ws[:nOps*3/4], false)
	if err := orig.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		if st := orig.WAL(i).Stats(); st.Gen != 2 || st.Rewrites != 1 {
			t.Fatalf("shard %d post-snapshot stats %+v", i, st)
		}
	}
	runWrites(t, orig, ws[nOps*3/4:], false)

	// Expected final state, straight off the live engines.
	want := map[string]string{}
	total := 0
	for i := 0; i < shards; i++ {
		orig.Engine(i).RangeRecords(func(k, v []byte) bool {
			want[string(k)] = string(v)
			total++
			return true
		})
	}
	if err := orig.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recoveredA, _ := recoverCluster(t, dir, shards)
	recoveredB, _ := recoverCluster(t, dir, shards)

	if got := recoveredA.Len(); got != total {
		t.Fatalf("recovered %d keys, want %d", got, total)
	}
	seen := 0
	for i := 0; i < shards; i++ {
		recoveredA.Engine(i).RangeRecords(func(k, v []byte) bool {
			if want[string(k)] != string(v) {
				t.Fatalf("key %q = %q, want %q", k, v, want[string(k)])
			}
			seen++
			return true
		})
	}
	if seen != total {
		t.Fatalf("recovered enumeration saw %d keys, want %d", seen, total)
	}
	assertClustersBitIdentical(t, recoveredB, recoveredA, "double recovery")
}

// TestAttachWALShardMismatch: a cluster must refuse logs written with
// a different shard count instead of silently misrouting replay.
func TestAttachWALShardMismatch(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: durTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	logs, _ := openLogs(t, t.TempDir(), 3, wal.FsyncNo)
	if err := c.AttachWAL(logs); err == nil {
		t.Fatal("3 logs accepted for 2 shards")
	}
	for _, l := range logs {
		l.Close()
	}
}
