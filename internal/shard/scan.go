// Cluster-level ordered scans: SCAN/RANGE scatter to every shard —
// keys are hash-routed, so each shard holds an arbitrary slice of the
// keyspace and a globally ordered page needs every shard's view — and
// the per-shard runs merge into one ascending stream.
//
// Each shard executes a timed engine scan of up to limit keys under
// its own lock; the front-end merge (real Go code, like routing) is
// uncharged. The over-read is deliberate scatter-gather cost: a
// cluster page of N keys makes every shard walk up to N records, the
// same amplification a real sharded SCAN pays.
//
// The op gate is NOT consulted: scans have no single home key to rule
// on. Cluster mode refuses SCAN/RANGE at classify time (TRYAGAIN)
// while any slot is migrating or importing, which closes the window a
// per-key gate closes for point ops.
package shard

import (
	"bytes"

	"addrkv/internal/kv"
)

// Ordered reports whether the shard engines' index supports SCAN/RANGE
// (every shard shares one index type).
func (c *Cluster) Ordered() bool {
	s := c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Ordered()
}

// Scan visits up to limit stored keys >= start in ascending order
// (limit <= 0 = unbounded), calling fn with each key until it returns
// false. Keys passed to fn are copies the caller may keep. Returns
// keys emitted, or kv.ErrUnordered for a hash index.
func (c *Cluster) Scan(start []byte, limit int, fn func(key []byte) bool) (int, error) {
	return c.ScanO(start, limit, fn, nil)
}

// ScanO is Scan with an optional per-shard outcome report.
func (c *Cluster) ScanO(start []byte, limit int, fn func(key []byte) bool, out *BatchOutcome) (int, error) {
	perShard := make([][][]byte, len(c.shards))
	for si, s := range c.shards {
		s.mu.Lock()
		var before kv.OpProbe
		if out != nil {
			before = s.e.Probe()
		}
		_, err := s.e.Scan(start, limit, func(key []byte) bool {
			perShard[si] = append(perShard[si], append([]byte(nil), key...))
			return true
		})
		observeBatch(si, 1, s.e, out, before)
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	return mergeKeys(perShard, limit, fn), nil
}

// rangePair is one gathered key/value pair.
type rangePair struct {
	key, val []byte
}

// Range visits up to limit stored pairs with start <= key <= end in
// ascending key order (end nil = unbounded above, limit <= 0 =
// unbounded). Slices passed to fn are copies. Returns pairs emitted,
// or kv.ErrUnordered for a hash index.
func (c *Cluster) Range(start, end []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	return c.RangeO(start, end, limit, fn, nil)
}

// RangeO is Range with an optional per-shard outcome report.
func (c *Cluster) RangeO(start, end []byte, limit int, fn func(key, value []byte) bool, out *BatchOutcome) (int, error) {
	perShard := make([][]rangePair, len(c.shards))
	for si, s := range c.shards {
		s.mu.Lock()
		var before kv.OpProbe
		if out != nil {
			before = s.e.Probe()
		}
		_, err := s.e.Range(start, end, limit, func(key, value []byte) bool {
			perShard[si] = append(perShard[si], rangePair{
				key: append([]byte(nil), key...),
				val: append([]byte(nil), value...),
			})
			return true
		})
		observeBatch(si, 1, s.e, out, before)
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	// Merge the per-shard ascending runs.
	heads := make([]int, len(perShard))
	n := 0
	for limit <= 0 || n < limit {
		best := -1
		for si := range perShard {
			if heads[si] >= len(perShard[si]) {
				continue
			}
			if best < 0 || bytes.Compare(perShard[si][heads[si]].key, perShard[best][heads[best]].key) < 0 {
				best = si
			}
		}
		if best < 0 {
			break
		}
		p := perShard[best][heads[best]]
		heads[best]++
		n++
		if !fn(p.key, p.val) {
			break
		}
	}
	return n, nil
}

// mergeKeys merges per-shard ascending key runs into one ascending
// emission of at most limit keys.
func mergeKeys(perShard [][][]byte, limit int, fn func(key []byte) bool) int {
	heads := make([]int, len(perShard))
	n := 0
	for limit <= 0 || n < limit {
		best := -1
		for si := range perShard {
			if heads[si] >= len(perShard[si]) {
				continue
			}
			if best < 0 || bytes.Compare(perShard[si][heads[si]], perShard[best][heads[best]]) < 0 {
				best = si
			}
		}
		if best < 0 {
			break
		}
		k := perShard[best][heads[best]]
		heads[best]++
		n++
		if !fn(k) {
			break
		}
	}
	return n
}
