// Crash-point fault injection: simulate kill -9 at arbitrary write
// offsets by truncating a copy of a real log at seeded random cuts,
// then prove recovery returns exactly the acked frame-prefix — no op
// acknowledged under the always policy is lost, and no torn or
// duplicated record ever surfaces. A second round flips single bytes
// (media corruption rather than a crash) and asserts the weaker
// prefix property: recovery still succeeds and yields some exact
// prefix of the issued stream.
package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/wal"
)

const (
	crashTruncTrials = 120
	crashFlipTrials  = 40
	crashSeed        = 0x5EED_C0DE
)

// buildCrashLog runs a small always-fsync stream on a 1-shard cluster
// and returns the issued ops, the per-op cumulative frame end offsets,
// and the raw log bytes.
func buildCrashLog(t *testing.T) ([]testWrite, []int64, []byte) {
	t.Helper()
	dir := t.TempDir()
	c, err := New(Config{Shards: 1, Engine: kv.Config{Keys: 512, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	logs, _ := openLogs(t, dir, 1, wal.FsyncAlways)
	if err := c.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}
	ws := writeStream(80)
	runWrites(t, c, ws, false)
	if err := c.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "shard-0.aof.1"))
	if err != nil {
		t.Fatal(err)
	}
	ends := make([]int64, len(ws))
	var off int64
	for i, w := range ws {
		off += int64(wal.FrameSize(len(w.key), len(w.value)))
		ends[i] = off
	}
	if off != int64(len(raw)) {
		t.Fatalf("frame math: computed %d bytes, log has %d", off, len(raw))
	}
	return ws, ends, raw
}

// ackedPrefix returns how many issued ops have their full frame within
// the first size bytes — exactly the ops whose always-policy ack could
// have been delivered before a crash at that file size.
func ackedPrefix(ends []int64, size int64) int {
	n := 0
	for _, e := range ends {
		if e <= size {
			n++
		}
	}
	return n
}

// assertRecordsArePrefix checks that got is exactly ws[:len(got)].
func assertRecordsArePrefix(t *testing.T, got []wal.Record, ws []testWrite, label string) {
	t.Helper()
	if len(got) > len(ws) {
		t.Fatalf("%s: recovered %d records from a %d-op stream (duplication)", label, len(got), len(ws))
	}
	for i, r := range got {
		w := ws[i]
		if r.Kind != w.kind || !bytes.Equal(r.Key, w.key) || !bytes.Equal(r.Value, w.value) {
			t.Fatalf("%s: record %d = {%d %q %q}, want {%d %q %q}",
				label, i, r.Kind, r.Key, r.Value, w.kind, w.key, w.value)
		}
	}
}

// TestCrashPointFaultInjection is the ISSUE acceptance gate: ≥100
// deterministic seeded kill offsets, each recovered independently,
// asserting the recovered stream is the exact acked frame-prefix.
func TestCrashPointFaultInjection(t *testing.T) {
	ws, ends, raw := buildCrashLog(t)
	rng := rand.New(rand.NewSource(crashSeed))
	scratch := t.TempDir()

	for trial := 0; trial < crashTruncTrials; trial++ {
		cut := int64(rng.Intn(len(raw) + 1))
		dir := filepath.Join(scratch, fmt.Sprintf("trunc-%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "shard-0.aof.1"), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := wal.OpenShard(dir, 0, wal.FsyncNo)
		if err != nil {
			t.Fatalf("trial %d (cut %d): open: %v", trial, cut, err)
		}
		label := fmt.Sprintf("trunc trial %d cut %d", trial, cut)
		got := rec.Records()
		want := ackedPrefix(ends, cut)
		if len(got) != want {
			t.Fatalf("%s: recovered %d records, want %d", label, len(got), want)
		}
		assertRecordsArePrefix(t, got, ws, label)
		validEnd := int64(0)
		if want > 0 {
			validEnd = ends[want-1]
		}
		wantTorn := cut > validEnd
		if (rec.TornBytes > 0) != wantTorn {
			t.Fatalf("%s: TornBytes=%d (err=%v), torn expectation %v", label, rec.TornBytes, rec.TornErr, wantTorn)
		}
		// The torn remainder must be physically gone: appends after
		// recovery start at a clean frame boundary.
		if st, err := os.Stat(filepath.Join(dir, "shard-0.aof.1")); err != nil {
			t.Fatal(err)
		} else if want > 0 && st.Size() != ends[want-1] || want == 0 && st.Size() != 0 {
			t.Fatalf("%s: file size %d after open, want clean boundary", label, st.Size())
		}
		if trial%10 == 0 {
			verifyCrashReplay(t, rec, ws[:want], label)
		}
		l.Close()
		os.RemoveAll(dir)
	}

	for trial := 0; trial < crashFlipTrials; trial++ {
		if len(raw) == 0 {
			t.Fatal("empty log")
		}
		pos := rng.Intn(len(raw))
		bit := byte(1) << rng.Intn(8)
		cp := append([]byte(nil), raw...)
		cp[pos] ^= bit
		dir := filepath.Join(scratch, fmt.Sprintf("flip-%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "shard-0.aof.1"), cp, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := wal.OpenShard(dir, 0, wal.FsyncNo)
		if err != nil {
			t.Fatalf("flip trial %d (byte %d): open: %v", trial, pos, err)
		}
		assertRecordsArePrefix(t, rec.Records(), ws, fmt.Sprintf("flip trial %d byte %d", trial, pos))
		l.Close()
		os.RemoveAll(dir)
	}
}

// verifyCrashReplay replays rec into a fresh cluster and checks it
// against a reference cluster that executed the same prefix live.
func verifyCrashReplay(t *testing.T, rec *wal.Recovery, prefix []testWrite, label string) {
	t.Helper()
	cfg := kv.Config{Keys: 512, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	recovered, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.ApplyRecovery(0, rec); err != nil {
		t.Fatalf("%s: apply: %v", label, err)
	}
	reference, err := New(Config{Shards: 1, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	runWrites(t, reference, prefix, false)
	assertClustersBitIdentical(t, recovered, reference, label)
}
