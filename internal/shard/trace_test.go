package shard

import (
	"testing"

	"addrkv/internal/kv"
	"addrkv/internal/trace"
	"addrkv/internal/ycsb"
)

// TestTracedOpsMatchUntraced is the tracing analogue of
// TestObservedOpsMatchUnobserved: a run where EVERY op carries a
// front-end span (100% sampling, attached via OpOutcome.Trace) must
// leave the cluster bit-for-bit identical to an untraced run, and the
// spans must agree with the outcome's probe-diffed cycle counts.
func TestTracedOpsMatchUntraced(t *testing.T) {
	cfg := kv.Config{Keys: 6000, Index: kv.KindChainHash, Mode: kv.ModeSTLT, Seed: 42}
	const loadN, nOps = 6000, 12000

	plain, err := New(Config{Shards: 2, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(Config{Shards: 2, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	plain.Load(loadN, 64)
	traced.Load(loadN, 64)
	plain.MarkMeasurement()
	traced.MarkMeasurement()

	tr := trace.NewTracer(2, 64, 1)

	gcfg := ycsb.Config{Keys: loadN, ValueSize: 64, Dist: ycsb.Zipf, Seed: 9, SetFraction: 0.1}
	gp, gt := ycsb.NewGenerator(gcfg), ycsb.NewGenerator(gcfg)
	var bufP, bufT [ycsb.KeyLen]byte
	for i := 0; i < nOps; i++ {
		opP, opT := gp.Next(), gt.Next()
		keyP := ycsb.KeyNameInto(bufP[:], opP.KeyID)
		keyT := ycsb.KeyNameInto(bufT[:], opT.KeyID)

		// Front-end span lifecycle, exactly as kvserve runs it:
		// dispatch → attach via outcome → reply.flush → finish.
		var oc OpOutcome
		name := "get"
		if opT.Type == ycsb.Set {
			name = "set"
		}
		sp := tr.Begin(name, keyT)
		if sp == nil {
			t.Fatalf("op %d: 100%% sampling returned no span", i)
		}
		sp.EventRel(trace.EvDispatch, 0, 0, 0, 0)
		oc.Trace = sp

		if opT.Type == ycsb.Set {
			plain.Set(keyP, ycsb.Value(opP.KeyID, 1, 64))
			traced.SetO(keyT, ycsb.Value(opT.KeyID, 1, 64), &oc)
		} else {
			plain.GetTouch(keyP)
			traced.GetTouchO(keyT, &oc)
		}

		sp.EventRel(trace.EvReplyFlush, sp.Cycles, 0, 0, 0)
		tr.Finish(sp, oc.Shard, oc.FastHit, oc.Missed)

		if sp.Cycles != oc.Cycles {
			t.Fatalf("op %d: span cycles %d != outcome cycles %d", i, sp.Cycles, oc.Cycles)
		}
		if !sp.Has(trace.EvShardLock) || !sp.Has(trace.EvEngineOp) {
			t.Fatalf("op %d: span missing shard.lock/engine.op: %+v", i, sp.Events)
		}
	}

	want, got := plain.Stats(), traced.Stats()
	if got.Agg != want.Agg {
		t.Fatalf("traced cluster diverged from untraced:\ntraced: %+v\nplain:  %+v", got.Agg, want.Agg)
	}
	if tr.Traced() != nOps {
		t.Fatalf("tracer recorded %d ops, want %d", tr.Traced(), nOps)
	}
	counts := tr.EventCounts()
	if counts["dispatch"] != nOps || counts["reply.flush"] != nOps || counts["shard.lock"] != nOps {
		t.Fatalf("front-end event counts off: %v", counts)
	}
	// A cold-start STLT run must show translation traffic in the spans.
	for _, k := range []string{"stlt.probe", "page.walk", "tlb.refill"} {
		if counts[k] == 0 {
			t.Fatalf("no %q events over %d traced ops (counts %v)", k, nOps, counts)
		}
	}
	// With 100% sampling every translation event lands in some span, so
	// event totals must equal the machines' own counters exactly.
	if counts["page.walk"] != got.Agg.Machine.PageWalks {
		t.Fatalf("page.walk events %d != machine walks %d", counts["page.walk"], got.Agg.Machine.PageWalks)
	}
	if counts["stb.hit"] != got.Agg.Machine.STBHits {
		t.Fatalf("stb.hit events %d != machine STB hits %d", counts["stb.hit"], got.Agg.Machine.STBHits)
	}
	if counts["stb.hit"]+counts["stb.miss"] != got.Agg.Machine.TLBMisses {
		t.Fatalf("stb events %d+%d != full TLB misses %d",
			counts["stb.hit"], counts["stb.miss"], got.Agg.Machine.TLBMisses)
	}

	// Spans filed under the shard that served them.
	b := tr.Snapshot("unit", "manual")
	for _, op := range b.Ops {
		for _, e := range op.Events {
			if e.Kind == trace.EvShardLock && int(e.A) != op.Shard {
				t.Fatalf("op %d filed under shard %d but locked shard %d", op.ID, op.Shard, e.A)
			}
		}
	}
}

// TestClusterSetTracerSamplesEngineOps: with no front-end span, the
// engines' own tracer (installed cluster-wide) samples ops and files
// them under the serving shard's ring.
func TestClusterSetTracerSamplesEngineOps(t *testing.T) {
	c, err := New(Config{Shards: 2, Engine: kv.Config{Keys: 1000, Index: kv.KindChainHash, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(1000, 64)
	tr := trace.NewTracer(2, 16, 1)
	c.SetTracer(tr)

	var buf [ycsb.KeyLen]byte
	for id := uint64(0); id < 200; id++ {
		c.GetTouch(ycsb.KeyNameInto(buf[:], id))
	}
	if tr.Traced() != 200 {
		t.Fatalf("traced %d ops, want 200", tr.Traced())
	}
	b := tr.Snapshot("unit", "manual")
	shards := map[int]int{}
	for _, op := range b.Ops {
		shards[op.Shard]++
	}
	if shards[0] == 0 || shards[1] == 0 {
		t.Fatalf("expected spans on both shards, got %v", shards)
	}
}
