package hostmeta

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestCollect(t *testing.T) {
	m := Collect()
	if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("bad CPU counts: %+v", m)
	}
	if !strings.HasPrefix(m.GoVersion, "go") {
		t.Fatalf("GoVersion = %q", m.GoVersion)
	}
	if m.GOOS != runtime.GOOS || m.GOARCH != runtime.GOARCH {
		t.Fatalf("platform mismatch: %+v", m)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"go_version", "goos", "goarch", "num_cpu", "gomaxprocs"} {
		if !strings.Contains(string(b), `"`+k+`"`) {
			t.Fatalf("JSON missing %q: %s", k, b)
		}
	}
}
