// Package hostmeta stamps benchmark artifacts with the facts needed
// to interpret them later: throughput and contention-bound speedups
// depend on the host's parallelism, so an artifact captured on a
// 1-CPU container must be distinguishable from one captured on a
// 32-core bench box without out-of-band notes.
package hostmeta

import "runtime"

// Meta is the host fingerprint embedded in bench JSON artifacts.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Collect captures the current process's view of the host.
func Collect() Meta {
	return Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
