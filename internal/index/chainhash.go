package index

import (
	"encoding/binary"

	"addrkv/internal/arch"
)

// ChainHash is a chained hash table in the style of the Redis dict and
// GCC's std::unordered_map: a power-of-two bucket array of entry
// pointers, each bucket heading a singly-linked list of 16-byte
// entries {record VA, next VA}. Keys live inside the records
// (Figure 3 of the paper).
type ChainHash struct {
	ctx *Context

	buckets arch.Addr // VA of the bucket array
	nbkts   int       // power of two
	count   int

	// MaxLoadFactor triggers growth when count > nbkts*MaxLoadFactor
	// (Redis grows its dict at load factor 1).
	MaxLoadFactor float64

	// Grows counts table growths (each is a full rehash).
	Grows uint64
}

const chainEntrySize = 16

// NewChainHash creates a table presized for sizeHint keys.
func NewChainHash(ctx *Context, sizeHint int) *ChainHash {
	n := 16
	for n < sizeHint {
		n <<= 1
	}
	h := &ChainHash{ctx: ctx, nbkts: n, MaxLoadFactor: 1.0}
	h.buckets = ctx.M.AS.Alloc(n * 8)
	return h
}

// Name implements Index.
func (h *ChainHash) Name() string { return "chainhash" }

// Len implements Index.
func (h *ChainHash) Len() int { return h.count }

// Buckets returns the current bucket count (diagnostics).
func (h *ChainHash) Buckets() int { return h.nbkts }

func (h *ChainHash) bucketVA(hash uint64) arch.Addr {
	return h.buckets + arch.Addr(int(hash&uint64(h.nbkts-1))*8)
}

// readEntry performs a timed read of a chain entry.
func (h *ChainHash) readEntry(eva arch.Addr, cat arch.CostCategory) (rec, next arch.Addr) {
	var b [chainEntrySize]byte
	h.ctx.M.Read(eva, b[:], arch.KindIndex, cat)
	return arch.Addr(binary.LittleEndian.Uint64(b[0:])), arch.Addr(binary.LittleEndian.Uint64(b[8:]))
}

func (h *ChainHash) writeEntry(eva, rec, next arch.Addr, cat arch.CostCategory) {
	var b [chainEntrySize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(rec))
	binary.LittleEndian.PutUint64(b[8:], uint64(next))
	h.ctx.M.Write(eva, b[:], arch.KindIndex, cat)
}

// Get implements Index: hash, read the bucket head, then walk the
// chain comparing keys record by record.
func (h *ChainHash) Get(key []byte) (arch.Addr, bool) {
	hash := h.ctx.HashKey(key)
	m := h.ctx.M
	eva := arch.Addr(m.ReadU64(h.bucketVA(hash), arch.KindIndex, arch.CatTraverse))
	for eva != 0 {
		rec, next := h.readEntry(eva, arch.CatTraverse)
		if KeyMatches(m, rec, key, arch.CatTraverse) {
			return rec, true
		}
		eva = next
	}
	return 0, false
}

// Put implements Index.
func (h *ChainHash) Put(key, value []byte) PutResult {
	hash := h.ctx.HashKey(key)
	m := h.ctx.M
	bva := h.bucketVA(hash)
	head := arch.Addr(m.ReadU64(bva, arch.KindIndex, arch.CatTraverse))
	for eva := head; eva != 0; {
		rec, next := h.readEntry(eva, arch.CatTraverse)
		if KeyMatches(m, rec, key, arch.CatTraverse) {
			return h.updateRecord(eva, rec, key, value)
		}
		eva = next
	}
	// New key: allocate the record and push a fresh entry at the
	// chain head, as the Redis dict does.
	rec := AllocRecord(m, key, value)
	TouchRecordWrite(m, rec, len(key), len(value))
	eva := m.AS.Alloc(chainEntrySize)
	h.writeEntry(eva, rec, head, arch.CatTraverse)
	m.WriteU64(bva, uint64(eva), arch.KindIndex, arch.CatTraverse)
	h.count++
	if float64(h.count) > float64(h.nbkts)*h.MaxLoadFactor {
		h.grow()
	}
	return PutResult{RecordVA: rec, Inserted: true}
}

// updateRecord rewrites the value in place when the new record size
// stays within the old allocation class, otherwise moves the record —
// the event that obliges an STLT refresh.
func (h *ChainHash) updateRecord(eva, rec arch.Addr, key, value []byte) PutResult {
	m := h.ctx.M
	kl, vl := ReadRecordHeader(m, rec, arch.CatData)
	oldSize := RecordSize(kl, vl)
	newSize := RecordSize(len(key), len(value))
	if allocClass(newSize) == allocClass(oldSize) {
		UpdateValueInPlace(m, rec, kl, value)
		return PutResult{RecordVA: rec}
	}
	newRec := AllocRecord(m, key, value)
	TouchRecordWrite(m, newRec, len(key), len(value))
	m.WriteU64(eva, uint64(newRec), arch.KindIndex, arch.CatTraverse)
	FreeRecord(m, rec, kl, vl)
	return PutResult{RecordVA: newRec, Moved: true, OldVA: rec}
}

// Delete implements Index.
func (h *ChainHash) Delete(key []byte) bool {
	hash := h.ctx.HashKey(key)
	m := h.ctx.M
	bva := h.bucketVA(hash)
	prev := arch.Addr(0)
	eva := arch.Addr(m.ReadU64(bva, arch.KindIndex, arch.CatTraverse))
	for eva != 0 {
		rec, next := h.readEntry(eva, arch.CatTraverse)
		if KeyMatches(m, rec, key, arch.CatTraverse) {
			if prev == 0 {
				m.WriteU64(bva, uint64(next), arch.KindIndex, arch.CatTraverse)
			} else {
				// Patch prev.next (second word of prev's entry).
				m.WriteU64(prev+8, uint64(next), arch.KindIndex, arch.CatTraverse)
			}
			kl, vl := ReadRecordHeader(m, rec, arch.CatTraverse)
			FreeRecord(m, rec, kl, vl)
			m.AS.Free(eva, chainEntrySize)
			h.count--
			return true
		}
		prev, eva = eva, next
	}
	return false
}

// grow doubles the bucket array and rehashes every entry. The rehash
// runs functionally with a coarse cycle charge — Redis amortizes this
// incrementally; modeling the full stall would over-penalize the
// baseline we compare against.
func (h *ChainHash) grow() {
	m := h.ctx.M
	oldB, oldN := h.buckets, h.nbkts
	h.nbkts <<= 1
	h.buckets = m.AS.Alloc(h.nbkts * 8)
	h.Grows++
	for i := 0; i < oldN; i++ {
		eva := arch.Addr(m.AS.ReadU64(oldB + arch.Addr(i*8)))
		for eva != 0 {
			var b [chainEntrySize]byte
			m.AS.ReadAt(eva, b[:])
			rec := arch.Addr(binary.LittleEndian.Uint64(b[0:]))
			next := arch.Addr(binary.LittleEndian.Uint64(b[8:]))
			// Rehash by re-reading the stored key.
			kl, _ := headerFunctional(m.AS, rec)
			k := make([]byte, kl)
			m.AS.ReadAt(rec+RecordHeaderSize, k)
			nb := h.bucketVA(h.ctx.Hash.Hash(k, h.ctx.Seed))
			oldHead := m.AS.ReadU64(nb)
			binary.LittleEndian.PutUint64(b[8:], oldHead)
			m.AS.WriteAt(eva, b[:])
			m.AS.WriteU64(nb, uint64(eva))
			eva = next
		}
	}
	m.AS.Free(oldB, oldN*8)
	m.Compute(arch.Cycles(oldN*20), arch.CatOther)
}

// allocClass mirrors vm's size-class rounding for move decisions.
func allocClass(n int) int {
	c := 16
	for c < n && c < arch.PageSize {
		c <<= 1
	}
	if n > arch.PageSize {
		return (n + arch.PageSize - 1) &^ arch.PageMask
	}
	return c
}
