package index

import (
	"addrkv/internal/arch"
)

// DenseHash is an open-addressing hash table in the style of Google's
// dense_hash_map: a flat power-of-two array of slots probed
// quadratically (triangular increments), with a maximum occupancy of
// 50% before growth and tombstone deletion.
//
// dense_hash_map<string, V> stores the pair<string, V> *inline* in the
// table array — with a heap-allocated string body for 24-byte keys —
// so each slot is 40 bytes (string header 32 + value 8). We model
// that: slots are 40-byte strides whose first word is the record VA
// (0 = empty, 1 = tombstone); the key bytes themselves live in the
// record, standing in for the string's heap buffer. The 40-byte
// stride reproduces dense_hash_map's real cache footprint and its
// line-straddling slots.
type DenseHash struct {
	ctx *Context

	table arch.Addr
	cap   int // power of two
	count int // live keys
	used  int // live + tombstones

	// MaxOccupancy is the used/cap ratio that triggers growth
	// (dense_hash_map's default enlarge factor is 0.5).
	MaxOccupancy float64

	// Grows counts rehashes.
	Grows uint64
	// ProbeLengthSum / Probes expose average probe distance.
	ProbeLengthSum uint64
	Probes         uint64
}

const (
	denseTombstone arch.Addr = 1
	// denseSlotSize is sizeof(pair<std::string, V*>) on a 64-bit
	// libstdc++: 32-byte string header + 8-byte value pointer.
	denseSlotSize = 40
)

// NewDenseHash creates a table presized so that sizeHint keys stay
// under the occupancy bound.
func NewDenseHash(ctx *Context, sizeHint int) *DenseHash {
	n := 32
	for float64(sizeHint) > 0.5*float64(n) {
		n <<= 1
	}
	d := &DenseHash{ctx: ctx, cap: n, MaxOccupancy: 0.5}
	d.table = ctx.M.AS.Alloc(n * denseSlotSize)
	return d
}

// Name implements Index.
func (d *DenseHash) Name() string { return "densehash" }

// Len implements Index.
func (d *DenseHash) Len() int { return d.count }

// Cap returns the slot count (diagnostics).
func (d *DenseHash) Cap() int { return d.cap }

func (d *DenseHash) slotVA(idx int) arch.Addr { return d.table + arch.Addr(idx*denseSlotSize) }

// readSlot performs a timed read of the whole 40-byte slot (the pair
// the probe inspects) and returns its record VA.
func (d *DenseHash) readSlot(idx int, cat arch.CostCategory) arch.Addr {
	var b [denseSlotSize]byte
	d.ctx.M.Read(d.slotVA(idx), b[:], arch.KindIndex, cat)
	return arch.Addr(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
}

// writeSlotPair performs a timed write of a full slot (constructing the
// inline pair on insert).
func (d *DenseHash) writeSlotPair(idx int, rec arch.Addr) {
	var b [denseSlotSize]byte
	v := uint64(rec)
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	d.ctx.M.Write(d.slotVA(idx), b[:], arch.KindIndex, arch.CatTraverse)
}

// probe iterates quadratically from the hash until visit returns true.
func (d *DenseHash) probeSeq(hash uint64) func() int {
	mask := d.cap - 1
	i := int(hash) & mask
	step := 0
	return func() int {
		r := i
		step++
		i = (i + step) & mask // triangular: h, h+1, h+3, h+6, ...
		return r
	}
}

// Get implements Index.
func (d *DenseHash) Get(key []byte) (arch.Addr, bool) {
	hash := d.ctx.HashKey(key)
	m := d.ctx.M
	next := d.probeSeq(hash)
	d.Probes++
	for n := 0; n < d.cap; n++ {
		idx := next()
		slot := d.readSlot(idx, arch.CatTraverse)
		if slot == 0 {
			d.ProbeLengthSum += uint64(n + 1)
			return 0, false
		}
		if slot == denseTombstone {
			continue
		}
		if KeyMatches(m, slot, key, arch.CatTraverse) {
			d.ProbeLengthSum += uint64(n + 1)
			return slot, true
		}
	}
	return 0, false
}

// Put implements Index.
func (d *DenseHash) Put(key, value []byte) PutResult {
	hash := d.ctx.HashKey(key)
	m := d.ctx.M
	next := d.probeSeq(hash)
	insertAt := -1
	for n := 0; n < d.cap; n++ {
		idx := next()
		slot := d.readSlot(idx, arch.CatTraverse)
		if slot == 0 {
			if insertAt < 0 {
				insertAt = idx
			}
			break
		}
		if slot == denseTombstone {
			if insertAt < 0 {
				insertAt = idx
			}
			continue
		}
		if KeyMatches(m, slot, key, arch.CatTraverse) {
			return d.updateRecord(idx, slot, key, value)
		}
	}
	if insertAt < 0 {
		panic("index: dense hash table full despite occupancy bound")
	}
	rec := AllocRecord(m, key, value)
	TouchRecordWrite(m, rec, len(key), len(value))
	// Reusing a tombstone does not raise used.
	old := arch.Addr(m.AS.ReadU64(d.slotVA(insertAt)))
	if old == 0 {
		d.used++
	}
	d.writeSlotPair(insertAt, rec)
	d.count++
	if float64(d.used) > d.MaxOccupancy*float64(d.cap) {
		d.grow()
	}
	return PutResult{RecordVA: rec, Inserted: true}
}

func (d *DenseHash) updateRecord(idx int, rec arch.Addr, key, value []byte) PutResult {
	m := d.ctx.M
	kl, vl := ReadRecordHeader(m, rec, arch.CatData)
	if allocClass(RecordSize(len(key), len(value))) == allocClass(RecordSize(kl, vl)) {
		UpdateValueInPlace(m, rec, kl, value)
		return PutResult{RecordVA: rec}
	}
	newRec := AllocRecord(m, key, value)
	TouchRecordWrite(m, newRec, len(key), len(value))
	m.WriteU64(d.slotVA(idx), uint64(newRec), arch.KindIndex, arch.CatTraverse)
	FreeRecord(m, rec, kl, vl)
	return PutResult{RecordVA: newRec, Moved: true, OldVA: rec}
}

// Delete implements Index (tombstone deletion, like dense_hash_map's
// set_deleted_key protocol).
func (d *DenseHash) Delete(key []byte) bool {
	hash := d.ctx.HashKey(key)
	m := d.ctx.M
	next := d.probeSeq(hash)
	for n := 0; n < d.cap; n++ {
		idx := next()
		slot := d.readSlot(idx, arch.CatTraverse)
		if slot == 0 {
			return false
		}
		if slot == denseTombstone {
			continue
		}
		if KeyMatches(m, slot, key, arch.CatTraverse) {
			kl, vl := ReadRecordHeader(m, slot, arch.CatTraverse)
			FreeRecord(m, slot, kl, vl)
			m.WriteU64(d.slotVA(idx), uint64(denseTombstone), arch.KindIndex, arch.CatTraverse)
			d.count--
			return true
		}
	}
	return false
}

// grow quadruples the table when occupancy (including tombstones)
// crosses the bound, dropping tombstones. Functional with a coarse
// cycle charge, like ChainHash.grow.
func (d *DenseHash) grow() {
	m := d.ctx.M
	oldT, oldCap := d.table, d.cap
	d.cap <<= 2
	d.table = m.AS.Alloc(d.cap * denseSlotSize)
	d.used = d.count
	d.Grows++
	for i := 0; i < oldCap; i++ {
		rec := arch.Addr(m.AS.ReadU64(oldT + arch.Addr(i*denseSlotSize)))
		if rec == 0 || rec == denseTombstone {
			continue
		}
		kl, _ := headerFunctional(m.AS, rec)
		k := make([]byte, kl)
		m.AS.ReadAt(rec+RecordHeaderSize, k)
		next := d.probeSeq(d.ctx.Hash.Hash(k, d.ctx.Seed))
		for {
			idx := next()
			if m.AS.ReadU64(d.slotVA(idx)) == 0 {
				m.AS.WriteU64(d.slotVA(idx), uint64(rec))
				break
			}
		}
	}
	m.AS.Free(oldT, oldCap*denseSlotSize)
	m.Compute(arch.Cycles(oldCap*12), arch.CatOther)
}

// MeanProbeLength returns the average probes per lookup (diagnostics).
func (d *DenseHash) MeanProbeLength() float64 {
	if d.Probes == 0 {
		return 0
	}
	return float64(d.ProbeLengthSum) / float64(d.Probes)
}
