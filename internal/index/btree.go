package index

import (
	"encoding/binary"

	"addrkv/internal/arch"
)

// BTree is a B-tree over simulated memory in the style of Google's
// cpp-btree (the paper's "btree" kernel benchmark): 256-byte nodes,
// keys compared through the records they point at. The algorithm is
// CLRS with minimum degree 7 (up to 13 keys and 14 children per node),
// which fills the 256-byte node budget.
type BTree struct {
	ctx *Context

	root   arch.Addr
	count  int
	height int

	// Splits and Merges count structural operations (diagnostics).
	Splits uint64
	Merges uint64
}

const (
	btMinDegree = 7
	btMaxKeys   = 2*btMinDegree - 1 // 13
	btMinKeys   = btMinDegree - 1   // 6
	btNodeSize  = 256

	btOffCount    = 0 // uint16
	btOffLeaf     = 2 // uint8
	btOffKeys     = 8
	btOffChildren = btOffKeys + btMaxKeys*8 // 112
)

type btNode struct {
	leaf     bool
	n        int
	keys     [btMaxKeys]arch.Addr // record VAs, ordered by record key
	children [btMaxKeys + 1]arch.Addr
}

// NewBTree creates an empty tree.
func NewBTree(ctx *Context) *BTree {
	t := &BTree{ctx: ctx, height: 1}
	t.root = ctx.M.AS.Alloc(btNodeSize)
	t.writeNode(t.root, &btNode{leaf: true})
	return t
}

// Name implements Index.
func (t *BTree) Name() string { return "btree" }

// Len implements Index.
func (t *BTree) Len() int { return t.count }

// Height returns the tree height in levels (diagnostics).
func (t *BTree) Height() int { return t.height }

// readMeta performs a timed read of the header and used key slots —
// what a search actually touches.
func (t *BTree) readMeta(va arch.Addr, nd *btNode) {
	m := t.ctx.M
	var hdr [8]byte
	m.Read(va, hdr[:], arch.KindIndex, arch.CatTraverse)
	nd.n = int(binary.LittleEndian.Uint16(hdr[btOffCount:]))
	nd.leaf = hdr[btOffLeaf] != 0
	if nd.n > 0 {
		buf := make([]byte, nd.n*8)
		m.Read(va+btOffKeys, buf, arch.KindIndex, arch.CatTraverse)
		for i := 0; i < nd.n; i++ {
			nd.keys[i] = arch.Addr(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
}

// readChild performs a timed read of one child pointer.
func (t *BTree) readChild(va arch.Addr, idx int) arch.Addr {
	return arch.Addr(t.ctx.M.ReadU64(va+btOffChildren+arch.Addr(idx*8), arch.KindIndex, arch.CatTraverse))
}

// readNode loads a full node image (structural operations).
func (t *BTree) readNode(va arch.Addr) *btNode {
	nd := &btNode{}
	t.readMeta(va, nd)
	if !nd.leaf {
		m := t.ctx.M
		buf := make([]byte, (nd.n+1)*8)
		m.Read(va+btOffChildren, buf, arch.KindIndex, arch.CatTraverse)
		for i := 0; i <= nd.n; i++ {
			nd.children[i] = arch.Addr(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return nd
}

// writeNode stores a full node image.
func (t *BTree) writeNode(va arch.Addr, nd *btNode) {
	m := t.ctx.M
	var b [btNodeSize]byte
	binary.LittleEndian.PutUint16(b[btOffCount:], uint16(nd.n))
	if nd.leaf {
		b[btOffLeaf] = 1
	}
	for i := 0; i < nd.n; i++ {
		binary.LittleEndian.PutUint64(b[btOffKeys+i*8:], uint64(nd.keys[i]))
	}
	if !nd.leaf {
		for i := 0; i <= nd.n; i++ {
			binary.LittleEndian.PutUint64(b[btOffChildren+i*8:], uint64(nd.children[i]))
		}
	}
	used := btOffChildren
	if !nd.leaf {
		used = btOffChildren + (nd.n+1)*8
	}
	m.Write(va, b[:used], arch.KindIndex, arch.CatTraverse)
}

// searchIn binary-searches key within nd's keys, reading record keys
// for the compares. It returns (index, found): index is the first key
// >= key (or n).
func (t *BTree) searchIn(nd *btNode, key []byte) (int, bool) {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := KeyCompare(t.ctx.M, nd.keys[mid], key, arch.CatTraverse); {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// Get implements Index.
func (t *BTree) Get(key []byte) (arch.Addr, bool) {
	va := t.root
	var nd btNode
	for {
		t.readMeta(va, &nd)
		i, found := t.searchIn(&nd, key)
		if found {
			return nd.keys[i], true
		}
		if nd.leaf {
			return 0, false
		}
		va = t.readChild(va, i)
	}
}

// Put implements Index (CLRS preemptive-split insertion).
func (t *BTree) Put(key, value []byte) PutResult {
	m := t.ctx.M
	// Preemptive root split.
	rootNd := t.readNode(t.root)
	if rootNd.n == btMaxKeys {
		newRoot := m.AS.Alloc(btNodeSize)
		nr := &btNode{leaf: false, n: 0}
		nr.children[0] = t.root
		t.writeNode(newRoot, nr)
		t.splitChild(newRoot, nr, 0, t.root, rootNd)
		t.root = newRoot
		t.height++
		rootNd = nr
	}
	return t.insertNonFull(t.root, rootNd, key, value)
}

// splitChild splits full child c (image cn) of parent p (image pn) at
// child index i. Both images are updated and written back.
func (t *BTree) splitChild(p arch.Addr, pn *btNode, i int, c arch.Addr, cn *btNode) {
	t.Splits++
	m := t.ctx.M
	right := m.AS.Alloc(btNodeSize)
	rn := &btNode{leaf: cn.leaf, n: btMinKeys}
	copy(rn.keys[:btMinKeys], cn.keys[btMinDegree:])
	if !cn.leaf {
		copy(rn.children[:btMinDegree], cn.children[btMinDegree:])
	}
	median := cn.keys[btMinDegree-1]
	cn.n = btMinKeys

	// Shift parent slots right and link the new sibling.
	copy(pn.children[i+2:pn.n+2], pn.children[i+1:pn.n+1])
	pn.children[i+1] = right
	copy(pn.keys[i+1:pn.n+1], pn.keys[i:pn.n])
	pn.keys[i] = median
	pn.n++

	t.writeNode(c, cn)
	t.writeNode(right, rn)
	t.writeNode(p, pn)
}

func (t *BTree) insertNonFull(va arch.Addr, nd *btNode, key, value []byte) PutResult {
	m := t.ctx.M
	for {
		i, found := t.searchIn(nd, key)
		if found {
			return t.updateRecord(va, nd, i, key, value)
		}
		if nd.leaf {
			rec := AllocRecord(m, key, value)
			TouchRecordWrite(m, rec, len(key), len(value))
			copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
			nd.keys[i] = rec
			nd.n++
			t.writeNode(va, nd)
			t.count++
			return PutResult{RecordVA: rec, Inserted: true}
		}
		cva := nd.children[i]
		cn := t.readNode(cva)
		if cn.n == btMaxKeys {
			t.splitChild(va, nd, i, cva, cn)
			// Re-decide direction against the promoted median.
			switch c := KeyCompare(m, nd.keys[i], key, arch.CatTraverse); {
			case c == 0:
				return t.updateRecord(va, nd, i, key, value)
			case c > 0:
				cva = nd.children[i+1]
				cn = t.readNode(cva)
			default:
				cva = nd.children[i]
				cn = t.readNode(cva)
			}
		}
		va, nd = cva, cn
	}
}

func (t *BTree) updateRecord(va arch.Addr, nd *btNode, i int, key, value []byte) PutResult {
	m := t.ctx.M
	rec := nd.keys[i]
	kl, vl := ReadRecordHeader(m, rec, arch.CatData)
	if allocClass(RecordSize(len(key), len(value))) == allocClass(RecordSize(kl, vl)) {
		UpdateValueInPlace(m, rec, kl, value)
		return PutResult{RecordVA: rec}
	}
	newRec := AllocRecord(m, key, value)
	TouchRecordWrite(m, newRec, len(key), len(value))
	nd.keys[i] = newRec
	t.writeNode(va, nd)
	FreeRecord(m, rec, kl, vl)
	return PutResult{RecordVA: newRec, Moved: true, OldVA: rec}
}

// Delete implements Index (CLRS deletion with borrow/merge).
func (t *BTree) Delete(key []byte) bool {
	m := t.ctx.M
	rec, ok := t.deleteFrom(t.root, key)
	if !ok {
		return false
	}
	// Shrink the root if it emptied.
	rn := t.readNode(t.root)
	if rn.n == 0 && !rn.leaf {
		old := t.root
		t.root = rn.children[0]
		m.AS.Free(old, btNodeSize)
		t.height--
	}
	kl, vl := headerFunctional(m.AS, rec)
	FreeRecord(m, rec, kl, vl)
	t.count--
	return true
}

// deleteFrom removes key from the subtree rooted at va and returns the
// record VA that was unlinked (the caller owns freeing it — records
// promoted into ancestors during case 2 must survive the recursive
// removal of their old leaf slot). The caller guarantees va has more
// than btMinKeys keys unless it is the root.
func (t *BTree) deleteFrom(va arch.Addr, key []byte) (arch.Addr, bool) {
	nd := t.readNode(va)
	i, found := t.searchIn(nd, key)
	if found {
		if nd.leaf {
			// Case 1: unlink from leaf.
			rec := nd.keys[i]
			copy(nd.keys[i:nd.n-1], nd.keys[i+1:nd.n])
			nd.n--
			t.writeNode(va, nd)
			return rec, true
		}
		// Case 2: internal node.
		leftVA := nd.children[i]
		leftN := t.readNode(leftVA)
		rec := nd.keys[i]
		if leftN.n > btMinKeys {
			// 2a: promote the predecessor record into this slot,
			// then unlink it from the left subtree.
			predRec := t.extremeRecord(leftVA, false)
			nd.keys[i] = predRec
			t.writeNode(va, nd)
			if _, ok := t.deleteFrom(leftVA, t.recordKeyFunctional(predRec)); !ok {
				panic("index: btree predecessor vanished")
			}
			return rec, true
		}
		rightVA := nd.children[i+1]
		rightN := t.readNode(rightVA)
		if rightN.n > btMinKeys {
			// 2b: promote the successor record.
			succRec := t.extremeRecord(rightVA, true)
			nd.keys[i] = succRec
			t.writeNode(va, nd)
			if _, ok := t.deleteFrom(rightVA, t.recordKeyFunctional(succRec)); !ok {
				panic("index: btree successor vanished")
			}
			return rec, true
		}
		// 2c: merge children around the key, then recurse.
		t.mergeChildren(va, nd, i, leftVA, leftN, rightVA, rightN)
		return t.deleteFrom(leftVA, key)
	}
	if nd.leaf {
		return 0, false
	}
	return t.deleteFrom(t.childReady(va, nd, i), key)
}

// childReady returns child i of va, first ensuring it has more than
// btMinKeys keys by borrowing from a sibling or merging (CLRS case 3).
// n is va's current image and is updated in place.
func (t *BTree) childReady(va arch.Addr, n *btNode, i int) arch.Addr {
	cva := n.children[i]
	cn := t.readNode(cva)
	if cn.n > btMinKeys {
		return cva
	}
	// Try borrowing from the left sibling.
	if i > 0 {
		lva := n.children[i-1]
		ln := t.readNode(lva)
		if ln.n > btMinKeys {
			// Rotate right through the parent.
			copy(cn.keys[1:cn.n+1], cn.keys[:cn.n])
			cn.keys[0] = n.keys[i-1]
			if !cn.leaf {
				copy(cn.children[1:cn.n+2], cn.children[:cn.n+1])
				cn.children[0] = ln.children[ln.n]
			}
			cn.n++
			n.keys[i-1] = ln.keys[ln.n-1]
			ln.n--
			t.writeNode(lva, ln)
			t.writeNode(cva, cn)
			t.writeNode(va, n)
			return cva
		}
	}
	// Try borrowing from the right sibling.
	if i < n.n {
		rva := n.children[i+1]
		rn := t.readNode(rva)
		if rn.n > btMinKeys {
			cn.keys[cn.n] = n.keys[i]
			if !cn.leaf {
				cn.children[cn.n+1] = rn.children[0]
			}
			cn.n++
			n.keys[i] = rn.keys[0]
			copy(rn.keys[:rn.n-1], rn.keys[1:rn.n])
			if !rn.leaf {
				copy(rn.children[:rn.n], rn.children[1:rn.n+1])
			}
			rn.n--
			t.writeNode(rva, rn)
			t.writeNode(cva, cn)
			t.writeNode(va, n)
			return cva
		}
	}
	// Merge with a sibling.
	if i > 0 {
		lva := n.children[i-1]
		ln := t.readNode(lva)
		t.mergeChildren(va, n, i-1, lva, ln, cva, cn)
		return lva
	}
	rva := n.children[i+1]
	rn := t.readNode(rva)
	t.mergeChildren(va, n, i, cva, cn, rva, rn)
	return cva
}

// mergeChildren merges child i+1 into child i around parent key i
// (both children have btMinKeys keys). Parent image n is updated and
// written back; the right node is freed.
func (t *BTree) mergeChildren(va arch.Addr, n *btNode, i int, lva arch.Addr, ln *btNode, rva arch.Addr, rn *btNode) {
	t.Merges++
	ln.keys[ln.n] = n.keys[i]
	copy(ln.keys[ln.n+1:ln.n+1+rn.n], rn.keys[:rn.n])
	if !ln.leaf {
		copy(ln.children[ln.n+1:ln.n+2+rn.n], rn.children[:rn.n+1])
	}
	ln.n += 1 + rn.n

	copy(n.keys[i:n.n-1], n.keys[i+1:n.n])
	copy(n.children[i+1:n.n], n.children[i+2:n.n+1])
	n.n--

	t.writeNode(lva, ln)
	t.writeNode(va, n)
	t.ctx.M.AS.Free(rva, btNodeSize)
}

// extremeRecord returns the min (first=true) or max record VA of the
// subtree at va.
func (t *BTree) extremeRecord(va arch.Addr, first bool) arch.Addr {
	for {
		nd := t.readNode(va)
		if nd.leaf {
			if first {
				return nd.keys[0]
			}
			return nd.keys[nd.n-1]
		}
		if first {
			va = nd.children[0]
		} else {
			va = nd.children[nd.n]
		}
	}
}

func (t *BTree) recordKeyFunctional(rec arch.Addr) []byte {
	kl, _ := headerFunctional(t.ctx.M.AS, rec)
	k := make([]byte, kl)
	t.ctx.M.AS.ReadAt(rec+RecordHeaderSize, k)
	return k
}

// CheckInvariants validates B-tree structure (tests only): key order,
// uniform leaf depth, and per-node occupancy bounds. It returns the
// number of keys found.
func (t *BTree) CheckInvariants() (int, error) {
	depth := -1
	var walk func(va arch.Addr, level int, lo, hi []byte) (int, error)
	walk = func(va arch.Addr, level int, lo, hi []byte) (int, error) {
		nd := t.readNode(va)
		if va != t.root && (nd.n < btMinKeys || nd.n > btMaxKeys) {
			return 0, errorString("btree: node occupancy out of bounds")
		}
		var prev []byte
		if lo != nil {
			prev = lo
		}
		total := nd.n
		for i := 0; i < nd.n; i++ {
			k := t.recordKeyFunctional(nd.keys[i])
			if prev != nil && string(prev) >= string(k) {
				return 0, errorString("btree: key order violation")
			}
			prev = k
		}
		if hi != nil && prev != nil && string(prev) >= string(hi) {
			return 0, errorString("btree: subtree exceeds upper bound")
		}
		if nd.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return 0, errorString("btree: leaves at unequal depth")
			}
			return total, nil
		}
		for i := 0; i <= nd.n; i++ {
			var clo, chi []byte
			if i > 0 {
				clo = t.recordKeyFunctional(nd.keys[i-1])
			} else {
				clo = lo
			}
			if i < nd.n {
				chi = t.recordKeyFunctional(nd.keys[i])
			} else {
				chi = hi
			}
			sub, err := walk(nd.children[i], level+1, clo, chi)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	return walk(t.root, 0, nil, nil)
}
