package index

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
	"addrkv/internal/vm"
)

// Record layout in simulated memory:
//
//	offset 0: keyLen  (uint16, little-endian)
//	offset 2: valLen  (uint32, little-endian)
//	offset 6: 2 bytes padding
//	offset 8: key bytes
//	offset 8+keyLen: value bytes
//
// Key and value live in one contiguous blob, like a Redis sds/robj
// pair allocated together or an embstr object: reading the header line
// also brings in the start of the key, so validation of an STLT hit
// usually costs a single cache line.

// RecordHeaderSize is the fixed record header size.
const RecordHeaderSize = 8

// MaxKeyLen is the largest supported key (uint16 length field).
const MaxKeyLen = 1<<16 - 1

// RecordSize returns the allocation size for a key/value pair.
func RecordSize(keyLen, valLen int) int {
	return RecordHeaderSize + keyLen + valLen
}

// AllocRecord allocates and fills a record blob in simulated memory
// (functional stores; the timing of a SET's stores is charged by the
// caller via TouchRecordWrite so build-phase inserts stay fast).
func AllocRecord(m *cpu.Machine, key, value []byte) arch.Addr {
	if len(key) > MaxKeyLen {
		panic(fmt.Sprintf("index: key length %d exceeds maximum", len(key)))
	}
	size := RecordSize(len(key), len(value))
	va := m.AS.Alloc(size)
	var hdr [RecordHeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(value)))
	m.AS.WriteAt(va, hdr[:])
	m.AS.WriteAt(va+RecordHeaderSize, key)
	m.AS.WriteAt(va+RecordHeaderSize+arch.Addr(len(key)), value)
	return va
}

// FreeRecord releases a record blob.
func FreeRecord(m *cpu.Machine, va arch.Addr, keyLen, valLen int) {
	m.AS.Free(va, RecordSize(keyLen, valLen))
}

// ReadRecordHeader performs a timed read of the record header and
// returns (keyLen, valLen).
func ReadRecordHeader(m *cpu.Machine, va arch.Addr, cat arch.CostCategory) (int, int) {
	var hdr [RecordHeaderSize]byte
	m.Read(va, hdr[:], arch.KindRecord, cat)
	return int(binary.LittleEndian.Uint16(hdr[0:])), int(binary.LittleEndian.Uint32(hdr[2:]))
}

// KeyMatches performs a timed read of the record's header and key and
// reports whether it equals key. This is both the per-node compare of
// the slow path and the software validation of an STLT hit.
func KeyMatches(m *cpu.Machine, va arch.Addr, key []byte, cat arch.CostCategory) bool {
	var hdr [RecordHeaderSize]byte
	m.Read(va, hdr[:], arch.KindRecord, cat)
	kl := int(binary.LittleEndian.Uint16(hdr[0:]))
	if kl != len(key) {
		return false
	}
	m.Compute(keyCompareCost(kl), cat)
	var stack [64]byte
	stored := stack[:]
	if kl > len(stack) {
		stored = make([]byte, kl)
	} else {
		stored = stack[:kl]
	}
	m.Read(va+RecordHeaderSize, stored, arch.KindRecord, cat)
	return string(stored) == string(key)
}

// KeyCompare performs a timed read of the record's key and returns
// bytes.Compare(key, storedKey) — the allocation-free compare used by
// the ordered structures' descents.
func KeyCompare(m *cpu.Machine, va arch.Addr, key []byte, cat arch.CostCategory) int {
	var hdr [RecordHeaderSize]byte
	m.Read(va, hdr[:], arch.KindRecord, cat)
	kl := int(binary.LittleEndian.Uint16(hdr[0:]))
	var stack [64]byte
	stored := stack[:]
	if kl > len(stack) {
		stored = make([]byte, kl)
	} else {
		stored = stack[:kl]
	}
	m.Read(va+RecordHeaderSize, stored, arch.KindRecord, cat)
	m.Compute(keyCompareCost(min(kl, len(key))), cat)
	return bytes.Compare(key, stored)
}

// ReadRecordKey performs a timed read of the record's key (for ordered
// structures' comparisons).
func ReadRecordKey(m *cpu.Machine, va arch.Addr, cat arch.CostCategory) []byte {
	kl, _ := ReadRecordHeader(m, va, cat)
	k := make([]byte, kl)
	m.Read(va+RecordHeaderSize, k, arch.KindRecord, cat)
	return k
}

// ReadValue performs a timed read of the record's value, charged to
// CatData (the paper's "load record" step), and returns it.
func ReadValue(m *cpu.Machine, va arch.Addr) []byte {
	kl, vl := ReadRecordHeader(m, va, arch.CatData)
	v := make([]byte, vl)
	m.Read(va+RecordHeaderSize+arch.Addr(kl), v, arch.KindRecord, arch.CatData)
	return v
}

// ReadValueInto is ReadValue with a caller-supplied buffer: the value
// is appended into buf[:0] (reallocated only when cap(buf) is too
// small), so a steady-state reader with a warm buffer performs zero
// allocations. The timed traffic is identical to ReadValue.
func ReadValueInto(m *cpu.Machine, va arch.Addr, buf []byte) []byte {
	kl, vl := ReadRecordHeader(m, va, arch.CatData)
	if cap(buf) < vl {
		buf = make([]byte, vl)
	} else {
		buf = buf[:vl]
	}
	m.Read(va+RecordHeaderSize+arch.Addr(kl), buf, arch.KindRecord, arch.CatData)
	return buf
}

// ReadKeyInto performs a timed read of the record's key, appended into
// buf[:0] (reallocated only when cap(buf) is too small) — the per-record
// read of an ordered scan's emission path.
func ReadKeyInto(m *cpu.Machine, va arch.Addr, buf []byte, cat arch.CostCategory) []byte {
	var hdr [RecordHeaderSize]byte
	m.Read(va, hdr[:], arch.KindRecord, cat)
	kl := int(binary.LittleEndian.Uint16(hdr[0:]))
	if cap(buf) < kl {
		buf = make([]byte, kl)
	} else {
		buf = buf[:kl]
	}
	m.Read(va+RecordHeaderSize, buf, arch.KindRecord, cat)
	return buf
}

// TouchValue charges the timed traffic of reading the value without
// materializing it.
func TouchValue(m *cpu.Machine, va arch.Addr) {
	kl, vl := ReadRecordHeader(m, va, arch.CatData)
	m.Touch(va+RecordHeaderSize+arch.Addr(kl), vl, false, arch.KindRecord, arch.CatData)
}

// TouchRecordWrite charges the timed traffic of writing a fresh record
// (a SET on the measured path).
func TouchRecordWrite(m *cpu.Machine, va arch.Addr, keyLen, valLen int) {
	m.Touch(va, RecordSize(keyLen, valLen), true, arch.KindRecord, arch.CatData)
}

// headerFunctional reads a record header without timing (rehash and
// free paths).
func headerFunctional(as *vm.AddressSpace, rec arch.Addr) (keyLen, valLen int) {
	var hdr [RecordHeaderSize]byte
	as.ReadAt(rec, hdr[:])
	return int(binary.LittleEndian.Uint16(hdr[0:])), int(binary.LittleEndian.Uint32(hdr[2:]))
}

// UpdateValueInPlace overwrites a record's value when the new value
// fits the record's allocation class; the caller decides fit.
func UpdateValueInPlace(m *cpu.Machine, va arch.Addr, keyLen int, value []byte) {
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(value)))
	m.Write(va+2, lenb[:], arch.KindRecord, arch.CatData)
	m.Write(va+RecordHeaderSize+arch.Addr(keyLen), value, arch.KindRecord, arch.CatData)
}
