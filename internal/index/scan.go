// Ordered scans: the tree/skiplist structures can enumerate records in
// ascending key order starting at an arbitrary key. Unlike Range
// (range.go), scans are *timed* — they model a client-visible SCAN or
// RANGE command, so every node visited and every record key read is
// charged through the simulated hierarchy, the same pointer-chasing
// traffic the paper's Figure 13 attributes to ordered structures.
//
// The hash indexes deliberately do not implement Ordered: a hash table
// has no key order to expose, and the kv layer turns that absence into
// a typed error rather than a silent empty result.
package index

import "addrkv/internal/arch"

// Ordered is the capability interface for indexes that can serve
// ordered scans. The btree, skiplist, and rbtree implement it; the two
// hash structures do not.
type Ordered interface {
	Index
	// ScanFrom visits every stored record whose key is >= start in
	// ascending key order, stopping early when fn returns false. The
	// traversal is timed (CatTraverse reads, like Get).
	ScanFrom(start []byte, fn func(rec arch.Addr) bool)
}

// btFrame is one level of the explicit in-order iteration stack:
// idx is the next key slot to emit at this node; for an internal node
// the subtree under child idx has already been visited when the frame
// is on top of the stack.
type btFrame struct {
	va  arch.Addr
	nd  btNode
	idx int
}

// ScanFrom implements Ordered.
func (t *BTree) ScanFrom(start []byte, fn func(rec arch.Addr) bool) {
	var stack []btFrame
	// Descent: at each node, searchIn finds the first key >= start.
	// For an internal node the subtree under child i may still hold
	// keys in [start, keys[i]), so descend there first — unless the
	// key matched exactly, in which case child i holds only smaller
	// keys and emission starts at this slot.
	va := t.root
	for {
		var nd btNode
		t.readMeta(va, &nd)
		i, found := t.searchIn(&nd, start)
		leaf := nd.leaf
		var child arch.Addr
		if !found && !leaf {
			child = t.readChild(va, i)
		}
		stack = append(stack, btFrame{va: va, nd: nd, idx: i})
		if found || leaf {
			break
		}
		va = child
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx >= f.nd.n {
			stack = stack[:len(stack)-1]
			continue
		}
		rec := f.nd.keys[f.idx]
		f.idx++
		// Capture before any append below: growing the stack may
		// reallocate it and invalidate f.
		leaf, fva, nidx := f.nd.leaf, f.va, f.idx
		if !fn(rec) {
			return
		}
		if !leaf {
			// In-order successor: leftmost leaf of the subtree under
			// the child that follows the emitted key.
			cva := t.readChild(fva, nidx)
			for {
				var nd btNode
				t.readMeta(cva, &nd)
				cleaf := nd.leaf
				var next arch.Addr
				if !cleaf {
					next = t.readChild(cva, 0)
				}
				stack = append(stack, btFrame{va: cva, nd: nd})
				if cleaf {
					break
				}
				cva = next
			}
		}
	}
}

// ScanFrom implements Ordered: find the last node before start, then
// walk the level-0 list.
func (s *SkipList) ScanFrom(start []byte, fn func(rec arch.Addr) bool) {
	var update [slMaxLevel]arch.Addr
	x := s.findPredecessors(start, &update)
	for node := s.readForward(x, 0); node != 0; node = s.readForward(node, 0) {
		rec, _ := s.readNodeMeta(node)
		if !fn(rec) {
			return
		}
	}
}

// rbFrame caches the node image read during descent so emission does
// not re-read (and re-charge) it.
type rbFrame struct {
	va arch.Addr
	nd rbNode
}

// ScanFrom implements Ordered: in-order iteration with an explicit
// stack, seeded by a descent that keeps every node whose key is
// >= start as a pending candidate.
func (t *RBTree) ScanFrom(start []byte, fn func(rec arch.Addr) bool) {
	var stack []rbFrame
	cur := t.root
	for cur != t.nilN {
		n := t.readNode(cur, arch.CatTraverse)
		if t.compareAt(n, start) <= 0 { // start <= this key: candidate
			stack = append(stack, rbFrame{cur, n})
			cur = n.left
		} else {
			cur = n.right
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.nd.record) {
			return
		}
		cur = f.nd.right
		for cur != t.nilN {
			n := t.readNode(cur, arch.CatTraverse)
			stack = append(stack, rbFrame{cur, n})
			cur = n.left
		}
	}
}
