package index

import (
	"encoding/binary"

	"addrkv/internal/arch"
)

// RBTree is a red-black tree over simulated memory in the style of
// GCC's std::map (the paper's "ordered_map" kernel benchmark). Nodes
// are 40-byte blobs {left, right, parent, record VA, color}; keys live
// in the records, so every comparison during descent reads the
// candidate record — the pointer-chasing pattern that gives trees the
// largest addressing overhead in the paper (Figure 13).
//
// The implementation is the classic CLRS algorithm with a shared
// sentinel nil node.
type RBTree struct {
	ctx *Context

	root  arch.Addr
	nilN  arch.Addr // sentinel: black, fields scratch during fixups
	count int

	// Rotations counts structural rotations (diagnostics).
	Rotations uint64
}

const (
	rbNodeSize = 40
	rbBlack    = 0
	rbRed      = 1
)

type rbNode struct {
	left, right, parent arch.Addr
	record              arch.Addr
	color               byte
}

// NewRBTree creates an empty tree.
func NewRBTree(ctx *Context) *RBTree {
	t := &RBTree{ctx: ctx}
	t.nilN = ctx.M.AS.Alloc(rbNodeSize)
	t.writeNode(t.nilN, rbNode{color: rbBlack}, arch.CatTraverse)
	t.root = t.nilN
	return t
}

// Name implements Index.
func (t *RBTree) Name() string { return "rbtree" }

// Len implements Index.
func (t *RBTree) Len() int { return t.count }

func (t *RBTree) readNode(va arch.Addr, cat arch.CostCategory) rbNode {
	var b [rbNodeSize]byte
	t.ctx.M.Read(va, b[:], arch.KindIndex, cat)
	return rbNode{
		left:   arch.Addr(binary.LittleEndian.Uint64(b[0:])),
		right:  arch.Addr(binary.LittleEndian.Uint64(b[8:])),
		parent: arch.Addr(binary.LittleEndian.Uint64(b[16:])),
		record: arch.Addr(binary.LittleEndian.Uint64(b[24:])),
		color:  b[32],
	}
}

func (t *RBTree) writeNode(va arch.Addr, n rbNode, cat arch.CostCategory) {
	var b [rbNodeSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(n.left))
	binary.LittleEndian.PutUint64(b[8:], uint64(n.right))
	binary.LittleEndian.PutUint64(b[16:], uint64(n.parent))
	binary.LittleEndian.PutUint64(b[24:], uint64(n.record))
	b[32] = n.color
	t.ctx.M.Write(va, b[:], arch.KindIndex, cat)
}

// field helpers: single-field updates are 8-byte stores.
func (t *RBTree) setLeft(va, v arch.Addr) {
	t.ctx.M.WriteU64(va, uint64(v), arch.KindIndex, arch.CatTraverse)
}
func (t *RBTree) setRight(va, v arch.Addr) {
	t.ctx.M.WriteU64(va+8, uint64(v), arch.KindIndex, arch.CatTraverse)
}
func (t *RBTree) setParent(va, v arch.Addr) {
	t.ctx.M.WriteU64(va+16, uint64(v), arch.KindIndex, arch.CatTraverse)
}
func (t *RBTree) setRecord(va, v arch.Addr) {
	t.ctx.M.WriteU64(va+24, uint64(v), arch.KindIndex, arch.CatTraverse)
}
func (t *RBTree) setColor(va arch.Addr, c byte) {
	t.ctx.M.Write(va+32, []byte{c}, arch.KindIndex, arch.CatTraverse)
}

// compareAt reads the key of the record at node n and compares the
// probe key against it.
func (t *RBTree) compareAt(n rbNode, key []byte) int {
	return KeyCompare(t.ctx.M, n.record, key, arch.CatTraverse)
}

// Get implements Index: a standard BST descent; each level reads the
// node and then the record key it points to.
func (t *RBTree) Get(key []byte) (arch.Addr, bool) {
	// std::map has no hash, but the comparison-based descent replaces
	// it; CatHash stays zero for trees, as in the paper's breakdown.
	cur := t.root
	for cur != t.nilN {
		n := t.readNode(cur, arch.CatTraverse)
		switch c := t.compareAt(n, key); {
		case c == 0:
			return n.record, true
		case c < 0:
			cur = n.left
		default:
			cur = n.right
		}
	}
	return 0, false
}

// Put implements Index.
func (t *RBTree) Put(key, value []byte) PutResult {
	m := t.ctx.M
	parent := t.nilN
	cur := t.root
	var lastCmp int
	for cur != t.nilN {
		n := t.readNode(cur, arch.CatTraverse)
		lastCmp = t.compareAt(n, key)
		if lastCmp == 0 {
			return t.updateRecord(cur, n.record, key, value)
		}
		parent = cur
		if lastCmp < 0 {
			cur = n.left
		} else {
			cur = n.right
		}
	}
	rec := AllocRecord(m, key, value)
	TouchRecordWrite(m, rec, len(key), len(value))
	nva := m.AS.Alloc(rbNodeSize)
	t.writeNode(nva, rbNode{left: t.nilN, right: t.nilN, parent: parent, record: rec, color: rbRed}, arch.CatTraverse)
	if parent == t.nilN {
		t.root = nva
	} else if lastCmp < 0 {
		t.setLeft(parent, nva)
	} else {
		t.setRight(parent, nva)
	}
	t.insertFixup(nva)
	t.count++
	return PutResult{RecordVA: rec, Inserted: true}
}

func (t *RBTree) updateRecord(nva, rec arch.Addr, key, value []byte) PutResult {
	m := t.ctx.M
	kl, vl := ReadRecordHeader(m, rec, arch.CatData)
	if allocClass(RecordSize(len(key), len(value))) == allocClass(RecordSize(kl, vl)) {
		UpdateValueInPlace(m, rec, kl, value)
		return PutResult{RecordVA: rec}
	}
	newRec := AllocRecord(m, key, value)
	TouchRecordWrite(m, newRec, len(key), len(value))
	t.setRecord(nva, newRec)
	FreeRecord(m, rec, kl, vl)
	return PutResult{RecordVA: newRec, Moved: true, OldVA: rec}
}

func (t *RBTree) leftOf(va arch.Addr) arch.Addr {
	return arch.Addr(t.ctx.M.ReadU64(va, arch.KindIndex, arch.CatTraverse))
}
func (t *RBTree) rightOf(va arch.Addr) arch.Addr {
	return arch.Addr(t.ctx.M.ReadU64(va+8, arch.KindIndex, arch.CatTraverse))
}
func (t *RBTree) parentOf(va arch.Addr) arch.Addr {
	return arch.Addr(t.ctx.M.ReadU64(va+16, arch.KindIndex, arch.CatTraverse))
}
func (t *RBTree) recordOf(va arch.Addr) arch.Addr {
	return arch.Addr(t.ctx.M.ReadU64(va+24, arch.KindIndex, arch.CatTraverse))
}
func (t *RBTree) colorOf(va arch.Addr) byte {
	var b [1]byte
	t.ctx.M.Read(va+32, b[:], arch.KindIndex, arch.CatTraverse)
	return b[0]
}

func (t *RBTree) rotateLeft(x arch.Addr) {
	t.Rotations++
	y := t.rightOf(x)
	yl := t.leftOf(y)
	t.setRight(x, yl)
	if yl != t.nilN {
		t.setParent(yl, x)
	}
	xp := t.parentOf(x)
	t.setParent(y, xp)
	if xp == t.nilN {
		t.root = y
	} else if t.leftOf(xp) == x {
		t.setLeft(xp, y)
	} else {
		t.setRight(xp, y)
	}
	t.setLeft(y, x)
	t.setParent(x, y)
}

func (t *RBTree) rotateRight(x arch.Addr) {
	t.Rotations++
	y := t.leftOf(x)
	yr := t.rightOf(y)
	t.setLeft(x, yr)
	if yr != t.nilN {
		t.setParent(yr, x)
	}
	xp := t.parentOf(x)
	t.setParent(y, xp)
	if xp == t.nilN {
		t.root = y
	} else if t.rightOf(xp) == x {
		t.setRight(xp, y)
	} else {
		t.setLeft(xp, y)
	}
	t.setRight(y, x)
	t.setParent(x, y)
}

func (t *RBTree) insertFixup(z arch.Addr) {
	for {
		zp := t.parentOf(z)
		if zp == t.nilN || t.colorOf(zp) != rbRed {
			break
		}
		zpp := t.parentOf(zp)
		if zp == t.leftOf(zpp) {
			y := t.rightOf(zpp) // uncle
			if t.colorOf(y) == rbRed {
				t.setColor(zp, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(zpp, rbRed)
				z = zpp
				continue
			}
			if z == t.rightOf(zp) {
				z = zp
				t.rotateLeft(z)
				zp = t.parentOf(z)
				zpp = t.parentOf(zp)
			}
			t.setColor(zp, rbBlack)
			t.setColor(zpp, rbRed)
			t.rotateRight(zpp)
		} else {
			y := t.leftOf(zpp)
			if t.colorOf(y) == rbRed {
				t.setColor(zp, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(zpp, rbRed)
				z = zpp
				continue
			}
			if z == t.leftOf(zp) {
				z = zp
				t.rotateRight(z)
				zp = t.parentOf(z)
				zpp = t.parentOf(zp)
			}
			t.setColor(zp, rbBlack)
			t.setColor(zpp, rbRed)
			t.rotateLeft(zpp)
		}
	}
	t.setColor(t.root, rbBlack)
}

// Delete implements Index (CLRS RB-DELETE).
func (t *RBTree) Delete(key []byte) bool {
	m := t.ctx.M
	z := t.root
	for z != t.nilN {
		n := t.readNode(z, arch.CatTraverse)
		c := t.compareAt(n, key)
		if c == 0 {
			break
		}
		if c < 0 {
			z = n.left
		} else {
			z = n.right
		}
	}
	if z == t.nilN {
		return false
	}

	rec := t.recordOf(z)
	y := z
	yOrigColor := t.colorOf(y)
	var x arch.Addr
	if t.leftOf(z) == t.nilN {
		x = t.rightOf(z)
		t.transplant(z, x)
	} else if t.rightOf(z) == t.nilN {
		x = t.leftOf(z)
		t.transplant(z, x)
	} else {
		y = t.minimum(t.rightOf(z))
		yOrigColor = t.colorOf(y)
		x = t.rightOf(y)
		if t.parentOf(y) == z {
			t.setParent(x, y) // x may be nil sentinel; parent is scratch
		} else {
			t.transplant(y, x)
			zr := t.rightOf(z)
			t.setRight(y, zr)
			t.setParent(zr, y)
		}
		t.transplant(z, y)
		zl := t.leftOf(z)
		t.setLeft(y, zl)
		t.setParent(zl, y)
		t.setColor(y, t.colorOf(z))
	}
	if yOrigColor == rbBlack {
		t.deleteFixup(x)
	}

	kl, vl := headerFunctional(m.AS, rec)
	FreeRecord(m, rec, kl, vl)
	m.AS.Free(z, rbNodeSize)
	t.count--
	return true
}

func (t *RBTree) transplant(u, v arch.Addr) {
	up := t.parentOf(u)
	if up == t.nilN {
		t.root = v
	} else if u == t.leftOf(up) {
		t.setLeft(up, v)
	} else {
		t.setRight(up, v)
	}
	t.setParent(v, up)
}

func (t *RBTree) minimum(va arch.Addr) arch.Addr {
	for {
		l := t.leftOf(va)
		if l == t.nilN {
			return va
		}
		va = l
	}
}

func (t *RBTree) deleteFixup(x arch.Addr) {
	for x != t.root && t.colorOf(x) == rbBlack {
		xp := t.parentOf(x)
		if x == t.leftOf(xp) {
			w := t.rightOf(xp)
			if t.colorOf(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateLeft(xp)
				xp = t.parentOf(x)
				w = t.rightOf(xp)
			}
			if t.colorOf(t.leftOf(w)) == rbBlack && t.colorOf(t.rightOf(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
			} else {
				if t.colorOf(t.rightOf(w)) == rbBlack {
					t.setColor(t.leftOf(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateRight(w)
					xp = t.parentOf(x)
					w = t.rightOf(xp)
				}
				t.setColor(w, t.colorOf(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.rightOf(w), rbBlack)
				t.rotateLeft(xp)
				x = t.root
			}
		} else {
			w := t.leftOf(xp)
			if t.colorOf(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateRight(xp)
				xp = t.parentOf(x)
				w = t.leftOf(xp)
			}
			if t.colorOf(t.rightOf(w)) == rbBlack && t.colorOf(t.leftOf(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
			} else {
				if t.colorOf(t.leftOf(w)) == rbBlack {
					t.setColor(t.rightOf(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateLeft(w)
					xp = t.parentOf(x)
					w = t.leftOf(xp)
				}
				t.setColor(w, t.colorOf(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.leftOf(w), rbBlack)
				t.rotateRight(xp)
				x = t.root
			}
		}
	}
	t.setColor(x, rbBlack)
}

// CheckInvariants validates the red-black properties (tests only):
// root is black, no red node has a red child, and every root-to-leaf
// path has the same black height. It returns the black height.
func (t *RBTree) CheckInvariants() (int, error) {
	if t.root != t.nilN && t.colorOf(t.root) != rbBlack {
		return 0, errRootRed
	}
	return t.checkFrom(t.root)
}

var (
	errRootRed  = errorString("rbtree: root is red")
	errRedRed   = errorString("rbtree: red node with red child")
	errBlackImb = errorString("rbtree: black-height imbalance")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func (t *RBTree) checkFrom(va arch.Addr) (int, error) {
	if va == t.nilN {
		return 1, nil
	}
	n := t.readNode(va, arch.CatTraverse)
	if n.color == rbRed {
		if t.colorOf(n.left) == rbRed || t.colorOf(n.right) == rbRed {
			return 0, errRedRed
		}
	}
	lh, err := t.checkFrom(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := t.checkFrom(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackImb
	}
	if n.color == rbBlack {
		lh++
	}
	return lh, nil
}
