package index

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"addrkv/internal/arch"
)

var orderedBuilders = []struct {
	name string
	make func(ctx *Context, hint int) Ordered
}{
	{"rbtree", func(c *Context, h int) Ordered { return NewRBTree(c) }},
	{"btree", func(c *Context, h int) Ordered { return NewBTree(c) }},
	{"skiplist", func(c *Context, h int) Ordered { return NewSkipList(c) }},
}

func scanKeys(c *Context, idx Ordered, start []byte, limit int) [][]byte {
	var out [][]byte
	idx.ScanFrom(start, func(rec arch.Addr) bool {
		kl, _ := headerFunctional(c.M.AS, rec)
		k := make([]byte, kl)
		c.M.AS.ReadAt(rec+RecordHeaderSize, k)
		out = append(out, k)
		return limit <= 0 || len(out) < limit
	})
	return out
}

func TestScanFromOrderAndCoverage(t *testing.T) {
	for _, b := range orderedBuilders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newCtx()
			idx := b.make(ctx, 64)
			const n = 500
			rng := rand.New(rand.NewSource(7))
			perm := rng.Perm(n)
			var sorted [][]byte
			for _, i := range perm {
				idx.Put(key(i), val(i, 0))
			}
			for i := 0; i < n; i++ {
				sorted = append(sorted, key(i))
			}
			sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })

			// Full scan from the empty key covers everything in order.
			got := scanKeys(ctx, idx, nil, 0)
			if len(got) != n {
				t.Fatalf("full scan: %d keys, want %d", len(got), n)
			}
			for i := range got {
				if !bytes.Equal(got[i], sorted[i]) {
					t.Fatalf("key %d = %q, want %q", i, got[i], sorted[i])
				}
			}

			// Scans from arbitrary starts (present keys, gaps, past-end).
			starts := [][]byte{key(0), key(123), key(n - 1), key(n + 5),
				append(key(250), 0), []byte("key-"), []byte("zzz")}
			for _, start := range starts {
				want := sorted[sort.Search(n, func(i int) bool {
					return bytes.Compare(sorted[i], start) >= 0
				}):]
				got := scanKeys(ctx, idx, start, 0)
				if len(got) != len(want) {
					t.Fatalf("start %q: %d keys, want %d", start, len(got), len(want))
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("start %q key %d = %q, want %q", start, i, got[i], want[i])
					}
				}
			}

			// Early stop respects the callback's return value.
			if got := scanKeys(ctx, idx, nil, 7); len(got) != 7 {
				t.Fatalf("limited scan returned %d keys", len(got))
			}
		})
	}
}

func TestScanFromIsTimed(t *testing.T) {
	for _, b := range orderedBuilders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newTimedCtx()
			idx := b.make(ctx, 64)
			for i := 0; i < 64; i++ {
				idx.Put(key(i), val(i, 0))
			}
			before := ctx.M.Cycles()
			got := scanKeys(ctx, idx, nil, 0)
			if len(got) != 64 {
				t.Fatalf("scan returned %d keys", len(got))
			}
			if ctx.M.Cycles() <= before {
				t.Fatal("ScanFrom charged no cycles on a timed machine")
			}
		})
	}
}

// TestHashIndexesAreUnordered pins the capability split: only the
// ordered structures expose ScanFrom.
func TestHashIndexesAreUnordered(t *testing.T) {
	ctx := newCtx()
	for _, idx := range []Index{NewChainHash(ctx, 64), NewDenseHash(ctx, 64)} {
		if _, ok := idx.(Ordered); ok {
			t.Fatalf("%s unexpectedly implements Ordered", idx.Name())
		}
	}
	for _, b := range orderedBuilders {
		var idx Index = b.make(ctx, 64)
		if _, ok := idx.(Ordered); !ok {
			t.Fatalf("%s does not implement Ordered", b.name)
		}
	}
}
