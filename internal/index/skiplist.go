package index

import (
	"encoding/binary"

	"addrkv/internal/arch"
)

// SkipList is an ordered index in the style of the Redis zset skiplist
// (t_zset.c): towers of forward pointers over a sorted linked list.
// The paper's "Accelerating beyond hash table" section says the STLT
// applies to any structure with get(key)->record semantics; the skip
// list is the natural fourth ordered structure to test that claim on,
// since Redis itself uses one.
//
// Node layout in simulated memory (like zskiplistNode: record pointer,
// level count, then the forward-pointer tower):
//
//	offset 0:  record VA (8 B)
//	offset 8:  level (u16) + 6 B pad
//	offset 16: forward[0..level-1] (8 B each)
//
// A level-L node occupies 16+8L bytes; with the Redis p=1/4 geometric
// level distribution most nodes are level 1 (24 B).
type SkipList struct {
	ctx *Context

	head  arch.Addr // full-height header node (record VA = 0)
	level int       // current max level in use
	count int

	rng uint64
}

const (
	slMaxLevel   = 24 // Redis uses 32; 24 covers 4^24 >> any run here
	slBranchNum  = 1  // p = 1/4, like Redis
	slBranchDen  = 4
	slNodeHeader = 16
)

func slNodeSize(level int) int { return slNodeHeader + 8*level }

// NewSkipList creates an empty skip list.
func NewSkipList(ctx *Context) *SkipList {
	s := &SkipList{ctx: ctx, level: 1, rng: 0x2545F4914F6CDD1D}
	s.head = ctx.M.AS.Alloc(slNodeSize(slMaxLevel))
	s.writeHeader(s.head, 0, slMaxLevel)
	return s
}

// Name implements Index.
func (s *SkipList) Name() string { return "skiplist" }

// Len implements Index.
func (s *SkipList) Len() int { return s.count }

// Level returns the current tower height (diagnostics).
func (s *SkipList) Level() int { return s.level }

func (s *SkipList) writeHeader(va, rec arch.Addr, level int) {
	var b [slNodeHeader]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(rec))
	binary.LittleEndian.PutUint16(b[8:], uint16(level))
	s.ctx.M.Write(va, b[:], arch.KindIndex, arch.CatTraverse)
}

// readNodeMeta performs a timed read of a node's record VA and level.
func (s *SkipList) readNodeMeta(va arch.Addr) (rec arch.Addr, level int) {
	var b [slNodeHeader]byte
	s.ctx.M.Read(va, b[:], arch.KindIndex, arch.CatTraverse)
	return arch.Addr(binary.LittleEndian.Uint64(b[0:])), int(binary.LittleEndian.Uint16(b[8:]))
}

func (s *SkipList) forwardVA(node arch.Addr, lvl int) arch.Addr {
	return node + slNodeHeader + arch.Addr(lvl*8)
}

// readForward performs a timed read of node.forward[lvl].
func (s *SkipList) readForward(node arch.Addr, lvl int) arch.Addr {
	return arch.Addr(s.ctx.M.ReadU64(s.forwardVA(node, lvl), arch.KindIndex, arch.CatTraverse))
}

func (s *SkipList) writeForward(node arch.Addr, lvl int, v arch.Addr) {
	s.ctx.M.WriteU64(s.forwardVA(node, lvl), uint64(v), arch.KindIndex, arch.CatTraverse)
}

// randomLevel draws from the Redis geometric distribution (p = 1/4).
func (s *SkipList) randomLevel() int {
	lvl := 1
	for lvl < slMaxLevel {
		x := s.rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s.rng = x
		if int(x&0xFFFF) >= (slBranchNum*0x10000)/slBranchDen {
			break
		}
		lvl++
	}
	return lvl
}

// findPredecessors descends from the top level, filling update[l] with
// the rightmost node at level l whose key precedes key. Every key
// comparison reads the candidate's record (timed).
func (s *SkipList) findPredecessors(key []byte, update *[slMaxLevel]arch.Addr) arch.Addr {
	x := s.head
	for l := s.level - 1; l >= 0; l-- {
		for {
			next := s.readForward(x, l)
			if next == 0 {
				break
			}
			rec, _ := s.readNodeMeta(next)
			if KeyCompare(s.ctx.M, rec, key, arch.CatTraverse) <= 0 {
				break // key <= next's key: stop here at this level
			}
			x = next
		}
		update[l] = x
	}
	return x
}

// Get implements Index.
func (s *SkipList) Get(key []byte) (arch.Addr, bool) {
	var update [slMaxLevel]arch.Addr
	x := s.findPredecessors(key, &update)
	next := s.readForward(x, 0)
	if next == 0 {
		return 0, false
	}
	rec, _ := s.readNodeMeta(next)
	if KeyCompare(s.ctx.M, rec, key, arch.CatTraverse) == 0 {
		return rec, true
	}
	return 0, false
}

// Put implements Index.
func (s *SkipList) Put(key, value []byte) PutResult {
	m := s.ctx.M
	var update [slMaxLevel]arch.Addr
	x := s.findPredecessors(key, &update)
	next := s.readForward(x, 0)
	if next != 0 {
		rec, _ := s.readNodeMeta(next)
		if KeyCompare(m, rec, key, arch.CatTraverse) == 0 {
			return s.updateRecord(next, rec, key, value)
		}
	}

	lvl := s.randomLevel()
	if lvl > s.level {
		for l := s.level; l < lvl; l++ {
			update[l] = s.head
		}
		s.level = lvl
	}
	rec := AllocRecord(m, key, value)
	TouchRecordWrite(m, rec, len(key), len(value))
	node := m.AS.Alloc(slNodeSize(lvl))
	s.writeHeader(node, rec, lvl)
	for l := 0; l < lvl; l++ {
		s.writeForward(node, l, s.readForward(update[l], l))
		s.writeForward(update[l], l, node)
	}
	s.count++
	return PutResult{RecordVA: rec, Inserted: true}
}

func (s *SkipList) updateRecord(node, rec arch.Addr, key, value []byte) PutResult {
	m := s.ctx.M
	kl, vl := ReadRecordHeader(m, rec, arch.CatData)
	if allocClass(RecordSize(len(key), len(value))) == allocClass(RecordSize(kl, vl)) {
		UpdateValueInPlace(m, rec, kl, value)
		return PutResult{RecordVA: rec}
	}
	newRec := AllocRecord(m, key, value)
	TouchRecordWrite(m, newRec, len(key), len(value))
	m.WriteU64(node, uint64(newRec), arch.KindIndex, arch.CatTraverse)
	FreeRecord(m, rec, kl, vl)
	return PutResult{RecordVA: newRec, Moved: true, OldVA: rec}
}

// Delete implements Index.
func (s *SkipList) Delete(key []byte) bool {
	m := s.ctx.M
	var update [slMaxLevel]arch.Addr
	x := s.findPredecessors(key, &update)
	target := s.readForward(x, 0)
	if target == 0 {
		return false
	}
	rec, lvl := s.readNodeMeta(target)
	if KeyCompare(m, rec, key, arch.CatTraverse) != 0 {
		return false
	}
	for l := 0; l < lvl; l++ {
		if s.readForward(update[l], l) == target {
			s.writeForward(update[l], l, s.readForward(target, l))
		}
	}
	// Lower the list level while the top levels are empty.
	for s.level > 1 && s.readForward(s.head, s.level-1) == 0 {
		s.level--
	}
	kl, vl := headerFunctional(m.AS, rec)
	FreeRecord(m, rec, kl, vl)
	m.AS.Free(target, slNodeSize(lvl))
	s.count--
	return true
}

// CheckInvariants validates ordering and tower consistency (tests
// only): level-0 keys strictly ascend, every higher level is a
// subsequence of level 0, and count matches. It returns the key count.
func (s *SkipList) CheckInvariants() (int, error) {
	// Level 0: strict ascending order.
	seen := map[arch.Addr]bool{}
	var prevKey []byte
	n := 0
	for node := s.readForward(s.head, 0); node != 0; node = s.readForward(node, 0) {
		rec, _ := s.readNodeMeta(node)
		k := s.recordKeyFunctional(rec)
		if prevKey != nil && string(prevKey) >= string(k) {
			return 0, errorString("skiplist: level-0 order violation")
		}
		prevKey = k
		seen[node] = true
		n++
	}
	if n != s.count {
		return 0, errorString("skiplist: count mismatch")
	}
	for l := 1; l < s.level; l++ {
		prev := []byte(nil)
		for node := s.readForward(s.head, l); node != 0; node = s.readForward(node, l) {
			if !seen[node] {
				return 0, errorString("skiplist: dangling tower node")
			}
			rec, lvl := s.readNodeMeta(node)
			if lvl <= l {
				return 0, errorString("skiplist: node present above its level")
			}
			k := s.recordKeyFunctional(rec)
			if prev != nil && string(prev) >= string(k) {
				return 0, errorString("skiplist: upper-level order violation")
			}
			prev = k
		}
	}
	return n, nil
}

func (s *SkipList) recordKeyFunctional(rec arch.Addr) []byte {
	kl, _ := headerFunctional(s.ctx.M.AS, rec)
	k := make([]byte, kl)
	s.ctx.M.AS.ReadAt(rec+RecordHeaderSize, k)
	return k
}
