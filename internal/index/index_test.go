package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"addrkv/internal/arch"
	"addrkv/internal/cpu"
	"addrkv/internal/hashfn"
)

func newCtx() *Context {
	m := cpu.New(arch.DefaultMachineParams())
	m.Fast = true // functional correctness tests don't need timing
	return &Context{M: m, Hash: hashfn.Murmur64A, Seed: 99}
}

func newTimedCtx() *Context {
	m := cpu.New(arch.DefaultMachineParams())
	return &Context{M: m, Hash: hashfn.Murmur64A, Seed: 99}
}

// builders for all four structures.
var builders = []struct {
	name string
	make func(ctx *Context, hint int) Index
}{
	{"chainhash", func(c *Context, h int) Index { return NewChainHash(c, h) }},
	{"densehash", func(c *Context, h int) Index { return NewDenseHash(c, h) }},
	{"rbtree", func(c *Context, h int) Index { return NewRBTree(c) }},
	{"btree", func(c *Context, h int) Index { return NewBTree(c) }},
	{"skiplist", func(c *Context, h int) Index { return NewSkipList(c) }},
}

func key(i int) []byte                        { return []byte(fmt.Sprintf("key-%08d-abcdefghijkl", i)) }
func val(i, ver int) []byte                   { return []byte(fmt.Sprintf("value-%d-%d-0123456789", i, ver)) }
func bigVal(i int) []byte                     { return bytes.Repeat([]byte{byte(i)}, 300) }
func readVal(c *Context, va arch.Addr) []byte { return ReadValue(c.M, va) }

func TestPutGetBasic(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newCtx()
			idx := b.make(ctx, 64)
			if _, ok := idx.Get(key(1)); ok {
				t.Fatal("hit in empty index")
			}
			res := idx.Put(key(1), val(1, 0))
			if !res.Inserted || res.Moved {
				t.Fatalf("first Put: %+v", res)
			}
			va, ok := idx.Get(key(1))
			if !ok || va != res.RecordVA {
				t.Fatalf("Get = %v,%v", va, ok)
			}
			if got := readVal(ctx, va); !bytes.Equal(got, val(1, 0)) {
				t.Fatalf("value = %q", got)
			}
			if idx.Len() != 1 {
				t.Fatalf("Len = %d", idx.Len())
			}
		})
	}
}

func TestUpdateInPlaceAndMove(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newCtx()
			idx := b.make(ctx, 64)
			r1 := idx.Put(key(1), val(1, 0))

			// Same size class: must update in place.
			r2 := idx.Put(key(1), val(1, 1))
			if r2.Inserted || r2.Moved || r2.RecordVA != r1.RecordVA {
				t.Fatalf("in-place update: %+v", r2)
			}
			va, _ := idx.Get(key(1))
			if got := readVal(ctx, va); !bytes.Equal(got, val(1, 1)) {
				t.Fatalf("updated value = %q", got)
			}

			// Much larger value: must move the record.
			r3 := idx.Put(key(1), bigVal(7))
			if !r3.Moved || r3.OldVA != r1.RecordVA || r3.RecordVA == r1.RecordVA {
				t.Fatalf("move: %+v", r3)
			}
			va, ok := idx.Get(key(1))
			if !ok || va != r3.RecordVA {
				t.Fatal("Get after move")
			}
			if got := readVal(ctx, va); !bytes.Equal(got, bigVal(7)) {
				t.Fatal("moved value corrupted")
			}
			if idx.Len() != 1 {
				t.Fatalf("Len = %d after updates", idx.Len())
			}
		})
	}
}

func TestDeleteBasic(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newCtx()
			idx := b.make(ctx, 64)
			for i := 0; i < 50; i++ {
				idx.Put(key(i), val(i, 0))
			}
			if idx.Delete(key(99)) {
				t.Fatal("deleted absent key")
			}
			for i := 0; i < 50; i += 2 {
				if !idx.Delete(key(i)) {
					t.Fatalf("delete key %d failed", i)
				}
			}
			if idx.Len() != 25 {
				t.Fatalf("Len = %d", idx.Len())
			}
			for i := 0; i < 50; i++ {
				_, ok := idx.Get(key(i))
				if want := i%2 == 1; ok != want {
					t.Fatalf("key %d present=%v want %v", i, ok, want)
				}
			}
		})
	}
}

// TestRandomOpsAgainstReference drives each structure with a random
// op mix and cross-checks against a Go map after every phase.
func TestRandomOpsAgainstReference(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newCtx()
			idx := b.make(ctx, 256)
			ref := map[string][]byte{}
			rng := rand.New(rand.NewSource(23))

			const keySpace = 600
			for step := 0; step < 8000; step++ {
				i := rng.Intn(keySpace)
				k := key(i)
				switch rng.Intn(10) {
				case 0, 1: // delete
					want := ref[string(k)] != nil
					got := idx.Delete(k)
					if got != want {
						t.Fatalf("step %d: Delete(%d) = %v want %v", step, i, got, want)
					}
					delete(ref, string(k))
				case 2, 3, 4: // put
					var v []byte
					if rng.Intn(4) == 0 {
						v = bigVal(i)
					} else {
						v = val(i, rng.Intn(100))
					}
					idx.Put(k, v)
					ref[string(k)] = v
				default: // get
					va, ok := idx.Get(k)
					want := ref[string(k)]
					if ok != (want != nil) {
						t.Fatalf("step %d: Get(%d) presence %v want %v", step, i, ok, want != nil)
					}
					if ok {
						if got := readVal(ctx, va); !bytes.Equal(got, want) {
							t.Fatalf("step %d: Get(%d) = %q want %q", step, i, got, want)
						}
					}
				}
			}
			if idx.Len() != len(ref) {
				t.Fatalf("Len = %d, reference %d", idx.Len(), len(ref))
			}
			// Full final sweep.
			for ks, want := range ref {
				va, ok := idx.Get([]byte(ks))
				if !ok {
					t.Fatalf("final: lost key %q", ks)
				}
				if got := readVal(ctx, va); !bytes.Equal(got, want) {
					t.Fatalf("final: key %q value mismatch", ks)
				}
			}
		})
	}
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	ctx := newCtx()
	tr := NewRBTree(ctx)
	rng := rand.New(rand.NewSource(5))
	live := map[int]bool{}
	for step := 0; step < 3000; step++ {
		i := rng.Intn(400)
		if live[i] && rng.Intn(2) == 0 {
			tr.Delete(key(i))
			delete(live, i)
		} else {
			tr.Put(key(i), val(i, 0))
			live[i] = true
		}
		if step%250 == 0 {
			if _, err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if _, err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d want %d", tr.Len(), len(live))
	}
}

func TestBTreeInvariantsUnderChurn(t *testing.T) {
	ctx := newCtx()
	tr := NewBTree(ctx)
	rng := rand.New(rand.NewSource(6))
	live := map[int]bool{}
	for step := 0; step < 3000; step++ {
		i := rng.Intn(400)
		if live[i] && rng.Intn(2) == 0 {
			if !tr.Delete(key(i)) {
				t.Fatalf("step %d: delete of live key %d failed", step, i)
			}
			delete(live, i)
		} else {
			tr.Put(key(i), val(i, 0))
			live[i] = true
		}
		if step%250 == 0 {
			if n, err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			} else if n != len(live) {
				t.Fatalf("step %d: tree holds %d keys, want %d", step, n, len(live))
			}
		}
	}
	if n, err := tr.CheckInvariants(); err != nil || n != len(live) {
		t.Fatalf("final: n=%d err=%v want %d", n, err, len(live))
	}
}

func TestSkipListInvariantsUnderChurn(t *testing.T) {
	ctx := newCtx()
	sl := NewSkipList(ctx)
	rng := rand.New(rand.NewSource(8))
	live := map[int]bool{}
	for step := 0; step < 3000; step++ {
		i := rng.Intn(400)
		if live[i] && rng.Intn(2) == 0 {
			if !sl.Delete(key(i)) {
				t.Fatalf("step %d: delete of live key %d failed", step, i)
			}
			delete(live, i)
		} else {
			sl.Put(key(i), val(i, 0))
			live[i] = true
		}
		if step%250 == 0 {
			if n, err := sl.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			} else if n != len(live) {
				t.Fatalf("step %d: list holds %d keys, want %d", step, n, len(live))
			}
		}
	}
	if n, err := sl.CheckInvariants(); err != nil || n != len(live) {
		t.Fatalf("final: n=%d err=%v want %d", n, err, len(live))
	}
	if sl.Level() < 2 {
		t.Fatalf("tower never grew: level=%d", sl.Level())
	}
}

func TestSkipListLevelDistribution(t *testing.T) {
	ctx := newCtx()
	sl := NewSkipList(ctx)
	for i := 0; i < 4000; i++ {
		sl.Put(key(i), val(i, 0))
	}
	// With p=1/4 the expected max level for 4000 keys is ~log4(4000)
	// ≈ 6; allow generous bounds.
	if sl.Level() < 3 || sl.Level() > 14 {
		t.Fatalf("level = %d, implausible for p=1/4 geometric towers", sl.Level())
	}
}

func TestBTreeSplitsAndHeight(t *testing.T) {
	ctx := newCtx()
	tr := NewBTree(ctx)
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), val(i, 0))
	}
	if tr.Splits == 0 {
		t.Fatal("no splits after 2000 inserts")
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tr.Height())
	}
	// Drain completely; merges must occur and the root must shrink.
	for i := 0; i < 2000; i++ {
		if !tr.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain", tr.Len())
	}
	if tr.Merges == 0 {
		t.Fatal("no merges during drain")
	}
	if tr.Height() != 1 {
		t.Fatalf("drained height = %d", tr.Height())
	}
}

func TestChainHashGrowth(t *testing.T) {
	ctx := newCtx()
	h := NewChainHash(ctx, 16)
	for i := 0; i < 500; i++ {
		h.Put(key(i), val(i, 0))
	}
	if h.Grows == 0 {
		t.Fatal("table never grew")
	}
	for i := 0; i < 500; i++ {
		if _, ok := h.Get(key(i)); !ok {
			t.Fatalf("key %d lost across growth", i)
		}
	}
}

func TestDenseHashGrowthAndTombstoneReuse(t *testing.T) {
	ctx := newCtx()
	d := NewDenseHash(ctx, 32)
	for i := 0; i < 400; i++ {
		d.Put(key(i), val(i, 0))
	}
	if d.Grows == 0 {
		t.Fatal("dense table never grew")
	}
	for i := 0; i < 200; i++ {
		d.Delete(key(i))
	}
	// Reinsert over tombstones.
	for i := 0; i < 200; i++ {
		d.Put(key(i), val(i, 1))
	}
	for i := 0; i < 400; i++ {
		va, ok := d.Get(key(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		want := val(i, 0)
		if i < 200 {
			want = val(i, 1)
		}
		if got := readVal(ctx, va); !bytes.Equal(got, want) {
			t.Fatalf("key %d value %q", i, got)
		}
	}
}

func TestDenseHashOccupancyBound(t *testing.T) {
	ctx := newCtx()
	d := NewDenseHash(ctx, 64)
	for i := 0; i < 5000; i++ {
		d.Put(key(i), val(i, 0))
	}
	if float64(d.Len()) > 0.5*float64(d.Cap()) {
		t.Fatalf("occupancy %d/%d exceeds dense_hash_map bound", d.Len(), d.Cap())
	}
}

func TestTraversalChargesTimed(t *testing.T) {
	// With timing on, a Get must charge hash + traversal cycles.
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ctx := newTimedCtx()
			idx := b.make(ctx, 64)
			for i := 0; i < 100; i++ {
				idx.Put(key(i), val(i, 0))
			}
			before := ctx.M.Stats()
			idx.Get(key(50))
			d := ctx.M.Stats().Sub(before)
			if d.Cycles == 0 {
				t.Fatal("timed Get charged nothing")
			}
			if d.ByCat[arch.CatTraverse] == 0 {
				t.Fatal("no traversal cycles")
			}
			ordered := b.name == "rbtree" || b.name == "btree" || b.name == "skiplist"
			if !ordered && d.ByCat[arch.CatHash] == 0 {
				t.Fatal("hash-table Get charged no hash cycles")
			}
		})
	}
}

func TestRecordHelpers(t *testing.T) {
	m := cpu.New(arch.DefaultMachineParams())
	m.Fast = true
	va := AllocRecord(m, []byte("thekey"), []byte("thevalue"))
	kl, vl := ReadRecordHeader(m, va, arch.CatData)
	if kl != 6 || vl != 8 {
		t.Fatalf("header = %d,%d", kl, vl)
	}
	if !KeyMatches(m, va, []byte("thekey"), arch.CatData) {
		t.Fatal("KeyMatches rejected the key")
	}
	if KeyMatches(m, va, []byte("thekex"), arch.CatData) {
		t.Fatal("KeyMatches accepted a wrong key")
	}
	if KeyMatches(m, va, []byte("longerkey"), arch.CatData) {
		t.Fatal("KeyMatches accepted a wrong-length key")
	}
	if got := ReadRecordKey(m, va, arch.CatData); string(got) != "thekey" {
		t.Fatalf("ReadRecordKey = %q", got)
	}
	if got := ReadValue(m, va); string(got) != "thevalue" {
		t.Fatalf("ReadValue = %q", got)
	}
	if KeyCompare(m, va, []byte("thekey"), arch.CatData) != 0 {
		t.Fatal("KeyCompare(equal) != 0")
	}
	if KeyCompare(m, va, []byte("aaa"), arch.CatData) >= 0 {
		t.Fatal("KeyCompare ordering wrong")
	}
	UpdateValueInPlace(m, va, 6, []byte("newvals!"))
	if got := ReadValue(m, va); string(got) != "newvals!" {
		t.Fatalf("after update: %q", got)
	}
}

func TestAllocClassMatchesVMSizeClass(t *testing.T) {
	for _, n := range []int{1, 15, 16, 17, 63, 64, 65, 100, 128, 300, 4096, 5000} {
		want := sizeClassRef(n)
		if got := allocClass(n); got != want {
			t.Errorf("allocClass(%d) = %d, want %d", n, got, want)
		}
	}
}

// sizeClassRef mirrors vm.sizeClass for the cross-check.
func sizeClassRef(n int) int {
	if n > arch.PageSize {
		return (n + arch.PageSize - 1) &^ arch.PageMask
	}
	c := 16
	for c < n {
		c <<= 1
	}
	return c
}
